#include "wcc/compiler.h"

#include <map>
#include <set>
#include <string>

#include "wasmbuilder/builder.h"
#include "wcc/optimizer.h"
#include "wcc/parser.h"

namespace waran::wcc {
namespace {

using wasmbuilder::BlockT;
using wasmbuilder::FunctionBuilder;
using wasmbuilder::ModuleBuilder;
using wasm::Op;
using WType = wasm::ValType;

WType lower(Type t) {
  switch (t) {
    case Type::kI32: return WType::kI32;
    case Type::kI64: return WType::kI64;
    case Type::kF64: return WType::kF64;
    case Type::kVoid: break;
  }
  return WType::kI32;  // unreachable; void never lowers
}

struct HostImport {
  const char* name;
  const char* module;
  const char* import_name;
  std::vector<Type> params;
  Type result;
};

const std::vector<HostImport>& host_imports() {
  static const std::vector<HostImport> kImports = {
      {"input_len", "waran", "input_len", {}, Type::kI32},
      {"input_read", "waran", "input_read", {Type::kI32, Type::kI32, Type::kI32}, Type::kI32},
      {"output_write", "waran", "output_write", {Type::kI32, Type::kI32}, Type::kVoid},
      {"log", "waran", "log", {Type::kI32, Type::kI32}, Type::kVoid},
      {"abort", "waran", "abort", {Type::kI32}, Type::kVoid},
  };
  return kImports;
}

struct Intrinsic {
  const char* name;
  std::vector<Type> params;
  Type result;
};

const std::map<std::string, Intrinsic>& intrinsics() {
  static const std::map<std::string, Intrinsic> kIntrinsics = {
      {"load8u", {"load8u", {Type::kI32}, Type::kI32}},
      {"load16u", {"load16u", {Type::kI32}, Type::kI32}},
      {"load32", {"load32", {Type::kI32}, Type::kI32}},
      {"load64", {"load64", {Type::kI32}, Type::kI64}},
      {"loadf64", {"loadf64", {Type::kI32}, Type::kF64}},
      {"store8", {"store8", {Type::kI32, Type::kI32}, Type::kVoid}},
      {"store16", {"store16", {Type::kI32, Type::kI32}, Type::kVoid}},
      {"store32", {"store32", {Type::kI32, Type::kI32}, Type::kVoid}},
      {"store64", {"store64", {Type::kI32, Type::kI64}, Type::kVoid}},
      {"storef64", {"storef64", {Type::kI32, Type::kF64}, Type::kVoid}},
      {"memory_size", {"memory_size", {}, Type::kI32}},
      {"memory_grow", {"memory_grow", {Type::kI32}, Type::kI32}},
      {"trap", {"trap", {}, Type::kVoid}},
      {"sqrt", {"sqrt", {Type::kF64}, Type::kF64}},
      {"floor", {"floor", {Type::kF64}, Type::kF64}},
      {"ceil", {"ceil", {Type::kF64}, Type::kF64}},
      {"abs", {"abs", {Type::kF64}, Type::kF64}},
  };
  return kIntrinsics;
}

struct FuncSig {
  uint32_t index;  // wasm function index
  std::vector<Type> params;
  Type result;
};

class Compiler {
 public:
  Compiler(const Program& program, const CompileOptions& options)
      : prog_(program), options_(options) {}

  Result<std::vector<uint8_t>> run();

 private:
  const Program& prog_;
  CompileOptions options_;
  ModuleBuilder mb_;

  std::map<std::string, FuncSig> funcs_;          // user + imported host fns
  std::map<std::string, std::pair<uint32_t, Type>> globals_;

  // Per-function state.
  FunctionBuilder* fb_ = nullptr;
  const FuncDecl* current_ = nullptr;
  std::vector<std::map<std::string, std::pair<uint32_t, Type>>> scopes_;
  uint32_t depth_ = 0;  // open wasm control frames
  struct LoopCtx {
    uint32_t block_level;  // depth_ value of the break target frame
    uint32_t loop_level;   // depth_ value of the continue target frame
  };
  std::vector<LoopCtx> loops_;

  Error err(uint32_t line, const std::string& msg) const {
    std::string fn = current_ != nullptr ? current_->name : "<module>";
    return Error::validation("wcc: in " + fn + " (line " + std::to_string(line) +
                             "): " + msg);
  }

  Status collect_signatures();
  Status compile_func(const FuncDecl& f);
  Status compile_stmt(const Stmt& s);
  Result<Type> compile_expr(const Expr& e);
  Result<Type> compile_call(const Expr& e);
  Status compile_intrinsic(const Expr& e, const Intrinsic& in);

  const std::pair<uint32_t, Type>* lookup_local(const std::string& name) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      auto found = it->find(name);
      if (found != it->end()) return &found->second;
    }
    return nullptr;
  }

  Status expect_type(uint32_t line, Type got, Type want, const char* what) {
    if (got != want) {
      return err(line, std::string(what) + ": expected " + to_string(want) +
                           ", got " + to_string(got));
    }
    return {};
  }
};

// Scans expressions/statements for call names (to import only used host fns).
void collect_calls(const Expr& e, std::set<std::string>& out) {
  if (e.kind == Expr::Kind::kCall) out.insert(e.name);
  if (e.lhs) collect_calls(*e.lhs, out);
  if (e.rhs) collect_calls(*e.rhs, out);
  for (const auto& a : e.args) collect_calls(*a, out);
}

void collect_calls(const std::vector<StmtPtr>& stmts, std::set<std::string>& out) {
  for (const auto& s : stmts) {
    if (s->expr) collect_calls(*s->expr, out);
    collect_calls(s->body, out);
    collect_calls(s->else_body, out);
  }
}

Status Compiler::collect_signatures() {
  // Which host imports does the program use?
  std::set<std::string> called;
  for (const FuncDecl& f : prog_.funcs) collect_calls(f.body, called);

  for (const HostImport& hi : host_imports()) {
    if (!called.contains(hi.name)) continue;
    wasm::FuncType ft;
    for (Type p : hi.params) ft.params.push_back(lower(p));
    if (hi.result != Type::kVoid) ft.results.push_back(lower(hi.result));
    uint32_t index = mb_.import_func(hi.module, hi.import_name, ft);
    funcs_[hi.name] = FuncSig{index, hi.params, hi.result};
  }

  // Declared externs: embedder host functions, imported from module "env".
  for (const ExternDecl& e : prog_.externs) {
    if (funcs_.contains(e.name) || intrinsics().contains(e.name)) {
      return Error::validation("wcc: extern '" + e.name +
                               "' collides with an existing function");
    }
    wasm::FuncType ft;
    FuncSig sig;
    for (const Param& p : e.params) {
      ft.params.push_back(lower(p.type));
      sig.params.push_back(p.type);
    }
    if (e.return_type != Type::kVoid) ft.results.push_back(lower(e.return_type));
    sig.result = e.return_type;
    sig.index = mb_.import_func("env", e.name, ft);
    funcs_[e.name] = std::move(sig);
  }

  // Forward-declare user functions (two-pass so order doesn't matter).
  // Function indices: imports first, then user funcs in declaration order.
  uint32_t next = mb_.num_funcs();
  for (const FuncDecl& f : prog_.funcs) {
    if (funcs_.contains(f.name)) {
      return Error::validation("wcc: duplicate function '" + f.name + "'");
    }
    if (intrinsics().contains(f.name)) {
      return Error::validation("wcc: '" + f.name + "' shadows an intrinsic");
    }
    FuncSig sig;
    sig.index = next++;
    for (const Param& p : f.params) sig.params.push_back(p.type);
    sig.result = f.return_type;
    funcs_[f.name] = std::move(sig);
  }
  return {};
}

Result<std::vector<uint8_t>> Compiler::run() {
  WARAN_CHECK_OK(collect_signatures());

  mb_.add_memory(options_.memory_pages_min, options_.memory_pages_max,
                 options_.export_memory ? "memory" : "");

  for (const GlobalDecl& g : prog_.globals) {
    if (globals_.contains(g.name)) {
      return Error::validation("wcc: duplicate global '" + g.name + "'");
    }
    wasm::Value init{};
    switch (g.type) {
      case Type::kI32: init = wasm::Value::from_i32(static_cast<int32_t>(g.int_init)); break;
      case Type::kI64: init = wasm::Value::from_i64(g.int_init); break;
      case Type::kF64: init = wasm::Value::from_f64(g.float_init); break;
      case Type::kVoid: return Error::validation("wcc: global cannot be void");
    }
    uint32_t index = mb_.add_global(lower(g.type), /*mut=*/true, init);
    globals_[g.name] = {index, g.type};
  }

  for (const FuncDecl& f : prog_.funcs) {
    WARAN_CHECK_OK(compile_func(f));
  }
  return mb_.build();
}

Status Compiler::compile_func(const FuncDecl& f) {
  wasm::FuncType ft;
  for (const Param& p : f.params) ft.params.push_back(lower(p.type));
  if (f.return_type != Type::kVoid) ft.results.push_back(lower(f.return_type));

  FunctionBuilder& fb = mb_.add_func(ft, f.exported ? f.name : "");
  fb_ = &fb;
  current_ = &f;
  depth_ = 0;
  loops_.clear();
  scopes_.clear();
  scopes_.emplace_back();

  for (uint32_t i = 0; i < f.params.size(); ++i) {
    const Param& p = f.params[i];
    if (scopes_.back().contains(p.name)) {
      return err(f.line, "duplicate parameter '" + p.name + "'");
    }
    scopes_.back()[p.name] = {i, p.type};
  }

  for (const StmtPtr& s : f.body) {
    WARAN_CHECK_OK(compile_stmt(*s));
  }

  // Non-void functions must not fall off the end; a trailing `unreachable`
  // both satisfies validation and turns a missing return into a clean trap.
  if (f.return_type != Type::kVoid) fb.op(Op::kUnreachable);
  fb.end();
  fb_ = nullptr;
  current_ = nullptr;
  return {};
}

Status Compiler::compile_stmt(const Stmt& s) {
  switch (s.kind) {
    case Stmt::Kind::kVarDecl: {
      if (scopes_.back().contains(s.name)) {
        return err(s.line, "redeclaration of '" + s.name + "' in the same scope");
      }
      uint32_t index = fb_->add_local(lower(s.decl_type));
      if (s.expr) {
        WARAN_TRY(t, compile_expr(*s.expr));
        WARAN_CHECK_OK(expect_type(s.line, t, s.decl_type, "initializer"));
        fb_->local_set(index);
      }
      scopes_.back()[s.name] = {index, s.decl_type};
      return {};
    }
    case Stmt::Kind::kAssign: {
      if (const auto* local = lookup_local(s.name)) {
        WARAN_TRY(t, compile_expr(*s.expr));
        WARAN_CHECK_OK(expect_type(s.line, t, local->second, "assignment"));
        fb_->local_set(local->first);
        return {};
      }
      auto git = globals_.find(s.name);
      if (git != globals_.end()) {
        WARAN_TRY(t, compile_expr(*s.expr));
        WARAN_CHECK_OK(expect_type(s.line, t, git->second.second, "assignment"));
        fb_->global_set(git->second.first);
        return {};
      }
      return err(s.line, "assignment to undeclared variable '" + s.name + "'");
    }
    case Stmt::Kind::kIf: {
      WARAN_TRY(cond, compile_expr(*s.expr));
      WARAN_CHECK_OK(expect_type(s.line, cond, Type::kI32, "if condition"));
      fb_->if_();
      ++depth_;
      scopes_.emplace_back();
      for (const StmtPtr& st : s.body) WARAN_CHECK_OK(compile_stmt(*st));
      scopes_.pop_back();
      if (!s.else_body.empty()) {
        fb_->else_();
        scopes_.emplace_back();
        for (const StmtPtr& st : s.else_body) WARAN_CHECK_OK(compile_stmt(*st));
        scopes_.pop_back();
      }
      fb_->end();
      --depth_;
      return {};
    }
    case Stmt::Kind::kWhile: {
      fb_->block();
      ++depth_;
      uint32_t block_level = depth_;
      fb_->loop();
      ++depth_;
      uint32_t loop_level = depth_;
      loops_.push_back({block_level, loop_level});

      WARAN_TRY(cond, compile_expr(*s.expr));
      WARAN_CHECK_OK(expect_type(s.line, cond, Type::kI32, "while condition"));
      fb_->op(Op::kI32Eqz).br_if(depth_ - block_level);  // exit when false

      scopes_.emplace_back();
      for (const StmtPtr& st : s.body) WARAN_CHECK_OK(compile_stmt(*st));
      scopes_.pop_back();

      fb_->br(depth_ - loop_level);  // backedge
      fb_->end();                    // loop
      --depth_;
      fb_->end();                    // block
      --depth_;
      loops_.pop_back();
      return {};
    }
    case Stmt::Kind::kBreak: {
      if (loops_.empty()) return err(s.line, "'break' outside a loop");
      fb_->br(depth_ - loops_.back().block_level);
      return {};
    }
    case Stmt::Kind::kContinue: {
      if (loops_.empty()) return err(s.line, "'continue' outside a loop");
      fb_->br(depth_ - loops_.back().loop_level);
      return {};
    }
    case Stmt::Kind::kReturn: {
      Type want = current_->return_type;
      if (want == Type::kVoid) {
        if (s.expr) return err(s.line, "void function returns a value");
      } else {
        if (!s.expr) return err(s.line, "non-void function needs a return value");
        WARAN_TRY(t, compile_expr(*s.expr));
        WARAN_CHECK_OK(expect_type(s.line, t, want, "return value"));
      }
      fb_->ret();
      return {};
    }
    case Stmt::Kind::kExprStmt: {
      WARAN_TRY(t, compile_expr(*s.expr));
      if (t != Type::kVoid) fb_->op(Op::kDrop);
      return {};
    }
    case Stmt::Kind::kBlock: {
      scopes_.emplace_back();
      for (const StmtPtr& st : s.body) WARAN_CHECK_OK(compile_stmt(*st));
      scopes_.pop_back();
      return {};
    }
  }
  return err(s.line, "unhandled statement kind");
}

Result<Type> Compiler::compile_expr(const Expr& e) {
  switch (e.kind) {
    case Expr::Kind::kIntLit: {
      if (e.lit_type == Type::kI64) {  // produced by cast folding
        fb_->i64_const(e.int_value);
        return Type::kI64;
      }
      if (e.int_value < INT32_MIN || e.int_value > INT32_MAX) {
        return err(e.line, "integer literal out of i32 range (use i64(...))");
      }
      fb_->i32_const(static_cast<int32_t>(e.int_value));
      return Type::kI32;
    }
    case Expr::Kind::kFloatLit:
      fb_->f64_const(e.float_value);
      return Type::kF64;

    case Expr::Kind::kVarRef: {
      if (const auto* local = lookup_local(e.name)) {
        fb_->local_get(local->first);
        return local->second;
      }
      auto git = globals_.find(e.name);
      if (git != globals_.end()) {
        fb_->global_get(git->second.first);
        return git->second.second;
      }
      return err(e.line, "use of undeclared variable '" + e.name + "'");
    }

    case Expr::Kind::kUnary: {
      if (e.un_op == UnOp::kNot) {
        WARAN_TRY(t, compile_expr(*e.lhs));
        WARAN_CHECK_OK(expect_type(e.line, t, Type::kI32, "operand of '!'"));
        fb_->op(Op::kI32Eqz);
        return Type::kI32;
      }
      // Negation: constant-fold literals, otherwise 0 - x (or f64.neg).
      if (e.lhs->kind == Expr::Kind::kIntLit) {
        int64_t v = -e.lhs->int_value;
        if (v < INT32_MIN || v > INT32_MAX) return err(e.line, "literal out of range");
        fb_->i32_const(static_cast<int32_t>(v));
        return Type::kI32;
      }
      if (e.lhs->kind == Expr::Kind::kFloatLit) {
        fb_->f64_const(-e.lhs->float_value);
        return Type::kF64;
      }
      {
        // Emit 0 first, then the operand, then subtract. Type is not known
        // until the operand compiles, so compile to a scratch local? W keeps
        // it simpler: negation of non-literals requires a cast-visible type;
        // we compile operand first into a fresh local of its type.
        // Strategy: compile operand, stash in a new local, emit 0, reload.
        WARAN_TRY(t, compile_expr(*e.lhs));
        switch (t) {
          case Type::kF64:
            fb_->op(Op::kF64Neg);
            return Type::kF64;
          case Type::kI32: {
            uint32_t tmp = fb_->add_local(WType::kI32);
            fb_->local_set(tmp).i32_const(0).local_get(tmp).op(Op::kI32Sub);
            return Type::kI32;
          }
          case Type::kI64: {
            uint32_t tmp = fb_->add_local(WType::kI64);
            fb_->local_set(tmp).i64_const(0).local_get(tmp).op(Op::kI64Sub);
            return Type::kI64;
          }
          case Type::kVoid:
            return err(e.line, "cannot negate a void expression");
        }
      }
      return err(e.line, "unreachable");
    }

    case Expr::Kind::kCast: {
      WARAN_TRY(from, compile_expr(*e.lhs));
      Type to = e.cast_to;
      if (from == to) return to;
      switch (from) {
        case Type::kI32:
          if (to == Type::kI64) fb_->op(Op::kI64ExtendI32S);
          if (to == Type::kF64) fb_->op(Op::kF64ConvertI32S);
          return to;
        case Type::kI64:
          if (to == Type::kI32) fb_->op(Op::kI32WrapI64);
          if (to == Type::kF64) fb_->op(Op::kF64ConvertI64S);
          return to;
        case Type::kF64:
          if (to == Type::kI32) fb_->op(Op::kI32TruncSatF64S);
          if (to == Type::kI64) fb_->op(Op::kI64TruncSatF64S);
          return to;
        case Type::kVoid:
          break;
      }
      return err(e.line, "cannot cast a void expression");
    }

    case Expr::Kind::kBinary: {
      // Short-circuit logical operators first.
      if (e.bin_op == BinOp::kAnd || e.bin_op == BinOp::kOr) {
        WARAN_TRY(lt, compile_expr(*e.lhs));
        WARAN_CHECK_OK(expect_type(e.line, lt, Type::kI32, "logical operand"));
        fb_->if_(BlockT::i32());
        ++depth_;
        if (e.bin_op == BinOp::kAnd) {
          WARAN_TRY(rt, compile_expr(*e.rhs));
          WARAN_CHECK_OK(expect_type(e.line, rt, Type::kI32, "logical operand"));
          fb_->op(Op::kI32Eqz).op(Op::kI32Eqz);  // normalize to 0/1
          fb_->else_().i32_const(0);
        } else {
          fb_->i32_const(1);
          fb_->else_();
          WARAN_TRY(rt, compile_expr(*e.rhs));
          WARAN_CHECK_OK(expect_type(e.line, rt, Type::kI32, "logical operand"));
          fb_->op(Op::kI32Eqz).op(Op::kI32Eqz);
        }
        fb_->end();
        --depth_;
        return Type::kI32;
      }

      WARAN_TRY(lt, compile_expr(*e.lhs));
      WARAN_TRY(rt, compile_expr(*e.rhs));
      if (lt != rt) {
        return err(e.line, std::string("operand type mismatch: ") + to_string(lt) +
                               " vs " + to_string(rt) + " (W has no implicit conversions)");
      }
      if (lt == Type::kVoid) return err(e.line, "void operand");

      struct OpRow {
        Op i32, i64, f64;
      };
      auto row = [&](BinOp op) -> Result<OpRow> {
        switch (op) {
          case BinOp::kAdd: return OpRow{Op::kI32Add, Op::kI64Add, Op::kF64Add};
          case BinOp::kSub: return OpRow{Op::kI32Sub, Op::kI64Sub, Op::kF64Sub};
          case BinOp::kMul: return OpRow{Op::kI32Mul, Op::kI64Mul, Op::kF64Mul};
          case BinOp::kDiv: return OpRow{Op::kI32DivS, Op::kI64DivS, Op::kF64Div};
          case BinOp::kRem: return OpRow{Op::kI32RemS, Op::kI64RemS, Op::kNop};
          case BinOp::kEq: return OpRow{Op::kI32Eq, Op::kI64Eq, Op::kF64Eq};
          case BinOp::kNe: return OpRow{Op::kI32Ne, Op::kI64Ne, Op::kF64Ne};
          case BinOp::kLt: return OpRow{Op::kI32LtS, Op::kI64LtS, Op::kF64Lt};
          case BinOp::kGt: return OpRow{Op::kI32GtS, Op::kI64GtS, Op::kF64Gt};
          case BinOp::kLe: return OpRow{Op::kI32LeS, Op::kI64LeS, Op::kF64Le};
          case BinOp::kGe: return OpRow{Op::kI32GeS, Op::kI64GeS, Op::kF64Ge};
          default: return err(e.line, "bad binary operator");
        }
      };
      WARAN_TRY(ops, row(e.bin_op));
      Op chosen = lt == Type::kI32 ? ops.i32 : lt == Type::kI64 ? ops.i64 : ops.f64;
      if (chosen == Op::kNop) return err(e.line, "operator '%' is not defined for f64");
      fb_->op(chosen);

      bool is_compare = e.bin_op == BinOp::kEq || e.bin_op == BinOp::kNe ||
                        e.bin_op == BinOp::kLt || e.bin_op == BinOp::kGt ||
                        e.bin_op == BinOp::kLe || e.bin_op == BinOp::kGe;
      return is_compare ? Type::kI32 : lt;
    }

    case Expr::Kind::kCall:
      return compile_call(e);
  }
  return err(e.line, "unhandled expression kind");
}

Status Compiler::compile_intrinsic(const Expr& e, const Intrinsic& in) {
  if (e.args.size() != in.params.size()) {
    return err(e.line, "intrinsic '" + e.name + "' expects " +
                           std::to_string(in.params.size()) + " argument(s)");
  }
  for (size_t i = 0; i < e.args.size(); ++i) {
    WARAN_TRY(t, compile_expr(*e.args[i]));
    WARAN_CHECK_OK(expect_type(e.line, t, in.params[i], "intrinsic argument"));
  }
  const std::string& n = e.name;
  if (n == "load8u") fb_->load(Op::kI32Load8U, 0, 0);
  else if (n == "load16u") fb_->load(Op::kI32Load16U, 0, 1);
  else if (n == "load32") fb_->load(Op::kI32Load, 0, 2);
  else if (n == "load64") fb_->load(Op::kI64Load, 0, 3);
  else if (n == "loadf64") fb_->load(Op::kF64Load, 0, 3);
  else if (n == "store8") fb_->store(Op::kI32Store8, 0, 0);
  else if (n == "store16") fb_->store(Op::kI32Store16, 0, 1);
  else if (n == "store32") fb_->store(Op::kI32Store, 0, 2);
  else if (n == "store64") fb_->store(Op::kI64Store, 0, 3);
  else if (n == "storef64") fb_->store(Op::kF64Store, 0, 3);
  else if (n == "memory_size") fb_->memory_size();
  else if (n == "memory_grow") fb_->memory_grow();
  else if (n == "trap") fb_->op(Op::kUnreachable);
  else if (n == "sqrt") fb_->op(Op::kF64Sqrt);
  else if (n == "floor") fb_->op(Op::kF64Floor);
  else if (n == "ceil") fb_->op(Op::kF64Ceil);
  else if (n == "abs") fb_->op(Op::kF64Abs);
  else return err(e.line, "unknown intrinsic");
  return {};
}

Result<Type> Compiler::compile_call(const Expr& e) {
  // 1. Intrinsics.
  auto iit = intrinsics().find(e.name);
  if (iit != intrinsics().end()) {
    WARAN_CHECK_OK(compile_intrinsic(e, iit->second));
    return iit->second.result;
  }
  // 2. User functions and host imports (both registered in funcs_).
  auto fit = funcs_.find(e.name);
  if (fit == funcs_.end()) {
    return err(e.line, "call to undefined function '" + e.name + "'");
  }
  const FuncSig& sig = fit->second;
  if (e.args.size() != sig.params.size()) {
    return err(e.line, "'" + e.name + "' expects " + std::to_string(sig.params.size()) +
                           " argument(s), got " + std::to_string(e.args.size()));
  }
  for (size_t i = 0; i < e.args.size(); ++i) {
    WARAN_TRY(t, compile_expr(*e.args[i]));
    WARAN_CHECK_OK(expect_type(e.line, t, sig.params[i], "call argument"));
  }
  fb_->call(sig.index);
  return sig.result;
}

}  // namespace

Result<std::vector<uint8_t>> compile(std::string_view source,
                                     const CompileOptions& options) {
  WARAN_TRY(program, parse(source));
  // Codegen doubles as the typechecker; run it on the unoptimized AST first
  // so the optimizer can never mask a type error, then (optionally) emit
  // again from the simplified AST.
  Compiler unopt(program, options);
  WARAN_TRY(bytes, unopt.run());
  if (!options.optimize) return std::move(bytes);
  optimize(program);
  Compiler opt(program, options);
  return opt.run();
}

}  // namespace waran::wcc
