// Abstract syntax tree for W.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "wcc/token.h"

namespace waran::wcc {

enum class Type : uint8_t { kVoid, kI32, kI64, kF64 };

const char* to_string(Type t);

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class BinOp : uint8_t {
  kAdd, kSub, kMul, kDiv, kRem,
  kEq, kNe, kLt, kGt, kLe, kGe,
  kAnd, kOr,  // short-circuit logical
};

enum class UnOp : uint8_t { kNeg, kNot };

struct Expr {
  enum class Kind : uint8_t {
    kIntLit,
    kFloatLit,
    kVarRef,
    kBinary,
    kUnary,
    kCall,   // user function, intrinsic, or host import
    kCast,   // i32(x) / i64(x) / f64(x)
  };

  Kind kind;
  uint32_t line = 0;

  // kIntLit / kFloatLit. `lit_type` is kI32 for source-level integer
  // literals; the optimizer may fold casts into kI64/kF64 literals.
  int64_t int_value = 0;
  double float_value = 0;
  Type lit_type = Type::kI32;

  // kVarRef / kCall.
  std::string name;

  // kBinary / kUnary / kCast.
  BinOp bin_op{};
  UnOp un_op{};
  Type cast_to{};

  ExprPtr lhs;  // also unary/cast operand
  ExprPtr rhs;
  std::vector<ExprPtr> args;  // kCall
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt {
  enum class Kind : uint8_t {
    kVarDecl,
    kAssign,
    kIf,
    kWhile,
    kBreak,
    kContinue,
    kReturn,
    kExprStmt,
    kBlock,
  };

  Kind kind;
  uint32_t line = 0;

  std::string name;  // kVarDecl / kAssign target
  Type decl_type{};  // kVarDecl
  ExprPtr expr;      // init / assigned value / condition / return / expr
  std::vector<StmtPtr> body;       // kBlock, kIf-then, kWhile body
  std::vector<StmtPtr> else_body;  // kIf
};

struct Param {
  std::string name;
  Type type;
};

struct FuncDecl {
  std::string name;
  bool exported = false;
  std::vector<Param> params;
  Type return_type = Type::kVoid;
  std::vector<StmtPtr> body;
  uint32_t line = 0;
};

struct GlobalDecl {
  std::string name;
  Type type;
  // Literal initializer (0 when omitted).
  int64_t int_init = 0;
  double float_init = 0;
  uint32_t line = 0;
};

/// Host-function declaration: imports module "env", name `name`.
struct ExternDecl {
  std::string name;
  std::vector<Param> params;
  Type return_type = Type::kVoid;
  uint32_t line = 0;
};

struct Program {
  std::vector<GlobalDecl> globals;
  std::vector<ExternDecl> externs;
  std::vector<FuncDecl> funcs;
};

}  // namespace waran::wcc
