#include "wcc/lexer.h"

#include <cctype>
#include <charconv>
#include <map>

namespace waran::wcc {

const char* to_string(Tok t) {
  switch (t) {
    case Tok::kEof: return "<eof>";
    case Tok::kIdent: return "identifier";
    case Tok::kIntLit: return "integer literal";
    case Tok::kFloatLit: return "float literal";
    case Tok::kFn: return "fn";
    case Tok::kVar: return "var";
    case Tok::kGlobal: return "global";
    case Tok::kExport: return "export";
    case Tok::kExtern: return "extern";
    case Tok::kIf: return "if";
    case Tok::kElse: return "else";
    case Tok::kWhile: return "while";
    case Tok::kBreak: return "break";
    case Tok::kContinue: return "continue";
    case Tok::kReturn: return "return";
    case Tok::kI32: return "i32";
    case Tok::kI64: return "i64";
    case Tok::kF64: return "f64";
    case Tok::kLParen: return "(";
    case Tok::kRParen: return ")";
    case Tok::kLBrace: return "{";
    case Tok::kRBrace: return "}";
    case Tok::kComma: return ",";
    case Tok::kColon: return ":";
    case Tok::kSemi: return ";";
    case Tok::kArrow: return "->";
    case Tok::kAssign: return "=";
    case Tok::kPlus: return "+";
    case Tok::kMinus: return "-";
    case Tok::kStar: return "*";
    case Tok::kSlash: return "/";
    case Tok::kPercent: return "%";
    case Tok::kAmpAmp: return "&&";
    case Tok::kPipePipe: return "||";
    case Tok::kBang: return "!";
    case Tok::kEq: return "==";
    case Tok::kNe: return "!=";
    case Tok::kLt: return "<";
    case Tok::kGt: return ">";
    case Tok::kLe: return "<=";
    case Tok::kGe: return ">=";
  }
  return "?";
}

namespace {

const std::map<std::string_view, Tok>& keywords() {
  static const std::map<std::string_view, Tok> kw = {
      {"fn", Tok::kFn},         {"var", Tok::kVar},
      {"global", Tok::kGlobal}, {"export", Tok::kExport},
      {"extern", Tok::kExtern},
      {"if", Tok::kIf},         {"else", Tok::kElse},
      {"while", Tok::kWhile},   {"break", Tok::kBreak},
      {"continue", Tok::kContinue}, {"return", Tok::kReturn},
      {"i32", Tok::kI32},       {"i64", Tok::kI64},
      {"f64", Tok::kF64},
  };
  return kw;
}

}  // namespace

Result<std::vector<Token>> lex(std::string_view src) {
  std::vector<Token> out;
  size_t i = 0;
  uint32_t line = 1, col = 1;

  auto advance = [&](size_t n) {
    for (size_t k = 0; k < n; ++k) {
      if (src[i + k] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    i += n;
  };

  auto err = [&](const std::string& msg) {
    return Error::decode("wcc lex error at " + std::to_string(line) + ":" +
                         std::to_string(col) + ": " + msg);
  };

  while (i < src.size()) {
    char c = src[i];
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance(1);
      continue;
    }
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '/') {
      while (i < src.size() && src[i] != '\n') advance(1);
      continue;
    }

    Token tok;
    tok.line = line;
    tok.col = col;

    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < src.size() &&
             (std::isalnum(static_cast<unsigned char>(src[i])) || src[i] == '_')) {
        advance(1);
      }
      std::string_view word = src.substr(start, i - start);
      auto it = keywords().find(word);
      if (it != keywords().end()) {
        tok.kind = it->second;
      } else {
        tok.kind = Tok::kIdent;
        tok.text = std::string(word);
      }
      out.push_back(std::move(tok));
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      bool is_float = false;
      while (i < src.size() &&
             (std::isdigit(static_cast<unsigned char>(src[i])) || src[i] == '.' ||
              src[i] == 'e' || src[i] == 'E' ||
              ((src[i] == '+' || src[i] == '-') && i > start &&
               (src[i - 1] == 'e' || src[i - 1] == 'E')))) {
        if (src[i] == '.' || src[i] == 'e' || src[i] == 'E') is_float = true;
        advance(1);
      }
      std::string_view num = src.substr(start, i - start);
      if (is_float) {
        tok.kind = Tok::kFloatLit;
        auto [p, ec] = std::from_chars(num.data(), num.data() + num.size(), tok.float_value);
        if (ec != std::errc() || p != num.data() + num.size()) return err("bad float literal");
      } else {
        tok.kind = Tok::kIntLit;
        auto [p, ec] = std::from_chars(num.data(), num.data() + num.size(), tok.int_value);
        if (ec != std::errc() || p != num.data() + num.size()) return err("bad integer literal");
      }
      out.push_back(std::move(tok));
      continue;
    }

    auto two = [&](char second) {
      return i + 1 < src.size() && src[i + 1] == second;
    };
    switch (c) {
      case '(': tok.kind = Tok::kLParen; advance(1); break;
      case ')': tok.kind = Tok::kRParen; advance(1); break;
      case '{': tok.kind = Tok::kLBrace; advance(1); break;
      case '}': tok.kind = Tok::kRBrace; advance(1); break;
      case ',': tok.kind = Tok::kComma; advance(1); break;
      case ':': tok.kind = Tok::kColon; advance(1); break;
      case ';': tok.kind = Tok::kSemi; advance(1); break;
      case '+': tok.kind = Tok::kPlus; advance(1); break;
      case '*': tok.kind = Tok::kStar; advance(1); break;
      case '/': tok.kind = Tok::kSlash; advance(1); break;
      case '%': tok.kind = Tok::kPercent; advance(1); break;
      case '-':
        if (two('>')) {
          tok.kind = Tok::kArrow;
          advance(2);
        } else {
          tok.kind = Tok::kMinus;
          advance(1);
        }
        break;
      case '&':
        if (!two('&')) return err("expected '&&'");
        tok.kind = Tok::kAmpAmp;
        advance(2);
        break;
      case '|':
        if (!two('|')) return err("expected '||'");
        tok.kind = Tok::kPipePipe;
        advance(2);
        break;
      case '!':
        if (two('=')) {
          tok.kind = Tok::kNe;
          advance(2);
        } else {
          tok.kind = Tok::kBang;
          advance(1);
        }
        break;
      case '=':
        if (two('=')) {
          tok.kind = Tok::kEq;
          advance(2);
        } else {
          tok.kind = Tok::kAssign;
          advance(1);
        }
        break;
      case '<':
        if (two('=')) {
          tok.kind = Tok::kLe;
          advance(2);
        } else {
          tok.kind = Tok::kLt;
          advance(1);
        }
        break;
      case '>':
        if (two('=')) {
          tok.kind = Tok::kGe;
          advance(2);
        } else {
          tok.kind = Tok::kGt;
          advance(1);
        }
        break;
      default:
        return err(std::string("unexpected character '") + c + "'");
    }
    out.push_back(std::move(tok));
  }

  Token eof;
  eof.kind = Tok::kEof;
  eof.line = line;
  eof.col = col;
  out.push_back(eof);
  return out;
}

}  // namespace waran::wcc
