#include "wcc/optimizer.h"

#include <cmath>
#include <limits>

namespace waran::wcc {
namespace {

bool is_int_lit(const Expr& e) { return e.kind == Expr::Kind::kIntLit; }
bool is_float_lit(const Expr& e) { return e.kind == Expr::Kind::kFloatLit; }

/// Side-effect-free: safe to delete if its value is unused. Calls may touch
/// memory/host state; everything else in W is pure.
bool is_pure(const Expr& e) {
  switch (e.kind) {
    case Expr::Kind::kIntLit:
    case Expr::Kind::kFloatLit:
    case Expr::Kind::kVarRef:
      return true;
    case Expr::Kind::kUnary:
    case Expr::Kind::kCast:
      return is_pure(*e.lhs);
    case Expr::Kind::kBinary:
      return is_pure(*e.lhs) && is_pure(*e.rhs);
    case Expr::Kind::kCall:
      return false;
  }
  return false;
}

void make_int(Expr& e, int64_t v, Type t) {
  e.kind = Expr::Kind::kIntLit;
  e.int_value = v;
  e.lit_type = t;
  e.lhs.reset();
  e.rhs.reset();
  e.args.clear();
}

void make_float(Expr& e, double v) {
  e.kind = Expr::Kind::kFloatLit;
  e.float_value = v;
  e.lit_type = Type::kF64;
  e.lhs.reset();
  e.rhs.reset();
  e.args.clear();
}

/// Replaces `e` with the contents of `*child` (one of e's operands).
void hoist(Expr& e, ExprPtr child) {
  Expr tmp = std::move(*child);
  e = std::move(tmp);
}

int32_t as_i32(const Expr& e) { return static_cast<int32_t>(e.int_value); }

// Saturating f64 -> int, matching the engine's trunc_sat and wcc casts.
int64_t sat_i64(double d) {
  if (std::isnan(d)) return 0;
  d = std::trunc(d);
  if (d <= -9223372036854775808.0) return std::numeric_limits<int64_t>::min();
  if (d >= 9223372036854775808.0) return std::numeric_limits<int64_t>::max();
  return static_cast<int64_t>(d);
}

int32_t sat_i32(double d) {
  if (std::isnan(d)) return 0;
  d = std::trunc(d);
  if (d <= -2147483648.0) return std::numeric_limits<int32_t>::min();
  if (d >= 2147483647.0) return std::numeric_limits<int32_t>::max();
  return static_cast<int32_t>(d);
}

class Optimizer {
 public:
  OptStats run(Program& program) {
    for (FuncDecl& f : program.funcs) visit_block(f.body);
    return stats_;
  }

 private:
  OptStats stats_;

  void visit_block(std::vector<StmtPtr>& stmts) {
    for (size_t i = 0; i < stmts.size();) {
      Stmt& s = *stmts[i];
      if (s.expr) visit_expr(*s.expr);
      visit_block(s.body);
      visit_block(s.else_body);

      if (s.kind == Stmt::Kind::kIf && s.expr && is_int_lit(*s.expr) &&
          s.expr->lit_type == Type::kI32) {
        // Constant condition: keep only the taken branch, wrapped in a
        // block statement so its declarations stay in their own scope.
        ++stats_.dead_branches_removed;
        std::vector<StmtPtr> taken =
            as_i32(*s.expr) != 0 ? std::move(s.body) : std::move(s.else_body);
        if (taken.empty()) {
          stmts.erase(stmts.begin() + static_cast<long>(i));
        } else {
          auto block = std::make_unique<Stmt>();
          block->kind = Stmt::Kind::kBlock;
          block->line = s.line;
          block->body = std::move(taken);
          stmts[i] = std::move(block);
          ++i;
        }
        continue;
      }
      if (s.kind == Stmt::Kind::kWhile && s.expr && is_int_lit(*s.expr) &&
          s.expr->lit_type == Type::kI32 && as_i32(*s.expr) == 0) {
        ++stats_.dead_loops_removed;
        stmts.erase(stmts.begin() + static_cast<long>(i));
        continue;
      }
      ++i;
    }
  }

  void visit_expr(Expr& e) {
    if (e.lhs) visit_expr(*e.lhs);
    if (e.rhs) visit_expr(*e.rhs);
    for (ExprPtr& a : e.args) visit_expr(*a);

    switch (e.kind) {
      case Expr::Kind::kUnary:
        fold_unary(e);
        break;
      case Expr::Kind::kCast:
        fold_cast(e);
        break;
      case Expr::Kind::kBinary:
        fold_binary(e);
        break;
      default:
        break;
    }
  }

  void fold_unary(Expr& e) {
    Expr& x = *e.lhs;
    if (e.un_op == UnOp::kNeg) {
      if (is_int_lit(x)) {
        int64_t v = x.lit_type == Type::kI32
                        ? static_cast<int32_t>(-static_cast<uint32_t>(as_i32(x)))
                        : static_cast<int64_t>(-static_cast<uint64_t>(x.int_value));
        make_int(e, v, x.lit_type);
        ++stats_.folded_consts;
      } else if (is_float_lit(x)) {
        make_float(e, -x.float_value);
        ++stats_.folded_consts;
      }
    } else {  // kNot
      if (is_int_lit(x) && x.lit_type == Type::kI32) {
        make_int(e, as_i32(x) == 0 ? 1 : 0, Type::kI32);
        ++stats_.folded_consts;
      }
    }
  }

  void fold_cast(Expr& e) {
    Expr& x = *e.lhs;
    if (is_int_lit(x)) {
      int64_t v = x.lit_type == Type::kI32 ? as_i32(x) : x.int_value;
      switch (e.cast_to) {
        case Type::kI32:
          make_int(e, static_cast<int32_t>(v), Type::kI32);
          break;
        case Type::kI64:
          make_int(e, v, Type::kI64);
          break;
        case Type::kF64:
          make_float(e, static_cast<double>(v));
          break;
        case Type::kVoid:
          return;
      }
      ++stats_.folded_consts;
    } else if (is_float_lit(x)) {
      switch (e.cast_to) {
        case Type::kI32:
          make_int(e, sat_i32(x.float_value), Type::kI32);
          break;
        case Type::kI64:
          make_int(e, sat_i64(x.float_value), Type::kI64);
          break;
        case Type::kF64:
          make_float(e, x.float_value);
          break;
        case Type::kVoid:
          return;
      }
      ++stats_.folded_consts;
    }
  }

  void fold_binary(Expr& e) {
    Expr& a = *e.lhs;
    Expr& b = *e.rhs;

    // Literal op literal.
    if (is_int_lit(a) && is_int_lit(b) && a.lit_type == b.lit_type) {
      if (fold_int_binary(e, a, b)) return;
    }
    if (is_float_lit(a) && is_float_lit(b)) {
      if (fold_float_binary(e, a, b)) return;
    }

    // Algebraic identities (value-preserving, purity-guarded).
    auto int_is = [](const Expr& x, int64_t v) {
      return is_int_lit(x) && (x.lit_type == Type::kI32 ? x.int_value == v
                                                        : x.int_value == v);
    };
    auto float_is = [](const Expr& x, double v) {
      return is_float_lit(x) && x.float_value == v;
    };
    switch (e.bin_op) {
      case BinOp::kAdd:
        if (int_is(b, 0) || float_is(b, 0.0)) {
          hoist(e, std::move(e.lhs));
          ++stats_.algebraic_simplifications;
        } else if ((int_is(a, 0) || float_is(a, 0.0)) && is_pure(b)) {
          hoist(e, std::move(e.rhs));
          ++stats_.algebraic_simplifications;
        }
        break;
      case BinOp::kSub:
        if (int_is(b, 0) || float_is(b, 0.0)) {
          hoist(e, std::move(e.lhs));
          ++stats_.algebraic_simplifications;
        }
        break;
      case BinOp::kMul:
        if (int_is(b, 1) || float_is(b, 1.0)) {
          hoist(e, std::move(e.lhs));
          ++stats_.algebraic_simplifications;
        } else if ((int_is(a, 1) || float_is(a, 1.0)) && is_pure(b)) {
          hoist(e, std::move(e.rhs));
          ++stats_.algebraic_simplifications;
        } else if (int_is(b, 0) && is_pure(a)) {
          // x * 0 == 0 only when x is pure (and integral: 0.0 * NaN is NaN,
          // so the float case is never folded). The program already
          // typechecked, so b's literal type is the operand type.
          Type zero_type = b.lit_type;
          make_int(e, 0, zero_type);
          ++stats_.algebraic_simplifications;
        }
        break;
      case BinOp::kDiv:
        if (int_is(b, 1) || float_is(b, 1.0)) {
          hoist(e, std::move(e.lhs));
          ++stats_.algebraic_simplifications;
        }
        break;
      default:
        break;
    }
  }

  bool fold_int_binary(Expr& e, const Expr& a, const Expr& b) {
    const bool is32 = a.lit_type == Type::kI32;
    const int64_t av = is32 ? as_i32(a) : a.int_value;
    const int64_t bv = is32 ? as_i32(b) : b.int_value;
    const uint64_t ua = is32 ? static_cast<uint32_t>(av) : static_cast<uint64_t>(av);
    const uint64_t ub = is32 ? static_cast<uint32_t>(bv) : static_cast<uint64_t>(bv);

    auto wrap = [&](uint64_t v) -> int64_t {
      return is32 ? static_cast<int32_t>(static_cast<uint32_t>(v))
                  : static_cast<int64_t>(v);
    };

    int64_t result;
    Type result_type = a.lit_type;
    switch (e.bin_op) {
      case BinOp::kAdd: result = wrap(ua + ub); break;
      case BinOp::kSub: result = wrap(ua - ub); break;
      case BinOp::kMul: result = wrap(ua * ub); break;
      case BinOp::kDiv:
        // Trapping cases stay in the program (division by zero and the
        // INT_MIN / -1 overflow must trap at runtime, not fold).
        if (bv == 0) return false;
        if (is32 && av == std::numeric_limits<int32_t>::min() && bv == -1) return false;
        if (!is32 && av == std::numeric_limits<int64_t>::min() && bv == -1) return false;
        result = av / bv;
        break;
      case BinOp::kRem:
        if (bv == 0) return false;
        if (av == (is32 ? std::numeric_limits<int32_t>::min()
                        : std::numeric_limits<int64_t>::min()) &&
            bv == -1) {
          result = 0;
        } else {
          result = av % bv;
        }
        break;
      case BinOp::kEq: result = av == bv; result_type = Type::kI32; break;
      case BinOp::kNe: result = av != bv; result_type = Type::kI32; break;
      case BinOp::kLt: result = av < bv; result_type = Type::kI32; break;
      case BinOp::kGt: result = av > bv; result_type = Type::kI32; break;
      case BinOp::kLe: result = av <= bv; result_type = Type::kI32; break;
      case BinOp::kGe: result = av >= bv; result_type = Type::kI32; break;
      case BinOp::kAnd:
        if (!is32) return false;
        result = (av != 0 && bv != 0) ? 1 : 0;
        result_type = Type::kI32;
        break;
      case BinOp::kOr:
        if (!is32) return false;
        result = (av != 0 || bv != 0) ? 1 : 0;
        result_type = Type::kI32;
        break;
      default:
        return false;
    }
    make_int(e, result, result_type);
    ++stats_.folded_consts;
    return true;
  }

  bool fold_float_binary(Expr& e, const Expr& a, const Expr& b) {
    double av = a.float_value, bv = b.float_value;
    switch (e.bin_op) {
      case BinOp::kAdd: make_float(e, av + bv); break;
      case BinOp::kSub: make_float(e, av - bv); break;
      case BinOp::kMul: make_float(e, av * bv); break;
      case BinOp::kDiv: make_float(e, av / bv); break;  // IEEE: no trap
      case BinOp::kEq: make_int(e, av == bv, Type::kI32); break;
      case BinOp::kNe: make_int(e, av != bv, Type::kI32); break;
      case BinOp::kLt: make_int(e, av < bv, Type::kI32); break;
      case BinOp::kGt: make_int(e, av > bv, Type::kI32); break;
      case BinOp::kLe: make_int(e, av <= bv, Type::kI32); break;
      case BinOp::kGe: make_int(e, av >= bv, Type::kI32); break;
      default:
        return false;  // % and logical ops are invalid on f64 anyway
    }
    ++stats_.folded_consts;
    return true;
  }
};

}  // namespace

OptStats optimize(Program& program) {
  Optimizer opt;
  return opt.run(program);
}

}  // namespace waran::wcc
