// Recursive-descent parser for W (grammar in doc/wcc.md and mirrored in
// the header comments of token.h). Produces the AST; all semantic checking
// happens in the compiler pass.
#pragma once

#include <string_view>

#include "common/result.h"
#include "wcc/ast.h"

namespace waran::wcc {

Result<Program> parse(std::string_view source);

}  // namespace waran::wcc
