// wcc optimizer (the paper's §6C "code optimization" mitigation for the
// interpretation gap): an AST-level pass run before codegen.
//
//   - constant folding of unary/binary operators and casts on literals,
//     with exact wasm semantics (i32/i64 wraparound, saturating float->int);
//     trapping cases (constant division by zero) are deliberately left
//     unfolded so runtime behaviour is preserved;
//   - algebraic identities on side-effect-free operands
//     (x+0, x-0, x*1, x*0, x/1, 0/x is NOT folded — x might be 0);
//   - dead-branch elimination: `if` with a constant condition keeps only
//     the taken branch; `while (0)` disappears.
//
// The pass is semantics-preserving by construction; tests/wcc_opt_test.cpp
// checks output equivalence and measures the retired-instruction savings.
#pragma once

#include "wcc/ast.h"

namespace waran::wcc {

struct OptStats {
  uint32_t folded_consts = 0;
  uint32_t algebraic_simplifications = 0;
  uint32_t dead_branches_removed = 0;
  uint32_t dead_loops_removed = 0;

  uint32_t total() const {
    return folded_consts + algebraic_simplifications + dead_branches_removed +
           dead_loops_removed;
  }
};

/// Optimizes `program` in place; returns what it did.
OptStats optimize(Program& program);

}  // namespace waran::wcc
