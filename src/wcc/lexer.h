// Hand-written lexer for W. Line comments (`//`) only; whitespace
// insignificant. Produces the full token stream up front (W sources are a
// few hundred tokens, so there is no need to stream).
#pragma once

#include <string_view>
#include <vector>

#include "common/result.h"
#include "wcc/token.h"

namespace waran::wcc {

Result<std::vector<Token>> lex(std::string_view source);

}  // namespace waran::wcc
