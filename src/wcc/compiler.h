// wcc: compiles W source to a WebAssembly module binary.
//
// Language surface (see also doc/wcc.md):
//   global g: i32 = 0;
//   export fn schedule() -> i32 { ... }
//   var x: f64 = 1.5;  if/else, while, break, continue, return
//   casts: i32(x), i64(x), f64(x)    (float->int casts saturate)
//
// Intrinsics lower to single opcodes:
//   load8u/load16u/load32/load64/loadf64 (addr) ; store8/16/32/64/f64
//   memory_size() memory_grow(pages) trap()
//   sqrt/floor/ceil/abs (f64)
//
// Host functions from the WA-RAN ABI are imported on demand (only the ones
// a program actually calls become wasm imports):
//   input_len() -> i32 ; input_read(dst, off, len) -> i32
//   output_write(ptr, len) ; log(ptr, len) ; abort(code)
// Additional embedder host functions (the gNB / RIC control surfaces) are
// declared with `extern fn name(args...) -> type;` and import module "env".
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace waran::wcc {

struct CompileOptions {
  /// Run the AST optimizer (constant folding, algebraic identities, dead
  /// branches — see wcc/optimizer.h). Type checking always happens on the
  /// unoptimized program, so diagnostics are identical either way.
  bool optimize = true;
  uint32_t memory_pages_min = 4;
  std::optional<uint32_t> memory_pages_max = 64;
  bool export_memory = true;
};

/// Compiles W source to a wasm binary module. The output always passes the
/// engine's validator (the test suite enforces this).
Result<std::vector<uint8_t>> compile(std::string_view source,
                                     const CompileOptions& options = {});

}  // namespace waran::wcc
