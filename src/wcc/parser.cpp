#include "wcc/parser.h"

#include "wcc/lexer.h"

namespace waran::wcc {

const char* to_string(Type t) {
  switch (t) {
    case Type::kVoid: return "void";
    case Type::kI32: return "i32";
    case Type::kI64: return "i64";
    case Type::kF64: return "f64";
  }
  return "?";
}

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : toks_(std::move(tokens)) {}

  Result<Program> run() {
    Program prog;
    while (peek().kind != Tok::kEof) {
      if (peek().kind == Tok::kGlobal) {
        auto g = global_decl();
        if (!g.ok()) return g.error();
        prog.globals.push_back(std::move(*g));
      } else if (peek().kind == Tok::kExtern) {
        auto e = extern_decl();
        if (!e.ok()) return e.error();
        prog.externs.push_back(std::move(*e));
      } else if (peek().kind == Tok::kFn || peek().kind == Tok::kExport) {
        auto f = func_decl();
        if (!f.ok()) return f.error();
        prog.funcs.push_back(std::move(*f));
      } else {
        return err("expected 'fn', 'export fn', 'extern fn' or 'global'");
      }
    }
    return prog;
  }

 private:
  std::vector<Token> toks_;
  size_t pos_ = 0;

  const Token& peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < toks_.size() ? toks_[i] : toks_.back();
  }
  Token take() { return toks_[pos_ < toks_.size() - 1 ? pos_++ : pos_]; }

  Error err(const std::string& msg) const {
    const Token& t = peek();
    return Error::decode("wcc parse error at " + std::to_string(t.line) + ":" +
                         std::to_string(t.col) + ": " + msg + " (got " +
                         to_string(t.kind) + ")");
  }

  bool accept(Tok k) {
    if (peek().kind == k) {
      take();
      return true;
    }
    return false;
  }

  Status expect(Tok k, const char* what) {
    if (!accept(k)) return err(std::string("expected ") + what);
    return {};
  }

  Result<Type> type_name() {
    switch (peek().kind) {
      case Tok::kI32: take(); return Type::kI32;
      case Tok::kI64: take(); return Type::kI64;
      case Tok::kF64: take(); return Type::kF64;
      default: return err("expected a type (i32, i64, f64)");
    }
  }

  Result<GlobalDecl> global_decl() {
    GlobalDecl g;
    g.line = peek().line;
    take();  // 'global'
    if (peek().kind != Tok::kIdent) return err("expected global name");
    g.name = take().text;
    WARAN_CHECK_OK(expect(Tok::kColon, "':'"));
    WARAN_TRY(ty, type_name());
    g.type = ty;
    if (accept(Tok::kAssign)) {
      bool neg = accept(Tok::kMinus);
      if (peek().kind == Tok::kIntLit) {
        g.int_init = take().int_value * (neg ? -1 : 1);
        g.float_init = static_cast<double>(g.int_init);
      } else if (peek().kind == Tok::kFloatLit) {
        g.float_init = take().float_value * (neg ? -1.0 : 1.0);
      } else {
        return err("global initializer must be a literal");
      }
    }
    WARAN_CHECK_OK(expect(Tok::kSemi, "';'"));
    return g;
  }

  Result<ExternDecl> extern_decl() {
    ExternDecl e;
    e.line = peek().line;
    take();  // 'extern'
    WARAN_CHECK_OK(expect(Tok::kFn, "'fn' after 'extern'"));
    if (peek().kind != Tok::kIdent) return err("expected extern function name");
    e.name = take().text;
    WARAN_CHECK_OK(expect(Tok::kLParen, "'('"));
    if (!accept(Tok::kRParen)) {
      while (true) {
        if (peek().kind != Tok::kIdent) return err("expected parameter name");
        Param p;
        p.name = take().text;
        WARAN_CHECK_OK(expect(Tok::kColon, "':'"));
        WARAN_TRY(ty, type_name());
        p.type = ty;
        e.params.push_back(std::move(p));
        if (accept(Tok::kRParen)) break;
        WARAN_CHECK_OK(expect(Tok::kComma, "','"));
      }
    }
    if (accept(Tok::kArrow)) {
      WARAN_TRY(ty, type_name());
      e.return_type = ty;
    }
    WARAN_CHECK_OK(expect(Tok::kSemi, "';'"));
    return e;
  }

  Result<FuncDecl> func_decl() {
    FuncDecl f;
    f.line = peek().line;
    f.exported = accept(Tok::kExport);
    WARAN_CHECK_OK(expect(Tok::kFn, "'fn'"));
    if (peek().kind != Tok::kIdent) return err("expected function name");
    f.name = take().text;
    WARAN_CHECK_OK(expect(Tok::kLParen, "'('"));
    if (!accept(Tok::kRParen)) {
      while (true) {
        if (peek().kind != Tok::kIdent) return err("expected parameter name");
        Param p;
        p.name = take().text;
        WARAN_CHECK_OK(expect(Tok::kColon, "':'"));
        WARAN_TRY(ty, type_name());
        p.type = ty;
        f.params.push_back(std::move(p));
        if (accept(Tok::kRParen)) break;
        WARAN_CHECK_OK(expect(Tok::kComma, "','"));
      }
    }
    if (accept(Tok::kArrow)) {
      WARAN_TRY(ty, type_name());
      f.return_type = ty;
    }
    WARAN_TRY(body, block());
    f.body = std::move(body);
    return f;
  }

  Result<std::vector<StmtPtr>> block() {
    WARAN_CHECK_OK(expect(Tok::kLBrace, "'{'"));
    std::vector<StmtPtr> stmts;
    while (!accept(Tok::kRBrace)) {
      if (peek().kind == Tok::kEof) return err("unterminated block");
      WARAN_TRY(s, statement());
      stmts.push_back(std::move(s));
    }
    return stmts;
  }

  Result<StmtPtr> statement() {
    auto s = std::make_unique<Stmt>();
    s->line = peek().line;
    switch (peek().kind) {
      case Tok::kVar: {
        take();
        s->kind = Stmt::Kind::kVarDecl;
        if (peek().kind != Tok::kIdent) return err("expected variable name");
        s->name = take().text;
        WARAN_CHECK_OK(expect(Tok::kColon, "':'"));
        WARAN_TRY(ty, type_name());
        s->decl_type = ty;
        if (accept(Tok::kAssign)) {
          WARAN_TRY(e, expression());
          s->expr = std::move(e);
        }
        WARAN_CHECK_OK(expect(Tok::kSemi, "';'"));
        return s;
      }
      case Tok::kIf: {
        take();
        s->kind = Stmt::Kind::kIf;
        WARAN_CHECK_OK(expect(Tok::kLParen, "'('"));
        WARAN_TRY(cond, expression());
        s->expr = std::move(cond);
        WARAN_CHECK_OK(expect(Tok::kRParen, "')'"));
        WARAN_TRY(then_body, block());
        s->body = std::move(then_body);
        if (accept(Tok::kElse)) {
          if (peek().kind == Tok::kIf) {
            WARAN_TRY(chained, statement());
            s->else_body.push_back(std::move(chained));
          } else {
            WARAN_TRY(else_b, block());
            s->else_body = std::move(else_b);
          }
        }
        return s;
      }
      case Tok::kWhile: {
        take();
        s->kind = Stmt::Kind::kWhile;
        WARAN_CHECK_OK(expect(Tok::kLParen, "'('"));
        WARAN_TRY(cond, expression());
        s->expr = std::move(cond);
        WARAN_CHECK_OK(expect(Tok::kRParen, "')'"));
        WARAN_TRY(body, block());
        s->body = std::move(body);
        return s;
      }
      case Tok::kBreak:
        take();
        s->kind = Stmt::Kind::kBreak;
        WARAN_CHECK_OK(expect(Tok::kSemi, "';'"));
        return s;
      case Tok::kContinue:
        take();
        s->kind = Stmt::Kind::kContinue;
        WARAN_CHECK_OK(expect(Tok::kSemi, "';'"));
        return s;
      case Tok::kReturn: {
        take();
        s->kind = Stmt::Kind::kReturn;
        if (!accept(Tok::kSemi)) {
          WARAN_TRY(e, expression());
          s->expr = std::move(e);
          WARAN_CHECK_OK(expect(Tok::kSemi, "';'"));
        }
        return s;
      }
      case Tok::kIdent: {
        // Either an assignment `x = expr;` or an expression statement.
        if (peek(1).kind == Tok::kAssign) {
          s->kind = Stmt::Kind::kAssign;
          s->name = take().text;
          take();  // '='
          WARAN_TRY(e, expression());
          s->expr = std::move(e);
          WARAN_CHECK_OK(expect(Tok::kSemi, "';'"));
          return s;
        }
        [[fallthrough]];
      }
      default: {
        s->kind = Stmt::Kind::kExprStmt;
        WARAN_TRY(e, expression());
        s->expr = std::move(e);
        WARAN_CHECK_OK(expect(Tok::kSemi, "';'"));
        return s;
      }
    }
  }

  // Expression precedence climbing.
  Result<ExprPtr> expression() { return logical_or(); }

  Result<ExprPtr> logical_or() {
    WARAN_TRY(lhs, logical_and());
    ExprPtr node = std::move(lhs);
    while (peek().kind == Tok::kPipePipe) {
      uint32_t line = take().line;
      WARAN_TRY(rhs, logical_and());
      node = make_binary(BinOp::kOr, std::move(node), std::move(rhs), line);
    }
    return node;
  }

  Result<ExprPtr> logical_and() {
    WARAN_TRY(lhs, equality());
    ExprPtr node = std::move(lhs);
    while (peek().kind == Tok::kAmpAmp) {
      uint32_t line = take().line;
      WARAN_TRY(rhs, equality());
      node = make_binary(BinOp::kAnd, std::move(node), std::move(rhs), line);
    }
    return node;
  }

  Result<ExprPtr> equality() {
    WARAN_TRY(lhs, relational());
    ExprPtr node = std::move(lhs);
    while (peek().kind == Tok::kEq || peek().kind == Tok::kNe) {
      BinOp op = peek().kind == Tok::kEq ? BinOp::kEq : BinOp::kNe;
      uint32_t line = take().line;
      WARAN_TRY(rhs, relational());
      node = make_binary(op, std::move(node), std::move(rhs), line);
    }
    return node;
  }

  Result<ExprPtr> relational() {
    WARAN_TRY(lhs, additive());
    ExprPtr node = std::move(lhs);
    while (true) {
      BinOp op;
      switch (peek().kind) {
        case Tok::kLt: op = BinOp::kLt; break;
        case Tok::kGt: op = BinOp::kGt; break;
        case Tok::kLe: op = BinOp::kLe; break;
        case Tok::kGe: op = BinOp::kGe; break;
        default: return node;
      }
      uint32_t line = take().line;
      WARAN_TRY(rhs, additive());
      node = make_binary(op, std::move(node), std::move(rhs), line);
    }
  }

  Result<ExprPtr> additive() {
    WARAN_TRY(lhs, multiplicative());
    ExprPtr node = std::move(lhs);
    while (peek().kind == Tok::kPlus || peek().kind == Tok::kMinus) {
      BinOp op = peek().kind == Tok::kPlus ? BinOp::kAdd : BinOp::kSub;
      uint32_t line = take().line;
      WARAN_TRY(rhs, multiplicative());
      node = make_binary(op, std::move(node), std::move(rhs), line);
    }
    return node;
  }

  Result<ExprPtr> multiplicative() {
    WARAN_TRY(lhs, unary());
    ExprPtr node = std::move(lhs);
    while (peek().kind == Tok::kStar || peek().kind == Tok::kSlash ||
           peek().kind == Tok::kPercent) {
      BinOp op = peek().kind == Tok::kStar    ? BinOp::kMul
                 : peek().kind == Tok::kSlash ? BinOp::kDiv
                                              : BinOp::kRem;
      uint32_t line = take().line;
      WARAN_TRY(rhs, unary());
      node = make_binary(op, std::move(node), std::move(rhs), line);
    }
    return node;
  }

  Result<ExprPtr> unary() {
    if (peek().kind == Tok::kMinus || peek().kind == Tok::kBang) {
      UnOp op = peek().kind == Tok::kMinus ? UnOp::kNeg : UnOp::kNot;
      uint32_t line = take().line;
      WARAN_TRY(operand, unary());
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kUnary;
      e->un_op = op;
      e->lhs = std::move(operand);
      e->line = line;
      return e;
    }
    return primary();
  }

  Result<ExprPtr> primary() {
    const Token& t = peek();
    // Cast: type '(' expr ')'.
    if (t.kind == Tok::kI32 || t.kind == Tok::kI64 || t.kind == Tok::kF64) {
      Type to = t.kind == Tok::kI32 ? Type::kI32 : t.kind == Tok::kI64 ? Type::kI64
                                                                       : Type::kF64;
      uint32_t line = take().line;
      WARAN_CHECK_OK(expect(Tok::kLParen, "'(' after cast type"));
      WARAN_TRY(inner, expression());
      WARAN_CHECK_OK(expect(Tok::kRParen, "')'"));
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kCast;
      e->cast_to = to;
      e->lhs = std::move(inner);
      e->line = line;
      return e;
    }
    if (t.kind == Tok::kIntLit) {
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kIntLit;
      e->int_value = take().int_value;
      e->line = t.line;
      return e;
    }
    if (t.kind == Tok::kFloatLit) {
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kFloatLit;
      e->float_value = take().float_value;
      e->line = t.line;
      return e;
    }
    if (t.kind == Tok::kIdent) {
      Token ident = take();
      if (accept(Tok::kLParen)) {
        auto e = std::make_unique<Expr>();
        e->kind = Expr::Kind::kCall;
        e->name = ident.text;
        e->line = ident.line;
        if (!accept(Tok::kRParen)) {
          while (true) {
            WARAN_TRY(arg, expression());
            e->args.push_back(std::move(arg));
            if (accept(Tok::kRParen)) break;
            WARAN_CHECK_OK(expect(Tok::kComma, "','"));
          }
        }
        return e;
      }
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kVarRef;
      e->name = ident.text;
      e->line = ident.line;
      return e;
    }
    if (accept(Tok::kLParen)) {
      WARAN_TRY(inner, expression());
      WARAN_CHECK_OK(expect(Tok::kRParen, "')'"));
      return std::move(inner);
    }
    return err("expected an expression");
  }

  static ExprPtr make_binary(BinOp op, ExprPtr lhs, ExprPtr rhs, uint32_t line) {
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::kBinary;
    e->bin_op = op;
    e->lhs = std::move(lhs);
    e->rhs = std::move(rhs);
    e->line = line;
    return e;
  }
};

}  // namespace

Result<Program> parse(std::string_view source) {
  WARAN_TRY(tokens, lex(source));
  Parser p(std::move(tokens));
  return p.run();
}

}  // namespace waran::wcc
