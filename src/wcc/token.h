// Token definitions for the W language ("wcc": the WA-RAN plugin compiler).
//
// W is a deliberately small C-like language that compiles to WebAssembly
// through the in-repo wasmbuilder backend — the "tailored 5G RAN Wasm
// toolchain" the paper calls for in §6D. All WA-RAN scheduler and xApp
// plugins are written in W (src/sched/plugins.cpp embeds their sources).
#pragma once

#include <cstdint>
#include <string>

namespace waran::wcc {

enum class Tok : uint8_t {
  kEof,
  kIdent,
  kIntLit,
  kFloatLit,
  // Keywords.
  kFn,
  kVar,
  kGlobal,
  kExport,
  kExtern,
  kIf,
  kElse,
  kWhile,
  kBreak,
  kContinue,
  kReturn,
  kI32,
  kI64,
  kF64,
  // Punctuation.
  kLParen,
  kRParen,
  kLBrace,
  kRBrace,
  kComma,
  kColon,
  kSemi,
  kArrow,   // ->
  kAssign,  // =
  // Operators.
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kPercent,
  kAmpAmp,
  kPipePipe,
  kBang,
  kEq,   // ==
  kNe,   // !=
  kLt,
  kGt,
  kLe,
  kGe,
};

struct Token {
  Tok kind = Tok::kEof;
  std::string text;     // identifier spelling
  int64_t int_value = 0;
  double float_value = 0;
  uint32_t line = 1;
  uint32_t col = 1;
};

const char* to_string(Tok t);

}  // namespace waran::wcc
