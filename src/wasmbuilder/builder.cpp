#include "wasmbuilder/builder.h"

#include <algorithm>
#include <cassert>

namespace waran::wasmbuilder {

void FunctionBuilder::emit_op(Op o) {
  uint16_t v = static_cast<uint16_t>(o);
  if (v >= 0xfc00) {
    body_.u8(0xfc);
    body_.uleb32(v & 0xff);
  } else {
    body_.u8(static_cast<uint8_t>(v));
  }
}

FunctionBuilder& FunctionBuilder::op(Op o) {
  emit_op(o);
  return *this;
}

FunctionBuilder& FunctionBuilder::i32_const(int32_t v) {
  emit_op(Op::kI32Const);
  body_.sleb32(v);
  return *this;
}

FunctionBuilder& FunctionBuilder::i64_const(int64_t v) {
  emit_op(Op::kI64Const);
  body_.sleb(v);
  return *this;
}

FunctionBuilder& FunctionBuilder::f32_const(float v) {
  emit_op(Op::kF32Const);
  body_.f32le(v);
  return *this;
}

FunctionBuilder& FunctionBuilder::f64_const(double v) {
  emit_op(Op::kF64Const);
  body_.f64le(v);
  return *this;
}

FunctionBuilder& FunctionBuilder::local_get(uint32_t idx) {
  emit_op(Op::kLocalGet);
  body_.uleb32(idx);
  return *this;
}

FunctionBuilder& FunctionBuilder::local_set(uint32_t idx) {
  emit_op(Op::kLocalSet);
  body_.uleb32(idx);
  return *this;
}

FunctionBuilder& FunctionBuilder::local_tee(uint32_t idx) {
  emit_op(Op::kLocalTee);
  body_.uleb32(idx);
  return *this;
}

FunctionBuilder& FunctionBuilder::global_get(uint32_t idx) {
  emit_op(Op::kGlobalGet);
  body_.uleb32(idx);
  return *this;
}

FunctionBuilder& FunctionBuilder::global_set(uint32_t idx) {
  emit_op(Op::kGlobalSet);
  body_.uleb32(idx);
  return *this;
}

namespace {
void emit_block_type(ByteWriter& w, BlockT bt) {
  if (bt.result) {
    w.u8(static_cast<uint8_t>(*bt.result));
  } else {
    w.u8(0x40);
  }
}
}  // namespace

FunctionBuilder& FunctionBuilder::block(BlockT bt) {
  emit_op(Op::kBlock);
  emit_block_type(body_, bt);
  return *this;
}

FunctionBuilder& FunctionBuilder::loop(BlockT bt) {
  emit_op(Op::kLoop);
  emit_block_type(body_, bt);
  return *this;
}

FunctionBuilder& FunctionBuilder::if_(BlockT bt) {
  emit_op(Op::kIf);
  emit_block_type(body_, bt);
  return *this;
}

FunctionBuilder& FunctionBuilder::else_() { return op(Op::kElse); }
FunctionBuilder& FunctionBuilder::end() { return op(Op::kEnd); }

FunctionBuilder& FunctionBuilder::br(uint32_t depth) {
  emit_op(Op::kBr);
  body_.uleb32(depth);
  return *this;
}

FunctionBuilder& FunctionBuilder::br_if(uint32_t depth) {
  emit_op(Op::kBrIf);
  body_.uleb32(depth);
  return *this;
}

FunctionBuilder& FunctionBuilder::br_table(const std::vector<uint32_t>& targets,
                                           uint32_t default_target) {
  emit_op(Op::kBrTable);
  body_.uleb32(static_cast<uint32_t>(targets.size()));
  for (uint32_t t : targets) body_.uleb32(t);
  body_.uleb32(default_target);
  return *this;
}

FunctionBuilder& FunctionBuilder::call(uint32_t func_index) {
  emit_op(Op::kCall);
  body_.uleb32(func_index);
  return *this;
}

FunctionBuilder& FunctionBuilder::call_indirect(uint32_t type_index) {
  emit_op(Op::kCallIndirect);
  body_.uleb32(type_index);
  body_.u8(0);  // table index
  return *this;
}

FunctionBuilder& FunctionBuilder::load(Op o, uint32_t offset, uint32_t align_log2) {
  emit_op(o);
  body_.uleb32(align_log2);
  body_.uleb32(offset);
  return *this;
}

FunctionBuilder& FunctionBuilder::store(Op o, uint32_t offset, uint32_t align_log2) {
  emit_op(o);
  body_.uleb32(align_log2);
  body_.uleb32(offset);
  return *this;
}

FunctionBuilder& FunctionBuilder::memory_size() {
  emit_op(Op::kMemorySize);
  body_.u8(0);
  return *this;
}

FunctionBuilder& FunctionBuilder::memory_grow() {
  emit_op(Op::kMemoryGrow);
  body_.u8(0);
  return *this;
}

FunctionBuilder& FunctionBuilder::memory_copy() {
  emit_op(Op::kMemoryCopy);
  body_.u8(0);
  body_.u8(0);
  return *this;
}

FunctionBuilder& FunctionBuilder::memory_fill() {
  emit_op(Op::kMemoryFill);
  body_.u8(0);
  return *this;
}

std::vector<uint8_t> FunctionBuilder::finish() const {
  // Locals are emitted as run-length groups of equal types.
  ByteWriter w;
  std::vector<std::pair<ValType, uint32_t>> groups;
  for (ValType t : locals_) {
    if (!groups.empty() && groups.back().first == t) {
      ++groups.back().second;
    } else {
      groups.push_back({t, 1});
    }
  }
  w.uleb32(static_cast<uint32_t>(groups.size()));
  for (auto [t, n] : groups) {
    w.uleb32(n);
    w.u8(static_cast<uint8_t>(t));
  }
  w.bytes(body_.data());
  return w.take();
}

uint32_t ModuleBuilder::add_type(const FuncType& t) {
  auto it = std::find(types_.begin(), types_.end(), t);
  if (it != types_.end()) return static_cast<uint32_t>(it - types_.begin());
  types_.push_back(t);
  return static_cast<uint32_t>(types_.size() - 1);
}

uint32_t ModuleBuilder::import_func(const std::string& module, const std::string& name,
                                    const FuncType& type) {
  assert(funcs_.empty() && "imports must be declared before defined functions");
  imports_.push_back({module, name, add_type(type)});
  return static_cast<uint32_t>(imports_.size() - 1);
}

FunctionBuilder& ModuleBuilder::add_func(const FuncType& type,
                                         const std::string& export_name) {
  uint32_t index = num_funcs();
  func_type_indices_.push_back(add_type(type));
  funcs_.push_back(std::make_unique<FunctionBuilder>(type, index));
  if (!export_name.empty()) export_func(export_name, index);
  return *funcs_.back();
}

uint32_t ModuleBuilder::add_memory(uint32_t min_pages, std::optional<uint32_t> max_pages,
                                   const std::string& export_name) {
  memory_ = {min_pages, max_pages};
  if (!export_name.empty()) exports_.push_back({export_name, 2, 0});
  return 0;
}

uint32_t ModuleBuilder::add_global(ValType type, bool mut, wasm::Value init,
                                   const std::string& export_name) {
  globals_.push_back({type, mut, init});
  uint32_t index = static_cast<uint32_t>(globals_.size() - 1);
  if (!export_name.empty()) exports_.push_back({export_name, 3, index});
  return index;
}

uint32_t ModuleBuilder::add_table(uint32_t min, std::optional<uint32_t> max) {
  table_ = {min, max};
  return 0;
}

void ModuleBuilder::add_elem(uint32_t offset, const std::vector<uint32_t>& func_indices) {
  elems_.push_back({offset, func_indices});
}

void ModuleBuilder::add_data(uint32_t offset, std::span<const uint8_t> bytes) {
  datas_.push_back({offset, {bytes.begin(), bytes.end()}});
}

void ModuleBuilder::export_func(const std::string& name, uint32_t func_index) {
  exports_.push_back({name, 0, func_index});
}

void ModuleBuilder::add_export(const std::string& name, uint8_t kind, uint32_t index) {
  exports_.push_back({name, kind, index});
}

namespace {

void write_limits(ByteWriter& w, uint32_t min, std::optional<uint32_t> max) {
  w.u8(max ? 1 : 0);
  w.uleb32(min);
  if (max) w.uleb32(*max);
}

void write_section(ByteWriter& out, uint8_t id, const ByteWriter& payload) {
  out.u8(id);
  out.uleb32(static_cast<uint32_t>(payload.size()));
  out.bytes(payload.data());
}

void write_const_init(ByteWriter& w, ValType type, wasm::Value v) {
  switch (type) {
    case ValType::kI32:
      w.u8(0x41);
      w.sleb32(v.as_i32());
      break;
    case ValType::kI64:
      w.u8(0x42);
      w.sleb(v.as_i64());
      break;
    case ValType::kF32:
      w.u8(0x43);
      w.f32le(v.as_f32());
      break;
    case ValType::kF64:
      w.u8(0x44);
      w.f64le(v.as_f64());
      break;
  }
  w.u8(0x0b);
}

}  // namespace

std::vector<uint8_t> ModuleBuilder::build() const {
  ByteWriter out;
  out.u32le(0x6d736100u);  // "\0asm"
  out.u32le(1);

  if (!types_.empty()) {
    ByteWriter s;
    s.uleb32(static_cast<uint32_t>(types_.size()));
    for (const FuncType& t : types_) {
      s.u8(0x60);
      s.uleb32(static_cast<uint32_t>(t.params.size()));
      for (ValType p : t.params) s.u8(static_cast<uint8_t>(p));
      s.uleb32(static_cast<uint32_t>(t.results.size()));
      for (ValType r : t.results) s.u8(static_cast<uint8_t>(r));
    }
    write_section(out, 1, s);
  }

  if (!imports_.empty()) {
    ByteWriter s;
    s.uleb32(static_cast<uint32_t>(imports_.size()));
    for (const ImportEntry& imp : imports_) {
      s.name(imp.module);
      s.name(imp.name);
      s.u8(0);
      s.uleb32(imp.type_index);
    }
    write_section(out, 2, s);
  }

  if (!funcs_.empty()) {
    ByteWriter s;
    s.uleb32(static_cast<uint32_t>(funcs_.size()));
    for (uint32_t ti : func_type_indices_) s.uleb32(ti);
    write_section(out, 3, s);
  }

  if (table_) {
    ByteWriter s;
    s.uleb32(1);
    s.u8(0x70);
    write_limits(s, table_->first, table_->second);
    write_section(out, 4, s);
  }

  if (memory_) {
    ByteWriter s;
    s.uleb32(1);
    write_limits(s, memory_->first, memory_->second);
    write_section(out, 5, s);
  }

  if (!globals_.empty()) {
    ByteWriter s;
    s.uleb32(static_cast<uint32_t>(globals_.size()));
    for (const GlobalEntry& g : globals_) {
      s.u8(static_cast<uint8_t>(g.type));
      s.u8(g.mut ? 1 : 0);
      write_const_init(s, g.type, g.init);
    }
    write_section(out, 6, s);
  }

  if (!exports_.empty()) {
    ByteWriter s;
    s.uleb32(static_cast<uint32_t>(exports_.size()));
    for (const ExportEntry& e : exports_) {
      s.name(e.name);
      s.u8(e.kind);
      s.uleb32(e.index);
    }
    write_section(out, 7, s);
  }

  if (start_) {
    ByteWriter s;
    s.uleb32(*start_);
    write_section(out, 8, s);
  }

  if (!elems_.empty()) {
    ByteWriter s;
    s.uleb32(static_cast<uint32_t>(elems_.size()));
    for (const ElemEntry& e : elems_) {
      s.uleb32(0);  // flags: active, table 0
      s.u8(0x41);
      s.sleb32(static_cast<int32_t>(e.offset));
      s.u8(0x0b);
      s.uleb32(static_cast<uint32_t>(e.funcs.size()));
      for (uint32_t f : e.funcs) s.uleb32(f);
    }
    write_section(out, 9, s);
  }

  if (!funcs_.empty()) {
    ByteWriter s;
    s.uleb32(static_cast<uint32_t>(funcs_.size()));
    for (const auto& f : funcs_) {
      std::vector<uint8_t> body = f->finish();
      s.uleb32(static_cast<uint32_t>(body.size()));
      s.bytes(body);
    }
    write_section(out, 10, s);
  }

  if (!datas_.empty()) {
    ByteWriter s;
    s.uleb32(static_cast<uint32_t>(datas_.size()));
    for (const DataEntry& d : datas_) {
      s.uleb32(0);  // flags: active, memory 0
      s.u8(0x41);
      s.sleb32(static_cast<int32_t>(d.offset));
      s.u8(0x0b);
      s.uleb32(static_cast<uint32_t>(d.bytes.size()));
      s.bytes(d.bytes);
    }
    write_section(out, 11, s);
  }

  return out.take();
}

}  // namespace waran::wasmbuilder
