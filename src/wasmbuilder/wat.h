// WAT assembler: parses the textual module format the disassembler emits
// (a flat-instruction WAT dialect) back into a binary module. Together with
// disasm.h this closes the toolchain loop — `waranc dump` output can be
// edited by hand and reassembled (`waranc asm`), the workflow a System
// Integrator uses to patch a vendor plugin whose sources they do not have.
//
// Supported grammar (exactly the disassembler's output shape):
//   (module
//     (type N (func (param t*) (result t?)))
//     (import "mod" "name" (func (param t*) (result t?)))
//     (memory min max?)
//     (table min max? funcref)
//     (global N (mut? t) (t.const VALUE))
//     (export "name" (func|memory|table|global N))
//     (start N)
//     (elem (i32.const OFF) FUNCIDX*)
//     (data (i32.const OFF) "\hh...")
//     (func $N (param t*) (result t?) (local t*)? INSTR* )
//   )
// Instructions are flat (no s-expression nesting): `i32.const 5`,
// `block (result i32)`, `br_table 0 1 2`, `call_indirect (type N)`,
// `i32.load offset=16 align=4`, ... Function/type references are numeric.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace waran::wasmbuilder {

Result<std::vector<uint8_t>> assemble_wat(std::string_view text);

}  // namespace waran::wasmbuilder
