#include "wasmbuilder/wat.h"

#include "wasm/opcode.h"
#include "wasm/types.h"

#include <charconv>
#include <limits>
#include <map>
#include <optional>
#include <string>

#include "wasmbuilder/builder.h"

namespace waran::wasmbuilder {
namespace {

using wasm::Op;
using wasm::ValType;
using wasm::to_string;


// --- Tokenizer -------------------------------------------------------------

struct Token {
  enum class Kind : uint8_t { kLParen, kRParen, kString, kAtom, kEof } kind;
  std::string text;  // string contents (unescaped) or atom spelling
  uint32_t line = 1;
};

Result<std::vector<Token>> tokenize(std::string_view src) {
  std::vector<Token> out;
  uint32_t line = 1;
  size_t i = 0;
  auto err = [&](const std::string& msg) {
    return Error::decode("wat line " + std::to_string(line) + ": " + msg);
  };
  while (i < src.size()) {
    char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r') {
      ++i;
      continue;
    }
    if (c == ';' && i + 1 < src.size() && src[i + 1] == ';') {
      while (i < src.size() && src[i] != '\n') ++i;
      continue;
    }
    if (c == '(') {
      out.push_back({Token::Kind::kLParen, "(", line});
      ++i;
      continue;
    }
    if (c == ')') {
      out.push_back({Token::Kind::kRParen, ")", line});
      ++i;
      continue;
    }
    if (c == '"') {
      ++i;
      std::string s;
      while (i < src.size() && src[i] != '"') {
        if (src[i] == '\\') {
          // WAT string escapes: two hex digits (the only form we emit).
          if (i + 2 >= src.size()) return err("truncated string escape");
          auto nib = [](char h) -> int {
            if (h >= '0' && h <= '9') return h - '0';
            if (h >= 'a' && h <= 'f') return h - 'a' + 10;
            if (h >= 'A' && h <= 'F') return h - 'A' + 10;
            return -1;
          };
          int hi = nib(src[i + 1]), lo = nib(src[i + 2]);
          if (hi < 0 || lo < 0) return err("bad \\hh escape in string");
          s.push_back(static_cast<char>((hi << 4) | lo));
          i += 3;
        } else {
          s.push_back(src[i++]);
        }
      }
      if (i >= src.size()) return err("unterminated string");
      ++i;  // closing quote
      out.push_back({Token::Kind::kString, std::move(s), line});
      continue;
    }
    size_t start = i;
    while (i < src.size() && src[i] != ' ' && src[i] != '\t' && src[i] != '\n' &&
           src[i] != '\r' && src[i] != '(' && src[i] != ')') {
      ++i;
    }
    out.push_back({Token::Kind::kAtom, std::string(src.substr(start, i - start)), line});
  }
  out.push_back({Token::Kind::kEof, "", line});
  return out;
}

// --- Opcode name table ------------------------------------------------------

const std::map<std::string, Op>& opcode_by_name() {
  static const std::map<std::string, Op> kMap = [] {
    std::map<std::string, Op> m;
    auto consider = [&](uint16_t v) {
      Op op = static_cast<Op>(v);
      const char* name = to_string(op);
      if (name[0] != '<') m.emplace(name, op);
    };
    for (uint16_t v = 0x00; v <= 0xc4; ++v) consider(v);
    for (uint16_t v = 0xfc00; v <= 0xfc0b; ++v) consider(v);
    return m;
  }();
  return kMap;
}

// --- Parser ------------------------------------------------------------------

class WatParser {
 public:
  explicit WatParser(std::vector<Token> tokens) : toks_(std::move(tokens)) {}

  Result<std::vector<uint8_t>> run();

 private:
  std::vector<Token> toks_;
  size_t pos_ = 0;
  ModuleBuilder mb_;
  bool saw_func_ = false;

  const Token& peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < toks_.size() ? toks_[i] : toks_.back();
  }
  Token take() { return toks_[pos_ < toks_.size() - 1 ? pos_++ : pos_]; }
  bool accept(Token::Kind k) {
    if (peek().kind == k) {
      take();
      return true;
    }
    return false;
  }
  bool accept_atom(const char* text) {
    if (peek().kind == Token::Kind::kAtom && peek().text == text) {
      take();
      return true;
    }
    return false;
  }

  Error err(const std::string& msg) const {
    return Error::decode("wat line " + std::to_string(peek().line) + ": " + msg +
                         " (got '" + peek().text + "')");
  }

  Status expect(Token::Kind k, const char* what) {
    if (!accept(k)) return err(std::string("expected ") + what);
    return {};
  }
  Status expect_atom(const char* text) {
    if (!accept_atom(text)) return err(std::string("expected '") + text + "'");
    return {};
  }

  Result<int64_t> integer_atom() {
    if (peek().kind != Token::Kind::kAtom) return err("expected an integer");
    const std::string& t = peek().text;
    int64_t v = 0;
    auto [p, ec] = std::from_chars(t.data(), t.data() + t.size(), v);
    if (ec != std::errc() || p != t.data() + t.size()) return err("bad integer");
    take();
    return v;
  }

  Result<uint32_t> index_atom() {
    WARAN_TRY(v, integer_atom());
    if (v < 0 || v > UINT32_MAX) return err("index out of range");
    return static_cast<uint32_t>(v);
  }

  bool next_is_integer() const {
    if (peek().kind != Token::Kind::kAtom) return false;
    const std::string& t = peek().text;
    if (t.empty()) return false;
    size_t k = t[0] == '-' ? 1 : 0;
    if (k >= t.size()) return false;
    for (; k < t.size(); ++k) {
      if (t[k] < '0' || t[k] > '9') return false;
    }
    return true;
  }

  Result<double> float_atom() {
    if (peek().kind != Token::Kind::kAtom) return err("expected a number");
    std::string t = take().text;
    if (t == "nan" || t == "-nan" || t == "nan(canonical)") {
      return std::numeric_limits<double>::quiet_NaN();
    }
    if (t == "inf") return std::numeric_limits<double>::infinity();
    if (t == "-inf") return -std::numeric_limits<double>::infinity();
    double v = 0;
    auto [p, ec] = std::from_chars(t.data(), t.data() + t.size(), v);
    if (ec != std::errc() || p != t.data() + t.size()) {
      return Error::decode("wat: bad float literal '" + t + "'");
    }
    return v;
  }

  Result<ValType> val_type_atom() {
    if (peek().kind != Token::Kind::kAtom) return err("expected a value type");
    const std::string& t = peek().text;
    ValType v;
    if (t == "i32") v = ValType::kI32;
    else if (t == "i64") v = ValType::kI64;
    else if (t == "f32") v = ValType::kF32;
    else if (t == "f64") v = ValType::kF64;
    else return err("unknown value type");
    take();
    return v;
  }

  /// Parses optional `(param t*)` and `(result t?)` groups.
  Result<FuncType> signature() {
    FuncType ft;
    while (peek().kind == Token::Kind::kLParen) {
      if (peek(1).text == "param") {
        take();
        take();
        while (!accept(Token::Kind::kRParen)) {
          WARAN_TRY(t, val_type_atom());
          ft.params.push_back(t);
        }
      } else if (peek(1).text == "result") {
        take();
        take();
        while (!accept(Token::Kind::kRParen)) {
          WARAN_TRY(t, val_type_atom());
          ft.results.push_back(t);
        }
      } else {
        break;
      }
    }
    return ft;
  }

  /// Parses `(limits...)`-style `min max?` immediately from atoms.
  Result<std::pair<uint32_t, std::optional<uint32_t>>> limits() {
    WARAN_TRY(min, index_atom());
    std::optional<uint32_t> max;
    if (next_is_integer()) {
      WARAN_TRY(m, index_atom());
      max = m;
    }
    return std::pair<uint32_t, std::optional<uint32_t>>{min, max};
  }

  Status item();
  Status parse_func();
  Status parse_instrs(FunctionBuilder& fb);
  Result<wasm::Value> const_value(ValType* type_out);
};

Result<wasm::Value> WatParser::const_value(ValType* type_out) {
  // "(t.const VALUE)" with the opening paren already consumed by caller?
  // Callers hand us the full group: ( t.const VALUE )
  WARAN_CHECK_OK(expect(Token::Kind::kLParen, "'('"));
  if (peek().kind != Token::Kind::kAtom) return err("expected t.const");
  std::string op = take().text;
  wasm::Value v{};
  if (op == "i32.const") {
    WARAN_TRY(x, integer_atom());
    v = wasm::Value::from_i32(static_cast<int32_t>(x));
    *type_out = ValType::kI32;
  } else if (op == "i64.const") {
    WARAN_TRY(x, integer_atom());
    v = wasm::Value::from_i64(x);
    *type_out = ValType::kI64;
  } else if (op == "f32.const") {
    WARAN_TRY(x, float_atom());
    v = wasm::Value::from_f32(static_cast<float>(x));
    *type_out = ValType::kF32;
  } else if (op == "f64.const") {
    WARAN_TRY(x, float_atom());
    v = wasm::Value::from_f64(x);
    *type_out = ValType::kF64;
  } else {
    return err("unsupported constant initializer");
  }
  WARAN_CHECK_OK(expect(Token::Kind::kRParen, "')'"));
  return v;
}

Status WatParser::parse_instrs(FunctionBuilder& fb) {
  // Flat instruction stream until the function's closing ')'. The body's
  // final `end` may be omitted (hand-written text); disassembler output
  // always includes it. Track nesting so we can auto-close.
  int depth = 1;
  while (peek().kind == Token::Kind::kAtom) {
    std::string name = take().text;
    auto oit = opcode_by_name().find(name);
    if (oit == opcode_by_name().end()) {
      return Error::decode("wat: unknown instruction '" + name + "'");
    }
    Op op = oit->second;
    switch (op) {
      case Op::kBlock:
      case Op::kLoop:
      case Op::kIf: {
        BlockT bt;
        if (peek().kind == Token::Kind::kLParen && peek(1).text == "result") {
          take();
          take();
          WARAN_TRY(t, val_type_atom());
          bt.result = t;
          WARAN_CHECK_OK(expect(Token::Kind::kRParen, "')'"));
        }
        if (op == Op::kBlock) fb.block(bt);
        if (op == Op::kLoop) fb.loop(bt);
        if (op == Op::kIf) fb.if_(bt);
        ++depth;
        break;
      }
      case Op::kBr:
      case Op::kBrIf:
      case Op::kCall:
      case Op::kLocalGet:
      case Op::kLocalSet:
      case Op::kLocalTee:
      case Op::kGlobalGet:
      case Op::kGlobalSet: {
        WARAN_TRY(idx, index_atom());
        switch (op) {
          case Op::kBr: fb.br(idx); break;
          case Op::kBrIf: fb.br_if(idx); break;
          case Op::kCall: fb.call(idx); break;
          case Op::kLocalGet: fb.local_get(idx); break;
          case Op::kLocalSet: fb.local_set(idx); break;
          case Op::kLocalTee: fb.local_tee(idx); break;
          case Op::kGlobalGet: fb.global_get(idx); break;
          default: fb.global_set(idx); break;
        }
        break;
      }
      case Op::kBrTable: {
        std::vector<uint32_t> targets;
        while (next_is_integer()) {
          WARAN_TRY(t, index_atom());
          targets.push_back(t);
        }
        if (targets.empty()) return err("br_table needs targets");
        uint32_t def = targets.back();
        targets.pop_back();
        fb.br_table(targets, def);
        break;
      }
      case Op::kCallIndirect: {
        WARAN_CHECK_OK(expect(Token::Kind::kLParen, "'('"));
        WARAN_CHECK_OK(expect_atom("type"));
        WARAN_TRY(ti, index_atom());
        WARAN_CHECK_OK(expect(Token::Kind::kRParen, "')'"));
        fb.call_indirect(ti);
        break;
      }
      case Op::kI32Const: {
        WARAN_TRY(v, integer_atom());
        fb.i32_const(static_cast<int32_t>(v));
        break;
      }
      case Op::kI64Const: {
        WARAN_TRY(v, integer_atom());
        fb.i64_const(v);
        break;
      }
      case Op::kF32Const: {
        WARAN_TRY(v, float_atom());
        fb.f32_const(static_cast<float>(v));
        break;
      }
      case Op::kF64Const: {
        WARAN_TRY(v, float_atom());
        fb.f64_const(v);
        break;
      }
      case Op::kEnd:
        fb.end();
        --depth;
        break;
      case Op::kMemorySize: fb.memory_size(); break;
      case Op::kMemoryGrow: fb.memory_grow(); break;
      case Op::kMemoryCopy: fb.memory_copy(); break;
      case Op::kMemoryFill: fb.memory_fill(); break;
      default: {
        if (op >= Op::kI32Load && op <= Op::kI64Store32) {
          uint32_t offset = 0;
          uint32_t align_bytes = 1;
          while (peek().kind == Token::Kind::kAtom &&
                 (peek().text.starts_with("offset=") ||
                  peek().text.starts_with("align="))) {
            std::string t = take().text;
            size_t eq = t.find('=');
            uint32_t v = 0;
            auto [p, ec] =
                std::from_chars(t.data() + eq + 1, t.data() + t.size(), v);
            if (ec != std::errc() || p != t.data() + t.size()) {
              return Error::decode("wat: bad memarg '" + t + "'");
            }
            if (t[0] == 'o') offset = v;
            else align_bytes = v;
          }
          uint32_t align_log2 = 0;
          while ((1u << align_log2) < align_bytes) ++align_log2;
          if (op >= Op::kI32Store && op <= Op::kI64Store32) {
            fb.store(op, offset, align_log2);
          } else {
            fb.load(op, offset, align_log2);
          }
        } else {
          fb.op(op);  // no immediates
        }
        break;
      }
    }
    if (depth == 0) break;  // function body complete
  }
  // Auto-close any remaining frames (incl. the implicit function frame).
  for (; depth > 0; --depth) fb.end();
  return {};
}

Status WatParser::parse_func() {
  // `func` consumed. Optional $name atom.
  if (peek().kind == Token::Kind::kAtom && peek().text.starts_with("$")) take();
  WARAN_TRY(sig, signature());
  FunctionBuilder& fb = mb_.add_func(sig);
  saw_func_ = true;
  // Optional (local t*).
  if (peek().kind == Token::Kind::kLParen && peek(1).text == "local") {
    take();
    take();
    while (!accept(Token::Kind::kRParen)) {
      WARAN_TRY(t, val_type_atom());
      fb.add_local(t);
    }
  }
  WARAN_CHECK_OK(parse_instrs(fb));
  WARAN_CHECK_OK(expect(Token::Kind::kRParen, "')' closing func"));
  return {};
}

Status WatParser::item() {
  WARAN_CHECK_OK(expect(Token::Kind::kLParen, "'('"));
  if (peek().kind != Token::Kind::kAtom) return err("expected an item keyword");
  std::string kind = take().text;

  if (kind == "type") {
    // (type N (func ...)) — indices must match interning order.
    WARAN_TRY(declared, index_atom());
    WARAN_CHECK_OK(expect(Token::Kind::kLParen, "'('"));
    WARAN_CHECK_OK(expect_atom("func"));
    WARAN_TRY(sig, signature());
    WARAN_CHECK_OK(expect(Token::Kind::kRParen, "')'"));
    uint32_t got = mb_.add_type(sig);
    if (got != declared) {
      return Error::decode("wat: type index mismatch (duplicate type entries?)");
    }
  } else if (kind == "import") {
    if (saw_func_) return err("imports must precede function definitions");
    if (peek().kind != Token::Kind::kString) return err("expected module string");
    std::string module = take().text;
    if (peek().kind != Token::Kind::kString) return err("expected name string");
    std::string name = take().text;
    WARAN_CHECK_OK(expect(Token::Kind::kLParen, "'('"));
    if (!accept_atom("func")) return err("only function imports are supported");
    WARAN_TRY(sig, signature());
    WARAN_CHECK_OK(expect(Token::Kind::kRParen, "')'"));
    mb_.import_func(module, name, sig);
  } else if (kind == "memory") {
    WARAN_TRY(l, limits());
    mb_.add_memory(l.first, l.second);
  } else if (kind == "table") {
    WARAN_TRY(l, limits());
    WARAN_CHECK_OK(expect_atom("funcref"));
    mb_.add_table(l.first, l.second);
  } else if (kind == "global") {
    WARAN_TRY(index, index_atom());
    (void)index;
    WARAN_CHECK_OK(expect(Token::Kind::kLParen, "'('"));
    bool mut = accept_atom("mut");
    WARAN_TRY(type, val_type_atom());
    WARAN_CHECK_OK(expect(Token::Kind::kRParen, "')'"));
    ValType init_type;
    WARAN_TRY(init, const_value(&init_type));
    if (init_type != type) return err("global initializer type mismatch");
    mb_.add_global(type, mut, init);
  } else if (kind == "export") {
    if (peek().kind != Token::Kind::kString) return err("expected export name");
    std::string name = take().text;
    WARAN_CHECK_OK(expect(Token::Kind::kLParen, "'('"));
    if (peek().kind != Token::Kind::kAtom) return err("expected export kind");
    std::string what = take().text;
    WARAN_TRY(index, index_atom());
    WARAN_CHECK_OK(expect(Token::Kind::kRParen, "')'"));
    uint8_t code;
    if (what == "func") code = 0;
    else if (what == "table") code = 1;
    else if (what == "memory") code = 2;
    else if (what == "global") code = 3;
    else return err("unknown export kind");
    mb_.add_export(name, code, index);
  } else if (kind == "start") {
    WARAN_TRY(index, index_atom());
    mb_.set_start(index);
  } else if (kind == "elem") {
    ValType t;
    WARAN_TRY(off, const_value(&t));
    if (t != ValType::kI32) return err("elem offset must be i32.const");
    std::vector<uint32_t> funcs;
    while (next_is_integer()) {
      WARAN_TRY(fi, index_atom());
      funcs.push_back(fi);
    }
    mb_.add_elem(off.as_u32(), funcs);
  } else if (kind == "data") {
    ValType t;
    WARAN_TRY(off, const_value(&t));
    if (t != ValType::kI32) return err("data offset must be i32.const");
    if (peek().kind != Token::Kind::kString) return err("expected data string");
    std::string bytes = take().text;
    mb_.add_data(off.as_u32(),
                 std::span<const uint8_t>(
                     reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size()));
  } else if (kind == "func") {
    return parse_func();  // consumes its own closing paren
  } else {
    return err("unknown module item '" + kind + "'");
  }
  WARAN_CHECK_OK(expect(Token::Kind::kRParen, "')' closing item"));
  return {};
}

Result<std::vector<uint8_t>> WatParser::run() {
  WARAN_CHECK_OK(expect(Token::Kind::kLParen, "'('"));
  WARAN_CHECK_OK(expect_atom("module"));
  while (!accept(Token::Kind::kRParen)) {
    if (peek().kind == Token::Kind::kEof) return err("unterminated module");
    WARAN_CHECK_OK(item());
  }
  if (peek().kind != Token::Kind::kEof) return err("trailing input after module");
  return mb_.build();
}

}  // namespace

Result<std::vector<uint8_t>> assemble_wat(std::string_view text) {
  WARAN_TRY(tokens, tokenize(text));
  WatParser parser(std::move(tokens));
  return parser.run();
}

}  // namespace waran::wasmbuilder
