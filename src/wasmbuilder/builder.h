// In-memory WebAssembly module builder: emits spec-conformant binary modules
// directly (the inverse of wasm/decoder). WA-RAN uses it two ways:
//   1. as the backend of the `wcc` mini-language compiler that plugin
//      sources are written in, and
//   2. to hand-assemble adversarial modules for the §5D safety experiments
//      and the engine's own test suite (encode -> decode round-trips).
//
// Index spaces follow the binary format: all function imports must be
// declared before the first defined function.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "wasm/opcode.h"
#include "wasm/types.h"

namespace waran::wasmbuilder {

using wasm::FuncType;
using wasm::Op;
using wasm::ValType;

/// Block type for structured control instructions.
struct BlockT {
  std::optional<ValType> result;

  static BlockT none() { return {}; }
  static BlockT i32() { return {ValType::kI32}; }
  static BlockT i64() { return {ValType::kI64}; }
  static BlockT f32() { return {ValType::kF32}; }
  static BlockT f64() { return {ValType::kF64}; }
};

/// Emits one function body. Methods append instructions in order; the
/// caller is responsible for structural correctness (the engine's validator
/// is the checker of record — tests rely on that).
class FunctionBuilder {
 public:
  FunctionBuilder(FuncType type, uint32_t index) : type_(std::move(type)), index_(index) {}

  uint32_t index() const { return index_; }
  const FuncType& type() const { return type_; }

  /// Declares a local of type `t`; returns its index (after parameters).
  uint32_t add_local(ValType t) {
    locals_.push_back(t);
    return static_cast<uint32_t>(type_.params.size() + locals_.size() - 1);
  }

  // --- Plain instructions (no immediate). ---
  FunctionBuilder& op(Op o);

  // --- Constants. ---
  FunctionBuilder& i32_const(int32_t v);
  FunctionBuilder& i64_const(int64_t v);
  FunctionBuilder& f32_const(float v);
  FunctionBuilder& f64_const(double v);

  // --- Variables. ---
  FunctionBuilder& local_get(uint32_t idx);
  FunctionBuilder& local_set(uint32_t idx);
  FunctionBuilder& local_tee(uint32_t idx);
  FunctionBuilder& global_get(uint32_t idx);
  FunctionBuilder& global_set(uint32_t idx);

  // --- Control. ---
  FunctionBuilder& block(BlockT bt = {});
  FunctionBuilder& loop(BlockT bt = {});
  FunctionBuilder& if_(BlockT bt = {});
  FunctionBuilder& else_();
  FunctionBuilder& end();
  FunctionBuilder& br(uint32_t depth);
  FunctionBuilder& br_if(uint32_t depth);
  FunctionBuilder& br_table(const std::vector<uint32_t>& targets, uint32_t default_target);
  FunctionBuilder& ret() { return op(Op::kReturn); }
  FunctionBuilder& call(uint32_t func_index);
  FunctionBuilder& call_indirect(uint32_t type_index);

  // --- Memory. ---
  FunctionBuilder& load(Op o, uint32_t offset = 0, uint32_t align_log2 = 0);
  FunctionBuilder& store(Op o, uint32_t offset = 0, uint32_t align_log2 = 0);
  FunctionBuilder& memory_size();
  FunctionBuilder& memory_grow();
  FunctionBuilder& memory_copy();
  FunctionBuilder& memory_fill();

  /// Raw escape hatch for malformed-module tests.
  FunctionBuilder& raw_byte(uint8_t b) {
    body_.u8(b);
    return *this;
  }

  /// Serialized body (locals + instructions); `end()` for the function'
  /// closing delimiter must already have been emitted by the caller.
  std::vector<uint8_t> finish() const;

 private:
  void emit_op(Op o);

  FuncType type_;
  uint32_t index_;
  std::vector<ValType> locals_;
  ByteWriter body_;
};

/// Whole-module builder.
class ModuleBuilder {
 public:
  /// Interns a function type, deduplicating.
  uint32_t add_type(const FuncType& t);

  /// Declares a function import. Must precede all add_func calls.
  uint32_t import_func(const std::string& module, const std::string& name,
                       const FuncType& type);

  /// Starts a new defined function; returns a builder bound to its index.
  /// The builder reference stays valid until build().
  FunctionBuilder& add_func(const FuncType& type,
                            const std::string& export_name = "");

  /// Declares the (single) memory; returns 0. Optionally exported.
  uint32_t add_memory(uint32_t min_pages, std::optional<uint32_t> max_pages = {},
                      const std::string& export_name = "");

  uint32_t add_global(ValType type, bool mut, wasm::Value init,
                      const std::string& export_name = "");

  uint32_t add_table(uint32_t min, std::optional<uint32_t> max = {});
  void add_elem(uint32_t offset, const std::vector<uint32_t>& func_indices);
  void add_data(uint32_t offset, std::span<const uint8_t> bytes);
  void set_start(uint32_t func_index) { start_ = func_index; }
  void export_func(const std::string& name, uint32_t func_index);
  /// Generic export entry (kind: 0 func, 1 table, 2 memory, 3 global).
  void add_export(const std::string& name, uint8_t kind, uint32_t index);

  uint32_t num_funcs() const {
    return static_cast<uint32_t>(imports_.size() + funcs_.size());
  }

  /// Serializes the module. The builder can keep being used afterwards
  /// (build is const).
  std::vector<uint8_t> build() const;

 private:
  struct ImportEntry {
    std::string module;
    std::string name;
    uint32_t type_index;
  };
  struct GlobalEntry {
    ValType type;
    bool mut;
    wasm::Value init;
  };
  struct ExportEntry {
    std::string name;
    uint8_t kind;
    uint32_t index;
  };
  struct ElemEntry {
    uint32_t offset;
    std::vector<uint32_t> funcs;
  };
  struct DataEntry {
    uint32_t offset;
    std::vector<uint8_t> bytes;
  };

  std::vector<FuncType> types_;
  std::vector<ImportEntry> imports_;
  std::vector<std::unique_ptr<FunctionBuilder>> funcs_;
  std::vector<uint32_t> func_type_indices_;
  std::optional<std::pair<uint32_t, std::optional<uint32_t>>> memory_;
  std::optional<std::pair<uint32_t, std::optional<uint32_t>>> table_;
  std::vector<GlobalEntry> globals_;
  std::vector<ExportEntry> exports_;
  std::vector<ElemEntry> elems_;
  std::vector<DataEntry> datas_;
  std::optional<uint32_t> start_;
};

}  // namespace waran::wasmbuilder
