// waran::analysis — static analysis over translated micro-op streams.
//
// Two cooperating pieces (doc/analysis.md):
//
//  1. Stream verifier (verify_func / verify_module): checks any
//     TranslatedFunc — baseline tier-1 output or a tier-2 specialized
//     rewrite — against the structural invariants the interpreter relies
//     on but never re-checks at run time: branch targets land on micro-op
//     boundaries with matching operand heights, fuel-segment charges tile
//     the stream (every straight-line run entered through exactly one
//     charge, never zero, never two), operand-stack effects of every
//     micro-op stay within TranslatedFunc::max_stack, call/resume points
//     are followed by a charge, and every local/global/function/type index
//     is in range. A stream that passes cannot make the interpreter read
//     outside its reserved operand region, jump into the middle of a fused
//     superinstruction, or execute a run of micro-ops uncharged.
//
//  2. Abstract interpreter (analyze): computes per-function worst-case
//     bounds over the verified stream — maximum operand-stack depth,
//     minimum/maximum frame depth through the static call graph,
//     min-fuel-to-complete and worst-case fuel, and a "may loop"
//     classification. Bounds are sound: min_* are true lower bounds on any
//     completing execution, max_*/worst_* are true upper bounds when
//     finite (kUnbounded = a loop, recursion, or an indirect call makes
//     the bound not statically finite).
//
// Admission (admit): evaluates a module's exported functions against a
// slot budget before the first call. Rejections are *sound*: a plugin is
// refused only when every execution of some export must exceed the budget
// (min fuel above the per-call fuel limit, or minimum frame need above the
// engine call-depth limit), so admission never rejects a plugin that could
// have run. PluginManager::install/swap runs this when
// PluginLimits::admission is enabled; `waranc analyze` prints the same
// report for xApp authors.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "wasm/translate.h"

namespace waran::wasm {
struct Module;
}

namespace waran::analysis {

// --- Stream verifier -------------------------------------------------------

/// Checks one translated stream (tier-1 or tier-2) against every structural
/// invariant. `tf` must belong to `m` (its call/global/type indices are
/// resolved against the module). Returns kValidation with a
/// "<invariant>: ..." message naming the first violated invariant.
Status verify_func(const wasm::Module& m, const wasm::TranslatedFunc& tf);

/// verify_func over every defined function; the error message carries the
/// defined-function index of the first failure.
Status verify_module(const wasm::Module& m, const wasm::TranslatedModule& tm);

/// Installs verify_func as the wasm layer's stream firewall
/// (wasm::set_stream_firewall): translate() then rejects any lowering and
/// Instance tier-up rejects any specialized rewrite that breaks an
/// invariant, turning a miscompile into an immediate error instead of a
/// differential-oracle divergence. Idempotent; meant for debug/fuzz
/// drivers, tests and waranc — the production hot path keeps the hook
/// null.
void install_stream_firewall();

// --- Abstract interpreter (per-function worst-case bounds) -----------------

/// "Not statically finite": a loop, recursion, or an indirect call.
inline constexpr uint64_t kUnbounded = UINT64_MAX;

struct FuncBounds {
  /// Max operand-stack height reached on any path (== the region the
  /// interpreter must reserve; always <= TranslatedFunc::max_stack on a
  /// verified stream).
  uint32_t max_operand_depth = 0;
  /// Min fuel any completing execution charges (shortest path to return
  /// through the call graph; host-call and indirect-call bodies count 0).
  /// kUnbounded: no path completes (every path loops or traps).
  uint64_t min_fuel = kUnbounded;
  /// Max fuel any execution can charge; finite only when the control-flow
  /// graph and everything reachable through the call graph is acyclic and
  /// free of indirect calls.
  uint64_t worst_fuel = kUnbounded;
  /// Frames needed by the shallowest completing path (>= 1: the function's
  /// own frame). An invocation with max_call_depth < min_frames *must*
  /// trap. kUnbounded: no path completes.
  uint64_t min_frames = kUnbounded;
  /// Frame-depth upper bound across all paths; kUnbounded on recursion or
  /// indirect calls.
  uint64_t max_frames = kUnbounded;
  /// A cycle is reachable in the function's own control-flow graph or in
  /// any statically-known callee: fuel is what bounds execution, not the
  /// stream length.
  bool may_loop = false;

  bool completes() const { return min_fuel != kUnbounded; }
};

struct ModuleAnalysis {
  /// Parallel to Module::codes / TranslatedModule::funcs.
  std::vector<FuncBounds> funcs;
};

/// Verifies every stream, then computes FuncBounds for every defined
/// function (interprocedural fixpoint over the static call graph). Fails
/// with the verifier's error if any stream is malformed — bounds are only
/// meaningful over streams the interpreter can actually run.
Result<ModuleAnalysis> analyze(const wasm::Module& m, const wasm::TranslatedModule& tm);

// --- Admission -------------------------------------------------------------

/// Where admission analysis runs on PluginManager::install/swap.
enum class AdmissionMode : uint8_t {
  kOff = 0,  ///< no analysis (the pre-PR-10 behaviour)
  kWarn,     ///< analyze and keep the report; never reject
  kEnforce,  ///< reject plugins whose static bounds exceed the budget
};

/// The slot budget admission checks against (distilled from PluginLimits
/// plus the engine's call-depth limit).
struct AdmissionLimits {
  uint64_t fuel_per_call = 0;    ///< 0 = fuel metering off
  uint32_t max_call_depth = 256; ///< Instance frame limit
};

/// Verdict for one exported function.
struct ExportReport {
  std::string name;
  uint32_t func_index = 0;  ///< module-level function index
  FuncBounds bounds;
  /// Sound reject reasons; empty = this export fits the budget.
  std::vector<std::string> violations;
};

struct AdmissionReport {
  bool verified = false;   ///< every stream passed the verifier
  bool admitted = false;   ///< verified and no export carries a violation
  std::string verifier_error;
  AdmissionLimits limits;
  std::vector<ExportReport> exports;  ///< exported wasm functions only

  /// First violation (or the verifier error) — the anomaly/log detail.
  std::string reject_reason() const;
  /// Multi-line human-readable report (waranc analyze).
  std::string summary() const;
};

/// Runs verifier + bounds analysis and evaluates every exported defined
/// function against `limits`. Host-function exports and non-function
/// exports are ignored. A module with no exported wasm functions is
/// vacuously admitted (the plugin layer fails such calls per-call).
AdmissionReport admit(const wasm::Module& m, const wasm::TranslatedModule& tm,
                      const AdmissionLimits& limits);

}  // namespace waran::analysis
