// Stream verifier: proves a translated micro-op stream well-formed before
// the interpreter trusts it. The invariants (doc/analysis.md has the full
// table) mirror what translate.cpp constructs and interp_loop.inc assumes:
//
//   entry-charge        ops[0] is a charge-carrying op (kSeg family)
//   fall-off-end        no fall-through successor past the last op
//   uncharged-resume    every conditional branch and every call is followed
//                       by a charge-carrying op (the fall-through / resume
//                       segment WARAN_CHARGE expects)
//   zero-charge         every segment charge and taken-edge charge >= 1
//   double-charge       no taken edge lands on a charge-carrying op (its
//                       run was already charged by the edge)
//   target-range        every branch target is a micro-op index inside the
//                       stream (or kRetTarget where the handler allows it)
//   height-merge        operand height is consistent at every join
//   stack-underflow     every op finds its operands on the stack
//   stack-overflow      no height exceeds TranslatedFunc::max_stack (the
//                       region the interpreter reserves)
//   unwind              kBr/kBrIf/kBrTable unwind heights fit under the
//                       current height and match the target's height
//   return-arity        every frame-popping edge has >= result_arity values
//   index-range         locals/globals/functions/types/imports in range,
//                       memory/table ops only with a memory/table present
#include <string>
#include <vector>

#include "analysis/analysis.h"
#include "analysis/stream_graph.h"
#include "wasm/module.h"

namespace waran::analysis {
namespace internal {

using wasm::kRetTarget;
using wasm::Module;
using wasm::TranslatedFunc;
using wasm::UInstr;
using wasm::UOp;
using wasm::uop_name;

namespace {

constexpr uint32_t kNoHeight = UINT32_MAX;

constexpr uint16_t ord(UOp op) { return static_cast<uint16_t>(op); }
constexpr bool between(UOp op, UOp lo, UOp hi) {
  return ord(op) >= ord(lo) && ord(op) <= ord(hi);
}

/// Ops that execute a WARAN_CHARGE before their own effect on the
/// fall-through path — the only ops allowed to open a straight-line run.
bool is_charge_leading(UOp op) {
  return op == UOp::kSeg || op == UOp::kSegLocalGet || op == UOp::kSegLocalMove ||
         op == UOp::kSegLCAddSetI32;
}

Error inv(const char* invariant, uint32_t i, UOp op, const std::string& msg) {
  return Error::validation(std::string(invariant) + ": uop " + std::to_string(i) +
                           " (" + uop_name(op) + "): " + msg);
}

/// Operand-stack effect plus control shape of one micro-op. `pops` happen
/// before `pushes` and before any branch decision, matching the handlers.
struct Shape {
  uint32_t pops = 0;
  uint32_t pushes = 0;
  Node node;  ///< edges + call/return classification (heights added later)
};

Status check_local(const TranslatedFunc& tf, uint32_t i, UOp op, uint32_t idx) {
  if (idx >= tf.num_locals) {
    return inv("index-range", i, op,
               "local " + std::to_string(idx) + " out of range (num_locals " +
                   std::to_string(tf.num_locals) + ")");
  }
  return {};
}

/// Builds the shape of ops[i], validating every op-local field (indices,
/// targets, charges). Height-dependent checks happen in the dataflow pass.
Status shape_of(const Module& m, const TranslatedFunc& tf, uint32_t i, Shape* s) {
  const UInstr& u = tf.ops[i];
  const UOp op = u.op;
  const uint32_t n = static_cast<uint32_t>(tf.ops.size());

  auto target_in_range = [&](uint32_t target) -> Status {
    if (target >= n) {
      return inv("target-range", i, op,
                 "target " + std::to_string(target) + " outside stream of " +
                     std::to_string(n) + " uops");
    }
    if (is_charge_leading(tf.ops[target].op)) {
      return inv("double-charge", i, op,
                 "taken edge lands on charge-carrying uop " + std::to_string(target));
    }
    return {};
  };
  auto charged = [&](uint64_t charge) -> Status {
    if (charge == 0) return inv("zero-charge", i, op, "zero fuel segment");
    return {};
  };
  // A taken edge jumping to `target` charging `seg`; the merged tier-2 jump
  // forms (kJump2 family) charge a second segment `extra` on the same edge.
  auto taken = [&](uint32_t target, uint64_t seg, uint64_t extra = 0,
                   bool has_unwind = false, uint32_t unwind_height = 0,
                   uint16_t keep = 0) -> Status {
    if (target == kRetTarget) {
      s->node.taken.push_back({0, 0, /*ret=*/true, false, 0, 0});
      return {};
    }
    WARAN_CHECK_OK(target_in_range(target));
    WARAN_CHECK_OK(charged(seg));
    if (extra != 0) WARAN_CHECK_OK(charged(extra));
    s->node.taken.push_back(
        {target, seg + extra, false, has_unwind, unwind_height, keep});
    return {};
  };

  switch (op) {
    // --- control ---
    case UOp::kSeg:
      WARAN_CHECK_OK(charged(u.b));
      s->node.falls_through = true;
      s->node.fall_charge = u.b;
      return {};
    case UOp::kBr:
      // The kBr handler takes the branch unconditionally with no kRetTarget
      // check; the translator emits kReturn for function-level branches.
      if (u.b == kRetTarget) {
        return inv("target-range", i, op, "kBr cannot carry kRetTarget");
      }
      return taken(u.b, u.imm.pair.y, 0, /*has_unwind=*/true, u.imm.pair.x, u.a);
    case UOp::kBrIf:
      s->pops = 1;
      s->node.falls_through = true;
      return taken(u.b, u.imm.pair.y, 0, /*has_unwind=*/true, u.imm.pair.x, u.a);
    case UOp::kJump:
      return taken(u.b, u.imm.pair.y);
    case UOp::kJumpZ:
    case UOp::kJumpNZ:
      s->pops = 1;
      s->node.falls_through = true;
      return taken(u.b, u.imm.pair.y);
    case UOp::kBrTable: {
      s->pops = 1;
      const uint64_t base = u.b;
      const uint64_t arms = static_cast<uint64_t>(u.imm.pair.x) + 1;  // + default
      if (base + arms > tf.br_entries.size()) {
        return inv("target-range", i, op,
                   "br_entries slice [" + std::to_string(base) + ", " +
                       std::to_string(base + arms) + ") outside table of " +
                       std::to_string(tf.br_entries.size()));
      }
      for (uint64_t e = 0; e < arms; ++e) {
        const wasm::UBrEntry& be = tf.br_entries[base + e];
        WARAN_CHECK_OK(
            taken(be.target, be.seg, 0, /*has_unwind=*/true, be.height, be.keep));
      }
      return {};
    }
    case UOp::kReturn:
      s->node.is_return = true;
      return {};
    case UOp::kUnreachable:
      return {};  // terminal: traps, no successors
    case UOp::kCallWasm: {
      if (u.b < m.num_imported_funcs || u.b >= m.num_funcs()) {
        return inv("index-range", i, op,
                   "callee " + std::to_string(u.b) + " is not a defined function");
      }
      const wasm::FuncType& ft = m.func_type(u.b);
      s->pops = static_cast<uint32_t>(ft.params.size());
      s->pushes = static_cast<uint32_t>(ft.results.size());
      s->node.falls_through = true;
      s->node.is_call_wasm = true;
      s->node.callee = u.b;
      return {};
    }
    case UOp::kCallHost: {
      if (u.b >= m.num_imported_funcs) {
        return inv("index-range", i, op,
                   "import " + std::to_string(u.b) + " out of range");
      }
      const wasm::FuncType& ft = m.func_type(u.b);
      if (u.a != ft.params.size() || u.imm.pair.x != ft.results.size()) {
        return inv("index-range", i, op, "arity does not match the import signature");
      }
      s->pops = u.a;
      s->pushes = u.imm.pair.x;
      s->node.falls_through = true;
      return {};
    }
    case UOp::kCallIndirect: {
      if (u.b >= m.types.size()) {
        return inv("index-range", i, op, "type " + std::to_string(u.b) + " out of range");
      }
      if (!m.has_table()) return inv("index-range", i, op, "module has no table");
      const wasm::FuncType& ft = m.types[u.b];
      if (u.a != ft.params.size() || u.imm.pair.x != ft.results.size()) {
        return inv("index-range", i, op, "arity does not match the expected type");
      }
      s->pops = 1 + u.a;  // element index + arguments
      s->pushes = u.imm.pair.x;
      s->node.falls_through = true;
      s->node.is_call_indirect = true;
      return {};
    }

    // --- parametric & variables ---
    case UOp::kDrop:
      s->pops = 1;
      break;
    case UOp::kSelect:
      s->pops = 3;
      s->pushes = 1;
      break;
    case UOp::kLocalGet:
      WARAN_CHECK_OK(check_local(tf, i, op, u.b));
      s->pushes = 1;
      break;
    case UOp::kLocalSet:
      WARAN_CHECK_OK(check_local(tf, i, op, u.b));
      s->pops = 1;
      break;
    case UOp::kLocalTee:
      WARAN_CHECK_OK(check_local(tf, i, op, u.b));
      s->pops = 1;
      s->pushes = 1;
      break;
    case UOp::kGlobalGet:
    case UOp::kGlobalSet:
      if (u.b >= m.num_globals()) {
        return inv("index-range", i, op,
                   "global " + std::to_string(u.b) + " out of range");
      }
      s->pops = (op == UOp::kGlobalSet) ? 1 : 0;
      s->pushes = (op == UOp::kGlobalGet) ? 1 : 0;
      break;
    case UOp::kConst:
      s->pushes = 1;
      break;

    // --- memory ---
    case UOp::kMemorySize:
    case UOp::kMemoryGrow:
    case UOp::kMemoryCopy:
    case UOp::kMemoryFill:
      if (!m.has_memory()) return inv("index-range", i, op, "module has no memory");
      s->pops = (op == UOp::kMemoryGrow) ? 1
                : (op == UOp::kMemorySize) ? 0
                                           : 3;
      s->pushes = (op == UOp::kMemoryCopy || op == UOp::kMemoryFill) ? 0 : 1;
      break;

    // --- fused superinstructions (tier-1) ---
    case UOp::kLocalMove:
    case UOp::kLCAddSetI32:
      WARAN_CHECK_OK(check_local(tf, i, op, u.a));
      WARAN_CHECK_OK(check_local(tf, i, op, u.b));
      break;

    // --- tier-2 specialized forms ---
    case UOp::kJump2:
      return taken(u.b, u.imm.pair.x, u.imm.pair.y);
    case UOp::kJumpZ2:
    case UOp::kJumpNZ2:
      s->pops = 1;
      s->node.falls_through = true;
      return taken(u.b, u.imm.pair.x, u.imm.pair.y);
    case UOp::kSegLocalGet:
      WARAN_CHECK_OK(check_local(tf, i, op, u.b));
      WARAN_CHECK_OK(charged(u.imm.pair.y));
      s->pushes = 1;
      s->node.falls_through = true;
      s->node.fall_charge = u.imm.pair.y;
      return {};
    case UOp::kSegLocalMove:
    case UOp::kSegLCAddSetI32:
      WARAN_CHECK_OK(check_local(tf, i, op, u.a));
      WARAN_CHECK_OK(check_local(tf, i, op, u.b));
      WARAN_CHECK_OK(charged(u.imm.pair.y));
      s->node.falls_through = true;
      s->node.fall_charge = u.imm.pair.y;
      return {};
    case UOp::kLLGet:
      WARAN_CHECK_OK(check_local(tf, i, op, u.a));
      WARAN_CHECK_OK(check_local(tf, i, op, u.b));
      s->pushes = 2;
      break;
    case UOp::kLGetCI32:
      WARAN_CHECK_OK(check_local(tf, i, op, u.a));
      s->pushes = 2;
      break;

    default: {
      // The remaining ops are straight-line and classify by X-macro range.
      if (between(op, UOp::kI32Load, UOp::kI64Load32U)) {  // loads
        if (!m.has_memory()) return inv("index-range", i, op, "module has no memory");
        s->pops = 1;
        s->pushes = 1;
      } else if (between(op, UOp::kI32Store, UOp::kI64Store32)) {  // stores
        if (!m.has_memory()) return inv("index-range", i, op, "module has no memory");
        s->pops = 2;
      } else if (op == UOp::kI32Eqz || op == UOp::kI64Eqz) {
        s->pops = 1;
        s->pushes = 1;
      } else if (between(op, UOp::kI32Eq, UOp::kI32GeU) ||
                 between(op, UOp::kI64Eq, UOp::kI64GeU) ||
                 between(op, UOp::kF32Eq, UOp::kF64Ge)) {  // binary compares
        s->pops = 2;
        s->pushes = 1;
      } else if (between(op, UOp::kI32Clz, UOp::kI32Popcnt) ||
                 between(op, UOp::kI64Clz, UOp::kI64Popcnt) ||
                 between(op, UOp::kF32Abs, UOp::kF32Sqrt) ||
                 between(op, UOp::kF64Abs, UOp::kF64Sqrt) ||
                 between(op, UOp::kI32WrapI64, UOp::kI64Extend32S)) {  // unary
        s->pops = 1;
        s->pushes = 1;
      } else if (between(op, UOp::kI32Add, UOp::kI32Rotr) ||
                 between(op, UOp::kI64Add, UOp::kI64Rotr) ||
                 between(op, UOp::kF32Add, UOp::kF32Copysign) ||
                 between(op, UOp::kF64Add, UOp::kF64Copysign)) {  // binary numeric
        s->pops = 2;
        s->pushes = 1;
      } else if (between(op, UOp::kLLAddI32, UOp::kLLXorI32) ||
                 between(op, UOp::kLLEqI32, UOp::kLLGeUI32)) {  // two-local fusions
        WARAN_CHECK_OK(check_local(tf, i, op, u.a));
        WARAN_CHECK_OK(check_local(tf, i, op, u.b));
        s->pushes = 1;
      } else if (between(op, UOp::kLCAddI32, UOp::kLCShrUI32) ||
                 between(op, UOp::kLCEqI32, UOp::kLCGeUI32)) {  // local+const fusions
        WARAN_CHECK_OK(check_local(tf, i, op, u.a));
        s->pushes = 1;
      } else if (op == UOp::kCAddI32 || op == UOp::kCMulI32 || op == UOp::kCAndI32 ||
                 between(op, UOp::kCSubI32, UOp::kCXorI32)) {  // const-folded in place
        s->pops = 1;
        s->pushes = 1;
      } else if (between(op, UOp::kBrIfLLEq, UOp::kBrIfLLGeU)) {  // fused br: 2 locals
        WARAN_CHECK_OK(check_local(tf, i, op, u.a));
        WARAN_CHECK_OK(check_local(tf, i, op, u.imm.pair.x));
        s->node.falls_through = true;
        return taken(u.b, u.imm.pair.y);
      } else if (between(op, UOp::kBrIfLCEq, UOp::kBrIfLCGeU)) {  // fused br: local+c
        WARAN_CHECK_OK(check_local(tf, i, op, u.a));
        s->node.falls_through = true;
        return taken(u.b, u.imm.pair.y);
      } else if (between(op, UOp::kAddSetI32, UOp::kXorSetI32)) {  // pop2 -> local
        WARAN_CHECK_OK(check_local(tf, i, op, u.b));
        s->pops = 2;
      } else {
        return inv("bad-opcode", i, op, "no verifier model for this op");
      }
    }
  }
  s->node.falls_through = true;  // plain straight-line op
  return {};
}

}  // namespace

Status build_stream_graph(const Module& m, const TranslatedFunc& tf, StreamGraph* out) {
  const uint32_t n = static_cast<uint32_t>(tf.ops.size());
  if (n == 0) return Error::validation("entry-charge: empty micro-op stream");
  for (const UInstr& u : tf.ops) {
    if (static_cast<size_t>(u.op) >= wasm::kNumUOps) {
      return Error::validation("bad-opcode: op value " +
                               std::to_string(static_cast<unsigned>(u.op)) +
                               " outside the dispatch table");
    }
  }
  if (!is_charge_leading(tf.ops[0].op)) {
    return inv("entry-charge", 0, tf.ops[0].op,
               "function entry is not a charge-carrying uop");
  }

  // Pass 1: per-op structural checks over the WHOLE stream (a corrupted op
  // is rejected even if a corrupted target also made it unreachable).
  std::vector<Shape> shapes(n);
  for (uint32_t i = 0; i < n; ++i) {
    WARAN_CHECK_OK(shape_of(m, tf, i, &shapes[i]));
    const Node& nd = shapes[i].node;
    if (nd.falls_through && i + 1 == n) {
      return inv("fall-off-end", i, tf.ops[i].op,
                 "fall-through successor past the end of the stream");
    }
    // Conditional branches fall into the segment charge of the untaken run;
    // calls resume into the charge of the post-call run. WARAN_CHARGE is
    // what keeps those runs metered — the next op must carry it.
    const bool needs_charged_successor =
        (nd.falls_through && !nd.taken.empty()) ||  // conditional branch
        nd.is_call_wasm || nd.is_call_indirect ||
        tf.ops[i].op == UOp::kCallHost;
    if (needs_charged_successor && !is_charge_leading(tf.ops[i + 1].op)) {
      return inv("uncharged-resume", i, tf.ops[i].op,
                 "fall-through/resume successor " + std::to_string(i + 1) +
                     " carries no segment charge");
    }
  }

  // Pass 2: operand-height dataflow over the reachable ops, checking
  // underflow/overflow, join consistency and unwind targets.
  std::vector<uint32_t> height(n, kNoHeight);
  std::vector<uint32_t> work;
  height[0] = 0;
  work.push_back(0);
  uint32_t max_height = 0;

  auto merge = [&](uint32_t i, uint32_t from, uint32_t to, uint32_t h) -> Status {
    if (height[to] == kNoHeight) {
      height[to] = h;
      work.push_back(to);
      return {};
    }
    if (height[to] != h) {
      return inv("height-merge", from, tf.ops[from].op,
                 "operand height " + std::to_string(h) + " into uop " +
                     std::to_string(to) + " conflicts with height " +
                     std::to_string(height[to]));
    }
    (void)i;
    return {};
  };

  while (!work.empty()) {
    const uint32_t i = work.back();
    work.pop_back();
    const Shape& s = shapes[i];
    shapes[i].node.reachable = true;
    const uint32_t h = height[i];
    if (h < s.pops) {
      return inv("stack-underflow", i, tf.ops[i].op,
                 "needs " + std::to_string(s.pops) + " operands, height is " +
                     std::to_string(h));
    }
    const uint32_t h2 = h - s.pops + s.pushes;
    if (h2 > tf.max_stack) {
      return inv("stack-overflow", i, tf.ops[i].op,
                 "height " + std::to_string(h2) + " exceeds max_stack " +
                     std::to_string(tf.max_stack));
    }
    if (h2 > max_height) max_height = h2;

    if (s.node.is_return && h2 < tf.result_arity) {
      return inv("return-arity", i, tf.ops[i].op,
                 "height " + std::to_string(h2) + " below result arity " +
                     std::to_string(tf.result_arity));
    }
    for (const TakenEdge& e : s.node.taken) {
      if (e.ret) {
        if (h2 < tf.result_arity) {
          return inv("return-arity", i, tf.ops[i].op,
                     "height " + std::to_string(h2) + " below result arity " +
                         std::to_string(tf.result_arity));
        }
        continue;
      }
      uint32_t h_target = h2;
      if (e.has_unwind) {
        const uint32_t floor = e.unwind_height + e.keep;
        if (h2 < floor) {
          return inv("unwind", i, tf.ops[i].op,
                     "unwind to height " + std::to_string(e.unwind_height) +
                         " keeping " + std::to_string(e.keep) +
                         " from height " + std::to_string(h2));
        }
        h_target = floor;
      }
      WARAN_CHECK_OK(merge(i, i, e.to, h_target));
    }
    if (s.node.falls_through) {
      WARAN_CHECK_OK(merge(i, i, i + 1, h2));
    }
  }

  if (out != nullptr) {
    out->nodes.clear();
    out->nodes.reserve(n);
    for (Shape& s : shapes) out->nodes.push_back(std::move(s.node));
    out->max_height = max_height;
  }
  return {};
}

}  // namespace internal

Status verify_func(const wasm::Module& m, const wasm::TranslatedFunc& tf) {
  return internal::build_stream_graph(m, tf, nullptr);
}

Status verify_module(const wasm::Module& m, const wasm::TranslatedModule& tm) {
  if (tm.funcs.size() != m.codes.size()) {
    return Error::validation("stream count " + std::to_string(tm.funcs.size()) +
                             " does not match " + std::to_string(m.codes.size()) +
                             " defined functions");
  }
  for (uint32_t i = 0; i < tm.funcs.size(); ++i) {
    const wasm::TranslatedFunc& tf = tm.funcs[i];
    const wasm::FuncType& ft = m.func_type(m.num_imported_funcs + i);
    // The frame layout the interpreter derives from the stream must match
    // the module signature the embedder calls through.
    if (tf.num_params != ft.params.size() || tf.result_arity != ft.results.size() ||
        tf.num_locals != ft.params.size() + m.codes[i].locals.size() ||
        tf.max_stack < m.codes[i].max_stack) {
      return Error::validation("func " + std::to_string(i) +
                               ": stream frame shape does not match the module "
                               "signature");
    }
    Status st = verify_func(m, tf);
    if (!st.ok()) {
      return Error::validation("func " + std::to_string(i) + ": " +
                               st.error().message);
    }
  }
  return {};
}

void install_stream_firewall() {
  wasm::set_stream_firewall(&verify_func);
}

}  // namespace waran::analysis
