// Abstract interpreter over verified micro-op streams: per-function
// worst-case bounds and the admission verdict built on them.
//
// The lattice is deliberately small (doc/analysis.md): per function we
// track four scalars ordered by "more permissive" — min fuel / min frames
// (lower bounds over completing paths, computed as shortest / bottleneck
// paths over the exact edge charges the verifier extracted) and worst fuel
// / max frames (upper bounds over all paths, finite only when the
// control-flow graph and the reachable call graph are acyclic and free of
// indirect calls; kUnbounded is the lattice top). Interprocedural values
// reach a fixpoint in at most one pass per call-graph level: min-bounds
// iterate to stability (they only ever decrease), max-bounds recurse with
// an on-stack marker so any call cycle collapses to kUnbounded.
#include <algorithm>
#include <functional>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "analysis/analysis.h"
#include "analysis/stream_graph.h"
#include "wasm/module.h"

namespace waran::analysis {

namespace {

using internal::Node;
using internal::StreamGraph;
using internal::TakenEdge;

uint64_t sat_add(uint64_t a, uint64_t b) {
  if (a == kUnbounded || b == kUnbounded) return kUnbounded;
  return (a > kUnbounded - b) ? kUnbounded : a + b;
}

/// True when the function's own (reachable) control-flow graph has a cycle.
bool has_local_cycle(const StreamGraph& g) {
  enum : uint8_t { kWhite, kGrey, kBlack };
  std::vector<uint8_t> color(g.nodes.size(), kWhite);
  // Iterative DFS: (node, next-edge-cursor); cursor spans taken edges then
  // the fall-through edge.
  std::vector<std::pair<uint32_t, uint32_t>> stack;
  stack.emplace_back(0, 0);
  color[0] = kGrey;
  while (!stack.empty()) {
    auto& [i, cursor] = stack.back();
    const Node& nd = g.nodes[i];
    const uint32_t n_taken = static_cast<uint32_t>(nd.taken.size());
    uint32_t next = UINT32_MAX;
    while (cursor < n_taken + (nd.falls_through ? 1u : 0u)) {
      const uint32_t c = cursor++;
      if (c < n_taken) {
        if (nd.taken[c].ret) continue;
        next = nd.taken[c].to;
      } else {
        next = i + 1;
      }
      break;
    }
    if (next == UINT32_MAX) {
      color[i] = kBlack;
      stack.pop_back();
      continue;
    }
    if (color[next] == kGrey) return true;
    if (color[next] == kWhite) {
      color[next] = kGrey;
      stack.emplace_back(next, 0);
    }
  }
  return false;
}

/// Shortest-path fuel from entry to any frame-popping exit, with the
/// current interprocedural estimates for callees. kUnbounded: no path
/// completes under those estimates.
uint64_t min_fuel_pass(const StreamGraph& g, const wasm::Module& m,
                       const std::vector<uint64_t>& callee_min) {
  const size_t n = g.nodes.size();
  std::vector<uint64_t> dist(n, kUnbounded);
  using Item = std::pair<uint64_t, uint32_t>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  dist[0] = 0;
  pq.emplace(0, 0);
  uint64_t best = kUnbounded;
  while (!pq.empty()) {
    auto [d, i] = pq.top();
    pq.pop();
    if (d != dist[i]) continue;
    if (d >= best) break;  // every remaining label is no better
    const Node& nd = g.nodes[i];
    auto relax = [&](uint32_t to, uint64_t nd_cost) {
      const uint64_t v = sat_add(d, nd_cost);
      if (v < dist[to]) {
        dist[to] = v;
        pq.emplace(v, to);
      }
    };
    if (nd.is_return) best = std::min(best, d);
    for (const TakenEdge& e : nd.taken) {
      if (e.ret) {
        best = std::min(best, d);
      } else {
        relax(e.to, e.charge);
      }
    }
    if (nd.falls_through) {
      uint64_t cost = nd.fall_charge;
      if (nd.is_call_wasm) {
        // Execution only resumes if the callee completes; its cheapest
        // completion is charged on the resume edge.
        cost = sat_add(cost, callee_min[nd.callee - m.num_imported_funcs]);
      }
      // Indirect calls and host calls charge nothing statically (sound
      // lower bound: the target may be a host function).
      if (cost != kUnbounded) relax(i + 1, cost);
    }
  }
  return best;
}

/// Bottleneck path: the minimum over completing paths of the peak frame
/// depth, given current estimates of callee frame needs. The function's
/// own frame counts 1; crossing a call-resume edge needs 1 + frames(callee).
uint64_t min_frames_pass(const StreamGraph& g, const wasm::Module& m,
                         const std::vector<uint64_t>& callee_frames) {
  const size_t n = g.nodes.size();
  std::vector<uint64_t> label(n, kUnbounded);
  using Item = std::pair<uint64_t, uint32_t>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  label[0] = 1;
  pq.emplace(1, 0);
  uint64_t best = kUnbounded;
  while (!pq.empty()) {
    auto [d, i] = pq.top();
    pq.pop();
    if (d != label[i]) continue;
    if (d >= best) break;
    const Node& nd = g.nodes[i];
    auto relax = [&](uint32_t to, uint64_t edge_need) {
      const uint64_t v = std::max(d, edge_need);
      if (v < label[to]) {
        label[to] = v;
        pq.emplace(v, to);
      }
    };
    if (nd.is_return) best = std::min(best, d);
    for (const TakenEdge& e : nd.taken) {
      if (e.ret) {
        best = std::min(best, d);
      } else {
        relax(e.to, 1);
      }
    }
    if (nd.falls_through) {
      uint64_t need = 1;
      if (nd.is_call_wasm) {
        need = sat_add(1, callee_frames[nd.callee - m.num_imported_funcs]);
      }
      // Indirect call: the target may be a host import, which pushes no
      // wasm frame — 1 stays the sound lower bound.
      if (need != kUnbounded) relax(i + 1, need);
    }
  }
  return best;
}

/// Longest-path fuel over an acyclic graph (trapping paths included);
/// callee worst costs already resolved by the caller. Pre: no local cycle.
uint64_t worst_fuel_dag(const StreamGraph& g, const wasm::Module& m,
                        const std::vector<uint64_t>& callee_worst) {
  const size_t n = g.nodes.size();
  constexpr uint64_t kUnset = UINT64_MAX - 1;
  std::vector<uint64_t> memo(n, kUnset);
  // Iterative postorder (graph is a DAG: the verifier's reachability plus
  // has_local_cycle() == false).
  std::vector<std::pair<uint32_t, bool>> stack{{0, false}};
  while (!stack.empty()) {
    auto [i, expanded] = stack.back();
    stack.pop_back();
    if (memo[i] != kUnset && !expanded) continue;
    const Node& nd = g.nodes[i];
    if (!expanded) {
      stack.emplace_back(i, true);
      for (const TakenEdge& e : nd.taken) {
        if (!e.ret && memo[e.to] == kUnset) stack.emplace_back(e.to, false);
      }
      if (nd.falls_through && memo[i + 1] == kUnset) {
        stack.emplace_back(i + 1, false);
      }
      continue;
    }
    uint64_t w = 0;  // kReturn / kUnreachable / ret edges end the path here
    for (const TakenEdge& e : nd.taken) {
      if (e.ret) continue;
      w = std::max(w, sat_add(e.charge, memo[e.to]));
    }
    if (nd.falls_through) {
      uint64_t cost = nd.fall_charge;
      if (nd.is_call_wasm) {
        cost = sat_add(cost, callee_worst[nd.callee - m.num_imported_funcs]);
      }
      if (nd.is_call_indirect) cost = kUnbounded;  // statically unknown callee
      w = std::max(w, sat_add(cost, memo[i + 1]));
    }
    memo[i] = w;
  }
  return memo[0];
}

}  // namespace

Result<ModuleAnalysis> analyze(const wasm::Module& m, const wasm::TranslatedModule& tm) {
  WARAN_CHECK_OK(verify_module(m, tm));
  const size_t nf = tm.funcs.size();
  std::vector<StreamGraph> graphs(nf);
  for (size_t i = 0; i < nf; ++i) {
    WARAN_CHECK_OK(internal::build_stream_graph(m, tm.funcs[i], &graphs[i]));
  }

  ModuleAnalysis out;
  out.funcs.resize(nf);
  std::vector<bool> local_cycle(nf);
  for (size_t i = 0; i < nf; ++i) {
    out.funcs[i].max_operand_depth = graphs[i].max_height;
    local_cycle[i] = has_local_cycle(graphs[i]);
  }

  // Min bounds: iterate to a fixpoint — estimates start at kUnbounded and
  // only decrease, so one pass per call-graph level converges.
  std::vector<uint64_t> min_fuel(nf, kUnbounded);
  std::vector<uint64_t> min_frames(nf, kUnbounded);
  for (bool changed = true; changed;) {
    changed = false;
    for (size_t i = 0; i < nf; ++i) {
      const uint64_t f = min_fuel_pass(graphs[i], m, min_fuel);
      if (f < min_fuel[i]) {
        min_fuel[i] = f;
        changed = true;
      }
      const uint64_t fr = min_frames_pass(graphs[i], m, min_frames);
      if (fr < min_frames[i]) {
        min_frames[i] = fr;
        changed = true;
      }
    }
  }

  // Max bounds + may-loop: memoized recursion over the call graph; an
  // on-stack callee means a call cycle, which is kUnbounded by definition.
  enum class VState : uint8_t { kNew, kOnStack, kDone };
  std::vector<VState> state(nf, VState::kNew);
  std::vector<uint64_t> worst_fuel(nf), max_frames(nf);
  std::vector<bool> may_loop(nf);
  std::function<void(size_t)> solve = [&](size_t i) {
    if (state[i] == VState::kDone) return;
    state[i] = VState::kOnStack;
    bool loop = local_cycle[i];
    uint64_t frames = 1;
    bool callee_worst_unbounded = false;
    std::vector<uint64_t> callee_worst(nf, kUnbounded);
    for (const Node& nd : graphs[i].nodes) {
      if (!nd.reachable) continue;
      if (nd.is_call_indirect) {
        frames = kUnbounded;
        callee_worst_unbounded = true;
        continue;
      }
      if (!nd.is_call_wasm) continue;
      const size_t c = nd.callee - m.num_imported_funcs;
      if (state[c] == VState::kOnStack) {  // recursion
        frames = kUnbounded;
        callee_worst_unbounded = true;
        continue;
      }
      solve(c);
      loop = loop || may_loop[c];
      frames = std::max(frames, sat_add(1, max_frames[c]));
      if (worst_fuel[c] == kUnbounded) callee_worst_unbounded = true;
      callee_worst[c] = worst_fuel[c];
    }
    may_loop[i] = loop;
    max_frames[i] = frames;
    worst_fuel[i] = (loop || callee_worst_unbounded)
                        ? kUnbounded
                        : worst_fuel_dag(graphs[i], m, callee_worst);
    state[i] = VState::kDone;
  };
  for (size_t i = 0; i < nf; ++i) solve(i);

  for (size_t i = 0; i < nf; ++i) {
    out.funcs[i].min_fuel = min_fuel[i];
    out.funcs[i].min_frames = min_frames[i];
    out.funcs[i].worst_fuel = worst_fuel[i];
    out.funcs[i].max_frames = max_frames[i];
    out.funcs[i].may_loop = may_loop[i];
  }
  return out;
}

namespace {

std::string bound_str(uint64_t v) {
  return v == kUnbounded ? "unbounded" : std::to_string(v);
}

}  // namespace

std::string AdmissionReport::reject_reason() const {
  if (!verified) return "stream verification failed: " + verifier_error;
  for (const ExportReport& e : exports) {
    if (!e.violations.empty()) {
      return "export '" + e.name + "': " + e.violations.front();
    }
  }
  return {};
}

std::string AdmissionReport::summary() const {
  std::string s = "admission: ";
  s += admitted ? "ACCEPT" : "REJECT";
  s += " (fuel budget ";
  s += limits.fuel_per_call == 0 ? "unmetered" : std::to_string(limits.fuel_per_call);
  s += ", call depth " + std::to_string(limits.max_call_depth) + ")\n";
  if (!verified) {
    s += "  stream verification failed: " + verifier_error + "\n";
    return s;
  }
  for (const ExportReport& e : exports) {
    const FuncBounds& b = e.bounds;
    s += "  export " + e.name + " (func " + std::to_string(e.func_index) + "): ";
    s += "stack " + std::to_string(b.max_operand_depth);
    s += ", frames [" + bound_str(b.min_frames) + ", " + bound_str(b.max_frames) + "]";
    s += ", fuel [" + bound_str(b.min_fuel) + ", " + bound_str(b.worst_fuel) + "]";
    s += b.may_loop ? ", may loop" : ", loop-free";
    s += "\n";
    for (const std::string& v : e.violations) s += "    ! " + v + "\n";
  }
  return s;
}

AdmissionReport admit(const wasm::Module& m, const wasm::TranslatedModule& tm,
                      const AdmissionLimits& limits) {
  AdmissionReport report;
  report.limits = limits;
  Result<ModuleAnalysis> ana = analyze(m, tm);
  if (!ana.ok()) {
    report.verified = false;
    report.admitted = false;
    report.verifier_error = ana.error().message;
    return report;
  }
  report.verified = true;
  bool ok = true;
  for (const wasm::Export& e : m.exports) {
    if (e.kind != wasm::ImportKind::kFunc) continue;
    if (e.index < m.num_imported_funcs) continue;  // re-exported host import
    ExportReport er;
    er.name = e.name;
    er.func_index = e.index;
    er.bounds = ana->funcs[e.index - m.num_imported_funcs];
    const FuncBounds& b = er.bounds;
    // Sound rejections only: each violation means every call MUST fail.
    if (!b.completes()) {
      er.violations.push_back("no statically completing path (every path loops or traps)");
    } else if (limits.fuel_per_call > 0 && b.min_fuel > limits.fuel_per_call) {
      er.violations.push_back("needs at least " + std::to_string(b.min_fuel) +
                              " fuel to complete, budget is " +
                              std::to_string(limits.fuel_per_call));
    }
    if (b.min_frames != kUnbounded && b.min_frames > limits.max_call_depth) {
      er.violations.push_back("needs call depth " + std::to_string(b.min_frames) +
                              ", engine limit is " +
                              std::to_string(limits.max_call_depth));
    }
    ok = ok && er.violations.empty();
    report.exports.push_back(std::move(er));
  }
  report.admitted = ok;
  return report;
}

}  // namespace waran::analysis
