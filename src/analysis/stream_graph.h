// Internal to waran::analysis: the verified control-flow graph of one
// micro-op stream, built as a side product of verification. Each node is
// one micro-op; edges carry the fuel charged when the interpreter crosses
// them, so the cost analysis can run shortest/longest-path over the exact
// metering the stream encodes.
#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "wasm/module.h"
#include "wasm/translate.h"

namespace waran::analysis::internal {

struct TakenEdge {
  uint32_t to = 0;      ///< target micro-op (unused when `ret`)
  /// Total fuel charged crossing this edge (kJump2/Z2/NZ2 charge two merged
  /// segments on one edge). Edges into the same uop may carry different
  /// charges: the translator prices an edge by the *source* pc it jumps to,
  /// and distinct source pcs (nested `end`s emit no uops) can collapse onto
  /// one uop index.
  uint64_t charge = 0;
  bool ret = false;     ///< edge pops the frame (kRetTarget)
  /// kBr/kBrIf/kBrTable carry an explicit unwind: the operand stack is cut
  /// to `unwind_height` + `keep` kept values before the jump.
  bool has_unwind = false;
  uint32_t unwind_height = 0;
  uint16_t keep = 0;
};

struct Node {
  bool reachable = false;
  /// Execution can continue at op index + 1 (untaken conditional, charge
  /// op, straight-line op, call resume).
  bool falls_through = false;
  /// Fuel charged when the op itself executes on the fall-through path
  /// (kSeg family); taken-edge charges live on the edges.
  uint64_t fall_charge = 0;
  /// kCallWasm: the fall-through edge crosses a call to `callee`
  /// (module-level function index, always a defined function).
  bool is_call_wasm = false;
  uint32_t callee = 0;
  /// kCallIndirect (callee statically unknown) — poisons worst-case
  /// fuel/frames. kCallHost costs nothing statically and is not flagged.
  bool is_call_indirect = false;
  /// kReturn (unconditional frame pop; no fall-through).
  bool is_return = false;
  std::vector<TakenEdge> taken;
};

struct StreamGraph {
  std::vector<Node> nodes;       ///< parallel to TranslatedFunc::ops
  uint32_t max_height = 0;       ///< max operand height over reachable ops
};

/// Verifies `tf` against every stream invariant and, on success, fills
/// `out` (when non-null) with the control-flow graph. This is the single
/// implementation behind verify_func and analyze().
Status build_stream_graph(const wasm::Module& m, const wasm::TranslatedFunc& tf,
                          StreamGraph* out);

}  // namespace waran::analysis::internal
