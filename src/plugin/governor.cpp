#include "plugin/governor.h"

#include <algorithm>

namespace waran::plugin {

Status FuelGovernor::register_slot(const std::string& slot, double weight) {
  if (slots_.contains(slot)) return Error::state("slot already governed: " + slot);
  if (weight <= 0) return Error::invalid_argument("weight must be positive");
  SlotState state;
  state.weight = weight;
  state.allocation = config_.floor;
  slots_.emplace(slot, state);
  return {};
}

Status FuelGovernor::remove_slot(const std::string& slot) {
  if (slots_.erase(slot) == 0) return Error::not_found("slot not governed: " + slot);
  return {};
}

void FuelGovernor::record_usage(const std::string& slot, uint64_t fuel_used) {
  auto it = slots_.find(slot);
  if (it == slots_.end()) return;
  SlotState& s = it->second;
  s.demand_ewma += config_.alpha * (static_cast<double>(fuel_used) - s.demand_ewma);
}

void FuelGovernor::rebalance() {
  if (slots_.empty()) return;
  const uint64_t n = slots_.size();
  const uint64_t floor_total = config_.floor * n;
  uint64_t spare =
      config_.budget_per_slot > floor_total ? config_.budget_per_slot - floor_total : 0;

  // Weighted demand shares. A slot that never ran still has demand 0 and
  // lives on its floor; epsilon keeps the split defined when all are idle.
  double share_sum = 0;
  for (const auto& [name, s] : slots_) {
    share_sum += s.weight * (s.demand_ewma + 1.0);
  }
  for (auto& [name, s] : slots_) {
    double share = s.weight * (s.demand_ewma + 1.0) / share_sum;
    s.allocation = config_.floor + static_cast<uint64_t>(share * static_cast<double>(spare));
  }
}

uint64_t FuelGovernor::allocation(const std::string& slot) const {
  auto it = slots_.find(slot);
  return it == slots_.end() ? 0 : it->second.allocation;
}

double FuelGovernor::demand_estimate(const std::string& slot) const {
  auto it = slots_.find(slot);
  return it == slots_.end() ? 0.0 : it->second.demand_ewma;
}

void FuelGovernor::apply(PluginManager& manager) {
  rebalance();
  for (const auto& [name, s] : slots_) {
    if (manager.has(name)) {
      (void)manager.set_fuel(name, s.allocation);
    }
  }
}

}  // namespace waran::plugin
