// FuelGovernor — the joint resource-management policy the paper calls for
// in §6B: RAN edge hosts have a fixed compute budget per slot, and every
// plugin's execution must fit it alongside the host's own real-time work.
//
// The governor owns a per-slot interpreter budget (fuel units ≈ retired
// instructions affordable inside the slot deadline) and divides it across
// plugin slots each rebalance():
//
//   1. every registered slot gets a guaranteed floor,
//   2. the remainder is split proportionally to weight x EWMA demand, so
//      idle plugins donate headroom to busy ones without ever being
//      starved of their floor.
//
// The embedder calls record_usage() after each plugin call and rebalance()
// once per slot (or less often); allocations feed PluginManager::set_fuel.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/result.h"
#include "plugin/manager.h"

namespace waran::plugin {

class FuelGovernor {
 public:
  struct Config {
    /// Total fuel spendable across all plugins per slot.
    uint64_t budget_per_slot = 1'000'000;
    /// Guaranteed minimum per slot ("no plugin is starved", §6B).
    uint64_t floor = 20'000;
    /// EWMA smoothing for observed demand.
    double alpha = 0.05;
  };

  explicit FuelGovernor(Config config) : config_(config) {}

  /// Registers a plugin slot with a relative weight (its SLA class).
  Status register_slot(const std::string& slot, double weight = 1.0);
  Status remove_slot(const std::string& slot);

  /// Records fuel actually consumed by one call on `slot`.
  void record_usage(const std::string& slot, uint64_t fuel_used);

  /// Recomputes every slot's allocation from current demand and weights.
  void rebalance();

  /// Current allocation for `slot` (floor-initialised before the first
  /// rebalance). Returns 0 for unknown slots.
  uint64_t allocation(const std::string& slot) const;

  /// Convenience: rebalances and pushes every allocation into `manager`
  /// (slots missing from the manager are skipped).
  void apply(PluginManager& manager);

  double demand_estimate(const std::string& slot) const;
  const Config& config() const { return config_; }

 private:
  struct SlotState {
    double weight = 1.0;
    double demand_ewma = 0.0;  // fuel per call, smoothed
    uint64_t allocation = 0;
  };

  Config config_;
  std::map<std::string, SlotState> slots_;
};

}  // namespace waran::plugin
