// PluginManager: named plugin slots with on-the-fly replacement and fault
// quarantine.
//
// Hot swap (paper §3A "the update can be done on the fly ... without
// stopping or redeploying gNBs"): swap() fully decodes, validates and
// instantiates the replacement before it touches the slot, so a broken
// upload can never take down a working scheduler; the switch itself is a
// shared_ptr exchange between slot and caller.
//
// Quarantine (paper §6A fault tolerance): after `quarantine_after_faults`
// consecutive faults the slot refuses further calls until reset or swapped,
// and the embedder falls back to its default policy (the scheduler falls
// back to host-side round-robin).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/stats.h"
#include "plugin/plugin.h"

namespace waran::plugin {

struct SlotHealth {
  uint64_t calls = 0;
  uint64_t faults = 0;            // sandbox faults: traps, fuel, limits
  uint64_t declines = 0;          // plugin-declared rejections (no quarantine)
  uint32_t consecutive_faults = 0;
  uint64_t swaps = 0;
  bool quarantined = false;
  std::string last_error;
};

class PluginManager {
 public:
  explicit PluginManager(PluginLimits default_limits = {})
      : default_limits_(default_limits) {}

  /// Installs a new plugin into `slot` (slot must not exist yet).
  Status install(const std::string& slot, std::span<const uint8_t> module_bytes,
                 const wasm::Linker& extra_host = {});

  /// Replaces the plugin in `slot`. The new module is validated and
  /// instantiated first; on any failure the old plugin keeps running.
  /// Clears quarantine on success.
  Status swap(const std::string& slot, std::span<const uint8_t> module_bytes,
              const wasm::Linker& extra_host = {});

  /// Removes a slot entirely (an MVNO being off-boarded).
  Status remove(const std::string& slot);

  /// Calls `fn` on the plugin in `slot`. Fault accounting + quarantine are
  /// applied here; a quarantined slot returns kState immediately.
  Result<std::vector<uint8_t>> call(const std::string& slot, const std::string& fn,
                                    std::span<const uint8_t> input);

  bool has(const std::string& slot) const { return slots_.contains(slot); }
  std::vector<std::string> slot_names() const;

  const SlotHealth* health(const std::string& slot) const;
  /// Per-slot call-cost distribution (fuel, instructions, wall time, stack
  /// depth), accumulated from the engine's CallStats on every call —
  /// including faulting ones, whose partial cost still counts against the
  /// slot. Null if the slot does not exist.
  const CallCostAcc* cost(const std::string& slot) const;
  /// Lifts quarantine manually (operator intervention).
  Status reset_quarantine(const std::string& slot);

  /// Adjusts a slot's per-call fuel budget (driven by FuelGovernor, §6B).
  Status set_fuel(const std::string& slot, uint64_t fuel);

  /// Direct access for introspection (memory probes in Fig. 5c).
  Plugin* plugin(const std::string& slot);

 private:
  struct Slot {
    std::shared_ptr<Plugin> plugin;
    SlotHealth health;
    CallCostAcc cost;
  };

  PluginLimits default_limits_;
  std::map<std::string, Slot> slots_;
};

}  // namespace waran::plugin
