// PluginManager: named plugin slots with on-the-fly replacement and fault
// quarantine.
//
// Hot swap (paper §3A "the update can be done on the fly ... without
// stopping or redeploying gNBs"): swap() fully decodes, validates and
// instantiates the replacement before it touches the slot, so a broken
// upload can never take down a working scheduler; the switch itself is a
// shared_ptr exchange between slot and caller.
//
// Quarantine (paper §6A fault tolerance): after `quarantine_after_faults`
// consecutive faults the slot refuses further calls until reset or swapped,
// and the embedder falls back to its default policy (the scheduler falls
// back to host-side round-robin).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/stats.h"
#include "obs/metrics.h"
#include "plugin/plugin.h"

namespace waran::plugin {

struct SlotHealth {
  uint64_t calls = 0;
  uint64_t faults = 0;            // sandbox faults: traps, fuel, limits
  uint64_t traps = 0;             //   .. of which wasm traps (OOB, unreachable, ...)
  uint64_t fuel_exhaustions = 0;  //   .. of which fuel/deadline exhaustion
  uint64_t declines = 0;          // plugin-declared rejections (no quarantine)
  uint32_t consecutive_faults = 0;
  uint64_t swaps = 0;
  bool quarantined = false;
  std::string last_error;
};

class PluginManager {
 public:
  explicit PluginManager(PluginLimits default_limits = {})
      : default_limits_(default_limits) {}

  /// Switches every *future* install/swap to the tier-2 specializing
  /// backend: plugins loaded after this call run under Dispatch::kSpecialized
  /// against a code cache owned by this manager (one manager per cell, so
  /// the cache inherits the cell's single-thread execution discipline and
  /// needs no locks). Slots installed earlier keep their dispatch. Call it
  /// right after construction — the deployment layer does, when
  /// DeploymentConfig.tier_up_threshold > 0.
  void enable_tier2(uint32_t tier_up_threshold = 32);

  /// The manager-owned tier-2 code cache; null until enable_tier2().
  const wasm::CodeCache* code_cache() const { return code_cache_.get(); }

  /// Switches every *future* install/swap to admission-time static
  /// analysis (analysis/analysis.h): the plugin's translated streams are
  /// verified and every export's static fuel/frame bounds are checked
  /// against the slot budget (fuel_per_call + the engine call-depth limit)
  /// before the slot ever runs. kEnforce makes install/swap fail with
  /// kLimitExceeded — one kAdmissionReject anomaly, zero calls; kWarn only
  /// keeps the report.
  void set_admission(analysis::AdmissionMode mode) {
    default_limits_.admission = mode;
  }

  /// Admission report of the plugin currently in `slot` (null when the
  /// slot does not exist or was installed with admission off).
  const analysis::AdmissionReport* admission_report(const std::string& slot) const;

  /// Report from the most recent install/swap that ran admission analysis —
  /// including one that was *rejected* and therefore owns no slot.
  const analysis::AdmissionReport* last_admission_report() const {
    return last_admission_ ? &*last_admission_ : nullptr;
  }

  /// Observability domain this manager reports under ("mac", "gnb0",
  /// "ric"): the `domain` label on every per-slot metric and the journal
  /// domain for anomalies. Set before installing plugins; slots installed
  /// earlier keep the handles they resolved at install time.
  void set_domain(std::string domain) { domain_ = std::move(domain); }
  const std::string& domain() const { return domain_; }

  /// Installs a new plugin into `slot` (slot must not exist yet).
  Status install(const std::string& slot, std::span<const uint8_t> module_bytes,
                 const wasm::Linker& extra_host = {});

  /// Replaces the plugin in `slot`. The new module is validated and
  /// instantiated first; on any failure the old plugin keeps running.
  /// Clears quarantine on success.
  Status swap(const std::string& slot, std::span<const uint8_t> module_bytes,
              const wasm::Linker& extra_host = {});

  /// Removes a slot entirely (an MVNO being off-boarded).
  Status remove(const std::string& slot);

  /// Calls `fn` on the plugin in `slot`. Fault accounting + quarantine are
  /// applied here; a quarantined slot returns kState immediately.
  Result<std::vector<uint8_t>> call(const std::string& slot, const std::string& fn,
                                    std::span<const uint8_t> input);

  bool has(const std::string& slot) const { return slots_.contains(slot); }
  std::vector<std::string> slot_names() const;

  const SlotHealth* health(const std::string& slot) const;
  /// Per-slot call-cost distribution (fuel, instructions, wall time, stack
  /// depth), accumulated from the engine's CallStats on every call —
  /// including faulting ones, whose partial cost still counts against the
  /// slot. Null if the slot does not exist.
  const CallCostAcc* cost(const std::string& slot) const;
  /// Lifts quarantine manually (operator intervention).
  Status reset_quarantine(const std::string& slot);

  /// Adjusts a slot's per-call fuel budget (driven by FuelGovernor, §6B).
  Status set_fuel(const std::string& slot, uint64_t fuel);

  /// Direct access for introspection (memory probes in Fig. 5c).
  Plugin* plugin(const std::string& slot);

  // --- Deterministic fault injection (waran::chaos) ------------------------
  // The interceptors let a harness fail or starve individual sandbox
  // crossings on a reproducible schedule, exercising the manager's real
  // containment paths (fault accounting, quarantine, anomaly journal)
  // rather than simulating them from outside. Production embedders never
  // install one; the manager stays chaos-free.

  /// What the call interceptor decided for one crossing.
  struct CallIntercept {
    /// Fail the call with this error before the sandbox is entered. The
    /// error flows through the normal fault-accounting path (kTrap /
    /// kFuelExhausted anomalies, consecutive-fault quarantine).
    std::optional<Error> fail;
    /// Starve the call for real: one-call fuel / deadline overrides passed
    /// to the engine, which then reports genuine exhaustion traps.
    std::optional<uint64_t> fuel;
    std::optional<uint64_t> deadline_ns;
  };
  using CallInterceptor =
      std::function<CallIntercept(const std::string& slot, const std::string& fn)>;
  void set_call_interceptor(CallInterceptor fn) {
    call_interceptor_ = std::move(fn);
  }

  /// Consulted by install/swap before the module is loaded; returning an
  /// error makes the load fail (recorded as a kLoadFailed anomaly, like any
  /// natural decode/validate/instantiate failure).
  using LoadInterceptor = std::function<std::optional<Error>(const std::string& slot)>;
  void set_load_interceptor(LoadInterceptor fn) {
    load_interceptor_ = std::move(fn);
  }

 private:
  struct Slot {
    std::shared_ptr<Plugin> plugin;
    SlotHealth health;
    CallCostAcc cost;
    /// Set when admission analysis ran for the installed plugin.
    std::optional<analysis::AdmissionReport> admission;
    // Registry handles, resolved once at install so the per-call feed is a
    // few relaxed atomic adds (the canonical CallStats -> telemetry path).
    obs::Counter* m_calls = nullptr;
    obs::Counter* m_traps = nullptr;
    obs::Counter* m_fuel_exhausted = nullptr;
    obs::Counter* m_declines = nullptr;
    obs::Counter* m_fuel_used = nullptr;
    obs::Counter* m_instrs = nullptr;
    obs::Counter* m_tier_ups = nullptr;
    obs::Histogram* m_wall_ns = nullptr;
    // Instance tier_up_events() already exported to m_tier_ups; the per-call
    // delta feed keeps the counter exact across hot swaps (which reset the
    // instance's monotonic count to zero).
    uint64_t tier_ups_seen = 0;
  };

  void bind_metrics(const std::string& slot_name, Slot& slot);

  Result<std::shared_ptr<Plugin>> load_checked(const std::string& slot,
                                               std::span<const uint8_t> module_bytes,
                                               const wasm::Linker& extra_host);

  PluginLimits default_limits_;
  std::unique_ptr<wasm::CodeCache> code_cache_;
  std::string domain_ = "plugin";
  std::map<std::string, Slot> slots_;
  CallInterceptor call_interceptor_;
  LoadInterceptor load_interceptor_;
  /// Most recent admission analysis (load_checked fills it; install/swap
  /// copy it into the slot on success, rejected loads leave it here).
  std::optional<analysis::AdmissionReport> last_admission_;
};

}  // namespace waran::plugin
