// WA-RAN plugin framework (the paper's core mechanism, modeled on Extism):
// a Plugin wraps one wasm instance plus an input/output exchange buffer.
// The host passes a serialized request by exposing it through the
// `waran.input_*` host functions; the plugin computes and hands back a
// response through `waran.output_write`. All plugin failures — traps, fuel
// exhaustion, malformed output — surface as Result errors the host can
// contain (paper §5D, §6A).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "analysis/analysis.h"
#include "common/result.h"
#include "wasm/wasm.h"

namespace waran::plugin {

/// Per-plugin resource policy. Defaults bound a scheduler plugin well below
/// the 1 ms slot budget on any plausible host.
struct PluginLimits {
  /// Fuel units (≈ interpreted instructions) per call; 0 disables metering.
  uint64_t fuel_per_call = 2'000'000;
  /// Wall-clock budget per call in nanoseconds; 0 disables the deadline.
  /// Overruns surface as fuel exhaustion (the paper's slot-budget guard).
  uint64_t deadline_ns_per_call = 0;
  /// Largest input payload the host will pass in.
  uint32_t max_input_bytes = 1 << 20;
  /// Largest output payload the host will accept.
  uint32_t max_output_bytes = 1 << 20;
  /// Consecutive faults before the manager quarantines the plugin (§6A).
  uint32_t quarantine_after_faults = 3;
  /// Interpreter dispatch backend for this plugin's instance. kDefault picks
  /// the fastest compiled-in backend (or honours WARAN_DISPATCH);
  /// kSpecialized adds profile-guided tier-up (wasm/specialize.h).
  wasm::Dispatch dispatch = wasm::Dispatch::kDefault;
  /// Code cache holding tier-2 streams, shared across every plugin of one
  /// cell (single-writer: the cell's executor thread). Null = each instance
  /// owns a private cache. Read only when dispatch == kSpecialized.
  wasm::CodeCache* code_cache = nullptr;
  /// Calls before a function tiers up (kSpecialized only; 0 behaves as 1).
  uint32_t tier_up_threshold = 32;
  /// Admission-time static analysis (analysis/analysis.h): PluginManager
  /// verifies the translated streams and checks every export's static
  /// fuel/frame bounds against this slot budget before the first call.
  /// kEnforce refuses plugins that *must* exceed it; kWarn only reports.
  analysis::AdmissionMode admission = analysis::AdmissionMode::kOff;
};

/// Lifetime call statistics, exposed for the evaluation harness.
struct PluginStats {
  uint64_t calls = 0;
  uint64_t traps = 0;             ///< sandbox faults (OOB, unreachable, ...)
  uint64_t fuel_exhaustions = 0;  ///< deadline overruns
  uint64_t declines = 0;          ///< plugin-declared rejections (nonzero status)
  uint64_t instructions_retired = 0;
  std::string last_error;
};

/// One-call budget overrides, tightening (or loosening) the slot's standing
/// PluginLimits for a single sandbox crossing. The chaos harness uses this
/// to force *real* engine-level fuel/deadline exhaustion on schedule; the
/// FuelGovernor path keeps using set_fuel_per_call for standing changes.
struct CallOverrides {
  std::optional<uint64_t> fuel;         ///< fuel budget for this call only
  std::optional<uint64_t> deadline_ns;  ///< wall-clock budget for this call only
};

/// One loaded plugin instance.
class Plugin {
 public:
  /// Decodes, validates and instantiates `module_bytes`. `extra_host` lets
  /// the embedder expose additional control-surface functions (the gNB /
  /// RIC host functions of paper §4B) beyond the base `waran.*` ABI.
  static Result<std::unique_ptr<Plugin>> load(std::span<const uint8_t> module_bytes,
                                              const wasm::Linker& extra_host = {},
                                              const PluginLimits& limits = {});

  /// Calls exported `fn` with `input` available via the ABI; returns the
  /// bytes the plugin wrote with output_write. The exported function must
  /// have type () -> i32 and return 0; a nonzero return is a plugin-declared
  /// failure. `overrides` tightens the per-call budgets for this call only.
  Result<std::vector<uint8_t>> call(const std::string& fn, std::span<const uint8_t> input,
                                    const CallOverrides& overrides = {});

  /// True if the module exports function `fn`.
  bool has_export(const std::string& fn) const;

  const PluginStats& stats() const { return stats_; }
  const PluginLimits& limits() const { return limits_; }

  /// Adjusts the per-call fuel budget at runtime (driven by FuelGovernor).
  void set_fuel_per_call(uint64_t fuel) { limits_.fuel_per_call = fuel; }
  /// Instructions retired by the most recent call (0 before any call).
  uint64_t last_call_instructions() const { return last_call_stats_.instrs_retired; }
  /// Full cost record of the most recent call (fuel, instructions, wall
  /// time, peak interpreter stack depth).
  const wasm::CallStats& last_call_stats() const { return last_call_stats_; }

  /// Linear-memory footprint right now (bytes). Fig. 5c probes this.
  size_t memory_bytes() const;

  /// Functions this instance has tiered up to specialized streams
  /// (monotonic; 0 unless limits.dispatch == kSpecialized).
  uint64_t tier_up_events() const;

  /// Log lines emitted via waran.log since the last call (cleared per call).
  const std::vector<std::string>& log_lines() const { return exchange_.log; }

  wasm::Instance& instance() { return *instance_; }

 private:
  Plugin() = default;

  struct Exchange {
    std::vector<uint8_t> input;
    std::vector<uint8_t> output;
    std::vector<std::string> log;
    uint32_t max_output_bytes = 0;
  };

  static void register_abi(wasm::Linker& linker);

  std::shared_ptr<const wasm::Module> module_;
  std::unique_ptr<wasm::Instance> instance_;
  Exchange exchange_;
  PluginLimits limits_;
  PluginStats stats_;
  wasm::CallStats last_call_stats_;
};

}  // namespace waran::plugin
