#include "plugin/manager.h"

#include "common/log.h"
#include "obs/anomaly.h"
#include "obs/trace.h"

namespace waran::plugin {

void PluginManager::bind_metrics(const std::string& slot_name, Slot& slot) {
  auto& reg = obs::MetricsRegistry::global();
  obs::Labels labels = {{"domain", domain_}, {"slot", slot_name}};
  slot.m_calls = &reg.counter("waran_plugin_calls_total", labels);
  slot.m_traps = &reg.counter("waran_plugin_traps_total", labels);
  slot.m_fuel_exhausted = &reg.counter("waran_plugin_fuel_exhausted_total", labels);
  slot.m_declines = &reg.counter("waran_plugin_declines_total", labels);
  slot.m_fuel_used = &reg.counter("waran_plugin_fuel_used_total", labels);
  slot.m_instrs = &reg.counter("waran_plugin_instructions_total", labels);
  slot.m_tier_ups = &reg.counter("waran_plugin_tier_ups_total", labels);
  slot.m_wall_ns = &reg.histogram("waran_plugin_wall_ns", labels);
}

void PluginManager::enable_tier2(uint32_t tier_up_threshold) {
  if (code_cache_ == nullptr) code_cache_ = std::make_unique<wasm::CodeCache>();
  default_limits_.dispatch = wasm::Dispatch::kSpecialized;
  default_limits_.code_cache = code_cache_.get();
  default_limits_.tier_up_threshold = tier_up_threshold;
}

// Shared install/swap front half: consult the chaos load interceptor, then
// decode/validate/instantiate. Any failure — injected or natural — is a
// containment event worth journaling: a broken upload was refused before it
// could touch a live slot.
Result<std::shared_ptr<Plugin>> PluginManager::load_checked(
    const std::string& slot, std::span<const uint8_t> module_bytes,
    const wasm::Linker& extra_host) {
  if (load_interceptor_) {
    if (std::optional<Error> err = load_interceptor_(slot)) {
      obs::AnomalyJournal::global().record(obs::AnomalyKind::kLoadFailed, domain_,
                                           slot, err->message);
      return *err;
    }
  }
  auto loaded = Plugin::load(module_bytes, extra_host, default_limits_);
  if (!loaded.ok()) {
    obs::AnomalyJournal::global().record(obs::AnomalyKind::kLoadFailed, domain_,
                                         slot, loaded.error().message);
    return loaded.error();
  }
  auto plugin = std::shared_ptr<Plugin>(std::move(*loaded));
  if (default_limits_.admission == analysis::AdmissionMode::kOff) {
    last_admission_.reset();
    return plugin;
  }
  // Admission-time static analysis: verify the translated streams and check
  // every export's static fuel/frame bounds against the slot budget. The
  // module is fully built but has never run — a rejection here is exactly
  // "refused before first call".
  wasm::Instance& inst = plugin->instance();
  analysis::AdmissionLimits budget;
  budget.fuel_per_call = default_limits_.fuel_per_call;
  budget.max_call_depth = inst.max_call_depth();
  last_admission_ = analysis::admit(inst.module(), *inst.translation(), budget);
  if (!last_admission_->admitted) {
    const std::string reason = last_admission_->reject_reason();
    if (default_limits_.admission == analysis::AdmissionMode::kEnforce) {
      obs::AnomalyJournal::global().record(obs::AnomalyKind::kAdmissionReject,
                                           domain_, slot, reason);
      obs::MetricsRegistry::global()
          .counter("waran_plugin_admission_rejects_total",
                   {{"domain", domain_}, {"slot", slot}})
          .add();
      WARAN_LOG(kWarn, "plugin",
                "admission rejected slot '" << slot << "': " << reason);
      return Error::limit_exceeded("admission rejected: " + reason);
    }
    WARAN_LOG(kWarn, "plugin", "admission would reject slot '"
                                   << slot << "' (warn mode): " << reason);
  }
  return plugin;
}

Status PluginManager::install(const std::string& slot,
                              std::span<const uint8_t> module_bytes,
                              const wasm::Linker& extra_host) {
  if (slots_.contains(slot)) {
    return Error::state("slot already exists: " + slot + " (use swap)");
  }
  WARAN_TRY(p, load_checked(slot, module_bytes, extra_host));
  Slot s;
  s.plugin = std::move(p);
  s.admission = last_admission_;
  bind_metrics(slot, s);
  slots_.emplace(slot, std::move(s));
  WARAN_LOG(kInfo, "plugin", "installed slot '" << slot << "'");
  return {};
}

Status PluginManager::swap(const std::string& slot,
                           std::span<const uint8_t> module_bytes,
                           const wasm::Linker& extra_host) {
  auto it = slots_.find(slot);
  if (it == slots_.end()) return Error::not_found("no such slot: " + slot);
  // Build the replacement completely before touching the live slot.
  WARAN_TRY(p, load_checked(slot, module_bytes, extra_host));
  it->second.plugin = std::move(p);
  it->second.admission = last_admission_;
  it->second.health.quarantined = false;
  it->second.health.consecutive_faults = 0;
  it->second.tier_ups_seen = 0;  // fresh instance, fresh monotonic count
  ++it->second.health.swaps;
  WARAN_LOG(kInfo, "plugin", "hot-swapped slot '" << slot << "'");
  return {};
}

Status PluginManager::remove(const std::string& slot) {
  if (slots_.erase(slot) == 0) return Error::not_found("no such slot: " + slot);
  return {};
}

Result<std::vector<uint8_t>> PluginManager::call(const std::string& slot,
                                                 const std::string& fn,
                                                 std::span<const uint8_t> input) {
  auto it = slots_.find(slot);
  if (it == slots_.end()) return Error::not_found("no such slot: " + slot);
  Slot& s = it->second;
  if (s.health.quarantined) {
    return Error::state("slot '" + slot + "' is quarantined after repeated faults");
  }
  obs::ObsSpan span(obs::TraceCat::kPlugin, slot);
  ++s.health.calls;
  s.m_calls->add();

  CallIntercept intercept;
  if (call_interceptor_) intercept = call_interceptor_(slot, fn);

  Result<std::vector<uint8_t>> result = Error::internal("uninitialized");
  if (intercept.fail) {
    // Injected failure: the sandbox is never entered, so the crossing costs
    // nothing — but it still counts as a call so the accounting invariant
    // (health.calls == cost.calls() == calls_total) holds.
    result = *intercept.fail;
    s.cost.add(0, 0, 0, 0);
    s.m_wall_ns->add(0);
  } else {
    CallOverrides overrides;
    overrides.fuel = intercept.fuel;
    overrides.deadline_ns = intercept.deadline_ns;
    result = s.plugin->call(fn, input, overrides);
    // Canonical telemetry path: every sandbox crossing feeds the engine's
    // CallStats into both the exact per-slot accumulator (CallCostAcc, for
    // offline p50/p99) and the metrics registry (for live exposition) —
    // including faulting calls, whose partial cost still counts.
    const wasm::CallStats& cs = s.plugin->last_call_stats();
    s.cost.add(cs.fuel_used, cs.instrs_retired, cs.wall_ns, cs.peak_stack_depth);
    s.m_fuel_used->add(cs.fuel_used);
    s.m_instrs->add(cs.instrs_retired);
    s.m_wall_ns->add(cs.wall_ns);
    // Tier-up happens inside the sandbox crossing (on this cell's own
    // thread); export the instance's monotonic count as a delta.
    const uint64_t tier_ups = s.plugin->tier_up_events();
    if (tier_ups > s.tier_ups_seen) {
      s.m_tier_ups->add(tier_ups - s.tier_ups_seen);
      s.tier_ups_seen = tier_ups;
    }
  }
  if (!result.ok()) {
    if (result.error().code == Error::Code::kState) {
      // Deliberate rejection: legitimate behaviour (a comm plugin refusing
      // a corrupt frame must not get itself quarantined).
      ++s.health.declines;
      s.m_declines->add();
      s.health.last_error = result.error().message;
      return result.error();
    }
    ++s.health.faults;
    ++s.health.consecutive_faults;
    s.health.last_error = result.error().message;
    if (result.error().code == Error::Code::kFuelExhausted) {
      // Covers both fuel-budget and wall-clock-deadline overruns (the
      // engine reports deadline misses as fuel exhaustion by design).
      ++s.health.fuel_exhaustions;
      s.m_fuel_exhausted->add();
      obs::AnomalyJournal::global().record(obs::AnomalyKind::kFuelExhausted,
                                           domain_, slot, result.error().message);
    } else {
      ++s.health.traps;
      s.m_traps->add();
      obs::AnomalyJournal::global().record(obs::AnomalyKind::kTrap, domain_, slot,
                                           result.error().message);
    }
    if (s.health.consecutive_faults >= s.plugin->limits().quarantine_after_faults) {
      s.health.quarantined = true;
      obs::AnomalyJournal::global().record(obs::AnomalyKind::kQuarantine, domain_,
                                           slot, s.health.last_error);
      WARAN_LOG(kWarn, "plugin",
                "slot '" << slot << "' quarantined after "
                         << s.health.consecutive_faults
                         << " consecutive faults: " << s.health.last_error);
    }
    return result.error();
  }
  s.health.consecutive_faults = 0;
  return result;
}

std::vector<std::string> PluginManager::slot_names() const {
  std::vector<std::string> names;
  names.reserve(slots_.size());
  for (const auto& [name, _] : slots_) names.push_back(name);
  return names;
}

const SlotHealth* PluginManager::health(const std::string& slot) const {
  auto it = slots_.find(slot);
  return it == slots_.end() ? nullptr : &it->second.health;
}

const analysis::AdmissionReport* PluginManager::admission_report(
    const std::string& slot) const {
  auto it = slots_.find(slot);
  if (it == slots_.end() || !it->second.admission) return nullptr;
  return &*it->second.admission;
}

const CallCostAcc* PluginManager::cost(const std::string& slot) const {
  auto it = slots_.find(slot);
  return it == slots_.end() ? nullptr : &it->second.cost;
}

Status PluginManager::reset_quarantine(const std::string& slot) {
  auto it = slots_.find(slot);
  if (it == slots_.end()) return Error::not_found("no such slot: " + slot);
  it->second.health.quarantined = false;
  it->second.health.consecutive_faults = 0;
  return {};
}

Status PluginManager::set_fuel(const std::string& slot, uint64_t fuel) {
  auto it = slots_.find(slot);
  if (it == slots_.end()) return Error::not_found("no such slot: " + slot);
  it->second.plugin->set_fuel_per_call(fuel);
  return {};
}

Plugin* PluginManager::plugin(const std::string& slot) {
  auto it = slots_.find(slot);
  return it == slots_.end() ? nullptr : it->second.plugin.get();
}

}  // namespace waran::plugin
