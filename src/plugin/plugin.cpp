#include "plugin/plugin.h"

#include <algorithm>

#include "common/log.h"

namespace waran::plugin {

using wasm::FuncType;
using wasm::HostContext;
using wasm::HostFunc;
using wasm::ValType;
using wasm::Value;

// The base ABI, mirroring Extism's input/output model:
//   waran.input_len() -> i32
//   waran.input_read(dst, off, len) -> i32   bytes actually copied
//   waran.output_write(ptr, len)             replaces the output buffer
//   waran.log(ptr, len)                      debug channel
//   waran.abort(code)                        traps with the given code
void Plugin::register_abi(wasm::Linker& linker) {
  auto exchange_of = [](HostContext& ctx) {
    return static_cast<Exchange*>(ctx.user_data);
  };

  linker.register_func(
      "waran", "input_len",
      HostFunc{FuncType{{}, {ValType::kI32}},
               [exchange_of](HostContext& ctx, std::span<const Value>)
                   -> Result<std::optional<Value>> {
                 auto* ex = exchange_of(ctx);
                 return std::optional<Value>(
                     Value::from_u32(static_cast<uint32_t>(ex->input.size())));
               }});

  linker.register_func(
      "waran", "input_read",
      HostFunc{FuncType{{ValType::kI32, ValType::kI32, ValType::kI32}, {ValType::kI32}},
               [exchange_of](HostContext& ctx, std::span<const Value> args)
                   -> Result<std::optional<Value>> {
                 auto* ex = exchange_of(ctx);
                 uint32_t dst = args[0].as_u32();
                 uint32_t off = args[1].as_u32();
                 uint32_t len = args[2].as_u32();
                 if (off >= ex->input.size()) {
                   return std::optional<Value>(Value::from_i32(0));
                 }
                 uint32_t n = std::min<uint32_t>(
                     len, static_cast<uint32_t>(ex->input.size()) - off);
                 wasm::Memory* mem = ctx.instance.memory();
                 if (mem == nullptr) return Error::trap("plugin has no memory");
                 WARAN_CHECK_OK(mem->write_bytes(
                     dst, std::span<const uint8_t>(ex->input.data() + off, n)));
                 return std::optional<Value>(Value::from_u32(n));
               }});

  linker.register_func(
      "waran", "output_write",
      HostFunc{FuncType{{ValType::kI32, ValType::kI32}, {}},
               [exchange_of](HostContext& ctx, std::span<const Value> args)
                   -> Result<std::optional<Value>> {
                 auto* ex = exchange_of(ctx);
                 uint32_t ptr = args[0].as_u32();
                 uint32_t len = args[1].as_u32();
                 if (len > ex->max_output_bytes) {
                   return Error::trap("plugin output exceeds limit");
                 }
                 wasm::Memory* mem = ctx.instance.memory();
                 if (mem == nullptr) return Error::trap("plugin has no memory");
                 ex->output.resize(len);
                 WARAN_CHECK_OK(mem->read_bytes(ptr, ex->output));
                 return std::optional<Value>{};
               }});

  linker.register_func(
      "waran", "log",
      HostFunc{FuncType{{ValType::kI32, ValType::kI32}, {}},
               [exchange_of](HostContext& ctx, std::span<const Value> args)
                   -> Result<std::optional<Value>> {
                 auto* ex = exchange_of(ctx);
                 uint32_t ptr = args[0].as_u32();
                 uint32_t len = std::min<uint32_t>(args[1].as_u32(), 4096);
                 wasm::Memory* mem = ctx.instance.memory();
                 if (mem == nullptr) return Error::trap("plugin has no memory");
                 std::string line(len, '\0');
                 WARAN_CHECK_OK(mem->read_bytes(
                     ptr, std::span<uint8_t>(reinterpret_cast<uint8_t*>(line.data()), len)));
                 ex->log.push_back(std::move(line));
                 return std::optional<Value>{};
               }});

  linker.register_func(
      "waran", "abort",
      HostFunc{FuncType{{ValType::kI32}, {}},
               [](HostContext&, std::span<const Value> args)
                   -> Result<std::optional<Value>> {
                 return Error::trap("plugin aborted with code " +
                                    std::to_string(args[0].as_i32()));
               }});
}

Result<std::unique_ptr<Plugin>> Plugin::load(std::span<const uint8_t> module_bytes,
                                             const wasm::Linker& extra_host,
                                             const PluginLimits& limits) {
  auto plugin = std::unique_ptr<Plugin>(new Plugin());
  plugin->limits_ = limits;
  plugin->exchange_.max_output_bytes = limits.max_output_bytes;

  WARAN_TRY(module, wasm::decode_module(module_bytes));
  WARAN_CHECK_OK(wasm::validate_module(module));
  // Lower to the micro-op stream once here so every instance of this plugin
  // shares the translation instead of re-lowering at instantiate time.
  WARAN_CHECK_OK(wasm::translate_module(module));
  plugin->module_ = std::make_shared<const wasm::Module>(std::move(module));

  // Compose: base ABI first, then embedder functions (which may override —
  // tests rely on that for fault injection).
  wasm::Linker linker;
  register_abi(linker);
  // Linker has no iteration API by design; copy via a merged registration.
  // extra_host takes precedence.
  wasm::Linker merged = linker;
  for (const auto& imp : plugin->module_->imports) {
    if (imp.kind == wasm::ImportKind::kFunc) {
      if (const wasm::HostFunc* hf = extra_host.lookup(imp.module, imp.name)) {
        merged.register_func(imp.module, imp.name, *hf);
      }
    }
  }

  wasm::InstanceOptions options;
  options.user_data = &plugin->exchange_;
  options.dispatch = limits.dispatch;
  options.code_cache = limits.code_cache;
  options.tier_up_threshold = limits.tier_up_threshold;
  WARAN_TRY(instance, wasm::Instance::instantiate(plugin->module_, merged, options));
  plugin->instance_ = std::move(instance);

  if (plugin->instance_->memory() == nullptr) {
    return Error::validation("plugin must define a linear memory");
  }
  return plugin;
}

bool Plugin::has_export(const std::string& fn) const {
  return instance_->find_export(fn, wasm::ImportKind::kFunc).has_value();
}

size_t Plugin::memory_bytes() const {
  const wasm::Memory* mem = instance_->memory();
  return mem != nullptr ? mem->size_bytes() : 0;
}

uint64_t Plugin::tier_up_events() const { return instance_->tier_up_events(); }

Result<std::vector<uint8_t>> Plugin::call(const std::string& fn,
                                          std::span<const uint8_t> input,
                                          const CallOverrides& overrides) {
  last_call_stats_ = {};
  if (input.size() > limits_.max_input_bytes) {
    return Error::limit_exceeded("plugin input exceeds limit");
  }
  exchange_.input.assign(input.begin(), input.end());
  exchange_.output.clear();
  exchange_.log.clear();

  // Per-call policy: fuel_per_call maps directly onto CallOptions (0 means
  // unmetered in both vocabularies), and the optional wall-clock deadline
  // rides along. The instance restores its fuel state after the call.
  wasm::CallOptions options;
  options.fuel = overrides.fuel.value_or(limits_.fuel_per_call);
  uint64_t deadline_ns = overrides.deadline_ns.value_or(limits_.deadline_ns_per_call);
  if (deadline_ns > 0) {
    options.deadline = std::chrono::nanoseconds(deadline_ns);
  }

  ++stats_.calls;
  auto result = instance_->call(fn, {}, options, &last_call_stats_);
  stats_.instructions_retired += last_call_stats_.instrs_retired;

  if (!result.ok()) {
    if (result.error().code == Error::Code::kFuelExhausted) {
      ++stats_.fuel_exhaustions;
    } else {
      ++stats_.traps;
    }
    stats_.last_error = result.error().message;
    return result.error();
  }
  if (!result->has_value() || (*result)->type != ValType::kI32) {
    return Error::validation("plugin entrypoint must have type () -> i32");
  }
  int32_t code = (*result)->value.as_i32();
  if (code != 0) {
    // A nonzero status is the plugin *deliberately* rejecting the input
    // (e.g. a comm plugin refusing a corrupt frame) — an application-level
    // outcome, not a sandbox fault.
    ++stats_.declines;
    stats_.last_error = "plugin returned status " + std::to_string(code);
    return Error::state(stats_.last_error);
  }
  return exchange_.output;
}

}  // namespace waran::plugin
