#include "common/tracked_alloc.h"

namespace waran {

Result<uint64_t> TrackedHeap::allocate(size_t bytes) {
  if (bytes == 0) return Error::invalid_argument("zero-byte allocation");
  uint64_t h = next_handle_++;
  blocks_.emplace(h, bytes);
  live_bytes_ += bytes;
  total_allocated_ += bytes;
  ++alloc_count_;
  return h;
}

Status TrackedHeap::free(uint64_t handle) {
  auto it = blocks_.find(handle);
  if (it == blocks_.end()) {
    return Error::state("double free or invalid free of handle " + std::to_string(handle));
  }
  live_bytes_ -= it->second;
  blocks_.erase(it);
  ++free_count_;
  return {};
}

void TrackedHeap::reset() {
  blocks_.clear();
  live_bytes_ = 0;
}

}  // namespace waran
