#include "common/tracked_alloc.h"

#include <atomic>

namespace waran {

namespace heap_probe {
namespace {
std::atomic<uint64_t> g_allocs{0};
std::atomic<uint64_t> g_bytes{0};
}  // namespace

void note_alloc(size_t bytes) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(bytes, std::memory_order_relaxed);
}
void note_free() noexcept {}
uint64_t allocations() noexcept { return g_allocs.load(std::memory_order_relaxed); }
uint64_t bytes() noexcept { return g_bytes.load(std::memory_order_relaxed); }

}  // namespace heap_probe

Result<uint64_t> TrackedHeap::allocate(size_t bytes) {
  if (bytes == 0) return Error::invalid_argument("zero-byte allocation");
  uint64_t h = next_handle_++;
  blocks_.emplace(h, bytes);
  live_bytes_ += bytes;
  total_allocated_ += bytes;
  ++alloc_count_;
  return h;
}

Status TrackedHeap::free(uint64_t handle) {
  auto it = blocks_.find(handle);
  if (it == blocks_.end()) {
    return Error::state("double free or invalid free of handle " + std::to_string(handle));
  }
  live_bytes_ -= it->second;
  blocks_.erase(it);
  ++free_count_;
  return {};
}

void TrackedHeap::reset() {
  blocks_.clear();
  live_bytes_ = 0;
}

}  // namespace waran
