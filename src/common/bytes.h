// Byte-level reader/writer used by the wasm decoder/encoder and by the codec
// library. Little-endian fixed-width integers, IEEE-754 floats, and the
// LEB128 variable-length encodings the wasm binary format requires.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace waran {

/// Non-owning sequential reader over a byte span. All reads are
/// bounds-checked and return Result; the cursor does not advance on failure.
class ByteReader {
 public:
  explicit ByteReader(std::span<const uint8_t> data) : data_(data) {}

  size_t pos() const { return pos_; }
  size_t remaining() const { return data_.size() - pos_; }
  bool at_end() const { return pos_ == data_.size(); }

  /// Repositions the cursor. `p` must be <= size.
  Status seek(size_t p);

  Result<uint8_t> u8();
  Result<uint16_t> u16le();
  Result<uint32_t> u32le();
  Result<uint64_t> u64le();
  Result<float> f32le();
  Result<double> f64le();

  /// Unsigned LEB128, at most `max_bits` significant bits (32 or 64).
  Result<uint64_t> uleb(unsigned max_bits);
  /// Signed LEB128, at most `max_bits` significant bits (32, 33, or 64).
  Result<int64_t> sleb(unsigned max_bits);

  Result<uint32_t> uleb32() {
    auto r = uleb(32);
    if (!r.ok()) return r.error();
    return static_cast<uint32_t>(*r);
  }
  Result<int32_t> sleb32() {
    auto r = sleb(32);
    if (!r.ok()) return r.error();
    return static_cast<int32_t>(*r);
  }

  /// Reads `n` raw bytes; the returned span aliases the underlying buffer.
  Result<std::span<const uint8_t>> bytes(size_t n);

  /// Length-prefixed (uleb32) UTF-8 name as used by wasm.
  Result<std::string> name();

  /// Skips `n` bytes.
  Status skip(size_t n);

 private:
  std::span<const uint8_t> data_;
  size_t pos_ = 0;
};

/// Growable byte sink with the matching encodings.
class ByteWriter {
 public:
  const std::vector<uint8_t>& data() const { return buf_; }
  std::vector<uint8_t> take() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

  void u8(uint8_t v) { buf_.push_back(v); }
  void u16le(uint16_t v);
  void u32le(uint32_t v);
  void u64le(uint64_t v);
  void f32le(float v);
  void f64le(double v);

  void uleb(uint64_t v);
  void sleb(int64_t v);
  void uleb32(uint32_t v) { uleb(v); }
  void sleb32(int32_t v) { sleb(v); }

  void bytes(std::span<const uint8_t> b) { buf_.insert(buf_.end(), b.begin(), b.end()); }
  void name(std::string_view s);

  /// Overwrites 4 bytes at `at` with a *padded* 5-byte... no: fixed u32le.
  /// Used for patching little-endian placeholders.
  void patch_u32le(size_t at, uint32_t v);

 private:
  std::vector<uint8_t> buf_;
};

/// Encodes `v` as ULEB128 into exactly 5 bytes (padded). Wasm permits
/// redundant zero continuation bytes; section-size back-patching relies on
/// a fixed width.
void write_uleb32_padded(std::vector<uint8_t>& out, size_t at, uint32_t v);

}  // namespace waran
