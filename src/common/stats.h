// Statistics helpers for the evaluation harness: an exact quantile
// accumulator (the paper reports 50th/99th percentile execution times via
// Boost Accumulators; we keep all samples and compute exact order statistics)
// and a windowed rate meter (bit/s over a sliding window, as iperf3 reports).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

namespace waran {

/// Collects double samples and answers exact quantile queries.
class QuantileAcc {
 public:
  void add(double v) {
    samples_.push_back(v);
    sorted_ = false;
  }

  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  /// q in [0,1]. Nearest-rank on the sorted samples: quantile(0.0) is the
  /// minimum, quantile(1.0) the maximum, and out-of-range q clamps to those
  /// endpoints. Returns 0 when empty.
  double quantile(double q) const;
  double min() const;
  double max() const;
  double mean() const;
  /// Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
  double stddev() const;

  void clear() {
    samples_.clear();
    sorted_ = false;
  }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  void ensure_sorted() const;
};

/// Sliding-window throughput meter: record (time, bits) arrivals, query the
/// average rate over the trailing window. Times are in seconds and expected
/// monotone; a timestamp older than the newest recorded entry is clamped
/// forward so the window never un-sorts (clock skew between reporting paths
/// must not corrupt eviction).
class RateMeter {
 public:
  explicit RateMeter(double window_s = 1.0) : window_s_(window_s) {}

  void add(double t, uint64_t bits);
  /// Average bit/s over [t - window, t]. Query times earlier than the newest
  /// recorded entry are clamped to it; an empty window reports 0.
  double rate_bps(double t) const;
  uint64_t total_bits() const { return total_bits_; }

 private:
  struct Entry {
    double t;
    uint64_t bits;
  };
  double window_s_;
  mutable std::deque<Entry> entries_;
  mutable uint64_t window_bits_ = 0;
  uint64_t total_bits_ = 0;
  void evict(double t) const;
};

/// Aggregates per-call cost records — fuel used, instructions retired, wall
/// time, peak interpreter stack depth — as reported by the engine's
/// CallStats. One accumulator per plugin slot gives the evaluation harness
/// exact p50/p99 execution times plus fuel/depth envelopes per plugin.
class CallCostAcc {
 public:
  void add(uint64_t fuel_used, uint64_t instrs, uint64_t wall_ns, uint32_t peak_depth) {
    ++calls_;
    total_fuel_ += fuel_used;
    total_instrs_ += instrs;
    if (peak_depth > max_peak_depth_) max_peak_depth_ = peak_depth;
    wall_ns_.add(static_cast<double>(wall_ns));
  }

  uint64_t calls() const { return calls_; }
  uint64_t total_fuel() const { return total_fuel_; }
  uint64_t total_instrs() const { return total_instrs_; }
  uint32_t max_peak_depth() const { return max_peak_depth_; }
  /// Wall-time distribution in nanoseconds (exact order statistics).
  const QuantileAcc& wall_ns() const { return wall_ns_; }

  void clear() {
    calls_ = 0;
    total_fuel_ = 0;
    total_instrs_ = 0;
    max_peak_depth_ = 0;
    wall_ns_.clear();
  }

 private:
  uint64_t calls_ = 0;
  uint64_t total_fuel_ = 0;
  uint64_t total_instrs_ = 0;
  uint32_t max_peak_depth_ = 0;
  QuantileAcc wall_ns_;
};

}  // namespace waran
