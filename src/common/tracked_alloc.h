// Byte-accounting allocator used by the Fig. 5c memory-safety experiment.
// The paper measures gNB-host RSS while a leaky scheduler runs (a) inside a
// Wasm plugin (flat) and (b) natively on the host (linear growth). We cannot
// let a real leak run unbounded in-process, so the "native host" arm of the
// experiment routes its allocations through this tracker, which reports live
// bytes exactly as an RSS probe would see them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>

#include "common/result.h"

namespace waran {

/// Models a process heap: allocate/free with double-free and invalid-free
/// detection, plus live-byte accounting. Not thread-safe (the gNB slot loop
/// is single-threaded, as in srsRAN's MAC scheduler context).
class TrackedHeap {
 public:
  /// Returns an opaque handle (never 0 on success).
  Result<uint64_t> allocate(size_t bytes);

  /// Frees a handle. Double free / unknown handle is a detected fault —
  /// this is exactly the class of bug the paper injects in §5D.
  Status free(uint64_t handle);

  size_t live_bytes() const { return live_bytes_; }
  size_t live_allocations() const { return blocks_.size(); }
  uint64_t total_allocated() const { return total_allocated_; }
  uint64_t alloc_count() const { return alloc_count_; }
  uint64_t free_count() const { return free_count_; }

  /// Drops everything, as process teardown would.
  void reset();

 private:
  std::unordered_map<uint64_t, size_t> blocks_;
  uint64_t next_handle_ = 1;
  size_t live_bytes_ = 0;
  uint64_t total_allocated_ = 0;
  uint64_t alloc_count_ = 0;
  uint64_t free_count_ = 0;
};

/// Process-wide *real*-heap probe for zero-allocation assertions (the
/// engine's warm-call guarantee). The counters only advance in binaries
/// whose main translation unit overrides the global operator new/delete to
/// call note_alloc/note_free — the engine bench and the ExecContext test do
/// this; everywhere else the probe reads zero. Counters are atomics so a
/// multi-threaded harness cannot corrupt them, but a zero-alloc assertion
/// is only meaningful over a single-threaded measured region.
namespace heap_probe {

void note_alloc(size_t bytes) noexcept;
void note_free() noexcept;
/// Number of operator-new calls observed so far.
uint64_t allocations() noexcept;
/// Total bytes requested from operator new so far.
uint64_t bytes() noexcept;

}  // namespace heap_probe

}  // namespace waran
