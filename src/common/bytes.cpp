#include "common/bytes.h"

namespace waran {

Status ByteReader::seek(size_t p) {
  if (p > data_.size()) return Error::invalid_argument("seek past end");
  pos_ = p;
  return {};
}

Result<uint8_t> ByteReader::u8() {
  if (pos_ >= data_.size()) return Error::decode("unexpected end of input");
  return data_[pos_++];
}

Result<uint16_t> ByteReader::u16le() {
  if (remaining() < 2) return Error::decode("unexpected end of input");
  uint16_t v;
  std::memcpy(&v, data_.data() + pos_, 2);
  pos_ += 2;
  return v;
}

Result<uint32_t> ByteReader::u32le() {
  if (remaining() < 4) return Error::decode("unexpected end of input");
  uint32_t v;
  std::memcpy(&v, data_.data() + pos_, 4);
  pos_ += 4;
  return v;
}

Result<uint64_t> ByteReader::u64le() {
  if (remaining() < 8) return Error::decode("unexpected end of input");
  uint64_t v;
  std::memcpy(&v, data_.data() + pos_, 8);
  pos_ += 8;
  return v;
}

Result<float> ByteReader::f32le() {
  auto r = u32le();
  if (!r.ok()) return r.error();
  float f;
  uint32_t bits = *r;
  std::memcpy(&f, &bits, 4);
  return f;
}

Result<double> ByteReader::f64le() {
  auto r = u64le();
  if (!r.ok()) return r.error();
  double d;
  uint64_t bits = *r;
  std::memcpy(&d, &bits, 8);
  return d;
}

Result<uint64_t> ByteReader::uleb(unsigned max_bits) {
  uint64_t result = 0;
  unsigned shift = 0;
  size_t p = pos_;
  const unsigned max_bytes = (max_bits + 6) / 7;
  for (unsigned i = 0; i < max_bytes; ++i) {
    if (p >= data_.size()) return Error::decode("truncated LEB128");
    uint8_t b = data_[p++];
    // Final byte: reject set bits beyond max_bits (overlong / overflow).
    if (i + 1 == max_bytes) {
      unsigned used = max_bits - 7 * i;
      if (used < 7 && (b >> used) != 0) return Error::decode("LEB128 value overflows");
    }
    result |= static_cast<uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) {
      pos_ = p;
      return result;
    }
    shift += 7;
  }
  return Error::decode("LEB128 too long");
}

Result<int64_t> ByteReader::sleb(unsigned max_bits) {
  int64_t result = 0;
  unsigned shift = 0;
  size_t p = pos_;
  const unsigned max_bytes = (max_bits + 6) / 7;
  uint8_t b = 0;
  for (unsigned i = 0; i < max_bytes; ++i) {
    if (p >= data_.size()) return Error::decode("truncated LEB128");
    b = data_[p++];
    if (i + 1 == max_bytes) {
      // Remaining payload bits must all equal the sign bit.
      unsigned used = max_bits - 7 * i;
      uint8_t payload = b & 0x7f;
      uint8_t sign_bit = (payload >> (used - 1)) & 1;
      uint8_t expect = sign_bit ? static_cast<uint8_t>((0x7f << used) & 0x7f) : 0;
      if ((payload & static_cast<uint8_t>(~((1u << used) - 1)) & 0x7f) != expect) {
        return Error::decode("SLEB128 value overflows");
      }
    }
    result |= static_cast<int64_t>(static_cast<uint64_t>(b & 0x7f) << shift);
    shift += 7;
    if ((b & 0x80) == 0) {
      pos_ = p;
      if (shift < 64 && (b & 0x40)) result |= -(int64_t(1) << shift);
      return result;
    }
  }
  return Error::decode("LEB128 too long");
}

Result<std::span<const uint8_t>> ByteReader::bytes(size_t n) {
  if (remaining() < n) return Error::decode("unexpected end of input");
  auto s = data_.subspan(pos_, n);
  pos_ += n;
  return s;
}

Result<std::string> ByteReader::name() {
  auto len = uleb32();
  if (!len.ok()) return len.error();
  auto b = bytes(*len);
  if (!b.ok()) return b.error();
  return std::string(reinterpret_cast<const char*>(b->data()), b->size());
}

Status ByteReader::skip(size_t n) {
  if (remaining() < n) return Error::decode("skip past end");
  pos_ += n;
  return {};
}

void ByteWriter::u16le(uint16_t v) {
  uint8_t b[2];
  std::memcpy(b, &v, 2);
  buf_.insert(buf_.end(), b, b + 2);
}

void ByteWriter::u32le(uint32_t v) {
  uint8_t b[4];
  std::memcpy(b, &v, 4);
  buf_.insert(buf_.end(), b, b + 4);
}

void ByteWriter::u64le(uint64_t v) {
  uint8_t b[8];
  std::memcpy(b, &v, 8);
  buf_.insert(buf_.end(), b, b + 8);
}

void ByteWriter::f32le(float v) {
  uint32_t bits;
  std::memcpy(&bits, &v, 4);
  u32le(bits);
}

void ByteWriter::f64le(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, 8);
  u64le(bits);
}

void ByteWriter::uleb(uint64_t v) {
  do {
    uint8_t b = v & 0x7f;
    v >>= 7;
    if (v != 0) b |= 0x80;
    buf_.push_back(b);
  } while (v != 0);
}

void ByteWriter::sleb(int64_t v) {
  bool more = true;
  while (more) {
    uint8_t b = v & 0x7f;
    v >>= 7;
    if ((v == 0 && !(b & 0x40)) || (v == -1 && (b & 0x40))) {
      more = false;
    } else {
      b |= 0x80;
    }
    buf_.push_back(b);
  }
}

void ByteWriter::name(std::string_view s) {
  uleb32(static_cast<uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void ByteWriter::patch_u32le(size_t at, uint32_t v) {
  std::memcpy(buf_.data() + at, &v, 4);
}

void write_uleb32_padded(std::vector<uint8_t>& out, size_t at, uint32_t v) {
  for (int i = 0; i < 5; ++i) {
    uint8_t b = v & 0x7f;
    v >>= 7;
    if (i < 4) b |= 0x80;
    out[at + i] = b;
  }
}

}  // namespace waran
