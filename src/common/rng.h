// Deterministic PRNG (xoshiro256**) used everywhere randomness is needed —
// channel fading, traffic arrival jitter, property-test input generation.
// Seeded explicitly so every experiment is reproducible bit-for-bit.
#pragma once

#include <cstdint>

namespace waran {

class Xoshiro256 {
 public:
  explicit Xoshiro256(uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // splitmix64 expansion of the seed into the four state words.
    uint64_t x = seed;
    for (auto& word : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  uint64_t next() {
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t below(uint64_t n) { return next() % n; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(below(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Standard normal via Box–Muller (one value per call; simple, adequate).
  double normal() {
    double u1 = uniform();
    double u2 = uniform();
    if (u1 < 1e-300) u1 = 1e-300;
    return __builtin_sqrt(-2.0 * __builtin_log(u1)) * __builtin_cos(6.283185307179586 * u2);
  }

 private:
  static uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t s_[4];
};

}  // namespace waran
