// Minimal leveled logger. RAN components log sparingly on the hot path; the
// default level is kWarn so benches are quiet.
//
// Hot-path cost: WARAN_LOG expands to a guard that, for a disabled line, is
// one relaxed atomic load plus an integer compare — the std::ostringstream
// and the stream expression are inside the guarded block and are never
// constructed or evaluated for a disabled component. Per-component level
// overrides (set_log_level("mac", kDebug)) add a map lookup only once any
// override exists; with none registered the guard stays two instructions.
//
// Emitted lines go to stderr and, when obs::route_logs_to_trace(true) has
// installed the hook, into the trace ring as instant events.
#pragma once

#include <atomic>
#include <sstream>
#include <string>
#include <string_view>

namespace waran {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

namespace log_detail {
std::atomic<int>& level_ref();          // global level, relaxed access
std::atomic<int>& override_count_ref(); // number of per-component overrides
/// Slow path: consults the per-component override table, falling back to
/// the global level for components without one.
bool component_enabled(LogLevel lvl, std::string_view component);
void emit(LogLevel lvl, std::string_view component, std::string_view msg);

using TraceHook = void (*)(LogLevel, std::string_view, std::string_view);
/// Installs (or clears, with nullptr) a secondary sink for emitted lines.
/// Used by obs::route_logs_to_trace; not part of the public logging API.
void set_trace_hook(TraceHook hook);
}  // namespace log_detail

inline void set_log_level(LogLevel lvl) {
  log_detail::level_ref().store(static_cast<int>(lvl), std::memory_order_relaxed);
}
inline LogLevel log_level() {
  return static_cast<LogLevel>(log_detail::level_ref().load(std::memory_order_relaxed));
}

/// Per-component override: `set_log_level("mac", LogLevel::kDebug)` makes
/// the MAC chatty while everything else stays at the global level.
void set_log_level(std::string_view component, LogLevel lvl);
/// Drops all per-component overrides (global level applies everywhere).
void clear_log_level_overrides();

/// The WARAN_LOG guard. With no overrides registered this is a relaxed
/// load + compare; the override table is only consulted once one exists.
inline bool log_enabled(LogLevel lvl, std::string_view component) {
  if (log_detail::override_count_ref().load(std::memory_order_relaxed) == 0) {
    return static_cast<int>(lvl) >=
           log_detail::level_ref().load(std::memory_order_relaxed);
  }
  return log_detail::component_enabled(lvl, component);
}

/// Usage: WARAN_LOG(kInfo, "mac", "slot " << n << " scheduled " << k);
/// The stream expression is evaluated only when the line is enabled.
#define WARAN_LOG(lvl, component, stream_expr)                                  \
  do {                                                                          \
    if (::waran::log_enabled(::waran::LogLevel::lvl, component)) {              \
      std::ostringstream _os;                                                   \
      _os << stream_expr;                                                       \
      ::waran::log_detail::emit(::waran::LogLevel::lvl, component, _os.str());  \
    }                                                                           \
  } while (0)

}  // namespace waran
