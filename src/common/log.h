// Minimal leveled logger. RAN components log sparingly on the hot path; the
// default level is kWarn so benches are quiet. Single-threaded by design
// (matches the slot-loop execution model).
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace waran {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

namespace log_detail {
LogLevel& level_ref();
void emit(LogLevel lvl, std::string_view component, std::string_view msg);
}  // namespace log_detail

inline void set_log_level(LogLevel lvl) { log_detail::level_ref() = lvl; }
inline LogLevel log_level() { return log_detail::level_ref(); }

/// Usage: WARAN_LOG(kInfo, "mac", "slot " << n << " scheduled " << k);
#define WARAN_LOG(lvl, component, stream_expr)                                  \
  do {                                                                          \
    if (::waran::LogLevel::lvl >= ::waran::log_level()) {                       \
      std::ostringstream _os;                                                   \
      _os << stream_expr;                                                       \
      ::waran::log_detail::emit(::waran::LogLevel::lvl, component, _os.str());  \
    }                                                                           \
  } while (0)

}  // namespace waran
