// Result<T, E>: a small expected-like type used for all recoverable errors in
// WA-RAN. We target C++20 (no std::expected), so we carry our own. Errors are
// cheap string-carrying values; traps and validation failures flow through
// this type rather than exceptions so they can cross the plugin boundary
// safely.
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace waran {

/// Error payload carried by a failed Result. The `code` is a stable,
/// machine-comparable discriminator; `message` is for humans/logs.
struct Error {
  enum class Code {
    kInvalidArgument,
    kDecode,       // malformed binary (wasm, codec payloads, ...)
    kValidation,   // well-formed but type/structure rules violated
    kTrap,         // wasm runtime trap (OOB, unreachable, ...)
    kFuelExhausted,
    kNotFound,
    kLimitExceeded,
    kState,        // operation invalid in current state
    kUnsupported,
    kInternal,
  };

  Code code = Code::kInternal;
  std::string message;

  static Error invalid_argument(std::string msg) { return {Code::kInvalidArgument, std::move(msg)}; }
  static Error decode(std::string msg) { return {Code::kDecode, std::move(msg)}; }
  static Error validation(std::string msg) { return {Code::kValidation, std::move(msg)}; }
  static Error trap(std::string msg) { return {Code::kTrap, std::move(msg)}; }
  static Error fuel_exhausted(std::string msg) { return {Code::kFuelExhausted, std::move(msg)}; }
  static Error not_found(std::string msg) { return {Code::kNotFound, std::move(msg)}; }
  static Error limit_exceeded(std::string msg) { return {Code::kLimitExceeded, std::move(msg)}; }
  static Error state(std::string msg) { return {Code::kState, std::move(msg)}; }
  static Error unsupported(std::string msg) { return {Code::kUnsupported, std::move(msg)}; }
  static Error internal(std::string msg) { return {Code::kInternal, std::move(msg)}; }
};

inline const char* to_string(Error::Code c) {
  switch (c) {
    case Error::Code::kInvalidArgument: return "invalid-argument";
    case Error::Code::kDecode: return "decode";
    case Error::Code::kValidation: return "validation";
    case Error::Code::kTrap: return "trap";
    case Error::Code::kFuelExhausted: return "fuel-exhausted";
    case Error::Code::kNotFound: return "not-found";
    case Error::Code::kLimitExceeded: return "limit-exceeded";
    case Error::Code::kState: return "state";
    case Error::Code::kUnsupported: return "unsupported";
    case Error::Code::kInternal: return "internal";
  }
  return "unknown";
}

template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : v_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Error err) : v_(std::move(err)) {}  // NOLINT: implicit by design

  bool ok() const { return std::holds_alternative<T>(v_); }
  explicit operator bool() const { return ok(); }

  T& value() & { assert(ok()); return std::get<T>(v_); }
  const T& value() const& { assert(ok()); return std::get<T>(v_); }
  T&& value() && { assert(ok()); return std::get<T>(std::move(v_)); }

  const Error& error() const { assert(!ok()); return std::get<Error>(v_); }

  T value_or(T fallback) const& { return ok() ? std::get<T>(v_) : std::move(fallback); }

  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }
  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }

 private:
  std::variant<T, Error> v_;
};

/// Result<void> analogue.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(Error err) : err_(std::move(err)), failed_(true) {}  // NOLINT

  static Status ok_status() { return Status(); }

  bool ok() const { return !failed_; }
  explicit operator bool() const { return ok(); }
  const Error& error() const { assert(failed_); return err_; }

 private:
  Error err_;
  bool failed_ = false;
};

// Propagate-on-error helpers. `expr` must yield a Result<T>/Status.
#define WARAN_TRY(var, expr)                              \
  auto var##_res = (expr);                                \
  if (!var##_res.ok()) return var##_res.error();          \
  auto& var = *var##_res

#define WARAN_CHECK_OK(expr)                              \
  do {                                                    \
    auto _st = (expr);                                    \
    if (!_st.ok()) return _st.error();                    \
  } while (0)

}  // namespace waran
