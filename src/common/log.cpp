#include "common/log.h"

#include <cstdio>
#include <map>
#include <mutex>

namespace waran {

namespace log_detail {

namespace {

std::atomic<TraceHook> g_trace_hook{nullptr};

// Override table: rarely mutated, read under mutex only when at least one
// override exists (log_enabled's fast path skips it entirely otherwise).
std::mutex& overrides_mu() {
  static std::mutex mu;
  return mu;
}

std::map<std::string, LogLevel, std::less<>>& overrides() {
  static std::map<std::string, LogLevel, std::less<>> map;
  return map;
}

}  // namespace

std::atomic<int>& level_ref() {
  static std::atomic<int> level{static_cast<int>(LogLevel::kWarn)};
  return level;
}

std::atomic<int>& override_count_ref() {
  static std::atomic<int> count{0};
  return count;
}

bool component_enabled(LogLevel lvl, std::string_view component) {
  std::lock_guard<std::mutex> lock(overrides_mu());
  auto it = overrides().find(component);
  int threshold = it != overrides().end()
                      ? static_cast<int>(it->second)
                      : level_ref().load(std::memory_order_relaxed);
  return static_cast<int>(lvl) >= threshold;
}

void emit(LogLevel lvl, std::string_view component, std::string_view msg) {
  static const char* names[] = {"DEBUG", "INFO", "WARN", "ERROR", "OFF"};
  std::fprintf(stderr, "[%s] %.*s: %.*s\n", names[static_cast<int>(lvl)],
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(msg.size()), msg.data());
  if (TraceHook hook = g_trace_hook.load(std::memory_order_acquire)) {
    hook(lvl, component, msg);
  }
}

void set_trace_hook(TraceHook hook) {
  g_trace_hook.store(hook, std::memory_order_release);
}

}  // namespace log_detail

void set_log_level(std::string_view component, LogLevel lvl) {
  std::lock_guard<std::mutex> lock(log_detail::overrides_mu());
  log_detail::overrides()[std::string(component)] = lvl;
  log_detail::override_count_ref().store(
      static_cast<int>(log_detail::overrides().size()), std::memory_order_relaxed);
}

void clear_log_level_overrides() {
  std::lock_guard<std::mutex> lock(log_detail::overrides_mu());
  log_detail::overrides().clear();
  log_detail::override_count_ref().store(0, std::memory_order_relaxed);
}

}  // namespace waran
