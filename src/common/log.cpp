#include "common/log.h"

#include <cstdio>

namespace waran::log_detail {

LogLevel& level_ref() {
  static LogLevel level = LogLevel::kWarn;
  return level;
}

void emit(LogLevel lvl, std::string_view component, std::string_view msg) {
  static const char* names[] = {"DEBUG", "INFO", "WARN", "ERROR", "OFF"};
  std::fprintf(stderr, "[%s] %.*s: %.*s\n", names[static_cast<int>(lvl)],
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(msg.size()), msg.data());
}

}  // namespace waran::log_detail
