#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace waran {

void QuantileAcc::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double QuantileAcc::quantile(double q) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  if (q <= 0.0) return samples_.front();
  if (q >= 1.0) return samples_.back();
  size_t rank = static_cast<size_t>(std::ceil(q * static_cast<double>(samples_.size())));
  if (rank == 0) rank = 1;
  return samples_[rank - 1];
}

double QuantileAcc::min() const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  return samples_.front();
}

double QuantileAcc::max() const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  return samples_.back();
}

double QuantileAcc::mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0;
  for (double v : samples_) sum += v;
  return sum / static_cast<double>(samples_.size());
}

double QuantileAcc::stddev() const {
  if (samples_.size() < 2) return 0.0;
  double m = mean();
  double acc = 0;
  for (double v : samples_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

void RateMeter::add(double t, uint64_t bits) {
  // Clamp regressions forward: entries_ must stay sorted by time or evict()
  // would drop the wrong end of the window.
  if (!entries_.empty() && t < entries_.back().t) t = entries_.back().t;
  entries_.push_back({t, bits});
  window_bits_ += bits;
  total_bits_ += bits;
  evict(t);
}

void RateMeter::evict(double t) const {
  while (!entries_.empty() && entries_.front().t < t - window_s_) {
    window_bits_ -= entries_.front().bits;
    entries_.pop_front();
  }
}

double RateMeter::rate_bps(double t) const {
  if (entries_.empty()) return 0.0;
  // A stale query (earlier than the newest arrival) would count bits that
  // arrive "after" the window's right edge; anchor it to the newest entry.
  if (t < entries_.back().t) t = entries_.back().t;
  evict(t);
  if (window_s_ <= 0) return 0.0;
  return static_cast<double>(window_bits_) / window_s_;
}

}  // namespace waran
