// waran::obs flight recorder — a self-contained post-mortem bundle for SLO
// breaches and anomalies.
//
// When the SloEngine declares a breach (or a chaos invariant fails), the
// operator question is "what was the system doing, and how do I see it
// again". The FlightRecorder answers both in one JSON document:
//
//   context       the deterministic run coordinates: master seed, cell
//                 count, virtual-time flag, episode shape — plus a ready
//                 `replay` command line (waran_chaos --seed ...) that
//                 reproduces the run bit for bit on the virtual clock.
//   health        the breaching HealthReport, verdict by verdict.
//   cells         every cell's window delta and running totals (exact
//                 histogram state included via the telemetry JSON).
//   anomalies     the journal tail (newest last) around the breach.
//   trace_window  the last N slots of every cell's trace ring, tagged with
//                 the cell's merged-trace pid.
//
// The bundle is a pure function of deployment state that is itself
// deterministic under virtual time, so capturing the same breach twice
// yields byte-identical bundles — asserted by tests/obs_fleet_test.cpp and
// relied on by the chaos harness's replay contract.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/fleet.h"
#include "obs/slo.h"

namespace waran::obs {

/// Where the telemetry came from — enough to regenerate the run.
struct FlightContext {
  uint64_t seed = 0;
  uint32_t cells = 1;
  bool virtual_time = true;
  /// Chaos episode shape; rounds == 0 means "not a chaos episode" and the
  /// replay line falls back to the scenario command.
  uint32_t rounds = 0;
  uint32_t slots_per_round = 0;
  /// Free-form provenance ("waran_obs --cells 4", "chaos_episode", ...).
  std::string scenario;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(FlightContext ctx, uint32_t trace_window_slots = 8)
      : ctx_(std::move(ctx)), trace_window_slots_(trace_window_slots) {}

  const FlightContext& context() const { return ctx_; }

  /// The replay command line embedded in every bundle.
  std::string replay_command() const;

  /// Builds the bundle. `end_slot` anchors the trace window (events with
  /// slot >= end_slot - trace_window_slots are kept); `tracks` may be empty
  /// when tracing is off.
  std::string capture(std::string_view reason, const HealthReport& health,
                      const FleetAggregator& agg,
                      const std::vector<MergedTrack>& tracks,
                      uint64_t end_slot) const;

 private:
  FlightContext ctx_;
  uint32_t trace_window_slots_;
};

}  // namespace waran::obs
