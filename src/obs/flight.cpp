#include "obs/flight.h"

#include <cinttypes>
#include <cstdio>

#include "obs/anomaly.h"
#include "obs/trace.h"

namespace waran::obs {

namespace {

void append_json_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

constexpr size_t kAnomalyTail = 32;  ///< journal records kept in the bundle

}  // namespace

std::string FlightRecorder::replay_command() const {
  char buf[192];
  if (ctx_.rounds > 0) {
    std::snprintf(buf, sizeof(buf),
                  "waran_chaos --seed %" PRIu64
                  " --episodes 1 --rounds %u --slots-per-round %u --cells %u%s",
                  ctx_.seed, ctx_.rounds, ctx_.slots_per_round, ctx_.cells,
                  ctx_.virtual_time ? " --virtual-time" : "");
    return buf;
  }
  std::snprintf(buf, sizeof(buf), "waran_obs --cells %u --seed %" PRIu64, ctx_.cells,
                ctx_.seed);
  return buf;
}

std::string FlightRecorder::capture(std::string_view reason,
                                    const HealthReport& health,
                                    const FleetAggregator& agg,
                                    const std::vector<MergedTrack>& tracks,
                                    uint64_t end_slot) const {
  std::string out;
  out.reserve(4096);
  char buf[256];

  out += "{\"waran_flight_bundle\":1,\"reason\":\"";
  append_json_escaped(out, reason);
  out += "\",\"context\":{";
  std::snprintf(buf, sizeof(buf),
                "\"seed\":%" PRIu64
                ",\"cells\":%u,\"virtual_time\":%s,\"rounds\":%u,"
                "\"slots_per_round\":%u,\"scenario\":\"",
                ctx_.seed, ctx_.cells, ctx_.virtual_time ? "true" : "false",
                ctx_.rounds, ctx_.slots_per_round);
  out += buf;
  append_json_escaped(out, ctx_.scenario);
  out += "\"},\"replay\":\"";
  append_json_escaped(out, replay_command());
  out += "\",\"health\":";
  out += health.to_json();

  out += ",\"cells\":[";
  for (size_t i = 0; i < agg.cells(); ++i) {
    if (i > 0) out += ',';
    out += "{\"window\":";
    out += agg.cell_window(i).to_json();
    out += ",\"total\":";
    out += agg.cell_total(i).to_json();
    out += '}';
  }
  out += ']';

  // Journal tail, newest last.
  const std::vector<AnomalyRecord> journal = AnomalyJournal::global().snapshot();
  const size_t start = journal.size() > kAnomalyTail ? journal.size() - kAnomalyTail : 0;
  out += ",\"anomalies\":[";
  for (size_t i = start; i < journal.size(); ++i) {
    const AnomalyRecord& r = journal[i];
    if (i > start) out += ',';
    std::snprintf(buf, sizeof(buf),
                  "{\"seq\":%" PRIu64 ",\"slot\":%" PRIu64 ",\"t_ns\":%" PRIu64
                  ",\"kind\":\"%s\",\"domain\":\"",
                  r.seq, r.slot, r.t_ns, to_string(r.kind));
    out += buf;
    append_json_escaped(out, r.domain);
    out += "\",\"source\":\"";
    append_json_escaped(out, r.source);
    out += "\",\"detail\":\"";
    append_json_escaped(out, r.detail);
    out += "\"}";
  }
  out += ']';

  // Last-N-slot trace window across every track, in ring order per track
  // (the merged exporter owns global ordering; the bundle keeps provenance).
  const uint64_t cutoff =
      end_slot > trace_window_slots_ ? end_slot - trace_window_slots_ : 0;
  std::snprintf(buf, sizeof(buf),
                ",\"trace_window\":{\"window_slots\":%u,\"from_slot\":%" PRIu64
                ",\"to_slot\":%" PRIu64 ",\"events\":[",
                trace_window_slots_, cutoff, end_slot);
  out += buf;
  bool first = true;
  for (const MergedTrack& tr : tracks) {
    if (tr.ring == nullptr) continue;
    for (const TraceEvent& ev : tr.ring->snapshot()) {
      if (ev.slot < cutoff) continue;
      if (!first) out += ',';
      first = false;
      std::snprintf(buf, sizeof(buf),
                    "{\"pid\":%u,\"t_ns\":%" PRIu64 ",\"dur_ns\":%" PRIu64
                    ",\"slot\":%" PRIu64 ",\"cat\":\"%s\",\"ph\":\"%c\",\"arg\":%u,"
                    "\"name\":\"",
                    tr.pid, ev.t_ns, ev.dur_ns, ev.slot,
                    to_string(static_cast<TraceCat>(ev.cat)), ev.phase, ev.arg);
      out += buf;
      append_json_escaped(out, ev.name);
      out += "\"}";
    }
  }
  out += "]}}";
  return out;
}

}  // namespace waran::obs
