// waran::obs fleet telemetry plane — cross-cell aggregation for a sharded
// deployment (rt::GnbDeployment) and for the RIC's reconstructed view of it.
//
// Three pieces:
//
//   CellTelemetry    one cell's telemetry summary as a flat POD: MAC slot
//                    counters, PRB accounting, per-slice scheduler outcomes,
//                    plugin sandbox counters, anomaly counts and the exact
//                    65-bucket log2 histogram state of the slot/scheduler
//                    wall-time distributions. Merging two summaries sums
//                    counters and merges histogram buckets exactly, so a
//                    rollup answers the same quantile queries as one
//                    combined histogram would (tests/obs_fleet_test.cpp
//                    proves this across boundary buckets).
//
//   FleetAggregator  the ground-truth side: resolves every per-cell labeled
//                    instrument in the global MetricsRegistry once at
//                    construction, then `collect_cell` re-reads them into a
//                    preallocated CellTelemetry with zero heap allocation —
//                    safe to run on the cell's own worker thread every
//                    report period (bench/abl_obs asserts the zero-alloc
//                    contract). Rollups go cell -> gNB -> deployment.
//
//   FleetView        the consumer side: keyed (gnb, cell) latest-summary
//                    store the NearRtRic maintains from telemetry blocks
//                    carried in E2 indications. The invariant the fleet
//                    plane is built around: after a report boundary the
//                    RIC's FleetView equals the aggregator's ground truth
//                    exactly (operator==, bucket for bucket).
//
// The merged cross-cell Chrome trace lives here too: each cell's TraceRing
// becomes one process track (pid = cell id + 1) in a single trace, events
// globally sorted by virtual-clock timestamp with a deterministic
// tie-break, and ring drop counts reported per cell in the trace metadata
// instead of silently truncating.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/anomaly.h"
#include "obs/metrics.h"

namespace waran::obs {

class TraceRing;

/// Exact snapshot of a log2 Histogram: plain counters, mergeable bucket by
/// bucket. quantile() mirrors Histogram::quantile (nearest rank, bucket
/// upper bound minus one) so a merged state answers exactly what a single
/// combined histogram would.
struct HistState {
  uint64_t buckets[Histogram::kBuckets] = {};
  uint64_t sum = 0;
  uint64_t count = 0;

  static HistState from(const Histogram& h);
  void merge(const HistState& o);
  /// Subtracts an earlier snapshot of the same histogram (window delta).
  void subtract(const HistState& base);
  uint64_t quantile(double q) const;
  double mean() const {
    return count == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(count);
  }
  bool operator==(const HistState&) const = default;
};

/// One cell's telemetry summary (or a rollup of several — see merge()).
/// Flat POD so it crosses the E2 wire as fixed-width little-endian fields
/// and compares exactly with operator==.
struct CellTelemetry {
  uint32_t gnb = 0;
  uint32_t cell = 0;
  uint32_t cells_merged = 1;  ///< 1 for a leaf; sum of leaves in a rollup

  // MAC slot loop.
  uint64_t slots = 0;
  uint64_t slot_overruns = 0;
  // PRB accounting across all slices (capacity = n_prbs * slots).
  uint64_t prb_granted = 0;
  uint64_t prb_capacity = 0;
  // Per-slice scheduler outcomes, summed over the cell's slices.
  uint64_t slots_scheduled = 0;
  uint64_t sched_faults = 0;
  uint64_t sanitized_allocs = 0;
  // Plugin sandbox counters, summed over the cell's scheduler slots and the
  // E2 agent's comm/ctl slots.
  uint64_t plugin_calls = 0;
  uint64_t plugin_traps = 0;
  uint64_t plugin_fuel_exhausted = 0;
  uint64_t plugin_declines = 0;
  uint64_t plugin_fuel_used = 0;
  // Containment events (from waran_anomaly_total{domain,kind}).
  uint64_t quarantines = 0;
  uint64_t frames_rejected = 0;
  uint64_t anomalies = 0;
  // Trace ring accounting (drop visibility per cell).
  uint64_t trace_writes = 0;
  uint64_t trace_dropped = 0;

  HistState slot_wall_ns;   ///< waran_cell_slot_wall_ns{cell}
  HistState sched_wall_ns;  ///< waran_plugin_wall_ns over scheduler slots

  /// Sums counters and merges histogram buckets exactly. The result
  /// represents the union: cells_merged accumulates, cell keeps the lowest
  /// member id (display only; rollups are identified by gnb/cells_merged).
  void merge(const CellTelemetry& o);
  bool operator==(const CellTelemetry&) const = default;
  std::string to_json() const;
};

/// Static description of one cell the aggregator should cover. Slot/slice
/// label sets must match what the deployment registered (GnbMac::add_slice,
/// PluginManager metric labels) or the counters read as permanent zeros.
struct FleetCellSpec {
  uint32_t gnb = 0;
  uint32_t cell = 0;
  std::string mac_domain;    ///< PluginManager domain of the schedulers ("mac0")
  std::string agent_domain;  ///< GnbAgent domain ("gnb0"); "" = no E2 agent
  std::vector<std::string> sched_slots;  ///< scheduler plugin slot names
  std::vector<std::string> slice_ids;    ///< slice id labels ("0", "1", ...)
  uint32_t n_prbs = 0;
  const TraceRing* ring = nullptr;  ///< optional; feeds trace_writes/dropped
};

class FleetAggregator {
 public:
  /// Resolves (or pre-creates at zero) every instrument it will ever read.
  /// All allocation happens here; collect_cell never allocates.
  explicit FleetAggregator(std::vector<FleetCellSpec> specs);

  size_t cells() const { return specs_.size(); }

  /// Re-reads cell i's instruments into its preallocated summary and
  /// returns it. Zero-alloc warm path; callable from the cell's own worker
  /// thread (reads only instruments that cell writes).
  const CellTelemetry& collect_cell(size_t i);
  /// Last collected totals for cell i (since registry values last reset).
  const CellTelemetry& cell_total(size_t i) const { return totals_[i]; }

  /// Marks the current totals as the base of a new evaluation window.
  /// collect_cell must have been called for every cell first.
  void begin_window();
  /// Totals minus the window base: what happened inside this window.
  CellTelemetry cell_window(size_t i) const;

  /// Rollups (merge of leaf summaries; `window` selects window deltas).
  CellTelemetry gnb_rollup(uint32_t gnb, bool window = false) const;
  CellTelemetry fleet_rollup(bool window = false) const;

  const FleetCellSpec& spec(size_t i) const { return specs_[i]; }

  /// {"cells":[...per-cell totals...],"fleet":{...rollup...}}
  std::string to_json() const;

 private:
  struct SliceHandles {
    Counter* prb_granted = nullptr;
    Counter* sched_faults = nullptr;
    Counter* sanitized = nullptr;
    Counter* slots_scheduled = nullptr;
  };
  struct SlotHandles {
    Counter* calls = nullptr;
    Counter* traps = nullptr;
    Counter* fuel_exhausted = nullptr;
    Counter* declines = nullptr;
    Counter* fuel_used = nullptr;
    Histogram* wall = nullptr;
    bool sched = false;  ///< counts toward sched_wall_ns
  };
  struct AnomalyHandle {
    Counter* c = nullptr;
    AnomalyKind kind = AnomalyKind::kOther;
  };
  struct CellHandles {
    Counter* slots = nullptr;
    Counter* overruns = nullptr;
    Histogram* slot_wall = nullptr;
    std::vector<SliceHandles> slices;
    std::vector<SlotHandles> slots_h;
    std::vector<AnomalyHandle> anomalies;
    const TraceRing* ring = nullptr;
  };

  std::vector<FleetCellSpec> specs_;
  std::vector<CellHandles> handles_;
  std::vector<CellTelemetry> totals_;
  std::vector<CellTelemetry> window_base_;
};

/// The RIC-side fleet reconstruction: latest CellTelemetry per (gnb, cell),
/// fed from the telemetry blocks in E2 indications. Two views are equal
/// when they hold the same cells with identical summaries.
class FleetView {
 public:
  void update(const CellTelemetry& t);
  size_t size() const { return cells_.size(); }
  uint64_t updates() const { return updates_; }
  const CellTelemetry* cell(uint32_t gnb, uint32_t cell) const;
  CellTelemetry gnb_rollup(uint32_t gnb) const;
  CellTelemetry fleet_rollup() const;
  bool operator==(const FleetView& o) const { return cells_ == o.cells_; }
  std::string to_json() const;
  void clear() {
    cells_.clear();
    updates_ = 0;
  }

 private:
  std::map<std::pair<uint32_t, uint32_t>, CellTelemetry> cells_;
  uint64_t updates_ = 0;
};

/// One process track in the merged cross-cell Chrome trace.
struct MergedTrack {
  std::string name;  ///< process_name metadata ("cell0", "ric", ...)
  uint32_t pid = 1;
  const TraceRing* ring = nullptr;
};

/// Stitches the tracks' rings into one Chrome trace: per-track
/// process_name metadata events, all span/instant events tagged with their
/// track's pid and globally sorted by (t_ns, pid, ring order) — a total
/// order, so the bytes are identical across repeated virtual-time runs.
/// The top-level "rings" metadata reports recorded/retained/dropped per
/// track plus totals: wrap-around loss is declared, never silent.
std::string export_merged_chrome_trace(const std::vector<MergedTrack>& tracks);

}  // namespace waran::obs
