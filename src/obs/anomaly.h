// waran::obs anomaly journal — one canonical record of every containment
// event in the system: plugin traps, fuel/deadline exhaustion, quarantines,
// sanitized allocations, rejected frames, slot-deadline overruns.
//
// The paper's reliability story (§6A) is that faults are *contained*, not
// absent — so the host must be able to answer "what misbehaved, when, and
// what did it cost" after the fact. Each record carries the MAC slot that
// was executing (obs::current_slot), the domain that observed it ("mac",
// "gnb0", "ric"), the source (plugin slot, slice id) and the error detail.
//
// Recording also bumps `waran_anomaly_total{domain,kind}` in the metrics
// registry and drops an instant event into the trace ring, so all three
// telemetry surfaces agree. Anomalies are rare by definition; this path
// takes a mutex and allocates — it is not the hot path.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace waran::obs {

enum class AnomalyKind : uint8_t {
  kTrap = 0,        ///< wasm trap (OOB, unreachable, stack exhaustion, ...)
  kFuelExhausted,   ///< fuel budget or wall-clock deadline exceeded
  kDecline,         ///< plugin-declared rejection (no quarantine)
  kQuarantine,      ///< slot quarantined after repeated faults
  kSanitized,       ///< invalid plugin output dropped/clamped by the host
  kFrameRejected,   ///< comm-plugin sanitization rejected a wire frame
  kSlotOverrun,     ///< MAC slot processing exceeded the slot duration
  kLoadFailed,      ///< plugin install/swap refused (broken or injected)
  kSloBreach,       ///< declarative service-level objective violated (slo.h)
  kAdmissionReject, ///< static bounds exceed the slot budget (analysis)
  kOther,
};

const char* to_string(AnomalyKind kind);

struct AnomalyRecord {
  uint64_t seq = 0;       ///< monotone sequence number (never reused)
  uint64_t slot = 0;      ///< MAC slot current at record time
  uint64_t t_ns = 0;      ///< obs::now_ns() timestamp
  AnomalyKind kind = AnomalyKind::kOther;
  std::string domain;     ///< observing subsystem ("mac", "gnb0", "ric")
  std::string source;     ///< offending entity (plugin slot, "slice 2", ...)
  std::string detail;     ///< error message
};

class AnomalyJournal {
 public:
  static AnomalyJournal& global();

  void record(AnomalyKind kind, std::string_view domain, std::string_view source,
              std::string_view detail);

  /// Newest-last snapshot; `domain` filters when non-empty.
  std::vector<AnomalyRecord> snapshot(std::string_view domain = {}) const;

  /// Total records ever written (monotone across capacity eviction).
  uint64_t total() const;
  /// Oldest records are evicted beyond this bound (default 1024).
  void set_capacity(size_t capacity);
  /// Drops all records and restarts the sequence counter (full reset, for
  /// tests and scenario runners).
  void clear();

 private:
  AnomalyJournal() = default;
  mutable std::mutex mu_;
  std::deque<AnomalyRecord> records_;
  size_t capacity_ = 1024;
  uint64_t next_seq_ = 0;
};

}  // namespace waran::obs
