#include "obs/anomaly.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace waran::obs {

const char* to_string(AnomalyKind kind) {
  switch (kind) {
    case AnomalyKind::kTrap: return "trap";
    case AnomalyKind::kFuelExhausted: return "fuel_exhausted";
    case AnomalyKind::kDecline: return "decline";
    case AnomalyKind::kQuarantine: return "quarantine";
    case AnomalyKind::kSanitized: return "sanitized";
    case AnomalyKind::kFrameRejected: return "frame_rejected";
    case AnomalyKind::kSlotOverrun: return "slot_overrun";
    case AnomalyKind::kLoadFailed: return "load_failed";
    case AnomalyKind::kSloBreach: return "slo_breach";
    case AnomalyKind::kAdmissionReject: return "admission_reject";
    case AnomalyKind::kOther: return "other";
  }
  return "other";
}

AnomalyJournal& AnomalyJournal::global() {
  static AnomalyJournal journal;
  return journal;
}

void AnomalyJournal::record(AnomalyKind kind, std::string_view domain,
                            std::string_view source, std::string_view detail) {
  MetricsRegistry::global().counter(
      "waran_anomaly_total", {{"domain", domain}, {"kind", to_string(kind)}})
      .add();
  TraceRing::current().instant(TraceCat::kAnomaly, source.empty() ? to_string(kind)
                                                                  : source);
  AnomalyRecord rec;
  rec.t_ns = now_ns();
  rec.slot = current_slot();
  rec.kind = kind;
  rec.domain = std::string(domain);
  rec.source = std::string(source);
  rec.detail = std::string(detail);
  std::lock_guard<std::mutex> lock(mu_);
  rec.seq = next_seq_++;
  records_.push_back(std::move(rec));
  while (records_.size() > capacity_) records_.pop_front();
}

std::vector<AnomalyRecord> AnomalyJournal::snapshot(std::string_view domain) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<AnomalyRecord> out;
  out.reserve(records_.size());
  for (const AnomalyRecord& rec : records_) {
    if (domain.empty() || rec.domain == domain) out.push_back(rec);
  }
  return out;
}

uint64_t AnomalyJournal::total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_;
}

void AnomalyJournal::set_capacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity < 1 ? 1 : capacity;
  while (records_.size() > capacity_) records_.pop_front();
}

void AnomalyJournal::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  records_.clear();
  next_seq_ = 0;
}

}  // namespace waran::obs
