#include "obs/fleet.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>

#include "obs/trace.h"

namespace waran::obs {

// ---------------------------------------------------------------------------
// HistState

HistState HistState::from(const Histogram& h) {
  HistState s;
  for (size_t k = 0; k < Histogram::kBuckets; ++k) s.buckets[k] = h.bucket_count(k);
  s.sum = h.sum();
  s.count = h.count();
  return s;
}

void HistState::merge(const HistState& o) {
  for (size_t k = 0; k < Histogram::kBuckets; ++k) buckets[k] += o.buckets[k];
  sum += o.sum;
  count += o.count;
}

void HistState::subtract(const HistState& base) {
  for (size_t k = 0; k < Histogram::kBuckets; ++k) buckets[k] -= base.buckets[k];
  sum -= base.sum;
  count -= base.count;
}

uint64_t HistState::quantile(double q) const {
  // Mirrors Histogram::quantile bit for bit: nearest rank (1-based, ceil),
  // reported as the containing bucket's upper bound minus one.
  const uint64_t n = count;
  if (n == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  uint64_t rank = static_cast<uint64_t>(std::ceil(q * static_cast<double>(n)));
  if (rank < 1) rank = 1;
  if (rank > n) rank = n;
  uint64_t cum = 0;
  for (size_t k = 0; k < Histogram::kBuckets; ++k) {
    cum += buckets[k];
    if (cum >= rank) return k == 0 ? 0 : Histogram::bucket_upper_bound(k) - 1;
  }
  return Histogram::bucket_upper_bound(Histogram::kBuckets - 1);
}

// ---------------------------------------------------------------------------
// CellTelemetry

void CellTelemetry::merge(const CellTelemetry& o) {
  cell = std::min(cell, o.cell);
  cells_merged += o.cells_merged;
  slots += o.slots;
  slot_overruns += o.slot_overruns;
  prb_granted += o.prb_granted;
  prb_capacity += o.prb_capacity;
  slots_scheduled += o.slots_scheduled;
  sched_faults += o.sched_faults;
  sanitized_allocs += o.sanitized_allocs;
  plugin_calls += o.plugin_calls;
  plugin_traps += o.plugin_traps;
  plugin_fuel_exhausted += o.plugin_fuel_exhausted;
  plugin_declines += o.plugin_declines;
  plugin_fuel_used += o.plugin_fuel_used;
  quarantines += o.quarantines;
  frames_rejected += o.frames_rejected;
  anomalies += o.anomalies;
  trace_writes += o.trace_writes;
  trace_dropped += o.trace_dropped;
  slot_wall_ns.merge(o.slot_wall_ns);
  sched_wall_ns.merge(o.sched_wall_ns);
}

namespace {

void append_hist_json(std::string& out, const char* name, const HistState& h) {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "\"%s\":{\"count\":%" PRIu64 ",\"sum\":%" PRIu64 ",\"p50\":%" PRIu64
                ",\"p99\":%" PRIu64 "}",
                name, h.count, h.sum, h.quantile(0.5), h.quantile(0.99));
  out += buf;
}

}  // namespace

std::string CellTelemetry::to_json() const {
  std::string out;
  out.reserve(640);
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"gnb\":%u,\"cell\":%u,\"cells_merged\":%u,\"slots\":%" PRIu64
                ",\"slot_overruns\":%" PRIu64 ",\"prb_granted\":%" PRIu64
                ",\"prb_capacity\":%" PRIu64 ",\"slots_scheduled\":%" PRIu64,
                gnb, cell, cells_merged, slots, slot_overruns, prb_granted,
                prb_capacity, slots_scheduled);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                ",\"sched_faults\":%" PRIu64 ",\"sanitized_allocs\":%" PRIu64
                ",\"plugin_calls\":%" PRIu64 ",\"plugin_traps\":%" PRIu64
                ",\"plugin_fuel_exhausted\":%" PRIu64 ",\"plugin_declines\":%" PRIu64
                ",\"plugin_fuel_used\":%" PRIu64,
                sched_faults, sanitized_allocs, plugin_calls, plugin_traps,
                plugin_fuel_exhausted, plugin_declines, plugin_fuel_used);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                ",\"quarantines\":%" PRIu64 ",\"frames_rejected\":%" PRIu64
                ",\"anomalies\":%" PRIu64 ",\"trace_writes\":%" PRIu64
                ",\"trace_dropped\":%" PRIu64 ",",
                quarantines, frames_rejected, anomalies, trace_writes, trace_dropped);
  out += buf;
  append_hist_json(out, "slot_wall_ns", slot_wall_ns);
  out += ',';
  append_hist_json(out, "sched_wall_ns", sched_wall_ns);
  out += '}';
  return out;
}

// ---------------------------------------------------------------------------
// FleetAggregator

namespace {

constexpr AnomalyKind kAllAnomalyKinds[] = {
    AnomalyKind::kTrap,          AnomalyKind::kFuelExhausted,
    AnomalyKind::kDecline,       AnomalyKind::kQuarantine,
    AnomalyKind::kSanitized,     AnomalyKind::kFrameRejected,
    AnomalyKind::kSlotOverrun,   AnomalyKind::kLoadFailed,
    AnomalyKind::kSloBreach,     AnomalyKind::kOther,
};

}  // namespace

FleetAggregator::FleetAggregator(std::vector<FleetCellSpec> specs)
    : specs_(std::move(specs)) {
  auto& reg = MetricsRegistry::global();
  handles_.resize(specs_.size());
  totals_.resize(specs_.size());
  window_base_.resize(specs_.size());
  for (size_t i = 0; i < specs_.size(); ++i) {
    const FleetCellSpec& spec = specs_[i];
    CellHandles& h = handles_[i];
    const std::string cell_label = std::to_string(spec.cell);
    // find_or_create pre-registers at zero anything not yet written, so
    // every pointer below is valid for the registry's lifetime.
    h.slots = &reg.counter("waran_cell_slots_total", {{"cell", cell_label}});
    h.overruns = &reg.counter("waran_cell_slot_overrun_total", {{"cell", cell_label}});
    h.slot_wall = &reg.histogram("waran_cell_slot_wall_ns", {{"cell", cell_label}});
    h.slices.reserve(spec.slice_ids.size());
    for (const std::string& sid : spec.slice_ids) {
      Labels labels = {{"cell", cell_label}, {"slice", sid}};
      SliceHandles sh;
      sh.prb_granted = &reg.counter("waran_mac_prb_granted_total", labels);
      sh.sched_faults = &reg.counter("waran_mac_sched_faults_total", labels);
      sh.sanitized = &reg.counter("waran_mac_sanitized_allocs_total", labels);
      sh.slots_scheduled = &reg.counter("waran_mac_slots_scheduled_total", labels);
      h.slices.push_back(sh);
    }
    auto add_slot = [&](const std::string& domain, const std::string& slot,
                        bool sched) {
      Labels labels = {{"domain", domain}, {"slot", slot}};
      SlotHandles sh;
      sh.calls = &reg.counter("waran_plugin_calls_total", labels);
      sh.traps = &reg.counter("waran_plugin_traps_total", labels);
      sh.fuel_exhausted = &reg.counter("waran_plugin_fuel_exhausted_total", labels);
      sh.declines = &reg.counter("waran_plugin_declines_total", labels);
      sh.fuel_used = &reg.counter("waran_plugin_fuel_used_total", labels);
      sh.wall = &reg.histogram("waran_plugin_wall_ns", labels);
      sh.sched = sched;
      h.slots_h.push_back(sh);
    };
    for (const std::string& slot : spec.sched_slots) {
      add_slot(spec.mac_domain, slot, /*sched=*/true);
    }
    if (!spec.agent_domain.empty()) {
      add_slot(spec.agent_domain, "comm", /*sched=*/false);
      add_slot(spec.agent_domain, "ctl", /*sched=*/false);
    }
    for (const std::string* domain : {&spec.mac_domain, &spec.agent_domain}) {
      if (domain->empty()) continue;
      for (AnomalyKind kind : kAllAnomalyKinds) {
        AnomalyHandle ah;
        ah.c = &reg.counter("waran_anomaly_total",
                            {{"domain", *domain}, {"kind", to_string(kind)}});
        ah.kind = kind;
        h.anomalies.push_back(ah);
      }
    }
    h.ring = spec.ring;
    totals_[i].gnb = spec.gnb;
    totals_[i].cell = spec.cell;
    window_base_[i] = totals_[i];
  }
}

const CellTelemetry& FleetAggregator::collect_cell(size_t i) {
  const FleetCellSpec& spec = specs_[i];
  const CellHandles& h = handles_[i];
  CellTelemetry& t = totals_[i];
  t.gnb = spec.gnb;
  t.cell = spec.cell;
  t.cells_merged = 1;
  t.slots = h.slots->value();
  t.slot_overruns = h.overruns->value();
  t.prb_capacity = t.slots * spec.n_prbs;
  t.slot_wall_ns = HistState::from(*h.slot_wall);
  t.prb_granted = 0;
  t.slots_scheduled = 0;
  t.sched_faults = 0;
  t.sanitized_allocs = 0;
  for (const SliceHandles& sh : h.slices) {
    t.prb_granted += sh.prb_granted->value();
    t.sched_faults += sh.sched_faults->value();
    t.sanitized_allocs += sh.sanitized->value();
    t.slots_scheduled += sh.slots_scheduled->value();
  }
  t.plugin_calls = 0;
  t.plugin_traps = 0;
  t.plugin_fuel_exhausted = 0;
  t.plugin_declines = 0;
  t.plugin_fuel_used = 0;
  t.sched_wall_ns = HistState{};
  for (const SlotHandles& sh : h.slots_h) {
    t.plugin_calls += sh.calls->value();
    t.plugin_traps += sh.traps->value();
    t.plugin_fuel_exhausted += sh.fuel_exhausted->value();
    t.plugin_declines += sh.declines->value();
    t.plugin_fuel_used += sh.fuel_used->value();
    if (sh.sched) t.sched_wall_ns.merge(HistState::from(*sh.wall));
  }
  t.quarantines = 0;
  t.frames_rejected = 0;
  t.anomalies = 0;
  for (const AnomalyHandle& ah : h.anomalies) {
    const uint64_t v = ah.c->value();
    t.anomalies += v;
    if (ah.kind == AnomalyKind::kQuarantine) t.quarantines += v;
    if (ah.kind == AnomalyKind::kFrameRejected) t.frames_rejected += v;
  }
  if (h.ring != nullptr) {
    t.trace_writes = h.ring->writes();
    t.trace_dropped = h.ring->dropped();
  } else {
    t.trace_writes = 0;
    t.trace_dropped = 0;
  }
  return t;
}

void FleetAggregator::begin_window() { window_base_ = totals_; }

CellTelemetry FleetAggregator::cell_window(size_t i) const {
  CellTelemetry t = totals_[i];
  const CellTelemetry& b = window_base_[i];
  t.slots -= b.slots;
  t.slot_overruns -= b.slot_overruns;
  t.prb_granted -= b.prb_granted;
  t.prb_capacity -= b.prb_capacity;
  t.slots_scheduled -= b.slots_scheduled;
  t.sched_faults -= b.sched_faults;
  t.sanitized_allocs -= b.sanitized_allocs;
  t.plugin_calls -= b.plugin_calls;
  t.plugin_traps -= b.plugin_traps;
  t.plugin_fuel_exhausted -= b.plugin_fuel_exhausted;
  t.plugin_declines -= b.plugin_declines;
  t.plugin_fuel_used -= b.plugin_fuel_used;
  t.quarantines -= b.quarantines;
  t.frames_rejected -= b.frames_rejected;
  t.anomalies -= b.anomalies;
  t.trace_writes -= b.trace_writes;
  // trace_dropped is not monotone across a window (it saturates at
  // head - capacity); report the absolute value instead of a delta.
  t.slot_wall_ns.subtract(b.slot_wall_ns);
  t.sched_wall_ns.subtract(b.sched_wall_ns);
  return t;
}

CellTelemetry FleetAggregator::gnb_rollup(uint32_t gnb, bool window) const {
  CellTelemetry out;
  out.gnb = gnb;
  out.cell = std::numeric_limits<uint32_t>::max();
  out.cells_merged = 0;
  for (size_t i = 0; i < specs_.size(); ++i) {
    if (specs_[i].gnb != gnb) continue;
    out.merge(window ? cell_window(i) : totals_[i]);
  }
  return out;
}

CellTelemetry FleetAggregator::fleet_rollup(bool window) const {
  CellTelemetry out;
  out.cell = std::numeric_limits<uint32_t>::max();
  out.cells_merged = 0;
  for (size_t i = 0; i < specs_.size(); ++i) {
    out.merge(window ? cell_window(i) : totals_[i]);
  }
  return out;
}

std::string FleetAggregator::to_json() const {
  std::string out = "{\"cells\":[";
  for (size_t i = 0; i < totals_.size(); ++i) {
    if (i > 0) out += ',';
    out += totals_[i].to_json();
  }
  out += "],\"fleet\":";
  out += fleet_rollup().to_json();
  out += '}';
  return out;
}

// ---------------------------------------------------------------------------
// FleetView

void FleetView::update(const CellTelemetry& t) {
  cells_[{t.gnb, t.cell}] = t;
  ++updates_;
}

const CellTelemetry* FleetView::cell(uint32_t gnb, uint32_t cell) const {
  auto it = cells_.find({gnb, cell});
  return it == cells_.end() ? nullptr : &it->second;
}

CellTelemetry FleetView::gnb_rollup(uint32_t gnb) const {
  CellTelemetry out;
  out.gnb = gnb;
  out.cell = std::numeric_limits<uint32_t>::max();
  out.cells_merged = 0;
  for (const auto& [key, t] : cells_) {
    if (key.first == gnb) out.merge(t);
  }
  return out;
}

CellTelemetry FleetView::fleet_rollup() const {
  CellTelemetry out;
  out.cell = std::numeric_limits<uint32_t>::max();
  out.cells_merged = 0;
  for (const auto& [key, t] : cells_) out.merge(t);
  return out;
}

std::string FleetView::to_json() const {
  std::string out = "{\"cells\":[";
  bool first = true;
  for (const auto& [key, t] : cells_) {
    if (!first) out += ',';
    first = false;
    out += t.to_json();
  }
  out += "],\"fleet\":";
  out += fleet_rollup().to_json();
  out += '}';
  return out;
}

// ---------------------------------------------------------------------------
// Merged cross-cell Chrome trace

namespace {

void append_json_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

struct MergedEvent {
  TraceEvent ev;
  uint32_t pid = 0;
  uint64_t order = 0;  ///< position within its ring: deterministic tie-break
};

}  // namespace

std::string export_merged_chrome_trace(const std::vector<MergedTrack>& tracks) {
  std::vector<MergedEvent> events;
  uint64_t recorded_total = 0;
  uint64_t dropped_total = 0;
  size_t retained_total = 0;
  std::vector<std::vector<TraceEvent>> snapshots;
  snapshots.reserve(tracks.size());
  for (const MergedTrack& tr : tracks) {
    snapshots.push_back(tr.ring != nullptr ? tr.ring->snapshot()
                                           : std::vector<TraceEvent>{});
    retained_total += snapshots.back().size();
  }
  events.reserve(retained_total);
  for (size_t t = 0; t < tracks.size(); ++t) {
    for (size_t i = 0; i < snapshots[t].size(); ++i) {
      events.push_back({snapshots[t][i], tracks[t].pid, static_cast<uint64_t>(i)});
    }
  }
  // Global virtual-clock order; (pid, ring position) breaks timestamp ties
  // deterministically, so the merged bytes are a pure function of the run.
  std::stable_sort(events.begin(), events.end(),
                   [](const MergedEvent& a, const MergedEvent& b) {
                     if (a.ev.t_ns != b.ev.t_ns) return a.ev.t_ns < b.ev.t_ns;
                     if (a.pid != b.pid) return a.pid < b.pid;
                     return a.order < b.order;
                   });

  std::string out;
  out.reserve(events.size() * 130 + tracks.size() * 200 + 256);
  out += "{\"traceEvents\":[";
  char buf[192];
  bool first = true;
  for (const MergedTrack& tr : tracks) {
    if (!first) out += ',';
    first = false;
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%u,\"tid\":1,"
                  "\"args\":{\"name\":\"",
                  tr.pid);
    out += buf;
    append_json_escaped(out, tr.name);
    out += "\"}}";
  }
  for (const MergedEvent& me : events) {
    const TraceEvent& ev = me.ev;
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    append_json_escaped(out, ev.name);
    out += "\",\"cat\":\"";
    out += to_string(static_cast<TraceCat>(ev.cat));
    std::snprintf(buf, sizeof(buf), "\",\"ph\":\"%c\",\"ts\":%.3f,\"pid\":%u,\"tid\":1",
                  ev.phase, static_cast<double>(ev.t_ns) / 1000.0, me.pid);
    out += buf;
    if (ev.phase == 'X') {
      std::snprintf(buf, sizeof(buf), ",\"dur\":%.3f",
                    static_cast<double>(ev.dur_ns) / 1000.0);
      out += buf;
    }
    if (ev.phase == 'i') out += ",\"s\":\"t\"";
    std::snprintf(buf, sizeof(buf), ",\"args\":{\"slot\":%llu,\"arg\":%u}}",
                  static_cast<unsigned long long>(ev.slot), ev.arg);
    out += buf;
  }
  out += "],\"metadata\":{\"rings\":[";
  first = true;
  for (size_t t = 0; t < tracks.size(); ++t) {
    const MergedTrack& tr = tracks[t];
    const uint64_t recorded = tr.ring != nullptr ? tr.ring->writes() : 0;
    const uint64_t dropped = tr.ring != nullptr ? tr.ring->dropped() : 0;
    recorded_total += recorded;
    dropped_total += dropped;
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    append_json_escaped(out, tr.name);
    std::snprintf(buf, sizeof(buf),
                  "\",\"pid\":%u,\"recorded\":%" PRIu64 ",\"retained\":%zu"
                  ",\"dropped\":%" PRIu64 "}",
                  tr.pid, recorded, snapshots[t].size(), dropped);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "],\"recorded_total\":%" PRIu64 ",\"retained_total\":%zu"
                ",\"dropped_total\":%" PRIu64 "}}",
                recorded_total, retained_total, dropped_total);
  out += buf;
  return out;
}

}  // namespace waran::obs
