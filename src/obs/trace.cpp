#include "obs/trace.h"

#include <bit>
#include <cstdio>
#include <cstring>

#include "common/log.h"
#include "rt/clock.h"

namespace waran::obs {

namespace {

// Per-thread: every cell worker maintains its own slot counter and ring
// binding; the defaults preserve the single-threaded behavior.
thread_local uint64_t t_current_slot = 0;
thread_local TraceRing* t_current_ring = nullptr;

void append_json_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

const char* to_string(TraceCat cat) {
  switch (cat) {
    case TraceCat::kMac: return "mac";
    case TraceCat::kSlice: return "slice";
    case TraceCat::kPlugin: return "plugin";
    case TraceCat::kWasm: return "wasm";
    case TraceCat::kHost: return "host";
    case TraceCat::kE2: return "e2";
    case TraceCat::kTransport: return "transport";
    case TraceCat::kRic: return "ric";
    case TraceCat::kAgent: return "agent";
    case TraceCat::kLog: return "log";
    case TraceCat::kAnomaly: return "anomaly";
    case TraceCat::kOther: return "other";
  }
  return "other";
}

uint64_t now_ns() { return rt::now_ns(); }

void set_current_slot(uint64_t slot) { t_current_slot = slot; }

uint64_t current_slot() { return t_current_slot; }

TraceRing& TraceRing::instance() {
  static TraceRing ring;
  return ring;
}

TraceRing& TraceRing::current() {
  return t_current_ring != nullptr ? *t_current_ring : instance();
}

void TraceRing::bind_current(TraceRing* ring) { t_current_ring = ring; }

void TraceRing::enable(size_t capacity) {
  if (capacity < 2) capacity = 2;
  capacity = std::bit_ceil(capacity);
  buf_.assign(capacity, TraceEvent{});
  mask_ = capacity - 1;
  head_.store(0, std::memory_order_relaxed);
  rt::Clock::global();  // pin the real-time epoch no later than the first event
  enabled_.store(true, std::memory_order_release);
}

void TraceRing::disable() { enabled_.store(false, std::memory_order_release); }

uint64_t TraceRing::dropped() const {
  uint64_t h = head_.load(std::memory_order_relaxed);
  return h > buf_.size() ? h - buf_.size() : 0;
}

void TraceRing::record(TraceCat cat, std::string_view name, uint64_t t_ns,
                       uint64_t dur_ns, uint32_t arg, char phase) {
  if (!enabled()) return;
  const uint64_t i = head_.fetch_add(1, std::memory_order_relaxed);
  TraceEvent& ev = buf_[i & mask_];
  ev.t_ns = t_ns;
  ev.dur_ns = dur_ns;
  ev.slot = current_slot();
  ev.arg = arg;
  ev.cat = static_cast<uint8_t>(cat);
  ev.phase = phase;
  const size_t n = name.size() < sizeof(ev.name) - 1 ? name.size() : sizeof(ev.name) - 1;
  std::memcpy(ev.name, name.data(), n);
  ev.name[n] = '\0';
}

uint64_t TraceRing::content_hash() const {
  uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](const void* data, size_t n) {
    const unsigned char* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= 0x100000001b3ULL;
    }
  };
  for (const TraceEvent& ev : snapshot()) {
    mix(&ev.t_ns, sizeof(ev.t_ns));
    mix(&ev.dur_ns, sizeof(ev.dur_ns));
    mix(&ev.slot, sizeof(ev.slot));
    mix(&ev.arg, sizeof(ev.arg));
    mix(&ev.cat, sizeof(ev.cat));
    mix(&ev.phase, sizeof(ev.phase));
    mix(ev.name, std::strlen(ev.name));
  }
  return h;
}

std::vector<TraceEvent> TraceRing::snapshot() const {
  std::vector<TraceEvent> out;
  if (buf_.empty()) return out;
  const uint64_t h = head_.load(std::memory_order_relaxed);
  const uint64_t n = h < buf_.size() ? h : buf_.size();
  out.reserve(n);
  for (uint64_t i = h - n; i < h; ++i) out.push_back(buf_[i & mask_]);
  return out;
}

std::string TraceRing::export_chrome_trace() const {
  std::vector<TraceEvent> events = snapshot();
  std::string out;
  out.reserve(events.size() * 120 + 64);
  out += "{\"traceEvents\":[";
  bool first = true;
  char buf[192];
  for (const TraceEvent& ev : events) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    append_json_escaped(out, ev.name);
    out += "\",\"cat\":\"";
    out += to_string(static_cast<TraceCat>(ev.cat));
    // All spans land on one pid/tid: the slot loop is single-threaded, so
    // complete events nest purely by timestamp containment in Perfetto.
    std::snprintf(buf, sizeof(buf),
                  "\",\"ph\":\"%c\",\"ts\":%.3f,\"pid\":1,\"tid\":1", ev.phase,
                  static_cast<double>(ev.t_ns) / 1000.0);
    out += buf;
    if (ev.phase == 'X') {
      std::snprintf(buf, sizeof(buf), ",\"dur\":%.3f",
                    static_cast<double>(ev.dur_ns) / 1000.0);
      out += buf;
    }
    if (ev.phase == 'i') out += ",\"s\":\"t\"";
    std::snprintf(buf, sizeof(buf), ",\"args\":{\"slot\":%llu,\"arg\":%u}}",
                  static_cast<unsigned long long>(ev.slot), ev.arg);
    out += buf;
  }
  out += "]}";
  return out;
}

namespace {

void log_trace_hook(LogLevel lvl, std::string_view component, std::string_view msg) {
  (void)lvl;
  // The instant event name carries the component; the message itself is
  // truncated into the name after a ':' when it fits, else dropped (the
  // ring stores fixed-size events; stderr still has the full line).
  char name[26];
  std::snprintf(name, sizeof(name), "%.8s: %.14s", std::string(component).c_str(),
                std::string(msg).c_str());
  TraceRing::current().instant(TraceCat::kLog, name);
}

}  // namespace

void route_logs_to_trace(bool on) {
  log_detail::set_trace_hook(on ? &log_trace_hook : nullptr);
}

}  // namespace waran::obs
