// waran::obs SLO engine — declarative service-level objectives over the
// fleet telemetry plane.
//
// An SloSpec names one derived metric (slot-deadline miss rate, p99
// scheduler latency, quarantine rate, PRB utilization floor, ...), a scope
// (every cell individually, or the whole-fleet rollup) and a threshold.
// Each evaluation window the SloEngine reads the FleetAggregator's window
// deltas, produces one SloVerdict per (spec, scope instance) and folds them
// into a HealthReport — a machine-checkable verdict list that is a pure
// function of the telemetry, so repeated virtual-time runs yield identical
// reports. Every breached verdict is also journaled as
// AnomalyKind::kSloBreach (domain "slo"), which feeds the metrics registry
// and trace ring like every other containment event, and is the trigger the
// FlightRecorder (flight.h) listens for.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/fleet.h"

namespace waran::obs {

enum class SloMetric : uint8_t {
  kSlotOverrunRate,      ///< slot_overruns / slots (deadline miss rate)
  kSlotWallP99Ns,        ///< p99 of the slot wall-time histogram
  kSchedWallP99Ns,       ///< p99 of the scheduler-plugin wall-time histogram
  kQuarantineRate,       ///< quarantines / slots
  kSchedFaultRate,       ///< sched_faults / slots_scheduled
  kPrbUtilizationFloor,  ///< prb_granted / prb_capacity, judged as a floor
};

const char* to_string(SloMetric metric);

enum class SloScope : uint8_t {
  kCell,   ///< one verdict per cell, over that cell's window delta
  kFleet,  ///< one verdict over the whole-deployment window rollup
};

struct SloSpec {
  std::string name;
  SloMetric metric = SloMetric::kSlotOverrunRate;
  SloScope scope = SloScope::kCell;
  /// Upper bound for rates/latencies; lower bound for kPrbUtilizationFloor.
  double threshold = 0.0;
};

/// The default objective set the deployment runs under: deadline misses
/// ≤ 1%, scheduler p99 within the slot budget, zero quarantines, scheduler
/// fault rate ≤ 1%, fleet PRB utilization ≥ 10%.
std::vector<SloSpec> default_slos(uint64_t slot_budget_ns);

struct SloVerdict {
  std::string slo;  ///< SloSpec::name
  SloMetric metric = SloMetric::kSlotOverrunRate;
  uint32_t gnb = 0;
  uint32_t cell = 0;  ///< UINT32_MAX for fleet-scope verdicts
  double observed = 0.0;
  double threshold = 0.0;
  bool breached = false;
  bool operator==(const SloVerdict&) const = default;
};

struct HealthReport {
  uint64_t window_start_slot = 0;
  uint64_t window_end_slot = 0;
  uint64_t window_index = 0;  ///< 0-based evaluation count
  bool healthy = true;
  uint32_t breaches = 0;
  std::vector<SloVerdict> verdicts;
  bool operator==(const HealthReport&) const = default;
  std::string to_json() const;
};

class SloEngine {
 public:
  explicit SloEngine(std::vector<SloSpec> slos);

  const std::vector<SloSpec>& slos() const { return slos_; }

  /// Evaluates every objective against the aggregator's current window
  /// deltas (cell scope) and window rollup (fleet scope). Each breached
  /// verdict is journaled as kSloBreach under domain "slo". Deterministic:
  /// verdict order is (spec order, cell order).
  HealthReport evaluate(const FleetAggregator& agg, uint64_t window_start_slot,
                        uint64_t window_end_slot);

  const HealthReport& last_report() const { return last_; }
  uint64_t total_breaches() const { return total_breaches_; }

 private:
  std::vector<SloSpec> slos_;
  HealthReport last_;
  uint64_t windows_ = 0;
  uint64_t total_breaches_ = 0;
};

}  // namespace waran::obs
