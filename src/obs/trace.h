// waran::obs trace ring — slot-aligned span tracing for the whole stack.
//
// A lock-free, fixed-capacity ring of POD span events. There is one
// process-wide default ring (instance()); a multi-cell deployment gives
// each cell its own ring and binds it per worker thread (bind_current), so
// concurrent cells produce independent, deterministic per-cell streams
// that are merged at export.
// Layers record *complete* spans (begin timestamp + duration, Chrome phase
// 'X') through the RAII ObsSpan helper, or instant events (phase 'i') for
// logs and anomalies. Every event carries the current MAC slot number
// (obs::set_current_slot, maintained by the slot loop), so a trace can be
// cut along slot boundaries — the unit the 5G deadline is defined over.
//
// Cost model: when tracing is disabled (the default) the only per-span work
// is one relaxed atomic load and a branch — no clock read, no ring write,
// no heap allocation. bench/abl_obs asserts this on the metered dispatch
// loop. When enabled, recording is one fetch_add and a 56-byte store; the
// ring never allocates after enable() and wrap-around overwrites the oldest
// events (newest are always retained).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace waran::obs {

/// Span/event categories, one per instrumented layer.
enum class TraceCat : uint8_t {
  kMac = 0,    ///< slot loop, inter-slice scheduling
  kSlice,      ///< per-slice intra scheduling (arg = slice id)
  kPlugin,     ///< PluginManager dispatch (sandbox crossing + codec)
  kWasm,       ///< Instance::call (interpreter execution)
  kHost,       ///< host-function trampolines (wasm -> host)
  kE2,         ///< E2-lite encode/decode
  kTransport,  ///< Duplex frame send/receive
  kRic,        ///< near-RT RIC dispatch
  kAgent,      ///< gNB agent indication/poll
  kLog,        ///< WARAN_LOG lines routed into the ring
  kAnomaly,    ///< trap/fuel/deadline journal entries
  kOther,
};

const char* to_string(TraceCat cat);

/// One ring entry. POD, fixed size, no ownership: `name` is a truncated
/// copy so callers may pass transient strings.
struct TraceEvent {
  uint64_t t_ns = 0;    ///< begin time, monotonic ns since process trace epoch
  uint64_t dur_ns = 0;  ///< span duration; 0 for instant events
  uint64_t slot = 0;    ///< MAC slot current at record time
  uint32_t arg = 0;     ///< category-specific (slice id, byte count, ...)
  uint8_t cat = 0;      ///< TraceCat
  char phase = 'X';     ///< Chrome trace_event phase: 'X' complete, 'i' instant
  char name[26] = {};   ///< NUL-terminated, truncated to 25 chars
};
static_assert(sizeof(TraceEvent) == 56, "keep ring entries compact");

/// Monotonic timestamp for trace events (ns since a fixed process epoch, or
/// virtual time when rt::Clock runs in virtual mode — see rt/clock.h).
uint64_t now_ns();

/// Slot alignment: the slot loop publishes the slot number it is executing;
/// every subsequent event on that thread records it. Thread-local, because
/// a multi-cell deployment runs one slot loop per worker thread and the
/// cells' slot counters are independent.
void set_current_slot(uint64_t slot);
uint64_t current_slot();

class TraceRing {
 public:
  /// Per-cell rings are plain objects; the process-wide default ring is
  /// instance(). Arm with enable() before use either way.
  TraceRing() = default;

  static TraceRing& instance();

  /// The calling thread's bound ring — instance() unless bind_current()
  /// pointed the thread elsewhere. All span/instant recording goes through
  /// this, so a multi-cell deployment gets one deterministic event stream
  /// per cell instead of a nondeterministic interleaving in a shared ring.
  static TraceRing& current();
  /// Binds `ring` as this thread's recording target (nullptr rebinds
  /// instance()). The deployment brackets every cell task with this.
  static void bind_current(TraceRing* ring);

  /// Arms the ring with `capacity` entries (rounded up to a power of two).
  /// Allocates once, here — never on the record path.
  void enable(size_t capacity = 1 << 16);
  void disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Total events recorded since enable() (monotone; does not decrease on
  /// wrap). abl_obs asserts this stays flat across the disabled hot loop.
  uint64_t writes() const { return head_.load(std::memory_order_relaxed); }
  /// Events lost to wrap-around so far.
  uint64_t dropped() const;
  size_t capacity() const { return buf_.size(); }

  /// Records one event. No-op when disabled. Lock-free: slot reservation is
  /// a single fetch_add; concurrent writers never block each other.
  void record(TraceCat cat, std::string_view name, uint64_t t_ns, uint64_t dur_ns,
              uint32_t arg = 0, char phase = 'X');

  /// Convenience: instant event stamped now.
  void instant(TraceCat cat, std::string_view name, uint32_t arg = 0) {
    if (!enabled()) return;
    record(cat, name, now_ns(), 0, arg, 'i');
  }

  /// FNV-1a over the retained events (oldest first), covering every field.
  /// Under virtual time this is a deterministic fingerprint of the ring.
  uint64_t content_hash() const;

  /// Retained events, oldest first. Not synchronized with concurrent
  /// writers (snapshot from the thread that drives the scenario, or after
  /// quiescence).
  std::vector<TraceEvent> snapshot() const;

  /// Chrome trace_event JSON ({"traceEvents":[...]}), loadable in
  /// chrome://tracing and Perfetto. Timestamps are microseconds.
  std::string export_chrome_trace() const;

  /// Drops all retained events (capacity and enabled state kept).
  void clear() { head_.store(0, std::memory_order_relaxed); }

 private:
  std::vector<TraceEvent> buf_;
  size_t mask_ = 0;
  std::atomic<uint64_t> head_{0};
  std::atomic<bool> enabled_{false};
};

/// RAII complete-span recorder. Construction when tracing is disabled costs
/// one relaxed load + branch; nothing else happens until destruction, which
/// is again a single branch. `name` must outlive the span (all call sites
/// pass literals or strings owned by the instrumented object).
class ObsSpan {
 public:
  ObsSpan(TraceCat cat, std::string_view name, uint32_t arg = 0) {
    TraceRing& ring = TraceRing::current();
    if (ring.enabled()) {
      ring_ = &ring;
      cat_ = cat;
      name_ = name;
      arg_ = arg;
      t0_ = now_ns();
    }
  }
  ~ObsSpan() {
    if (ring_ != nullptr) {
      ring_->record(cat_, name_, t0_, now_ns() - t0_, arg_, 'X');
    }
  }
  ObsSpan(const ObsSpan&) = delete;
  ObsSpan& operator=(const ObsSpan&) = delete;

  /// Updates the argument mid-span (e.g. byte count known only at the end).
  void set_arg(uint32_t arg) { arg_ = arg; }

 private:
  TraceRing* ring_ = nullptr;  // non-null iff armed
  TraceCat cat_ = TraceCat::kOther;
  std::string_view name_;
  uint32_t arg_ = 0;
  uint64_t t0_ = 0;
};

/// Routes WARAN_LOG lines at or above the current log level into the ring
/// as instant events (category kLog), in addition to stderr.
void route_logs_to_trace(bool on);

}  // namespace waran::obs
