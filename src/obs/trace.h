// waran::obs trace ring — slot-aligned span tracing for the whole stack.
//
// A single process-wide, lock-free, fixed-capacity ring of POD span events.
// Layers record *complete* spans (begin timestamp + duration, Chrome phase
// 'X') through the RAII ObsSpan helper, or instant events (phase 'i') for
// logs and anomalies. Every event carries the current MAC slot number
// (obs::set_current_slot, maintained by the slot loop), so a trace can be
// cut along slot boundaries — the unit the 5G deadline is defined over.
//
// Cost model: when tracing is disabled (the default) the only per-span work
// is one relaxed atomic load and a branch — no clock read, no ring write,
// no heap allocation. bench/abl_obs asserts this on the metered dispatch
// loop. When enabled, recording is one fetch_add and a 56-byte store; the
// ring never allocates after enable() and wrap-around overwrites the oldest
// events (newest are always retained).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace waran::obs {

/// Span/event categories, one per instrumented layer.
enum class TraceCat : uint8_t {
  kMac = 0,    ///< slot loop, inter-slice scheduling
  kSlice,      ///< per-slice intra scheduling (arg = slice id)
  kPlugin,     ///< PluginManager dispatch (sandbox crossing + codec)
  kWasm,       ///< Instance::call (interpreter execution)
  kHost,       ///< host-function trampolines (wasm -> host)
  kE2,         ///< E2-lite encode/decode
  kTransport,  ///< Duplex frame send/receive
  kRic,        ///< near-RT RIC dispatch
  kAgent,      ///< gNB agent indication/poll
  kLog,        ///< WARAN_LOG lines routed into the ring
  kAnomaly,    ///< trap/fuel/deadline journal entries
  kOther,
};

const char* to_string(TraceCat cat);

/// One ring entry. POD, fixed size, no ownership: `name` is a truncated
/// copy so callers may pass transient strings.
struct TraceEvent {
  uint64_t t_ns = 0;    ///< begin time, monotonic ns since process trace epoch
  uint64_t dur_ns = 0;  ///< span duration; 0 for instant events
  uint64_t slot = 0;    ///< MAC slot current at record time
  uint32_t arg = 0;     ///< category-specific (slice id, byte count, ...)
  uint8_t cat = 0;      ///< TraceCat
  char phase = 'X';     ///< Chrome trace_event phase: 'X' complete, 'i' instant
  char name[26] = {};   ///< NUL-terminated, truncated to 25 chars
};
static_assert(sizeof(TraceEvent) == 56, "keep ring entries compact");

/// Monotonic timestamp for trace events (ns since a fixed process epoch).
uint64_t now_ns();

/// Slot alignment: the MAC slot loop (or a bench) publishes the slot number
/// it is executing; every subsequent event records it. Relaxed atomics so a
/// multi-threaded harness cannot fault; the slot loop itself is
/// single-threaded by design.
void set_current_slot(uint64_t slot);
uint64_t current_slot();

class TraceRing {
 public:
  static TraceRing& instance();

  /// Arms the ring with `capacity` entries (rounded up to a power of two).
  /// Allocates once, here — never on the record path.
  void enable(size_t capacity = 1 << 16);
  void disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Total events recorded since enable() (monotone; does not decrease on
  /// wrap). abl_obs asserts this stays flat across the disabled hot loop.
  uint64_t writes() const { return head_.load(std::memory_order_relaxed); }
  /// Events lost to wrap-around so far.
  uint64_t dropped() const;
  size_t capacity() const { return buf_.size(); }

  /// Records one event. No-op when disabled. Lock-free: slot reservation is
  /// a single fetch_add; concurrent writers never block each other.
  void record(TraceCat cat, std::string_view name, uint64_t t_ns, uint64_t dur_ns,
              uint32_t arg = 0, char phase = 'X');

  /// Convenience: instant event stamped now.
  void instant(TraceCat cat, std::string_view name, uint32_t arg = 0) {
    if (!enabled()) return;
    record(cat, name, now_ns(), 0, arg, 'i');
  }

  /// Retained events, oldest first. Not synchronized with concurrent
  /// writers (snapshot from the thread that drives the scenario, or after
  /// quiescence).
  std::vector<TraceEvent> snapshot() const;

  /// Chrome trace_event JSON ({"traceEvents":[...]}), loadable in
  /// chrome://tracing and Perfetto. Timestamps are microseconds.
  std::string export_chrome_trace() const;

  /// Drops all retained events (capacity and enabled state kept).
  void clear() { head_.store(0, std::memory_order_relaxed); }

 private:
  TraceRing() = default;
  std::vector<TraceEvent> buf_;
  size_t mask_ = 0;
  std::atomic<uint64_t> head_{0};
  std::atomic<bool> enabled_{false};
};

/// RAII complete-span recorder. Construction when tracing is disabled costs
/// one relaxed load + branch; nothing else happens until destruction, which
/// is again a single branch. `name` must outlive the span (all call sites
/// pass literals or strings owned by the instrumented object).
class ObsSpan {
 public:
  ObsSpan(TraceCat cat, std::string_view name, uint32_t arg = 0) {
    if (TraceRing::instance().enabled()) {
      armed_ = true;
      cat_ = cat;
      name_ = name;
      arg_ = arg;
      t0_ = now_ns();
    }
  }
  ~ObsSpan() {
    if (armed_) {
      TraceRing::instance().record(cat_, name_, t0_, now_ns() - t0_, arg_, 'X');
    }
  }
  ObsSpan(const ObsSpan&) = delete;
  ObsSpan& operator=(const ObsSpan&) = delete;

  /// Updates the argument mid-span (e.g. byte count known only at the end).
  void set_arg(uint32_t arg) { arg_ = arg; }

 private:
  bool armed_ = false;
  TraceCat cat_ = TraceCat::kOther;
  std::string_view name_;
  uint32_t arg_ = 0;
  uint64_t t0_ = 0;
};

/// Routes WARAN_LOG lines at or above the current log level into the ring
/// as instant events (category kLog), in addition to stderr.
void route_logs_to_trace(bool on);

}  // namespace waran::obs
