#include "obs/slo.h"

#include <cinttypes>
#include <cstdio>
#include <limits>

#include "obs/anomaly.h"

namespace waran::obs {

const char* to_string(SloMetric metric) {
  switch (metric) {
    case SloMetric::kSlotOverrunRate: return "slot_overrun_rate";
    case SloMetric::kSlotWallP99Ns: return "slot_wall_p99_ns";
    case SloMetric::kSchedWallP99Ns: return "sched_wall_p99_ns";
    case SloMetric::kQuarantineRate: return "quarantine_rate";
    case SloMetric::kSchedFaultRate: return "sched_fault_rate";
    case SloMetric::kPrbUtilizationFloor: return "prb_utilization";
  }
  return "unknown";
}

std::vector<SloSpec> default_slos(uint64_t slot_budget_ns) {
  return {
      {"slot_deadline_miss", SloMetric::kSlotOverrunRate, SloScope::kCell, 0.01},
      {"sched_latency_p99", SloMetric::kSchedWallP99Ns, SloScope::kCell,
       static_cast<double>(slot_budget_ns)},
      {"quarantine_free", SloMetric::kQuarantineRate, SloScope::kCell, 0.0},
      {"sched_fault_rate", SloMetric::kSchedFaultRate, SloScope::kCell, 0.01},
      {"prb_utilization_floor", SloMetric::kPrbUtilizationFloor, SloScope::kFleet,
       0.10},
  };
}

namespace {

bool is_floor(SloMetric metric) { return metric == SloMetric::kPrbUtilizationFloor; }

/// Derives the spec's scalar from a window delta. Ratios over an empty
/// denominator read as 0 (nothing happened, nothing breached — floors skip
/// the window instead, handled by the caller).
double metric_value(SloMetric metric, const CellTelemetry& t) {
  switch (metric) {
    case SloMetric::kSlotOverrunRate:
      return t.slots == 0 ? 0.0
                          : static_cast<double>(t.slot_overruns) /
                                static_cast<double>(t.slots);
    case SloMetric::kSlotWallP99Ns:
      return static_cast<double>(t.slot_wall_ns.quantile(0.99));
    case SloMetric::kSchedWallP99Ns:
      return static_cast<double>(t.sched_wall_ns.quantile(0.99));
    case SloMetric::kQuarantineRate:
      return t.slots == 0 ? 0.0
                          : static_cast<double>(t.quarantines) /
                                static_cast<double>(t.slots);
    case SloMetric::kSchedFaultRate:
      return t.slots_scheduled == 0 ? 0.0
                                    : static_cast<double>(t.sched_faults) /
                                          static_cast<double>(t.slots_scheduled);
    case SloMetric::kPrbUtilizationFloor:
      return t.prb_capacity == 0 ? 0.0
                                 : static_cast<double>(t.prb_granted) /
                                       static_cast<double>(t.prb_capacity);
  }
  return 0.0;
}

}  // namespace

SloEngine::SloEngine(std::vector<SloSpec> slos) : slos_(std::move(slos)) {}

HealthReport SloEngine::evaluate(const FleetAggregator& agg,
                                 uint64_t window_start_slot,
                                 uint64_t window_end_slot) {
  HealthReport report;
  report.window_start_slot = window_start_slot;
  report.window_end_slot = window_end_slot;
  report.window_index = windows_++;
  for (const SloSpec& spec : slos_) {
    auto judge = [&](const CellTelemetry& t, uint32_t gnb, uint32_t cell) {
      if (is_floor(spec.metric) && t.prb_capacity == 0) return;  // idle window
      SloVerdict v;
      v.slo = spec.name;
      v.metric = spec.metric;
      v.gnb = gnb;
      v.cell = cell;
      v.observed = metric_value(spec.metric, t);
      v.threshold = spec.threshold;
      v.breached = is_floor(spec.metric) ? v.observed < spec.threshold
                                         : v.observed > spec.threshold;
      if (v.breached) {
        report.healthy = false;
        ++report.breaches;
        ++total_breaches_;
        char detail[160];
        std::snprintf(detail, sizeof(detail),
                      "%s %s=%.6g %s threshold %.6g (slots %" PRIu64 "-%" PRIu64 ")",
                      spec.name.c_str(), to_string(spec.metric), v.observed,
                      is_floor(spec.metric) ? "below" : "above", spec.threshold,
                      window_start_slot, window_end_slot);
        std::string source = cell == std::numeric_limits<uint32_t>::max()
                                 ? "fleet"
                                 : "cell " + std::to_string(cell);
        AnomalyJournal::global().record(AnomalyKind::kSloBreach, "slo", source,
                                        detail);
      }
      report.verdicts.push_back(std::move(v));
    };
    if (spec.scope == SloScope::kFleet) {
      judge(agg.fleet_rollup(/*window=*/true), /*gnb=*/0,
            std::numeric_limits<uint32_t>::max());
    } else {
      for (size_t i = 0; i < agg.cells(); ++i) {
        judge(agg.cell_window(i), agg.spec(i).gnb, agg.spec(i).cell);
      }
    }
  }
  last_ = report;
  return report;
}

std::string HealthReport::to_json() const {
  std::string out;
  out.reserve(256 + verdicts.size() * 160);
  char buf[224];
  std::snprintf(buf, sizeof(buf),
                "{\"window_start_slot\":%" PRIu64 ",\"window_end_slot\":%" PRIu64
                ",\"window_index\":%" PRIu64 ",\"healthy\":%s,\"breaches\":%u,"
                "\"verdicts\":[",
                window_start_slot, window_end_slot, window_index,
                healthy ? "true" : "false", breaches);
  out += buf;
  bool first = true;
  for (const SloVerdict& v : verdicts) {
    if (!first) out += ',';
    first = false;
    out += "{\"slo\":\"";
    out += v.slo;  // spec names are identifier-like; no escaping needed
    if (v.cell == std::numeric_limits<uint32_t>::max()) {
      std::snprintf(buf, sizeof(buf), "\",\"metric\":\"%s\",\"scope\":\"fleet\"",
                    to_string(v.metric));
    } else {
      std::snprintf(buf, sizeof(buf),
                    "\",\"metric\":\"%s\",\"gnb\":%u,\"cell\":%u", to_string(v.metric),
                    v.gnb, v.cell);
    }
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  ",\"observed\":%.6g,\"threshold\":%.6g,\"breached\":%s}",
                  v.observed, v.threshold, v.breached ? "true" : "false");
    out += buf;
  }
  out += "]}";
  return out;
}

}  // namespace waran::obs
