// waran::obs metrics registry — named counters, gauges and fixed-bucket
// log-scale histograms, with Prometheus text exposition and a JSON snapshot.
//
// Unlike common/stats.h's QuantileAcc (exact order statistics, one heap
// append per sample — right for offline evaluation), these instruments are
// built for the hot path: a counter add is one relaxed atomic add, a
// histogram add is two atomic adds and an increment of one of 65
// fixed power-of-two buckets. Nothing on the add path allocates or locks.
//
// Naming convention (doc/observability.md): `waran_<layer>_<name>` with the
// unit suffixed (`_total` for counters, `_ns` / `_bytes` / `_prbs` for
// quantities), labels in Prometheus form: `waran_plugin_calls_total{domain="mac",slot="rr"}`.
//
// Embedders resolve instruments once at setup (registration takes a mutex)
// and hold the returned reference — addresses are stable for the life of
// the registry.
#pragma once

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace waran::obs {

class Counter {
 public:
  void add(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

class Gauge {
 public:
  void set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(int64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Log2 histogram: 65 fixed buckets with exact power-of-two boundaries.
/// Bucket k (k >= 1) counts values v with 2^(k-1) <= v < 2^k; bucket 0
/// counts v == 0. Index is std::bit_width(v), so `add` is O(1) with no
/// branches on the bucket search. Quantiles are log-scale estimates (the
/// bucket's upper bound); exact distributions stay with QuantileAcc.
class Histogram {
 public:
  static constexpr size_t kBuckets = 65;

  void add(uint64_t v);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const {
    uint64_t c = count();
    return c == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(c);
  }
  uint64_t bucket_count(size_t k) const {
    return buckets_[k].load(std::memory_order_relaxed);
  }
  /// Exclusive upper bound of bucket k: 2^k (UINT64_MAX for k = 64).
  static uint64_t bucket_upper_bound(size_t k);
  /// Nearest-rank quantile estimate, reported as the upper bound of the
  /// bucket containing that rank (an over-estimate by at most 2x). q in
  /// [0,1]; 0 when empty.
  uint64_t quantile(double q) const;
  void reset();

 private:
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> count_{0};
};

/// A label set, rendered in sorted Prometheus form.
using Labels = std::initializer_list<std::pair<std::string_view, std::string_view>>;

class MetricsRegistry {
 public:
  /// The process-wide registry every instrumented layer feeds.
  static MetricsRegistry& global();

  /// Finds or creates an instrument. The returned reference is stable for
  /// the registry's lifetime; re-registering the same name+labels returns
  /// the same instrument. Registering an existing name as a different kind
  /// returns a separate instrument of the requested kind (names should not
  /// be reused across kinds; the exporter keeps them distinct).
  Counter& counter(std::string_view name, Labels labels = {});
  Gauge& gauge(std::string_view name, Labels labels = {});
  Histogram& histogram(std::string_view name, Labels labels = {});

  /// Prometheus text exposition format (type comments + one line per
  /// sample; histograms expand to cumulative _bucket/_sum/_count).
  std::string to_prometheus() const;
  /// JSON snapshot: {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string to_json() const;

  size_t size() const;
  /// Zeroes every instrument's value; registrations (and handed-out
  /// references) stay valid. Tests and scenario runners use this to start
  /// from a clean sheet.
  void reset_values();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    std::string base;    // metric name without labels
    std::string labels;  // rendered label block, "" or `{k="v",...}`
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& find_or_create(std::string_view name, Labels labels, Kind kind);

  mutable std::mutex mu_;
  // Keyed by base + labels + kind tag; std::map keeps exporter output
  // sorted and entry addresses stable.
  std::map<std::string, Entry> entries_;
};

}  // namespace waran::obs
