#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <limits>

namespace waran::obs {

void Histogram::add(uint64_t v) {
  buckets_[std::bit_width(v)].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
}

uint64_t Histogram::bucket_upper_bound(size_t k) {
  if (k >= 64) return std::numeric_limits<uint64_t>::max();
  return uint64_t{1} << k;
}

uint64_t Histogram::quantile(double q) const {
  const uint64_t n = count();
  if (n == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Nearest rank (1-based, ceil), as QuantileAcc does.
  uint64_t rank = static_cast<uint64_t>(std::ceil(q * static_cast<double>(n)));
  if (rank < 1) rank = 1;
  if (rank > n) rank = n;
  uint64_t cum = 0;
  for (size_t k = 0; k < kBuckets; ++k) {
    cum += bucket_count(k);
    if (cum >= rank) return k == 0 ? 0 : bucket_upper_bound(k) - 1;
  }
  return bucket_upper_bound(kBuckets - 1);
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

namespace {

std::string render_labels(Labels labels) {
  if (labels.size() == 0) return "";
  std::vector<std::pair<std::string_view, std::string_view>> sorted(labels);
  std::sort(sorted.begin(), sorted.end());
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : sorted) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    for (char c : v) {  // Prometheus label-value escaping
      if (c == '\\' || c == '"') out += '\\';
      if (c == '\n') { out += "\\n"; continue; }
      out += c;
    }
    out += '"';
  }
  out += '}';
  return out;
}

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
      continue;
    }
    out += c;
  }
  out += '"';
}

}  // namespace

MetricsRegistry::Entry& MetricsRegistry::find_or_create(std::string_view name,
                                                        Labels labels, Kind kind) {
  std::string label_str = render_labels(labels);
  std::string key = std::string(name) + label_str + "\x01" +
                    std::to_string(static_cast<int>(kind));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    Entry e;
    e.base = std::string(name);
    e.labels = std::move(label_str);
    e.kind = kind;
    switch (kind) {
      case Kind::kCounter: e.counter = std::make_unique<Counter>(); break;
      case Kind::kGauge: e.gauge = std::make_unique<Gauge>(); break;
      case Kind::kHistogram: e.histogram = std::make_unique<Histogram>(); break;
    }
    it = entries_.emplace(std::move(key), std::move(e)).first;
  }
  return it->second;
}

Counter& MetricsRegistry::counter(std::string_view name, Labels labels) {
  return *find_or_create(name, labels, Kind::kCounter).counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name, Labels labels) {
  return *find_or_create(name, labels, Kind::kGauge).gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name, Labels labels) {
  return *find_or_create(name, labels, Kind::kHistogram).histogram;
}

size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void MetricsRegistry::reset_values() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, e] : entries_) {
    switch (e.kind) {
      case Kind::kCounter: e.counter->reset(); break;
      case Kind::kGauge: e.gauge->reset(); break;
      case Kind::kHistogram: e.histogram->reset(); break;
    }
  }
}

std::string MetricsRegistry::to_prometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  out.reserve(entries_.size() * 64 + 64);
  char buf[160];
  std::string last_typed;  // emit one # TYPE line per base name
  for (const auto& [key, e] : entries_) {
    const char* type = e.kind == Kind::kCounter ? "counter"
                       : e.kind == Kind::kGauge ? "gauge"
                                                : "histogram";
    if (e.base != last_typed) {
      out += "# TYPE " + e.base + " " + type + "\n";
      last_typed = e.base;
    }
    switch (e.kind) {
      case Kind::kCounter:
        std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", e.counter->value());
        out += e.base + e.labels + buf;
        break;
      case Kind::kGauge:
        std::snprintf(buf, sizeof(buf), " %lld\n",
                      static_cast<long long>(e.gauge->value()));
        out += e.base + e.labels + buf;
        break;
      case Kind::kHistogram: {
        const Histogram& h = *e.histogram;
        // Cumulative buckets; skip trailing empties, always emit +Inf.
        size_t top = Histogram::kBuckets;
        while (top > 1 && h.bucket_count(top - 1) == 0) --top;
        uint64_t cum = 0;
        std::string inner = e.labels.empty()
                                ? ""
                                : e.labels.substr(1, e.labels.size() - 2) + ",";
        for (size_t k = 0; k < top; ++k) {
          cum += h.bucket_count(k);
          std::snprintf(buf, sizeof(buf), "le=\"%" PRIu64 "\"} %" PRIu64 "\n",
                        Histogram::bucket_upper_bound(k), cum);
          out += e.base + "_bucket{" + inner + buf;
        }
        std::snprintf(buf, sizeof(buf), "le=\"+Inf\"} %" PRIu64 "\n", h.count());
        out += e.base + "_bucket{" + inner + buf;
        std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", h.sum());
        out += e.base + "_sum" + e.labels + buf;
        std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", h.count());
        out += e.base + "_count" + e.labels + buf;
        break;
      }
    }
  }
  return out;
}

std::string MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string counters, gauges, histograms;
  char buf[160];
  for (const auto& [key, e] : entries_) {
    std::string name = e.base + e.labels;
    switch (e.kind) {
      case Kind::kCounter:
        if (!counters.empty()) counters += ',';
        append_json_string(counters, name);
        std::snprintf(buf, sizeof(buf), ":%" PRIu64, e.counter->value());
        counters += buf;
        break;
      case Kind::kGauge:
        if (!gauges.empty()) gauges += ',';
        append_json_string(gauges, name);
        std::snprintf(buf, sizeof(buf), ":%lld",
                      static_cast<long long>(e.gauge->value()));
        gauges += buf;
        break;
      case Kind::kHistogram: {
        const Histogram& h = *e.histogram;
        if (!histograms.empty()) histograms += ',';
        append_json_string(histograms, name);
        std::snprintf(buf, sizeof(buf),
                      ":{\"count\":%" PRIu64 ",\"sum\":%" PRIu64
                      ",\"p50\":%" PRIu64 ",\"p99\":%" PRIu64 ",\"buckets\":[",
                      h.count(), h.sum(), h.quantile(0.50), h.quantile(0.99));
        histograms += buf;
        size_t top = Histogram::kBuckets;
        while (top > 1 && h.bucket_count(top - 1) == 0) --top;
        for (size_t k = 0; k < top; ++k) {
          if (k > 0) histograms += ',';
          std::snprintf(buf, sizeof(buf), "%" PRIu64, h.bucket_count(k));
          histograms += buf;
        }
        histograms += "]}";
        break;
      }
    }
  }
  return "{\"counters\":{" + counters + "},\"gauges\":{" + gauges +
         "},\"histograms\":{" + histograms + "}}";
}

}  // namespace waran::obs
