// Near-RT RIC host (paper Fig. 4, right): receives indications through its
// communication plugin, fans them out to the xApp plugins in registration
// order, aggregates the control actions they emit, and sends them back
// framed. xApps are fully sandboxed: a crashing or garbage-emitting xApp is
// counted and skipped, never taking the RIC down; repeated offenders are
// quarantined by the plugin manager.
//
// Host functions exposed to xApps (module "env"):
//   xapp_send(dst_index, ptr, len) — inter-xApp messaging; delivered after
//   the current dispatch round to the destination's exported `on_message`.
#pragma once

#include <cstdint>
#include <deque>
#include <span>
#include <string>
#include <vector>

#include "obs/anomaly.h"
#include "plugin/manager.h"
#include "ric/e2lite.h"
#include "ric/transport.h"

namespace waran::ric {

struct RicStats {
  uint64_t indications_processed = 0;
  uint64_t telemetry_updates = 0;  // indications carrying a telemetry block
  uint64_t frames_rejected = 0;   // comm-plugin sanitization drops
  uint64_t control_frames_sent = 0;
  uint64_t actions_sent = 0;
  uint64_t xapp_faults = 0;       // xApp call errors + undecodable outputs
  uint64_t messages_delivered = 0;
  // Aggregate xApp execution cost, from the engine's per-call CallStats:
  // how much of the near-RT budget the sandboxed xApps actually consumed.
  uint64_t xapp_fuel_used = 0;
  uint64_t xapp_wall_ns = 0;
};

class NearRtRic {
 public:
  /// A RIC serves one or more E2 nodes (gNBs); the constructor wires the
  /// first link, add_link attaches more. Control actions always return on
  /// the link whose indication produced them.
  NearRtRic(Duplex& link, Duplex::Side side) {
    plugins_.set_domain("ric");
    add_link(link, side);
  }

  void add_link(Duplex& link, Duplex::Side side) { links_.push_back({&link, side}); }
  size_t link_count() const { return links_.size(); }

  Status load_comm_plugin(std::span<const uint8_t> module_bytes);

  /// Registers an xApp; dispatch order is registration order, and the index
  /// returned is the xApp's messaging address for xapp_send.
  Result<uint32_t> add_xapp(const std::string& name, std::span<const uint8_t> module_bytes);

  /// Drains inbound frames, dispatches indications to xApps, applies
  /// inter-xApp messaging, and ships aggregated control actions.
  Status poll();

  const RicStats& stats() const { return stats_; }
  plugin::PluginManager& plugins() { return plugins_; }
  const std::vector<std::string>& xapp_names() const { return xapps_; }

  /// Per-xApp call-cost distribution (p50/p99 wall time, fuel, stack
  /// depth), by registration name. Null for unknown names.
  const CallCostAcc* xapp_cost(const std::string& name) const {
    return plugins_.cost("xapp:" + name);
  }

  /// Last batch of actions shipped (for tests/benches).
  const std::vector<ControlAction>& last_actions() const { return last_actions_; }

  /// The RIC's reconstructed fleet view, rebuilt purely from the telemetry
  /// blocks that survived the wire (frame -> unframe -> decode). After a
  /// report boundary this must equal the deployment's ground-truth
  /// aggregation exactly — the fleet plane's end-to-end invariant.
  const obs::FleetView& fleet_view() const { return fleet_view_; }

  /// Trap/anomaly journal entries recorded under this RIC's observability
  /// domain: every xApp trap, fuel/deadline exhaustion and quarantine, with
  /// the xApp slot name and the MAC slot that was executing.
  std::vector<obs::AnomalyRecord> anomalies() const {
    return obs::AnomalyJournal::global().snapshot(plugins_.domain());
  }

 private:
  struct LinkRef {
    Duplex* link;
    Duplex::Side side;
  };

  Status dispatch_indication(std::span<const uint8_t> payload, LinkRef& origin);
  void deliver_messages();
  void account_xapp(const std::string& slot);

  std::vector<LinkRef> links_;
  plugin::PluginManager plugins_;
  std::vector<std::string> xapps_;             // slot names in dispatch order
  std::vector<std::deque<std::vector<uint8_t>>> inboxes_;
  RicStats stats_;
  std::vector<ControlAction> last_actions_;
  obs::FleetView fleet_view_;
};

}  // namespace waran::ric
