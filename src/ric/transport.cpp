#include "ric/transport.h"

namespace waran::ric {

void Duplex::send(Side from, std::vector<uint8_t> frame) {
  ++frames_sent_;
  bool drop = false;
  if (tap_) tap_(frame, drop);
  if (drop) {
    ++frames_dropped_;
    return;
  }
  if (from == Side::kA) {
    to_b_.push_back(std::move(frame));
  } else {
    to_a_.push_back(std::move(frame));
  }
}

std::optional<std::vector<uint8_t>> Duplex::receive(Side side) {
  auto& q = side == Side::kA ? to_a_ : to_b_;
  if (q.empty()) return std::nullopt;
  std::vector<uint8_t> frame = std::move(q.front());
  q.pop_front();
  return frame;
}

size_t Duplex::pending(Side side) const {
  return side == Side::kA ? to_a_.size() : to_b_.size();
}

}  // namespace waran::ric
