#include "ric/transport.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace waran::ric {

namespace {

struct TransportMetrics {
  obs::Counter& frames =
      obs::MetricsRegistry::global().counter("waran_transport_frames_total");
  obs::Counter& bytes =
      obs::MetricsRegistry::global().counter("waran_transport_bytes_total");
  obs::Counter& drops =
      obs::MetricsRegistry::global().counter("waran_transport_drops_total");
  obs::Counter& corrupted =
      obs::MetricsRegistry::global().counter("waran_transport_corrupted_total");
  obs::Counter& duplicated =
      obs::MetricsRegistry::global().counter("waran_transport_duplicated_total");
  obs::Counter& reordered =
      obs::MetricsRegistry::global().counter("waran_transport_reordered_total");
  obs::Counter& delivered =
      obs::MetricsRegistry::global().counter("waran_transport_delivered_total");
  static TransportMetrics& get() {
    static TransportMetrics m;
    return m;
  }
};

}  // namespace

void Duplex::enqueue(Side to, std::vector<uint8_t> frame) {
  ++frames_delivered_;
  TransportMetrics::get().delivered.add();
  if (to == Side::kA) {
    to_a_.push_back(std::move(frame));
  } else {
    to_b_.push_back(std::move(frame));
  }
}

void Duplex::release_due(Side to) {
  auto& held = to == Side::kA ? held_a_ : held_b_;
  while (!held.empty() && held.front().remaining == 0) {
    std::vector<uint8_t> frame = std::move(held.front().frame);
    held.pop_front();
    enqueue(to, std::move(frame));
  }
}

void Duplex::send(Side from, std::vector<uint8_t> frame) {
  obs::ObsSpan span(obs::TraceCat::kTransport, "send",
                    static_cast<uint32_t>(frame.size()));
  std::lock_guard<std::mutex> lock(mu_);
  const Side to = from == Side::kA ? Side::kB : Side::kA;
  ++frames_sent_;
  TransportMetrics::get().frames.add();
  TransportMetrics::get().bytes.add(frame.size());

  // Every send toward `to` ages the frames held back for that side, so a
  // reordered frame overtakes exactly `delay` successors, then lands.
  auto& held = to == Side::kA ? held_a_ : held_b_;
  for (Held& h : held) {
    if (h.remaining > 0) --h.remaining;
  }

  Fault fault;  // kDeliver
  for (const FaultStage& stage : stages_) {
    if (!stage) continue;
    fault = stage(frame, to);
    if (fault.action == FaultAction::kCorrupt) {
      ++frames_corrupted_;
      TransportMetrics::get().corrupted.add();
      continue;  // corrupted frames still travel; later stages may act too
    }
    if (fault.action != FaultAction::kDeliver) break;  // terminal
  }

  switch (fault.action) {
    case FaultAction::kDrop:
      ++frames_dropped_;
      TransportMetrics::get().drops.add();
      break;
    case FaultAction::kDuplicate: {
      ++frames_duplicated_;
      TransportMetrics::get().duplicated.add();
      std::vector<uint8_t> copy = frame;
      enqueue(to, std::move(copy));
      enqueue(to, std::move(frame));
      break;
    }
    case FaultAction::kReorder:
      ++frames_reordered_;
      TransportMetrics::get().reordered.add();
      held.push_back(Held{std::move(frame), fault.delay == 0 ? 1 : fault.delay});
      break;
    case FaultAction::kDeliver:
    case FaultAction::kCorrupt:
      enqueue(to, std::move(frame));
      break;
  }
  release_due(to);
}

std::optional<std::vector<uint8_t>> Duplex::receive(Side side) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& q = side == Side::kA ? to_a_ : to_b_;
  if (q.empty()) return std::nullopt;
  std::vector<uint8_t> frame = std::move(q.front());
  q.pop_front();
  return frame;
}

size_t Duplex::pending(Side side) const {
  std::lock_guard<std::mutex> lock(mu_);
  return side == Side::kA ? to_a_.size() : to_b_.size();
}

void Duplex::flush_delayed() {
  std::lock_guard<std::mutex> lock(mu_);
  while (!held_a_.empty()) {
    std::vector<uint8_t> frame = std::move(held_a_.front().frame);
    held_a_.pop_front();
    enqueue(Side::kA, std::move(frame));
  }
  while (!held_b_.empty()) {
    std::vector<uint8_t> frame = std::move(held_b_.front().frame);
    held_b_.pop_front();
    enqueue(Side::kB, std::move(frame));
  }
}

}  // namespace waran::ric
