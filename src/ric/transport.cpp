#include "ric/transport.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace waran::ric {

namespace {

struct TransportMetrics {
  obs::Counter& frames =
      obs::MetricsRegistry::global().counter("waran_transport_frames_total");
  obs::Counter& bytes =
      obs::MetricsRegistry::global().counter("waran_transport_bytes_total");
  obs::Counter& drops =
      obs::MetricsRegistry::global().counter("waran_transport_drops_total");
  static TransportMetrics& get() {
    static TransportMetrics m;
    return m;
  }
};

}  // namespace

void Duplex::send(Side from, std::vector<uint8_t> frame) {
  obs::ObsSpan span(obs::TraceCat::kTransport, "send",
                    static_cast<uint32_t>(frame.size()));
  ++frames_sent_;
  TransportMetrics::get().frames.add();
  TransportMetrics::get().bytes.add(frame.size());
  bool drop = false;
  if (tap_) tap_(frame, drop);
  if (drop) {
    ++frames_dropped_;
    TransportMetrics::get().drops.add();
    return;
  }
  if (from == Side::kA) {
    to_b_.push_back(std::move(frame));
  } else {
    to_a_.push_back(std::move(frame));
  }
}

std::optional<std::vector<uint8_t>> Duplex::receive(Side side) {
  auto& q = side == Side::kA ? to_a_ : to_b_;
  if (q.empty()) return std::nullopt;
  std::vector<uint8_t> frame = std::move(q.front());
  q.pop_front();
  return frame;
}

size_t Duplex::pending(Side side) const {
  return side == Side::kA ? to_a_.size() : to_b_.size();
}

}  // namespace waran::ric
