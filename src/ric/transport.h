// In-process duplex transport standing in for the paper's operator-chosen
// message bus (ZeroMQ / Kafka / SCTP — §4B lets each deployment pick).
// Two endpoints, each with an inbound queue; supports deterministic fault
// injection through a composable pipeline of fault stages (corruption,
// drops, duplication, reorder-with-delay) to exercise the communication
// plugins' sanitization path (§3B: "no malicious packets ... can be
// injected into the host RIC").
//
// Thread safety: every public member takes an internal mutex, so a Duplex
// may bridge a cell worker thread (GnbAgent side) and the coordinator
// thread (NearRtRic side) of a multi-cell deployment without external
// locking. Fault stages run under that lock and must not call back into
// the same Duplex.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <vector>

namespace waran::ric {

class Duplex {
 public:
  enum class Side : uint8_t { kA, kB };

  /// What one fault stage decided for one in-flight frame.
  enum class FaultAction : uint8_t {
    kDeliver,    ///< pass unchanged to the next stage (or the inbound queue)
    kCorrupt,    ///< stage mutated the frame in place; keep going
    kDrop,       ///< discard; later stages never see the frame
    kDuplicate,  ///< deliver two copies (terminal)
    kReorder,    ///< hold back; release after `delay` later sends (terminal)
  };

  struct Fault {
    FaultAction action = FaultAction::kDeliver;
    /// kReorder only: how many subsequent sends toward the same destination
    /// must pass before the held frame is released behind them.
    uint32_t delay = 1;
  };

  /// One stage of the fault pipeline. Sees every frame in flight (mutable,
  /// so kCorrupt can flip bits) and the destination side. Stages run in
  /// installation order; kDeliver/kCorrupt continue to the next stage, the
  /// first terminal action (drop/duplicate/reorder) ends the pipeline.
  using FaultStage = std::function<Fault(std::vector<uint8_t>& frame, Side to)>;

  /// Sends a frame from `from` toward the opposite endpoint.
  void send(Side from, std::vector<uint8_t> frame);

  /// Pops the next inbound frame at `side`, if any.
  std::optional<std::vector<uint8_t>> receive(Side side);

  size_t pending(Side side) const;

  void add_fault_stage(FaultStage stage) {
    std::lock_guard<std::mutex> lock(mu_);
    stages_.push_back(std::move(stage));
  }
  void clear_fault_stages() {
    std::lock_guard<std::mutex> lock(mu_);
    stages_.clear();
  }

  /// Releases every frame still held for reordering into its destination
  /// queue (in hold order). Call when draining a scenario, so a reordered
  /// frame near the end of an episode is not silently lost.
  void flush_delayed();

  /// Frames held back for reordering right now (not yet released).
  size_t delayed_in_flight() const {
    std::lock_guard<std::mutex> lock(mu_);
    return held_a_.size() + held_b_.size();
  }

  uint64_t frames_sent() const { return read_counter(frames_sent_); }
  uint64_t frames_dropped() const { return read_counter(frames_dropped_); }
  uint64_t frames_corrupted() const { return read_counter(frames_corrupted_); }
  uint64_t frames_duplicated() const { return read_counter(frames_duplicated_); }
  uint64_t frames_reordered() const { return read_counter(frames_reordered_); }
  uint64_t frames_delivered() const { return read_counter(frames_delivered_); }

 private:
  struct Held {
    std::vector<uint8_t> frame;
    uint32_t remaining;  // sends toward the same side left before release
  };

  // Both require mu_ held by the caller.
  void enqueue(Side to, std::vector<uint8_t> frame);
  void release_due(Side to);

  uint64_t read_counter(const uint64_t& counter) const {
    std::lock_guard<std::mutex> lock(mu_);
    return counter;
  }

  mutable std::mutex mu_;

  std::deque<std::vector<uint8_t>> to_a_;
  std::deque<std::vector<uint8_t>> to_b_;
  std::deque<Held> held_a_;  // destined for side A
  std::deque<Held> held_b_;  // destined for side B
  std::vector<FaultStage> stages_;
  uint64_t frames_sent_ = 0;
  uint64_t frames_dropped_ = 0;
  uint64_t frames_corrupted_ = 0;
  uint64_t frames_duplicated_ = 0;
  uint64_t frames_reordered_ = 0;
  uint64_t frames_delivered_ = 0;
};

}  // namespace waran::ric
