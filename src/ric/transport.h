// In-process duplex transport standing in for the paper's operator-chosen
// message bus (ZeroMQ / Kafka / SCTP — §4B lets each deployment pick).
// Two endpoints, each with an inbound queue; supports deterministic fault
// injection (frame corruption, drops) to exercise the communication
// plugins' sanitization path (§3B: "no malicious packets ... can be
// injected into the host RIC").
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

namespace waran::ric {

class Duplex {
 public:
  enum class Side : uint8_t { kA, kB };

  /// Sends a frame from `from` toward the opposite endpoint.
  void send(Side from, std::vector<uint8_t> frame);

  /// Pops the next inbound frame at `side`, if any.
  std::optional<std::vector<uint8_t>> receive(Side side);

  size_t pending(Side side) const;

  /// Installs a tap applied to every frame in flight (mutate to corrupt,
  /// clear to drop). Used by tests and the ric_roundtrip bench.
  using Tap = std::function<void(std::vector<uint8_t>& frame, bool& drop)>;
  void set_tap(Tap tap) { tap_ = std::move(tap); }

  uint64_t frames_sent() const { return frames_sent_; }
  uint64_t frames_dropped() const { return frames_dropped_; }

 private:
  std::deque<std::vector<uint8_t>> to_a_;
  std::deque<std::vector<uint8_t>> to_b_;
  Tap tap_;
  uint64_t frames_sent_ = 0;
  uint64_t frames_dropped_ = 0;
};

}  // namespace waran::ric
