#include "ric/gnb_agent.h"

#include "common/log.h"
#include "obs/trace.h"

namespace waran::ric {

using wasm::FuncType;
using wasm::HostContext;
using wasm::HostFunc;
using wasm::ValType;
using wasm::Value;

GnbAgent::GnbAgent(uint32_t cell_id, ran::GnbMac& mac, QuotaTableInterScheduler* quotas,
                   Duplex& link, Duplex::Side side)
    : cell_id_(cell_id), mac_(mac), quotas_(quotas), link_(link), side_(side) {
  plugins_.set_domain("gnb" + std::to_string(cell_id));
}

Status GnbAgent::load_comm_plugin(std::span<const uint8_t> module_bytes) {
  if (plugins_.has("comm")) return plugins_.swap("comm", module_bytes);
  return plugins_.install("comm", module_bytes);
}

wasm::Linker GnbAgent::control_host_functions() {
  wasm::Linker linker;
  linker.register_func(
      "env", "ran_set_quota",
      HostFunc{FuncType{{ValType::kI32, ValType::kI32}, {}},
               [this](HostContext&, std::span<const Value> args)
                   -> Result<std::optional<Value>> {
                 if (quotas_ != nullptr) {
                   quotas_->set_quota(args[0].as_u32(), args[1].as_u32());
                 }
                 ++stats_.quota_updates;
                 return std::optional<Value>{};
               }});
  linker.register_func(
      "env", "ran_set_cqi_table",
      HostFunc{FuncType{{ValType::kI32}, {}},
               [this](HostContext&, std::span<const Value> args)
                   -> Result<std::optional<Value>> {
                 uint32_t index = args[0].as_u32();
                 if (index > 1) return std::optional<Value>{};  // unknown: ignore
                 cqi_table_index_ = index;
                 mac_.set_mcs_table(index == 1 ? ran::McsTable::kQam256
                                               : ran::McsTable::kQam64);
                 ++stats_.cqi_table_updates;
                 return std::optional<Value>{};
               }});
  linker.register_func(
      "env", "ran_set_report_period",
      HostFunc{FuncType{{ValType::kI32}, {}},
               [this](HostContext&, std::span<const Value> args)
                   -> Result<std::optional<Value>> {
                 uint32_t period = args[0].as_u32();
                 if (period >= 1 && period <= 100000) {
                   report_period_slots_ = period;
                   ++stats_.period_updates;
                 }
                 return std::optional<Value>{};
               }});
  linker.register_func(
      "env", "ran_handover",
      HostFunc{FuncType{{ValType::kI32, ValType::kI32}, {}},
               [this](HostContext&, std::span<const Value> args)
                   -> Result<std::optional<Value>> {
                 ++stats_.handovers;
                 if (on_handover_) on_handover_(args[0].as_u32(), args[1].as_u32());
                 return std::optional<Value>{};
               }});
  return linker;
}

void GnbAgent::account_plugin(const std::string& slot) {
  plugin::Plugin* p = plugins_.plugin(slot);
  if (p == nullptr) return;
  const wasm::CallStats& cs = p->last_call_stats();
  stats_.plugin_fuel_used += cs.fuel_used;
  stats_.plugin_wall_ns += cs.wall_ns;
}

Status GnbAgent::load_control_plugin(std::span<const uint8_t> module_bytes) {
  wasm::Linker host = control_host_functions();
  if (plugins_.has("ctl")) return plugins_.swap("ctl", module_bytes, host);
  return plugins_.install("ctl", module_bytes, host);
}

Status GnbAgent::send_indication() {
  if (!plugins_.has("comm")) return Error::state("no communication plugin loaded");
  obs::ObsSpan span(obs::TraceCat::kAgent, "send_indication");

  IndicationReport report;
  for (uint32_t slice_id : mac_.slice_ids()) {
    const ran::SliceConfig* cfg = mac_.slice_config(slice_id);
    const ran::SliceStats* stats = mac_.slice_stats(slice_id);
    SliceReport s;
    s.slice_id = slice_id;
    s.quota_prbs = stats != nullptr ? stats->last_quota : 0;
    s.target_bps = cfg != nullptr ? cfg->target_rate_bps : 0;
    s.rate_bps = mac_.slice_rate_bps(slice_id);
    report.slices.push_back(s);
  }
  for (uint32_t rnti : mac_.ue_rntis()) {
    const ran::UeContext* ue = mac_.ue(rnti);
    UeReport u;
    u.rnti = rnti;
    u.serving_cell = cell_id_;
    u.cqi = ue->channel().cqi();
    auto it = radio_.find(rnti);
    if (it != radio_.end()) {
      u.rsrp_serving_dbm = it->second.rsrp_serving_dbm;
      u.rsrp_neighbor_dbm = it->second.rsrp_neighbor_dbm;
      u.neighbor_cell = it->second.neighbor_cell;
    }
    report.ues.push_back(u);
  }
  if (telemetry_provider_) {
    // Collected here, on the agent's own thread, so the per-cell summary is
    // coherent with the slots this cell has actually finished.
    if (const obs::CellTelemetry* t = telemetry_provider_()) report.telemetry = *t;
  }

  std::vector<uint8_t> payload = encode_indication(report);
  auto frame = plugins_.call("comm", "frame", payload);
  account_plugin("comm");
  if (!frame.ok()) return frame.error();
  link_.send(side_, std::move(*frame));
  ++stats_.indications_sent;
  return {};
}

Status GnbAgent::poll() {
  while (auto frame = link_.receive(side_)) {
    obs::ObsSpan span(obs::TraceCat::kAgent, "handle_frame",
                      static_cast<uint32_t>(frame->size()));
    ++stats_.frames_received;
    auto payload = plugins_.call("comm", "unframe", *frame);
    account_plugin("comm");
    if (!payload.ok()) {
      // The sandbox rejected the frame (bad magic/length/checksum): drop it
      // before any host-side parsing touches it.
      ++stats_.frames_rejected;
      obs::AnomalyJournal::global().record(obs::AnomalyKind::kFrameRejected,
                                           plugins_.domain(), "comm",
                                           payload.error().message);
      continue;
    }
    auto type = peek_msg_type(*payload);
    if (!type.ok() || *type != kMsgControl) {
      ++stats_.frames_rejected;
      continue;
    }
    if (!plugins_.has("ctl")) continue;
    auto applied = plugins_.call("ctl", "apply_control", *payload);
    account_plugin("ctl");
    if (!applied.ok()) {
      ++stats_.frames_rejected;
      WARAN_LOG(kDebug, "agent", "control plugin fault: " << applied.error().message);
    }
  }
  return {};
}

}  // namespace waran::ric
