#include "ric/e2lite.h"

#include "common/bytes.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace waran::ric {

namespace {

// E2 serialization accounting: message and byte counters per direction.
// Handles resolve once (thread-safe static init); adds are relaxed atomics.
struct E2Metrics {
  obs::Counter& enc_msgs = obs::MetricsRegistry::global().counter(
      "waran_e2_encoded_messages_total");
  obs::Counter& enc_bytes =
      obs::MetricsRegistry::global().counter("waran_e2_encoded_bytes_total");
  obs::Counter& dec_msgs = obs::MetricsRegistry::global().counter(
      "waran_e2_decoded_messages_total");
  obs::Counter& dec_bytes =
      obs::MetricsRegistry::global().counter("waran_e2_decoded_bytes_total");
  obs::Counter& dec_errors =
      obs::MetricsRegistry::global().counter("waran_e2_decode_errors_total");
  static E2Metrics& get() {
    static E2Metrics m;
    return m;
  }
};

// Telemetry block body: 3 u32 ids + 17 u64 counters + 2 histogram states
// of (65 buckets + sum + count) u64s each. Field order matches the
// CellTelemetry declaration; both sides are fixed-width little endian so
// the summary round-trips exactly (histogram buckets included).
constexpr uint32_t kTelemetryLen =
    12 + 17 * 8 + 2 * (obs::Histogram::kBuckets + 2) * 8;

void write_hist(ByteWriter& w, const obs::HistState& h) {
  for (uint64_t b : h.buckets) w.u64le(b);
  w.u64le(h.sum);
  w.u64le(h.count);
}

Status read_hist(ByteReader& r, obs::HistState& h) {
  for (uint64_t& b : h.buckets) {
    WARAN_TRY(v, r.u64le());
    b = v;
  }
  WARAN_TRY(sum, r.u64le());
  WARAN_TRY(count, r.u64le());
  h.sum = sum;
  h.count = count;
  return {};
}

void write_telemetry(ByteWriter& w, const obs::CellTelemetry& t) {
  w.u32le(kTelemetryTag);
  w.u32le(kTelemetryLen);
  w.u32le(t.gnb);
  w.u32le(t.cell);
  w.u32le(t.cells_merged);
  w.u64le(t.slots);
  w.u64le(t.slot_overruns);
  w.u64le(t.prb_granted);
  w.u64le(t.prb_capacity);
  w.u64le(t.slots_scheduled);
  w.u64le(t.sched_faults);
  w.u64le(t.sanitized_allocs);
  w.u64le(t.plugin_calls);
  w.u64le(t.plugin_traps);
  w.u64le(t.plugin_fuel_exhausted);
  w.u64le(t.plugin_declines);
  w.u64le(t.plugin_fuel_used);
  w.u64le(t.quarantines);
  w.u64le(t.frames_rejected);
  w.u64le(t.anomalies);
  w.u64le(t.trace_writes);
  w.u64le(t.trace_dropped);
  write_hist(w, t.slot_wall_ns);
  write_hist(w, t.sched_wall_ns);
}

Result<obs::CellTelemetry> read_telemetry(ByteReader& r) {
  WARAN_TRY(len, r.u32le());
  if (len != kTelemetryLen || r.remaining() < len) {
    return Error::decode("indication: bad telemetry block length");
  }
  obs::CellTelemetry t;
  WARAN_TRY(gnb, r.u32le());
  WARAN_TRY(cell, r.u32le());
  WARAN_TRY(merged, r.u32le());
  t.gnb = gnb;
  t.cell = cell;
  t.cells_merged = merged;
  uint64_t* const counters[] = {
      &t.slots,          &t.slot_overruns,        &t.prb_granted,
      &t.prb_capacity,   &t.slots_scheduled,      &t.sched_faults,
      &t.sanitized_allocs, &t.plugin_calls,       &t.plugin_traps,
      &t.plugin_fuel_exhausted, &t.plugin_declines, &t.plugin_fuel_used,
      &t.quarantines,    &t.frames_rejected,      &t.anomalies,
      &t.trace_writes,   &t.trace_dropped,
  };
  for (uint64_t* c : counters) {
    WARAN_TRY(v, r.u64le());
    *c = v;
  }
  WARAN_CHECK_OK(read_hist(r, t.slot_wall_ns));
  WARAN_CHECK_OK(read_hist(r, t.sched_wall_ns));
  return t;
}

}  // namespace

std::vector<uint8_t> encode_indication(const IndicationReport& report) {
  obs::ObsSpan span(obs::TraceCat::kE2, "encode_indication",
                    static_cast<uint32_t>(report.ues.size()));
  E2Metrics::get().enc_msgs.add();
  ByteWriter w;
  w.u32le(kMsgIndication);
  w.u32le(static_cast<uint32_t>(report.slices.size()));
  for (const SliceReport& s : report.slices) {
    w.u32le(s.slice_id);
    w.u32le(s.quota_prbs);
    w.f64le(s.target_bps);
    w.f64le(s.rate_bps);
  }
  w.u32le(static_cast<uint32_t>(report.ues.size()));
  for (const UeReport& u : report.ues) {
    w.u32le(u.rnti);
    w.u32le(u.serving_cell);
    w.u32le(static_cast<uint32_t>(u.rsrp_serving_dbm));
    w.u32le(static_cast<uint32_t>(u.rsrp_neighbor_dbm));
    w.u32le(u.cqi);
    w.u32le(u.neighbor_cell);
  }
  if (report.telemetry.has_value()) write_telemetry(w, *report.telemetry);
  std::vector<uint8_t> out = w.take();
  E2Metrics::get().enc_bytes.add(out.size());
  return out;
}

Result<IndicationReport> decode_indication(std::span<const uint8_t> bytes) {
  obs::ObsSpan span(obs::TraceCat::kE2, "decode_indication",
                    static_cast<uint32_t>(bytes.size()));
  E2Metrics::get().dec_msgs.add();
  E2Metrics::get().dec_bytes.add(bytes.size());
  ByteReader r(bytes);
  WARAN_TRY(type, r.u32le());
  if (type != kMsgIndication) {
    E2Metrics::get().dec_errors.add();
    return Error::decode("not an indication message");
  }
  IndicationReport report;
  WARAN_TRY(n_slices, r.u32le());
  if (static_cast<uint64_t>(n_slices) * 24 > r.remaining()) {
    return Error::decode("indication: slice count exceeds payload");
  }
  report.slices.reserve(n_slices);
  for (uint32_t i = 0; i < n_slices; ++i) {
    SliceReport s;
    WARAN_TRY(id, r.u32le());
    WARAN_TRY(quota, r.u32le());
    WARAN_TRY(target, r.f64le());
    WARAN_TRY(rate, r.f64le());
    s.slice_id = id;
    s.quota_prbs = quota;
    s.target_bps = target;
    s.rate_bps = rate;
    report.slices.push_back(s);
  }
  WARAN_TRY(n_ues, r.u32le());
  if (static_cast<uint64_t>(n_ues) * 24 > r.remaining()) {
    return Error::decode("indication: UE count exceeds payload");
  }
  report.ues.reserve(n_ues);
  for (uint32_t i = 0; i < n_ues; ++i) {
    UeReport u;
    WARAN_TRY(rnti, r.u32le());
    WARAN_TRY(cell, r.u32le());
    WARAN_TRY(rsrp_s, r.u32le());
    WARAN_TRY(rsrp_n, r.u32le());
    WARAN_TRY(cqi, r.u32le());
    WARAN_TRY(ncell, r.u32le());
    u.rnti = rnti;
    u.serving_cell = cell;
    u.rsrp_serving_dbm = static_cast<int32_t>(rsrp_s);
    u.rsrp_neighbor_dbm = static_cast<int32_t>(rsrp_n);
    u.cqi = cqi;
    u.neighbor_cell = ncell;
    report.ues.push_back(u);
  }
  if (!r.at_end()) {
    // Only the tagged telemetry block may follow the UE records; anything
    // else keeps the strict trailing-bytes rejection.
    WARAN_TRY(tag, r.u32le());
    if (tag != kTelemetryTag) {
      E2Metrics::get().dec_errors.add();
      return Error::decode("indication: trailing bytes");
    }
    auto telemetry = read_telemetry(r);
    if (!telemetry.ok()) {
      E2Metrics::get().dec_errors.add();
      return telemetry.error();
    }
    report.telemetry = *telemetry;
    if (!r.at_end()) {
      E2Metrics::get().dec_errors.add();
      return Error::decode("indication: trailing bytes");
    }
  }
  return report;
}

std::vector<uint8_t> encode_control(const std::vector<ControlAction>& actions) {
  obs::ObsSpan span(obs::TraceCat::kE2, "encode_control",
                    static_cast<uint32_t>(actions.size()));
  E2Metrics::get().enc_msgs.add();
  ByteWriter w;
  w.u32le(kMsgControl);
  w.u32le(static_cast<uint32_t>(actions.size()));
  for (const ControlAction& a : actions) {
    w.u32le(static_cast<uint32_t>(a.type));
    w.u32le(a.a);
    w.u32le(a.b);
  }
  std::vector<uint8_t> out = w.take();
  E2Metrics::get().enc_bytes.add(out.size());
  return out;
}

Result<std::vector<ControlAction>> decode_control(std::span<const uint8_t> bytes) {
  obs::ObsSpan span(obs::TraceCat::kE2, "decode_control",
                    static_cast<uint32_t>(bytes.size()));
  E2Metrics::get().dec_msgs.add();
  E2Metrics::get().dec_bytes.add(bytes.size());
  ByteReader r(bytes);
  WARAN_TRY(type, r.u32le());
  if (type != kMsgControl) {
    E2Metrics::get().dec_errors.add();
    return Error::decode("not a control message");
  }
  WARAN_TRY(n, r.u32le());
  if (static_cast<uint64_t>(n) * 12 > r.remaining()) {
    return Error::decode("control: action count exceeds payload");
  }
  std::vector<ControlAction> actions;
  actions.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    ControlAction a;
    WARAN_TRY(t, r.u32le());
    WARAN_TRY(av, r.u32le());
    WARAN_TRY(bv, r.u32le());
    if (t < 1 || t > 4) return Error::decode("control: unknown action type");
    a.type = static_cast<ActionType>(t);
    a.a = av;
    a.b = bv;
    actions.push_back(a);
  }
  return actions;
}

Result<uint32_t> peek_msg_type(std::span<const uint8_t> bytes) {
  ByteReader r(bytes);
  return r.u32le();
}

}  // namespace waran::ric
