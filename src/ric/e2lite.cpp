#include "ric/e2lite.h"

#include "common/bytes.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace waran::ric {

namespace {

// E2 serialization accounting: message and byte counters per direction.
// Handles resolve once (thread-safe static init); adds are relaxed atomics.
struct E2Metrics {
  obs::Counter& enc_msgs = obs::MetricsRegistry::global().counter(
      "waran_e2_encoded_messages_total");
  obs::Counter& enc_bytes =
      obs::MetricsRegistry::global().counter("waran_e2_encoded_bytes_total");
  obs::Counter& dec_msgs = obs::MetricsRegistry::global().counter(
      "waran_e2_decoded_messages_total");
  obs::Counter& dec_bytes =
      obs::MetricsRegistry::global().counter("waran_e2_decoded_bytes_total");
  obs::Counter& dec_errors =
      obs::MetricsRegistry::global().counter("waran_e2_decode_errors_total");
  static E2Metrics& get() {
    static E2Metrics m;
    return m;
  }
};

}  // namespace

std::vector<uint8_t> encode_indication(const IndicationReport& report) {
  obs::ObsSpan span(obs::TraceCat::kE2, "encode_indication",
                    static_cast<uint32_t>(report.ues.size()));
  E2Metrics::get().enc_msgs.add();
  ByteWriter w;
  w.u32le(kMsgIndication);
  w.u32le(static_cast<uint32_t>(report.slices.size()));
  for (const SliceReport& s : report.slices) {
    w.u32le(s.slice_id);
    w.u32le(s.quota_prbs);
    w.f64le(s.target_bps);
    w.f64le(s.rate_bps);
  }
  w.u32le(static_cast<uint32_t>(report.ues.size()));
  for (const UeReport& u : report.ues) {
    w.u32le(u.rnti);
    w.u32le(u.serving_cell);
    w.u32le(static_cast<uint32_t>(u.rsrp_serving_dbm));
    w.u32le(static_cast<uint32_t>(u.rsrp_neighbor_dbm));
    w.u32le(u.cqi);
    w.u32le(u.neighbor_cell);
  }
  std::vector<uint8_t> out = w.take();
  E2Metrics::get().enc_bytes.add(out.size());
  return out;
}

Result<IndicationReport> decode_indication(std::span<const uint8_t> bytes) {
  obs::ObsSpan span(obs::TraceCat::kE2, "decode_indication",
                    static_cast<uint32_t>(bytes.size()));
  E2Metrics::get().dec_msgs.add();
  E2Metrics::get().dec_bytes.add(bytes.size());
  ByteReader r(bytes);
  WARAN_TRY(type, r.u32le());
  if (type != kMsgIndication) {
    E2Metrics::get().dec_errors.add();
    return Error::decode("not an indication message");
  }
  IndicationReport report;
  WARAN_TRY(n_slices, r.u32le());
  if (static_cast<uint64_t>(n_slices) * 24 > r.remaining()) {
    return Error::decode("indication: slice count exceeds payload");
  }
  report.slices.reserve(n_slices);
  for (uint32_t i = 0; i < n_slices; ++i) {
    SliceReport s;
    WARAN_TRY(id, r.u32le());
    WARAN_TRY(quota, r.u32le());
    WARAN_TRY(target, r.f64le());
    WARAN_TRY(rate, r.f64le());
    s.slice_id = id;
    s.quota_prbs = quota;
    s.target_bps = target;
    s.rate_bps = rate;
    report.slices.push_back(s);
  }
  WARAN_TRY(n_ues, r.u32le());
  if (static_cast<uint64_t>(n_ues) * 24 > r.remaining()) {
    return Error::decode("indication: UE count exceeds payload");
  }
  report.ues.reserve(n_ues);
  for (uint32_t i = 0; i < n_ues; ++i) {
    UeReport u;
    WARAN_TRY(rnti, r.u32le());
    WARAN_TRY(cell, r.u32le());
    WARAN_TRY(rsrp_s, r.u32le());
    WARAN_TRY(rsrp_n, r.u32le());
    WARAN_TRY(cqi, r.u32le());
    WARAN_TRY(ncell, r.u32le());
    u.rnti = rnti;
    u.serving_cell = cell;
    u.rsrp_serving_dbm = static_cast<int32_t>(rsrp_s);
    u.rsrp_neighbor_dbm = static_cast<int32_t>(rsrp_n);
    u.cqi = cqi;
    u.neighbor_cell = ncell;
    report.ues.push_back(u);
  }
  if (!r.at_end()) return Error::decode("indication: trailing bytes");
  return report;
}

std::vector<uint8_t> encode_control(const std::vector<ControlAction>& actions) {
  obs::ObsSpan span(obs::TraceCat::kE2, "encode_control",
                    static_cast<uint32_t>(actions.size()));
  E2Metrics::get().enc_msgs.add();
  ByteWriter w;
  w.u32le(kMsgControl);
  w.u32le(static_cast<uint32_t>(actions.size()));
  for (const ControlAction& a : actions) {
    w.u32le(static_cast<uint32_t>(a.type));
    w.u32le(a.a);
    w.u32le(a.b);
  }
  std::vector<uint8_t> out = w.take();
  E2Metrics::get().enc_bytes.add(out.size());
  return out;
}

Result<std::vector<ControlAction>> decode_control(std::span<const uint8_t> bytes) {
  obs::ObsSpan span(obs::TraceCat::kE2, "decode_control",
                    static_cast<uint32_t>(bytes.size()));
  E2Metrics::get().dec_msgs.add();
  E2Metrics::get().dec_bytes.add(bytes.size());
  ByteReader r(bytes);
  WARAN_TRY(type, r.u32le());
  if (type != kMsgControl) {
    E2Metrics::get().dec_errors.add();
    return Error::decode("not a control message");
  }
  WARAN_TRY(n, r.u32le());
  if (static_cast<uint64_t>(n) * 12 > r.remaining()) {
    return Error::decode("control: action count exceeds payload");
  }
  std::vector<ControlAction> actions;
  actions.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    ControlAction a;
    WARAN_TRY(t, r.u32le());
    WARAN_TRY(av, r.u32le());
    WARAN_TRY(bv, r.u32le());
    if (t < 1 || t > 4) return Error::decode("control: unknown action type");
    a.type = static_cast<ActionType>(t);
    a.a = av;
    a.b = bv;
    actions.push_back(a);
  }
  return actions;
}

Result<uint32_t> peek_msg_type(std::span<const uint8_t> bytes) {
  ByteReader r(bytes);
  return r.u32le();
}

}  // namespace waran::ric
