// Inter-slice scheduler driven by RIC control: quotas come from a table the
// gNB agent updates when the SLA xApp issues set_slice_quota actions. Until
// the RIC says otherwise, active slices split the carrier evenly.
#pragma once

#include <algorithm>
#include <map>

#include "ran/scheduler_iface.h"

namespace waran::ric {

class QuotaTableInterScheduler final : public ran::InterSliceScheduler {
 public:
  void set_quota(uint32_t slice_id, uint32_t prbs) { table_[slice_id] = prbs; }

  std::vector<uint32_t> allocate(uint32_t n_prbs,
                                 const std::vector<ran::SliceDemand>& demands) override {
    std::vector<uint32_t> quotas(demands.size(), 0);
    uint32_t active = 0;
    for (const auto& d : demands) {
      if (d.active_ues > 0) ++active;
    }
    uint32_t remaining = n_prbs;
    for (size_t i = 0; i < demands.size(); ++i) {
      if (demands[i].active_ues == 0) continue;
      auto it = table_.find(demands[i].config->slice_id);
      uint32_t want = it != table_.end() ? it->second : n_prbs / std::max(1u, active);
      quotas[i] = std::min(want, remaining);
      remaining -= quotas[i];
    }
    return quotas;
  }

  const char* name() const override { return "ric-quota-table"; }

 private:
  std::map<uint32_t, uint32_t> table_;
};

}  // namespace waran::ric
