#include "ric/plugin_sources.h"

#include "wcc/compiler.h"

namespace waran::ric::plugin_sources {
namespace {

// Frame layout produced by `frame` and required by `unframe`:
//   0  u32 magic (0xE2A0B1C2)
//   4  u32 payload length
//   8  payload bytes
//   .. u32 checksum = sum of payload bytes (mod 2^32)
// `unframe` returns nonzero (rejecting the frame) on any mismatch — the
// sandbox sanitizes the wire before the host parses anything.
constexpr char kCommFramingSource[] = R"W(
fn checksum(ptr: i32, len: i32) -> i32 {
  var sum: i32 = 0;
  var i: i32 = 0;
  while (i < len) {
    sum = sum + load8u(ptr + i);
    i = i + 1;
  }
  return sum;
}

export fn frame() -> i32 {
  var len: i32 = input_len();
  input_read(8, 0, len);          // payload lands at offset 8
  store32(0, -492785214);         // 0xE2A0B1C2 as signed i32
  store32(4, len);
  store32(8 + len, checksum(8, len));
  output_write(0, 8 + len + 4);
  return 0;
}

export fn unframe() -> i32 {
  var total: i32 = input_len();
  if (total < 12) { return 1; }
  input_read(0, 0, total);
  if (load32(0) != -492785214) { return 1; }
  var len: i32 = load32(4);
  if (len < 0 || len + 12 != total) { return 1; }
  if (load32(8 + len) != checksum(8, len)) { return 1; }
  output_write(8, len);
  return 0;
}
)W";

// Control payload layout (see ric/e2lite.h): u32 msg_type(2), u32 n,
// records { u32 type, u32 a, u32 b }.
constexpr char kControlDispatchSource[] = R"W(
extern fn ran_set_quota(slice: i32, prbs: i32);
extern fn ran_set_cqi_table(index: i32);
extern fn ran_handover(rnti: i32, target_cell: i32);

export fn apply_control() -> i32 {
  var nb: i32 = input_len();
  input_read(0, 0, nb);
  if (nb < 8) { return 1; }
  if (load32(0) != 2) { return 1; }    // not a control message
  var n: i32 = load32(4);
  if (8 + n * 12 > nb) { return 1; }
  var applied: i32 = 0;
  var i: i32 = 0;
  while (i < n) {
    var rec: i32 = 8 + i * 12;
    var kind: i32 = load32(rec);
    if (kind == 1) {
      ran_set_quota(load32(rec + 4), load32(rec + 8));
      applied = applied + 1;
    } else if (kind == 2) {
      ran_set_cqi_table(load32(rec + 4));
      applied = applied + 1;
    } else if (kind == 3) {
      ran_handover(load32(rec + 4), load32(rec + 8));
      applied = applied + 1;
    }
    i = i + 1;
  }
  store32(200000, applied);
  output_write(200000, 4);
  return 0;
}
)W";

// v2 control plugin: same wire format, one more action — set_report_period
// (type 4). Vendors running v1 skip the unknown type silently; enabling the
// feature fleet-wide is a plugin hot-swap (paper §4B: "new features can be
// introduced by developing lightweight plugins").
constexpr char kControlDispatchV2Source[] = R"W(
extern fn ran_set_quota(slice: i32, prbs: i32);
extern fn ran_set_cqi_table(index: i32);
extern fn ran_handover(rnti: i32, target_cell: i32);
extern fn ran_set_report_period(slots: i32);

export fn apply_control() -> i32 {
  var nb: i32 = input_len();
  input_read(0, 0, nb);
  if (nb < 8) { return 1; }
  if (load32(0) != 2) { return 1; }
  var n: i32 = load32(4);
  if (8 + n * 12 > nb) { return 1; }
  var applied: i32 = 0;
  var i: i32 = 0;
  while (i < n) {
    var rec: i32 = 8 + i * 12;
    var kind: i32 = load32(rec);
    if (kind == 1) {
      ran_set_quota(load32(rec + 4), load32(rec + 8));
      applied = applied + 1;
    } else if (kind == 2) {
      ran_set_cqi_table(load32(rec + 4));
      applied = applied + 1;
    } else if (kind == 3) {
      ran_handover(load32(rec + 4), load32(rec + 8));
      applied = applied + 1;
    } else if (kind == 4) {
      ran_set_report_period(load32(rec + 4));
      applied = applied + 1;
    }
    i = i + 1;
  }
  store32(200000, applied);
  output_write(200000, 4);
  return 0;
}
)W";

// Vendor interop shim (the paper's 8-bit -> 12-bit example): vendor A packs
// CQI reports as  u32 n, then n x 3 bytes { u16 rnti, u8 cqi8 } ; vendor B
// wants u32 n, then n x 8 bytes { u32 rnti, u32 cqi12 } with the CQI
// left-shifted into a 12-bit scale.
constexpr char kVendorWidenSource[] = R"W(
export fn widen() -> i32 {
  var nb: i32 = input_len();
  input_read(0, 0, nb);
  if (nb < 4) { return 1; }
  var n: i32 = load32(0);
  if (4 + n * 3 > nb) { return 1; }
  var out: i32 = 200000;
  store32(out, n);
  var i: i32 = 0;
  while (i < n) {
    var src: i32 = 4 + i * 3;
    var dst: i32 = out + 4 + i * 8;
    store32(dst, load16u(src));
    store32(dst + 4, load8u(src + 2) * 16);   // 8-bit value on a 12-bit scale
    i = i + 1;
  }
  output_write(out, 4 + n * 8);
  return 0;
}
)W";

// Slice SLA assurance xApp: reads the indication's slice section and emits
// quota corrections toward each slice's target rate. The carrier width it
// assumes (52 PRBs) is a plugin constant — updating it is a plugin push,
// not a RIC release (the WA-RAN flexibility claim).
constexpr char kSlaXappSource[] = R"W(
global max_prbs: i32 = 52;

export fn on_indication() -> i32 {
  var nb: i32 = input_len();
  input_read(0, 0, nb);
  if (nb < 8 || load32(0) != 1) { return 1; }
  var n_slices: i32 = load32(4);
  if (8 + n_slices * 24 > nb) { return 1; }

  var out: i32 = 200000;
  store32(out, 2);        // msg_type control
  var count: i32 = 0;
  var i: i32 = 0;
  while (i < n_slices) {
    var rec: i32 = 8 + i * 24;
    var slice: i32 = load32(rec);
    var quota: i32 = load32(rec + 4);
    var target: f64 = loadf64(rec + 8);
    var rate: f64 = loadf64(rec + 16);
    var want: i32 = quota;
    if (target > 0.0) {
      if (rate < target * 0.92) {
        want = quota + 1;
        if (want > max_prbs) { want = max_prbs; }
      } else if (rate > target * 1.08 && quota > 2) {
        want = quota - 1;
      }
    }
    if (want != quota) {
      var a: i32 = out + 8 + count * 12;
      store32(a, 1);               // set_slice_quota
      store32(a + 4, slice);
      store32(a + 8, want);
      count = count + 1;
    }
    i = i + 1;
  }
  store32(out + 4, count);
  output_write(out, 8 + count * 12);
  return 0;
}
)W";

// Traffic-steering xApp: A3-style event — hand a UE over when the neighbor
// cell is `hysteresis_db` stronger than the serving cell.
constexpr char kSteerXappSource[] = R"W(
global hysteresis_db: i32 = 3;

export fn on_indication() -> i32 {
  var nb: i32 = input_len();
  input_read(0, 0, nb);
  if (nb < 8 || load32(0) != 1) { return 1; }
  var n_slices: i32 = load32(4);
  var ue_base: i32 = 8 + n_slices * 24;
  if (ue_base + 4 > nb) { return 1; }
  var n_ues: i32 = load32(ue_base);
  if (ue_base + 4 + n_ues * 24 > nb) { return 1; }

  var out: i32 = 200000;
  store32(out, 2);
  var count: i32 = 0;
  var i: i32 = 0;
  while (i < n_ues) {
    var rec: i32 = ue_base + 4 + i * 24;
    var rsrp_s: i32 = load32(rec + 8);
    var rsrp_n: i32 = load32(rec + 12);
    if (rsrp_n > rsrp_s + hysteresis_db) {
      var a: i32 = out + 8 + count * 12;
      store32(a, 3);               // handover
      store32(a + 4, load32(rec));       // rnti
      store32(a + 8, load32(rec + 20));  // neighbor cell
      count = count + 1;
    }
    i = i + 1;
  }
  store32(out + 4, count);
  output_write(out, 8 + count * 12);
  return 0;
}
)W";

// Messaging demo: forwards each indication as a one-byte note to xApp 0 via
// the RIC host's xapp_send, and counts notes it receives itself.
constexpr char kCounterXappSource[] = R"W(
extern fn xapp_send(dst: i32, ptr: i32, len: i32);

global received: i32 = 0;

export fn on_indication() -> i32 {
  store8(0, 42);
  xapp_send(0, 0, 1);
  store32(100, 2);     // empty control message
  store32(104, 0);
  output_write(100, 8);
  return 0;
}

export fn on_message() -> i32 {
  received = received + input_len();
  store32(100, received);
  output_write(100, 4);
  return 0;
}
)W";

}  // namespace

Result<std::vector<uint8_t>> comm_framing() { return wcc::compile(kCommFramingSource); }
Result<std::vector<uint8_t>> control_dispatch() { return wcc::compile(kControlDispatchSource); }
Result<std::vector<uint8_t>> control_dispatch_v2() {
  return wcc::compile(kControlDispatchV2Source);
}
Result<std::vector<uint8_t>> vendor_widen() { return wcc::compile(kVendorWidenSource); }
Result<std::vector<uint8_t>> sla_xapp() { return wcc::compile(kSlaXappSource); }
Result<std::vector<uint8_t>> steer_xapp() { return wcc::compile(kSteerXappSource); }
Result<std::vector<uint8_t>> counter_xapp() { return wcc::compile(kCounterXappSource); }

}  // namespace waran::ric::plugin_sources
