// E2-node side of the WA-RAN RIC design (paper Fig. 4, left): the gNB hosts
// two plugins —
//   "comm" wraps the wire protocol (frame/unframe), and
//   "ctl"  decodes control payloads and drives the gNB through host
//          functions the agent exposes (env.ran_set_quota / ran_set_cqi_table /
//          ran_handover).
// The agent periodically publishes an E2-lite indication built from live
// MAC state and applies whatever control the RIC sends back.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <span>

#include "obs/anomaly.h"
#include "plugin/manager.h"
#include "ran/mac.h"
#include "ric/e2lite.h"
#include "ric/quota_inter.h"
#include "ric/transport.h"

namespace waran::ric {

struct AgentStats {
  uint64_t indications_sent = 0;
  uint64_t frames_received = 0;
  uint64_t frames_rejected = 0;  // failed the comm plugin's sanitization
  uint64_t quota_updates = 0;
  uint64_t cqi_table_updates = 0;
  uint64_t handovers = 0;
  uint64_t period_updates = 0;
  // Aggregate comm+ctl plugin execution cost on the gNB's critical path,
  // from the engine's per-call CallStats (the slot-budget share the
  // sandboxed wire/control plugins consumed).
  uint64_t plugin_fuel_used = 0;
  uint64_t plugin_wall_ns = 0;
};

class GnbAgent {
 public:
  /// Per-UE radio context for steering decisions (the simulator's stand-in
  /// for RRC measurement reports).
  struct UeRadio {
    int32_t rsrp_serving_dbm = -90;
    int32_t rsrp_neighbor_dbm = -140;
    uint32_t neighbor_cell = 0;
  };

  /// `quotas` may be null if the RIC never adjusts slicing. The agent keeps
  /// references; all must outlive it.
  GnbAgent(uint32_t cell_id, ran::GnbMac& mac, QuotaTableInterScheduler* quotas,
           Duplex& link, Duplex::Side side);

  /// Installs the communication plugin (must export frame/unframe).
  Status load_comm_plugin(std::span<const uint8_t> module_bytes);
  /// Installs the control-dispatch plugin (must export apply_control).
  Status load_control_plugin(std::span<const uint8_t> module_bytes);

  void set_ue_radio(uint32_t rnti, UeRadio radio) { radio_[rnti] = radio; }

  /// Called by the embedder when the RIC orders a handover (the simulator
  /// moves the UE to another GnbMac).
  void set_handover_handler(std::function<void(uint32_t rnti, uint32_t cell)> fn) {
    on_handover_ = std::move(fn);
  }

  /// Installs a fleet-telemetry provider: called on every send_indication
  /// (on the agent's own thread, so per-cell collection is race-free) and
  /// the returned summary ships as the indication's tagged telemetry block.
  /// Null return or no provider = no block (wire-compatible with v2).
  void set_telemetry_provider(std::function<const obs::CellTelemetry*()> fn) {
    telemetry_provider_ = std::move(fn);
  }

  /// Builds and sends one indication from current MAC state.
  Status send_indication();

  /// Drains inbound frames, sanitizes them through the comm plugin, and
  /// applies control messages through the control plugin.
  Status poll();

  const AgentStats& stats() const { return stats_; }
  uint32_t cqi_table_index() const { return cqi_table_index_; }
  uint32_t cell_id() const { return cell_id_; }

  /// Call-cost distribution for one of the agent's plugin slots ("comm" or
  /// "ctl"); null if that plugin is not loaded.
  const CallCostAcc* plugin_cost(const std::string& slot) const {
    return plugins_.cost(slot);
  }

  /// The agent's plugin manager ("comm" + "ctl" slots, domain
  /// "gnb<cell_id>") — for health introspection and fault injection.
  plugin::PluginManager& plugins() { return plugins_; }

  /// Slots between indications (RIC-configurable via the v2 control plugin
  /// and the set_report_period action; default 100 = 100 ms).
  uint32_t report_period_slots() const { return report_period_slots_; }

  /// Trap/anomaly journal entries recorded under this agent's observability
  /// domain ("gnb<cell_id>"): comm/ctl plugin traps, fuel exhaustion,
  /// quarantines and rejected frames, with slot context.
  std::vector<obs::AnomalyRecord> anomalies() const {
    return obs::AnomalyJournal::global().snapshot(plugins_.domain());
  }

 private:
  wasm::Linker control_host_functions();
  void account_plugin(const std::string& slot);

  uint32_t cell_id_;
  ran::GnbMac& mac_;
  QuotaTableInterScheduler* quotas_;
  Duplex& link_;
  Duplex::Side side_;
  plugin::PluginManager plugins_;
  std::map<uint32_t, UeRadio> radio_;
  std::function<void(uint32_t, uint32_t)> on_handover_;
  std::function<const obs::CellTelemetry*()> telemetry_provider_;
  AgentStats stats_;
  uint32_t cqi_table_index_ = 0;
  uint32_t report_period_slots_ = 100;
};

}  // namespace waran::ric
