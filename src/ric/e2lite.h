// E2-lite: the message model between the gNB (E2 node) and the near-RT RIC
// in WA-RAN's Fig. 4 design. Deliberately *not* the 3GPP/O-RAN E2AP — the
// paper's whole point is that the wire protocol is an implementation detail
// wrapped by communication plugins, so WA-RAN defines a minimal report /
// control schema and lets plugins own framing, encoding and transport.
//
// Flat payload layout (little endian), shared with the W plugin sources in
// comm_plugins.cpp / xapps.cpp:
//
// Indication (msg_type 1):
//   0  u32 msg_type
//   4  u32 n_slices
//   8  slice records, 24 B: { u32 slice_id, u32 quota_prbs,
//                             f64 target_bps, f64 rate_bps }
//   .. u32 n_ues
//   .. UE records, 24 B: { u32 rnti, u32 serving_cell, i32 rsrp_serving_dbm,
//                          i32 rsrp_neighbor_dbm, u32 cqi, u32 neighbor_cell }
//   .. optional telemetry block (v3 extension; the fleet plane's per-cell
//      summary riding in-band — see obs/fleet.h):
//        u32 tag 'TEL1' (0x314c4554), u32 len,
//        { u32 gnb, u32 cell, u32 cells_merged, 17 x u64 counters,
//          2 x histogram state (65 x u64 buckets, u64 sum, u64 count) }
//      The W xApps bound their reads by n_slices/n_ues and skip the tail
//      untouched; the host decoder round-trips it exactly. Absent tag =
//      older sender; any other trailing bytes stay a decode error.
//
// Control (msg_type 2):
//   0  u32 msg_type
//   4  u32 n_actions
//   8  action records, 12 B: { u32 type, u32 a, u32 b }
//      type 1 = set_slice_quota(slice_id=a, prbs=b)
//      type 2 = set_cqi_table(index=a)
//      type 3 = handover(rnti=a, target_cell=b)
//      type 4 = set_report_period(slots=a)   [v2 extension: older control
//               plugins skip it silently — the WA-RAN upgrade story]
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/result.h"
#include "obs/fleet.h"

namespace waran::ric {

inline constexpr uint32_t kMsgIndication = 1;
inline constexpr uint32_t kMsgControl = 2;

struct SliceReport {
  uint32_t slice_id = 0;
  uint32_t quota_prbs = 0;
  double target_bps = 0;
  double rate_bps = 0;

  bool operator==(const SliceReport&) const = default;
};

struct UeReport {
  uint32_t rnti = 0;
  uint32_t serving_cell = 0;
  int32_t rsrp_serving_dbm = -90;
  int32_t rsrp_neighbor_dbm = -140;
  uint32_t cqi = 0;
  uint32_t neighbor_cell = 0;

  bool operator==(const UeReport&) const = default;
};

struct IndicationReport {
  std::vector<SliceReport> slices;
  std::vector<UeReport> ues;
  /// Per-cell fleet telemetry summary (optional tagged tail on the wire).
  std::optional<obs::CellTelemetry> telemetry;

  bool operator==(const IndicationReport&) const = default;
};

/// Telemetry-block tag ("TEL1" little endian) and fixed payload size.
inline constexpr uint32_t kTelemetryTag = 0x314c4554;

enum class ActionType : uint32_t {
  kSetSliceQuota = 1,
  kSetCqiTable = 2,
  kHandover = 3,
  kSetReportPeriod = 4,
};

struct ControlAction {
  ActionType type = ActionType::kSetSliceQuota;
  uint32_t a = 0;
  uint32_t b = 0;

  bool operator==(const ControlAction&) const = default;
};

std::vector<uint8_t> encode_indication(const IndicationReport& report);
Result<IndicationReport> decode_indication(std::span<const uint8_t> bytes);

std::vector<uint8_t> encode_control(const std::vector<ControlAction>& actions);
Result<std::vector<ControlAction>> decode_control(std::span<const uint8_t> bytes);

/// Reads the msg_type header field (kMsgIndication / kMsgControl).
Result<uint32_t> peek_msg_type(std::span<const uint8_t> bytes);

}  // namespace waran::ric
