#include "ric/near_rt_ric.h"

#include "common/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace waran::ric {

namespace {

struct RicMetrics {
  obs::Counter& indications = obs::MetricsRegistry::global().counter(
      "waran_ric_indications_total");
  obs::Counter& actions =
      obs::MetricsRegistry::global().counter("waran_ric_actions_sent_total");
  obs::Counter& frames_rejected = obs::MetricsRegistry::global().counter(
      "waran_ric_frames_rejected_total");
  obs::Counter& garbage_outputs = obs::MetricsRegistry::global().counter(
      "waran_ric_xapp_garbage_outputs_total");
  static RicMetrics& get() {
    static RicMetrics m;
    return m;
  }
};

}  // namespace

using wasm::FuncType;
using wasm::HostContext;
using wasm::HostFunc;
using wasm::ValType;
using wasm::Value;

Status NearRtRic::load_comm_plugin(std::span<const uint8_t> module_bytes) {
  if (plugins_.has("comm")) return plugins_.swap("comm", module_bytes);
  return plugins_.install("comm", module_bytes);
}

Result<uint32_t> NearRtRic::add_xapp(const std::string& name,
                                     std::span<const uint8_t> module_bytes) {
  std::string slot = "xapp:" + name;
  if (plugins_.has(slot)) return Error::state("xApp already registered: " + name);

  wasm::Linker host;
  host.register_func(
      "env", "xapp_send",
      HostFunc{FuncType{{ValType::kI32, ValType::kI32, ValType::kI32}, {}},
               [this](HostContext& ctx, std::span<const Value> args)
                   -> Result<std::optional<Value>> {
                 uint32_t dst = args[0].as_u32();
                 uint32_t ptr = args[1].as_u32();
                 uint32_t len = args[2].as_u32();
                 if (dst >= inboxes_.size()) {
                   return Error::trap("xapp_send: destination out of range");
                 }
                 if (len > (1u << 16)) {
                   return Error::trap("xapp_send: message too large");
                 }
                 std::vector<uint8_t> msg(len);
                 WARAN_CHECK_OK(ctx.instance.memory()->read_bytes(ptr, msg));
                 inboxes_[dst].push_back(std::move(msg));
                 return std::optional<Value>{};
               }});

  WARAN_CHECK_OK(plugins_.install(slot, module_bytes, host));
  xapps_.push_back(slot);
  inboxes_.emplace_back();
  return static_cast<uint32_t>(xapps_.size() - 1);
}

void NearRtRic::account_xapp(const std::string& slot) {
  plugin::Plugin* p = plugins_.plugin(slot);
  if (p == nullptr) return;
  const wasm::CallStats& cs = p->last_call_stats();
  stats_.xapp_fuel_used += cs.fuel_used;
  stats_.xapp_wall_ns += cs.wall_ns;
}

Status NearRtRic::dispatch_indication(std::span<const uint8_t> payload, LinkRef& origin) {
  obs::ObsSpan span(obs::TraceCat::kRic, "dispatch_indication",
                    static_cast<uint32_t>(payload.size()));
  ++stats_.indications_processed;
  RicMetrics::get().indications.add();
  // Host-side decode feeds the fleet reconstruction; the xApps still get
  // the raw payload (they own their own parsing). A payload that fails the
  // host decode just carries no telemetry — dispatch continues.
  if (auto decoded = decode_indication(payload);
      decoded.ok() && decoded->telemetry.has_value()) {
    fleet_view_.update(*decoded->telemetry);
    ++stats_.telemetry_updates;
  }
  std::vector<ControlAction> aggregated;
  for (const std::string& slot : xapps_) {
    auto out = plugins_.call(slot, "on_indication", payload);
    account_xapp(slot);
    if (!out.ok()) {
      ++stats_.xapp_faults;
      WARAN_LOG(kDebug, "ric", slot << " fault: " << out.error().message);
      continue;
    }
    if (out->empty()) continue;
    auto actions = decode_control(*out);
    if (!actions.ok()) {
      // xApp emitted garbage: sanitize by dropping its contribution.
      ++stats_.xapp_faults;
      RicMetrics::get().garbage_outputs.add();
      obs::AnomalyJournal::global().record(obs::AnomalyKind::kSanitized,
                                           plugins_.domain(), slot,
                                           actions.error().message);
      continue;
    }
    aggregated.insert(aggregated.end(), actions->begin(), actions->end());
  }
  deliver_messages();

  if (!aggregated.empty()) {
    std::vector<uint8_t> payload_out = encode_control(aggregated);
    WARAN_TRY(frame, plugins_.call("comm", "frame", payload_out));
    origin.link->send(origin.side, std::move(frame));
    ++stats_.control_frames_sent;
    stats_.actions_sent += aggregated.size();
    RicMetrics::get().actions.add(aggregated.size());
  }
  last_actions_ = std::move(aggregated);
  return {};
}

void NearRtRic::deliver_messages() {
  // Deliver until quiescent, with a hard round bound so two xApps cannot
  // ping-pong forever.
  for (int round = 0; round < 8; ++round) {
    bool any = false;
    for (size_t i = 0; i < xapps_.size(); ++i) {
      while (!inboxes_[i].empty()) {
        std::vector<uint8_t> msg = std::move(inboxes_[i].front());
        inboxes_[i].pop_front();
        any = true;
        plugin::Plugin* p = plugins_.plugin(xapps_[i]);
        if (p == nullptr || !p->has_export("on_message")) continue;
        auto r = plugins_.call(xapps_[i], "on_message", msg);
        account_xapp(xapps_[i]);
        if (!r.ok()) {
          ++stats_.xapp_faults;
        } else {
          ++stats_.messages_delivered;
        }
      }
    }
    if (!any) break;
  }
}

Status NearRtRic::poll() {
  if (!plugins_.has("comm")) return Error::state("no communication plugin loaded");
  for (LinkRef& link : links_) {
    while (auto frame = link.link->receive(link.side)) {
      auto payload = plugins_.call("comm", "unframe", *frame);
      if (!payload.ok()) {
        ++stats_.frames_rejected;
        RicMetrics::get().frames_rejected.add();
        obs::AnomalyJournal::global().record(obs::AnomalyKind::kFrameRejected,
                                             plugins_.domain(), "comm",
                                             payload.error().message);
        continue;
      }
      auto type = peek_msg_type(*payload);
      if (!type.ok()) {
        ++stats_.frames_rejected;
        RicMetrics::get().frames_rejected.add();
        continue;
      }
      if (*type == kMsgIndication) {
        WARAN_CHECK_OK(dispatch_indication(*payload, link));
      }
      // Control frames arriving at the RIC are ignored (loop prevention).
    }
  }
  return {};
}

}  // namespace waran::ric
