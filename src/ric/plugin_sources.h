// W sources + compiled bytes for the RIC-side plugin corpus (paper §4B):
//
// Communication plugins — own the wire protocol between E2 node and RIC:
//   comm_framing()   exports `frame` / `unframe`: length + checksum framing;
//                    corrupt frames are rejected *inside the sandbox*, so
//                    malformed traffic never reaches host parsing (§3B).
//   control_dispatch() exports `apply_control`: decodes control payloads and
//                    drives the gNB through `extern fn` host functions
//                    (env.ran_set_quota / ran_set_cqi_table / ran_handover).
//   vendor_widen()   exports `widen`: the introduction's interop example —
//                    converts vendor A's packed 8-bit CQI report records to
//                    vendor B's 12-bit schema.
//
// xApp plugins — control logic hosted by the near-RT RIC:
//   sla_xapp()       slice SLA assurance: nudges slice quotas toward targets.
//   steer_xapp()     traffic steering: A3-style handover on RSRP + hysteresis.
//   counter_xapp()   minimal messaging demo (xapp_send / on_message).
#pragma once

#include <string>
#include <vector>

#include "common/result.h"

namespace waran::ric::plugin_sources {

Result<std::vector<uint8_t>> comm_framing();
Result<std::vector<uint8_t>> control_dispatch();
/// v2 of the control plugin: additionally understands the
/// set_report_period action (type 4). Deploying a new control feature is a
/// plugin hot-swap, not a protocol or firmware change.
Result<std::vector<uint8_t>> control_dispatch_v2();
Result<std::vector<uint8_t>> vendor_widen();
Result<std::vector<uint8_t>> sla_xapp();
Result<std::vector<uint8_t>> steer_xapp();
Result<std::vector<uint8_t>> counter_xapp();

/// The frame magic the comm plugin emits (tests assert on-wire format).
inline constexpr uint32_t kFrameMagic = 0xE2A0B1C2;

}  // namespace waran::ric::plugin_sources
