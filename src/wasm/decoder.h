// WebAssembly binary-format decoder: bytes -> waran::wasm::Module.
//
// The decoder enforces structural well-formedness (section order, counts,
// LEB128 canonicality bounds, body sizes) and lowers function bodies into
// flat instruction vectors with structured-control targets resolved. Type
// correctness is the validator's job (validator.h); decode + validate
// together implement the spec's "module validation".
#pragma once

#include <cstdint>
#include <span>

#include "common/result.h"
#include "wasm/module.h"

namespace waran::wasm {

/// Embedder-imposed resource bounds, applied while decoding so a hostile
/// module cannot balloon memory before validation even starts. Defaults are
/// generous for RAN plugins (which are tiny) yet far below anything
/// dangerous for an edge node.
struct DecodeLimits {
  uint32_t max_types = 1024;
  uint32_t max_imports = 512;
  uint32_t max_functions = 4096;
  uint32_t max_globals = 1024;
  uint32_t max_exports = 1024;
  uint32_t max_elem_segments = 256;
  uint32_t max_data_segments = 256;
  uint32_t max_locals = 4096;          // per function, params included
  uint32_t max_body_instrs = 262144;   // per function
  uint32_t max_params = 64;
  uint32_t max_results = 1;
  uint32_t max_br_table_targets = 4096;
};

Result<Module> decode_module(std::span<const uint8_t> bytes,
                             const DecodeLimits& limits = {});

}  // namespace waran::wasm
