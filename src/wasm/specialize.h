// Tier-2 specialization: profile-guided rewriting of translated micro-op
// streams. The interpreter (run_specialized in instance.cpp) counts calls
// per TranslatedFunc and aggregates taken-branch bias; once a function
// crosses the tier-up threshold its stream is rewritten — superinstruction
// re-fusion over straight-line runs, jump-chain collapse, fuel segments
// merged into their consumers — and the rewritten stream is installed for
// every subsequent call.
//
// Correctness contract: a specialized stream must be observationally
// IDENTICAL to its tier-1 origin — results, traps (including messages),
// fuel accounting, instructions retired, and memory contents. Fuel
// exactness is preserved structurally: merged-charge micro-ops replay the
// exact WARAN_CHARGE sequence of the ops they replace (two charges stay two
// charges), so a budget that dies between the original charge points dies
// at the same point in the specialized stream. Fusion never crosses a
// branch target or a call-resume point, so baked branch targets and frame
// ip indices stay valid.
//
// Threading contract: a CodeCache is single-writer. The rt layer pins each
// cell's engines to one CellExecutor worker, tier-up runs synchronously on
// that worker inside push_frame, and the cache is only ever touched from
// that thread — per-cell ownership needs no locks. Streams are stored in a
// list so installed pointers stay stable while later tier-ups append and
// other modules' entries are dropped.
//
// Lifecycle contract: entries are keyed by the tier-1 stream's address, so
// a key must never dangle and an address must never be reused while its
// entry lives. Both are guaranteed by retention + refcounting: every entry
// holds a shared_ptr to its origin TranslatedModule (a hot-swapped module's
// streams stay alive — and its addresses stay unique — for as long as the
// cache still maps them), and every kSpecialized instance retains its
// module against the cache for its own lifetime. When the last instance of
// a module releases, that module's entries are dropped, so a long-lived
// per-cell cache stays bounded by the modules actually running, not by the
// history of hot swaps.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>

#include "wasm/translate.h"

namespace waran::wasm {

/// Aggregate execution profile for one defined function, maintained by the
/// specializing interpreter while the function still runs its tier-1
/// stream. Branch bias is aggregated per function (not per site): it only
/// gates the speculative jump-chain collapse of conditional jumps, where a
/// coarse signal is enough and a per-site table would cost warm-path space.
struct FuncProfile {
  uint64_t calls = 0;
  uint64_t cond_evals = 0;  ///< kJumpZ/kJumpNZ executions (tier-1 stream)
  uint64_t cond_taken = 0;  ///< ... of which took the jump
};

/// A specialized stream plus provenance for introspection/disasm. The
/// retained origin module keeps `origin` (and every other key of the same
/// module) alive and address-unique for as long as the entry exists, even
/// after the plugin that tiered it up was hot-swapped away.
struct SpecializedFunc {
  TranslatedFunc func;
  const TranslatedFunc* origin = nullptr;
  std::shared_ptr<const TranslatedModule> origin_module;
  uint32_t uops_before = 0;
  uint32_t uops_after = 0;
};

/// Pure rewrite of one tier-1 stream. Never fails: when nothing fuses the
/// result is an identical copy. `profile` only influences which speculative
/// rewrites are taken (conditional jump-chain collapse requires a taken
/// bias >= 1/2); it never affects semantics.
TranslatedFunc specialize(const TranslatedFunc& tf, const FuncProfile& profile);

/// Per-cell store of specialized streams, keyed by the tier-1 stream's
/// address (module translations are shared, so instances of one module
/// sharing a cache also share each specialized stream). All methods must be
/// called from the owning cell's worker thread.
class CodeCache {
 public:
  /// Returns the specialized stream for `origin` — a function of
  /// `origin_module` — rewriting it on first request (this is the only
  /// allocating step of the tier-2 backend; the warm path after tier-up
  /// never allocates). The entry retains `origin_module`, so the key stays
  /// valid and unique for the entry's whole lifetime.
  const TranslatedFunc* tier_up(
      const std::shared_ptr<const TranslatedModule>& origin_module,
      const TranslatedFunc* origin, const FuncProfile& profile);

  /// Lookup without tiering; null when `origin` has not tiered up here.
  const TranslatedFunc* lookup(const TranslatedFunc* origin) const;

  /// Instance-lifetime refcount per origin module. Every kSpecialized
  /// instance retains its translation at instantiation and releases it on
  /// destruction; when the count reaches zero — the module was hot-swapped
  /// away or removed and no frame can still reference its streams — the
  /// module's entries are dropped, bounding the cache across swaps.
  void retain_module(const TranslatedModule* module);
  void release_module(const TranslatedModule* module);

  /// Number of distinct origins currently specialized into this cache.
  size_t size() const { return specialized_.size(); }

  /// tier_up() calls that actually rewrote (cache misses). Monotonic: not
  /// decremented when a module's entries are dropped.
  uint64_t tier_ups() const { return tier_ups_; }

  /// Provenance records, in tier-up order (disasm/introspection).
  const std::list<SpecializedFunc>& entries() const { return specialized_; }

 private:
  std::list<SpecializedFunc> specialized_;  // list: stable addresses, O(1) drop
  std::map<const TranslatedFunc*, const TranslatedFunc*> by_origin_;
  std::map<const TranslatedModule*, uint32_t> module_refs_;
  uint64_t tier_ups_ = 0;
};

}  // namespace waran::wasm
