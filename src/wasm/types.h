// Core type definitions for the WA-RAN WebAssembly engine: value types,
// function types, limits, and the untagged runtime value cell.
//
// Scope: WebAssembly core MVP (i32/i64/f32/f64; no SIMD, threads, or
// reference types), plus the saturating-truncation and bulk-memory
// mini-extensions — everything the WA-RAN plugins need and nothing more.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

namespace waran::wasm {

enum class ValType : uint8_t {
  kI32 = 0x7f,
  kI64 = 0x7e,
  kF32 = 0x7d,
  kF64 = 0x7c,
};

const char* to_string(ValType t);
bool is_val_type(uint8_t b);

/// Function signature. MVP multi-value is allowed by the decoder but the
/// validator restricts blocks to <=1 result; functions may return 0 or 1.
struct FuncType {
  std::vector<ValType> params;
  std::vector<ValType> results;

  bool operator==(const FuncType&) const = default;
};

std::string to_string(const FuncType& t);

/// Memory/table limits in units of pages / elements.
struct Limits {
  uint32_t min = 0;
  std::optional<uint32_t> max;

  bool operator==(const Limits&) const = default;
};

constexpr uint32_t kPageSize = 65536;
/// Hard cap we impose on any instance memory (256 MiB) — an embedder limit,
/// deliberately far below the 4 GiB architectural maximum: RAN edge nodes
/// are memory constrained (paper §6B).
constexpr uint32_t kMaxMemoryPages = 4096;

/// Untagged 64-bit value cell. The validator guarantees type correctness, so
/// runtime values carry no tag (this keeps the operand stack POD and fast).
struct Value {
  uint64_t bits = 0;

  static Value from_i32(int32_t v) {
    Value x;
    x.bits = static_cast<uint32_t>(v);
    return x;
  }
  static Value from_u32(uint32_t v) {
    Value x;
    x.bits = v;
    return x;
  }
  static Value from_i64(int64_t v) {
    Value x;
    x.bits = static_cast<uint64_t>(v);
    return x;
  }
  static Value from_u64(uint64_t v) {
    Value x;
    x.bits = v;
    return x;
  }
  static Value from_f32(float v) {
    Value x;
    uint32_t b;
    std::memcpy(&b, &v, 4);
    x.bits = b;
    return x;
  }
  static Value from_f64(double v) {
    Value x;
    std::memcpy(&x.bits, &v, 8);
    return x;
  }

  int32_t as_i32() const { return static_cast<int32_t>(static_cast<uint32_t>(bits)); }
  uint32_t as_u32() const { return static_cast<uint32_t>(bits); }
  int64_t as_i64() const { return static_cast<int64_t>(bits); }
  uint64_t as_u64() const { return bits; }
  float as_f32() const {
    float v;
    uint32_t b = static_cast<uint32_t>(bits);
    std::memcpy(&v, &b, 4);
    return v;
  }
  double as_f64() const {
    double v;
    std::memcpy(&v, &bits, 8);
    return v;
  }
};

/// A typed value, used at API boundaries (host calls, tests) where the type
/// is not statically known.
struct TypedValue {
  ValType type;
  Value value;

  static TypedValue i32(int32_t v) { return {ValType::kI32, Value::from_i32(v)}; }
  static TypedValue i64(int64_t v) { return {ValType::kI64, Value::from_i64(v)}; }
  static TypedValue f32(float v) { return {ValType::kF32, Value::from_f32(v)}; }
  static TypedValue f64(double v) { return {ValType::kF64, Value::from_f64(v)}; }
};

}  // namespace waran::wasm
