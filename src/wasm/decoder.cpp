#include "wasm/decoder.h"

#include <vector>

#include "common/bytes.h"

namespace waran::wasm {
namespace {

constexpr uint8_t kSectionCustom = 0;
constexpr uint8_t kSectionType = 1;
constexpr uint8_t kSectionImport = 2;
constexpr uint8_t kSectionFunction = 3;
constexpr uint8_t kSectionTable = 4;
constexpr uint8_t kSectionMemory = 5;
constexpr uint8_t kSectionGlobal = 6;
constexpr uint8_t kSectionExport = 7;
constexpr uint8_t kSectionStart = 8;
constexpr uint8_t kSectionElement = 9;
constexpr uint8_t kSectionCode = 10;
constexpr uint8_t kSectionData = 11;
constexpr uint8_t kSectionDataCount = 12;

class Decoder {
 public:
  Decoder(std::span<const uint8_t> bytes, const DecodeLimits& limits)
      : r_(bytes), limits_(limits) {}

  Result<Module> run();

 private:
  ByteReader r_;
  const DecodeLimits& limits_;
  Module m_;
  uint32_t declared_func_count_ = 0;  // from the function section

  Status decode_type_section(ByteReader& s);
  Status decode_import_section(ByteReader& s);
  Status decode_function_section(ByteReader& s);
  Status decode_table_section(ByteReader& s);
  Status decode_memory_section(ByteReader& s);
  Status decode_global_section(ByteReader& s);
  Status decode_export_section(ByteReader& s);
  Status decode_start_section(ByteReader& s);
  Status decode_element_section(ByteReader& s);
  Status decode_code_section(ByteReader& s);
  Status decode_data_section(ByteReader& s);

  Result<ValType> val_type(ByteReader& s);
  Result<Limits> limits(ByteReader& s);
  Result<TableType> table_type(ByteReader& s);
  Result<GlobalType> global_type(ByteReader& s);
  Result<ConstExpr> const_expr(ByteReader& s);
  Result<Code> func_body(ByteReader& s, size_t n_params);
  Status link_control(Code& code);
};

Result<ValType> Decoder::val_type(ByteReader& s) {
  auto b = s.u8();
  if (!b.ok()) return b.error();
  if (!is_val_type(*b)) return Error::decode("invalid value type 0x" + std::to_string(*b));
  return static_cast<ValType>(*b);
}

Result<Limits> Decoder::limits(ByteReader& s) {
  auto flag = s.u8();
  if (!flag.ok()) return flag.error();
  if (*flag > 1) return Error::decode("invalid limits flag");
  auto min = s.uleb32();
  if (!min.ok()) return min.error();
  Limits l;
  l.min = *min;
  if (*flag == 1) {
    auto max = s.uleb32();
    if (!max.ok()) return max.error();
    if (*max < *min) return Error::decode("limits: max < min");
    l.max = *max;
  }
  return l;
}

Result<TableType> Decoder::table_type(ByteReader& s) {
  auto et = s.u8();
  if (!et.ok()) return et.error();
  if (*et != 0x70) return Error::decode("table element type must be funcref");
  auto l = limits(s);
  if (!l.ok()) return l.error();
  return TableType{*l};
}

Result<GlobalType> Decoder::global_type(ByteReader& s) {
  auto t = val_type(s);
  if (!t.ok()) return t.error();
  auto mut = s.u8();
  if (!mut.ok()) return mut.error();
  if (*mut > 1) return Error::decode("invalid global mutability flag");
  return GlobalType{*t, *mut == 1};
}

Result<ConstExpr> Decoder::const_expr(ByteReader& s) {
  auto op = s.u8();
  if (!op.ok()) return op.error();
  ConstExpr e;
  switch (*op) {
    case 0x41: {  // i32.const
      auto v = s.sleb32();
      if (!v.ok()) return v.error();
      e.kind = ConstExpr::Kind::kI32;
      e.value = Value::from_i32(*v);
      break;
    }
    case 0x42: {  // i64.const
      auto v = s.sleb(64);
      if (!v.ok()) return v.error();
      e.kind = ConstExpr::Kind::kI64;
      e.value = Value::from_i64(*v);
      break;
    }
    case 0x43: {  // f32.const
      auto v = s.f32le();
      if (!v.ok()) return v.error();
      e.kind = ConstExpr::Kind::kF32;
      e.value = Value::from_f32(*v);
      break;
    }
    case 0x44: {  // f64.const
      auto v = s.f64le();
      if (!v.ok()) return v.error();
      e.kind = ConstExpr::Kind::kF64;
      e.value = Value::from_f64(*v);
      break;
    }
    case 0x23: {  // global.get
      auto idx = s.uleb32();
      if (!idx.ok()) return idx.error();
      e.kind = ConstExpr::Kind::kGlobalGet;
      e.global_index = *idx;
      break;
    }
    default:
      return Error::decode("unsupported constant-expression opcode");
  }
  auto end = s.u8();
  if (!end.ok()) return end.error();
  if (*end != 0x0b) return Error::decode("constant expression must end with `end`");
  return e;
}

Status Decoder::decode_type_section(ByteReader& s) {
  auto count = s.uleb32();
  if (!count.ok()) return count.error();
  if (*count > limits_.max_types) return Error::limit_exceeded("too many types");
  m_.types.reserve(*count);
  for (uint32_t i = 0; i < *count; ++i) {
    auto form = s.u8();
    if (!form.ok()) return form.error();
    if (*form != 0x60) return Error::decode("type section: expected functype (0x60)");
    FuncType ft;
    auto np = s.uleb32();
    if (!np.ok()) return np.error();
    if (*np > limits_.max_params) return Error::limit_exceeded("too many parameters");
    ft.params.reserve(*np);
    for (uint32_t j = 0; j < *np; ++j) {
      auto t = val_type(s);
      if (!t.ok()) return t.error();
      ft.params.push_back(*t);
    }
    auto nr = s.uleb32();
    if (!nr.ok()) return nr.error();
    if (*nr > limits_.max_results) {
      return Error::unsupported("multi-value results not supported");
    }
    for (uint32_t j = 0; j < *nr; ++j) {
      auto t = val_type(s);
      if (!t.ok()) return t.error();
      ft.results.push_back(*t);
    }
    m_.types.push_back(std::move(ft));
  }
  return {};
}

Status Decoder::decode_import_section(ByteReader& s) {
  auto count = s.uleb32();
  if (!count.ok()) return count.error();
  if (*count > limits_.max_imports) return Error::limit_exceeded("too many imports");
  for (uint32_t i = 0; i < *count; ++i) {
    Import imp;
    auto mod = s.name();
    if (!mod.ok()) return mod.error();
    imp.module = std::move(*mod);
    auto nm = s.name();
    if (!nm.ok()) return nm.error();
    imp.name = std::move(*nm);
    auto kind = s.u8();
    if (!kind.ok()) return kind.error();
    switch (*kind) {
      case 0: {
        auto ti = s.uleb32();
        if (!ti.ok()) return ti.error();
        imp.kind = ImportKind::kFunc;
        imp.type_index = *ti;
        m_.imported_func_types.push_back(*ti);
        break;
      }
      case 1: {
        auto tt = table_type(s);
        if (!tt.ok()) return tt.error();
        if (m_.imported_table) return Error::decode("multiple tables");
        imp.kind = ImportKind::kTable;
        imp.table = *tt;
        m_.imported_table = *tt;
        break;
      }
      case 2: {
        auto l = limits(s);
        if (!l.ok()) return l.error();
        if (m_.imported_memory) return Error::decode("multiple memories");
        imp.kind = ImportKind::kMemory;
        imp.memory = *l;
        m_.imported_memory = *l;
        break;
      }
      case 3: {
        auto gt = global_type(s);
        if (!gt.ok()) return gt.error();
        imp.kind = ImportKind::kGlobal;
        imp.global = *gt;
        m_.imported_global_types.push_back(*gt);
        break;
      }
      default:
        return Error::decode("invalid import kind");
    }
    m_.imports.push_back(std::move(imp));
  }
  m_.num_imported_funcs = static_cast<uint32_t>(m_.imported_func_types.size());
  m_.num_imported_globals = static_cast<uint32_t>(m_.imported_global_types.size());
  m_.has_imported_table = m_.imported_table.has_value();
  m_.has_imported_memory = m_.imported_memory.has_value();
  return {};
}

Status Decoder::decode_function_section(ByteReader& s) {
  auto count = s.uleb32();
  if (!count.ok()) return count.error();
  if (*count > limits_.max_functions) return Error::limit_exceeded("too many functions");
  declared_func_count_ = *count;
  m_.func_type_indices.reserve(*count);
  for (uint32_t i = 0; i < *count; ++i) {
    auto ti = s.uleb32();
    if (!ti.ok()) return ti.error();
    m_.func_type_indices.push_back(*ti);
  }
  return {};
}

Status Decoder::decode_table_section(ByteReader& s) {
  auto count = s.uleb32();
  if (!count.ok()) return count.error();
  if (*count > 1) return Error::decode("at most one table");
  if (*count == 1) {
    if (m_.imported_table) return Error::decode("multiple tables");
    auto tt = table_type(s);
    if (!tt.ok()) return tt.error();
    m_.table = *tt;
  }
  return {};
}

Status Decoder::decode_memory_section(ByteReader& s) {
  auto count = s.uleb32();
  if (!count.ok()) return count.error();
  if (*count > 1) return Error::decode("at most one memory");
  if (*count == 1) {
    if (m_.imported_memory) return Error::decode("multiple memories");
    auto l = limits(s);
    if (!l.ok()) return l.error();
    if (l->min > kMaxMemoryPages || (l->max && *l->max > kMaxMemoryPages)) {
      return Error::limit_exceeded("memory exceeds embedder page cap");
    }
    m_.memory = *l;
  }
  return {};
}

Status Decoder::decode_global_section(ByteReader& s) {
  auto count = s.uleb32();
  if (!count.ok()) return count.error();
  if (*count > limits_.max_globals) return Error::limit_exceeded("too many globals");
  for (uint32_t i = 0; i < *count; ++i) {
    Global g;
    auto gt = global_type(s);
    if (!gt.ok()) return gt.error();
    g.type = *gt;
    auto init = const_expr(s);
    if (!init.ok()) return init.error();
    g.init = *init;
    m_.globals.push_back(g);
  }
  return {};
}

Status Decoder::decode_export_section(ByteReader& s) {
  auto count = s.uleb32();
  if (!count.ok()) return count.error();
  if (*count > limits_.max_exports) return Error::limit_exceeded("too many exports");
  for (uint32_t i = 0; i < *count; ++i) {
    Export e;
    auto nm = s.name();
    if (!nm.ok()) return nm.error();
    e.name = std::move(*nm);
    auto kind = s.u8();
    if (!kind.ok()) return kind.error();
    if (*kind > 3) return Error::decode("invalid export kind");
    e.kind = static_cast<ImportKind>(*kind);
    auto idx = s.uleb32();
    if (!idx.ok()) return idx.error();
    e.index = *idx;
    m_.exports.push_back(std::move(e));
  }
  return {};
}

Status Decoder::decode_start_section(ByteReader& s) {
  auto idx = s.uleb32();
  if (!idx.ok()) return idx.error();
  m_.start = *idx;
  return {};
}

Status Decoder::decode_element_section(ByteReader& s) {
  auto count = s.uleb32();
  if (!count.ok()) return count.error();
  if (*count > limits_.max_elem_segments) return Error::limit_exceeded("too many element segments");
  for (uint32_t i = 0; i < *count; ++i) {
    ElemSegment seg;
    auto flags = s.uleb32();
    if (!flags.ok()) return flags.error();
    if (*flags != 0) return Error::unsupported("only active funcref element segments (flags=0)");
    seg.table_index = 0;
    auto off = const_expr(s);
    if (!off.ok()) return off.error();
    seg.offset = *off;
    auto n = s.uleb32();
    if (!n.ok()) return n.error();
    if (*n > limits_.max_functions) return Error::limit_exceeded("element segment too large");
    seg.func_indices.reserve(*n);
    for (uint32_t j = 0; j < *n; ++j) {
      auto fi = s.uleb32();
      if (!fi.ok()) return fi.error();
      seg.func_indices.push_back(*fi);
    }
    m_.elems.push_back(std::move(seg));
  }
  return {};
}

Status Decoder::decode_data_section(ByteReader& s) {
  auto count = s.uleb32();
  if (!count.ok()) return count.error();
  if (*count > limits_.max_data_segments) return Error::limit_exceeded("too many data segments");
  for (uint32_t i = 0; i < *count; ++i) {
    DataSegment seg;
    auto flags = s.uleb32();
    if (!flags.ok()) return flags.error();
    if (*flags != 0) return Error::unsupported("only active data segments (flags=0)");
    seg.memory_index = 0;
    auto off = const_expr(s);
    if (!off.ok()) return off.error();
    seg.offset = *off;
    auto n = s.uleb32();
    if (!n.ok()) return n.error();
    auto b = s.bytes(*n);
    if (!b.ok()) return b.error();
    seg.bytes.assign(b->begin(), b->end());
    m_.datas.push_back(std::move(seg));
  }
  return {};
}

Result<Code> Decoder::func_body(ByteReader& s, size_t n_params) {
  Code code;
  auto local_groups = s.uleb32();
  if (!local_groups.ok()) return local_groups.error();
  uint64_t total_locals = n_params;
  for (uint32_t i = 0; i < *local_groups; ++i) {
    auto n = s.uleb32();
    if (!n.ok()) return n.error();
    auto t = val_type(s);
    if (!t.ok()) return t.error();
    total_locals += *n;
    if (total_locals > limits_.max_locals) return Error::limit_exceeded("too many locals");
    code.locals.insert(code.locals.end(), *n, *t);
  }

  // Instruction stream: decode until the depth-0 `end`.
  uint32_t depth = 0;
  bool done = false;
  while (!done) {
    if (code.body.size() >= limits_.max_body_instrs) {
      return Error::limit_exceeded("function body too large");
    }
    auto b0 = s.u8();
    if (!b0.ok()) return b0.error();
    uint16_t opv = *b0;
    if (opv == 0xfc) {
      auto sub = s.uleb32();
      if (!sub.ok()) return sub.error();
      if (*sub > 0xff) return Error::decode("invalid 0xFC sub-opcode");
      opv = static_cast<uint16_t>(0xfc00 | *sub);
    }
    Instr ins;
    ins.op = static_cast<Op>(opv);
    switch (ins.op) {
      case Op::kBlock:
      case Op::kLoop:
      case Op::kIf: {
        auto bt = s.sleb(33);
        if (!bt.ok()) return bt.error();
        int64_t v = *bt;
        if (v == -0x40) {  // 0x40 as s33: empty block type
          ins.block_arity = 0;
        } else if (v < 0) {
          uint8_t raw = static_cast<uint8_t>(v & 0x7f);
          if (!is_val_type(raw)) return Error::decode("invalid block type");
          ins.block_arity = 1;
          ins.imm.index = raw;  // stash the ValType for the validator
        } else {
          return Error::unsupported("function-typed blocks not supported");
        }
        // Temporarily record the stashed valtype in imm.index; the control
        // linker moves block metadata into Ctrl and a side record.
        ++depth;
        break;
      }
      case Op::kElse:
        break;
      case Op::kEnd:
        if (depth == 0) {
          done = true;
        } else {
          --depth;
        }
        break;
      case Op::kBr:
      case Op::kBrIf:
      case Op::kCall:
      case Op::kLocalGet:
      case Op::kLocalSet:
      case Op::kLocalTee:
      case Op::kGlobalGet:
      case Op::kGlobalSet: {
        auto idx = s.uleb32();
        if (!idx.ok()) return idx.error();
        ins.imm.index = *idx;
        break;
      }
      case Op::kBrTable: {
        BrTable bt;
        auto n = s.uleb32();
        if (!n.ok()) return n.error();
        if (*n > limits_.max_br_table_targets) return Error::limit_exceeded("br_table too large");
        bt.targets.reserve(*n);
        for (uint32_t j = 0; j < *n; ++j) {
          auto t = s.uleb32();
          if (!t.ok()) return t.error();
          bt.targets.push_back(*t);
        }
        auto d = s.uleb32();
        if (!d.ok()) return d.error();
        bt.default_target = *d;
        ins.imm.br_table_index = static_cast<uint32_t>(code.br_tables.size());
        code.br_tables.push_back(std::move(bt));
        break;
      }
      case Op::kCallIndirect: {
        auto ti = s.uleb32();
        if (!ti.ok()) return ti.error();
        auto tbl = s.uleb32();
        if (!tbl.ok()) return tbl.error();
        if (*tbl != 0) return Error::decode("call_indirect table index must be 0");
        ins.imm.call_indirect = {*ti, *tbl};
        break;
      }
      case Op::kI32Load:
      case Op::kI64Load:
      case Op::kF32Load:
      case Op::kF64Load:
      case Op::kI32Load8S:
      case Op::kI32Load8U:
      case Op::kI32Load16S:
      case Op::kI32Load16U:
      case Op::kI64Load8S:
      case Op::kI64Load8U:
      case Op::kI64Load16S:
      case Op::kI64Load16U:
      case Op::kI64Load32S:
      case Op::kI64Load32U:
      case Op::kI32Store:
      case Op::kI64Store:
      case Op::kF32Store:
      case Op::kF64Store:
      case Op::kI32Store8:
      case Op::kI32Store16:
      case Op::kI64Store8:
      case Op::kI64Store16:
      case Op::kI64Store32: {
        auto align = s.uleb32();
        if (!align.ok()) return align.error();
        auto off = s.uleb32();
        if (!off.ok()) return off.error();
        ins.imm.mem = {*align, *off};
        break;
      }
      case Op::kMemorySize:
      case Op::kMemoryGrow: {
        auto z = s.u8();
        if (!z.ok()) return z.error();
        if (*z != 0) return Error::decode("memory index must be 0");
        break;
      }
      case Op::kMemoryCopy: {
        auto a = s.u8();
        if (!a.ok()) return a.error();
        auto b = s.u8();
        if (!b.ok()) return b.error();
        if (*a != 0 || *b != 0) return Error::decode("memory index must be 0");
        break;
      }
      case Op::kMemoryFill: {
        auto a = s.u8();
        if (!a.ok()) return a.error();
        if (*a != 0) return Error::decode("memory index must be 0");
        break;
      }
      case Op::kI32Const: {
        auto v = s.sleb32();
        if (!v.ok()) return v.error();
        ins.imm.i32 = *v;
        break;
      }
      case Op::kI64Const: {
        auto v = s.sleb(64);
        if (!v.ok()) return v.error();
        ins.imm.i64 = *v;
        break;
      }
      case Op::kF32Const: {
        auto v = s.f32le();
        if (!v.ok()) return v.error();
        ins.imm.f32 = *v;
        break;
      }
      case Op::kF64Const: {
        auto v = s.f64le();
        if (!v.ok()) return v.error();
        ins.imm.f64 = *v;
        break;
      }
      default: {
        // Immediate-free instructions; reject anything not in our enum.
        const char* nm = to_string(ins.op);
        if (nm[0] == '<') return Error::decode("unknown opcode 0x" + std::to_string(opv));
        break;
      }
    }
    code.body.push_back(ins);
  }

  WARAN_CHECK_OK(link_control(code));
  return code;
}

// Resolves block/loop/if -> end (and if -> else) indices. Depth counting was
// already checked during decode, so mismatches here are internal errors,
// except `else` outside `if`, which we must reject.
Status Decoder::link_control(Code& code) {
  struct Open {
    uint32_t pc;
    Op op;
    uint32_t else_pc;  // UINT32_MAX if none
  };
  std::vector<Open> stack;
  for (uint32_t pc = 0; pc < code.body.size(); ++pc) {
    Instr& ins = code.body[pc];
    switch (ins.op) {
      case Op::kBlock:
      case Op::kLoop:
      case Op::kIf:
        stack.push_back({pc, ins.op, UINT32_MAX});
        break;
      case Op::kElse: {
        if (stack.empty() || stack.back().op != Op::kIf || stack.back().else_pc != UINT32_MAX) {
          return Error::decode("`else` without matching `if`");
        }
        stack.back().else_pc = pc;
        break;
      }
      case Op::kEnd: {
        if (stack.empty()) {
          // Function-level end (last instruction).
          if (pc + 1 != code.body.size()) return Error::internal("misplaced function end");
          break;
        }
        Open open = stack.back();
        stack.pop_back();
        Instr& opener = code.body[open.pc];
        uint8_t arity = opener.block_arity;
        // The decoder stashed the block's result ValType in imm.index; the
        // validator re-derives it from block_arity + this field before Ctrl
        // overwrites imm, so save it in a parallel place: we re-encode the
        // valtype into the *else* instruction's block_arity field when
        // present... Instead, keep it simple: Ctrl keeps end/else, and the
        // result type byte moves into block_arity's sibling `block_type_raw`.
        uint32_t type_raw = opener.imm.index;
        opener.imm.ctrl.end_pc = pc;
        opener.imm.ctrl.else_pc = (open.else_pc != UINT32_MAX) ? open.else_pc : pc;
        // Re-stash the raw valtype byte in the matching end's imm (unused
        // otherwise) so the validator can recover it.
        code.body[pc].imm.index = (arity != 0) ? type_raw : 0;
        if (open.else_pc != UINT32_MAX) {
          // Give `else` its end target too, so the interpreter can jump.
          code.body[open.else_pc].imm.ctrl.end_pc = pc;
          code.body[open.else_pc].imm.ctrl.else_pc = pc;
        }
        break;
      }
      default:
        break;
    }
  }
  if (!stack.empty()) return Error::internal("unclosed block after decode");

  // Fuel segments: a segment is a maximal straight-line run ending at (and
  // including) the next instruction that can divert control. Every
  // instruction records the length of the run that starts at it, so any
  // branch target or fall-through point can be charged in O(1). Computed
  // backwards; the final function-level `end` is the base case.
  for (size_t i = code.body.size(); i-- > 0;) {
    Instr& ins = code.body[i];
    ins.seg_len = (is_segment_end(ins.op) || i + 1 == code.body.size())
                      ? 1
                      : code.body[i + 1].seg_len + 1;
  }
  return {};
}

Result<Module> Decoder::run() {
  auto magic = r_.u32le();
  if (!magic.ok()) return magic.error();
  if (*magic != 0x6d736100u) return Error::decode("bad wasm magic");
  auto version = r_.u32le();
  if (!version.ok()) return version.error();
  if (*version != 1) return Error::decode("unsupported wasm version");

  int last_section = 0;
  bool seen_datacount = false;
  (void)seen_datacount;
  while (!r_.at_end()) {
    auto id = r_.u8();
    if (!id.ok()) return id.error();
    auto size = r_.uleb32();
    if (!size.ok()) return size.error();
    auto payload = r_.bytes(*size);
    if (!payload.ok()) return payload.error();
    if (*id == kSectionCustom) continue;  // custom sections are skipped wholesale
    if (*id > kSectionDataCount) return Error::decode("unknown section id");
    if (*id <= last_section) return Error::decode("out-of-order section");
    last_section = *id;

    ByteReader s(*payload);
    Status st;
    switch (*id) {
      case kSectionType: st = decode_type_section(s); break;
      case kSectionImport: st = decode_import_section(s); break;
      case kSectionFunction: st = decode_function_section(s); break;
      case kSectionTable: st = decode_table_section(s); break;
      case kSectionMemory: st = decode_memory_section(s); break;
      case kSectionGlobal: st = decode_global_section(s); break;
      case kSectionExport: st = decode_export_section(s); break;
      case kSectionStart: st = decode_start_section(s); break;
      case kSectionElement: st = decode_element_section(s); break;
      case kSectionDataCount: st = Status(); break;  // tolerated, unused
      case kSectionCode: st = decode_code_section(s); break;
      case kSectionData: st = decode_data_section(s); break;
      default: st = Error::decode("unknown section id");
    }
    if (!st.ok()) return st.error();
    if (!s.at_end()) return Error::decode("trailing bytes in section");
  }

  if (m_.codes.size() != declared_func_count_) {
    return Error::decode("function/code section count mismatch");
  }
  return std::move(m_);
}

Status Decoder::decode_code_section(ByteReader& s) {
  auto count = s.uleb32();
  if (!count.ok()) return count.error();
  if (*count != declared_func_count_) {
    return Error::decode("function/code section count mismatch");
  }
  m_.codes.reserve(*count);
  for (uint32_t i = 0; i < *count; ++i) {
    auto body_size = s.uleb32();
    if (!body_size.ok()) return body_size.error();
    auto body = s.bytes(*body_size);
    if (!body.ok()) return body.error();
    ByteReader br(*body);
    size_t n_params = 0;
    uint32_t ti = m_.func_type_indices[i];
    if (ti < m_.types.size()) n_params = m_.types[ti].params.size();
    auto code = func_body(br, n_params);
    if (!code.ok()) return code.error();
    if (!br.at_end()) return Error::decode("trailing bytes in function body");
    m_.codes.push_back(std::move(*code));
  }
  return {};
}

}  // namespace

Result<Module> decode_module(std::span<const uint8_t> bytes, const DecodeLimits& limits) {
  Decoder d(bytes, limits);
  return d.run();
}

}  // namespace waran::wasm
