#include "wasm/memory.h"

#include <algorithm>

namespace waran::wasm {

Result<Memory> Memory::create(const Limits& limits) {
  uint32_t max_pages = std::min(limits.max.value_or(kMaxMemoryPages), kMaxMemoryPages);
  if (limits.min > max_pages) return Error::limit_exceeded("memory min exceeds cap");
  std::vector<uint8_t> bytes(static_cast<size_t>(limits.min) * kPageSize, 0);
  return Memory(std::move(bytes), max_pages);
}

uint32_t Memory::grow(uint32_t delta_pages) {
  uint32_t old_pages = pages();
  uint64_t new_pages = static_cast<uint64_t>(old_pages) + delta_pages;
  if (new_pages > max_pages_) return static_cast<uint32_t>(-1);
  if (delta_pages > 0 && deny_grow_after_.has_value()) {
    if (*deny_grow_after_ == 0) {
      ++denied_grows_;
      return static_cast<uint32_t>(-1);
    }
    --*deny_grow_after_;
  }
  bytes_.resize(static_cast<size_t>(new_pages) * kPageSize, 0);
  return old_pages;
}

Error Memory::oob_error(uint64_t addr, uint64_t len) {
  return Error::trap("out-of-bounds memory access at " + std::to_string(addr) +
                     " len " + std::to_string(len));
}

Status Memory::read_bytes(uint64_t addr, std::span<uint8_t> out) const {
  if (!in_bounds(addr, out.size())) return oob_error(addr, out.size());
  std::memcpy(out.data(), bytes_.data() + addr, out.size());
  return {};
}

Status Memory::write_bytes(uint64_t addr, std::span<const uint8_t> in) {
  if (!in_bounds(addr, in.size())) return oob_error(addr, in.size());
  std::memcpy(bytes_.data() + addr, in.data(), in.size());
  return {};
}

Status Memory::copy(uint64_t dst, uint64_t src, uint64_t len) {
  if (!in_bounds(dst, len) || !in_bounds(src, len)) return oob_error(std::max(dst, src), len);
  if (len > 0) std::memmove(bytes_.data() + dst, bytes_.data() + src, len);
  return {};
}

Status Memory::fill(uint64_t dst, uint8_t value, uint64_t len) {
  if (!in_bounds(dst, len)) return oob_error(dst, len);
  if (len > 0) std::memset(bytes_.data() + dst, value, len);
  return {};
}

}  // namespace waran::wasm
