#include "wasm/instance.h"

#include <bit>
#include <cmath>
#include <cstring>
#include <limits>

#include "obs/trace.h"

namespace waran::wasm {
namespace {

// --- IEEE-754 helpers matching wasm semantics exactly. ---

template <typename F>
F wasm_fmin(F a, F b) {
  if (std::isnan(a) || std::isnan(b)) return std::numeric_limits<F>::quiet_NaN();
  if (a == b) return std::signbit(a) ? a : b;  // min(-0,+0) = -0
  return a < b ? a : b;
}

template <typename F>
F wasm_fmax(F a, F b) {
  if (std::isnan(a) || std::isnan(b)) return std::numeric_limits<F>::quiet_NaN();
  if (a == b) return std::signbit(a) ? b : a;  // max(-0,+0) = +0
  return a > b ? a : b;
}

/// Checked float -> integer truncation. Returns false on NaN / out of range.
template <typename I, typename F>
bool trunc_checked(F f, I* out) {
  if (std::isnan(f)) return false;
  double d = std::trunc(static_cast<double>(f));
  if constexpr (std::is_same_v<I, int32_t>) {
    if (d < -2147483648.0 || d > 2147483647.0) return false;
  } else if constexpr (std::is_same_v<I, uint32_t>) {
    if (d < 0.0 || d > 4294967295.0) return false;
  } else if constexpr (std::is_same_v<I, int64_t>) {
    // 2^63 is exactly representable in double; the valid range is [-2^63, 2^63).
    if (d < -9223372036854775808.0 || d >= 9223372036854775808.0) return false;
  } else {
    static_assert(std::is_same_v<I, uint64_t>);
    if (d < 0.0 || d >= 18446744073709551616.0) return false;
  }
  *out = static_cast<I>(d);
  return true;
}

/// Saturating float -> integer truncation (trunc_sat_*): NaN -> 0, clamp.
template <typename I, typename F>
I trunc_sat(F f) {
  if (std::isnan(f)) return 0;
  double d = std::trunc(static_cast<double>(f));
  if constexpr (std::is_same_v<I, int32_t>) {
    if (d <= -2147483648.0) return std::numeric_limits<int32_t>::min();
    if (d >= 2147483647.0) return std::numeric_limits<int32_t>::max();
  } else if constexpr (std::is_same_v<I, uint32_t>) {
    if (d <= 0.0) return 0;
    if (d >= 4294967295.0) return std::numeric_limits<uint32_t>::max();
  } else if constexpr (std::is_same_v<I, int64_t>) {
    if (d <= -9223372036854775808.0) return std::numeric_limits<int64_t>::min();
    if (d >= 9223372036854775808.0) return std::numeric_limits<int64_t>::max();
  } else {
    static_assert(std::is_same_v<I, uint64_t>);
    if (d <= 0.0) return 0;
    if (d >= 18446744073709551616.0) return std::numeric_limits<uint64_t>::max();
  }
  return static_cast<I>(d);
}

Error trap_here(Op op, const char* what) {
  return Error::trap(std::string(what) + " in `" + to_string(op) + "`");
}

}  // namespace

Result<std::unique_ptr<Instance>> Instance::instantiate(
    std::shared_ptr<const Module> module, const Linker& linker,
    const InstanceOptions& options) {
  auto inst = std::unique_ptr<Instance>(new Instance());
  inst->module_ = std::move(module);
  inst->user_data_ = options.user_data;
  inst->max_call_depth_ = options.max_call_depth;
  const Module& m = *inst->module_;

  // Resolve imports. WA-RAN hosts only expose functions; table/memory/global
  // imports are rejected at instantiation (decoded for completeness).
  for (const Import& imp : m.imports) {
    switch (imp.kind) {
      case ImportKind::kFunc: {
        const HostFunc* hf = linker.lookup(imp.module, imp.name);
        if (hf == nullptr) {
          return Error::not_found("unresolved import " + imp.module + "." + imp.name);
        }
        if (!(hf->type == m.types[imp.type_index])) {
          return Error::validation("import signature mismatch for " + imp.module + "." +
                                   imp.name + ": module wants " +
                                   to_string(m.types[imp.type_index]) + ", host provides " +
                                   to_string(hf->type));
        }
        inst->host_funcs_.push_back(*hf);
        inst->host_func_names_.push_back(imp.module + "." + imp.name);
        break;
      }
      default:
        return Error::unsupported("only function imports are supported (import " +
                                  imp.module + "." + imp.name + ")");
    }
  }

  // Memory.
  if (m.memory) {
    auto mem = Memory::create(*m.memory);
    if (!mem.ok()) return mem.error();
    inst->memory_.emplace(std::move(*mem));
  }

  // Table.
  if (m.table) {
    inst->table_.assign(m.table->limits.min, kNullFuncRef);
  }

  // Globals (no global imports at this point, so init global.get cannot
  // occur — the validator only allows it referencing imported globals).
  for (const Global& g : m.globals) {
    if (g.init.kind == ConstExpr::Kind::kGlobalGet) {
      return Error::unsupported("global imports are not supported");
    }
    inst->globals_.push_back(g.init.value);
  }

  // Element segments.
  for (const ElemSegment& seg : m.elems) {
    uint64_t off = seg.offset.value.as_u32();
    if (off + seg.func_indices.size() > inst->table_.size()) {
      return Error::trap("element segment out of bounds");
    }
    for (size_t i = 0; i < seg.func_indices.size(); ++i) {
      inst->table_[off + i] = seg.func_indices[i];
    }
  }

  // Data segments.
  for (const DataSegment& seg : m.datas) {
    if (!inst->memory_) return Error::trap("data segment without memory");
    uint64_t off = seg.offset.value.as_u32();
    WARAN_CHECK_OK(inst->memory_->write_bytes(off, seg.bytes));
  }

  // Start function.
  if (m.start) {
    Value unused;
    WARAN_CHECK_OK(inst->invoke(*m.start, {}, &unused));
  }

  return inst;
}

std::optional<uint32_t> Instance::find_export(std::string_view name, ImportKind kind) const {
  for (const Export& e : module_->exports) {
    if (e.kind == kind && e.name == name) return e.index;
  }
  return std::nullopt;
}

Result<std::optional<TypedValue>> Instance::call(std::string_view export_name,
                                                 std::span<const TypedValue> args,
                                                 const CallOptions& options,
                                                 CallStats* stats) {
  obs::ObsSpan span(obs::TraceCat::kWasm, export_name);
  auto idx = find_export(export_name, ImportKind::kFunc);
  if (!idx) return Error::not_found("no exported function named " + std::string(export_name));
  const FuncType& ft = module_->func_type(*idx);
  if (args.size() != ft.params.size()) {
    return Error::invalid_argument("argument count mismatch: want " +
                                   std::to_string(ft.params.size()) + ", got " +
                                   std::to_string(args.size()));
  }
  // Arguments are staged in a fixed buffer so a warm call performs no heap
  // allocation; more than 16 parameters is a cold path.
  Value argbuf[16];
  std::vector<Value> argspill;
  Value* raw = argbuf;
  if (args.size() > 16) {
    argspill.resize(args.size());
    raw = argspill.data();
  }
  for (size_t i = 0; i < args.size(); ++i) {
    if (args[i].type != ft.params[i]) {
      return Error::invalid_argument("argument " + std::to_string(i) + " type mismatch");
    }
    raw[i] = args[i].value;
  }

  // Per-call fuel policy, restored after the call: nullopt inherits the
  // instance-level set_fuel state, 0 disables metering, >0 is a fresh budget.
  const bool saved_enabled = fuel_enabled_;
  const uint64_t saved_fuel = fuel_;
  if (options.fuel) {
    fuel_enabled_ = *options.fuel > 0;
    if (*options.fuel > 0) fuel_ = *options.fuel;
  }
  const bool saved_deadline_armed = deadline_armed_;
  const auto saved_deadline = deadline_;
  if (options.deadline) {
    deadline_armed_ = true;
    deadline_ = std::chrono::steady_clock::now() + *options.deadline;
  }

  const bool metered = fuel_enabled_;
  const uint64_t fuel_before = fuel_;
  const uint64_t retired_before = instructions_retired_;
  const uint32_t prev_peak = exec_.peak_frames;
  exec_.peak_frames = static_cast<uint32_t>(exec_.frames.size());

  const auto t0 = std::chrono::steady_clock::now();
  Value result{};
  Status st = invoke(*idx, std::span<const Value>(raw, args.size()), &result);
  const auto t1 = std::chrono::steady_clock::now();

  if (stats != nullptr) {
    stats->instrs_retired = instructions_retired_ - retired_before;
    stats->fuel_used = metered ? fuel_before - fuel_ : stats->instrs_retired;
    stats->wall_ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
    stats->peak_stack_depth = exec_.peak_frames;
  }
  if (exec_.peak_frames < prev_peak) exec_.peak_frames = prev_peak;
  if (options.fuel) {
    fuel_enabled_ = saved_enabled;
    fuel_ = saved_fuel;
  }
  if (options.deadline) {
    deadline_armed_ = saved_deadline_armed;
    deadline_ = saved_deadline;
  }

  if (!st.ok()) return st.error();
  if (ft.results.empty()) return std::optional<TypedValue>{};
  return std::optional<TypedValue>{TypedValue{ft.results[0], result}};
}

Status Instance::invoke_host(uint32_t import_index, std::span<const Value> args,
                             Value* result) {
  obs::ObsSpan span(obs::TraceCat::kHost, host_func_names_[import_index]);
  const HostFunc& hf = host_funcs_[import_index];
  // Stage the arguments outside the shared value stack: a host function may
  // re-enter wasm via Instance::call, growing exec_.values and invalidating
  // any span into it.
  Value buf[16];
  std::vector<Value> spill;
  const Value* src = buf;
  if (args.size() <= 16) {
    if (!args.empty()) std::memcpy(buf, args.data(), args.size() * sizeof(Value));
  } else {
    spill.assign(args.begin(), args.end());
    src = spill.data();
  }
  HostContext ctx{*this, user_data_};
  auto r = hf.fn(ctx, std::span<const Value>(src, args.size()));
  if (!r.ok()) return r.error();
  if (r->has_value()) *result = **r;
  return {};
}

Status Instance::push_frame(uint32_t func_index) {
  ExecContext& ec = exec_;
  if (ec.frames.size() >= max_call_depth_) return Error::trap("call stack exhausted");
  const Code& code = module_->codes[func_index - module_->num_imported_funcs];
  const FuncType& ft = module_->func_type(func_index);
  const size_t nparams = ft.params.size();
  const uint32_t locals_base = static_cast<uint32_t>(ec.locals.size());
  const uint32_t stack_base = static_cast<uint32_t>(ec.values.size() - nparams);
  const uint32_t label_base = static_cast<uint32_t>(ec.labels.size());

  // Arguments move off the value stack into the locals arena; the remaining
  // declared locals are value-initialized (zeroed) by resize.
  ec.locals.resize(locals_base + nparams + code.locals.size());
  if (nparams > 0) {
    std::memcpy(ec.locals.data() + locals_base, ec.values.data() + stack_base,
                nparams * sizeof(Value));
    ec.values.resize(stack_base);
  }

  const uint8_t result_arity = static_cast<uint8_t>(ft.results.size());
  ec.labels.push_back(
      {static_cast<uint32_t>(code.body.size()), stack_base, result_arity});
  ec.frames.push_back(
      {&code, 0, func_index, locals_base, stack_base, label_base, result_arity});
  if (ec.frames.size() > ec.peak_frames) {
    ec.peak_frames = static_cast<uint32_t>(ec.frames.size());
  }
  return {};
}

Status Instance::charge(const Code& code, uint32_t pc) {
  const uint32_t seg = code.body[pc].seg_len;
  if (fuel_enabled_) {
    if (fuel_ < seg) return Error::fuel_exhausted("plugin exceeded its fuel budget");
    fuel_ -= seg;
  }
  instructions_retired_ += seg;
  if (deadline_armed_ && (++charge_ticks_ & 63u) == 0 &&
      std::chrono::steady_clock::now() > deadline_) {
    return Error::fuel_exhausted("plugin exceeded its wall-clock deadline");
  }
  return {};
}

Status Instance::invoke(uint32_t func_index, std::span<const Value> args, Value* result) {
  if (func_index < module_->num_imported_funcs) {
    return invoke_host(func_index, args, result);
  }
  ExecContext& ec = exec_;
  const size_t base_frames = ec.frames.size();
  const size_t base_values = ec.values.size();
  const size_t base_labels = ec.labels.size();
  const size_t base_locals = ec.locals.size();

  const FuncType& ft = module_->func_type(func_index);
  ec.values.insert(ec.values.end(), args.begin(), args.end());
  Status st = push_frame(func_index);
  if (st.ok()) st = run(base_frames, result, static_cast<uint8_t>(ft.results.size()));
  if (!st.ok()) {
    // Unwind everything this call pushed so the shared ExecContext stays
    // consistent for the enclosing call (or the next one).
    ec.frames.resize(base_frames);
    ec.values.resize(base_values);
    ec.labels.resize(base_labels);
    ec.locals.resize(base_locals);
  }
  return st;
}

Status Instance::run(size_t base_frames, Value* result, uint8_t /*result_arity*/) {
  ExecContext& ec = exec_;
  std::vector<Value>& stack = ec.values;
  std::vector<ExecContext::Label>& labels = ec.labels;

  auto pop = [&]() -> Value {
    Value v = stack.back();
    stack.pop_back();
    return v;
  };
  auto push = [&](Value v) { stack.push_back(v); };

reenter:
  // (Re-)cache the top frame. Reached on entry, on wasm->wasm call, and on
  // return to a caller; in each case the segment at `pc` is not yet charged.
  const Code& code = *ec.frames.back().code;
  const Instr* body = code.body.data();
  const uint32_t body_size = static_cast<uint32_t>(code.body.size());
  const uint32_t locals_base = ec.frames.back().locals_base;
  Value* locals = ec.locals.data() + locals_base;
  uint32_t pc = ec.frames.back().pc;

  if (pc < body_size) {
    Status cst = charge(code, pc);
    if (!cst.ok()) return cst;
  }

  auto do_branch = [&](uint32_t d) -> Status {
    const ExecContext::Label l = labels[labels.size() - 1 - d];
    const uint32_t keep = l.arity;
    for (uint32_t i = 0; i < keep; ++i) {
      stack[l.height + i] = stack[stack.size() - keep + i];
    }
    stack.resize(l.height + keep);
    labels.resize(labels.size() - 1 - d);
    pc = l.cont;
    // The branch ended the charged segment; pay for the target's segment.
    if (pc < body_size) return charge(code, pc);
    return Status{};
  };

  while (pc < body_size) {
    const Instr& ins = body[pc];
    ++pc;

    switch (ins.op) {
      case Op::kUnreachable:
        return trap_here(ins.op, "unreachable executed");
      case Op::kNop:
        break;

      case Op::kBlock:
        labels.push_back({ins.imm.ctrl.end_pc + 1,
                          static_cast<uint32_t>(stack.size()), ins.block_arity});
        break;
      case Op::kLoop:
        labels.push_back({pc - 1, static_cast<uint32_t>(stack.size()), 0});
        break;
      case Op::kIf: {
        int32_t cond = pop().as_i32();
        labels.push_back({ins.imm.ctrl.end_pc + 1,
                          static_cast<uint32_t>(stack.size()), ins.block_arity});
        if (cond == 0) {
          pc = (ins.imm.ctrl.else_pc != ins.imm.ctrl.end_pc) ? ins.imm.ctrl.else_pc + 1
                                                             : ins.imm.ctrl.end_pc;
        }
        // `if` ends its fuel segment on both edges; pay for the taken side.
        Status cst = charge(code, pc);
        if (!cst.ok()) return cst;
        break;
      }
      case Op::kElse: {
        // Reached only by falling out of the true branch: skip to `end`.
        pc = ins.imm.ctrl.end_pc;
        Status cst = charge(code, pc);
        if (!cst.ok()) return cst;
        break;
      }
      case Op::kEnd:
        labels.pop_back();
        break;

      case Op::kBr: {
        Status cst = do_branch(ins.imm.index);
        if (!cst.ok()) return cst;
        break;
      }
      case Op::kBrIf: {
        // Taken: segment charge happens at the target. Untaken: the
        // fall-through at pc starts a fresh segment, charged here.
        Status cst =
            pop().as_i32() != 0 ? do_branch(ins.imm.index) : charge(code, pc);
        if (!cst.ok()) return cst;
        break;
      }
      case Op::kBrTable: {
        const BrTable& bt = code.br_tables[ins.imm.br_table_index];
        uint32_t i = pop().as_u32();
        Status cst = do_branch(i < bt.targets.size() ? bt.targets[i] : bt.default_target);
        if (!cst.ok()) return cst;
        break;
      }
      case Op::kReturn:
        pc = body_size;
        break;

      case Op::kCall: {
        const uint32_t callee = ins.imm.index;
        if (callee < module_->num_imported_funcs) {
          const FuncType& ct = module_->func_type(callee);
          const size_t n = ct.params.size();
          Value res{};
          Status st = invoke_host(
              callee, std::span<const Value>(stack.data() + stack.size() - n, n), &res);
          if (!st.ok()) return st;
          stack.resize(stack.size() - n);
          if (!ct.results.empty()) push(res);
          // A re-entrant host->wasm call may have grown the locals arena.
          locals = ec.locals.data() + locals_base;
          Status cst = charge(code, pc);  // resume segment after the call
          if (!cst.ok()) return cst;
          break;
        }
        ec.frames.back().pc = pc;
        Status st = push_frame(callee);
        if (!st.ok()) return st;
        goto reenter;
      }
      case Op::kCallIndirect: {
        uint32_t elem = pop().as_u32();
        if (elem >= table_.size()) return trap_here(ins.op, "table index out of bounds");
        uint32_t target = table_[elem];
        if (target == kNullFuncRef) return trap_here(ins.op, "uninitialized table element");
        const FuncType& expect = module_->types[ins.imm.call_indirect.type_index];
        const FuncType& actual = module_->func_type(target);
        if (!(expect == actual)) return trap_here(ins.op, "indirect call signature mismatch");
        if (target < module_->num_imported_funcs) {
          const size_t n = expect.params.size();
          Value res{};
          Status st = invoke_host(
              target, std::span<const Value>(stack.data() + stack.size() - n, n), &res);
          if (!st.ok()) return st;
          stack.resize(stack.size() - n);
          if (!expect.results.empty()) push(res);
          locals = ec.locals.data() + locals_base;
          Status cst = charge(code, pc);
          if (!cst.ok()) return cst;
          break;
        }
        ec.frames.back().pc = pc;
        Status st = push_frame(target);
        if (!st.ok()) return st;
        goto reenter;
      }

      case Op::kDrop:
        stack.pop_back();
        break;
      case Op::kSelect: {
        int32_t c = pop().as_i32();
        Value b = pop();
        Value a = pop();
        push(c != 0 ? a : b);
        break;
      }

      case Op::kLocalGet:
        push(locals[ins.imm.index]);
        break;
      case Op::kLocalSet:
        locals[ins.imm.index] = pop();
        break;
      case Op::kLocalTee:
        locals[ins.imm.index] = stack.back();
        break;
      case Op::kGlobalGet:
        push(globals_[ins.imm.index]);
        break;
      case Op::kGlobalSet:
        globals_[ins.imm.index] = pop();
        break;

#define WARAN_LOAD(ctype, push_fn)                                          \
  {                                                                         \
    uint32_t base = pop().as_u32();                                         \
    auto lv = memory_->load<ctype>(base, ins.imm.mem.offset);               \
    if (!lv.ok()) return lv.error();                                        \
    push(push_fn);                                                          \
  }                                                                         \
  break

      case Op::kI32Load: WARAN_LOAD(int32_t, Value::from_i32(*lv));
      case Op::kI64Load: WARAN_LOAD(int64_t, Value::from_i64(*lv));
      case Op::kF32Load: WARAN_LOAD(float, Value::from_f32(*lv));
      case Op::kF64Load: WARAN_LOAD(double, Value::from_f64(*lv));
      case Op::kI32Load8S: WARAN_LOAD(int8_t, Value::from_i32(*lv));
      case Op::kI32Load8U: WARAN_LOAD(uint8_t, Value::from_u32(*lv));
      case Op::kI32Load16S: WARAN_LOAD(int16_t, Value::from_i32(*lv));
      case Op::kI32Load16U: WARAN_LOAD(uint16_t, Value::from_u32(*lv));
      case Op::kI64Load8S: WARAN_LOAD(int8_t, Value::from_i64(*lv));
      case Op::kI64Load8U: WARAN_LOAD(uint8_t, Value::from_u64(*lv));
      case Op::kI64Load16S: WARAN_LOAD(int16_t, Value::from_i64(*lv));
      case Op::kI64Load16U: WARAN_LOAD(uint16_t, Value::from_u64(*lv));
      case Op::kI64Load32S: WARAN_LOAD(int32_t, Value::from_i64(*lv));
      case Op::kI64Load32U: WARAN_LOAD(uint32_t, Value::from_u64(*lv));
#undef WARAN_LOAD

#define WARAN_STORE(ctype, get_expr)                                        \
  {                                                                         \
    Value v = pop();                                                        \
    uint32_t base = pop().as_u32();                                         \
    Status st = memory_->store<ctype>(base, ins.imm.mem.offset, get_expr);  \
    if (!st.ok()) return st;                                                \
  }                                                                         \
  break

      case Op::kI32Store: WARAN_STORE(int32_t, v.as_i32());
      case Op::kI64Store: WARAN_STORE(int64_t, v.as_i64());
      case Op::kF32Store: WARAN_STORE(float, v.as_f32());
      case Op::kF64Store: WARAN_STORE(double, v.as_f64());
      case Op::kI32Store8: WARAN_STORE(uint8_t, static_cast<uint8_t>(v.as_u32()));
      case Op::kI32Store16: WARAN_STORE(uint16_t, static_cast<uint16_t>(v.as_u32()));
      case Op::kI64Store8: WARAN_STORE(uint8_t, static_cast<uint8_t>(v.as_u64()));
      case Op::kI64Store16: WARAN_STORE(uint16_t, static_cast<uint16_t>(v.as_u64()));
      case Op::kI64Store32: WARAN_STORE(uint32_t, static_cast<uint32_t>(v.as_u64()));
#undef WARAN_STORE

      case Op::kMemorySize:
        push(Value::from_u32(memory_->pages()));
        break;
      case Op::kMemoryGrow: {
        uint32_t delta = pop().as_u32();
        push(Value::from_u32(memory_->grow(delta)));
        break;
      }
      case Op::kMemoryCopy: {
        uint32_t len = pop().as_u32();
        uint32_t src = pop().as_u32();
        uint32_t dst = pop().as_u32();
        Status st = memory_->copy(dst, src, len);
        if (!st.ok()) return st;
        break;
      }
      case Op::kMemoryFill: {
        uint32_t len = pop().as_u32();
        uint32_t val = pop().as_u32();
        uint32_t dst = pop().as_u32();
        Status st = memory_->fill(dst, static_cast<uint8_t>(val), len);
        if (!st.ok()) return st;
        break;
      }

      case Op::kI32Const: push(Value::from_i32(ins.imm.i32)); break;
      case Op::kI64Const: push(Value::from_i64(ins.imm.i64)); break;
      case Op::kF32Const: push(Value::from_f32(ins.imm.f32)); break;
      case Op::kF64Const: push(Value::from_f64(ins.imm.f64)); break;

#define WARAN_CMP(pop_t, expr)                 \
  {                                            \
    auto rhs = pop().pop_t();                  \
    auto lhs = pop().pop_t();                  \
    (void)lhs; (void)rhs;                      \
    push(Value::from_i32((expr) ? 1 : 0));     \
  }                                            \
  break

      case Op::kI32Eqz: push(Value::from_i32(pop().as_i32() == 0 ? 1 : 0)); break;
      case Op::kI32Eq: WARAN_CMP(as_i32, lhs == rhs);
      case Op::kI32Ne: WARAN_CMP(as_i32, lhs != rhs);
      case Op::kI32LtS: WARAN_CMP(as_i32, lhs < rhs);
      case Op::kI32LtU: WARAN_CMP(as_u32, lhs < rhs);
      case Op::kI32GtS: WARAN_CMP(as_i32, lhs > rhs);
      case Op::kI32GtU: WARAN_CMP(as_u32, lhs > rhs);
      case Op::kI32LeS: WARAN_CMP(as_i32, lhs <= rhs);
      case Op::kI32LeU: WARAN_CMP(as_u32, lhs <= rhs);
      case Op::kI32GeS: WARAN_CMP(as_i32, lhs >= rhs);
      case Op::kI32GeU: WARAN_CMP(as_u32, lhs >= rhs);

      case Op::kI64Eqz: push(Value::from_i32(pop().as_i64() == 0 ? 1 : 0)); break;
      case Op::kI64Eq: WARAN_CMP(as_i64, lhs == rhs);
      case Op::kI64Ne: WARAN_CMP(as_i64, lhs != rhs);
      case Op::kI64LtS: WARAN_CMP(as_i64, lhs < rhs);
      case Op::kI64LtU: WARAN_CMP(as_u64, lhs < rhs);
      case Op::kI64GtS: WARAN_CMP(as_i64, lhs > rhs);
      case Op::kI64GtU: WARAN_CMP(as_u64, lhs > rhs);
      case Op::kI64LeS: WARAN_CMP(as_i64, lhs <= rhs);
      case Op::kI64LeU: WARAN_CMP(as_u64, lhs <= rhs);
      case Op::kI64GeS: WARAN_CMP(as_i64, lhs >= rhs);
      case Op::kI64GeU: WARAN_CMP(as_u64, lhs >= rhs);

      case Op::kF32Eq: WARAN_CMP(as_f32, lhs == rhs);
      case Op::kF32Ne: WARAN_CMP(as_f32, lhs != rhs);
      case Op::kF32Lt: WARAN_CMP(as_f32, lhs < rhs);
      case Op::kF32Gt: WARAN_CMP(as_f32, lhs > rhs);
      case Op::kF32Le: WARAN_CMP(as_f32, lhs <= rhs);
      case Op::kF32Ge: WARAN_CMP(as_f32, lhs >= rhs);
      case Op::kF64Eq: WARAN_CMP(as_f64, lhs == rhs);
      case Op::kF64Ne: WARAN_CMP(as_f64, lhs != rhs);
      case Op::kF64Lt: WARAN_CMP(as_f64, lhs < rhs);
      case Op::kF64Gt: WARAN_CMP(as_f64, lhs > rhs);
      case Op::kF64Le: WARAN_CMP(as_f64, lhs <= rhs);
      case Op::kF64Ge: WARAN_CMP(as_f64, lhs >= rhs);
#undef WARAN_CMP

      case Op::kI32Clz: {
        uint32_t v = pop().as_u32();
        push(Value::from_u32(v == 0 ? 32 : static_cast<uint32_t>(std::countl_zero(v))));
        break;
      }
      case Op::kI32Ctz: {
        uint32_t v = pop().as_u32();
        push(Value::from_u32(v == 0 ? 32 : static_cast<uint32_t>(std::countr_zero(v))));
        break;
      }
      case Op::kI32Popcnt:
        push(Value::from_u32(static_cast<uint32_t>(std::popcount(pop().as_u32()))));
        break;

#define WARAN_BIN(pop_t, from_fn, expr)  \
  {                                      \
    auto rhs = pop().pop_t();            \
    auto lhs = pop().pop_t();            \
    push(Value::from_fn(expr));          \
  }                                      \
  break

      case Op::kI32Add: WARAN_BIN(as_u32, from_u32, lhs + rhs);
      case Op::kI32Sub: WARAN_BIN(as_u32, from_u32, lhs - rhs);
      case Op::kI32Mul: WARAN_BIN(as_u32, from_u32, lhs * rhs);
      case Op::kI32DivS: {
        int32_t rhs = pop().as_i32();
        int32_t lhs = pop().as_i32();
        if (rhs == 0) return trap_here(ins.op, "integer divide by zero");
        if (lhs == std::numeric_limits<int32_t>::min() && rhs == -1) {
          return trap_here(ins.op, "integer overflow");
        }
        push(Value::from_i32(lhs / rhs));
        break;
      }
      case Op::kI32DivU: {
        uint32_t rhs = pop().as_u32();
        uint32_t lhs = pop().as_u32();
        if (rhs == 0) return trap_here(ins.op, "integer divide by zero");
        push(Value::from_u32(lhs / rhs));
        break;
      }
      case Op::kI32RemS: {
        int32_t rhs = pop().as_i32();
        int32_t lhs = pop().as_i32();
        if (rhs == 0) return trap_here(ins.op, "integer divide by zero");
        if (lhs == std::numeric_limits<int32_t>::min() && rhs == -1) {
          push(Value::from_i32(0));
        } else {
          push(Value::from_i32(lhs % rhs));
        }
        break;
      }
      case Op::kI32RemU: {
        uint32_t rhs = pop().as_u32();
        uint32_t lhs = pop().as_u32();
        if (rhs == 0) return trap_here(ins.op, "integer divide by zero");
        push(Value::from_u32(lhs % rhs));
        break;
      }
      case Op::kI32And: WARAN_BIN(as_u32, from_u32, lhs & rhs);
      case Op::kI32Or: WARAN_BIN(as_u32, from_u32, lhs | rhs);
      case Op::kI32Xor: WARAN_BIN(as_u32, from_u32, lhs ^ rhs);
      case Op::kI32Shl: WARAN_BIN(as_u32, from_u32, lhs << (rhs & 31));
      case Op::kI32ShrS: {
        uint32_t rhs = pop().as_u32();
        int32_t lhs = pop().as_i32();
        push(Value::from_i32(lhs >> (rhs & 31)));
        break;
      }
      case Op::kI32ShrU: WARAN_BIN(as_u32, from_u32, lhs >> (rhs & 31));
      case Op::kI32Rotl: WARAN_BIN(as_u32, from_u32, std::rotl(lhs, static_cast<int>(rhs & 31)));
      case Op::kI32Rotr: WARAN_BIN(as_u32, from_u32, std::rotr(lhs, static_cast<int>(rhs & 31)));

      case Op::kI64Clz: {
        uint64_t v = pop().as_u64();
        push(Value::from_u64(v == 0 ? 64 : static_cast<uint64_t>(std::countl_zero(v))));
        break;
      }
      case Op::kI64Ctz: {
        uint64_t v = pop().as_u64();
        push(Value::from_u64(v == 0 ? 64 : static_cast<uint64_t>(std::countr_zero(v))));
        break;
      }
      case Op::kI64Popcnt:
        push(Value::from_u64(static_cast<uint64_t>(std::popcount(pop().as_u64()))));
        break;
      case Op::kI64Add: WARAN_BIN(as_u64, from_u64, lhs + rhs);
      case Op::kI64Sub: WARAN_BIN(as_u64, from_u64, lhs - rhs);
      case Op::kI64Mul: WARAN_BIN(as_u64, from_u64, lhs * rhs);
      case Op::kI64DivS: {
        int64_t rhs = pop().as_i64();
        int64_t lhs = pop().as_i64();
        if (rhs == 0) return trap_here(ins.op, "integer divide by zero");
        if (lhs == std::numeric_limits<int64_t>::min() && rhs == -1) {
          return trap_here(ins.op, "integer overflow");
        }
        push(Value::from_i64(lhs / rhs));
        break;
      }
      case Op::kI64DivU: {
        uint64_t rhs = pop().as_u64();
        uint64_t lhs = pop().as_u64();
        if (rhs == 0) return trap_here(ins.op, "integer divide by zero");
        push(Value::from_u64(lhs / rhs));
        break;
      }
      case Op::kI64RemS: {
        int64_t rhs = pop().as_i64();
        int64_t lhs = pop().as_i64();
        if (rhs == 0) return trap_here(ins.op, "integer divide by zero");
        if (lhs == std::numeric_limits<int64_t>::min() && rhs == -1) {
          push(Value::from_i64(0));
        } else {
          push(Value::from_i64(lhs % rhs));
        }
        break;
      }
      case Op::kI64RemU: {
        uint64_t rhs = pop().as_u64();
        uint64_t lhs = pop().as_u64();
        if (rhs == 0) return trap_here(ins.op, "integer divide by zero");
        push(Value::from_u64(lhs % rhs));
        break;
      }
      case Op::kI64And: WARAN_BIN(as_u64, from_u64, lhs & rhs);
      case Op::kI64Or: WARAN_BIN(as_u64, from_u64, lhs | rhs);
      case Op::kI64Xor: WARAN_BIN(as_u64, from_u64, lhs ^ rhs);
      case Op::kI64Shl: WARAN_BIN(as_u64, from_u64, lhs << (rhs & 63));
      case Op::kI64ShrS: {
        uint64_t rhs = pop().as_u64();
        int64_t lhs = pop().as_i64();
        push(Value::from_i64(lhs >> (rhs & 63)));
        break;
      }
      case Op::kI64ShrU: WARAN_BIN(as_u64, from_u64, lhs >> (rhs & 63));
      case Op::kI64Rotl: WARAN_BIN(as_u64, from_u64, std::rotl(lhs, static_cast<int>(rhs & 63)));
      case Op::kI64Rotr: WARAN_BIN(as_u64, from_u64, std::rotr(lhs, static_cast<int>(rhs & 63)));

      case Op::kF32Abs: push(Value::from_f32(std::fabs(pop().as_f32()))); break;
      case Op::kF32Neg: push(Value::from_f32(-pop().as_f32())); break;
      case Op::kF32Ceil: push(Value::from_f32(std::ceil(pop().as_f32()))); break;
      case Op::kF32Floor: push(Value::from_f32(std::floor(pop().as_f32()))); break;
      case Op::kF32Trunc: push(Value::from_f32(std::trunc(pop().as_f32()))); break;
      case Op::kF32Nearest: push(Value::from_f32(std::nearbyintf(pop().as_f32()))); break;
      case Op::kF32Sqrt: push(Value::from_f32(std::sqrt(pop().as_f32()))); break;
      case Op::kF32Add: WARAN_BIN(as_f32, from_f32, lhs + rhs);
      case Op::kF32Sub: WARAN_BIN(as_f32, from_f32, lhs - rhs);
      case Op::kF32Mul: WARAN_BIN(as_f32, from_f32, lhs * rhs);
      case Op::kF32Div: WARAN_BIN(as_f32, from_f32, lhs / rhs);
      case Op::kF32Min: WARAN_BIN(as_f32, from_f32, wasm_fmin(lhs, rhs));
      case Op::kF32Max: WARAN_BIN(as_f32, from_f32, wasm_fmax(lhs, rhs));
      case Op::kF32Copysign: WARAN_BIN(as_f32, from_f32, std::copysign(lhs, rhs));

      case Op::kF64Abs: push(Value::from_f64(std::fabs(pop().as_f64()))); break;
      case Op::kF64Neg: push(Value::from_f64(-pop().as_f64())); break;
      case Op::kF64Ceil: push(Value::from_f64(std::ceil(pop().as_f64()))); break;
      case Op::kF64Floor: push(Value::from_f64(std::floor(pop().as_f64()))); break;
      case Op::kF64Trunc: push(Value::from_f64(std::trunc(pop().as_f64()))); break;
      case Op::kF64Nearest: push(Value::from_f64(std::nearbyint(pop().as_f64()))); break;
      case Op::kF64Sqrt: push(Value::from_f64(std::sqrt(pop().as_f64()))); break;
      case Op::kF64Add: WARAN_BIN(as_f64, from_f64, lhs + rhs);
      case Op::kF64Sub: WARAN_BIN(as_f64, from_f64, lhs - rhs);
      case Op::kF64Mul: WARAN_BIN(as_f64, from_f64, lhs * rhs);
      case Op::kF64Div: WARAN_BIN(as_f64, from_f64, lhs / rhs);
      case Op::kF64Min: WARAN_BIN(as_f64, from_f64, wasm_fmin(lhs, rhs));
      case Op::kF64Max: WARAN_BIN(as_f64, from_f64, wasm_fmax(lhs, rhs));
      case Op::kF64Copysign: WARAN_BIN(as_f64, from_f64, std::copysign(lhs, rhs));
#undef WARAN_BIN

      case Op::kI32WrapI64:
        push(Value::from_u32(static_cast<uint32_t>(pop().as_u64())));
        break;

      case Op::kI32TruncF32S: {
        float f = pop().as_f32();
        int32_t out;
        if (!trunc_checked<int32_t>(f, &out)) return trap_here(ins.op, "invalid conversion to integer");
        push(Value::from_i32(out));
        break;
      }
      case Op::kI32TruncF32U: {
        float f = pop().as_f32();
        uint32_t out;
        if (!trunc_checked<uint32_t>(f, &out)) return trap_here(ins.op, "invalid conversion to integer");
        push(Value::from_u32(out));
        break;
      }
      case Op::kI32TruncF64S: {
        double f = pop().as_f64();
        int32_t out;
        if (!trunc_checked<int32_t>(f, &out)) return trap_here(ins.op, "invalid conversion to integer");
        push(Value::from_i32(out));
        break;
      }
      case Op::kI32TruncF64U: {
        double f = pop().as_f64();
        uint32_t out;
        if (!trunc_checked<uint32_t>(f, &out)) return trap_here(ins.op, "invalid conversion to integer");
        push(Value::from_u32(out));
        break;
      }
      case Op::kI64TruncF32S: {
        float f = pop().as_f32();
        int64_t out;
        if (!trunc_checked<int64_t>(f, &out)) return trap_here(ins.op, "invalid conversion to integer");
        push(Value::from_i64(out));
        break;
      }
      case Op::kI64TruncF32U: {
        float f = pop().as_f32();
        uint64_t out;
        if (!trunc_checked<uint64_t>(f, &out)) return trap_here(ins.op, "invalid conversion to integer");
        push(Value::from_u64(out));
        break;
      }
      case Op::kI64TruncF64S: {
        double f = pop().as_f64();
        int64_t out;
        if (!trunc_checked<int64_t>(f, &out)) return trap_here(ins.op, "invalid conversion to integer");
        push(Value::from_i64(out));
        break;
      }
      case Op::kI64TruncF64U: {
        double f = pop().as_f64();
        uint64_t out;
        if (!trunc_checked<uint64_t>(f, &out)) return trap_here(ins.op, "invalid conversion to integer");
        push(Value::from_u64(out));
        break;
      }

      case Op::kI32TruncSatF32S: push(Value::from_i32(trunc_sat<int32_t>(pop().as_f32()))); break;
      case Op::kI32TruncSatF32U: push(Value::from_u32(trunc_sat<uint32_t>(pop().as_f32()))); break;
      case Op::kI32TruncSatF64S: push(Value::from_i32(trunc_sat<int32_t>(pop().as_f64()))); break;
      case Op::kI32TruncSatF64U: push(Value::from_u32(trunc_sat<uint32_t>(pop().as_f64()))); break;
      case Op::kI64TruncSatF32S: push(Value::from_i64(trunc_sat<int64_t>(pop().as_f32()))); break;
      case Op::kI64TruncSatF32U: push(Value::from_u64(trunc_sat<uint64_t>(pop().as_f32()))); break;
      case Op::kI64TruncSatF64S: push(Value::from_i64(trunc_sat<int64_t>(pop().as_f64()))); break;
      case Op::kI64TruncSatF64U: push(Value::from_u64(trunc_sat<uint64_t>(pop().as_f64()))); break;

      case Op::kI64ExtendI32S: push(Value::from_i64(pop().as_i32())); break;
      case Op::kI64ExtendI32U: push(Value::from_u64(pop().as_u32())); break;
      case Op::kF32ConvertI32S: push(Value::from_f32(static_cast<float>(pop().as_i32()))); break;
      case Op::kF32ConvertI32U: push(Value::from_f32(static_cast<float>(pop().as_u32()))); break;
      case Op::kF32ConvertI64S: push(Value::from_f32(static_cast<float>(pop().as_i64()))); break;
      case Op::kF32ConvertI64U: push(Value::from_f32(static_cast<float>(pop().as_u64()))); break;
      case Op::kF32DemoteF64: push(Value::from_f32(static_cast<float>(pop().as_f64()))); break;
      case Op::kF64ConvertI32S: push(Value::from_f64(static_cast<double>(pop().as_i32()))); break;
      case Op::kF64ConvertI32U: push(Value::from_f64(static_cast<double>(pop().as_u32()))); break;
      case Op::kF64ConvertI64S: push(Value::from_f64(static_cast<double>(pop().as_i64()))); break;
      case Op::kF64ConvertI64U: push(Value::from_f64(static_cast<double>(pop().as_u64()))); break;
      case Op::kF64PromoteF32: push(Value::from_f64(static_cast<double>(pop().as_f32()))); break;

      // Reinterpretations are no-ops on the untagged 64-bit cell, except f32
      // bit-cleaning of the upper half (already zeroed by from_f32/from_u32).
      case Op::kI32ReinterpretF32:
      case Op::kF32ReinterpretI32:
      case Op::kI64ReinterpretF64:
      case Op::kF64ReinterpretI64:
        break;

      case Op::kI32Extend8S:
        push(Value::from_i32(static_cast<int8_t>(pop().as_u32())));
        break;
      case Op::kI32Extend16S:
        push(Value::from_i32(static_cast<int16_t>(pop().as_u32())));
        break;
      case Op::kI64Extend8S:
        push(Value::from_i64(static_cast<int8_t>(pop().as_u64())));
        break;
      case Op::kI64Extend16S:
        push(Value::from_i64(static_cast<int16_t>(pop().as_u64())));
        break;
      case Op::kI64Extend32S:
        push(Value::from_i64(static_cast<int32_t>(pop().as_u64())));
        break;
    }
  }

  // The top frame ran off the end of its body (final `end` or `return`):
  // move its results down to the caller's operand position and pop it.
  {
    const ExecContext::Frame fr = ec.frames.back();
    const uint32_t arity = fr.result_arity;
    for (uint32_t i = 0; i < arity; ++i) {
      stack[fr.stack_base + i] = stack[stack.size() - arity + i];
    }
    stack.resize(fr.stack_base + arity);
    labels.resize(fr.label_base);
    ec.locals.resize(fr.locals_base);
    ec.frames.pop_back();
    if (ec.frames.size() == base_frames) {
      if (arity != 0) {
        *result = stack.back();
        stack.pop_back();
      }
      return {};
    }
  }
  goto reenter;
}

void Linker::register_func(std::string module, std::string name, HostFunc fn) {
  funcs_[{std::move(module), std::move(name)}] = std::move(fn);
}

const HostFunc* Linker::lookup(const std::string& module, const std::string& name) const {
  auto it = funcs_.find({module, name});
  return it == funcs_.end() ? nullptr : &it->second;
}

}  // namespace waran::wasm
