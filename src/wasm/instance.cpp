#include "wasm/instance.h"

#include <bit>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "common/log.h"
#include "obs/trace.h"
#include "rt/clock.h"

namespace waran::wasm {
namespace {

// --- IEEE-754 helpers matching wasm semantics exactly. ---

template <typename F>
F wasm_fmin(F a, F b) {
  if (std::isnan(a) || std::isnan(b)) return std::numeric_limits<F>::quiet_NaN();
  if (a == b) return std::signbit(a) ? a : b;  // min(-0,+0) = -0
  return a < b ? a : b;
}

template <typename F>
F wasm_fmax(F a, F b) {
  if (std::isnan(a) || std::isnan(b)) return std::numeric_limits<F>::quiet_NaN();
  if (a == b) return std::signbit(a) ? b : a;  // max(-0,+0) = +0
  return a > b ? a : b;
}

/// Checked float -> integer truncation. Returns false on NaN / out of range.
template <typename I, typename F>
bool trunc_checked(F f, I* out) {
  if (std::isnan(f)) return false;
  double d = std::trunc(static_cast<double>(f));
  if constexpr (std::is_same_v<I, int32_t>) {
    if (d < -2147483648.0 || d > 2147483647.0) return false;
  } else if constexpr (std::is_same_v<I, uint32_t>) {
    if (d < 0.0 || d > 4294967295.0) return false;
  } else if constexpr (std::is_same_v<I, int64_t>) {
    // 2^63 is exactly representable in double; the valid range is [-2^63, 2^63).
    if (d < -9223372036854775808.0 || d >= 9223372036854775808.0) return false;
  } else {
    static_assert(std::is_same_v<I, uint64_t>);
    if (d < 0.0 || d >= 18446744073709551616.0) return false;
  }
  *out = static_cast<I>(d);
  return true;
}

/// Saturating float -> integer truncation (trunc_sat_*): NaN -> 0, clamp.
template <typename I, typename F>
I trunc_sat(F f) {
  if (std::isnan(f)) return 0;
  double d = std::trunc(static_cast<double>(f));
  if constexpr (std::is_same_v<I, int32_t>) {
    if (d <= -2147483648.0) return std::numeric_limits<int32_t>::min();
    if (d >= 2147483647.0) return std::numeric_limits<int32_t>::max();
  } else if constexpr (std::is_same_v<I, uint32_t>) {
    if (d <= 0.0) return 0;
    if (d >= 4294967295.0) return std::numeric_limits<uint32_t>::max();
  } else if constexpr (std::is_same_v<I, int64_t>) {
    if (d <= -9223372036854775808.0) return std::numeric_limits<int64_t>::min();
    if (d >= 9223372036854775808.0) return std::numeric_limits<int64_t>::max();
  } else {
    static_assert(std::is_same_v<I, uint64_t>);
    if (d <= 0.0) return 0;
    if (d >= 18446744073709551616.0) return std::numeric_limits<uint64_t>::max();
  }
  return static_cast<I>(d);
}

}  // namespace

Instance::~Instance() {
  // Runs before member destruction, so cache_ is valid even when it points
  // at owned_cache_. The last instance of a translation to release drops
  // that translation's tier-2 entries from the (possibly shared) cache.
  if (cache_ != nullptr) cache_->release_module(translated_.get());
}

Result<std::unique_ptr<Instance>> Instance::instantiate(
    std::shared_ptr<const Module> module, const Linker& linker,
    const InstanceOptions& options) {
  auto inst = std::unique_ptr<Instance>(new Instance());
  inst->module_ = std::move(module);
  inst->user_data_ = options.user_data;
  inst->max_call_depth_ = options.max_call_depth;
  const Module& m = *inst->module_;

  // Pick up the module's shared micro-op stream, or lower the bodies here if
  // the embedder skipped translate_module().
  if (m.translated) {
    inst->translated_ = m.translated;
  } else {
    auto tr = translate(m);
    if (!tr.ok()) return tr.error();
    inst->translated_ = std::move(*tr);
  }

  Dispatch d = options.dispatch;
  if (d == Dispatch::kDefault) {
    // Env override for tests/ops: force a backend everywhere the embedder
    // left the choice open. Explicit pins (e.g. the differential oracle's
    // kSwitch instance) are never overridden.
    if (const char* env = std::getenv("WARAN_DISPATCH"); env != nullptr) {
      const std::string_view want(env);
      if (want == "switch") d = Dispatch::kSwitch;
      else if (want == "threaded") d = Dispatch::kThreaded;
      else if (want == "specialized") d = Dispatch::kSpecialized;
      else if (!want.empty()) {
        // A typo ("specialised") must not silently exercise the wrong
        // dispatcher while appearing to work.
        WARAN_LOG(kWarn, "wasm",
                  "unknown WARAN_DISPATCH value '"
                      << want
                      << "' (expected switch|threaded|specialized); "
                         "using the default backend");
      }
    }
  }
  if (d == Dispatch::kDefault) {
    d = WARAN_HAS_THREADED_DISPATCH ? Dispatch::kThreaded : Dispatch::kSwitch;
  }
#if !WARAN_HAS_THREADED_DISPATCH
  if (d == Dispatch::kThreaded) d = Dispatch::kSwitch;
#endif
  inst->dispatch_ = d;
  if (d == Dispatch::kSpecialized) {
    const size_t nfuncs = inst->translated_->funcs.size();
    inst->profile_.resize(nfuncs);
    inst->active_.resize(nfuncs);
    for (size_t i = 0; i < nfuncs; ++i) {
      inst->active_[i] = &inst->translated_->funcs[i];
    }
    inst->tier_up_threshold_ =
        options.tier_up_threshold == 0 ? 1 : options.tier_up_threshold;
    if (options.code_cache != nullptr) {
      inst->cache_ = options.code_cache;
    } else {
      inst->owned_cache_ = std::make_unique<CodeCache>();
      inst->cache_ = inst->owned_cache_.get();
    }
    // Keep the cache's keys for this translation alive and unique for this
    // instance's whole lifetime; ~Instance releases, and the last release
    // drops the translation's tier-2 entries (hot-swap hygiene).
    inst->cache_->retain_module(inst->translated_.get());
  }

  // Resolve imports. WA-RAN hosts only expose functions; table/memory/global
  // imports are rejected at instantiation (decoded for completeness).
  for (const Import& imp : m.imports) {
    switch (imp.kind) {
      case ImportKind::kFunc: {
        const HostFunc* hf = linker.lookup(imp.module, imp.name);
        if (hf == nullptr) {
          return Error::not_found("unresolved import " + imp.module + "." + imp.name);
        }
        if (!(hf->type == m.types[imp.type_index])) {
          return Error::validation("import signature mismatch for " + imp.module + "." +
                                   imp.name + ": module wants " +
                                   to_string(m.types[imp.type_index]) + ", host provides " +
                                   to_string(hf->type));
        }
        inst->host_funcs_.push_back(*hf);
        inst->host_func_names_.push_back(imp.module + "." + imp.name);
        break;
      }
      default:
        return Error::unsupported("only function imports are supported (import " +
                                  imp.module + "." + imp.name + ")");
    }
  }

  // Memory.
  if (m.memory) {
    auto mem = Memory::create(*m.memory);
    if (!mem.ok()) return mem.error();
    inst->memory_.emplace(std::move(*mem));
  }

  // Table.
  if (m.table) {
    inst->table_.assign(m.table->limits.min, kNullFuncRef);
  }

  // Globals (no global imports at this point, so init global.get cannot
  // occur — the validator only allows it referencing imported globals).
  for (const Global& g : m.globals) {
    if (g.init.kind == ConstExpr::Kind::kGlobalGet) {
      return Error::unsupported("global imports are not supported");
    }
    inst->globals_.push_back(g.init.value);
  }

  // Element segments.
  for (const ElemSegment& seg : m.elems) {
    uint64_t off = seg.offset.value.as_u32();
    if (off + seg.func_indices.size() > inst->table_.size()) {
      return Error::trap("element segment out of bounds");
    }
    for (size_t i = 0; i < seg.func_indices.size(); ++i) {
      inst->table_[off + i] = seg.func_indices[i];
    }
  }

  // Data segments.
  for (const DataSegment& seg : m.datas) {
    if (!inst->memory_) return Error::trap("data segment without memory");
    uint64_t off = seg.offset.value.as_u32();
    WARAN_CHECK_OK(inst->memory_->write_bytes(off, seg.bytes));
  }

  // Start function.
  if (m.start) {
    Value unused;
    WARAN_CHECK_OK(inst->invoke(*m.start, {}, &unused));
  }

  return inst;
}

std::optional<uint32_t> Instance::find_export(std::string_view name, ImportKind kind) const {
  for (const Export& e : module_->exports) {
    if (e.kind == kind && e.name == name) return e.index;
  }
  return std::nullopt;
}

Result<std::optional<TypedValue>> Instance::call(std::string_view export_name,
                                                 std::span<const TypedValue> args,
                                                 const CallOptions& options,
                                                 CallStats* stats) {
  obs::ObsSpan span(obs::TraceCat::kWasm, export_name);
  auto idx = find_export(export_name, ImportKind::kFunc);
  if (!idx) return Error::not_found("no exported function named " + std::string(export_name));
  const FuncType& ft = module_->func_type(*idx);
  if (args.size() != ft.params.size()) {
    return Error::invalid_argument("argument count mismatch: want " +
                                   std::to_string(ft.params.size()) + ", got " +
                                   std::to_string(args.size()));
  }
  // Arguments are staged in a fixed buffer so a warm call performs no heap
  // allocation; more than 16 parameters is a cold path.
  Value argbuf[16];
  std::vector<Value> argspill;
  Value* raw = argbuf;
  if (args.size() > 16) {
    argspill.resize(args.size());
    raw = argspill.data();
  }
  for (size_t i = 0; i < args.size(); ++i) {
    if (args[i].type != ft.params[i]) {
      return Error::invalid_argument("argument " + std::to_string(i) + " type mismatch");
    }
    raw[i] = args[i].value;
  }

  // Per-call fuel policy, restored after the call: nullopt inherits the
  // instance-level set_fuel state, 0 disables metering, >0 is a fresh budget.
  const bool saved_enabled = fuel_enabled_;
  const uint64_t saved_fuel = fuel_;
  if (options.fuel) {
    fuel_enabled_ = *options.fuel > 0;
    if (*options.fuel > 0) fuel_ = *options.fuel;
  }
  const bool saved_deadline_armed = deadline_armed_;
  const uint64_t saved_deadline = deadline_ns_;
  if (options.deadline) {
    deadline_armed_ = true;
    deadline_ns_ = rt::now_ns() + static_cast<uint64_t>(options.deadline->count());
    poll_countdown_ = kDeadlinePollStride;
  }

  const bool metered = fuel_enabled_;
  const uint64_t fuel_before = fuel_;
  const uint64_t retired_before = instructions_retired_;
  const uint32_t prev_peak = exec_.peak_frames;
  exec_.peak_frames = static_cast<uint32_t>(exec_.frames.size());

  const uint64_t t0 = rt::now_ns();
  Value result{};
  Status st = invoke(*idx, std::span<const Value>(raw, args.size()), &result);
  const uint64_t t1 = rt::now_ns();

  if (stats != nullptr) {
    stats->instrs_retired = instructions_retired_ - retired_before;
    stats->fuel_used = metered ? fuel_before - fuel_ : stats->instrs_retired;
    stats->wall_ns = t1 - t0;
    stats->peak_stack_depth = exec_.peak_frames;
  }
  if (exec_.peak_frames < prev_peak) exec_.peak_frames = prev_peak;
  if (options.fuel) {
    fuel_enabled_ = saved_enabled;
    fuel_ = saved_fuel;
  }
  if (options.deadline) {
    deadline_armed_ = saved_deadline_armed;
    deadline_ns_ = saved_deadline;
    poll_countdown_ = deadline_armed_ ? kDeadlinePollStride : kIdlePollStride;
  }

  if (!st.ok()) return st.error();
  if (ft.results.empty()) return std::optional<TypedValue>{};
  return std::optional<TypedValue>{TypedValue{ft.results[0], result}};
}

Status Instance::invoke_host(uint32_t import_index, std::span<const Value> args,
                             Value* result) {
  obs::ObsSpan span(obs::TraceCat::kHost, host_func_names_[import_index]);
  const HostFunc& hf = host_funcs_[import_index];
  // Stage the arguments outside the shared value stack: a host function may
  // re-enter wasm via Instance::call, growing exec_.values and invalidating
  // any span into it.
  Value buf[16];
  std::vector<Value> spill;
  const Value* src = buf;
  if (args.size() <= 16) {
    if (!args.empty()) std::memcpy(buf, args.data(), args.size() * sizeof(Value));
  } else {
    spill.assign(args.begin(), args.end());
    src = spill.data();
  }
  HostContext ctx{*this, user_data_};
  auto r = hf.fn(ctx, std::span<const Value>(src, args.size()));
  if (!r.ok()) return r.error();
  if (r->has_value()) *result = **r;
  return {};
}

Status Instance::push_frame(uint32_t func_index) {
  ExecContext& ec = exec_;
  if (ec.frames.size() >= max_call_depth_) return Error::trap("call stack exhausted");
  const uint32_t di = func_index - module_->num_imported_funcs;
  const TranslatedFunc* tfp;
  if (dispatch_ == Dispatch::kSpecialized) {
    // Tier-up point. Runs on the calling thread (the cell's own worker
    // under rt), so the cache needs no locks. The rewrite below is the
    // only allocating step of the tier-2 backend; frames already running
    // the tier-1 stream keep it — streams are never mutated, and the cache
    // keeps this module's installed pointers stable while any instance of
    // it (us included) is alive — so a threshold crossing mid-recursion or
    // under host re-entry is safe.
    FuncProfile& p = profile_[di];
    ++p.calls;
    tfp = active_[di];
    if (tfp == &translated_->funcs[di] && p.calls >= tier_up_threshold_) {
      const TranslatedFunc* t2 = cache_->tier_up(translated_, tfp, p);
      if (t2 != tfp) {
        if (StreamFirewall fw = stream_firewall()) {
          // Miscompile firewall (debug/fuzz builds): a tier-2 rewrite that
          // breaks a stream invariant fails here, at the swap, instead of
          // diverging later under the differential oracle.
          if (Status st = fw(*module_, *t2); !st.ok()) {
            return Error::internal("stream firewall rejected tier-2 rewrite of defined func " +
                                   std::to_string(di) + ": " + st.error().message);
          }
        }
      }
      tfp = t2;
      active_[di] = tfp;
      ++tier_up_events_;
    }
  } else {
    tfp = &translated_->funcs[di];
  }
  const TranslatedFunc& tf = *tfp;
  const uint32_t nparams = tf.num_params;
  const uint32_t locals_base = static_cast<uint32_t>(ec.locals.size());
  const uint32_t stack_base = ec.top - nparams;

  // Arguments move off the operand arena into the locals arena; the
  // remaining declared locals are value-initialized (zeroed) by resize.
  ec.locals.resize(locals_base + tf.num_locals);
  if (nparams > 0) {
    std::memcpy(ec.locals.data() + locals_base, ec.values.data() + stack_base,
                nparams * sizeof(Value));
  }
  ec.top = stack_base;
  // Reserve the frame's whole worst-case operand region once; the hot loop
  // then runs a raw Value* with no per-push capacity checks. The arena only
  // ever grows, so a warm call never reallocates.
  if (ec.values.size() < static_cast<size_t>(stack_base) + tf.max_stack) {
    ec.values.resize(static_cast<size_t>(stack_base) + tf.max_stack);
  }
  ec.frames.push_back(
      {&tf, 0, func_index, locals_base, stack_base, tf.result_arity});
  if (ec.frames.size() > ec.peak_frames) {
    ec.peak_frames = static_cast<uint32_t>(ec.frames.size());
  }
  return {};
}

Status Instance::invoke(uint32_t func_index, std::span<const Value> args, Value* result) {
  if (func_index < module_->num_imported_funcs) {
    return invoke_host(func_index, args, result);
  }
  ExecContext& ec = exec_;
  const size_t base_frames = ec.frames.size();
  const uint32_t base_top = ec.top;
  const size_t base_locals = ec.locals.size();

  if (ec.values.size() < static_cast<size_t>(ec.top) + args.size()) {
    ec.values.resize(static_cast<size_t>(ec.top) + args.size());
  }
  if (!args.empty()) {
    std::memcpy(ec.values.data() + ec.top, args.data(), args.size() * sizeof(Value));
  }
  ec.top += static_cast<uint32_t>(args.size());

  Status st = push_frame(func_index);
  if (st.ok()) st = run(base_frames, result);
  if (!st.ok()) {
    // Unwind everything this call pushed so the shared ExecContext stays
    // consistent for the enclosing call (or the next one).
    ec.frames.resize(base_frames);
    ec.locals.resize(base_locals);
    ec.top = base_top;
  }
  return st;
}

Status Instance::run(size_t base_frames, Value* result) {
#if WARAN_HAS_THREADED_DISPATCH
  if (dispatch_ == Dispatch::kThreaded) return run_threaded(base_frames, result);
#endif
  if (dispatch_ == Dispatch::kSpecialized) {
    return run_specialized(base_frames, result);
  }
  return run_switch(base_frames, result);
}

// The three dispatcher bodies are generated from one shared core so their
// semantics cannot drift; the switch build is the differential-test oracle
// for the threaded and specialized hot paths.
#define WARAN_RUN_NAME run_switch
#define WARAN_INTERP_THREADED 0
#include "wasm/interp_loop.inc"

#if WARAN_HAS_THREADED_DISPATCH
#define WARAN_RUN_NAME run_threaded
#define WARAN_INTERP_THREADED 1
#include "wasm/interp_loop.inc"
#else
Status Instance::run_threaded(size_t base_frames, Value* result) {
  return run_switch(base_frames, result);
}
#endif

// Tier-2 backend: threaded dispatch (switch where computed goto is
// unavailable) plus the profiling hooks that feed the specializer.
#define WARAN_RUN_NAME run_specialized
#define WARAN_INTERP_THREADED WARAN_HAS_THREADED_DISPATCH
#define WARAN_INTERP_TIER2 1
#include "wasm/interp_loop.inc"

void Linker::register_func(std::string module, std::string name, HostFunc fn) {
  funcs_[{std::move(module), std::move(name)}] = std::move(fn);
}

const HostFunc* Linker::lookup(const std::string& module, const std::string& name) const {
  auto it = funcs_.find({module, name});
  return it == funcs_.end() ? nullptr : &it->second;
}

}  // namespace waran::wasm
