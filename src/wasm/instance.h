// Module instantiation and execution. An Instance owns the runtime state of
// one loaded plugin: linear memory, globals, the indirect-call table, and
// resolved host imports. Execution is an explicit-frame interpreter over the
// translated micro-op stream (wasm/translate.h): control flow is
// pre-resolved into direct jumps, the operand stack is a raw Value* against
// a buffer reserved once per frame entry, and dispatch is computed-goto
// threaded on GCC/Clang (with a portable switch fallback that doubles as
// the differential-test oracle). wasm->wasm calls push interpreter frames
// onto a reusable ExecContext instead of recursing natively, so call depth
// is bounded exactly and cheaply, and a warm repeated call performs zero
// heap allocations. Fuel metering (the mechanism WA-RAN uses to bound
// plugin execution time against the 5G slot deadline) is charged per
// straight-line segment rather than per instruction — see doc/interpreter.md.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "wasm/host.h"
#include "wasm/memory.h"
#include "wasm/module.h"
#include "wasm/specialize.h"
#include "wasm/translate.h"

// Threaded (computed-goto) dispatch needs the GNU labels-as-values
// extension; define WARAN_INTERP_SWITCH to force the portable switch loop
// even where the extension is available.
#if !defined(WARAN_INTERP_SWITCH) && (defined(__GNUC__) || defined(__clang__))
#define WARAN_HAS_THREADED_DISPATCH 1
#else
#define WARAN_HAS_THREADED_DISPATCH 0
#endif

namespace waran::wasm {

/// Interpreter dispatch strategy. kDefault resolves to threaded
/// (computed-goto) when the toolchain supports it, else the switch loop;
/// kSwitch forces the portable loop — differential tests use it as the
/// oracle against the threaded hot path. kSpecialized is the tier-2
/// backend: threaded dispatch plus per-function call/branch profiling and
/// lazy tier-up into specialized streams (wasm/specialize.h). All backends
/// execute observably identical semantics (results, traps, fuel, stats).
/// The WARAN_DISPATCH env var ("switch" | "threaded" | "specialized")
/// forces a backend wherever the embedder left kDefault; explicit pins —
/// e.g. the differential oracle's — always win over the env.
enum class Dispatch : uint8_t { kDefault = 0, kThreaded, kSwitch, kSpecialized };

class CodeCache;

struct InstanceOptions {
  /// Opaque pointer surfaced to host functions via HostContext::user_data.
  void* user_data = nullptr;
  /// Maximum interpreter call depth (wasm->wasm recursion). Frames are
  /// interpreter state, not native stack, so this can be raised into the
  /// tens of thousands without risking the host stack.
  uint32_t max_call_depth = 256;
  Dispatch dispatch = Dispatch::kDefault;
  /// Tier-2 code cache for Dispatch::kSpecialized (non-owning; must outlive
  /// the instance and only be used from one thread — the rt layer hands
  /// each cell's instances the cell's own cache). Null makes the instance
  /// own a private cache, so kSpecialized works standalone too.
  CodeCache* code_cache = nullptr;
  /// Calls of one function before its stream tiers up (kSpecialized only;
  /// clamped to >= 1, where the very first call already runs specialized).
  uint32_t tier_up_threshold = 32;
};

/// Per-call execution policy, threaded from the embedder (PluginManager,
/// RIC, scheduler) down to the interpreter.
struct CallOptions {
  /// Fuel budget for this call only: nullopt inherits the instance-level
  /// set_fuel()/disable_fuel() state, a positive value arms metering with
  /// exactly that budget (and restores the prior state afterwards), and 0
  /// runs the call unmetered.
  std::optional<uint64_t> fuel;
  /// Wall-clock budget for this call; checked at fuel-charge points (every
  /// control transfer), trapping with kFuelExhausted when exceeded so the
  /// embedder's overrun accounting treats it like a fuel deadline.
  std::optional<std::chrono::nanoseconds> deadline;
};

/// Per-call observability, filled by Instance::call for the embedder to
/// feed into its per-plugin cost accounting (common/stats::CallCostAcc).
struct CallStats {
  /// Fuel consumed by this call (== instructions retired when the call was
  /// unmetered; == the full budget when the call exhausted it).
  uint64_t fuel_used = 0;
  /// Instructions retired by this call (including nested wasm->wasm and
  /// re-entrant host->wasm work).
  uint64_t instrs_retired = 0;
  /// Wall-clock duration of the call.
  uint64_t wall_ns = 0;
  /// Deepest interpreter call-frame depth reached during the call.
  uint32_t peak_stack_depth = 0;
};

class Instance {
 public:
  /// Resolves imports against `linker`, allocates memory/table, evaluates
  /// global initializers, applies data/element segments (bounds-checked,
  /// failing instantiation on overflow per spec), then runs the start
  /// function. The module must already be validated. Uses the module's
  /// attached translation (Module::translated) when present, else lowers
  /// the bodies here.
  static Result<std::unique_ptr<Instance>> instantiate(
      std::shared_ptr<const Module> module, const Linker& linker,
      const InstanceOptions& options = {});

  /// Releases this instance's module reference on its code cache (tier-2
  /// entries of a module are dropped when its last instance goes away).
  ~Instance();

  // -- Calls ---------------------------------------------------------------

  /// Calls an exported function by name with type-checked arguments under
  /// the given per-call policy; fills `stats` (if non-null) with the call's
  /// cost. Performs no heap allocation once the instance is warm.
  Result<std::optional<TypedValue>> call(std::string_view export_name,
                                         std::span<const TypedValue> args,
                                         const CallOptions& options,
                                         CallStats* stats = nullptr);

  /// Convenience overload: default policy (inherits instance-level fuel).
  Result<std::optional<TypedValue>> call(std::string_view export_name,
                                         std::span<const TypedValue> args) {
    return call(export_name, args, CallOptions{}, nullptr);
  }

  // -- Fuel ----------------------------------------------------------------

  /// Arms instance-level fuel metering: each retired instruction consumes
  /// one unit; when the budget cannot cover the next straight-line segment
  /// the current call traps with kFuelExhausted. CallOptions::fuel
  /// overrides this per call; this state persists across calls.
  void set_fuel(uint64_t fuel) {
    fuel_ = fuel;
    fuel_enabled_ = true;
  }
  void disable_fuel() { fuel_enabled_ = false; }
  uint64_t fuel() const { return fuel_; }
  bool fuel_enabled() const { return fuel_enabled_; }

  /// Total instructions retired over the instance lifetime.
  uint64_t instructions_retired() const { return instructions_retired_; }

  // -- Introspection -------------------------------------------------------

  Memory* memory() { return memory_ ? &*memory_ : nullptr; }
  const Memory* memory() const { return memory_ ? &*memory_ : nullptr; }
  const Module& module() const { return *module_; }
  void* user_data() const { return user_data_; }

  /// Frame-depth limit enforced by push_frame (admission analysis checks
  /// static frame needs against this).
  uint32_t max_call_depth() const { return max_call_depth_; }

  /// The dispatch strategy actually in use (kDefault resolved).
  Dispatch dispatch() const { return dispatch_; }

  // -- Tiering (Dispatch::kSpecialized) ------------------------------------

  /// Functions of this instance that have tiered up to a specialized
  /// stream (each counted once, at its own threshold crossing).
  uint64_t tier_up_events() const { return tier_up_events_; }

  /// The code cache this instance tiers into (null unless kSpecialized).
  const CodeCache* code_cache() const { return cache_; }

  /// The translated micro-op module this instance executes — the module's
  /// shared translation, or a private lowering when the embedder skipped
  /// translate_module(). This is what the instance retains against its
  /// code cache.
  const std::shared_ptr<const TranslatedModule>& translation() const {
    return translated_;
  }

  /// The stream the next call of defined function `defined_index` will
  /// execute (tier-1 until the threshold crossing). Introspection only.
  const TranslatedFunc* active_stream(uint32_t defined_index) const {
    return dispatch_ == Dispatch::kSpecialized
               ? active_[defined_index]
               : &translated_->funcs[defined_index];
  }

  std::optional<uint32_t> find_export(std::string_view name, ImportKind kind) const;

  Value global(uint32_t index) const { return globals_[index]; }

 private:
  Instance() = default;

  /// Reusable interpreter state: one operand-value arena, one explicit
  /// call-frame stack and one locals arena shared by every call on this
  /// instance (including re-entrant host->wasm calls, which nest on the
  /// same stacks). The arenas only ever grow, so a warm call allocates
  /// nothing. The operand arena is oversized: each frame reserves
  /// stack_base + max_stack cells at entry and the hot loop then runs a raw
  /// Value* with no bounds checks; `top` is the live height, maintained
  /// only at suspension points (calls, host trampolines, returns).
  struct ExecContext {
    struct Frame {
      const TranslatedFunc* tf;
      uint32_t ip;           // resume point (micro-op index)
      uint32_t func_index;   // for diagnostics / signature lookups
      uint32_t locals_base;  // offset of this frame's locals in the arena
      uint32_t stack_base;   // operand height at entry (args consumed)
      uint8_t result_arity;
    };
    std::vector<Value> values;  // operand arena; live region is [0, top)
    uint32_t top = 0;
    std::vector<Frame> frames;
    std::vector<Value> locals;  // arena: frame locals live at [locals_base, ...)
    uint32_t peak_frames = 0;   // high-water mark for the current call
  };

  /// Runs `func_index` with `args`, iterating frames until the call that
  /// pushed `base_frames` returns. Never recurses for wasm->wasm calls;
  /// host functions may re-enter via Instance::call, nesting on exec_.
  Status invoke(uint32_t func_index, std::span<const Value> args, Value* result);
  Status run(size_t base_frames, Value* result);
  // The three dispatcher bodies, generated from wasm/interp_loop.inc.
  Status run_switch(size_t base_frames, Value* result);
  Status run_threaded(size_t base_frames, Value* result);
  Status run_specialized(size_t base_frames, Value* result);
  Status push_frame(uint32_t func_index);
  Status invoke_host(uint32_t import_index, std::span<const Value> args, Value* result);

  std::shared_ptr<const Module> module_;
  std::shared_ptr<const TranslatedModule> translated_;
  std::optional<Memory> memory_;
  std::vector<Value> globals_;                 // defined globals only (no global imports)
  std::vector<uint32_t> table_;                // func indices; kNullFuncRef = null
  // Resolved host imports, copied by value: the Linker used at
  // instantiation time need not outlive the instance.
  std::vector<HostFunc> host_funcs_;
  // "module.name" per host import, for trace spans around trampolines.
  std::vector<std::string> host_func_names_;
  ExecContext exec_;
  void* user_data_ = nullptr;
  uint32_t max_call_depth_ = 256;
  Dispatch dispatch_ = Dispatch::kSwitch;

  // Tier-2 state (populated only under Dispatch::kSpecialized). `active_`
  // holds, per defined function, the stream push_frame binds into new
  // frames: the tier-1 stream until `profile_[i].calls` crosses the
  // threshold, the cache's specialized stream afterwards. Tier-up runs
  // synchronously inside push_frame on the calling (cell worker) thread;
  // in-flight frames keep their old stream pointer, which stays valid
  // because streams are never mutated and the cache pins this module's
  // entries while the instance lives (retain_module/release_module).
  CodeCache* cache_ = nullptr;
  std::unique_ptr<CodeCache> owned_cache_;
  std::vector<FuncProfile> profile_;           // per defined function
  std::vector<const TranslatedFunc*> active_;  // per defined function
  uint32_t tier_up_threshold_ = 32;
  uint64_t tier_up_events_ = 0;

  bool fuel_enabled_ = false;
  uint64_t fuel_ = 0;
  uint64_t instructions_retired_ = 0;

  bool deadline_armed_ = false;
  /// rt::Clock::global() timestamp past which the call traps. Routed
  /// through the rt clock (not steady_clock) so virtual-time campaigns are
  /// deterministic: with a frozen virtual clock a deadline never expires
  /// and the fuel budget is the only bound.
  uint64_t deadline_ns_ = 0;
  /// Charge-point countdown to the next deadline poll. While a deadline is
  /// armed it cycles every kDeadlinePollStride charges; unarmed it idles at
  /// kIdlePollStride so the hot path is a single predictable dec-and-test
  /// that never touches the clock.
  uint32_t poll_countdown_ = 1u << 30;

  static constexpr uint32_t kDeadlinePollStride = 64;
  static constexpr uint32_t kIdlePollStride = 1u << 30;
  static constexpr uint32_t kNullFuncRef = UINT32_MAX;
};

}  // namespace waran::wasm
