// Module instantiation and execution. An Instance owns the runtime state of
// one loaded plugin: linear memory, globals, the indirect-call table, and
// resolved host imports. Execution is a validated-bytecode interpreter with
// optional fuel metering (the mechanism WA-RAN uses to bound plugin
// execution time against the 5G slot deadline).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "wasm/host.h"
#include "wasm/memory.h"
#include "wasm/module.h"

namespace waran::wasm {

struct InstanceOptions {
  /// Opaque pointer surfaced to host functions via HostContext::user_data.
  void* user_data = nullptr;
  /// Maximum interpreter call depth (wasm->wasm recursion).
  uint32_t max_call_depth = 256;
};

class Instance {
 public:
  /// Resolves imports against `linker`, allocates memory/table, evaluates
  /// global initializers, applies data/element segments (bounds-checked,
  /// failing instantiation on overflow per spec), then runs the start
  /// function. The module must already be validated.
  static Result<std::unique_ptr<Instance>> instantiate(
      std::shared_ptr<const Module> module, const Linker& linker,
      const InstanceOptions& options = {});

  // -- Calls ---------------------------------------------------------------

  /// Calls an exported function by name with type-checked arguments.
  Result<std::optional<TypedValue>> call(std::string_view export_name,
                                         std::span<const TypedValue> args);

  /// Calls by function index with untyped values (caller guarantees types).
  Result<std::optional<Value>> call_index(uint32_t func_index,
                                          std::span<const Value> args);

  // -- Fuel ----------------------------------------------------------------

  /// Arms fuel metering: each retired instruction consumes one unit; when it
  /// hits zero the current call traps with kFuelExhausted.
  void set_fuel(uint64_t fuel) {
    fuel_ = fuel;
    fuel_enabled_ = true;
  }
  void disable_fuel() { fuel_enabled_ = false; }
  uint64_t fuel() const { return fuel_; }
  bool fuel_enabled() const { return fuel_enabled_; }

  /// Total instructions retired over the instance lifetime.
  uint64_t instructions_retired() const { return instructions_retired_; }

  // -- Introspection -------------------------------------------------------

  Memory* memory() { return memory_ ? &*memory_ : nullptr; }
  const Memory* memory() const { return memory_ ? &*memory_ : nullptr; }
  const Module& module() const { return *module_; }
  void* user_data() const { return user_data_; }

  std::optional<uint32_t> find_export(std::string_view name, ImportKind kind) const;

  Value global(uint32_t index) const { return globals_[index]; }

 private:
  Instance() = default;

  friend class Interp;

  Status invoke(uint32_t func_index, std::span<const Value> args, Value* result,
                uint32_t depth);
  Status invoke_host(uint32_t import_index, std::span<const Value> args, Value* result);

  std::shared_ptr<const Module> module_;
  std::optional<Memory> memory_;
  std::vector<Value> globals_;                 // defined globals only (no global imports)
  std::vector<uint32_t> table_;                // func indices; kNullFuncRef = null
  // Resolved host imports, copied by value: the Linker used at
  // instantiation time need not outlive the instance.
  std::vector<HostFunc> host_funcs_;
  void* user_data_ = nullptr;
  uint32_t max_call_depth_ = 256;

  bool fuel_enabled_ = false;
  uint64_t fuel_ = 0;
  uint64_t instructions_retired_ = 0;

  static constexpr uint32_t kNullFuncRef = UINT32_MAX;
};

}  // namespace waran::wasm
