// Translation pass: lowers each validated function body from the decoder's
// structured Instr vector into a flat, execution-oriented micro-op stream.
// The stream is what Instance::run actually executes:
//   - control flow is pre-resolved: block/loop/if/br/br_if/br_table compile
//     to direct jumps carrying baked-in (target, keep, height) tuples, so the
//     interpreter needs no runtime label stack;
//   - fuel-segment charges become explicit kSeg micro-ops (or immediates on
//     branch micro-ops), placed so metered semantics are bit-identical to the
//     structured interpreter's charge points;
//   - hot peephole patterns emitted by wcc (local.get local.get <binop>,
//     local.get <const> <cmp> br_if, local.get local.set, ...) fuse into
//     single superinstruction micro-ops.
// See doc/interpreter.md ("Translation pipeline") for the full mapping.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "wasm/module.h"

namespace waran::wasm {

// Every micro-op, in dispatch-table order. The list is expanded twice by the
// interpreter core (wasm/interp_loop.inc): once into `case` labels for the
// portable switch loop and once into a computed-goto `&&label` table for
// threaded dispatch, so a missing handler is a compile error, not a runtime
// hole. Naming: LL* = two-local operand form, LC* = local+constant form,
// C* = const folded into the top of stack, BrIfLL*/BrIfLC* = fused
// compare-and-branch.
#define WARAN_UOP_LIST(X)                                                     \
  /* control */                                                               \
  X(Seg) X(Br) X(BrIf) X(Jump) X(JumpZ) X(JumpNZ) X(BrTable) X(Return)        \
  X(Unreachable) X(CallWasm) X(CallHost) X(CallIndirect)                      \
  /* parametric & variables */                                                \
  X(Drop) X(Select) X(LocalGet) X(LocalSet) X(LocalTee) X(GlobalGet)          \
  X(GlobalSet) X(Const)                                                       \
  /* memory */                                                                \
  X(I32Load) X(I64Load) X(F32Load) X(F64Load)                                 \
  X(I32Load8S) X(I32Load8U) X(I32Load16S) X(I32Load16U)                       \
  X(I64Load8S) X(I64Load8U) X(I64Load16S) X(I64Load16U)                       \
  X(I64Load32S) X(I64Load32U)                                                 \
  X(I32Store) X(I64Store) X(F32Store) X(F64Store)                             \
  X(I32Store8) X(I32Store16) X(I64Store8) X(I64Store16) X(I64Store32)         \
  X(MemorySize) X(MemoryGrow) X(MemoryCopy) X(MemoryFill)                     \
  /* comparisons */                                                           \
  X(I32Eqz) X(I32Eq) X(I32Ne) X(I32LtS) X(I32LtU) X(I32GtS) X(I32GtU)         \
  X(I32LeS) X(I32LeU) X(I32GeS) X(I32GeU)                                     \
  X(I64Eqz) X(I64Eq) X(I64Ne) X(I64LtS) X(I64LtU) X(I64GtS) X(I64GtU)         \
  X(I64LeS) X(I64LeU) X(I64GeS) X(I64GeU)                                     \
  X(F32Eq) X(F32Ne) X(F32Lt) X(F32Gt) X(F32Le) X(F32Ge)                       \
  X(F64Eq) X(F64Ne) X(F64Lt) X(F64Gt) X(F64Le) X(F64Ge)                       \
  /* numeric */                                                               \
  X(I32Clz) X(I32Ctz) X(I32Popcnt) X(I32Add) X(I32Sub) X(I32Mul)              \
  X(I32DivS) X(I32DivU) X(I32RemS) X(I32RemU) X(I32And) X(I32Or) X(I32Xor)    \
  X(I32Shl) X(I32ShrS) X(I32ShrU) X(I32Rotl) X(I32Rotr)                       \
  X(I64Clz) X(I64Ctz) X(I64Popcnt) X(I64Add) X(I64Sub) X(I64Mul)              \
  X(I64DivS) X(I64DivU) X(I64RemS) X(I64RemU) X(I64And) X(I64Or) X(I64Xor)    \
  X(I64Shl) X(I64ShrS) X(I64ShrU) X(I64Rotl) X(I64Rotr)                       \
  X(F32Abs) X(F32Neg) X(F32Ceil) X(F32Floor) X(F32Trunc) X(F32Nearest)        \
  X(F32Sqrt) X(F32Add) X(F32Sub) X(F32Mul) X(F32Div) X(F32Min) X(F32Max)      \
  X(F32Copysign)                                                              \
  X(F64Abs) X(F64Neg) X(F64Ceil) X(F64Floor) X(F64Trunc) X(F64Nearest)        \
  X(F64Sqrt) X(F64Add) X(F64Sub) X(F64Mul) X(F64Div) X(F64Min) X(F64Max)      \
  X(F64Copysign)                                                              \
  /* conversions (reinterprets are identities on untagged cells: elided) */   \
  X(I32WrapI64)                                                               \
  X(I32TruncF32S) X(I32TruncF32U) X(I32TruncF64S) X(I32TruncF64U)             \
  X(I64TruncF32S) X(I64TruncF32U) X(I64TruncF64S) X(I64TruncF64U)             \
  X(I32TruncSatF32S) X(I32TruncSatF32U) X(I32TruncSatF64S)                    \
  X(I32TruncSatF64U) X(I64TruncSatF32S) X(I64TruncSatF32U)                    \
  X(I64TruncSatF64S) X(I64TruncSatF64U)                                       \
  X(I64ExtendI32S) X(I64ExtendI32U)                                           \
  X(F32ConvertI32S) X(F32ConvertI32U) X(F32ConvertI64S) X(F32ConvertI64U)     \
  X(F32DemoteF64)                                                             \
  X(F64ConvertI32S) X(F64ConvertI32U) X(F64ConvertI64S) X(F64ConvertI64U)     \
  X(F64PromoteF32)                                                            \
  X(I32Extend8S) X(I32Extend16S) X(I64Extend8S) X(I64Extend16S)               \
  X(I64Extend32S)                                                             \
  /* fused superinstructions */                                               \
  X(LLAddI32) X(LLSubI32) X(LLMulI32) X(LLAndI32) X(LLOrI32) X(LLXorI32)      \
  X(LCAddI32) X(LCMulI32) X(LCAndI32) X(LCOrI32) X(LCXorI32) X(LCShlI32)      \
  X(LCShrSI32) X(LCShrUI32)                                                   \
  X(CAddI32) X(CMulI32) X(CAndI32)                                            \
  X(LLEqI32) X(LLNeI32) X(LLLtSI32) X(LLLtUI32) X(LLGtSI32) X(LLGtUI32)       \
  X(LLLeSI32) X(LLLeUI32) X(LLGeSI32) X(LLGeUI32)                             \
  X(LCEqI32) X(LCNeI32) X(LCLtSI32) X(LCLtUI32) X(LCGtSI32) X(LCGtUI32)       \
  X(LCLeSI32) X(LCLeUI32) X(LCGeSI32) X(LCGeUI32)                             \
  X(BrIfLLEq) X(BrIfLLNe) X(BrIfLLLtS) X(BrIfLLLtU) X(BrIfLLGtS)              \
  X(BrIfLLGtU) X(BrIfLLLeS) X(BrIfLLLeU) X(BrIfLLGeS) X(BrIfLLGeU)            \
  X(BrIfLCEq) X(BrIfLCNe) X(BrIfLCLtS) X(BrIfLCLtU) X(BrIfLCGtS)              \
  X(BrIfLCGtU) X(BrIfLCLeS) X(BrIfLCLeU) X(BrIfLCGeS) X(BrIfLCGeU)            \
  X(LocalMove) X(LCAddSetI32)                                                 \
  /* tier-2 specialized forms (wasm/specialize.h). The baseline translator   \
     never emits these; only the profile-guided specializer does. Every      \
     dispatcher still carries their handlers so any backend can execute a    \
     specialized stream (the differential oracle depends on that). */        \
  X(Jump2) X(JumpZ2) X(JumpNZ2)                                              \
  X(SegLocalGet) X(SegLocalMove) X(SegLCAddSetI32)                           \
  X(LLGet) X(LGetCI32)                                                       \
  X(CSubI32) X(CDivSI32) X(CDivUI32) X(CRemSI32) X(CRemUI32)                 \
  X(CShlI32) X(CShrSI32) X(CShrUI32) X(COrI32) X(CXorI32)                    \
  X(AddSetI32) X(SubSetI32) X(MulSetI32) X(AndSetI32) X(OrSetI32)            \
  X(XorSetI32)

enum class UOp : uint16_t {
#define WARAN_UOP_ENUM(name) k##name,
  WARAN_UOP_LIST(WARAN_UOP_ENUM)
#undef WARAN_UOP_ENUM
};

inline constexpr size_t kNumUOps = 0
#define WARAN_UOP_COUNT(name) +1
    WARAN_UOP_LIST(WARAN_UOP_COUNT)
#undef WARAN_UOP_COUNT
    ;

/// Branch/jump target meaning "pop the current frame" (a branch to the
/// function-level label). Valid micro-op indices never reach this value.
inline constexpr uint32_t kRetTarget = UINT32_MAX;

/// One micro-op, 16 bytes. Field use by op:
///   kSeg             b = fuel-segment length to charge
///   kBr/kBrIf        a = values kept across the branch, b = target micro-op
///                    (kRetTarget: return), pair = {unwind height, taken seg}
///   kJump/kJumpZ/NZ  b = target micro-op, pair.y = taken-edge seg
///   kBrTable         b = base into TranslatedFunc::br_entries,
///                    pair.x = number of explicit targets (default follows)
///   kCallWasm        b = callee function index
///   kCallHost        b = import index, a = #params, pair.x = has result
///   kCallIndirect    b = expected type index, a = #params, pair.x = has result
///   kConst           imm.u64 = pre-built Value bits
///   local/global ops b = index; loads/stores: b = memarg offset
///   LL*              a = lhs local, b = rhs local
///   LC*              a = lhs local, imm.i32 = constant (shift counts
///                    pre-masked; LCSub is canonicalized into LCAdd)
///   C*               imm.i32 = constant applied to the stack top in place
///   BrIfLL*/BrIfLC*  a = lhs local, pair.x = rhs local / constant bits,
///                    b = target (kRetTarget: return), pair.y = taken seg
///   kLocalMove       a = src local, b = dst local
///   kLCAddSetI32     a = src local, b = dst local, imm.i32 = addend
/// Tier-2 forms (specializer-only; `pair` fields are written explicitly so
/// layouts do not depend on how `imm.i32` aliases the union):
///   kJump2/Z2/NZ2    b = final target after a collapsed jump->jump chain,
///                    pair.y = first edge seg, pair.x = second edge seg
///                    (charged in that order — the exact tier-1 sequence)
///   kSegLocalGet     b = local, pair.y = segment charge
///   kSegLocalMove    a = src local, b = dst local, pair.y = segment charge
///   kSegLCAddSetI32  a = src local, b = dst local, pair.x = addend bits,
///                    pair.y = segment charge
///   kLLGet           a = first local pushed, b = second local pushed
///   kLGetCI32        a = local pushed, pair.x = Value bits of the constant
///                    pushed after it (fusion requires the original kConst
///                    bits fit in 32 bits, so zero-extension reconstructs
///                    them exactly)
///   C*I32 (tier-2)   imm.i32 = constant folded into the stack top (div/rem
///                    keep the operand order and trap text of the plain op;
///                    shift handlers mask the count at run time)
///   *SetI32          b = dst local (pops two operands, stores the result)
struct UInstr {
  UOp op = UOp::kUnreachable;
  uint16_t a = 0;
  uint32_t b = 0;
  union {
    uint64_t u64;
    int32_t i32;
    struct {
      uint32_t x;
      uint32_t y;
    } pair;
  } imm = {};
};

static_assert(sizeof(UInstr) == 16, "keep the micro-op cell compact");

/// One resolved br_table arm: where to jump, what to charge, how to unwind.
struct UBrEntry {
  uint32_t target = 0;  // micro-op index, or kRetTarget
  uint32_t seg = 0;     // taken-edge fuel segment
  uint32_t height = 0;  // operand-stack height to unwind to (frame-relative)
  uint16_t keep = 0;    // values carried across the branch
};

/// The translated form of one defined function.
struct TranslatedFunc {
  std::vector<UInstr> ops;
  std::vector<UBrEntry> br_entries;
  /// Worst-case operand-stack height (validator- and translator-computed);
  /// the interpreter reserves this once at frame entry and then runs a raw
  /// Value* stack pointer with no per-push capacity checks.
  uint32_t max_stack = 0;
  uint32_t num_params = 0;
  uint32_t num_locals = 0;  // params + declared locals
  uint8_t result_arity = 0;
};

struct TranslatedModule {
  std::vector<TranslatedFunc> funcs;  // parallel to Module::codes
};

const char* uop_name(UOp op);

/// Lowers defined function `defined_index` (index into Module::codes). The
/// module must already be validated; on a validated module this only fails
/// on representation limits (e.g. >64k locals referenced by a fused op is
/// simply not fused, but >64k parameters cannot be encoded at all).
Result<TranslatedFunc> translate_function(const Module& m, uint32_t defined_index);

/// Lowers every defined function.
Result<std::shared_ptr<const TranslatedModule>> translate(const Module& m);

/// Lowers every defined function and attaches the result to `m.translated`
/// so all instances share one stream. Instance::instantiate translates on
/// the fly when this was not called.
Status translate_module(Module& m);

/// Miscompile firewall hook. When set (waran::analysis installs its stream
/// verifier here; see analysis/analysis.h), translate_function() checks its
/// own output and Instance re-checks every tier-2 specialized stream before
/// swapping it in, so a bad lowering fails at rewrite time instead of
/// surfacing as a runtime divergence. Null (the default) skips all checks —
/// the production hot path pays nothing. The hook must be thread-safe and
/// is read with relaxed atomics; install it once at startup, before
/// translation runs on other threads.
using StreamFirewall = Status (*)(const Module&, const TranslatedFunc&);
void set_stream_firewall(StreamFirewall fw);
StreamFirewall stream_firewall();

}  // namespace waran::wasm
