#include "wasm/disasm.h"

#include <cinttypes>
#include <cstdio>
#include <sstream>

namespace waran::wasm {
namespace {

void append_limits(std::ostringstream& out, const Limits& l) {
  out << l.min;
  if (l.max) out << " " << *l.max;
}

const char* kind_name(ImportKind k) {
  switch (k) {
    case ImportKind::kFunc: return "func";
    case ImportKind::kTable: return "table";
    case ImportKind::kMemory: return "memory";
    case ImportKind::kGlobal: return "global";
  }
  return "?";
}

void append_value(std::ostringstream& out, const ConstExpr& e) {
  switch (e.kind) {
    case ConstExpr::Kind::kI32: out << "i32.const " << e.value.as_i32(); break;
    case ConstExpr::Kind::kI64: out << "i64.const " << e.value.as_i64(); break;
    case ConstExpr::Kind::kF32: {
      char buf[48];
      std::snprintf(buf, sizeof(buf), "f32.const %.9g",
                    static_cast<double>(e.value.as_f32()));
      out << buf;
      break;
    }
    case ConstExpr::Kind::kF64: {
      char buf[48];
      std::snprintf(buf, sizeof(buf), "f64.const %.17g", e.value.as_f64());
      out << buf;
      break;
    }
    case ConstExpr::Kind::kGlobalGet: out << "global.get " << e.global_index; break;
  }
}

void append_instr(std::ostringstream& out, const Code& code, const Instr& ins) {
  out << to_string(ins.op);
  switch (ins.op) {
    case Op::kBlock:
    case Op::kLoop:
    case Op::kIf:
      if (ins.block_arity != 0) {
        uint32_t raw = code.body[ins.imm.ctrl.end_pc].imm.index;
        if (is_val_type(static_cast<uint8_t>(raw))) {
          out << " (result " << to_string(static_cast<ValType>(raw)) << ")";
        }
      }
      break;
    case Op::kBr:
    case Op::kBrIf:
    case Op::kCall:
    case Op::kLocalGet:
    case Op::kLocalSet:
    case Op::kLocalTee:
    case Op::kGlobalGet:
    case Op::kGlobalSet:
      out << " " << ins.imm.index;
      break;
    case Op::kBrTable: {
      const BrTable& bt = code.br_tables[ins.imm.br_table_index];
      for (uint32_t t : bt.targets) out << " " << t;
      out << " " << bt.default_target;
      break;
    }
    case Op::kCallIndirect:
      out << " (type " << ins.imm.call_indirect.type_index << ")";
      break;
    case Op::kI32Const:
      out << " " << ins.imm.i32;
      break;
    case Op::kI64Const:
      out << " " << ins.imm.i64;
      break;
    case Op::kF32Const: {
      char buf[48];
      std::snprintf(buf, sizeof(buf), " %.9g", static_cast<double>(ins.imm.f32));
      out << buf;
      break;
    }
    case Op::kF64Const: {
      char buf[48];
      std::snprintf(buf, sizeof(buf), " %.17g", ins.imm.f64);
      out << buf;
      break;
    }
    default:
      if (ins.op >= Op::kI32Load && ins.op <= Op::kI64Store32) {
        if (ins.imm.mem.offset != 0) out << " offset=" << ins.imm.mem.offset;
        out << " align=" << (1u << ins.imm.mem.align);
      }
      break;
  }
}

void append_body(std::ostringstream& out, const Code& code, const char* base_indent) {
  int depth = 1;
  for (size_t pc = 0; pc < code.body.size(); ++pc) {
    const Instr& ins = code.body[pc];
    if (ins.op == Op::kEnd || ins.op == Op::kElse) --depth;
    if (depth < 0) depth = 0;
    out << base_indent;
    for (int i = 0; i < depth; ++i) out << "  ";
    append_instr(out, code, ins);
    out << "\n";
    if (ins.op == Op::kBlock || ins.op == Op::kLoop || ins.op == Op::kIf ||
        ins.op == Op::kElse) {
      ++depth;
    }
  }
}

void append_signature(std::ostringstream& out, const FuncType& type) {
  if (!type.params.empty()) {
    out << " (param";
    for (ValType p : type.params) out << " " << to_string(p);
    out << ")";
  }
  if (!type.results.empty()) {
    out << " (result";
    for (ValType r : type.results) out << " " << to_string(r);
    out << ")";
  }
}

}  // namespace

std::string disassemble_function(const Module& module, uint32_t defined_index) {
  std::ostringstream out;
  uint32_t func_index = module.num_imported_funcs + defined_index;
  const Code& code = module.codes[defined_index];
  out << "  (func $" << func_index;
  append_signature(out, module.func_type(func_index));
  out << "\n";
  if (!code.locals.empty()) {
    out << "    (local";
    for (ValType l : code.locals) out << " " << to_string(l);
    out << ")\n";
  }
  append_body(out, code, "  ");
  out << "  )\n";
  return out.str();
}

std::string disassemble(const Module& module) {
  std::ostringstream out;
  out << "(module\n";
  for (size_t i = 0; i < module.types.size(); ++i) {
    out << "  (type " << i << " (func";
    append_signature(out, module.types[i]);
    out << "))\n";
  }
  for (const Import& imp : module.imports) {
    out << "  (import \"" << imp.module << "\" \"" << imp.name << "\" ("
        << kind_name(imp.kind);
    if (imp.kind == ImportKind::kFunc) {
      append_signature(out, module.types[imp.type_index]);
    }
    out << "))\n";
  }
  if (module.memory) {
    out << "  (memory ";
    append_limits(out, *module.memory);
    out << ")\n";
  }
  if (module.table) {
    out << "  (table ";
    append_limits(out, module.table->limits);
    out << " funcref)\n";
  }
  for (size_t i = 0; i < module.globals.size(); ++i) {
    const Global& g = module.globals[i];
    out << "  (global " << (module.num_imported_globals + i) << " "
        << (g.type.mut ? "(mut " : "(") << to_string(g.type.type) << ") (";
    append_value(out, g.init);
    out << "))\n";
  }
  for (const Export& e : module.exports) {
    out << "  (export \"" << e.name << "\" (" << kind_name(e.kind) << " " << e.index
        << "))\n";
  }
  if (module.start) out << "  (start " << *module.start << ")\n";
  for (const ElemSegment& seg : module.elems) {
    out << "  (elem (";
    append_value(out, seg.offset);
    out << ")";
    for (uint32_t fi : seg.func_indices) out << " " << fi;
    out << ")\n";
  }
  for (const DataSegment& seg : module.datas) {
    out << "  (data (";
    append_value(out, seg.offset);
    out << ") \"";
    static const char* kHex = "0123456789abcdef";
    for (uint8_t b : seg.bytes) {
      out << "\\" << kHex[b >> 4] << kHex[b & 0xf];
    }
    out << "\")\n";
  }
  for (size_t i = 0; i < module.codes.size(); ++i) {
    out << disassemble_function(module, static_cast<uint32_t>(i));
  }
  out << ")\n";
  return out.str();
}

}  // namespace waran::wasm
