#include "wasm/disasm.h"

#include <cinttypes>
#include <cstdio>
#include <sstream>

#include "wasm/specialize.h"
#include "wasm/translate.h"

namespace waran::wasm {
namespace {

void append_limits(std::ostringstream& out, const Limits& l) {
  out << l.min;
  if (l.max) out << " " << *l.max;
}

const char* kind_name(ImportKind k) {
  switch (k) {
    case ImportKind::kFunc: return "func";
    case ImportKind::kTable: return "table";
    case ImportKind::kMemory: return "memory";
    case ImportKind::kGlobal: return "global";
  }
  return "?";
}

void append_value(std::ostringstream& out, const ConstExpr& e) {
  switch (e.kind) {
    case ConstExpr::Kind::kI32: out << "i32.const " << e.value.as_i32(); break;
    case ConstExpr::Kind::kI64: out << "i64.const " << e.value.as_i64(); break;
    case ConstExpr::Kind::kF32: {
      char buf[48];
      std::snprintf(buf, sizeof(buf), "f32.const %.9g",
                    static_cast<double>(e.value.as_f32()));
      out << buf;
      break;
    }
    case ConstExpr::Kind::kF64: {
      char buf[48];
      std::snprintf(buf, sizeof(buf), "f64.const %.17g", e.value.as_f64());
      out << buf;
      break;
    }
    case ConstExpr::Kind::kGlobalGet: out << "global.get " << e.global_index; break;
  }
}

void append_instr(std::ostringstream& out, const Code& code, const Instr& ins) {
  out << to_string(ins.op);
  switch (ins.op) {
    case Op::kBlock:
    case Op::kLoop:
    case Op::kIf:
      if (ins.block_arity != 0) {
        uint32_t raw = code.body[ins.imm.ctrl.end_pc].imm.index;
        if (is_val_type(static_cast<uint8_t>(raw))) {
          out << " (result " << to_string(static_cast<ValType>(raw)) << ")";
        }
      }
      break;
    case Op::kBr:
    case Op::kBrIf:
    case Op::kCall:
    case Op::kLocalGet:
    case Op::kLocalSet:
    case Op::kLocalTee:
    case Op::kGlobalGet:
    case Op::kGlobalSet:
      out << " " << ins.imm.index;
      break;
    case Op::kBrTable: {
      const BrTable& bt = code.br_tables[ins.imm.br_table_index];
      for (uint32_t t : bt.targets) out << " " << t;
      out << " " << bt.default_target;
      break;
    }
    case Op::kCallIndirect:
      out << " (type " << ins.imm.call_indirect.type_index << ")";
      break;
    case Op::kI32Const:
      out << " " << ins.imm.i32;
      break;
    case Op::kI64Const:
      out << " " << ins.imm.i64;
      break;
    case Op::kF32Const: {
      char buf[48];
      std::snprintf(buf, sizeof(buf), " %.9g", static_cast<double>(ins.imm.f32));
      out << buf;
      break;
    }
    case Op::kF64Const: {
      char buf[48];
      std::snprintf(buf, sizeof(buf), " %.17g", ins.imm.f64);
      out << buf;
      break;
    }
    default:
      if (ins.op >= Op::kI32Load && ins.op <= Op::kI64Store32) {
        if (ins.imm.mem.offset != 0) out << " offset=" << ins.imm.mem.offset;
        out << " align=" << (1u << ins.imm.mem.align);
      }
      break;
  }
}

void append_body(std::ostringstream& out, const Code& code, const char* base_indent) {
  int depth = 1;
  for (size_t pc = 0; pc < code.body.size(); ++pc) {
    const Instr& ins = code.body[pc];
    if (ins.op == Op::kEnd || ins.op == Op::kElse) --depth;
    if (depth < 0) depth = 0;
    out << base_indent;
    for (int i = 0; i < depth; ++i) out << "  ";
    append_instr(out, code, ins);
    out << "\n";
    if (ins.op == Op::kBlock || ins.op == Op::kLoop || ins.op == Op::kIf ||
        ins.op == Op::kElse) {
      ++depth;
    }
  }
}

void append_signature(std::ostringstream& out, const FuncType& type) {
  if (!type.params.empty()) {
    out << " (param";
    for (ValType p : type.params) out << " " << to_string(p);
    out << ")";
  }
  if (!type.results.empty()) {
    out << " (result";
    for (ValType r : type.results) out << " " << to_string(r);
    out << ")";
  }
}

}  // namespace

std::string disassemble_function(const Module& module, uint32_t defined_index) {
  std::ostringstream out;
  uint32_t func_index = module.num_imported_funcs + defined_index;
  const Code& code = module.codes[defined_index];
  out << "  (func $" << func_index;
  append_signature(out, module.func_type(func_index));
  out << "\n";
  if (!code.locals.empty()) {
    out << "    (local";
    for (ValType l : code.locals) out << " " << to_string(l);
    out << ")\n";
  }
  append_body(out, code, "  ");
  out << "  )\n";
  return out.str();
}

std::string disassemble(const Module& module) {
  std::ostringstream out;
  out << "(module\n";
  for (size_t i = 0; i < module.types.size(); ++i) {
    out << "  (type " << i << " (func";
    append_signature(out, module.types[i]);
    out << "))\n";
  }
  for (const Import& imp : module.imports) {
    out << "  (import \"" << imp.module << "\" \"" << imp.name << "\" ("
        << kind_name(imp.kind);
    if (imp.kind == ImportKind::kFunc) {
      append_signature(out, module.types[imp.type_index]);
    }
    out << "))\n";
  }
  if (module.memory) {
    out << "  (memory ";
    append_limits(out, *module.memory);
    out << ")\n";
  }
  if (module.table) {
    out << "  (table ";
    append_limits(out, module.table->limits);
    out << " funcref)\n";
  }
  for (size_t i = 0; i < module.globals.size(); ++i) {
    const Global& g = module.globals[i];
    out << "  (global " << (module.num_imported_globals + i) << " "
        << (g.type.mut ? "(mut " : "(") << to_string(g.type.type) << ") (";
    append_value(out, g.init);
    out << "))\n";
  }
  for (const Export& e : module.exports) {
    out << "  (export \"" << e.name << "\" (" << kind_name(e.kind) << " " << e.index
        << "))\n";
  }
  if (module.start) out << "  (start " << *module.start << ")\n";
  for (const ElemSegment& seg : module.elems) {
    out << "  (elem (";
    append_value(out, seg.offset);
    out << ")";
    for (uint32_t fi : seg.func_indices) out << " " << fi;
    out << ")\n";
  }
  for (const DataSegment& seg : module.datas) {
    out << "  (data (";
    append_value(out, seg.offset);
    out << ") \"";
    static const char* kHex = "0123456789abcdef";
    for (uint8_t b : seg.bytes) {
      out << "\\" << kHex[b >> 4] << kHex[b & 0xf];
    }
    out << "\")\n";
  }
  for (size_t i = 0; i < module.codes.size(); ++i) {
    out << disassemble_function(module, static_cast<uint32_t>(i));
  }
  out << ")\n";
  return out.str();
}

namespace {

bool uop_in(UOp op, UOp lo, UOp hi) {
  const auto v = static_cast<uint16_t>(op);
  return v >= static_cast<uint16_t>(lo) && v <= static_cast<uint16_t>(hi);
}

void append_target(std::ostringstream& out, uint32_t target, uint32_t charge) {
  if (target == kRetTarget) {
    out << " -> @ret";
  } else {
    out << " -> @" << target << " charge=" << charge;
  }
}

void append_uop(std::ostringstream& out, const TranslatedFunc& tf, const UInstr& u) {
  out << uop_name(u.op);
  switch (u.op) {
    case UOp::kSeg:
      out << " charge=" << u.b;
      return;
    case UOp::kBr:
    case UOp::kBrIf:
      if (u.b != kRetTarget) {
        out << " keep=" << u.a << " height=" << u.imm.pair.x;
      }
      append_target(out, u.b, u.imm.pair.y);
      return;
    case UOp::kJump:
    case UOp::kJumpZ:
    case UOp::kJumpNZ:
      append_target(out, u.b, u.imm.pair.y);
      return;
    case UOp::kBrTable: {
      // pair.x explicit targets, then the default arm.
      for (uint32_t i = 0; i <= u.imm.pair.x; ++i) {
        const UBrEntry& e = tf.br_entries[u.b + i];
        out << (i == 0 ? " [" : " ");
        if (i == u.imm.pair.x) out << "default:";
        if (e.target == kRetTarget) {
          out << "@ret";
        } else {
          out << "@" << e.target << "(charge=" << e.seg << ")";
        }
      }
      out << "]";
      return;
    }
    case UOp::kCallWasm:
      out << " func=" << u.b;
      return;
    case UOp::kCallHost:
      out << " import=" << u.b << " nparams=" << u.a
          << (u.imm.pair.x != 0 ? " -> result" : "");
      return;
    case UOp::kCallIndirect:
      out << " type=" << u.b << " nparams=" << u.a
          << (u.imm.pair.x != 0 ? " -> result" : "");
      return;
    case UOp::kConst: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), " bits=0x%" PRIx64, u.imm.u64);
      out << buf;
      return;
    }
    case UOp::kLocalMove:
      out << " l" << u.a << " -> l" << u.b;
      return;
    case UOp::kLCAddSetI32:
      out << " l" << u.b << " = l" << u.a << " + " << u.imm.i32;
      return;
    case UOp::kJump2:
    case UOp::kJumpZ2:
    case UOp::kJumpNZ2:
      // Collapsed jump chain: both edge segments, charged in tier-1 order.
      out << " -> @" << u.b << " charge=" << u.imm.pair.y << "+" << u.imm.pair.x;
      return;
    case UOp::kSegLocalGet:
      out << " " << u.b << " charge=" << u.imm.pair.y;
      return;
    case UOp::kSegLocalMove:
      out << " l" << u.a << " -> l" << u.b << " charge=" << u.imm.pair.y;
      return;
    case UOp::kSegLCAddSetI32:
      out << " l" << u.b << " = l" << u.a << " + "
          << static_cast<int32_t>(u.imm.pair.x) << " charge=" << u.imm.pair.y;
      return;
    case UOp::kLLGet:
      out << " l" << u.a << ", l" << u.b;
      return;
    case UOp::kLGetCI32:
      out << " l" << u.a << ", const=" << static_cast<int32_t>(u.imm.pair.x);
      return;
    default:
      break;
  }
  if (uop_in(u.op, UOp::kLocalGet, UOp::kLocalTee) ||
      uop_in(u.op, UOp::kGlobalGet, UOp::kGlobalSet)) {
    out << " " << u.b;
  } else if (uop_in(u.op, UOp::kI32Load, UOp::kI64Store32)) {
    out << " offset=" << u.b;
  } else if (uop_in(u.op, UOp::kLLAddI32, UOp::kLLXorI32) ||
             uop_in(u.op, UOp::kLLEqI32, UOp::kLLGeUI32)) {
    out << " l" << u.a << ", l" << u.b;
  } else if (uop_in(u.op, UOp::kLCAddI32, UOp::kLCShrUI32) ||
             uop_in(u.op, UOp::kLCEqI32, UOp::kLCGeUI32)) {
    out << " l" << u.a << ", " << u.imm.i32;
  } else if (uop_in(u.op, UOp::kCAddI32, UOp::kCAndI32) ||
             uop_in(u.op, UOp::kCSubI32, UOp::kCXorI32)) {
    out << " " << u.imm.i32;
  } else if (uop_in(u.op, UOp::kAddSetI32, UOp::kXorSetI32)) {
    out << " -> l" << u.b;
  } else if (uop_in(u.op, UOp::kBrIfLLEq, UOp::kBrIfLLGeU)) {
    out << " l" << u.a << ", l" << u.imm.pair.x;
    append_target(out, u.b, u.imm.pair.y);
  } else if (uop_in(u.op, UOp::kBrIfLCEq, UOp::kBrIfLCGeU)) {
    out << " l" << u.a << ", " << static_cast<int32_t>(u.imm.pair.x);
    append_target(out, u.b, u.imm.pair.y);
  }
}

// Tier-1 stream for `defined_index`: the module's shared translation when
// attached, else a fresh lowering into `local`.
Result<const TranslatedFunc*> resolve_translated(const Module& module,
                                                 uint32_t defined_index,
                                                 TranslatedFunc* local) {
  if (module.translated && defined_index < module.translated->funcs.size()) {
    return &module.translated->funcs[defined_index];
  }
  WARAN_TRY(tf, translate_function(module, defined_index));
  *local = std::move(tf);
  return local;
}

void render_stream(std::ostringstream& out, const TranslatedFunc& tf) {
  for (size_t i = 0; i < tf.ops.size(); ++i) {
    char head[24];
    std::snprintf(head, sizeof(head), "@%-5zu ", i);
    out << head;
    append_uop(out, tf, tf.ops[i]);
    out << "\n";
  }
}

}  // namespace

std::string disassemble_translated(const Module& module, uint32_t defined_index) {
  TranslatedFunc local;
  auto tfr = resolve_translated(module, defined_index, &local);
  if (!tfr.ok()) return "<translate error: " + tfr.error().message + ">\n";
  const TranslatedFunc* tf = *tfr;
  std::ostringstream out;
  out << ";; func " << (module.num_imported_funcs + defined_index) << ": "
      << tf->ops.size() << " uops, max_stack=" << tf->max_stack << ", params="
      << tf->num_params << ", locals=" << tf->num_locals << ", results="
      << static_cast<int>(tf->result_arity) << "\n";
  render_stream(out, *tf);
  return out.str();
}

std::string disassemble_specialized(const Module& module, uint32_t defined_index) {
  TranslatedFunc local;
  auto tfr = resolve_translated(module, defined_index, &local);
  if (!tfr.ok()) return "<translate error: " + tfr.error().message + ">\n";
  const TranslatedFunc* tf = *tfr;
  // Static listing: specialize under a taken-biased synthetic profile so
  // every speculative rewrite (conditional jump-chain collapse) is shown.
  // A live instance may apply fewer, never different, rewrites.
  FuncProfile biased;
  biased.cond_evals = 1;
  biased.cond_taken = 1;
  const TranslatedFunc spec = specialize(*tf, biased);
  std::ostringstream out;
  out << ";; func " << (module.num_imported_funcs + defined_index)
      << " (tier-2): " << spec.ops.size() << " uops (tier-1: " << tf->ops.size()
      << "), max_stack=" << spec.max_stack << ", params=" << spec.num_params
      << ", locals=" << spec.num_locals << ", results="
      << static_cast<int>(spec.result_arity) << "\n";
  render_stream(out, spec);
  return out.str();
}

}  // namespace waran::wasm
