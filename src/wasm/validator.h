// Module validation: implements the WebAssembly spec's type-checking
// algorithm (operand stack + control frame stack, with the polymorphic
// stack after `unreachable`). A module that passes decode + validate can be
// executed by the interpreter with no further type checks — the runtime
// Value cells are untagged on the strength of this pass.
#pragma once

#include "common/result.h"
#include "wasm/module.h"

namespace waran::wasm {

/// Validates the whole module (types, imports, functions, globals, exports,
/// segments, and every function body). Returns the first error found. As a
/// side effect of type-checking, records each body's operand-stack
/// high-water mark into Code::max_stack, which the translation pass
/// (wasm/translate.h) uses to pre-size the interpreter's raw operand stack.
Status validate_module(Module& m);

}  // namespace waran::wasm
