#include "wasm/translate.h"

#include <atomic>
#include <cstring>

#include "wasm/types.h"

namespace waran::wasm {

namespace {
std::atomic<StreamFirewall> g_stream_firewall{nullptr};
}  // namespace

void set_stream_firewall(StreamFirewall fw) {
  g_stream_firewall.store(fw, std::memory_order_relaxed);
}

StreamFirewall stream_firewall() {
  return g_stream_firewall.load(std::memory_order_relaxed);
}

namespace {

// --- Fusion tables -----------------------------------------------------------

struct CmpFusion {
  Op op;       // source i32 comparison
  Op inv;      // comparison equivalent to `op; i32.eqz`
  UOp ll;      // local <cmp> local
  UOp lc;      // local <cmp> const
  UOp br_ll;   // local <cmp> local; br_if
  UOp br_lc;   // local <cmp> const; br_if
};

constexpr CmpFusion kCmpFusions[] = {
    {Op::kI32Eq, Op::kI32Ne, UOp::kLLEqI32, UOp::kLCEqI32, UOp::kBrIfLLEq, UOp::kBrIfLCEq},
    {Op::kI32Ne, Op::kI32Eq, UOp::kLLNeI32, UOp::kLCNeI32, UOp::kBrIfLLNe, UOp::kBrIfLCNe},
    {Op::kI32LtS, Op::kI32GeS, UOp::kLLLtSI32, UOp::kLCLtSI32, UOp::kBrIfLLLtS, UOp::kBrIfLCLtS},
    {Op::kI32LtU, Op::kI32GeU, UOp::kLLLtUI32, UOp::kLCLtUI32, UOp::kBrIfLLLtU, UOp::kBrIfLCLtU},
    {Op::kI32GtS, Op::kI32LeS, UOp::kLLGtSI32, UOp::kLCGtSI32, UOp::kBrIfLLGtS, UOp::kBrIfLCGtS},
    {Op::kI32GtU, Op::kI32LeU, UOp::kLLGtUI32, UOp::kLCGtUI32, UOp::kBrIfLLGtU, UOp::kBrIfLCGtU},
    {Op::kI32LeS, Op::kI32GtS, UOp::kLLLeSI32, UOp::kLCLeSI32, UOp::kBrIfLLLeS, UOp::kBrIfLCLeS},
    {Op::kI32LeU, Op::kI32GtU, UOp::kLLLeUI32, UOp::kLCLeUI32, UOp::kBrIfLLLeU, UOp::kBrIfLCLeU},
    {Op::kI32GeS, Op::kI32LtS, UOp::kLLGeSI32, UOp::kLCGeSI32, UOp::kBrIfLLGeS, UOp::kBrIfLCGeS},
    {Op::kI32GeU, Op::kI32LtU, UOp::kLLGeUI32, UOp::kLCGeUI32, UOp::kBrIfLLGeU, UOp::kBrIfLCGeU},
};

const CmpFusion* cmp_fusion(Op op) {
  for (const CmpFusion& f : kCmpFusions) {
    if (f.op == op) return &f;
  }
  return nullptr;
}

bool ll_binop(Op op, UOp* out) {
  switch (op) {
    case Op::kI32Add: *out = UOp::kLLAddI32; return true;
    case Op::kI32Sub: *out = UOp::kLLSubI32; return true;
    case Op::kI32Mul: *out = UOp::kLLMulI32; return true;
    case Op::kI32And: *out = UOp::kLLAndI32; return true;
    case Op::kI32Or: *out = UOp::kLLOrI32; return true;
    case Op::kI32Xor: *out = UOp::kLLXorI32; return true;
    default: return false;
  }
}

bool lc_binop(Op op, UOp* out, bool* mask_shift) {
  *mask_shift = false;
  switch (op) {
    case Op::kI32Add: *out = UOp::kLCAddI32; return true;
    case Op::kI32Mul: *out = UOp::kLCMulI32; return true;
    case Op::kI32And: *out = UOp::kLCAndI32; return true;
    case Op::kI32Or: *out = UOp::kLCOrI32; return true;
    case Op::kI32Xor: *out = UOp::kLCXorI32; return true;
    case Op::kI32Shl: *out = UOp::kLCShlI32; *mask_shift = true; return true;
    case Op::kI32ShrS: *out = UOp::kLCShrSI32; *mask_shift = true; return true;
    case Op::kI32ShrU: *out = UOp::kLCShrUI32; *mask_shift = true; return true;
    default: return false;
  }
}

bool c_binop(Op op, UOp* out) {
  switch (op) {
    case Op::kI32Add: *out = UOp::kCAddI32; return true;
    case Op::kI32Mul: *out = UOp::kCMulI32; return true;
    case Op::kI32And: *out = UOp::kCAndI32; return true;
    default: return false;
  }
}

// Micro-op for a plain value instruction (same name in both enums). Control
// flow, calls, consts and elided ops never reach this map.
UOp map_simple(Op op) {
  switch (op) {
#define WARAN_MAP(name) case Op::k##name: return UOp::k##name;
    WARAN_MAP(Drop) WARAN_MAP(Select)
    WARAN_MAP(LocalGet) WARAN_MAP(LocalSet) WARAN_MAP(LocalTee)
    WARAN_MAP(GlobalGet) WARAN_MAP(GlobalSet)
    WARAN_MAP(I32Load) WARAN_MAP(I64Load) WARAN_MAP(F32Load) WARAN_MAP(F64Load)
    WARAN_MAP(I32Load8S) WARAN_MAP(I32Load8U) WARAN_MAP(I32Load16S)
    WARAN_MAP(I32Load16U) WARAN_MAP(I64Load8S) WARAN_MAP(I64Load8U)
    WARAN_MAP(I64Load16S) WARAN_MAP(I64Load16U) WARAN_MAP(I64Load32S)
    WARAN_MAP(I64Load32U)
    WARAN_MAP(I32Store) WARAN_MAP(I64Store) WARAN_MAP(F32Store)
    WARAN_MAP(F64Store) WARAN_MAP(I32Store8) WARAN_MAP(I32Store16)
    WARAN_MAP(I64Store8) WARAN_MAP(I64Store16) WARAN_MAP(I64Store32)
    WARAN_MAP(MemorySize) WARAN_MAP(MemoryGrow) WARAN_MAP(MemoryCopy)
    WARAN_MAP(MemoryFill)
    WARAN_MAP(I32Eqz) WARAN_MAP(I32Eq) WARAN_MAP(I32Ne) WARAN_MAP(I32LtS)
    WARAN_MAP(I32LtU) WARAN_MAP(I32GtS) WARAN_MAP(I32GtU) WARAN_MAP(I32LeS)
    WARAN_MAP(I32LeU) WARAN_MAP(I32GeS) WARAN_MAP(I32GeU)
    WARAN_MAP(I64Eqz) WARAN_MAP(I64Eq) WARAN_MAP(I64Ne) WARAN_MAP(I64LtS)
    WARAN_MAP(I64LtU) WARAN_MAP(I64GtS) WARAN_MAP(I64GtU) WARAN_MAP(I64LeS)
    WARAN_MAP(I64LeU) WARAN_MAP(I64GeS) WARAN_MAP(I64GeU)
    WARAN_MAP(F32Eq) WARAN_MAP(F32Ne) WARAN_MAP(F32Lt) WARAN_MAP(F32Gt)
    WARAN_MAP(F32Le) WARAN_MAP(F32Ge)
    WARAN_MAP(F64Eq) WARAN_MAP(F64Ne) WARAN_MAP(F64Lt) WARAN_MAP(F64Gt)
    WARAN_MAP(F64Le) WARAN_MAP(F64Ge)
    WARAN_MAP(I32Clz) WARAN_MAP(I32Ctz) WARAN_MAP(I32Popcnt) WARAN_MAP(I32Add)
    WARAN_MAP(I32Sub) WARAN_MAP(I32Mul) WARAN_MAP(I32DivS) WARAN_MAP(I32DivU)
    WARAN_MAP(I32RemS) WARAN_MAP(I32RemU) WARAN_MAP(I32And) WARAN_MAP(I32Or)
    WARAN_MAP(I32Xor) WARAN_MAP(I32Shl) WARAN_MAP(I32ShrS) WARAN_MAP(I32ShrU)
    WARAN_MAP(I32Rotl) WARAN_MAP(I32Rotr)
    WARAN_MAP(I64Clz) WARAN_MAP(I64Ctz) WARAN_MAP(I64Popcnt) WARAN_MAP(I64Add)
    WARAN_MAP(I64Sub) WARAN_MAP(I64Mul) WARAN_MAP(I64DivS) WARAN_MAP(I64DivU)
    WARAN_MAP(I64RemS) WARAN_MAP(I64RemU) WARAN_MAP(I64And) WARAN_MAP(I64Or)
    WARAN_MAP(I64Xor) WARAN_MAP(I64Shl) WARAN_MAP(I64ShrS) WARAN_MAP(I64ShrU)
    WARAN_MAP(I64Rotl) WARAN_MAP(I64Rotr)
    WARAN_MAP(F32Abs) WARAN_MAP(F32Neg) WARAN_MAP(F32Ceil) WARAN_MAP(F32Floor)
    WARAN_MAP(F32Trunc) WARAN_MAP(F32Nearest) WARAN_MAP(F32Sqrt)
    WARAN_MAP(F32Add) WARAN_MAP(F32Sub) WARAN_MAP(F32Mul) WARAN_MAP(F32Div)
    WARAN_MAP(F32Min) WARAN_MAP(F32Max) WARAN_MAP(F32Copysign)
    WARAN_MAP(F64Abs) WARAN_MAP(F64Neg) WARAN_MAP(F64Ceil) WARAN_MAP(F64Floor)
    WARAN_MAP(F64Trunc) WARAN_MAP(F64Nearest) WARAN_MAP(F64Sqrt)
    WARAN_MAP(F64Add) WARAN_MAP(F64Sub) WARAN_MAP(F64Mul) WARAN_MAP(F64Div)
    WARAN_MAP(F64Min) WARAN_MAP(F64Max) WARAN_MAP(F64Copysign)
    WARAN_MAP(I32WrapI64)
    WARAN_MAP(I32TruncF32S) WARAN_MAP(I32TruncF32U) WARAN_MAP(I32TruncF64S)
    WARAN_MAP(I32TruncF64U) WARAN_MAP(I64TruncF32S) WARAN_MAP(I64TruncF32U)
    WARAN_MAP(I64TruncF64S) WARAN_MAP(I64TruncF64U)
    WARAN_MAP(I32TruncSatF32S) WARAN_MAP(I32TruncSatF32U)
    WARAN_MAP(I32TruncSatF64S) WARAN_MAP(I32TruncSatF64U)
    WARAN_MAP(I64TruncSatF32S) WARAN_MAP(I64TruncSatF32U)
    WARAN_MAP(I64TruncSatF64S) WARAN_MAP(I64TruncSatF64U)
    WARAN_MAP(I64ExtendI32S) WARAN_MAP(I64ExtendI32U)
    WARAN_MAP(F32ConvertI32S) WARAN_MAP(F32ConvertI32U)
    WARAN_MAP(F32ConvertI64S) WARAN_MAP(F32ConvertI64U) WARAN_MAP(F32DemoteF64)
    WARAN_MAP(F64ConvertI32S) WARAN_MAP(F64ConvertI32U)
    WARAN_MAP(F64ConvertI64S) WARAN_MAP(F64ConvertI64U) WARAN_MAP(F64PromoteF32)
    WARAN_MAP(I32Extend8S) WARAN_MAP(I32Extend16S) WARAN_MAP(I64Extend8S)
    WARAN_MAP(I64Extend16S) WARAN_MAP(I64Extend32S)
#undef WARAN_MAP
    default:
      return UOp::kUnreachable;  // validated modules never get here
  }
}

constexpr bool is_mem_access(Op op) {
  return op >= Op::kI32Load && op <= Op::kI64Store32;
}

constexpr bool has_index_imm(Op op) {
  return op >= Op::kLocalGet && op <= Op::kGlobalSet;
}

/// Net operand-stack effect of a non-control instruction.
int net_stack(const Module& m, const Instr& ins) {
  switch (ins.op) {
    case Op::kI32Const: case Op::kI64Const:
    case Op::kF32Const: case Op::kF64Const:
    case Op::kLocalGet: case Op::kGlobalGet:
    case Op::kMemorySize:
      return 1;
    case Op::kDrop: case Op::kLocalSet: case Op::kGlobalSet:
      return -1;
    case Op::kSelect:
      return -2;
    case Op::kMemoryCopy: case Op::kMemoryFill:
      return -3;
    case Op::kCall: {
      const FuncType& ft = m.func_type(ins.imm.index);
      return static_cast<int>(ft.results.size()) - static_cast<int>(ft.params.size());
    }
    case Op::kCallIndirect: {
      const FuncType& ft = m.types[ins.imm.call_indirect.type_index];
      return static_cast<int>(ft.results.size()) - static_cast<int>(ft.params.size()) - 1;
    }
    default:
      if (is_mem_access(ins.op)) {
        return (ins.op >= Op::kI32Store && ins.op <= Op::kI64Store32) ? -2 : 0;
      }
      // Remaining value ops: binops and comparisons consume one net value;
      // unary ops, conversions, tee, eqz and memory.grow are height-neutral.
      switch (ins.op) {
        case Op::kI32Eq: case Op::kI32Ne: case Op::kI32LtS: case Op::kI32LtU:
        case Op::kI32GtS: case Op::kI32GtU: case Op::kI32LeS: case Op::kI32LeU:
        case Op::kI32GeS: case Op::kI32GeU:
        case Op::kI64Eq: case Op::kI64Ne: case Op::kI64LtS: case Op::kI64LtU:
        case Op::kI64GtS: case Op::kI64GtU: case Op::kI64LeS: case Op::kI64LeU:
        case Op::kI64GeS: case Op::kI64GeU:
        case Op::kF32Eq: case Op::kF32Ne: case Op::kF32Lt: case Op::kF32Gt:
        case Op::kF32Le: case Op::kF32Ge:
        case Op::kF64Eq: case Op::kF64Ne: case Op::kF64Lt: case Op::kF64Gt:
        case Op::kF64Le: case Op::kF64Ge:
        case Op::kI32Add: case Op::kI32Sub: case Op::kI32Mul: case Op::kI32DivS:
        case Op::kI32DivU: case Op::kI32RemS: case Op::kI32RemU: case Op::kI32And:
        case Op::kI32Or: case Op::kI32Xor: case Op::kI32Shl: case Op::kI32ShrS:
        case Op::kI32ShrU: case Op::kI32Rotl: case Op::kI32Rotr:
        case Op::kI64Add: case Op::kI64Sub: case Op::kI64Mul: case Op::kI64DivS:
        case Op::kI64DivU: case Op::kI64RemS: case Op::kI64RemU: case Op::kI64And:
        case Op::kI64Or: case Op::kI64Xor: case Op::kI64Shl: case Op::kI64ShrS:
        case Op::kI64ShrU: case Op::kI64Rotl: case Op::kI64Rotr:
        case Op::kF32Add: case Op::kF32Sub: case Op::kF32Mul: case Op::kF32Div:
        case Op::kF32Min: case Op::kF32Max: case Op::kF32Copysign:
        case Op::kF64Add: case Op::kF64Sub: case Op::kF64Mul: case Op::kF64Div:
        case Op::kF64Min: case Op::kF64Max: case Op::kF64Copysign:
          return -1;
        default:
          return 0;
      }
  }
}

}  // namespace

const char* uop_name(UOp op) {
  switch (op) {
#define WARAN_UOP_NAME(name) case UOp::k##name: return #name;
    WARAN_UOP_LIST(WARAN_UOP_NAME)
#undef WARAN_UOP_NAME
  }
  return "?";
}

Result<TranslatedFunc> translate_function(const Module& m, uint32_t defined_index) {
  const Code& code = m.codes[defined_index];
  const FuncType& ft = m.func_type(m.num_imported_funcs + defined_index);
  const std::vector<Instr>& body = code.body;
  const uint32_t n = static_cast<uint32_t>(body.size());
  if (n == 0) return Error::internal("empty function body");
  if (ft.params.size() > 0xffff) {
    return Error::unsupported("more than 65535 parameters");
  }

  TranslatedFunc tf;
  tf.num_params = static_cast<uint32_t>(ft.params.size());
  tf.num_locals = tf.num_params + static_cast<uint32_t>(code.locals.size());
  tf.result_arity = static_cast<uint8_t>(ft.results.size());

  // --- Pass 1: mark every pc that is the continuation of some branch, so
  // fusion never swallows an instruction another edge jumps to.
  std::vector<uint8_t> is_target(n, 0);
  {
    struct PFrame {
      Op kind;
      bool is_func;
      uint32_t pc, end_pc;
    };
    std::vector<PFrame> fs;
    fs.push_back({Op::kBlock, true, 0, n - 1});
    auto mark = [&](uint32_t d) {
      if (d >= fs.size()) return;
      const PFrame& f = fs[fs.size() - 1 - d];
      if (f.is_func) return;
      if (f.kind == Op::kLoop) {
        is_target[f.pc] = 1;
      } else if (f.end_pc + 1 < n) {
        is_target[f.end_pc + 1] = 1;
      }
    };
    for (uint32_t pc = 0; pc < n; ++pc) {
      const Instr& ins = body[pc];
      switch (ins.op) {
        case Op::kBlock:
        case Op::kLoop:
          fs.push_back({ins.op, false, pc, ins.imm.ctrl.end_pc});
          break;
        case Op::kIf:
          fs.push_back({ins.op, false, pc, ins.imm.ctrl.end_pc});
          is_target[ins.imm.ctrl.else_pc != ins.imm.ctrl.end_pc
                        ? ins.imm.ctrl.else_pc + 1
                        : ins.imm.ctrl.end_pc] = 1;
          break;
        case Op::kElse:
          is_target[ins.imm.ctrl.end_pc] = 1;
          break;
        case Op::kEnd:
          if (fs.size() > 1) fs.pop_back();
          break;
        case Op::kBr:
        case Op::kBrIf:
          mark(ins.imm.index);
          break;
        case Op::kBrTable: {
          const BrTable& bt = code.br_tables[ins.imm.br_table_index];
          for (uint32_t t : bt.targets) mark(t);
          mark(bt.default_target);
          break;
        }
        default:
          break;
      }
    }
  }

  // --- Pass 2: emit micro-ops with a control stack tracking entry heights
  // and reachability (unreachable instructions are dropped entirely; their
  // fuel was never charged by the structured interpreter either, since
  // charges happen only at executed charge points).
  struct TFrame {
    Op kind;
    bool is_func;
    uint32_t entry_height;
    uint8_t arity;
    uint32_t pc, end_pc;
    bool reachable_at_entry;
    bool br_to_end;  // some branch targets this frame's continuation
  };
  struct Fixup {
    uint32_t index;      // micro-op index, or br_entries index
    uint32_t target_pc;  // patched to pc2uop[target_pc] after emission
    bool entry;
  };
  std::vector<UInstr>& uops = tf.ops;
  std::vector<UBrEntry>& entries = tf.br_entries;
  std::vector<Fixup> fixups;
  std::vector<uint32_t> pc2uop(n + 1, 0);
  std::vector<TFrame> fs;
  fs.push_back({Op::kBlock, true, 0, tf.result_arity, 0, n - 1, true, false});
  uint32_t height = 0;
  uint32_t max_height = 0;
  bool reachable = true;

  auto bump = [&](int net) {
    height = static_cast<uint32_t>(static_cast<int>(height) + net);
    if (height > max_height) max_height = height;
  };
  auto emit = [&](UOp op) -> UInstr* {
    uops.emplace_back();
    uops.back().op = op;
    return &uops.back();
  };
  auto emit_seg = [&](uint32_t pc) {
    if (pc < n) emit(UOp::kSeg)->b = body[pc].seg_len;
  };

  // Resolved taken-branch info for a label at depth `d`.
  struct BrInfo {
    bool to_func = false;
    bool forward = false;   // target pc not yet emitted; needs a fixup
    uint32_t target = 0;    // micro-op index (backward) or unset (forward)
    uint32_t target_pc = 0; // for forward targets
    uint32_t seg = 0;
    uint32_t height = 0;
    uint16_t keep = 0;
  };
  auto resolve = [&](uint32_t d) -> BrInfo {
    TFrame& f = fs[fs.size() - 1 - d];
    BrInfo bi;
    if (f.is_func) {
      bi.to_func = true;
      return bi;
    }
    bi.height = f.entry_height;
    if (f.kind == Op::kLoop) {
      bi.keep = 0;
      bi.target = pc2uop[f.pc];
      bi.seg = body[f.pc].seg_len;
    } else {
      bi.keep = f.arity;
      bi.forward = true;
      bi.target_pc = f.end_pc + 1;
      bi.seg = f.end_pc + 1 < n ? body[f.end_pc + 1].seg_len : 0;
      f.br_to_end = true;
    }
    return bi;
  };

  auto local_ok = [&](uint32_t idx) { return idx < 0xffff; };
  // Interior pcs of a fused group must not be branch targets.
  auto clear_run = [&](uint32_t from, uint32_t count) {
    for (uint32_t i = 1; i < count; ++i) {
      if (is_target[from + i]) return false;
    }
    return true;
  };
  // A conditional branch folds into a fused compare-branch only when taking
  // it needs no stack adjustment: nothing kept, and the target's unwind
  // height equals the operand height before the fused pattern's pushes.
  auto br_fusable = [&](uint32_t d, uint32_t h) {
    if (d >= fs.size()) return false;
    const TFrame& f = fs[fs.size() - 1 - d];
    if (f.is_func) return f.arity == 0 && h == 0;
    if (f.kind == Op::kLoop) return f.entry_height == h;
    return f.arity == 0 && f.entry_height == h;
  };
  auto emit_fused_brif = [&](UOp op, uint32_t lhs_local, uint32_t rhs_bits,
                             uint32_t d, uint32_t brif_pc) {
    BrInfo bi = resolve(d);
    UInstr* u = emit(op);
    u->a = static_cast<uint16_t>(lhs_local);
    u->imm.pair.x = rhs_bits;
    if (bi.to_func) {
      u->b = kRetTarget;
    } else {
      u->imm.pair.y = bi.seg;
      if (bi.forward) {
        fixups.push_back({static_cast<uint32_t>(uops.size() - 1), bi.target_pc, false});
      } else {
        u->b = bi.target;
      }
    }
    emit_seg(brif_pc + 1);  // untaken fall-through starts a fresh segment
  };

  // Peephole matcher. Returns the number of source instructions consumed
  // (0: no fusion applies at `pc`). Longest patterns are tried first.
  auto try_fuse = [&](uint32_t pc) -> uint32_t {
    const Instr& i0 = body[pc];
    if (i0.op == Op::kLocalGet) {
      if (!local_ok(i0.imm.index) || pc + 1 >= n) return 0;
      const uint32_t x = i0.imm.index;
      const Instr& i1 = body[pc + 1];

      if (i1.op == Op::kLocalGet && local_ok(i1.imm.index) && pc + 2 < n &&
          clear_run(pc, 3)) {
        const uint32_t y = i1.imm.index;
        const Instr& i2 = body[pc + 2];
        UOp bop;
        if (ll_binop(i2.op, &bop)) {
          UInstr* u = emit(bop);
          u->a = static_cast<uint16_t>(x);
          u->b = y;
          bump(+1);
          return 3;
        }
        if (const CmpFusion* cf = cmp_fusion(i2.op)) {
          uint32_t len = 3;
          if (pc + 3 < n && body[pc + 3].op == Op::kI32Eqz && clear_run(pc, 4)) {
            cf = cmp_fusion(cf->inv);
            len = 4;
          }
          if (pc + len < n && body[pc + len].op == Op::kBrIf &&
              clear_run(pc, len + 1) &&
              br_fusable(body[pc + len].imm.index, height)) {
            emit_fused_brif(cf->br_ll, x, y, body[pc + len].imm.index, pc + len);
            return len + 1;
          }
          UInstr* u = emit(cf->ll);
          u->a = static_cast<uint16_t>(x);
          u->b = y;
          bump(+1);
          return len;
        }
        return 0;
      }

      if (i1.op == Op::kI32Const && pc + 2 < n && clear_run(pc, 3)) {
        const int32_t k = i1.imm.i32;
        const Instr& i2 = body[pc + 2];
        UOp bop;
        bool mask_shift;
        Op eff = i2.op;
        int32_t kk = k;
        if (eff == Op::kI32Sub) {  // x - k  ==  x + (-k)  (mod 2^32)
          eff = Op::kI32Add;
          kk = static_cast<int32_t>(0u - static_cast<uint32_t>(k));
        }
        if (lc_binop(eff, &bop, &mask_shift)) {
          if (mask_shift) kk &= 31;
          if (bop == UOp::kLCAddI32 && pc + 3 < n &&
              body[pc + 3].op == Op::kLocalSet &&
              local_ok(body[pc + 3].imm.index) && clear_run(pc, 4)) {
            UInstr* u = emit(UOp::kLCAddSetI32);
            u->a = static_cast<uint16_t>(x);
            u->b = body[pc + 3].imm.index;
            u->imm.i32 = kk;
            return 4;
          }
          UInstr* u = emit(bop);
          u->a = static_cast<uint16_t>(x);
          u->imm.i32 = kk;
          bump(+1);
          return 3;
        }
        if (const CmpFusion* cf = cmp_fusion(i2.op)) {
          uint32_t len = 3;
          if (pc + 3 < n && body[pc + 3].op == Op::kI32Eqz && clear_run(pc, 4)) {
            cf = cmp_fusion(cf->inv);
            len = 4;
          }
          if (pc + len < n && body[pc + len].op == Op::kBrIf &&
              clear_run(pc, len + 1) &&
              br_fusable(body[pc + len].imm.index, height)) {
            emit_fused_brif(cf->br_lc, x, static_cast<uint32_t>(k),
                            body[pc + len].imm.index, pc + len);
            return len + 1;
          }
          UInstr* u = emit(cf->lc);
          u->a = static_cast<uint16_t>(x);
          u->imm.i32 = k;
          bump(+1);
          return len;
        }
        return 0;
      }

      if (i1.op == Op::kI32Eqz && clear_run(pc, 2)) {
        // local.get x; i32.eqz [; br_if]  ==  (x == 0) [branch]
        if (pc + 2 < n && body[pc + 2].op == Op::kBrIf && clear_run(pc, 3) &&
            br_fusable(body[pc + 2].imm.index, height)) {
          emit_fused_brif(UOp::kBrIfLCEq, x, 0, body[pc + 2].imm.index, pc + 2);
          return 3;
        }
        UInstr* u = emit(UOp::kLCEqI32);
        u->a = static_cast<uint16_t>(x);
        u->imm.i32 = 0;
        bump(+1);
        return 2;
      }

      if (i1.op == Op::kLocalSet && clear_run(pc, 2)) {
        UInstr* u = emit(UOp::kLocalMove);
        u->a = static_cast<uint16_t>(x);
        u->b = i1.imm.index;
        return 2;
      }
      return 0;
    }

    if (i0.op == Op::kI32Const && pc + 1 < n && clear_run(pc, 2)) {
      UOp bop;
      if (c_binop(body[pc + 1].op, &bop)) {
        emit(bop)->imm.i32 = i0.imm.i32;
        return 2;
      }
    }
    return 0;
  };

  emit_seg(0);  // function-entry charge

  for (uint32_t pc = 0; pc < n;) {
    pc2uop[pc] = static_cast<uint32_t>(uops.size());
    const Instr& ins = body[pc];

    if (!reachable) {
      // Skip dead code, but keep the control stack in sync so label depths
      // and entry heights stay correct when execution resumes.
      switch (ins.op) {
        case Op::kBlock:
        case Op::kLoop:
        case Op::kIf:
          fs.push_back({ins.op, false, height, ins.block_arity, pc,
                        ins.imm.ctrl.end_pc, false, false});
          break;
        case Op::kElse: {
          const TFrame& f = fs.back();
          reachable = f.reachable_at_entry;
          height = f.entry_height;
          break;
        }
        case Op::kEnd: {
          if (fs.back().is_func) {
            emit(UOp::kReturn);  // target of branches to the function label edge
            break;
          }
          const TFrame f = fs.back();
          fs.pop_back();
          reachable = f.br_to_end;
          height = f.entry_height + (reachable ? f.arity : 0);
          if (height > max_height) max_height = height;
          break;
        }
        default:
          break;
      }
      ++pc;
      continue;
    }

    switch (ins.op) {
      case Op::kBlock:
      case Op::kLoop:
        fs.push_back({ins.op, false, height, ins.block_arity, pc,
                      ins.imm.ctrl.end_pc, true, false});
        ++pc;
        continue;

      case Op::kIf: {
        bump(-1);  // condition
        const bool has_else = ins.imm.ctrl.else_pc != ins.imm.ctrl.end_pc;
        // Without an else the false edge reaches the continuation directly.
        fs.push_back({Op::kIf, false, height, ins.block_arity, pc,
                      ins.imm.ctrl.end_pc, true, !has_else});
        const uint32_t false_pc =
            has_else ? ins.imm.ctrl.else_pc + 1 : ins.imm.ctrl.end_pc;
        // `<cmp>; i32.eqz; if` inverts into a jump-if-nonzero, dropping the
        // eqz micro-op (legal only when neither pc is a branch target).
        bool inverted = false;
        if (pc > 0 && body[pc - 1].op == Op::kI32Eqz && !is_target[pc] &&
            !is_target[pc - 1] && !uops.empty() &&
            uops.back().op == UOp::kI32Eqz) {
          uops.pop_back();
          inverted = true;
          pc2uop[pc] = static_cast<uint32_t>(uops.size());
        }
        UInstr* u = emit(inverted ? UOp::kJumpNZ : UOp::kJumpZ);
        u->imm.pair.y = body[false_pc].seg_len;
        fixups.push_back({static_cast<uint32_t>(uops.size() - 1), false_pc, false});
        emit_seg(pc + 1);  // true edge
        ++pc;
        continue;
      }

      case Op::kElse: {
        // Fell out of the true branch: jump over the else arm to the end.
        const TFrame& f = fs.back();
        UInstr* u = emit(UOp::kJump);
        u->imm.pair.y = body[f.end_pc].seg_len;
        fixups.push_back({static_cast<uint32_t>(uops.size() - 1), f.end_pc, false});
        height = f.entry_height;
        ++pc;
        continue;
      }

      case Op::kEnd: {
        if (fs.back().is_func) {
          emit(UOp::kReturn);
          ++pc;
          continue;
        }
        const TFrame f = fs.back();
        fs.pop_back();
        height = f.entry_height + f.arity;
        if (height > max_height) max_height = height;
        ++pc;
        continue;
      }

      case Op::kBr: {
        BrInfo bi = resolve(ins.imm.index);
        if (bi.to_func) {
          emit(UOp::kReturn);
        } else {
          UInstr* u = emit(UOp::kBr);
          u->a = bi.keep;
          u->imm.pair.x = bi.height;
          u->imm.pair.y = bi.seg;
          if (bi.forward) {
            fixups.push_back({static_cast<uint32_t>(uops.size() - 1), bi.target_pc, false});
          } else {
            u->b = bi.target;
          }
        }
        reachable = false;
        ++pc;
        continue;
      }

      case Op::kBrIf: {
        bump(-1);
        BrInfo bi = resolve(ins.imm.index);
        UInstr* u = emit(UOp::kBrIf);
        if (bi.to_func) {
          u->b = kRetTarget;
        } else {
          u->a = bi.keep;
          u->imm.pair.x = bi.height;
          u->imm.pair.y = bi.seg;
          if (bi.forward) {
            fixups.push_back({static_cast<uint32_t>(uops.size() - 1), bi.target_pc, false});
          } else {
            u->b = bi.target;
          }
        }
        emit_seg(pc + 1);
        ++pc;
        continue;
      }

      case Op::kBrTable: {
        bump(-1);
        const BrTable& bt = code.br_tables[ins.imm.br_table_index];
        UInstr* u = emit(UOp::kBrTable);
        u->b = static_cast<uint32_t>(entries.size());
        u->imm.pair.x = static_cast<uint32_t>(bt.targets.size());
        for (size_t j = 0; j <= bt.targets.size(); ++j) {
          const uint32_t d =
              j < bt.targets.size() ? bt.targets[j] : bt.default_target;
          BrInfo bi = resolve(d);
          UBrEntry e;
          if (bi.to_func) {
            e.target = kRetTarget;
          } else {
            e.keep = bi.keep;
            e.height = bi.height;
            e.seg = bi.seg;
            if (bi.forward) {
              fixups.push_back({static_cast<uint32_t>(entries.size()), bi.target_pc, true});
            } else {
              e.target = bi.target;
            }
          }
          entries.push_back(e);
        }
        reachable = false;
        ++pc;
        continue;
      }

      case Op::kReturn:
        emit(UOp::kReturn);
        reachable = false;
        ++pc;
        continue;

      case Op::kUnreachable:
        emit(UOp::kUnreachable);
        reachable = false;
        ++pc;
        continue;

      case Op::kNop:
        ++pc;
        continue;

      case Op::kCall: {
        const uint32_t callee = ins.imm.index;
        const FuncType& ct = m.func_type(callee);
        if (ct.params.size() > 0xffff) {
          return Error::unsupported("more than 65535 parameters");
        }
        bump(net_stack(m, ins));
        if (callee < m.num_imported_funcs) {
          UInstr* u = emit(UOp::kCallHost);
          u->b = callee;
          u->a = static_cast<uint16_t>(ct.params.size());
          u->imm.pair.x = ct.results.empty() ? 0 : 1;
        } else {
          emit(UOp::kCallWasm)->b = callee;
        }
        emit_seg(pc + 1);  // resume segment after the call returns
        ++pc;
        continue;
      }

      case Op::kCallIndirect: {
        const FuncType& ct = m.types[ins.imm.call_indirect.type_index];
        if (ct.params.size() > 0xffff) {
          return Error::unsupported("more than 65535 parameters");
        }
        bump(net_stack(m, ins));
        UInstr* u = emit(UOp::kCallIndirect);
        u->b = ins.imm.call_indirect.type_index;
        u->a = static_cast<uint16_t>(ct.params.size());
        u->imm.pair.x = ct.results.empty() ? 0 : 1;
        emit_seg(pc + 1);
        ++pc;
        continue;
      }

      default:
        break;  // value instruction: fusion, then generic lowering
    }

    if (uint32_t consumed = try_fuse(pc)) {
      pc += consumed;
      continue;
    }

    const int net = net_stack(m, ins);
    switch (ins.op) {
      case Op::kI32Const:
        emit(UOp::kConst)->imm.u64 = Value::from_i32(ins.imm.i32).bits;
        break;
      case Op::kI64Const:
        emit(UOp::kConst)->imm.u64 = Value::from_i64(ins.imm.i64).bits;
        break;
      case Op::kF32Const:
        emit(UOp::kConst)->imm.u64 = Value::from_f32(ins.imm.f32).bits;
        break;
      case Op::kF64Const:
        emit(UOp::kConst)->imm.u64 = Value::from_f64(ins.imm.f64).bits;
        break;
      case Op::kI32ReinterpretF32:
      case Op::kF32ReinterpretI32:
      case Op::kI64ReinterpretF64:
      case Op::kF64ReinterpretI64:
        break;  // identity on the untagged cell; fuel already counts them
      default: {
        UInstr* u = emit(map_simple(ins.op));
        if (is_mem_access(ins.op)) {
          u->b = ins.imm.mem.offset;
        } else if (has_index_imm(ins.op)) {
          u->b = ins.imm.index;
        }
        break;
      }
    }
    bump(net);
    ++pc;
  }
  pc2uop[n] = static_cast<uint32_t>(uops.size());

  for (const Fixup& fx : fixups) {
    const uint32_t t = pc2uop[fx.target_pc];
    if (fx.entry) {
      entries[fx.index].target = t;
    } else {
      uops[fx.index].b = t;
    }
  }

  tf.max_stack = max_height > code.max_stack ? max_height : code.max_stack;
  if (StreamFirewall fw = stream_firewall()) {
    if (Status st = fw(m, tf); !st.ok()) {
      return Error::internal("stream firewall rejected lowering of defined func " +
                             std::to_string(defined_index) + ": " + st.error().message);
    }
  }
  return tf;
}

Result<std::shared_ptr<const TranslatedModule>> translate(const Module& m) {
  auto tm = std::make_shared<TranslatedModule>();
  tm->funcs.reserve(m.codes.size());
  for (uint32_t i = 0; i < m.codes.size(); ++i) {
    auto tf = translate_function(m, i);
    if (!tf.ok()) return tf.error();
    tm->funcs.push_back(std::move(*tf));
  }
  return std::shared_ptr<const TranslatedModule>(std::move(tm));
}

Status translate_module(Module& m) {
  auto tm = translate(m);
  if (!tm.ok()) return tm.error();
  m.translated = std::move(*tm);
  return {};
}

}  // namespace waran::wasm
