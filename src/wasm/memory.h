// Bounds-checked linear memory. Every access computes the effective address
// in 64-bit arithmetic and traps on any byte outside the current size —
// this is the mechanism behind the paper's §5D memory-safety results (OOB
// access and null-page dereference inside a plugin become catchable traps
// instead of host corruption).
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <vector>

#include "common/result.h"
#include "wasm/types.h"

namespace waran::wasm {

class Memory {
 public:
  /// Creates a memory with `limits.min` pages; growth is capped by
  /// min(limits.max, kMaxMemoryPages).
  static Result<Memory> create(const Limits& limits);

  uint32_t pages() const { return static_cast<uint32_t>(bytes_.size() / kPageSize); }
  size_t size_bytes() const { return bytes_.size(); }

  /// memory.grow semantics: returns the previous page count, or -1 (as
  /// uint32_t) when the request exceeds the limit. Never traps.
  uint32_t grow(uint32_t delta_pages);

  /// Fault injection (waran::chaos): after `n` more successful grows, every
  /// nonzero grow request fails with -1, exactly as if the memory limit had
  /// been reached — spec-conformant (grow never traps), so a well-written
  /// plugin must handle it. nullopt clears the denial.
  void set_grow_denial_after(std::optional<uint32_t> n) { deny_grow_after_ = n; }
  /// Grow requests denied by the injected policy (not by the real limit).
  uint32_t denied_grows() const { return denied_grows_; }

  /// True iff [addr, addr+len) lies within the current memory.
  bool in_bounds(uint64_t addr, uint64_t len) const {
    return addr + len <= bytes_.size() && addr + len >= addr;
  }

  template <typename T>
  Result<T> load(uint32_t base, uint32_t offset) const {
    uint64_t ea = static_cast<uint64_t>(base) + offset;
    if (!in_bounds(ea, sizeof(T))) return oob_error(ea, sizeof(T));
    T v;
    std::memcpy(&v, bytes_.data() + ea, sizeof(T));
    return v;
  }

  template <typename T>
  Status store(uint32_t base, uint32_t offset, T value) {
    uint64_t ea = static_cast<uint64_t>(base) + offset;
    if (!in_bounds(ea, sizeof(T))) return oob_error(ea, sizeof(T));
    std::memcpy(bytes_.data() + ea, &value, sizeof(T));
    return {};
  }

  /// Bulk host-side access (used by the plugin ABI to move serialized
  /// payloads in and out of the sandbox).
  Status read_bytes(uint64_t addr, std::span<uint8_t> out) const;
  Status write_bytes(uint64_t addr, std::span<const uint8_t> in);

  /// memory.copy / memory.fill (bulk-memory semantics: bounds-check first,
  /// then copy; overlapping copies behave like memmove).
  Status copy(uint64_t dst, uint64_t src, uint64_t len);
  Status fill(uint64_t dst, uint8_t value, uint64_t len);

  uint8_t* data() { return bytes_.data(); }
  const uint8_t* data() const { return bytes_.data(); }

 private:
  Memory(std::vector<uint8_t> bytes, uint32_t max_pages)
      : bytes_(std::move(bytes)), max_pages_(max_pages) {}

  static Error oob_error(uint64_t addr, uint64_t len);

  std::vector<uint8_t> bytes_;
  uint32_t max_pages_;
  std::optional<uint32_t> deny_grow_after_;
  uint32_t denied_grows_ = 0;
};

}  // namespace waran::wasm
