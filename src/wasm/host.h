// Host-function registry ("linker"). A host exposes selected functions to
// the sandbox — in WA-RAN these are the gNB / RIC control surfaces (paper §4:
// "the gNB host exposes multiple host functions, which provide access to
// specific control processes"). Import resolution is by (module, name) with
// exact signature matching.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "wasm/types.h"

namespace waran::wasm {

class Instance;

/// Execution context handed to host functions: lets the host read/write the
/// *calling instance's* linear memory (the only legal data channel across
/// the sandbox boundary) and observe remaining fuel.
struct HostContext {
  Instance& instance;
  /// User pointer registered at instantiation time; WA-RAN stores the
  /// plugin-runtime object here.
  void* user_data = nullptr;
};

/// A host function: signature + callable. Returning an Error with code
/// kTrap aborts plugin execution exactly like a wasm-level trap.
struct HostFunc {
  FuncType type;
  std::function<Result<std::optional<Value>>(HostContext&, std::span<const Value>)> fn;
};

/// Maps (module, name) -> host function. Shared across instances; cheap to
/// copy by shared_ptr.
class Linker {
 public:
  /// Registers a host function; replaces any existing binding (used by hot
  /// reconfiguration in tests).
  void register_func(std::string module, std::string name, HostFunc fn);

  const HostFunc* lookup(const std::string& module, const std::string& name) const;

  size_t size() const { return funcs_.size(); }

 private:
  std::map<std::pair<std::string, std::string>, HostFunc> funcs_;
};

}  // namespace waran::wasm
