#include "wasm/module.h"

#include <cassert>

namespace waran::wasm {

const FuncType& Module::func_type(uint32_t i) const {
  assert(i < num_funcs());
  if (i < num_imported_funcs) return types[imported_func_types[i]];
  return types[func_type_indices[i - num_imported_funcs]];
}

GlobalType Module::global_type(uint32_t i) const {
  assert(i < num_globals());
  if (i < num_imported_globals) return imported_global_types[i];
  return globals[i - num_imported_globals].type;
}

const Limits* Module::memory_limits() const {
  if (imported_memory) return &*imported_memory;
  if (memory) return &*memory;
  return nullptr;
}

const TableType* Module::table_type() const {
  if (imported_table) return &*imported_table;
  if (table) return &*table;
  return nullptr;
}

const char* to_string(ValType t) {
  switch (t) {
    case ValType::kI32: return "i32";
    case ValType::kI64: return "i64";
    case ValType::kF32: return "f32";
    case ValType::kF64: return "f64";
  }
  return "?";
}

bool is_val_type(uint8_t b) {
  return b == 0x7f || b == 0x7e || b == 0x7d || b == 0x7c;
}

std::string to_string(const FuncType& t) {
  std::string s = "(";
  for (size_t i = 0; i < t.params.size(); ++i) {
    if (i) s += ", ";
    s += to_string(t.params[i]);
  }
  s += ") -> (";
  for (size_t i = 0; i < t.results.size(); ++i) {
    if (i) s += ", ";
    s += to_string(t.results[i]);
  }
  s += ")";
  return s;
}

}  // namespace waran::wasm
