// Decoded module representation. The binary decoder lowers each function
// body into a flat std::vector<Instr> with all immediates parsed; a
// control-linking pass then resolves structured control flow (matching
// else/end positions) so the interpreter never re-scans for block ends.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "wasm/opcode.h"
#include "wasm/types.h"

namespace waran::wasm {

struct TranslatedModule;  // wasm/translate.h

/// Block type of a block/loop/if: either empty or a single value type
/// (MVP structured-control typing; function-typed blocks are rejected).
struct BlockType {
  std::optional<ValType> result;

  uint32_t arity() const { return result ? 1 : 0; }
  bool operator==(const BlockType&) const = default;
};

/// One decoded instruction. 16 bytes; immediates live in the union, and the
/// control-linking pass fills `Ctrl::end_pc` / `Ctrl::else_pc` plus the
/// fuel-segment length `seg_len`.
struct Instr {
  Op op = Op::kNop;
  /// Block result arity for kBlock/kLoop/kIf (set by the decoder).
  uint8_t block_arity = 0;
  /// Fuel-segment length: number of instructions in the straight-line run
  /// starting here, up to and including the next control-transfer
  /// instruction (1 for control instructions themselves). Computed by the
  /// decoder's control-linking pass; the interpreter charges fuel and
  /// retires instructions one whole segment at a time instead of per
  /// instruction, so the hot loop carries no metering branch.
  uint32_t seg_len = 0;

  struct MemArg {
    uint32_t align;   // log2 of alignment
    uint32_t offset;
  };
  struct Ctrl {
    uint32_t end_pc;   // index of matching kEnd
    uint32_t else_pc;  // for kIf: index of kElse, or end_pc if no else
  };
  struct CallIndirect {
    uint32_t type_index;
    uint32_t table_index;  // MVP: must be 0
  };

  union {
    uint32_t index;       // local/global/func index, br depth
    int32_t i32;
    int64_t i64;
    float f32;
    double f64;
    MemArg mem;
    Ctrl ctrl;
    CallIndirect call_indirect;
    uint32_t br_table_index;  // index into Code::br_tables
  } imm = {};
};

static_assert(sizeof(Instr) <= 16, "keep the instruction cell compact");

/// True for instructions that end a fuel segment: those whose successor may
/// be something other than pc+1 (branches, calls, returns, `if`/`else`
/// jumps, and `unreachable`). `block`, `loop` and non-final `end` always
/// fall through, so straight-line runs extend across them — a run charged at
/// entry executes in full on every non-trapping path, which keeps
/// segment-level fuel accounting exactly equal to per-instruction
/// accounting on success.
constexpr bool is_segment_end(Op op) {
  switch (op) {
    case Op::kUnreachable:
    case Op::kIf:
    case Op::kElse:
    case Op::kBr:
    case Op::kBrIf:
    case Op::kBrTable:
    case Op::kReturn:
    case Op::kCall:
    case Op::kCallIndirect:
      return true;
    default:
      return false;
  }
}

struct BrTable {
  std::vector<uint32_t> targets;  // label depths
  uint32_t default_target = 0;
};

/// A function body: declared locals (expanded) plus the instruction stream.
struct Code {
  std::vector<ValType> locals;  // does not include parameters
  std::vector<Instr> body;      // terminated by kEnd
  std::vector<BrTable> br_tables;
  /// Maximum operand-stack height this body can reach, recorded by the
  /// validator's type-checking pass. The translated interpreter reserves
  /// this once at frame entry and runs a raw stack pointer with no per-push
  /// capacity checks.
  uint32_t max_stack = 0;
};

enum class ImportKind : uint8_t { kFunc = 0, kTable = 1, kMemory = 2, kGlobal = 3 };

struct GlobalType {
  ValType type;
  bool mut = false;
  bool operator==(const GlobalType&) const = default;
};

struct TableType {
  Limits limits;  // funcref elements
  bool operator==(const TableType&) const = default;
};

struct Import {
  std::string module;
  std::string name;
  ImportKind kind;
  // One of, by kind:
  uint32_t type_index = 0;  // kFunc
  TableType table{};        // kTable
  Limits memory{};          // kMemory
  GlobalType global{};      // kGlobal
};

struct Export {
  std::string name;
  ImportKind kind;
  uint32_t index;
};

/// Constant initializer expression: a single const instruction (or
/// global.get of an imported immutable global).
struct ConstExpr {
  enum class Kind : uint8_t { kI32, kI64, kF32, kF64, kGlobalGet } kind = Kind::kI32;
  Value value{};
  uint32_t global_index = 0;
};

struct Global {
  GlobalType type;
  ConstExpr init;
};

struct ElemSegment {
  uint32_t table_index = 0;
  ConstExpr offset;
  std::vector<uint32_t> func_indices;
};

struct DataSegment {
  uint32_t memory_index = 0;
  ConstExpr offset;
  std::vector<uint8_t> bytes;
};

struct Module {
  std::vector<FuncType> types;
  std::vector<Import> imports;
  std::vector<uint32_t> func_type_indices;  // local functions only
  std::optional<TableType> table;           // defined table (at most 1 incl. imports)
  std::optional<Limits> memory;             // defined memory (at most 1 incl. imports)
  std::vector<Global> globals;              // defined globals
  std::vector<Export> exports;
  std::optional<uint32_t> start;
  std::vector<ElemSegment> elems;
  std::vector<Code> codes;
  std::vector<DataSegment> datas;

  /// Execution-oriented lowering of every function body (wasm/translate.h),
  /// attached by translate_module() after validation so all instances share
  /// one micro-op stream; Instance::instantiate translates on the fly when
  /// this is absent.
  std::shared_ptr<const TranslatedModule> translated;

  // --- Import index spaces, precomputed by the decoder (imports precede
  // definitions in every index space). ---
  std::vector<uint32_t> imported_func_types;      // type index per func import
  std::vector<GlobalType> imported_global_types;  // per global import
  std::optional<TableType> imported_table;
  std::optional<Limits> imported_memory;

  uint32_t num_imported_funcs = 0;
  uint32_t num_imported_globals = 0;
  bool has_imported_table = false;
  bool has_imported_memory = false;

  uint32_t num_funcs() const {
    return num_imported_funcs + static_cast<uint32_t>(func_type_indices.size());
  }
  uint32_t num_globals() const {
    return num_imported_globals + static_cast<uint32_t>(globals.size());
  }
  bool has_table() const { return has_imported_table || table.has_value(); }
  bool has_memory() const { return has_imported_memory || memory.has_value(); }

  /// Signature of function index `i` (import or definition). Precondition:
  /// i < num_funcs() and type indices validated.
  const FuncType& func_type(uint32_t i) const;
  /// Type of global index `i`.
  GlobalType global_type(uint32_t i) const;
  /// Limits of the single memory, whether imported or defined.
  const Limits* memory_limits() const;
  const TableType* table_type() const;
};

}  // namespace waran::wasm
