// Umbrella header for the WA-RAN WebAssembly engine.
//
// Typical embedder flow:
//   auto module = waran::wasm::decode_module(bytes);        // bytes -> IR
//   waran::wasm::validate_module(*module);                  // type check
//   waran::wasm::translate_module(*module);                 // micro-op lowering
//   auto inst = waran::wasm::Instance::instantiate(...);    // link + alloc
//   inst->set_fuel(budget);
//   auto r = inst->call("run", args);                        // trap-safe
#pragma once

#include "wasm/decoder.h"     // IWYU pragma: export
#include "wasm/host.h"        // IWYU pragma: export
#include "wasm/instance.h"    // IWYU pragma: export
#include "wasm/memory.h"      // IWYU pragma: export
#include "wasm/module.h"      // IWYU pragma: export
#include "wasm/opcode.h"      // IWYU pragma: export
#include "wasm/translate.h"   // IWYU pragma: export
#include "wasm/types.h"       // IWYU pragma: export
#include "wasm/validator.h"   // IWYU pragma: export
