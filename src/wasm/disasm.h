// Disassembler: renders a decoded module as WAT-flavoured text. Used by the
// `waranc` CLI (`waranc dump plugin.wasm`) and by tests/debugging — when a
// plugin misbehaves, operators inspect exactly what bytecode the vendor
// shipped (the paper's §3A "static analysis before deployment" workflow).
#pragma once

#include <string>

#include "wasm/module.h"

namespace waran::wasm {

/// Whole-module listing: types, imports, memory/table/globals, exports and
/// every function body with structured indentation.
std::string disassemble(const Module& module);

/// One function body (index into the defined-function space).
std::string disassemble_function(const Module& module, uint32_t defined_index);

/// The translated micro-op stream of one defined function (wasm/translate.h):
/// one line per micro-op with fused superinstruction names, resolved branch
/// targets (`-> @n`, or `-> @ret` for branches to the function label) and
/// the baked fuel-segment charges. Uses the module's attached translation
/// when present, else lowers the body on the fly. Debug/inspection aid for
/// the threaded interpreter ("which stream does my plugin actually run?").
std::string disassemble_translated(const Module& module, uint32_t defined_index);

/// The tier-2 stream the profile-guided specializer (wasm/specialize.h)
/// would install for one defined function, rendered like
/// disassemble_translated. Specialized under a taken-biased synthetic
/// profile so every speculative rewrite is visible; a live instance may
/// apply fewer, never different, rewrites. `waranc dump --tiers` prints
/// this side by side with the tier-1 stream.
std::string disassemble_specialized(const Module& module, uint32_t defined_index);

}  // namespace waran::wasm
