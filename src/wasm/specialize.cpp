#include "wasm/specialize.h"

#include <vector>

namespace waran::wasm {
namespace {

// Fused compare-and-branch range (contiguous in WARAN_UOP_LIST).
bool is_fused_brif(UOp op) {
  return static_cast<uint16_t>(op) >= static_cast<uint16_t>(UOp::kBrIfLLEq) &&
         static_cast<uint16_t>(op) <= static_cast<uint16_t>(UOp::kBrIfLCGeU);
}

// kLGetCI32/C* fusion requires the kConst Value bits to fit in 32 bits so
// the handler's zero-extension rebuilds them exactly (Value::from_i32 and
// from_u32 both store zero-extended bits).
bool const_fits_u32(const UInstr& u) { return (u.imm.u64 >> 32) == 0; }

// I32 binops foldable against a constant right operand. kI32Add/Mul/And are
// absent on purpose: the baseline translator already folds those into
// kCAddI32/kCMulI32/kCAndI32, so [kConst, binop] never reaches us for them.
bool c_fold_op(UOp op, UOp* out) {
  switch (op) {
    case UOp::kI32Sub:  *out = UOp::kCSubI32; return true;
    case UOp::kI32DivS: *out = UOp::kCDivSI32; return true;
    case UOp::kI32DivU: *out = UOp::kCDivUI32; return true;
    case UOp::kI32RemS: *out = UOp::kCRemSI32; return true;
    case UOp::kI32RemU: *out = UOp::kCRemUI32; return true;
    case UOp::kI32Shl:  *out = UOp::kCShlI32; return true;
    case UOp::kI32ShrS: *out = UOp::kCShrSI32; return true;
    case UOp::kI32ShrU: *out = UOp::kCShrUI32; return true;
    case UOp::kI32Or:   *out = UOp::kCOrI32; return true;
    case UOp::kI32Xor:  *out = UOp::kCXorI32; return true;
    default: return false;
  }
}

// Non-trapping I32 binops whose result feeds a kLocalSet.
bool set_fold_op(UOp op, UOp* out) {
  switch (op) {
    case UOp::kI32Add: *out = UOp::kAddSetI32; return true;
    case UOp::kI32Sub: *out = UOp::kSubSetI32; return true;
    case UOp::kI32Mul: *out = UOp::kMulSetI32; return true;
    case UOp::kI32And: *out = UOp::kAndSetI32; return true;
    case UOp::kI32Or:  *out = UOp::kOrSetI32; return true;
    case UOp::kI32Xor: *out = UOp::kXorSetI32; return true;
    default: return false;
  }
}

// One greedy fusion step: can [a, b] collapse into a single micro-op with
// identical semantics AND an identical charge sequence? Only `a` may carry a
// charge (kSeg), which the fused op replays first — so fuel order is
// preserved by construction.
bool try_fuse_pair(const UInstr& a, const UInstr& b, UInstr* out) {
  UInstr f{};
  switch (a.op) {
    case UOp::kSeg:
      if (b.op == UOp::kLocalGet) {
        f.op = UOp::kSegLocalGet;
        f.b = b.b;
        f.imm.pair.y = a.b;
        *out = f;
        return true;
      }
      if (b.op == UOp::kLocalMove) {
        f.op = UOp::kSegLocalMove;
        f.a = b.a;
        f.b = b.b;
        f.imm.pair.y = a.b;
        *out = f;
        return true;
      }
      if (b.op == UOp::kLCAddSetI32) {
        f.op = UOp::kSegLCAddSetI32;
        f.a = b.a;
        f.b = b.b;
        f.imm.pair.x = static_cast<uint32_t>(b.imm.i32);
        f.imm.pair.y = a.b;
        *out = f;
        return true;
      }
      return false;
    case UOp::kLocalGet:
      if (b.op == UOp::kLocalGet && a.b <= 0xFFFF) {
        f.op = UOp::kLLGet;
        f.a = static_cast<uint16_t>(a.b);
        f.b = b.b;
        *out = f;
        return true;
      }
      if (b.op == UOp::kConst && a.b <= 0xFFFF && const_fits_u32(b)) {
        f.op = UOp::kLGetCI32;
        f.a = static_cast<uint16_t>(a.b);
        f.imm.pair.x = static_cast<uint32_t>(b.imm.u64);
        *out = f;
        return true;
      }
      return false;
    case UOp::kConst: {
      UOp folded;
      if (const_fits_u32(a) && c_fold_op(b.op, &folded)) {
        f.op = folded;
        f.imm.i32 = static_cast<int32_t>(static_cast<uint32_t>(a.imm.u64));
        *out = f;
        return true;
      }
      return false;
    }
    default: {
      UOp folded;
      if (b.op == UOp::kLocalSet && set_fold_op(a.op, &folded)) {
        f.op = folded;
        f.b = b.b;
        *out = f;
        return true;
      }
      return false;
    }
  }
}

}  // namespace

TranslatedFunc specialize(const TranslatedFunc& tf, const FuncProfile& profile) {
  TranslatedFunc out;
  out.max_stack = tf.max_stack;  // fused ops never deepen the operand stack
  out.num_params = tf.num_params;
  out.num_locals = tf.num_locals;
  out.result_arity = tf.result_arity;

  const std::vector<UInstr>& in = tf.ops;
  const size_t n = in.size();

  // Pass 1 — fusion barriers. Branch targets and call-resume points must
  // stay op heads: baked targets, br_entries, and the ip a frame saves
  // across a call all index this stream.
  std::vector<uint8_t> is_target(n, 0);
  auto mark = [&](uint32_t t) {
    if (t != kRetTarget && t < n) is_target[t] = 1;
  };
  for (size_t i = 0; i < n; ++i) {
    const UInstr& u = in[i];
    switch (u.op) {
      case UOp::kBr:
      case UOp::kBrIf:
      case UOp::kJump:
      case UOp::kJumpZ:
      case UOp::kJumpNZ:
        mark(u.b);
        break;
      case UOp::kCallWasm:
      case UOp::kCallHost:
      case UOp::kCallIndirect:
        if (i + 1 < n) is_target[i + 1] = 1;
        break;
      default:
        if (is_fused_brif(u.op)) mark(u.b);
        break;
    }
  }
  for (const UBrEntry& e : tf.br_entries) mark(e.target);

  // Pass 2 — greedy left-to-right pair fusion within straight-line runs.
  // A fusion head may itself be a target (execution lands on the fused op);
  // the interior op must not be.
  std::vector<UInstr>& ops = out.ops;
  ops.reserve(n);
  std::vector<uint32_t> old2new(n + 1, 0);
  size_t i = 0;
  while (i < n) {
    old2new[i] = static_cast<uint32_t>(ops.size());
    if (i + 1 < n && !is_target[i + 1]) {
      UInstr fused;
      if (try_fuse_pair(in[i], in[i + 1], &fused)) {
        old2new[i + 1] = static_cast<uint32_t>(ops.size());
        ops.push_back(fused);
        i += 2;
        continue;
      }
    }
    ops.push_back(in[i]);
    ++i;
  }
  old2new[n] = static_cast<uint32_t>(ops.size());

  // Pass 3a — remap every control-flow target into the fused index space.
  auto remap = [&](uint32_t t) { return t == kRetTarget ? kRetTarget : old2new[t]; };
  for (UInstr& u : ops) {
    switch (u.op) {
      case UOp::kBr:
      case UOp::kBrIf:
      case UOp::kJump:
      case UOp::kJumpZ:
      case UOp::kJumpNZ:
        u.b = remap(u.b);
        break;
      default:
        if (is_fused_brif(u.op)) u.b = remap(u.b);
        break;
    }
  }
  out.br_entries = tf.br_entries;
  for (UBrEntry& e : out.br_entries) e.target = remap(e.target);

  // Pass 3b — single-level jump-chain collapse. A jump whose target is
  // another unconditional jump skips the intermediate dispatch; the fused
  // op charges both edge segments in tier-1 order. Conditional collapse is
  // speculative (it only pays when taken) so it is gated on the profiled
  // taken bias. Decisions read a pre-pass snapshot so rewrites in this loop
  // cannot see each other.
  const bool collapse_cond =
      profile.cond_evals > 0 && profile.cond_taken * 2 >= profile.cond_evals;
  struct JumpSnap {
    bool is_jump = false;
    uint32_t target = 0;
    uint32_t seg = 0;
  };
  std::vector<JumpSnap> snap(ops.size());
  for (size_t k = 0; k < ops.size(); ++k) {
    snap[k] = {ops[k].op == UOp::kJump, ops[k].b, ops[k].imm.pair.y};
  }
  for (size_t k = 0; k < ops.size(); ++k) {
    UInstr& u = ops[k];
    const bool collapsible =
        u.op == UOp::kJump ||
        (collapse_cond && (u.op == UOp::kJumpZ || u.op == UOp::kJumpNZ));
    if (!collapsible) continue;
    const uint32_t t = u.b;
    if (t == k || t >= ops.size() || !snap[t].is_jump) continue;
    u.op = u.op == UOp::kJump    ? UOp::kJump2
           : u.op == UOp::kJumpZ ? UOp::kJumpZ2
                                 : UOp::kJumpNZ2;
    u.b = snap[t].target;
    u.imm.pair.x = snap[t].seg;  // second edge; pair.y already = own edge
  }

  return out;
}

const TranslatedFunc* CodeCache::tier_up(
    const std::shared_ptr<const TranslatedModule>& origin_module,
    const TranslatedFunc* origin, const FuncProfile& profile) {
  auto it = by_origin_.find(origin);
  if (it != by_origin_.end()) return it->second;
  SpecializedFunc sf;
  sf.func = specialize(*origin, profile);
  sf.origin = origin;
  sf.origin_module = origin_module;
  sf.uops_before = static_cast<uint32_t>(origin->ops.size());
  sf.uops_after = static_cast<uint32_t>(sf.func.ops.size());
  specialized_.push_back(std::move(sf));
  const TranslatedFunc* installed = &specialized_.back().func;
  by_origin_.emplace(origin, installed);
  ++tier_ups_;
  return installed;
}

const TranslatedFunc* CodeCache::lookup(const TranslatedFunc* origin) const {
  auto it = by_origin_.find(origin);
  return it == by_origin_.end() ? nullptr : it->second;
}

void CodeCache::retain_module(const TranslatedModule* module) {
  ++module_refs_[module];
}

void CodeCache::release_module(const TranslatedModule* module) {
  auto rit = module_refs_.find(module);
  if (rit == module_refs_.end()) return;
  if (--rit->second > 0) return;
  module_refs_.erase(rit);
  // Last instance of this module is gone: no live frame can reference its
  // streams any more, so drop its entries (and with them the retaining
  // shared_ptrs — this may free the module's tier-1 streams too).
  for (auto it = specialized_.begin(); it != specialized_.end();) {
    if (it->origin_module.get() == module) {
      by_origin_.erase(it->origin);
      it = specialized_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace waran::wasm
