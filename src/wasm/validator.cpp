#include "wasm/validator.h"

#include <optional>
#include <set>
#include <string>
#include <vector>

namespace waran::wasm {
namespace {

using OptType = std::optional<ValType>;  // nullopt = Unknown (polymorphic)

std::string at(uint32_t func, uint32_t pc, const std::string& msg) {
  return "func " + std::to_string(func) + " pc " + std::to_string(pc) + ": " + msg;
}

/// Per-body type checker, following the algorithm in the spec appendix.
class BodyChecker {
 public:
  BodyChecker(const Module& m, uint32_t func_index, const Code& code)
      : m_(m), func_index_(func_index), code_(code) {
    const FuncType& ft = m_.func_type(func_index);
    locals_.insert(locals_.end(), ft.params.begin(), ft.params.end());
    locals_.insert(locals_.end(), code.locals.begin(), code.locals.end());
    results_ = ft.results;
  }

  Status run();

  /// High-water mark of the operand stack, valid after run(). Recorded so
  /// the translated interpreter can reserve the whole operand stack once at
  /// frame entry (Code::max_stack).
  uint32_t max_stack() const { return max_stack_; }

 private:
  struct CtrlFrame {
    Op opcode;
    std::vector<ValType> end_types;
    size_t height;
    bool unreachable = false;
    bool saw_else = false;
  };

  const Module& m_;
  uint32_t func_index_;
  const Code& code_;
  std::vector<ValType> locals_;
  std::vector<ValType> results_;
  std::vector<OptType> vals_;
  std::vector<CtrlFrame> ctrls_;
  uint32_t pc_ = 0;
  uint32_t max_stack_ = 0;

  Error err(const std::string& msg) const {
    return Error::validation(at(func_index_, pc_, msg));
  }

  void push(ValType t) { vals_.push_back(t); }
  void push_unknown() { vals_.push_back(std::nullopt); }

  Result<OptType> pop() {
    CtrlFrame& f = ctrls_.back();
    if (vals_.size() == f.height) {
      if (f.unreachable) return OptType{std::nullopt};
      return err("operand stack underflow");
    }
    OptType t = vals_.back();
    vals_.pop_back();
    return t;
  }

  Status pop_expect(ValType expect) {
    auto t = pop();
    if (!t.ok()) return t.error();
    if (*t && **t != expect) {
      return err(std::string("type mismatch: expected ") + to_string(expect) +
                 ", got " + to_string(**t));
    }
    return {};
  }

  void push_ctrl(Op opcode, std::vector<ValType> end_types) {
    ctrls_.push_back({opcode, std::move(end_types), vals_.size(), false, false});
  }

  Result<CtrlFrame> pop_ctrl() {
    if (ctrls_.empty()) return err("control stack underflow");
    CtrlFrame f = ctrls_.back();
    // End of a frame: the stack must hold exactly the end types.
    for (auto it = f.end_types.rbegin(); it != f.end_types.rend(); ++it) {
      WARAN_CHECK_OK(pop_expect(*it));
    }
    if (vals_.size() != f.height) return err("values left on stack at block end");
    ctrls_.pop_back();
    return f;
  }

  void mark_unreachable() {
    CtrlFrame& f = ctrls_.back();
    vals_.resize(f.height);
    f.unreachable = true;
  }

  /// Types a branch to relative depth `d` must carry: for a loop target the
  /// (empty, MVP) params; otherwise the block result types.
  Result<std::vector<ValType>> label_types(uint32_t d) {
    if (d >= ctrls_.size()) return err("branch depth out of range");
    const CtrlFrame& f = ctrls_[ctrls_.size() - 1 - d];
    if (f.opcode == Op::kLoop) return std::vector<ValType>{};
    return f.end_types;
  }

  Status pop_types(const std::vector<ValType>& ts) {
    for (auto it = ts.rbegin(); it != ts.rend(); ++it) WARAN_CHECK_OK(pop_expect(*it));
    return {};
  }
  void push_types(const std::vector<ValType>& ts) {
    for (ValType t : ts) push(t);
  }

  /// Recovers the declared result type of a block/loop/if opener: the raw
  /// valtype byte was stashed by the decoder at the matching end's imm.
  Result<std::vector<ValType>> block_results(const Instr& ins) {
    if (ins.block_arity == 0) return std::vector<ValType>{};
    uint32_t raw = code_.body[ins.imm.ctrl.end_pc].imm.index;
    if (!is_val_type(static_cast<uint8_t>(raw))) return err("corrupt block type");
    return std::vector<ValType>{static_cast<ValType>(raw)};
  }

  Status check_memarg(const Instr& ins, uint32_t natural_log2) {
    if (!m_.has_memory()) return err("memory instruction without memory");
    if (ins.imm.mem.align > natural_log2) return err("alignment exceeds natural alignment");
    return {};
  }

  Status binary(ValType t) {
    WARAN_CHECK_OK(pop_expect(t));
    WARAN_CHECK_OK(pop_expect(t));
    push(t);
    return {};
  }
  Status unary(ValType t) {
    WARAN_CHECK_OK(pop_expect(t));
    push(t);
    return {};
  }
  Status compare(ValType t) {
    WARAN_CHECK_OK(pop_expect(t));
    WARAN_CHECK_OK(pop_expect(t));
    push(ValType::kI32);
    return {};
  }
  Status convert(ValType from, ValType to) {
    WARAN_CHECK_OK(pop_expect(from));
    push(to);
    return {};
  }
  Status load_op(const Instr& ins, ValType t, uint32_t natural_log2) {
    WARAN_CHECK_OK(check_memarg(ins, natural_log2));
    WARAN_CHECK_OK(pop_expect(ValType::kI32));
    push(t);
    return {};
  }
  Status store_op(const Instr& ins, ValType t, uint32_t natural_log2) {
    WARAN_CHECK_OK(check_memarg(ins, natural_log2));
    WARAN_CHECK_OK(pop_expect(t));
    WARAN_CHECK_OK(pop_expect(ValType::kI32));
    return {};
  }

  Status check_instr(const Instr& ins);
};

Status BodyChecker::run() {
  // Implicit function frame: branches to it carry the result types.
  push_ctrl(Op::kBlock, results_);
  for (pc_ = 0; pc_ < code_.body.size(); ++pc_) {
    WARAN_CHECK_OK(check_instr(code_.body[pc_]));
    if (vals_.size() > max_stack_) max_stack_ = static_cast<uint32_t>(vals_.size());
  }
  if (!ctrls_.empty()) return err("function body not closed");
  return {};
}

Status BodyChecker::check_instr(const Instr& ins) {
  switch (ins.op) {
    case Op::kUnreachable:
      mark_unreachable();
      return {};
    case Op::kNop:
      return {};

    case Op::kBlock:
    case Op::kLoop: {
      auto rs = block_results(ins);
      if (!rs.ok()) return rs.error();
      push_ctrl(ins.op, std::move(*rs));
      return {};
    }
    case Op::kIf: {
      WARAN_CHECK_OK(pop_expect(ValType::kI32));
      auto rs = block_results(ins);
      if (!rs.ok()) return rs.error();
      push_ctrl(Op::kIf, std::move(*rs));
      return {};
    }
    case Op::kElse: {
      auto f = pop_ctrl();
      if (!f.ok()) return f.error();
      if (f->opcode != Op::kIf || f->saw_else) return err("`else` without `if`");
      CtrlFrame nf = *f;
      nf.saw_else = true;
      nf.unreachable = false;
      nf.height = vals_.size();
      ctrls_.push_back(std::move(nf));
      return {};
    }
    case Op::kEnd: {
      auto f = pop_ctrl();
      if (!f.ok()) return f.error();
      if (f->opcode == Op::kIf && !f->saw_else && !f->end_types.empty()) {
        return err("`if` with a result requires an `else` branch");
      }
      push_types(f->end_types);
      if (ctrls_.empty() && pc_ + 1 != code_.body.size()) {
        return err("instructions after function end");
      }
      return {};
    }

    case Op::kBr: {
      auto ts = label_types(ins.imm.index);
      if (!ts.ok()) return ts.error();
      WARAN_CHECK_OK(pop_types(*ts));
      mark_unreachable();
      return {};
    }
    case Op::kBrIf: {
      WARAN_CHECK_OK(pop_expect(ValType::kI32));
      auto ts = label_types(ins.imm.index);
      if (!ts.ok()) return ts.error();
      WARAN_CHECK_OK(pop_types(*ts));
      push_types(*ts);
      return {};
    }
    case Op::kBrTable: {
      WARAN_CHECK_OK(pop_expect(ValType::kI32));
      const BrTable& bt = code_.br_tables[ins.imm.br_table_index];
      auto def = label_types(bt.default_target);
      if (!def.ok()) return def.error();
      for (uint32_t t : bt.targets) {
        auto ts = label_types(t);
        if (!ts.ok()) return ts.error();
        if (*ts != *def) return err("br_table targets have mismatched label types");
      }
      WARAN_CHECK_OK(pop_types(*def));
      mark_unreachable();
      return {};
    }
    case Op::kReturn: {
      WARAN_CHECK_OK(pop_types(results_));
      mark_unreachable();
      return {};
    }
    case Op::kCall: {
      if (ins.imm.index >= m_.num_funcs()) return err("call: function index out of range");
      const FuncType& ft = m_.func_type(ins.imm.index);
      WARAN_CHECK_OK(pop_types(ft.params));
      push_types(ft.results);
      return {};
    }
    case Op::kCallIndirect: {
      if (!m_.has_table()) return err("call_indirect without table");
      if (ins.imm.call_indirect.type_index >= m_.types.size()) {
        return err("call_indirect: type index out of range");
      }
      WARAN_CHECK_OK(pop_expect(ValType::kI32));
      const FuncType& ft = m_.types[ins.imm.call_indirect.type_index];
      WARAN_CHECK_OK(pop_types(ft.params));
      push_types(ft.results);
      return {};
    }

    case Op::kDrop: {
      auto t = pop();
      if (!t.ok()) return t.error();
      return {};
    }
    case Op::kSelect: {
      WARAN_CHECK_OK(pop_expect(ValType::kI32));
      auto t1 = pop();
      if (!t1.ok()) return t1.error();
      auto t2 = pop();
      if (!t2.ok()) return t2.error();
      if (*t1 && *t2 && **t1 != **t2) return err("select operand types differ");
      if (*t1) {
        push(**t1);
      } else if (*t2) {
        push(**t2);
      } else {
        push_unknown();
      }
      return {};
    }

    case Op::kLocalGet: {
      if (ins.imm.index >= locals_.size()) return err("local index out of range");
      push(locals_[ins.imm.index]);
      return {};
    }
    case Op::kLocalSet: {
      if (ins.imm.index >= locals_.size()) return err("local index out of range");
      return pop_expect(locals_[ins.imm.index]);
    }
    case Op::kLocalTee: {
      if (ins.imm.index >= locals_.size()) return err("local index out of range");
      WARAN_CHECK_OK(pop_expect(locals_[ins.imm.index]));
      push(locals_[ins.imm.index]);
      return {};
    }
    case Op::kGlobalGet: {
      if (ins.imm.index >= m_.num_globals()) return err("global index out of range");
      push(m_.global_type(ins.imm.index).type);
      return {};
    }
    case Op::kGlobalSet: {
      if (ins.imm.index >= m_.num_globals()) return err("global index out of range");
      GlobalType gt = m_.global_type(ins.imm.index);
      if (!gt.mut) return err("global.set of immutable global");
      return pop_expect(gt.type);
    }

    case Op::kI32Load: return load_op(ins, ValType::kI32, 2);
    case Op::kI64Load: return load_op(ins, ValType::kI64, 3);
    case Op::kF32Load: return load_op(ins, ValType::kF32, 2);
    case Op::kF64Load: return load_op(ins, ValType::kF64, 3);
    case Op::kI32Load8S:
    case Op::kI32Load8U: return load_op(ins, ValType::kI32, 0);
    case Op::kI32Load16S:
    case Op::kI32Load16U: return load_op(ins, ValType::kI32, 1);
    case Op::kI64Load8S:
    case Op::kI64Load8U: return load_op(ins, ValType::kI64, 0);
    case Op::kI64Load16S:
    case Op::kI64Load16U: return load_op(ins, ValType::kI64, 1);
    case Op::kI64Load32S:
    case Op::kI64Load32U: return load_op(ins, ValType::kI64, 2);
    case Op::kI32Store: return store_op(ins, ValType::kI32, 2);
    case Op::kI64Store: return store_op(ins, ValType::kI64, 3);
    case Op::kF32Store: return store_op(ins, ValType::kF32, 2);
    case Op::kF64Store: return store_op(ins, ValType::kF64, 3);
    case Op::kI32Store8: return store_op(ins, ValType::kI32, 0);
    case Op::kI32Store16: return store_op(ins, ValType::kI32, 1);
    case Op::kI64Store8: return store_op(ins, ValType::kI64, 0);
    case Op::kI64Store16: return store_op(ins, ValType::kI64, 1);
    case Op::kI64Store32: return store_op(ins, ValType::kI64, 2);

    case Op::kMemorySize:
      if (!m_.has_memory()) return err("memory.size without memory");
      push(ValType::kI32);
      return {};
    case Op::kMemoryGrow:
      if (!m_.has_memory()) return err("memory.grow without memory");
      WARAN_CHECK_OK(pop_expect(ValType::kI32));
      push(ValType::kI32);
      return {};
    case Op::kMemoryCopy:
    case Op::kMemoryFill:
      if (!m_.has_memory()) return err("bulk memory op without memory");
      WARAN_CHECK_OK(pop_expect(ValType::kI32));
      WARAN_CHECK_OK(pop_expect(ValType::kI32));
      WARAN_CHECK_OK(pop_expect(ValType::kI32));
      return {};

    case Op::kI32Const: push(ValType::kI32); return {};
    case Op::kI64Const: push(ValType::kI64); return {};
    case Op::kF32Const: push(ValType::kF32); return {};
    case Op::kF64Const: push(ValType::kF64); return {};

    case Op::kI32Eqz:
      WARAN_CHECK_OK(pop_expect(ValType::kI32));
      push(ValType::kI32);
      return {};
    case Op::kI64Eqz:
      WARAN_CHECK_OK(pop_expect(ValType::kI64));
      push(ValType::kI32);
      return {};

    case Op::kI32Eq: case Op::kI32Ne: case Op::kI32LtS: case Op::kI32LtU:
    case Op::kI32GtS: case Op::kI32GtU: case Op::kI32LeS: case Op::kI32LeU:
    case Op::kI32GeS: case Op::kI32GeU:
      return compare(ValType::kI32);
    case Op::kI64Eq: case Op::kI64Ne: case Op::kI64LtS: case Op::kI64LtU:
    case Op::kI64GtS: case Op::kI64GtU: case Op::kI64LeS: case Op::kI64LeU:
    case Op::kI64GeS: case Op::kI64GeU:
      return compare(ValType::kI64);
    case Op::kF32Eq: case Op::kF32Ne: case Op::kF32Lt: case Op::kF32Gt:
    case Op::kF32Le: case Op::kF32Ge:
      return compare(ValType::kF32);
    case Op::kF64Eq: case Op::kF64Ne: case Op::kF64Lt: case Op::kF64Gt:
    case Op::kF64Le: case Op::kF64Ge:
      return compare(ValType::kF64);

    case Op::kI32Clz: case Op::kI32Ctz: case Op::kI32Popcnt:
    case Op::kI32Extend8S: case Op::kI32Extend16S:
      return unary(ValType::kI32);
    case Op::kI32Add: case Op::kI32Sub: case Op::kI32Mul: case Op::kI32DivS:
    case Op::kI32DivU: case Op::kI32RemS: case Op::kI32RemU: case Op::kI32And:
    case Op::kI32Or: case Op::kI32Xor: case Op::kI32Shl: case Op::kI32ShrS:
    case Op::kI32ShrU: case Op::kI32Rotl: case Op::kI32Rotr:
      return binary(ValType::kI32);

    case Op::kI64Clz: case Op::kI64Ctz: case Op::kI64Popcnt:
    case Op::kI64Extend8S: case Op::kI64Extend16S: case Op::kI64Extend32S:
      return unary(ValType::kI64);
    case Op::kI64Add: case Op::kI64Sub: case Op::kI64Mul: case Op::kI64DivS:
    case Op::kI64DivU: case Op::kI64RemS: case Op::kI64RemU: case Op::kI64And:
    case Op::kI64Or: case Op::kI64Xor: case Op::kI64Shl: case Op::kI64ShrS:
    case Op::kI64ShrU: case Op::kI64Rotl: case Op::kI64Rotr:
      return binary(ValType::kI64);

    case Op::kF32Abs: case Op::kF32Neg: case Op::kF32Ceil: case Op::kF32Floor:
    case Op::kF32Trunc: case Op::kF32Nearest: case Op::kF32Sqrt:
      return unary(ValType::kF32);
    case Op::kF32Add: case Op::kF32Sub: case Op::kF32Mul: case Op::kF32Div:
    case Op::kF32Min: case Op::kF32Max: case Op::kF32Copysign:
      return binary(ValType::kF32);

    case Op::kF64Abs: case Op::kF64Neg: case Op::kF64Ceil: case Op::kF64Floor:
    case Op::kF64Trunc: case Op::kF64Nearest: case Op::kF64Sqrt:
      return unary(ValType::kF64);
    case Op::kF64Add: case Op::kF64Sub: case Op::kF64Mul: case Op::kF64Div:
    case Op::kF64Min: case Op::kF64Max: case Op::kF64Copysign:
      return binary(ValType::kF64);

    case Op::kI32WrapI64: return convert(ValType::kI64, ValType::kI32);
    case Op::kI32TruncF32S: case Op::kI32TruncF32U:
    case Op::kI32TruncSatF32S: case Op::kI32TruncSatF32U:
      return convert(ValType::kF32, ValType::kI32);
    case Op::kI32TruncF64S: case Op::kI32TruncF64U:
    case Op::kI32TruncSatF64S: case Op::kI32TruncSatF64U:
      return convert(ValType::kF64, ValType::kI32);
    case Op::kI64ExtendI32S: case Op::kI64ExtendI32U:
      return convert(ValType::kI32, ValType::kI64);
    case Op::kI64TruncF32S: case Op::kI64TruncF32U:
    case Op::kI64TruncSatF32S: case Op::kI64TruncSatF32U:
      return convert(ValType::kF32, ValType::kI64);
    case Op::kI64TruncF64S: case Op::kI64TruncF64U:
    case Op::kI64TruncSatF64S: case Op::kI64TruncSatF64U:
      return convert(ValType::kF64, ValType::kI64);
    case Op::kF32ConvertI32S: case Op::kF32ConvertI32U:
      return convert(ValType::kI32, ValType::kF32);
    case Op::kF32ConvertI64S: case Op::kF32ConvertI64U:
      return convert(ValType::kI64, ValType::kF32);
    case Op::kF32DemoteF64: return convert(ValType::kF64, ValType::kF32);
    case Op::kF64ConvertI32S: case Op::kF64ConvertI32U:
      return convert(ValType::kI32, ValType::kF64);
    case Op::kF64ConvertI64S: case Op::kF64ConvertI64U:
      return convert(ValType::kI64, ValType::kF64);
    case Op::kF64PromoteF32: return convert(ValType::kF32, ValType::kF64);
    case Op::kI32ReinterpretF32: return convert(ValType::kF32, ValType::kI32);
    case Op::kI64ReinterpretF64: return convert(ValType::kF64, ValType::kI64);
    case Op::kF32ReinterpretI32: return convert(ValType::kI32, ValType::kF32);
    case Op::kF64ReinterpretI64: return convert(ValType::kI64, ValType::kF64);
  }
  return err("unhandled opcode in validator");
}

Status check_const_expr(const Module& m, const ConstExpr& e, ValType expect,
                        const char* what) {
  ValType actual;
  switch (e.kind) {
    case ConstExpr::Kind::kI32: actual = ValType::kI32; break;
    case ConstExpr::Kind::kI64: actual = ValType::kI64; break;
    case ConstExpr::Kind::kF32: actual = ValType::kF32; break;
    case ConstExpr::Kind::kF64: actual = ValType::kF64; break;
    case ConstExpr::Kind::kGlobalGet: {
      if (e.global_index >= m.num_imported_globals) {
        return Error::validation(std::string(what) +
                                 ": init may only reference imported globals");
      }
      GlobalType gt = m.imported_global_types[e.global_index];
      if (gt.mut) {
        return Error::validation(std::string(what) + ": init global must be immutable");
      }
      actual = gt.type;
      break;
    }
    default:
      return Error::validation(std::string(what) + ": bad init expr");
  }
  if (actual != expect) {
    return Error::validation(std::string(what) + ": init type mismatch");
  }
  return {};
}

}  // namespace

Status validate_module(Module& m) {
  // Imported + declared type indices.
  for (uint32_t ti : m.imported_func_types) {
    if (ti >= m.types.size()) return Error::validation("import: type index out of range");
  }
  for (uint32_t ti : m.func_type_indices) {
    if (ti >= m.types.size()) return Error::validation("function: type index out of range");
  }

  // Globals: init expressions.
  for (const Global& g : m.globals) {
    WARAN_CHECK_OK(check_const_expr(m, g.init, g.type.type, "global"));
  }

  // Exports: valid indices, unique names.
  std::set<std::string> export_names;
  for (const Export& e : m.exports) {
    if (!export_names.insert(e.name).second) {
      return Error::validation("duplicate export name: " + e.name);
    }
    switch (e.kind) {
      case ImportKind::kFunc:
        if (e.index >= m.num_funcs()) return Error::validation("export: bad func index");
        break;
      case ImportKind::kTable:
        if (!m.has_table() || e.index != 0) return Error::validation("export: bad table index");
        break;
      case ImportKind::kMemory:
        if (!m.has_memory() || e.index != 0) return Error::validation("export: bad memory index");
        break;
      case ImportKind::kGlobal:
        if (e.index >= m.num_globals()) return Error::validation("export: bad global index");
        break;
    }
  }

  // Start function: () -> ().
  if (m.start) {
    if (*m.start >= m.num_funcs()) return Error::validation("start: func index out of range");
    const FuncType& ft = m.func_type(*m.start);
    if (!ft.params.empty() || !ft.results.empty()) {
      return Error::validation("start function must have type () -> ()");
    }
  }

  // Element segments.
  for (const ElemSegment& seg : m.elems) {
    if (!m.has_table()) return Error::validation("element segment without table");
    WARAN_CHECK_OK(check_const_expr(m, seg.offset, ValType::kI32, "element segment"));
    for (uint32_t fi : seg.func_indices) {
      if (fi >= m.num_funcs()) return Error::validation("element: func index out of range");
    }
  }

  // Data segments.
  for (const DataSegment& seg : m.datas) {
    if (!m.has_memory()) return Error::validation("data segment without memory");
    WARAN_CHECK_OK(check_const_expr(m, seg.offset, ValType::kI32, "data segment"));
  }

  // Memory limits sanity (decoder bounds defined memories; imported ones
  // are checked here too).
  if (const Limits* ml = m.memory_limits()) {
    if (ml->max && *ml->max < ml->min) return Error::validation("memory: max < min");
  }

  // Function bodies.
  for (uint32_t i = 0; i < m.codes.size(); ++i) {
    BodyChecker checker(m, m.num_imported_funcs + i, m.codes[i]);
    WARAN_CHECK_OK(checker.run());
    m.codes[i].max_stack = checker.max_stack();
  }
  return {};
}

}  // namespace waran::wasm
