// waran::rt cell executor — one worker thread owning one cell shard.
//
// The multi-cell deployment (rt/deployment.h) bundles each cell's
// GnbMac + PluginManager + GnbAgent + engine instances into a shard and
// pins all of its execution to one CellExecutor: the shard's state is only
// ever touched from its worker (or from the coordinator strictly between
// wait_idle() and the next post(), which the mutex handshake orders), so
// none of it needs internal locking.
//
// Tasks run in FIFO order. wait_idle() is the barrier a deterministic
// deployment steps on: it returns only after every posted task finished,
// and the unlock/lock pair gives the coordinator a happens-before edge over
// all of the worker's writes.
//
// Without start() (or after stop()) post() runs the task inline on the
// caller's thread — byte-identical schedule, no concurrency — which is what
// single-threaded tier-1 tests and the differential determinism checks use.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

namespace waran::rt {

class CellExecutor {
 public:
  explicit CellExecutor(std::string name) : name_(std::move(name)) {}
  ~CellExecutor();

  CellExecutor(const CellExecutor&) = delete;
  CellExecutor& operator=(const CellExecutor&) = delete;

  /// Spawns the worker thread. Idempotent.
  void start();
  /// Drains the queue, then joins the worker. Subsequent posts run inline.
  void stop();
  bool threaded() const;

  /// Enqueues `task` for the worker (or runs it inline when not started).
  void post(std::function<void()> task);

  /// Blocks until every task posted so far has finished.
  void wait_idle();

  const std::string& name() const { return name_; }
  uint64_t tasks_run() const;

 private:
  void loop();

  std::string name_;
  std::thread thread_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // worker wakes on new work / stop
  std::condition_variable idle_cv_;  // wait_idle callers wake on drain
  std::deque<std::function<void()>> queue_;
  uint64_t tasks_run_ = 0;
  bool running_ = false;   // worker thread exists
  bool busy_ = false;      // worker is inside a task
  bool stopping_ = false;
};

}  // namespace waran::rt
