#include "rt/clock.h"

#include <chrono>

namespace waran::rt {

namespace {

// Pinned at first use (Clock::global() touches it, so no later than the
// first timestamp anyone reads) — the same "ns since process trace epoch"
// contract obs::now_ns has always had.
std::chrono::steady_clock::time_point process_epoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

}  // namespace

Clock& Clock::global() {
  static Clock clock;
  process_epoch();
  return clock;
}

uint64_t Clock::real_ns() const {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now() - process_epoch())
                                   .count());
}

void Clock::enable_virtual(uint64_t start_ns) {
  vnow_.store(start_ns, std::memory_order_relaxed);
  virtual_.store(true, std::memory_order_seq_cst);
}

void Clock::disable_virtual() { virtual_.store(false, std::memory_order_seq_cst); }

}  // namespace waran::rt
