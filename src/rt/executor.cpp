#include "rt/executor.h"

#include <utility>

namespace waran::rt {

CellExecutor::~CellExecutor() { stop(); }

void CellExecutor::start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) return;
  stopping_ = false;
  running_ = true;
  thread_ = std::thread([this] { loop(); });
}

void CellExecutor::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stopping_ = true;
  }
  work_cv_.notify_all();
  thread_.join();
  std::lock_guard<std::mutex> lock(mu_);
  running_ = false;
}

bool CellExecutor::threaded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

void CellExecutor::post(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (running_) {
      queue_.push_back(std::move(task));
      work_cv_.notify_one();
      return;
    }
  }
  // Inline mode: same FIFO schedule, caller's thread.
  task();
  std::lock_guard<std::mutex> lock(mu_);
  ++tasks_run_;
}

void CellExecutor::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && !busy_; });
}

uint64_t CellExecutor::tasks_run() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tasks_run_;
}

void CellExecutor::loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (queue_.empty()) {
      busy_ = false;
      idle_cv_.notify_all();
      if (stopping_) return;
      work_cv_.wait(lock, [this] { return !queue_.empty() || stopping_; });
      continue;
    }
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    busy_ = true;
    lock.unlock();
    task();
    lock.lock();
    ++tasks_run_;
  }
}

}  // namespace waran::rt
