#include "rt/deployment.h"

#include <cinttypes>
#include <cstdio>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "plugin/manager.h"
#include "ric/gnb_agent.h"
#include "ric/near_rt_ric.h"
#include "ric/plugin_sources.h"
#include "ric/quota_inter.h"
#include "ric/transport.h"
#include "sched/plugins.h"
#include "sched/wasm_sched.h"

namespace waran::rt {

std::vector<SliceSpec> default_mvno_slices() {
  return {
      {1, "iot-co", "rr", 4e6, 12, 2},
      {2, "stream-co", "mt", 14e6, 12, 2},
      {3, "fair-co", "pf", 10e6, 12, 2},
  };
}

struct GnbDeployment::Cell {
  uint32_t id = 0;
  std::unique_ptr<ran::GnbMac> mac;
  ric::QuotaTableInterScheduler* quotas = nullptr;  // owned by the MAC
  std::unique_ptr<plugin::PluginManager> sched_plugins;
  std::unique_ptr<ric::Duplex> link;
  std::unique_ptr<ric::GnbAgent> agent;
  std::unique_ptr<obs::TraceRing> ring;  // null when per-cell tracing is off
  /// Exact copy of the telemetry summary this cell last shipped in an
  /// indication (written by the cell's own worker inside send_indication;
  /// read by the coordinator between barriers). Ground truth for the
  /// RIC-reconstruction invariant.
  obs::CellTelemetry last_shipped;
  bool shipped = false;
  /// First contained run_slot failure on this shard; written only by the
  /// cell's worker (or the coordinator between barriers).
  Status status;
  // Last member: its destructor joins the worker before the shard state
  // above is torn down.
  std::unique_ptr<CellExecutor> executor;
};

GnbDeployment::GnbDeployment(DeploymentConfig config) : config_(std::move(config)) {
  if (config_.cells == 0) config_.cells = 1;
  if (config_.virtual_time) vguard_.emplace(0);

  for (uint32_t i = 0; i < config_.cells; ++i) {
    auto cell = std::make_unique<Cell>();
    cell->id = i;

    ran::MacConfig mc = config_.mac;
    mc.cell = i;
    mc.domain = "mac" + std::to_string(i);
    // Independent per-cell error stream, still a pure function of the seed.
    mc.error_seed = config_.seed * 0x9e3779b97f4a7c15ULL + i;
    cell->mac = std::make_unique<ran::GnbMac>(mc);

    auto quotas = std::make_unique<ric::QuotaTableInterScheduler>();
    cell->quotas = quotas.get();
    cell->mac->set_inter_scheduler(std::move(quotas));

    plugin::PluginLimits sched_limits;
    if (config_.sched_fuel_per_call > 0) {
      sched_limits.fuel_per_call = config_.sched_fuel_per_call;
    }
    sched_limits.admission = config_.admission;
    cell->sched_plugins = std::make_unique<plugin::PluginManager>(sched_limits);
    cell->sched_plugins->set_domain(mc.domain);
    // Before install(): dispatch/cache are captured at plugin load time.
    if (config_.tier_up_threshold > 0) {
      cell->sched_plugins->enable_tier2(config_.tier_up_threshold);
    }

    for (const SliceSpec& s : config_.slices) {
      auto bytes = sched::plugins::scheduler(s.policy);
      if (!bytes.ok()) {
        status_ = bytes.error();
        return;
      }
      Status inst = cell->sched_plugins->install(s.name, *bytes);
      if (!inst.ok()) {
        status_ = inst.error();
        return;
      }
      std::unique_ptr<ran::IntraSliceScheduler> sched =
          std::make_unique<sched::WasmIntraScheduler>(*cell->sched_plugins, s.name);
      if (config_.decorate_scheduler) {
        sched = config_.decorate_scheduler(std::move(sched), i, s.slice_id);
      }
      ran::SliceConfig sc;
      sc.slice_id = s.slice_id;
      sc.name = s.name;
      sc.target_rate_bps = s.target_rate_bps;
      cell->mac->add_slice(sc, std::move(sched));
      cell->quotas->set_quota(s.slice_id, s.quota_prbs);
      for (uint32_t u = 0; u < s.ues; ++u) {
        ran::Channel::FadingParams fading;
        fading.mean_snr_db = 14.0 + 2.5 * u;
        uint64_t chan_seed = config_.seed ^ (static_cast<uint64_t>(i) << 32) ^
                             (static_cast<uint64_t>(s.slice_id) * 100 + u);
        cell->mac->add_ue(s.slice_id, ran::Channel::fading(fading, chan_seed),
                          ran::TrafficSource::full_buffer());
      }
    }

    cell->link = std::make_unique<ric::Duplex>();
    cell->agent = std::make_unique<ric::GnbAgent>(i, *cell->mac, cell->quotas,
                                                  *cell->link, ric::Duplex::Side::kA);
    if (i == 0) {
      ric_ = std::make_unique<ric::NearRtRic>(*cell->link, ric::Duplex::Side::kB);
    } else {
      ric_->add_link(*cell->link, ric::Duplex::Side::kB);
    }

    if (config_.trace_capacity > 0) {
      cell->ring = std::make_unique<obs::TraceRing>();
      cell->ring->enable(config_.trace_capacity);
    }
    cell->executor = std::make_unique<CellExecutor>("cell" + std::to_string(i));
    cells_.push_back(std::move(cell));
  }

  if (config_.trace_capacity > 0) {
    // Coordinator-side ring: RIC dispatch and SLO evaluation spans, merged
    // into the cross-cell trace as their own process track.
    ric_ring_ = std::make_unique<obs::TraceRing>();
    ric_ring_->enable(config_.trace_capacity);
  }

  // Fleet telemetry plane: one spec per cell, handles resolved here so the
  // per-indication collection path never allocates.
  {
    std::vector<obs::FleetCellSpec> specs;
    specs.reserve(cells_.size());
    for (const auto& cp : cells_) {
      obs::FleetCellSpec spec;
      spec.gnb = config_.gnb_id;
      spec.cell = cp->id;
      spec.mac_domain = "mac" + std::to_string(cp->id);
      spec.agent_domain = "gnb" + std::to_string(cp->id);
      for (const SliceSpec& s : config_.slices) {
        spec.sched_slots.push_back(s.name);
        spec.slice_ids.push_back(std::to_string(s.slice_id));
      }
      spec.n_prbs = config_.mac.n_prbs;
      spec.ring = cp->ring.get();
      specs.push_back(std::move(spec));
    }
    fleet_ = std::make_unique<obs::FleetAggregator>(std::move(specs));
  }
  for (size_t i = 0; i < cells_.size(); ++i) {
    Cell* c = cells_[i].get();
    c->agent->set_telemetry_provider([this, c, i]() -> const obs::CellTelemetry* {
      // Runs on the cell's own worker: reads only cell-i-labeled
      // instruments, writes only this cell's aggregator slot.
      const obs::CellTelemetry& t = fleet_->collect_cell(i);
      c->last_shipped = t;
      c->shipped = true;
      return &t;
    });
  }

  if (config_.slo_window_slots > 0) {
    std::vector<obs::SloSpec> slos =
        config_.slos.empty()
            ? obs::default_slos(static_cast<uint64_t>(config_.mac.slot_us) * 1000)
            : config_.slos;
    slo_ = std::make_unique<obs::SloEngine>(std::move(slos));
  }

  flight_ctx_.seed = config_.seed;
  flight_ctx_.cells = config_.cells;
  flight_ctx_.virtual_time = config_.virtual_time;
  flight_ctx_.scenario = "gnb_deployment";

  if (config_.report_period_slots > 0) {
    status_ = wire_e2_loop();
    if (!status_.ok()) return;
  }

  if (config_.threaded) {
    for (auto& cell : cells_) cell->executor->start();
  }
}

GnbDeployment::~GnbDeployment() {
  for (auto& cell : cells_) {
    if (cell->executor) cell->executor->stop();
  }
}

Status GnbDeployment::wire_e2_loop() {
  auto comm = ric::plugin_sources::comm_framing();
  if (!comm.ok()) return comm.error();
  auto ctl = ric::plugin_sources::control_dispatch();
  if (!ctl.ok()) return ctl.error();
  auto sla = ric::plugin_sources::sla_xapp();
  if (!sla.ok()) return sla.error();
  WARAN_CHECK_OK(ric_->load_comm_plugin(*comm));
  auto xapp = ric_->add_xapp("sla", *sla);
  if (!xapp.ok()) return xapp.error();
  for (auto& cell : cells_) {
    WARAN_CHECK_OK(cell->agent->load_comm_plugin(*comm));
    WARAN_CHECK_OK(cell->agent->load_control_plugin(*ctl));
  }
  return {};
}

Status GnbDeployment::run_slots(uint32_t n) {
  if (!status_.ok()) return status_;
  const uint64_t slot_ns = static_cast<uint64_t>(config_.mac.slot_us) * 1000;
  for (uint32_t k = 0; k < n; ++k) {
    const bool report = config_.report_period_slots > 0 &&
                        (slots_run_ + 1) % config_.report_period_slots == 0;

    // Step phase: every cell runs this slot (and its indication when due)
    // on its own worker; the shard's ring is bound for the task's duration.
    for (auto& cp : cells_) {
      Cell* c = cp.get();
      c->executor->post([c, report] {
        obs::TraceRing::bind_current(c->ring.get());
        Status st = c->mac->run_slot();
        if (!st.ok() && c->status.ok()) c->status = st;
        if (report) {
          // Indication loss is contained, like any E2 frame loss.
          Status sent = c->agent->send_indication();
          (void)sent;
        }
        obs::TraceRing::bind_current(nullptr);
      });
    }
    for (auto& cp : cells_) cp->executor->wait_idle();  // barrier

    if (report) {
      // Coordinator-only RIC turn: drain indications from every cell's
      // link, dispatch xApps, ship control. Then each cell applies its
      // control on its own worker. RIC spans land in the coordinator ring.
      obs::TraceRing::bind_current(ric_ring_.get());
      obs::set_current_slot(slots_run_ + 1);
      Status rs = ric_->poll();
      (void)rs;
      obs::TraceRing::bind_current(nullptr);
      for (auto& cp : cells_) {
        Cell* c = cp.get();
        c->executor->post([c] {
          obs::TraceRing::bind_current(c->ring.get());
          // Pin the thread-local slot to the cell's MAC slot: inline mode
          // would otherwise inherit the coordinator's value and tag these
          // events differently from a worker thread.
          obs::set_current_slot(c->mac->slot());
          Status ps = c->agent->poll();
          (void)ps;
          obs::TraceRing::bind_current(nullptr);
        });
      }
      for (auto& cp : cells_) cp->executor->wait_idle();  // barrier
    }

    if (slo_ != nullptr && (slots_run_ + 1) % config_.slo_window_slots == 0) {
      // SLO window edge: workers are parked, so the coordinator re-collects
      // every cell coherently, judges the window deltas, and opens the next
      // window. Breach journaling/tracing lands in the coordinator ring.
      obs::TraceRing::bind_current(ric_ring_.get());
      obs::set_current_slot(slots_run_ + 1);
      {
        obs::ObsSpan span(obs::TraceCat::kRic, "slo_evaluate",
                          static_cast<uint32_t>(slots_run_ + 1));
        for (size_t i = 0; i < cells_.size(); ++i) fleet_->collect_cell(i);
        last_health_ = slo_->evaluate(*fleet_, window_start_slot_, slots_run_ + 1);
      }
      window_start_slot_ = slots_run_ + 1;
      fleet_->begin_window();
      if (!last_health_.healthy) {
        ++slo_breach_windows_;
        if (breach_hook_) breach_hook_(last_health_);
      }
      obs::TraceRing::bind_current(nullptr);
    }

    // All workers are parked: advancing the clock here is ordered before
    // every read in the next step by the executors' mutex handshake.
    if (config_.virtual_time) Clock::global().advance_ns(slot_ns);
    ++slots_run_;
  }
  for (auto& cp : cells_) {
    if (!cp->status.ok()) return cp->status;
  }
  return {};
}

Status GnbDeployment::run_slots_unsynced(uint32_t n) {
  if (!status_.ok()) return status_;
  const uint32_t period = config_.report_period_slots;
  for (auto& cp : cells_) {
    Cell* c = cp.get();
    c->executor->post([c, n, period] {
      obs::TraceRing::bind_current(c->ring.get());
      for (uint32_t k = 0; k < n; ++k) {
        Status st = c->mac->run_slot();
        if (!st.ok()) {
          if (c->status.ok()) c->status = st;
          break;
        }
        if (period > 0 && c->mac->slot() % period == 0) {
          Status sent = c->agent->send_indication();
          (void)sent;
        }
      }
      obs::TraceRing::bind_current(nullptr);
    });
  }
  for (auto& cp : cells_) cp->executor->wait_idle();

  // Settle the E2 loop once: RIC turn, then control application per cell.
  if (period > 0) {
    obs::TraceRing::bind_current(ric_ring_.get());
    Status rs = ric_->poll();
    (void)rs;
    obs::TraceRing::bind_current(nullptr);
    for (auto& cp : cells_) {
      Cell* c = cp.get();
      c->executor->post([c] {
        obs::TraceRing::bind_current(c->ring.get());
        obs::set_current_slot(c->mac->slot());
        Status ps = c->agent->poll();
        (void)ps;
        obs::TraceRing::bind_current(nullptr);
      });
    }
    for (auto& cp : cells_) cp->executor->wait_idle();
  }

  slots_run_ += n;
  for (auto& cp : cells_) {
    if (!cp->status.ok()) return cp->status;
  }
  return {};
}

ran::GnbMac& GnbDeployment::mac(uint32_t cell) { return *cells_.at(cell)->mac; }
ric::GnbAgent& GnbDeployment::agent(uint32_t cell) { return *cells_.at(cell)->agent; }
ric::Duplex& GnbDeployment::link(uint32_t cell) { return *cells_.at(cell)->link; }
plugin::PluginManager& GnbDeployment::sched_plugins(uint32_t cell) {
  return *cells_.at(cell)->sched_plugins;
}
CellExecutor& GnbDeployment::executor(uint32_t cell) {
  return *cells_.at(cell)->executor;
}
obs::TraceRing* GnbDeployment::trace_ring(uint32_t cell) {
  return cells_.at(cell)->ring.get();
}

obs::FleetView GnbDeployment::shipped_view() const {
  obs::FleetView view;
  for (const auto& cp : cells_) {
    if (cp->shipped) view.update(cp->last_shipped);
  }
  return view;
}

std::vector<obs::MergedTrack> GnbDeployment::trace_tracks() const {
  std::vector<obs::MergedTrack> tracks;
  tracks.reserve(cells_.size() + 1);
  for (const auto& cp : cells_) {
    tracks.push_back({"cell" + std::to_string(cp->id), cp->id + 1, cp->ring.get()});
  }
  if (ric_ring_ != nullptr) {
    tracks.push_back(
        {"ric", static_cast<uint32_t>(cells_.size()) + 1, ric_ring_.get()});
  }
  return tracks;
}

std::string GnbDeployment::export_merged_trace() const {
  return obs::export_merged_chrome_trace(trace_tracks());
}

std::string GnbDeployment::capture_flight_bundle(std::string_view reason) const {
  obs::FlightRecorder recorder(flight_ctx_, /*trace_window_slots=*/16);
  return recorder.capture(reason, last_health_, *fleet_, trace_tracks(),
                          slots_run_);
}

uint64_t GnbDeployment::trace_hash() const {
  uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](uint64_t v) {
    const unsigned char* p = reinterpret_cast<const unsigned char*>(&v);
    for (size_t b = 0; b < sizeof(v); ++b) {
      h ^= p[b];
      h *= 0x100000001b3ULL;
    }
  };
  for (const auto& cp : cells_) {
    mix(cp->ring != nullptr ? cp->ring->content_hash() : 0);
  }
  mix(ric_ring_ != nullptr ? ric_ring_->content_hash() : 0);
  return h;
}

std::string GnbDeployment::digest() const {
  std::string out = obs::MetricsRegistry::global().to_json();
  char buf[256];
  for (const auto& cp : cells_) {
    std::snprintf(buf, sizeof(buf), "\ncell%u slot=%" PRIu64 " ues=%zu", cp->id,
                  cp->mac->slot(), cp->mac->ue_rntis().size());
    out += buf;
    for (uint32_t sid : cp->mac->slice_ids()) {
      const ran::SliceStats* st = cp->mac->slice_stats(sid);
      std::snprintf(buf, sizeof(buf),
                    " slice%u{sched=%" PRIu64 " faults=%" PRIu64 " sanitized=%" PRIu64
                    " quota=%u}",
                    sid, st->slots_scheduled, st->scheduler_faults,
                    st->sanitized_allocs, st->last_quota);
      out += buf;
    }
    if (cp->agent != nullptr) {
      const ric::AgentStats& as = cp->agent->stats();
      std::snprintf(buf, sizeof(buf),
                    " agent{ind=%" PRIu64 " rx=%" PRIu64 " rej=%" PRIu64
                    " quota=%" PRIu64 " fuel=%" PRIu64 "}",
                    as.indications_sent, as.frames_received, as.frames_rejected,
                    as.quota_updates, as.plugin_fuel_used);
      out += buf;
    }
  }
  if (ric_ != nullptr) {
    const ric::RicStats& rs = ric_->stats();
    std::snprintf(buf, sizeof(buf),
                  "\nric{ind=%" PRIu64 " rej=%" PRIu64 " ctl=%" PRIu64
                  " actions=%" PRIu64 " faults=%" PRIu64 " fuel=%" PRIu64 "}",
                  rs.indications_processed, rs.frames_rejected, rs.control_frames_sent,
                  rs.actions_sent, rs.xapp_faults, rs.xapp_fuel_used);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), "\ntrace=%016" PRIx64 "\n", trace_hash());
  out += buf;
  return out;
}

}  // namespace waran::rt
