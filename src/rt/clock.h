// waran::rt clock — the stack's single time source.
//
// Every layer that used to read std::chrono::steady_clock::now() directly
// (engine deadline polls in the interpreter, obs trace/anomaly timestamps,
// MAC slot-budget accounting, bench timing) now goes through
// rt::Clock::global(). In real mode this is a thin wrapper over
// steady_clock against a process-fixed epoch — behavior is unchanged. In
// virtual mode the clock only moves when the driver advances it, so a whole
// campaign runs as fast as the CPU allows (no pacing, no clock syscalls in
// the hot loop) and two runs with the same seed read identical timestamps,
// making traces and metrics snapshots bit-reproducible.
//
// Threading: now_ns() is two relaxed atomic loads and advance_ns() one
// relaxed fetch_add. A barrier-stepped deployment (rt/deployment.h)
// advances the clock only while its cell workers are parked at the step
// barrier; the barrier's mutex handshake orders the store, so every read
// within one step observes the same virtual instant on every thread.
//
// The CI lint guard (scripts/check_clock_lint.sh) forbids raw
// *_clock::now() reads outside src/rt/ and src/common/ so this abstraction
// cannot silently erode.
#pragma once

#include <atomic>
#include <cstdint>

namespace waran::rt {

class Clock {
 public:
  static Clock& global();

  /// Monotonic nanoseconds since the process epoch (real mode) or the
  /// virtual origin (virtual mode).
  uint64_t now_ns() const {
    if (virtual_.load(std::memory_order_relaxed)) {
      return vnow_.load(std::memory_order_relaxed);
    }
    return real_ns();
  }

  bool is_virtual() const { return virtual_.load(std::memory_order_relaxed); }

  /// Wall-clock nanoseconds regardless of mode — for harnesses that must
  /// measure real elapsed time (e.g. the chaos tool's speedup report) while
  /// the rest of the stack runs on virtual time.
  uint64_t real_ns() const;

  /// Switches to virtual time starting at `start_ns`. Only the driver that
  /// owns the run should flip modes; layers just read.
  void enable_virtual(uint64_t start_ns = 0);
  void disable_virtual();

  /// Virtual mode only: moves time forward. A no-op worth avoiding in real
  /// mode (the value is ignored there).
  void advance_ns(uint64_t ns) { vnow_.fetch_add(ns, std::memory_order_relaxed); }

 private:
  std::atomic<bool> virtual_{false};
  std::atomic<uint64_t> vnow_{0};
};

/// Shorthand for Clock::global().now_ns().
inline uint64_t now_ns() { return Clock::global().now_ns(); }

/// RAII virtual-time scope: enables virtual mode at `start_ns`, restores
/// real mode on exit (unless an enclosing guard already made time virtual).
class VirtualClockGuard {
 public:
  explicit VirtualClockGuard(uint64_t start_ns = 0)
      : was_virtual_(Clock::global().is_virtual()) {
    Clock::global().enable_virtual(start_ns);
  }
  ~VirtualClockGuard() {
    if (!was_virtual_) Clock::global().disable_virtual();
  }
  VirtualClockGuard(const VirtualClockGuard&) = delete;
  VirtualClockGuard& operator=(const VirtualClockGuard&) = delete;

 private:
  bool was_virtual_;
};

}  // namespace waran::rt
