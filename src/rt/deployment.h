// waran::rt multi-cell gNB deployment — the runtime layer's top: one gNB
// hosting N cells, each cell a shard bundling its own GnbMac (with Wasm
// MVNO schedulers behind a per-cell PluginManager), its own E2 Duplex link
// and GnbAgent, and its own trace ring, all reporting to a single shared
// NearRtRic. Each shard's execution is pinned to one CellExecutor worker
// thread; shared state is limited to thread-safe paths (MetricsRegistry and
// AnomalyJournal atomics/mutex, Duplex's internal lock, the RIC driven only
// by the coordinator thread).
//
// Two execution modes:
//
//   run_slots(n)          barrier-stepped: all cells execute slot k
//                         concurrently, park at the executors' idle
//                         barrier, then the coordinator polls the RIC and
//                         advances the virtual clock. With virtual_time
//                         this is fully deterministic — same config + seed
//                         => bit-identical metrics snapshot, trace hashes
//                         and journal, threaded or not (see digest()).
//
//   run_slots_unsynced(n) free-running: each cell runs its n slots
//                         back-to-back with no per-slot barrier — the
//                         scaling configuration bench/abl_rt.cpp measures.
//
// Construction never throws: wiring failures land in status() and the
// deployment refuses to run.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/analysis.h"
#include "common/result.h"
#include "obs/fleet.h"
#include "obs/flight.h"
#include "obs/slo.h"
#include "ran/mac.h"
#include "ran/scheduler_iface.h"
#include "rt/clock.h"
#include "rt/executor.h"

namespace waran::obs {
class TraceRing;
}
namespace waran::plugin {
class PluginManager;
}
namespace waran::ric {
class Duplex;
class GnbAgent;
class NearRtRic;
class QuotaTableInterScheduler;
}  // namespace waran::ric

namespace waran::rt {

/// One MVNO slice replicated into every cell of the deployment.
struct SliceSpec {
  uint32_t slice_id = 0;
  std::string name;    ///< slice name and scheduler plugin slot
  std::string policy;  ///< intra-slice scheduler kind: "rr", "pf" or "mt"
  double target_rate_bps = 0.0;
  uint32_t quota_prbs = 12;  ///< initial PRB quota (RIC adjusts later)
  uint32_t ues = 2;
};

/// The paper's three-MVNO slicing scenario (§5B).
std::vector<SliceSpec> default_mvno_slices();

struct DeploymentConfig {
  uint32_t cells = 1;
  uint64_t seed = 1;  ///< derives per-cell channel/error seeds
  /// start() the cell executors (one worker thread per cell). Off = every
  /// task runs inline on the caller's thread in the same order — the
  /// differential baseline the determinism tests compare against.
  bool threaded = true;
  /// Run on rt::Clock virtual time for the deployment's lifetime. The
  /// clock advances by one slot period at each step barrier.
  bool virtual_time = true;
  /// Slots between E2 indications per cell (0 disables the E2 loop
  /// entirely: no agents' comm/ctl plugins, no RIC xApp).
  uint32_t report_period_slots = 10;
  /// Per-cell trace ring capacity (0 leaves per-cell tracing off). When on,
  /// the deployment also owns a coordinator-side "ric" ring of the same
  /// capacity, so RIC dispatch spans land in the merged trace too.
  size_t trace_capacity = 0;
  /// This deployment's gNB id in the fleet hierarchy (one deployment = one
  /// gNB today; federation PRs will differentiate).
  uint32_t gnb_id = 0;
  /// Slots per SLO evaluation window (0 disables the SLO engine). Windows
  /// are evaluated by the coordinator at barrier-stepped run_slots
  /// boundaries only (run_slots_unsynced never evaluates: free-running
  /// cells have no common window edge).
  uint32_t slo_window_slots = 0;
  /// Objectives; empty = obs::default_slos(slot budget).
  std::vector<obs::SloSpec> slos;
  /// Calls before a scheduler function tiers up to the specialized (tier-2)
  /// interpreter backend, against a code cache owned by that cell's
  /// PluginManager (single-writer: the cell executor thread). 0 = stay on
  /// tier-1. Tier-up is call-count driven, so virtual-time runs stay
  /// bit-identical with tiering on.
  uint32_t tier_up_threshold = 0;
  /// Admission-time static analysis for the per-cell scheduler plugins
  /// (analysis/analysis.h): verify translated streams and check each
  /// export's static fuel/frame bounds against the slot budget at
  /// install/swap. kEnforce makes construction fail (status()) on an
  /// over-budget scheduler — one kAdmissionReject anomaly, zero calls.
  analysis::AdmissionMode admission = analysis::AdmissionMode::kOff;
  /// Per-call fuel budget for scheduler plugins; 0 keeps the PluginLimits
  /// default. Admission (when enabled) checks static min-fuel against it.
  uint64_t sched_fuel_per_call = 0;
  /// MAC template; cell, domain and error_seed are overridden per cell.
  ran::MacConfig mac;
  std::vector<SliceSpec> slices = default_mvno_slices();
  /// Optional wrapper applied to every slice's Wasm scheduler — the chaos
  /// harness uses this to splice its fault-injecting decorator into each
  /// cell without the deployment knowing about chaos.
  std::function<std::unique_ptr<ran::IntraSliceScheduler>(
      std::unique_ptr<ran::IntraSliceScheduler>, uint32_t cell, uint32_t slice_id)>
      decorate_scheduler;
};

class GnbDeployment {
 public:
  explicit GnbDeployment(DeploymentConfig config);
  ~GnbDeployment();

  GnbDeployment(const GnbDeployment&) = delete;
  GnbDeployment& operator=(const GnbDeployment&) = delete;

  /// Construction outcome; run_slots refuses to run a failed deployment.
  const Status& status() const { return status_; }

  uint32_t cells() const { return static_cast<uint32_t>(cells_.size()); }
  uint64_t slots_run() const { return slots_run_; }

  /// Barrier-stepped execution (deterministic under virtual time).
  Status run_slots(uint32_t n);
  /// Free-running execution: no per-slot barrier; the E2 loop settles once
  /// at the end. Maximizes parallel slot throughput for the scaling bench.
  Status run_slots_unsynced(uint32_t n);

  // --- Shard access. Between run_slots calls the workers are parked at
  // --- the idle barrier, so the coordinator may touch any shard safely.
  ran::GnbMac& mac(uint32_t cell);
  ric::GnbAgent& agent(uint32_t cell);  ///< E2 loop must be enabled
  ric::Duplex& link(uint32_t cell);
  plugin::PluginManager& sched_plugins(uint32_t cell);
  CellExecutor& executor(uint32_t cell);
  obs::TraceRing* trace_ring(uint32_t cell);  ///< null if trace_capacity == 0
  obs::TraceRing* ric_trace_ring() { return ric_ring_.get(); }
  ric::NearRtRic& ric() { return *ric_; }

  // --- Fleet telemetry plane (obs/fleet.h). The aggregator is always on:
  // --- handles resolve at construction, per-cell collection rides each
  // --- cell's indication (zero-alloc, on the cell's own thread).
  obs::FleetAggregator& fleet() { return *fleet_; }
  const obs::FleetAggregator& fleet() const { return *fleet_; }
  /// Ground truth for the RIC-reconstruction invariant: the exact summary
  /// each cell last shipped in an indication. In a loss-free run the RIC's
  /// fleet_view() equals this bit for bit.
  obs::FleetView shipped_view() const;

  /// Most recent SLO evaluation (default-constructed before the first
  /// window or when slo_window_slots == 0).
  const obs::HealthReport& last_health() const { return last_health_; }
  uint64_t slo_breach_windows() const { return slo_breach_windows_; }
  /// Invoked by the coordinator after every unhealthy window evaluation,
  /// between barriers (all workers parked) — the flight-recorder trigger.
  void set_breach_hook(std::function<void(const obs::HealthReport&)> hook) {
    breach_hook_ = std::move(hook);
  }

  /// Replay coordinates embedded in flight bundles; the constructor fills
  /// seed/cells/virtual_time, callers may override (chaos adds its episode
  /// shape, tools their command line).
  void set_flight_context(obs::FlightContext ctx) { flight_ctx_ = std::move(ctx); }
  const obs::FlightContext& flight_context() const { return flight_ctx_; }
  /// Self-contained post-mortem bundle of the deployment's current state
  /// (obs/flight.h). Pure function of deployment state under virtual time.
  std::string capture_flight_bundle(std::string_view reason) const;

  /// Per-cell process tracks (+ the ric ring) for the merged trace.
  std::vector<obs::MergedTrack> trace_tracks() const;
  /// One Chrome trace over every cell's ring and the ric ring, with
  /// per-cell drop accounting in the metadata (obs/fleet.h).
  std::string export_merged_trace() const;

  /// FNV-1a combination of the per-cell trace-ring hashes and the ric
  /// ring's (0 when tracing is off). Deterministic under virtual time.
  uint64_t trace_hash() const;

  /// Deterministic fingerprint of the run: the global metrics JSON
  /// snapshot plus per-cell MAC/slice/agent state, RIC stats and the trace
  /// hash. Two runs with the same config and seed — threaded or inline —
  /// must produce byte-identical digests under virtual time (callers reset
  /// the global registry/journal before constructing the deployment, since
  /// those accumulate across runs).
  std::string digest() const;

 private:
  struct Cell;

  Status wire_e2_loop();

  DeploymentConfig config_;
  std::optional<VirtualClockGuard> vguard_;
  std::vector<std::unique_ptr<Cell>> cells_;
  std::unique_ptr<ric::NearRtRic> ric_;
  std::unique_ptr<obs::TraceRing> ric_ring_;
  std::unique_ptr<obs::FleetAggregator> fleet_;
  std::unique_ptr<obs::SloEngine> slo_;
  obs::HealthReport last_health_;
  std::function<void(const obs::HealthReport&)> breach_hook_;
  obs::FlightContext flight_ctx_;
  uint64_t slo_breach_windows_ = 0;
  uint64_t window_start_slot_ = 0;
  Status status_;
  uint64_t slots_run_ = 0;
};

}  // namespace waran::rt
