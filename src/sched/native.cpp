#include "sched/native.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace waran::sched {

using codec::SchedRequest;
using codec::SchedResponse;

namespace {

/// PRBs needed to drain `buffer_bytes` at `tbs_per_prb` bits/PRB.
uint32_t prbs_to_drain(uint32_t buffer_bytes, uint32_t tbs_per_prb) {
  if (tbs_per_prb == 0) return 0;
  uint64_t bits = static_cast<uint64_t>(buffer_bytes) * 8;
  return static_cast<uint32_t>((bits + tbs_per_prb - 1) / tbs_per_prb);
}

/// Greedy buffer-drain: repeatedly grant the not-yet-served UE with the
/// highest metric as many PRBs as it needs, until the quota runs out.
/// Ties break toward the lower request index (deterministic; the W plugin
/// implementations replicate this exactly).
template <typename MetricFn>
SchedResponse greedy_drain(const SchedRequest& req, MetricFn metric) {
  SchedResponse resp;
  std::vector<bool> served(req.ues.size(), false);
  uint32_t remaining = req.prb_quota;
  while (remaining > 0) {
    double best = -1.0;
    size_t best_i = req.ues.size();
    for (size_t i = 0; i < req.ues.size(); ++i) {
      if (served[i]) continue;
      const codec::UeInfo& ue = req.ues[i];
      if (ue.buffer_bytes == 0 || ue.tbs_per_prb == 0) continue;
      double m = metric(ue);
      if (m > best) {
        best = m;
        best_i = i;
      }
    }
    if (best_i == req.ues.size()) break;
    served[best_i] = true;
    const codec::UeInfo& ue = req.ues[best_i];
    uint32_t grant = std::min(remaining, prbs_to_drain(ue.buffer_bytes, ue.tbs_per_prb));
    if (grant > 0) {
      resp.allocs.push_back({ue.rnti, grant});
      remaining -= grant;
    }
  }
  return resp;
}

}  // namespace

Result<SchedResponse> RrScheduler::schedule(const SchedRequest& req) {
  SchedResponse resp;
  uint32_t n = static_cast<uint32_t>(req.ues.size());
  if (n == 0 || req.prb_quota == 0) return resp;
  uint32_t share = req.prb_quota / n;
  uint32_t extra = req.prb_quota % n;
  uint32_t start = req.slot % n;
  for (uint32_t i = 0; i < n; ++i) {
    const codec::UeInfo& ue = req.ues[(start + i) % n];
    uint32_t prbs = share + (i < extra ? 1 : 0);
    if (prbs > 0) resp.allocs.push_back({ue.rnti, prbs});
  }
  return resp;
}

Result<SchedResponse> MtScheduler::schedule(const SchedRequest& req) {
  return greedy_drain(req, [](const codec::UeInfo& ue) {
    return static_cast<double>(ue.tbs_per_prb);
  });
}

Result<SchedResponse> PfScheduler::schedule(const SchedRequest& req) {
  return greedy_drain(req, [](const codec::UeInfo& ue) {
    // Floor on the average avoids divide-by-zero for newly attached UEs and
    // bounds the cold-start boost.
    double denom = std::max(ue.avg_tput_bps, 1000.0);
    return ue.achievable_bps / denom;
  });
}

Result<SchedResponse> DrrScheduler::schedule(const SchedRequest& req) {
  SchedResponse resp;
  // Active UEs this slot (backlogged, usable channel).
  std::vector<size_t> active;
  for (size_t i = 0; i < req.ues.size(); ++i) {
    if (req.ues[i].buffer_bytes > 0 && req.ues[i].tbs_per_prb > 0) active.push_back(i);
  }
  if (active.empty() || req.prb_quota == 0) return resp;

  // Credit accrual: quota / n_active PRBs per active UE, capped at 4x quota.
  // The arithmetic order below is mirrored exactly by the W plugin.
  double quantum = static_cast<double>(req.prb_quota) / static_cast<double>(active.size());
  double cap = 4.0 * static_cast<double>(req.prb_quota);
  for (size_t i : active) {
    uint32_t rnti = req.ues[i].rnti;
    Entry* entry = nullptr;
    for (Entry& e : table_) {
      if (e.rnti == rnti) {
        entry = &e;
        break;
      }
    }
    if (entry == nullptr) {
      if (table_.size() < kMaxTable) {
        table_.push_back({rnti, 0.0});
        entry = &table_.back();
      } else {
        // Evict the entry with the smallest deficit (first on ties).
        size_t victim = 0;
        for (size_t k = 1; k < table_.size(); ++k) {
          if (table_[k].deficit < table_[victim].deficit) victim = k;
        }
        table_[victim] = {rnti, 0.0};
        entry = &table_[victim];
      }
    }
    entry->deficit = entry->deficit + quantum;
    if (entry->deficit > cap) entry->deficit = cap;
  }

  // Serve in order of accumulated credit (max first; ties -> earlier
  // request index). Grants are bounded by credit, need, and the quota.
  std::vector<bool> served(req.ues.size(), false);
  uint32_t remaining = req.prb_quota;
  while (remaining > 0) {
    double best = -1.0;
    size_t best_i = req.ues.size();
    for (size_t i : active) {
      if (served[i]) continue;
      double d = deficit(req.ues[i].rnti);
      if (d > best) {
        best = d;
        best_i = i;
      }
    }
    if (best_i == req.ues.size()) break;
    served[best_i] = true;
    const codec::UeInfo& ue = req.ues[best_i];
    uint32_t credit_prbs = static_cast<uint32_t>(best);  // trunc, matches i32()
    uint32_t grant = std::min({remaining, credit_prbs,
                               prbs_to_drain(ue.buffer_bytes, ue.tbs_per_prb)});
    if (grant > 0) {
      resp.allocs.push_back({ue.rnti, grant});
      remaining -= grant;
      for (Entry& e : table_) {
        if (e.rnti == ue.rnti) {
          e.deficit = e.deficit - static_cast<double>(grant);
          break;
        }
      }
    }
  }
  return resp;
}

double DrrScheduler::deficit(uint32_t rnti) const {
  for (const Entry& e : table_) {
    if (e.rnti == rnti) return e.deficit;
  }
  return 0.0;
}

std::vector<uint32_t> WeightedShareInterScheduler::allocate(
    uint32_t n_prbs, const std::vector<ran::SliceDemand>& demands) {
  std::vector<uint32_t> quotas(demands.size(), 0);
  double weight_sum = 0;
  for (const ran::SliceDemand& d : demands) {
    if (d.active_ues > 0) weight_sum += d.config->weight;
  }
  if (weight_sum <= 0) return quotas;
  uint32_t assigned = 0;
  for (size_t i = 0; i < demands.size(); ++i) {
    if (demands[i].active_ues == 0) continue;
    quotas[i] = static_cast<uint32_t>(n_prbs * demands[i].config->weight / weight_sum);
    assigned += quotas[i];
  }
  // Distribute rounding leftovers to demanding slices in index order.
  for (size_t i = 0; assigned < n_prbs && i < demands.size(); ++i) {
    if (demands[i].active_ues == 0) continue;
    ++quotas[i];
    ++assigned;
  }
  return quotas;
}

std::vector<uint32_t> TargetRateInterScheduler::allocate(
    uint32_t n_prbs, const std::vector<ran::SliceDemand>& demands) {
  std::vector<double> needed(demands.size(), 0.0);
  double total_needed = 0;
  for (size_t i = 0; i < demands.size(); ++i) {
    const ran::SliceDemand& d = demands[i];
    if (d.active_ues == 0 || d.est_bits_per_prb <= 0 || d.config->target_rate_bps <= 0) {
      continue;
    }
    SliceState& st = state_[d.config->slice_id];
    // Integral feedback on the measured trailing-second rate, with a small
    // deadband so PRB dithering doesn't chase noise.
    if (d.current_rate_bps > d.config->target_rate_bps * 1.02) {
      st.correction_prbs -= gain_;
    } else if (d.current_rate_bps > 0 &&
               d.current_rate_bps < d.config->target_rate_bps * 0.98) {
      st.correction_prbs += gain_;
    }
    st.correction_prbs = std::clamp(st.correction_prbs, -static_cast<double>(n_prbs),
                                    static_cast<double>(n_prbs));

    double base = d.config->target_rate_bps / (d.est_bits_per_prb * slots_per_s_);
    needed[i] = std::clamp(base + st.correction_prbs, 0.0, 16.0 * n_prbs);
    total_needed += needed[i];
  }
  // Oversubscribed: scale every need down proportionally.
  double scale = total_needed > n_prbs ? n_prbs / total_needed : 1.0;

  std::vector<uint32_t> quotas(demands.size(), 0);
  uint32_t assigned = 0;
  for (size_t i = 0; i < demands.size(); ++i) {
    if (needed[i] <= 0) continue;
    // Fractional provisioning: carry the remainder across slots so the
    // long-run average equals the (scaled) need exactly.
    SliceState& st = state_[demands[i].config->slice_id];
    st.credit += needed[i] * scale;
    uint32_t q = static_cast<uint32_t>(st.credit);
    q = std::min(q, n_prbs - assigned);
    st.credit -= q;
    quotas[i] = q;
    assigned += q;
  }
  return quotas;
}

std::vector<uint32_t> PriorityInterScheduler::allocate(
    uint32_t n_prbs, const std::vector<ran::SliceDemand>& demands) {
  std::vector<uint32_t> quotas(demands.size(), 0);
  std::vector<size_t> order(demands.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return demands[a].config->weight > demands[b].config->weight;
  });
  uint32_t remaining = n_prbs;
  for (size_t i : order) {
    if (remaining == 0) break;
    const ran::SliceDemand& d = demands[i];
    if (d.active_ues == 0 || d.est_bits_per_prb <= 0) continue;
    uint64_t bits = static_cast<uint64_t>(d.backlog_bytes) * 8;
    uint32_t want = static_cast<uint32_t>(
        std::ceil(static_cast<double>(bits) / d.est_bits_per_prb));
    quotas[i] = std::min(remaining, want);
    remaining -= quotas[i];
  }
  return quotas;
}

std::unique_ptr<ran::IntraSliceScheduler> make_native_scheduler(const std::string& name) {
  if (name == "rr") return std::make_unique<RrScheduler>();
  if (name == "pf") return std::make_unique<PfScheduler>();
  if (name == "mt") return std::make_unique<MtScheduler>();
  if (name == "drr") return std::make_unique<DrrScheduler>();
  return nullptr;
}

}  // namespace waran::sched
