// Native (host-compiled) scheduler implementations.
//
// Intra-slice: the paper's three MVNO policies — Round Robin, Proportional
// Fair, and Maximum Throughput (§4A). These serve both as the baselines the
// Wasm plugins are compared against (bench/abl_native_vs_wasm) and as the
// reference semantics the plugin versions must match bit-for-bit
// (tests/sched_test.cpp cross-checks them on identical inputs).
//
// Inter-slice: the three strategies the paper names in §4A — "fixed
// resource percentages, prioritizing latency-sensitive information, or
// targeting specific bit rates".
#pragma once

#include <map>
#include <memory>

#include "ran/scheduler_iface.h"

namespace waran::sched {

// --- Intra-slice ------------------------------------------------------------

/// Equal PRB shares, rotating the remainder by slot index.
class RrScheduler final : public ran::IntraSliceScheduler {
 public:
  Result<codec::SchedResponse> schedule(const codec::SchedRequest& req) override;
  const char* name() const override { return "rr"; }
};

/// Greedy buffer-drain in order of achievable rate (channel quality).
class MtScheduler final : public ran::IntraSliceScheduler {
 public:
  Result<codec::SchedResponse> schedule(const codec::SchedRequest& req) override;
  const char* name() const override { return "mt"; }
};

/// Greedy buffer-drain in order of the PF metric achievable / avg_tput.
class PfScheduler final : public ran::IntraSliceScheduler {
 public:
  Result<codec::SchedResponse> schedule(const codec::SchedRequest& req) override;
  const char* name() const override { return "pf"; }
};

/// Deficit Round Robin — the stateful fourth policy (not in the paper):
/// every active UE accrues quota/n_active PRBs of credit per slot; grants
/// are bounded by accumulated credit, so a UE that was needed-limited or
/// momentarily absent keeps its share as burst credit (capped at 4x the
/// quota). State (rnti -> deficit) persists across slots — in the Wasm
/// version it lives in the plugin's own linear memory, demonstrating that
/// WA-RAN plugins can be stateful controllers, not just pure functions.
class DrrScheduler final : public ran::IntraSliceScheduler {
 public:
  static constexpr uint32_t kMaxTable = 64;

  Result<codec::SchedResponse> schedule(const codec::SchedRequest& req) override;
  const char* name() const override { return "drr"; }

  double deficit(uint32_t rnti) const;

 private:
  struct Entry {
    uint32_t rnti;
    double deficit;
  };
  std::vector<Entry> table_;
};

// --- Inter-slice ------------------------------------------------------------

/// Weight-proportional split among slices with demand; leftover PRBs from
/// idle slices are redistributed.
class WeightedShareInterScheduler final : public ran::InterSliceScheduler {
 public:
  std::vector<uint32_t> allocate(uint32_t n_prbs,
                                 const std::vector<ran::SliceDemand>& demands) override;
  const char* name() const override { return "weighted-share"; }
};

/// Provisions each slice just enough PRBs to sustain its target rate
/// (rate capping, the Fig. 5a setup); excess capacity stays unused.
///
/// Two mechanisms make the delivered rate track the target despite integer
/// PRB granularity and policy-dependent spectral efficiency (an MT slice
/// spends its quota on its best UE, so the static mean-MCS estimate
/// under-counts):
///   - fractional provisioning: the per-slot PRB need is a float; a credit
///     accumulator dithers between floor/ceil so the average is exact;
///   - measured-rate feedback: a slow integral term nudges the need until
///     the slice's trailing-second rate matches the target.
/// When targets oversubscribe the carrier, needs scale proportionally.
class TargetRateInterScheduler final : public ran::InterSliceScheduler {
 public:
  explicit TargetRateInterScheduler(double slots_per_second = 1000.0,
                                    double feedback_gain = 0.002)
      : slots_per_s_(slots_per_second), gain_(feedback_gain) {}
  std::vector<uint32_t> allocate(uint32_t n_prbs,
                                 const std::vector<ran::SliceDemand>& demands) override;
  const char* name() const override { return "target-rate"; }

 private:
  struct SliceState {
    double correction_prbs = 0;  // integral feedback term
    double credit = 0;           // fractional-PRB dither accumulator
  };
  double slots_per_s_;
  double gain_;  // PRBs of correction per slot of 5%+ error
  std::map<uint32_t, SliceState> state_;
};

/// Strict priority by slice weight (higher weight first); each slice takes
/// what its backlog needs before lower priorities see anything.
class PriorityInterScheduler final : public ran::InterSliceScheduler {
 public:
  std::vector<uint32_t> allocate(uint32_t n_prbs,
                                 const std::vector<ran::SliceDemand>& demands) override;
  const char* name() const override { return "priority"; }
};

/// Factory for the intra-slice baselines by name ("rr", "pf", "mt", "drr").
std::unique_ptr<ran::IntraSliceScheduler> make_native_scheduler(const std::string& name);

}  // namespace waran::sched
