// WA-RAN plugin corpus: the W sources of the MVNO intra-slice schedulers
// (RR / PF / MT, mirroring the native baselines instruction-for-instruction
// in their decision logic) plus the §5D fault-injection plugins.
//
// Each function returns compiled wasm bytes ready for PluginManager.
#pragma once

#include <string>
#include <vector>

#include "common/result.h"

namespace waran::sched::plugins {

/// Compiles the scheduler plugin of the given kind: "rr", "pf" or "mt".
/// The module exports `schedule` (and shares the `run` alias used by
/// generic plugin tooling).
Result<std::vector<uint8_t>> scheduler(const std::string& kind);

/// The W source text (for documentation, tooling demos and tests).
std::string scheduler_source(const std::string& kind);

/// Fault-injection plugins for the memory-safety evaluation (§5D):
///   "oob"        — out-of-bounds linear-memory read
///   "null"       — wild-pointer dereference (huge address, the wasm image
///                  of a C null/garbage pointer access)
///   "loop"       — infinite loop (caught by fuel metering)
///   "doublefree" — double free detected by the plugin's own allocator,
///                  trapping inside the sandbox
///   "leak"       — allocates on every call and never frees (Fig. 5c)
///   "badalloc"   — well-formed response referencing foreign RNTIs and
///                  oversized grants (host sanitization path)
///   "shortoutput"— truncated response payload (host decode-failure path)
Result<std::vector<uint8_t>> faulty(const std::string& kind);

}  // namespace waran::sched::plugins
