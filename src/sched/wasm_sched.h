// The WA-RAN bridge: an IntraSliceScheduler whose decisions come from a
// Wasm plugin slot. Each schedule() call serializes the request with the
// configured codec, crosses the sandbox boundary through the plugin ABI,
// and decodes the plugin's response — the exact data path the paper's
// Fig. 5d execution-time measurement covers ("includes the overhead of
// data serialization and de-serialization on the gNB host").
#pragma once

#include <memory>
#include <string>

#include "codec/codec.h"
#include "plugin/manager.h"
#include "ran/scheduler_iface.h"

namespace waran::sched {

class WasmIntraScheduler final : public ran::IntraSliceScheduler {
 public:
  /// `manager` must outlive this scheduler. `slot` names the plugin slot
  /// (swappable at runtime via the manager without touching the MAC).
  WasmIntraScheduler(plugin::PluginManager& manager, std::string slot,
                     codec::CodecKind codec_kind = codec::CodecKind::kWire,
                     std::string entrypoint = "schedule")
      : manager_(manager),
        slot_(std::move(slot)),
        entry_(std::move(entrypoint)),
        codec_(codec::make_codec(codec_kind)),
        name_("wasm:" + slot_) {}

  Result<codec::SchedResponse> schedule(const codec::SchedRequest& req) override;

  const char* name() const override { return name_.c_str(); }
  const std::string& slot() const { return slot_; }

  /// Call-cost distribution of this scheduler's plugin slot (fuel,
  /// instructions, exact p50/p99 wall time, peak interpreter stack depth),
  /// accumulated by the manager from the engine's CallStats. This is the
  /// number Fig. 5d reports: sandbox crossing plus codec work per decision.
  const CallCostAcc* cost() const { return manager_.cost(slot_); }

 private:
  plugin::PluginManager& manager_;
  std::string slot_;
  std::string entry_;
  std::unique_ptr<codec::Codec> codec_;
  std::string name_;
};

}  // namespace waran::sched
