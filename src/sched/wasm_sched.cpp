#include "sched/wasm_sched.h"

namespace waran::sched {

Result<codec::SchedResponse> WasmIntraScheduler::schedule(
    const codec::SchedRequest& req) {
  std::vector<uint8_t> input = codec_->encode_request(req);
  WARAN_TRY(output, manager_.call(slot_, entry_, input));
  return codec_->decode_response(output);
}

}  // namespace waran::sched
