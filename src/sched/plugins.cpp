#include "sched/plugins.h"

#include "wcc/compiler.h"

namespace waran::sched::plugins {
namespace {

// Memory map shared by the scheduler plugins (addresses inside the plugin's
// own linear memory — the host never sees them):
//   0       decoded request (wire format, see codec/wire.h)
//   100000  per-UE "served" flags for the greedy-drain loop
//   200000  response under construction
// The wire layout constants (header 12, UE stride 40, field offsets) must
// match codec::wire.

constexpr char kRrSource[] = R"W(
// Round-robin intra-slice scheduler: equal shares, remainder rotated by
// slot index so leftovers spread evenly over time.
export fn schedule() -> i32 {
  var nb: i32 = input_len();
  input_read(0, 0, nb);
  var slot: i32 = load32(0);
  var quota: i32 = load32(4);
  var n: i32 = load32(8);
  var out: i32 = 200000;
  var count: i32 = 0;
  if (n > 0 && quota > 0) {
    var share: i32 = quota / n;
    var extra: i32 = quota % n;
    var start: i32 = slot % n;
    var i: i32 = 0;
    while (i < n) {
      var idx: i32 = (start + i) % n;
      var rec: i32 = 12 + idx * 40;
      var prbs: i32 = share;
      if (i < extra) { prbs = prbs + 1; }
      if (prbs > 0) {
        store32(out + 4 + count * 8, load32(rec));
        store32(out + 4 + count * 8 + 4, prbs);
        count = count + 1;
      }
      i = i + 1;
    }
  }
  store32(out, count);
  output_write(out, 4 + count * 8);
  return 0;
}
)W";


// Deficit Round Robin — stateful across calls: the rnti -> deficit table
// lives at 240000 in this plugin's own linear memory and persists between
// scheduler invocations for the life of the instance. Mirrors
// sched::DrrScheduler's arithmetic operation-for-operation.
constexpr char kDrrSource[] = R"W(
fn prbs_to_drain(buffer: i32, tbs: i32) -> i32 {
  return i32((i64(buffer) * i64(8) + i64(tbs) - i64(1)) / i64(tbs));
}

// Deficit table: u32 count @240000; entries @240004, stride 16:
// { u32 rnti, u32 pad, f64 deficit }, capacity 64.
fn tab_count() -> i32 { return load32(240000); }
fn tab_rnti(k: i32) -> i32 { return load32(240004 + k * 16); }
fn tab_deficit(k: i32) -> f64 { return loadf64(240004 + k * 16 + 8); }
fn tab_set_deficit(k: i32, d: f64) { storef64(240004 + k * 16 + 8, d); }

fn tab_find(rnti: i32) -> i32 {
  var k: i32 = 0;
  while (k < tab_count()) {
    if (tab_rnti(k) == rnti) { return k; }
    k = k + 1;
  }
  return -1;
}

fn tab_find_or_add(rnti: i32) -> i32 {
  var k: i32 = tab_find(rnti);
  if (k >= 0) { return k; }
  var n: i32 = tab_count();
  if (n < 64) {
    store32(240000, n + 1);
    store32(240004 + n * 16, rnti);
    storef64(240004 + n * 16 + 8, 0.0);
    return n;
  }
  // Table full: evict the smallest deficit (first on ties).
  var victim: i32 = 0;
  k = 1;
  while (k < n) {
    if (tab_deficit(k) < tab_deficit(victim)) { victim = k; }
    k = k + 1;
  }
  store32(240004 + victim * 16, rnti);
  storef64(240004 + victim * 16 + 8, 0.0);
  return victim;
}

export fn schedule() -> i32 {
  var nb: i32 = input_len();
  input_read(0, 0, nb);
  var quota: i32 = load32(4);
  var n: i32 = load32(8);
  var out: i32 = 200000;
  var flags: i32 = 100000;   // 0 inactive, 1 active, 2 served

  var n_active: i32 = 0;
  var i: i32 = 0;
  while (i < n) {
    var rec: i32 = 12 + i * 40;
    if (load32(rec + 12) > 0 && load32(rec + 16) > 0) {
      store8(flags + i, 1);
      n_active = n_active + 1;
    } else {
      store8(flags + i, 0);
    }
    i = i + 1;
  }

  var count: i32 = 0;
  if (n_active > 0 && quota > 0) {
    // Credit accrual, capped at 4x the quota.
    var quantum: f64 = f64(quota) / f64(n_active);
    var cap: f64 = 4.0 * f64(quota);
    i = 0;
    while (i < n) {
      if (load8u(flags + i) == 1) {
        var k: i32 = tab_find_or_add(load32(12 + i * 40));
        var d: f64 = tab_deficit(k) + quantum;
        if (d > cap) { d = cap; }
        tab_set_deficit(k, d);
      }
      i = i + 1;
    }
    // Serve by accumulated credit, max first.
    var remaining: i32 = quota;
    while (remaining > 0) {
      var best: f64 = -1.0;
      var best_i: i32 = -1;
      i = 0;
      while (i < n) {
        if (load8u(flags + i) == 1) {
          var kk: i32 = tab_find(load32(12 + i * 40));
          var dd: f64 = 0.0;
          if (kk >= 0) { dd = tab_deficit(kk); }
          if (dd > best) { best = dd; best_i = i; }
        }
        i = i + 1;
      }
      if (best_i < 0) { break; }
      store8(flags + best_i, 2);
      var rec2: i32 = 12 + best_i * 40;
      var grant: i32 = i32(best);
      var need: i32 = prbs_to_drain(load32(rec2 + 12), load32(rec2 + 16));
      if (need < grant) { grant = need; }
      if (remaining < grant) { grant = remaining; }
      if (grant > 0) {
        store32(out + 4 + count * 8, load32(rec2));
        store32(out + 4 + count * 8 + 4, grant);
        count = count + 1;
        remaining = remaining - grant;
        var k2: i32 = tab_find(load32(rec2));
        tab_set_deficit(k2, tab_deficit(k2) - f64(grant));
      }
    }
  }
  store32(out, count);
  output_write(out, 4 + count * 8);
  return 0;
}
)W";

// Greedy buffer-drain skeleton: the `metric` function is the only
// difference between MT and PF (exactly like the native greedy_drain
// template).
constexpr char kDrainSkeleton[] = R"W(
// PRBs needed to drain `buffer` bytes at `tbs` bits per PRB (ceil division
// in 64-bit to avoid overflow on full RLC queues).
fn prbs_to_drain(buffer: i32, tbs: i32) -> i32 {
  return i32((i64(buffer) * i64(8) + i64(tbs) - i64(1)) / i64(tbs));
}

export fn schedule() -> i32 {
  var nb: i32 = input_len();
  input_read(0, 0, nb);
  var quota: i32 = load32(4);
  var n: i32 = load32(8);
  var out: i32 = 200000;
  var flags: i32 = 100000;
  var i: i32 = 0;
  while (i < n) { store8(flags + i, 0); i = i + 1; }

  var count: i32 = 0;
  var remaining: i32 = quota;
  while (remaining > 0) {
    var best: f64 = -1.0;
    var best_i: i32 = -1;
    i = 0;
    while (i < n) {
      if (load8u(flags + i) == 0) {
        var rec: i32 = 12 + i * 40;
        if (load32(rec + 12) > 0 && load32(rec + 16) > 0) {
          var m: f64 = metric(rec);
          if (m > best) { best = m; best_i = i; }
        }
      }
      i = i + 1;
    }
    if (best_i < 0) { break; }
    store8(flags + best_i, 1);
    var rec2: i32 = 12 + best_i * 40;
    var grant: i32 = prbs_to_drain(load32(rec2 + 12), load32(rec2 + 16));
    if (grant > remaining) { grant = remaining; }
    if (grant > 0) {
      store32(out + 4 + count * 8, load32(rec2));
      store32(out + 4 + count * 8 + 4, grant);
      count = count + 1;
      remaining = remaining - grant;
    }
  }
  store32(out, count);
  output_write(out, 4 + count * 8);
  return 0;
}
)W";

constexpr char kMtMetric[] = R"W(
// Maximum Throughput: schedule the best channel first.
fn metric(rec: i32) -> f64 {
  return f64(load32(rec + 16));   // tbs_per_prb
}
)W";

constexpr char kPfMetric[] = R"W(
// Proportional Fair: achievable rate over long-term average.
fn metric(rec: i32) -> f64 {
  var denom: f64 = loadf64(rec + 24);   // avg_tput_bps
  if (denom < 1000.0) { denom = 1000.0; }
  return loadf64(rec + 32) / denom;     // achievable_bps / avg
}
)W";

// --- §5D fault corpus. ---

constexpr char kOobSource[] = R"W(
// Reads far past the end of linear memory: the classic buffer overrun.
export fn schedule() -> i32 {
  return load32(999999999);
}
)W";

constexpr char kNullSource[] = R"W(
// Wild-pointer dereference: in wasm, a garbage C pointer becomes a huge
// linear-memory offset, caught by the bounds check.
export fn schedule() -> i32 {
  var p: i32 = -4;            // 0xFFFFFFFC as an unsigned address
  store32(p, 42);
  return 0;
}
)W";

constexpr char kLoopSource[] = R"W(
// Never terminates; the fuel meter converts this into a deadline fault.
export fn schedule() -> i32 {
  var x: i32 = 0;
  while (1) { x = x + 1; }
  return x;
}
)W";

constexpr char kDoubleFreeSource[] = R"W(
// Minimal allocator with free-state tracking: freeing twice is detected
// inside the sandbox and converted to a trap — the host survives.
global next: i32 = 4096;

fn alloc(size: i32) -> i32 {
  var p: i32 = next;
  next = next + size + 4;
  store32(p, 1);              // live flag
  return p + 4;
}

fn free_block(p: i32) {
  var h: i32 = p - 4;
  if (load32(h) == 0) { trap(); }   // double free
  store32(h, 0);
}

export fn schedule() -> i32 {
  var p: i32 = alloc(64);
  free_block(p);
  free_block(p);              // bug under test
  return 0;
}
)W";

constexpr char kLeakSource[] = R"W(
// Allocates on every call without freeing (the Fig. 5c leak): the bump
// pointer only ever advances, growing the sandbox memory until its cap.
global brk: i32 = 65536;

export fn schedule() -> i32 {
  var size: i32 = 65536;      // leak 64 KiB per scheduler invocation
  var limit: i32 = memory_size() * 65536;
  if (brk + size > limit) {
    memory_grow(1);
  }
  // Touch the page so the allocation is real.
  if (brk + size <= memory_size() * 65536) {
    store32(brk, 12345);
    brk = brk + size;
  }
  var out: i32 = 32;
  store32(out, 0);
  output_write(out, 4);
  return 0;
}
)W";

constexpr char kBadAllocSource[] = R"W(
// Malicious-but-well-formed response: grants to an RNTI outside the slice
// and a grant far beyond the quota. Exercises host-side sanitization.
export fn schedule() -> i32 {
  var out: i32 = 200000;
  store32(out, 2);
  store32(out + 4, 399999999);   // foreign RNTI
  store32(out + 8, 52);
  var nb: i32 = input_len();
  input_read(0, 0, nb);
  var n: i32 = load32(8);
  if (n > 0) {
    store32(out + 12, load32(12));  // first UE's rnti...
    store32(out + 16, 1000000);     // ...with an absurd grant
  } else {
    store32(out + 12, 7);
    store32(out + 16, 1000000);
  }
  output_write(out, 20);
  return 0;
}
)W";

constexpr char kShortOutputSource[] = R"W(
// Returns a truncated payload the host-side decoder must reject.
export fn schedule() -> i32 {
  store8(0, 9);
  output_write(0, 2);
  return 0;
}
)W";

Result<std::vector<uint8_t>> compile_source(const std::string& src) {
  return wcc::compile(src);
}

}  // namespace

std::string scheduler_source(const std::string& kind) {
  if (kind == "rr") return kRrSource;
  if (kind == "drr") return kDrrSource;
  if (kind == "mt") return std::string(kMtMetric) + kDrainSkeleton;
  if (kind == "pf") return std::string(kPfMetric) + kDrainSkeleton;
  return {};
}

Result<std::vector<uint8_t>> scheduler(const std::string& kind) {
  std::string src = scheduler_source(kind);
  if (src.empty()) {
    return Error::invalid_argument("unknown scheduler plugin kind: " + kind);
  }
  return compile_source(src);
}

Result<std::vector<uint8_t>> faulty(const std::string& kind) {
  const char* src = nullptr;
  if (kind == "oob") src = kOobSource;
  else if (kind == "null") src = kNullSource;
  else if (kind == "loop") src = kLoopSource;
  else if (kind == "doublefree") src = kDoubleFreeSource;
  else if (kind == "leak") src = kLeakSource;
  else if (kind == "badalloc") src = kBadAllocSource;
  else if (kind == "shortoutput") src = kShortOutputSource;
  if (src == nullptr) {
    return Error::invalid_argument("unknown faulty plugin kind: " + kind);
  }
  return compile_source(src);
}

}  // namespace waran::sched::plugins
