#include "chaos/fault_plan.h"

namespace waran::chaos {

namespace {

uint64_t splitmix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kForceTrap: return "force_trap";
    case FaultKind::kFuelStarve: return "fuel_starve";
    case FaultKind::kDeadlineOverrun: return "deadline_overrun";
    case FaultKind::kQuarantineStorm: return "quarantine_storm";
    case FaultKind::kLoadFailure: return "load_failure";
    case FaultKind::kGrowDenial: return "grow_denial";
    case FaultKind::kSchedGarbage: return "sched_garbage";
    case FaultKind::kSchedEmpty: return "sched_empty";
    case FaultKind::kSchedError: return "sched_error";
    case FaultKind::kSlotOverrun: return "slot_overrun";
    case FaultKind::kLinkCorrupt: return "link_corrupt";
    case FaultKind::kLinkDrop: return "link_drop";
    case FaultKind::kLinkDuplicate: return "link_duplicate";
    case FaultKind::kLinkReorder: return "link_reorder";
    case FaultKind::kCount: break;
  }
  return "unknown";
}

FaultPlan::FaultPlan(uint64_t seed, PlanConfig config)
    : seed_(seed),
      config_(config),
      rng_{Xoshiro256(splitmix(seed ^ 0x11)), Xoshiro256(splitmix(seed ^ 0x22)),
           Xoshiro256(splitmix(seed ^ 0x33)), Xoshiro256(splitmix(seed ^ 0x44)),
           Xoshiro256(splitmix(seed ^ 0x55)), Xoshiro256(splitmix(seed ^ 0x66))} {}

void FaultPlan::note(FaultKind kind, std::string site) {
  ++counts_[static_cast<size_t>(kind)];
  log_.push_back(Injection{log_.size(), kind, std::move(site)});
}

void FaultPlan::note_applied(FaultKind kind, const std::string& site) {
  note(kind, site);
}

std::optional<FaultPlan::CallFault> FaultPlan::draw_call(const std::string& domain,
                                                         const std::string& slot,
                                                         bool allow_deadline) {
  if (!active_) return std::nullopt;
  std::string key = domain + "/" + slot;
  SlotState& st = call_state_[key];

  // A storm in flight owns the slot: every crossing faults until the third
  // consecutive fault latches the quarantine.
  if (st.storm_remaining > 0) {
    --st.storm_remaining;
    note(FaultKind::kForceTrap, key);
    if (st.storm_remaining == 0) {
      // The manager quarantines on this very call; the next crossing the
      // interceptor sees comes only after the harness lifts it — keep that
      // one clean so the consecutive-fault count restarts from zero.
      note(FaultKind::kQuarantineStorm, key);
      st.cooldown = true;
    }
    return CallFault{FaultKind::kForceTrap, true};
  }

  // One guaranteed-clean crossing after every injection: non-storm faults
  // can then never stack into the manager's 3-consecutive threshold.
  if (st.cooldown) {
    st.cooldown = false;
    return std::nullopt;
  }

  if (!fires(kSiteCall, config_.call_fault_per_1024)) return std::nullopt;

  if (rng_[kSiteCall].below(1024) < config_.storm_per_1024) {
    st.storm_remaining = 2;  // this crossing + two more = quarantine
    note(FaultKind::kForceTrap, key);
    return CallFault{FaultKind::kForceTrap, true};
  }

  st.cooldown = true;
  uint64_t pick = rng_[kSiteCall].below(allow_deadline ? 3 : 2);
  FaultKind kind = pick == 0   ? FaultKind::kForceTrap
                   : pick == 1 ? FaultKind::kFuelStarve
                               : FaultKind::kDeadlineOverrun;
  note(kind, key);
  return CallFault{kind, false};
}

bool FaultPlan::storm_active(const std::string& domain, const std::string& slot) const {
  auto it = call_state_.find(domain + "/" + slot);
  return it != call_state_.end() && it->second.storm_remaining > 0;
}

std::optional<FaultKind> FaultPlan::draw_sched() {
  if (!active_) return std::nullopt;
  if (!fires(kSiteSched, config_.sched_fault_per_1024)) return std::nullopt;
  switch (rng_[kSiteSched].below(3)) {
    case 0: return FaultKind::kSchedGarbage;
    case 1: return FaultKind::kSchedEmpty;
    default: return FaultKind::kSchedError;
  }
}

bool FaultPlan::draw_slot_overrun(uint64_t slot) {
  if (!active_) return false;
  if (!fires(kSiteSlot, config_.slot_overrun_per_1024)) return false;
  note(FaultKind::kSlotOverrun, "slot " + std::to_string(slot));
  return true;
}

std::optional<FaultPlan::LinkFault> FaultPlan::draw_link() {
  if (!active_) return std::nullopt;
  // Entropy is drawn for every frame so the stream position is a function
  // of frame count alone, not of which faults happened to fire.
  uint64_t entropy = rng_[kSiteLink].next();
  if (rng_[kSiteLink].below(1024) >= config_.link_fault_per_1024) return std::nullopt;
  FaultKind kind;
  switch (rng_[kSiteLink].below(4)) {
    case 0: kind = FaultKind::kLinkCorrupt; break;
    case 1: kind = FaultKind::kLinkDrop; break;
    case 2: kind = FaultKind::kLinkDuplicate; break;
    default: kind = FaultKind::kLinkReorder; break;
  }
  note(kind, "link");
  return LinkFault{kind, entropy};
}

bool FaultPlan::draw_load_failure(const std::string& slot) {
  if (!active_) return false;
  if (!fires(kSiteLoad, config_.load_failure_per_1024)) return false;
  note(FaultKind::kLoadFailure, slot);
  return true;
}

bool FaultPlan::draw_grow_denial() {
  if (!active_) return false;
  if (!fires(kSiteGrow, config_.grow_denial_per_1024)) return false;
  note(FaultKind::kGrowDenial, "grower");
  return true;
}

Xoshiro256 FaultPlan::derive_stream(uint64_t salt) const {
  return Xoshiro256(splitmix(seed_ ^ splitmix(salt)));
}

}  // namespace waran::chaos
