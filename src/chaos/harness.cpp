#include "chaos/harness.h"

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <utility>

#include "common/tracked_alloc.h"
#include "obs/anomaly.h"
#include "obs/metrics.h"
#include "plugin/manager.h"
#include "plugin/plugin.h"
#include "ran/mac.h"
#include "ric/gnb_agent.h"
#include "ric/near_rt_ric.h"
#include "ric/plugin_sources.h"
#include "ric/quota_inter.h"
#include "ric/transport.h"
#include "rt/clock.h"
#include "rt/deployment.h"
#include "sched/plugins.h"
#include "sched/wasm_sched.h"
#include "wcc/compiler.h"

namespace waran::chaos {

namespace {

// The grower exercises the spec-conformant growth-denial path: a denied
// memory.grow answers -1 and the plugin must carry on, reporting the denial
// through its output instead of trapping.
constexpr char kGrowerSource[] = R"W(
export fn tick() -> i32 {
  var got: i32 = memory_grow(1);
  var denied: i32 = 0;
  if (got < 0) {
    denied = 1;
  }
  store32(64, denied);
  output_write(64, 4);
  return 0;
}
)W";

// Pure-arithmetic workload for the warm-call probe: no ABI imports, so a
// direct Instance::call must not touch the host heap once warm.
constexpr char kProbeSource[] = R"W(
export fn work() -> i32 {
  var i: i32 = 0;
  var acc: i32 = 0;
  while (i < 48) {
    acc = acc + i * 3;
    i = i + 1;
  }
  return acc;
}
)W";

/// Decorator around a slice's real (Wasm) scheduler that injects
/// output-level faults on the plan's schedule: forged grants the host must
/// sanitize, empty allocation lists, and outright errors that force the
/// MAC's host-side fallback.
class ChaosIntraScheduler final : public ran::IntraSliceScheduler {
 public:
  ChaosIntraScheduler(std::unique_ptr<ran::IntraSliceScheduler> inner, FaultPlan& plan,
                      uint32_t slice_id, const std::string& site_prefix = "")
      : inner_(std::move(inner)),
        plan_(plan),
        site_(site_prefix + "slice " + std::to_string(slice_id)),
        name_(std::string("chaos:") + inner_->name()) {}

  Result<codec::SchedResponse> schedule(const codec::SchedRequest& req) override {
    std::optional<FaultKind> fault = plan_.draw_sched();
    if (!fault) return inner_->schedule(req);
    switch (*fault) {
      case FaultKind::kSchedEmpty:
        plan_.note_applied(FaultKind::kSchedEmpty, site_);
        return codec::SchedResponse{};
      case FaultKind::kSchedError:
        plan_.note_applied(FaultKind::kSchedError, site_);
        return Error::internal("chaos: injected scheduler error");
      default: {
        // Garbage rides on a successful inner decision; if the sandbox
        // crossing itself faulted (a call-site injection won the race) the
        // garbage is not applied and not counted.
        auto resp = inner_->schedule(req);
        if (!resp.ok()) return resp;
        plan_.note_applied(FaultKind::kSchedGarbage, site_);
        codec::SchedResponse out;
        out.allocs.push_back(codec::SchedAlloc{0x1, 1});  // foreign RNTI
        out.allocs.insert(out.allocs.end(), resp->allocs.begin(), resp->allocs.end());
        return out;
      }
    }
  }

  const char* name() const override { return name_.c_str(); }

 private:
  std::unique_ptr<ran::IntraSliceScheduler> inner_;
  FaultPlan& plan_;
  std::string site_;
  std::string name_;
};

struct Mvno {
  uint32_t slice_id;
  const char* name;
  const char* policy;
  double target_bps;
};

constexpr Mvno kMvnos[] = {
    {1, "iot-co", "rr", 4e6},
    {2, "stream-co", "mt", 14e6},
    {3, "fair-co", "pf", 10e6},
};

/// Call-site interceptor drawing from `plan` for the named domain; shared
/// by the single-cell scenario and the per-cell managers of a multi-cell
/// deployment. Only `eligible` slots are touched.
plugin::PluginManager::CallInterceptor make_call_interceptor(
    FaultPlan& plan, std::string domain, std::set<std::string> eligible,
    bool allow_deadline) {
  return [&plan, domain = std::move(domain), eligible = std::move(eligible),
          allow_deadline](const std::string& slot,
                          const std::string&) -> plugin::PluginManager::CallIntercept {
    plugin::PluginManager::CallIntercept out;
    if (!eligible.contains(slot)) return out;
    auto fault = plan.draw_call(domain, slot, allow_deadline);
    if (!fault) return out;
    switch (fault->kind) {
      case FaultKind::kFuelStarve:
        out.fuel = 1;  // first block charge exhausts: real engine trap
        break;
      case FaultKind::kDeadlineOverrun:
        // 1 ns deadline, with a small fuel backstop in case the call
        // retires fewer instructions than the deadline poll stride — either
        // way the engine reports genuine exhaustion. Under virtual time the
        // deadline never expires (the clock is frozen mid-slot), so the
        // backstop is the mechanism that lands the fault.
        out.deadline_ns = 1;
        out.fuel = 24;
        break;
      default:
        out.fail = Error::trap("chaos: injected trap");
        break;
    }
    return out;
  };
}

/// Duplex fault stage drawing from `plan` (one draw per frame in flight).
ric::Duplex::FaultStage make_link_stage(FaultPlan& plan) {
  return [&plan](std::vector<uint8_t>& frame,
                 ric::Duplex::Side) -> ric::Duplex::Fault {
    auto fault = plan.draw_link();
    if (!fault) return {};
    switch (fault->kind) {
      case FaultKind::kLinkCorrupt: {
        // Flip one payload bit (past the 12-byte magic/len/checksum
        // header) so the sandboxed unframe rejects on checksum — never a
        // wild length that could send the plugin reading out of bounds.
        size_t lo = frame.size() > 12 ? 12 : 0;
        size_t off = lo + fault->entropy % (frame.size() - lo);
        frame[off] ^= static_cast<uint8_t>(1u << ((fault->entropy >> 32) % 8));
        return {ric::Duplex::FaultAction::kCorrupt};
      }
      case FaultKind::kLinkDrop:
        return {ric::Duplex::FaultAction::kDrop};
      case FaultKind::kLinkDuplicate:
        return {ric::Duplex::FaultAction::kDuplicate};
      default:
        return {ric::Duplex::FaultAction::kReorder,
                static_cast<uint32_t>(1 + fault->entropy % 3)};
    }
  };
}

/// The zero-alloc warm-call probe (invariant 5), independent of topology.
void run_warm_probe(EpisodeReport& rep,
                    const std::function<void(bool, std::string)>& expect) {
  auto probe_bytes = wcc::compile(kProbeSource);
  auto probe = probe_bytes.ok() ? plugin::Plugin::load(*probe_bytes)
                                : Result<std::unique_ptr<plugin::Plugin>>(
                                      Error::internal("probe compile failed"));
  expect(probe.ok(), "warm-path probe plugin failed to load");
  if (!probe.ok()) return;
  wasm::CallOptions copts;
  copts.fuel = 100'000;
  wasm::CallStats cstats;
  bool ok = true;
  for (int i = 0; i < 4; ++i) {
    ok = ok && (*probe)->instance().call("work", {}, copts, &cstats).ok();
  }
  const uint64_t before = heap_probe::allocations();
  for (int i = 0; i < 64; ++i) {
    ok = ok && (*probe)->instance().call("work", {}, copts, &cstats).ok();
  }
  rep.warm_heap_allocs = heap_probe::allocations() - before;
  expect(ok, "warm-path probe call failed");
  expect(rep.warm_heap_allocs == 0,
         "warm Instance::call touched the heap " +
             std::to_string(rep.warm_heap_allocs) + " time(s)");
}

EpisodeReport run_multicell_episode(const EpisodeOptions& options);

}  // namespace

EpisodeReport run_episode(const EpisodeOptions& options) {
  if (options.cells > 1) return run_multicell_episode(options);

  EpisodeReport rep;
  rep.seed = options.seed;

  // Virtual time for the whole episode: the stack reads a frozen clock that
  // only the round loop advances, so the episode runs flat out and every
  // timestamp (trace, journal) is a pure function of the seed.
  std::optional<rt::VirtualClockGuard> vclock;
  if (options.virtual_time) vclock.emplace(0);

  auto expect = [&rep](bool ok, std::string what) {
    if (!ok) rep.violations.push_back(std::move(what));
  };
  auto tolerate = [&rep](const Status& st) {
    if (!st.ok()) ++rep.contained_errors;
  };

  auto& journal = obs::AnomalyJournal::global();
  journal.set_capacity(1 << 16);
  journal.clear();
  auto& reg = obs::MetricsRegistry::global();
  reg.reset_values();

  FaultPlan plan(options.seed, options.plan);

  // --- Scenario: 3 MVNO slices, gNB agent <-> RIC over one Duplex --------
  // The slot budget is set to one full second: a real slot takes
  // microseconds even under sanitizers, so every kSlotOverrun anomaly in
  // this episode is an injected one.
  ran::MacConfig cfg;
  cfg.slot_us = 1'000'000;
  ran::GnbMac mac(cfg);
  auto quotas_owned = std::make_unique<ric::QuotaTableInterScheduler>();
  ric::QuotaTableInterScheduler* quotas = quotas_owned.get();
  mac.set_inter_scheduler(std::move(quotas_owned));

  plugin::PluginManager mgr;
  mgr.set_domain("mac");

  for (const Mvno& m : kMvnos) {
    auto bytes = sched::plugins::scheduler(m.policy);
    if (!bytes.ok() || !mgr.install(m.name, *bytes).ok()) {
      expect(false, std::string("failed to onboard scheduler plugin ") + m.name);
      return rep;
    }
    ran::SliceConfig slice;
    slice.slice_id = m.slice_id;
    slice.name = m.name;
    slice.target_rate_bps = m.target_bps;
    mac.add_slice(slice, std::make_unique<ChaosIntraScheduler>(
                             std::make_unique<sched::WasmIntraScheduler>(mgr, m.name),
                             plan, m.slice_id));
    quotas->set_quota(m.slice_id, 12);
    for (int u = 0; u < 2; ++u) {
      ran::Channel::FadingParams fading;
      fading.mean_snr_db = 14.0 + 2.5 * u;
      mac.add_ue(m.slice_id, ran::Channel::fading(fading, m.slice_id * 100 + u),
                 ran::TrafficSource::full_buffer());
    }
  }

  auto grower_bytes = wcc::compile(kGrowerSource);
  if (!grower_bytes.ok() || !mgr.install("grower", *grower_bytes).ok()) {
    expect(false, "failed to install grower plugin");
    return rep;
  }

  ric::Duplex link;
  ric::GnbAgent agent(0, mac, quotas, link, ric::Duplex::Side::kA);
  ric::NearRtRic ric(link, ric::Duplex::Side::kB);
  auto comm = ric::plugin_sources::comm_framing();
  auto ctl = ric::plugin_sources::control_dispatch();
  auto sla = ric::plugin_sources::sla_xapp();
  if (!comm.ok() || !ctl.ok() || !sla.ok() || !agent.load_comm_plugin(*comm).ok() ||
      !agent.load_control_plugin(*ctl).ok() || !ric.load_comm_plugin(*comm).ok() ||
      !ric.add_xapp("sla", *sla).ok()) {
    expect(false, "failed to wire the E2 loop");
    return rep;
  }

  // --- Chaos hooks --------------------------------------------------------
  // Call-site injections are restricted to slots whose failures the host
  // contains without secondary effects: the slice schedulers (MAC falls
  // back to host RR), the control dispatcher (frame is rejected) and the
  // xApp (RIC skips it). The comm slots stay clean — failing them would
  // double-count (a comm trap plus the resulting frame rejection) — and so
  // do grower (its fault site is memory.grow) and the probe.
  mgr.set_call_interceptor(make_call_interceptor(
      plan, "mac", {"iot-co", "stream-co", "fair-co"}, /*allow_deadline=*/true));
  agent.plugins().set_call_interceptor(make_call_interceptor(
      plan, agent.plugins().domain(), {"ctl"}, /*allow_deadline=*/false));
  ric.plugins().set_call_interceptor(
      make_call_interceptor(plan, "ric", {"xapp:sla"}, /*allow_deadline=*/false));

  bool fail_next_load = false;
  mgr.set_load_interceptor([&fail_next_load](const std::string&) -> std::optional<Error> {
    if (!fail_next_load) return std::nullopt;
    fail_next_load = false;
    return Error::validation("chaos: injected load failure");
  });

  const uint64_t budget_ns = static_cast<uint64_t>(cfg.slot_us) * 1000;
  mac.set_slot_time_padding([&plan, &mac, budget_ns]() -> uint64_t {
    return plan.draw_slot_overrun(mac.slot()) ? budget_ns + 1'000'000 : 0;
  });

  link.add_fault_stage(make_link_stage(plan));

  const std::array<plugin::PluginManager*, 3> managers = {&mgr, &agent.plugins(),
                                                          &ric.plugins()};

  // --- Episode loop -------------------------------------------------------
  for (uint32_t round = 0; round < options.rounds; ++round) {
    Status st = mac.run_slots(options.slots_per_round);
    if (!st.ok()) {
      expect(false, "mac.run_slots failed (host misconfiguration): " + st.error().message);
      break;
    }
    rep.slots += options.slots_per_round;

    // Growth-denial site: the grower must survive a denied grow gracefully.
    {
      plugin::Plugin* grower = mgr.plugin("grower");
      wasm::Memory* mem = grower != nullptr ? grower->instance().memory() : nullptr;
      if (mem != nullptr && plan.draw_grow_denial()) mem->set_grow_denial_after(0);
      auto r = mgr.call("grower", "tick", {});
      expect(r.ok(), "grower did not survive a denied memory.grow: " +
                         (r.ok() ? std::string() : r.error().message));
      if (mem != nullptr) mem->set_grow_denial_after(std::nullopt);
    }

    // Hot-swap site, rotating over the scheduler slots. A slot mid-storm
    // is skipped: a successful swap clears the consecutive-fault count and
    // would defuse the storm's deterministic quarantine.
    {
      const Mvno& m = kMvnos[round % 3];
      if (!plan.storm_active("mac", m.name)) {
        bool fail = plan.draw_load_failure(m.name);
        fail_next_load = fail;
        auto bytes = sched::plugins::scheduler(m.policy);
        if (bytes.ok()) {
          Status sw = mgr.swap(m.name, *bytes);
          expect(sw.ok() != fail, fail ? "injected load failure did not fail the swap"
                                       : "clean hot swap failed: " + sw.error().message);
          expect(mgr.plugin(m.name) != nullptr, "swap left the slot without a plugin");
        }
        fail_next_load = false;
      }
    }

    tolerate(agent.send_indication());
    tolerate(ric.poll());
    tolerate(agent.poll());

    // Under virtual time the round's slots all executed at one frozen
    // instant; move the clock to the next report boundary.
    if (options.virtual_time) {
      rt::Clock::global().advance_ns(static_cast<uint64_t>(options.slots_per_round) *
                                     cfg.slot_us * 1000);
    }

    // Lift quarantines (operator intervention) so every round starts with
    // live slots; only latched slots are touched, so in-flight fault
    // sequences keep their consecutive counts.
    for (plugin::PluginManager* m : managers) {
      for (const std::string& s : m->slot_names()) {
        const plugin::SlotHealth* h = m->health(s);
        if (h != nullptr && h->quarantined) (void)m->reset_quarantine(s);
      }
    }
  }

  // --- Drain: stop injecting, land everything in flight -------------------
  plan.set_active(false);
  link.flush_delayed();
  tolerate(ric.poll());
  tolerate(agent.poll());
  mac.set_slot_time_padding(nullptr);

  // --- Warm-call probe ----------------------------------------------------
  if (options.warm_path_probe) run_warm_probe(rep, expect);

  // --- Invariants ---------------------------------------------------------
  auto snapshot = journal.snapshot();
  rep.anomalies = journal.total();
  rep.injections = plan.total();
  for (size_t k = 0; k < kFaultKindCount; ++k) {
    rep.injected_by_kind[k] = plan.count(static_cast<FaultKind>(k));
  }
  rep.injection_log = plan.log();

  expect(snapshot.size() == journal.total(), "anomaly journal overflowed its capacity");

  std::map<obs::AnomalyKind, uint64_t> by_kind;
  uint64_t mac_sanitized = 0;
  for (const auto& r : snapshot) {
    ++by_kind[r.kind];
    if (r.kind == obs::AnomalyKind::kSanitized && r.domain == "mac") ++mac_sanitized;
  }
  auto eq = [&expect](uint64_t got, uint64_t want, const char* what) {
    expect(got == want, std::string(what) + ": got " + std::to_string(got) + ", want " +
                            std::to_string(want));
  };

  // 1:1 fault -> anomaly accounting, kind by kind.
  eq(by_kind[obs::AnomalyKind::kTrap], plan.count(FaultKind::kForceTrap),
     "kTrap anomalies vs injected traps");
  eq(by_kind[obs::AnomalyKind::kFuelExhausted],
     plan.count(FaultKind::kFuelStarve) + plan.count(FaultKind::kDeadlineOverrun),
     "kFuelExhausted anomalies vs injected starvations");
  eq(by_kind[obs::AnomalyKind::kQuarantine], plan.count(FaultKind::kQuarantineStorm),
     "kQuarantine anomalies vs completed storms");
  eq(by_kind[obs::AnomalyKind::kLoadFailed], plan.count(FaultKind::kLoadFailure),
     "kLoadFailed anomalies vs injected load failures");
  eq(by_kind[obs::AnomalyKind::kFrameRejected], plan.count(FaultKind::kLinkCorrupt),
     "kFrameRejected anomalies vs corrupted frames");
  eq(mac_sanitized, plan.count(FaultKind::kSchedGarbage),
     "MAC kSanitized anomalies vs injected garbage responses");
  eq(by_kind[obs::AnomalyKind::kSanitized], mac_sanitized,
     "kSanitized anomalies outside the MAC (xApp output must stay clean)");
  eq(by_kind[obs::AnomalyKind::kSlotOverrun], plan.count(FaultKind::kSlotOverrun),
     "kSlotOverrun anomalies vs injected overruns");
  eq(by_kind[obs::AnomalyKind::kDecline], 0, "unexpected kDecline anomalies");
  eq(by_kind[obs::AnomalyKind::kOther], 0, "unexpected kOther anomalies");
  // The single-cell harness runs no SLO engine; any breach entry is a bug.
  eq(by_kind[obs::AnomalyKind::kSloBreach], 0, "unexpected kSloBreach anomalies");

  // Spec-conformant growth denial: denied exactly as scheduled, no anomaly.
  {
    plugin::Plugin* grower = mgr.plugin("grower");
    wasm::Memory* mem = grower != nullptr ? grower->instance().memory() : nullptr;
    eq(mem != nullptr ? mem->denied_grows() : 0, plan.count(FaultKind::kGrowDenial),
       "denied grows vs scheduled denials");
  }

  // Link conservation: every frame is delivered, dropped, or still held —
  // and after the drain nothing is held or pending.
  eq(link.frames_sent() + link.frames_duplicated(),
     link.frames_delivered() + link.frames_dropped(), "link frame conservation");
  eq(link.delayed_in_flight(), 0, "frames still held for reordering after drain");
  eq(link.pending(ric::Duplex::Side::kA) + link.pending(ric::Duplex::Side::kB), 0,
     "frames still queued after drain");
  eq(link.frames_corrupted(), plan.count(FaultKind::kLinkCorrupt),
     "link corruption counter vs plan");
  eq(link.frames_dropped(), plan.count(FaultKind::kLinkDrop), "link drop counter vs plan");
  eq(link.frames_duplicated(), plan.count(FaultKind::kLinkDuplicate),
     "link duplicate counter vs plan");
  eq(link.frames_reordered(), plan.count(FaultKind::kLinkReorder),
     "link reorder counter vs plan");

  // PRB conservation: grants never exceed carrier capacity.
  {
    uint64_t granted = 0;
    for (const Mvno& m : kMvnos) {
      std::string sid = std::to_string(m.slice_id);
      granted += reg.counter("waran_mac_prb_granted_total",
                             {{"cell", "0"}, {"slice", sid}})
                     .value();
    }
    expect(granted <= static_cast<uint64_t>(cfg.n_prbs) * rep.slots,
           "PRB conservation violated: " + std::to_string(granted) + " granted over " +
               std::to_string(rep.slots) + " slots of " + std::to_string(cfg.n_prbs));
  }
  eq(reg.counter("waran_mac_slots_total").value(), rep.slots, "MAC slot counter");
  eq(reg.counter("waran_mac_slot_overrun_total").value(),
     plan.count(FaultKind::kSlotOverrun), "MAC slot-overrun counter vs plan");

  // Cross-layer accounting balance: SlotHealth, CallCostAcc and the
  // metrics registry must agree call for call, fault for fault.
  uint64_t traps_sum = 0;
  uint64_t fuel_sum = 0;
  for (plugin::PluginManager* m : managers) {
    for (const std::string& s : m->slot_names()) {
      const plugin::SlotHealth* h = m->health(s);
      const CallCostAcc* c = m->cost(s);
      if (h == nullptr || c == nullptr) continue;
      std::string where = m->domain() + "/" + s;
      eq(c->calls(), h->calls, ("cost.calls vs health.calls for " + where).c_str());
      eq(reg.counter("waran_plugin_calls_total", {{"domain", m->domain()}, {"slot", s}})
             .value(),
         h->calls, ("calls_total counter vs health for " + where).c_str());
      eq(reg.counter("waran_plugin_traps_total", {{"domain", m->domain()}, {"slot", s}})
             .value(),
         h->traps, ("traps_total counter vs health for " + where).c_str());
      eq(h->faults, h->traps + h->fuel_exhaustions,
         ("fault breakdown for " + where).c_str());
      traps_sum += h->traps;
      fuel_sum += h->fuel_exhaustions;
    }
  }
  // With only benign plugins in the scenario, every sandbox fault is an
  // injected one.
  eq(traps_sum, plan.count(FaultKind::kForceTrap), "summed slot traps vs injected traps");
  eq(fuel_sum, plan.count(FaultKind::kFuelStarve) + plan.count(FaultKind::kDeadlineOverrun),
     "summed fuel exhaustions vs injected starvations");

  rep.passed = rep.violations.empty();
  return rep;
}

namespace {

// Multi-cell episode: the same invariant suite run against a threaded
// rt::GnbDeployment — N cells on N worker threads, one shared RIC — with
// one independent FaultPlan per cell. Scope is the cell-local fault
// surface (scheduler output/call faults, slot overruns, per-link E2
// faults); the lifecycle sites (grower, hot swap, ctl/xApp call faults)
// stay with the single-cell episode, which exercises them without the
// cross-cell accounting ambiguity.
EpisodeReport run_multicell_episode(const EpisodeOptions& options) {
  EpisodeReport rep;
  rep.seed = options.seed;

  auto expect = [&rep](bool ok, std::string what) {
    if (!ok) rep.violations.push_back(std::move(what));
  };

  auto& journal = obs::AnomalyJournal::global();
  journal.set_capacity(1 << 16);
  journal.clear();
  auto& reg = obs::MetricsRegistry::global();
  reg.reset_values();

  // One plan per cell, derived deterministically from the master seed, so
  // each cell's fault schedule is independent and the whole episode still
  // replays from `--seed` alone.
  std::vector<std::unique_ptr<FaultPlan>> plans;
  for (uint32_t i = 0; i < options.cells; ++i) {
    plans.push_back(std::make_unique<FaultPlan>(
        options.seed ^ (0x9e3779b97f4a7c15ULL * (i + 1)), options.plan));
  }

  rt::DeploymentConfig dc;
  dc.cells = options.cells;
  dc.seed = options.seed;
  dc.threaded = true;
  dc.virtual_time = options.virtual_time;
  dc.report_period_slots = options.slots_per_round;
  // Slot budget of one full second (the single-cell harness convention):
  // every kSlotOverrun anomaly in the episode is an injected one.
  dc.mac.slot_us = 1'000'000;
  // Fleet telemetry plane under fire: per-cell trace rings feed the flight
  // recorder, and the SLO engine evaluates one window per report round.
  dc.trace_capacity = 1024;
  dc.slo_window_slots = options.slots_per_round;
  dc.tier_up_threshold = options.tier_up_threshold;
  dc.decorate_scheduler = [&plans](std::unique_ptr<ran::IntraSliceScheduler> inner,
                                   uint32_t cell, uint32_t slice_id) {
    return std::make_unique<ChaosIntraScheduler>(std::move(inner), *plans[cell],
                                                 slice_id,
                                                 "cell" + std::to_string(cell) + " ");
  };
  rt::GnbDeployment dep(dc);
  if (!dep.status().ok()) {
    expect(false, "deployment construction failed: " + dep.status().error().message);
    return rep;
  }

  // Flight recorder: the bundle's replay command must reproduce this exact
  // episode, so the context carries the episode shape, not just the seed.
  obs::FlightContext fctx = dep.flight_context();
  fctx.rounds = options.rounds;
  fctx.slots_per_round = options.slots_per_round;
  fctx.scenario = "chaos_episode";
  dep.set_flight_context(fctx);
  dep.set_breach_hook([&rep, &dep](const obs::HealthReport& health) {
    rep.slo_breaches += health.breaches;
    if (rep.flight_bundle.empty()) {
      rep.flight_bundle = dep.capture_flight_bundle("slo_breach");
    }
  });

  // --- Chaos hooks, one set per cell --------------------------------------
  // Each hook draws from its own cell's plan only; the barrier-stepped
  // schedule means a plan is touched either by its cell's worker (step
  // phase) or by the coordinator (RIC control sends while the workers are
  // parked), never both at once.
  const uint64_t budget_ns = static_cast<uint64_t>(dc.mac.slot_us) * 1000;
  std::set<std::string> slice_slots;
  for (const auto& s : dc.slices) slice_slots.insert(s.name);
  for (uint32_t i = 0; i < options.cells; ++i) {
    FaultPlan& plan = *plans[i];
    dep.sched_plugins(i).set_call_interceptor(make_call_interceptor(
        plan, "mac" + std::to_string(i), slice_slots, /*allow_deadline=*/true));
    ran::GnbMac& mac = dep.mac(i);
    mac.set_slot_time_padding([&plan, &mac, budget_ns]() -> uint64_t {
      return plan.draw_slot_overrun(mac.slot()) ? budget_ns + 1'000'000 : 0;
    });
    dep.link(i).add_fault_stage(make_link_stage(plan));
  }

  // --- Episode loop: barrier-stepped rounds; quarantines are lifted
  // --- between rounds while every worker is parked at the idle barrier.
  for (uint32_t round = 0; round < options.rounds; ++round) {
    Status st = dep.run_slots(options.slots_per_round);
    if (!st.ok()) {
      expect(false, "deployment.run_slots failed: " + st.error().message);
      break;
    }
    for (uint32_t i = 0; i < options.cells; ++i) {
      plugin::PluginManager& m = dep.sched_plugins(i);
      for (const std::string& s : m.slot_names()) {
        const plugin::SlotHealth* h = m.health(s);
        if (h != nullptr && h->quarantined) (void)m.reset_quarantine(s);
      }
    }
  }
  const uint64_t per_cell_slots = dep.slots_run();
  rep.slots = per_cell_slots * options.cells;
  rep.slo_breach_windows = dep.slo_breach_windows();

  // --- Drain: stop injecting, land everything in flight -------------------
  for (auto& p : plans) p->set_active(false);
  for (uint32_t i = 0; i < options.cells; ++i) dep.link(i).flush_delayed();
  Status rs = dep.ric().poll();
  if (!rs.ok()) ++rep.contained_errors;
  for (uint32_t i = 0; i < options.cells; ++i) {
    Status ps = dep.agent(i).poll();
    if (!ps.ok()) ++rep.contained_errors;
    dep.mac(i).set_slot_time_padding(nullptr);
  }

  // --- Warm-call probe ----------------------------------------------------
  if (options.warm_path_probe) run_warm_probe(rep, expect);

  // --- Invariants ----------------------------------------------------------
  auto snapshot = journal.snapshot();
  rep.anomalies = journal.total();
  auto sum_count = [&plans](FaultKind k) {
    uint64_t n = 0;
    for (const auto& p : plans) n += p->count(k);
    return n;
  };
  for (const auto& p : plans) {
    rep.injections += p->total();
    rep.injection_log.insert(rep.injection_log.end(), p->log().begin(),
                             p->log().end());
  }
  for (size_t k = 0; k < kFaultKindCount; ++k) {
    rep.injected_by_kind[k] = sum_count(static_cast<FaultKind>(k));
  }

  expect(snapshot.size() == journal.total(), "anomaly journal overflowed its capacity");

  std::map<obs::AnomalyKind, uint64_t> by_kind;
  std::map<std::string, uint64_t> sanitized_by_domain;
  for (const auto& r : snapshot) {
    ++by_kind[r.kind];
    if (r.kind == obs::AnomalyKind::kSanitized) ++sanitized_by_domain[r.domain];
  }
  auto eq = [&expect](uint64_t got, uint64_t want, const std::string& what) {
    expect(got == want, what + ": got " + std::to_string(got) + ", want " +
                            std::to_string(want));
  };

  // 1:1 fault -> anomaly accounting, kind by kind, summed across cells.
  eq(by_kind[obs::AnomalyKind::kTrap], sum_count(FaultKind::kForceTrap),
     "kTrap anomalies vs injected traps");
  eq(by_kind[obs::AnomalyKind::kFuelExhausted],
     sum_count(FaultKind::kFuelStarve) + sum_count(FaultKind::kDeadlineOverrun),
     "kFuelExhausted anomalies vs injected starvations");
  eq(by_kind[obs::AnomalyKind::kQuarantine], sum_count(FaultKind::kQuarantineStorm),
     "kQuarantine anomalies vs completed storms");
  eq(by_kind[obs::AnomalyKind::kSlotOverrun], sum_count(FaultKind::kSlotOverrun),
     "kSlotOverrun anomalies vs injected overruns");
  eq(by_kind[obs::AnomalyKind::kFrameRejected], sum_count(FaultKind::kLinkCorrupt),
     "kFrameRejected anomalies vs corrupted frames");
  eq(by_kind[obs::AnomalyKind::kSanitized], sum_count(FaultKind::kSchedGarbage),
     "kSanitized anomalies vs injected garbage responses");
  eq(by_kind[obs::AnomalyKind::kLoadFailed], 0, "unexpected kLoadFailed anomalies");
  eq(by_kind[obs::AnomalyKind::kDecline], 0, "unexpected kDecline anomalies");
  eq(by_kind[obs::AnomalyKind::kOther], 0, "unexpected kOther anomalies");
  // SLO breach accounting is exact: every breached verdict the engine
  // produced landed as one kSloBreach journal entry, and vice versa.
  eq(by_kind[obs::AnomalyKind::kSloBreach], rep.slo_breaches,
     "kSloBreach anomalies vs breached SLO verdicts");
  expect(rep.slo_breaches == 0 || !rep.flight_bundle.empty(),
         "SLO breach occurred but no flight bundle was captured");

  // Per-cell attribution: each cell's sanitizations land in its own MAC
  // domain, so cross-thread accounting never smears between shards.
  for (uint32_t i = 0; i < options.cells; ++i) {
    eq(sanitized_by_domain["mac" + std::to_string(i)],
       plans[i]->count(FaultKind::kSchedGarbage),
       "cell " + std::to_string(i) + " kSanitized anomalies vs its plan");
  }

  // Per-link conservation and fault accounting.
  for (uint32_t i = 0; i < options.cells; ++i) {
    ric::Duplex& link = dep.link(i);
    const std::string ci = "cell " + std::to_string(i) + " ";
    eq(link.frames_corrupted(), plans[i]->count(FaultKind::kLinkCorrupt),
       ci + "link corruption counter vs plan");
    eq(link.frames_dropped(), plans[i]->count(FaultKind::kLinkDrop),
       ci + "link drop counter vs plan");
    eq(link.frames_duplicated(), plans[i]->count(FaultKind::kLinkDuplicate),
       ci + "link duplicate counter vs plan");
    eq(link.frames_reordered(), plans[i]->count(FaultKind::kLinkReorder),
       ci + "link reorder counter vs plan");
    eq(link.frames_sent() + link.frames_duplicated(),
       link.frames_delivered() + link.frames_dropped(),
       ci + "link frame conservation");
    eq(link.delayed_in_flight(), 0, ci + "frames still held after drain");
    eq(link.pending(ric::Duplex::Side::kA) + link.pending(ric::Duplex::Side::kB), 0,
       ci + "frames still queued after drain");
  }

  // PRB conservation per cell: grants never exceed carrier capacity.
  for (uint32_t i = 0; i < options.cells; ++i) {
    uint64_t granted = 0;
    std::string cell_label = std::to_string(i);
    for (const auto& s : dc.slices) {
      std::string sid = std::to_string(s.slice_id);
      granted += reg.counter("waran_mac_prb_granted_total",
                             {{"cell", cell_label}, {"slice", sid}})
                     .value();
    }
    expect(granted <= static_cast<uint64_t>(dc.mac.n_prbs) * per_cell_slots,
           "cell " + cell_label + " PRB conservation violated: " +
               std::to_string(granted) + " granted over " +
               std::to_string(per_cell_slots) + " slots of " +
               std::to_string(dc.mac.n_prbs));
  }
  eq(reg.counter("waran_mac_slots_total").value(), rep.slots,
     "MAC slot counter across cells");
  eq(reg.counter("waran_mac_slot_overrun_total").value(),
     sum_count(FaultKind::kSlotOverrun), "MAC slot-overrun counter vs plans");

  // Cross-layer accounting balance across every shard's manager, the
  // agents and the shared RIC.
  std::vector<plugin::PluginManager*> managers;
  for (uint32_t i = 0; i < options.cells; ++i) {
    managers.push_back(&dep.sched_plugins(i));
    managers.push_back(&dep.agent(i).plugins());
  }
  managers.push_back(&dep.ric().plugins());
  uint64_t traps_sum = 0;
  uint64_t fuel_sum = 0;
  for (plugin::PluginManager* m : managers) {
    for (const std::string& s : m->slot_names()) {
      const plugin::SlotHealth* h = m->health(s);
      const CallCostAcc* c = m->cost(s);
      if (h == nullptr || c == nullptr) continue;
      std::string where = m->domain() + "/" + s;
      eq(c->calls(), h->calls, "cost.calls vs health.calls for " + where);
      eq(reg.counter("waran_plugin_calls_total", {{"domain", m->domain()}, {"slot", s}})
             .value(),
         h->calls, "calls_total counter vs health for " + where);
      eq(h->faults, h->traps + h->fuel_exhaustions, "fault breakdown for " + where);
      traps_sum += h->traps;
      fuel_sum += h->fuel_exhaustions;
    }
  }
  eq(traps_sum, sum_count(FaultKind::kForceTrap),
     "summed slot traps vs injected traps");
  eq(fuel_sum, sum_count(FaultKind::kFuelStarve) + sum_count(FaultKind::kDeadlineOverrun),
     "summed fuel exhaustions vs injected starvations");

  rep.passed = rep.violations.empty();
  return rep;
}

}  // namespace

CampaignReport run_campaign(uint64_t base_seed, uint32_t episodes,
                            const EpisodeOptions& base) {
  CampaignReport camp;
  for (uint32_t i = 0; i < episodes; ++i) {
    EpisodeOptions o = base;
    o.seed = base_seed + i;
    EpisodeReport rep = run_episode(o);
    ++camp.episodes;
    camp.injections += rep.injections;
    camp.anomalies += rep.anomalies;
    for (size_t k = 0; k < kFaultKindCount; ++k) {
      camp.injected_by_kind[k] += rep.injected_by_kind[k];
    }
    if (!rep.passed) {
      ++camp.failures;
      camp.failed.push_back(std::move(rep));
    }
  }
  return camp;
}

std::string summarize(const EpisodeReport& report) {
  std::string s = "seed " + std::to_string(report.seed) + ": " +
                  std::to_string(report.slots) + " slots, " +
                  std::to_string(report.injections) + " injected, " +
                  std::to_string(report.anomalies) + " anomalies, " +
                  std::to_string(report.contained_errors) + " contained -> " +
                  (report.passed ? "OK" : "FAIL");
  for (const auto& v : report.violations) s += "\n  violation: " + v;
  return s;
}

}  // namespace waran::chaos
