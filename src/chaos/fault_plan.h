// waran::chaos fault plan — the seed-deterministic schedule behind every
// chaos run. One master seed expands (splitmix64, the same expansion
// Xoshiro256 uses internally) into an independent random stream per fault
// *site* — sandbox crossings, scheduler decisions, slot timing, the E2
// link, plugin loads, memory growth — so adding injections at one site
// never perturbs the schedule at another, and any failing episode replays
// bit-for-bit from its seed alone.
//
// The plan only *decides*; the harness and the layer hooks (PluginManager
// interceptors, Duplex fault stages, GnbMac slot padding, Memory grow
// denial) *apply*. Each applied injection is noted in a log with a
// monotone sequence number, and per-kind counts back the suite's central
// invariant: every injected fault surfaces as exactly one anomaly-journal
// entry (or is provably contained without one).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"

namespace waran::chaos {

enum class FaultKind : uint8_t {
  // Sandbox-crossing faults (PluginManager call interceptor).
  kForceTrap = 0,    ///< call fails with a trap before entering the sandbox
  kFuelStarve,       ///< one-call fuel budget of 1: real engine exhaustion
  kDeadlineOverrun,  ///< 1 ns deadline (+ tiny fuel backstop): real overrun
  kQuarantineStorm,  ///< 3 consecutive forced traps -> deterministic quarantine
  // Lifecycle faults.
  kLoadFailure,  ///< install/swap refused by the load interceptor
  kGrowDenial,   ///< memory.grow answered -1 (spec-conformant denial)
  // Scheduler-output faults (decorator around the intra-slice scheduler).
  kSchedGarbage,  ///< forged grant prepended: host sanitization must catch it
  kSchedEmpty,    ///< empty allocation list: must be handled gracefully
  kSchedError,    ///< scheduler returns an error: MAC falls back to host RR
  // Timing faults.
  kSlotOverrun,  ///< slot wall-clock padded past the budget
  // E2-link faults (Duplex fault pipeline).
  kLinkCorrupt,    ///< bit flip: comm plugin must reject in-sandbox
  kLinkDrop,       ///< frame silently lost
  kLinkDuplicate,  ///< frame delivered twice
  kLinkReorder,    ///< frame held back and released after later traffic
  kCount
};

inline constexpr size_t kFaultKindCount = static_cast<size_t>(FaultKind::kCount);

const char* to_string(FaultKind kind);

/// Injection rates, expressed per 1024 draws at each site (0 disables the
/// site). Defaults give a busy but analyzable episode: a few faults of
/// every kind over ~100 slots without drowning the scenario.
struct PlanConfig {
  uint16_t call_fault_per_1024 = 40;    ///< per eligible sandbox crossing
  uint16_t storm_per_1024 = 64;         ///< escalation, per fired call fault
  uint16_t sched_fault_per_1024 = 32;   ///< per intra-slice schedule() call
  uint16_t slot_overrun_per_1024 = 10;  ///< per MAC slot
  uint16_t link_fault_per_1024 = 96;    ///< per frame crossing the Duplex
  uint16_t load_failure_per_1024 = 384; ///< per hot-swap attempt
  uint16_t grow_denial_per_1024 = 384;  ///< per grower-plugin call
};

class FaultPlan {
 public:
  explicit FaultPlan(uint64_t seed, PlanConfig config = {});

  uint64_t seed() const { return seed_; }
  const PlanConfig& config() const { return config_; }

  /// Master switch: an inactive plan never injects (the harness flips it
  /// off for the drain phase so in-flight traffic lands cleanly).
  void set_active(bool on) { active_ = on; }
  bool active() const { return active_; }

  // --- Site draws ----------------------------------------------------------
  // Draw methods consume randomness from their site's stream only. A draw
  // that fires is noted immediately when the caller applies it
  // unconditionally; draws whose application can be preempted (scheduler
  // garbage on a call that then faults) are noted by the caller via
  // note_applied().

  /// One sandbox crossing of `slot` under `domain`. Guarantees at most one
  /// injected fault per two consecutive calls of a slot (so non-storm
  /// injections can never accumulate into an accidental quarantine), and
  /// runs storms to completion: once escalated, the next two crossings of
  /// the same slot fault too, and the third is noted as the quarantine.
  struct CallFault {
    FaultKind kind = FaultKind::kForceTrap;
    bool storm_member = false;
  };
  std::optional<CallFault> draw_call(const std::string& domain, const std::string& slot,
                                     bool allow_deadline);

  /// True while a storm on (domain, slot) still has members to deliver —
  /// the harness must not swap or reset-quarantine such a slot (both clear
  /// the consecutive-fault count and would defuse the storm).
  bool storm_active(const std::string& domain, const std::string& slot) const;

  /// One intra-slice scheduling decision. The decorator applies the kind
  /// and calls note_applied(); garbage that cannot be applied (the
  /// underlying call itself faulted) is simply not noted.
  std::optional<FaultKind> draw_sched();

  /// One MAC slot; true means pad the slot past its budget.
  bool draw_slot_overrun(uint64_t slot);

  /// One frame crossing the Duplex. `entropy` seeds corruption offsets and
  /// reorder delays (drawn for every frame to keep the stream aligned
  /// whether or not the fault fires).
  struct LinkFault {
    FaultKind kind = FaultKind::kLinkCorrupt;
    uint64_t entropy = 0;
  };
  std::optional<LinkFault> draw_link();

  /// One hot-swap attempt on `slot`; true means the load interceptor must
  /// refuse it.
  bool draw_load_failure(const std::string& slot);

  /// One grower-plugin call; true means deny its memory.grow.
  bool draw_grow_denial();

  /// Records an injection the caller applied after a deferred draw.
  void note_applied(FaultKind kind, const std::string& site);

  // --- Ledger --------------------------------------------------------------

  uint64_t count(FaultKind kind) const {
    return counts_[static_cast<size_t>(kind)];
  }
  uint64_t total() const { return log_.size(); }

  struct Injection {
    uint64_t seq = 0;
    FaultKind kind = FaultKind::kForceTrap;
    std::string site;
  };
  const std::vector<Injection>& log() const { return log_; }

  /// Derives an independent deterministic stream for scenario randomness
  /// (channel seeds, payload jitter) that shares the master seed.
  Xoshiro256 derive_stream(uint64_t salt) const;

 private:
  enum Site : size_t { kSiteCall = 0, kSiteSched, kSiteSlot, kSiteLink, kSiteLoad, kSiteGrow, kSiteCount };

  struct SlotState {
    uint32_t storm_remaining = 0;  ///< storm members still to inject
    bool cooldown = false;         ///< next crossing must stay clean
  };

  void note(FaultKind kind, std::string site);
  bool fires(Site site, uint16_t per_1024) {
    return rng_[site].below(1024) < per_1024;
  }

  uint64_t seed_;
  PlanConfig config_;
  bool active_ = true;
  std::array<Xoshiro256, kSiteCount> rng_;
  std::map<std::string, SlotState> call_state_;
  std::array<uint64_t, kFaultKindCount> counts_{};
  std::vector<Injection> log_;
};

}  // namespace waran::chaos
