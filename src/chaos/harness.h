// waran::chaos episode harness — stands up the full WA-RAN closed loop
// (three MVNO slices with Wasm schedulers on the gNB MAC, E2-lite agent,
// Duplex link, near-RT RIC with the SLA xApp), threads one FaultPlan
// through every chaos hook in the stack, runs the loop for a seeded
// episode, and then audits the global invariants:
//
//   1. The host never crashes: every plugin/link/timing fault is contained
//      to a Status the loop tolerates.
//   2. Every injected fault surfaces as exactly one anomaly-journal entry
//      of the matching kind (or is provably handled without one: denied
//      grows, empty schedules, dropped frames).
//   3. Conservation laws hold: PRB grants never exceed carrier capacity,
//      and link frames balance (sent + duplicated == delivered + dropped).
//   4. Per-slot accounting balances across layers: SlotHealth, CallCostAcc
//      and the metrics registry agree call for call.
//   5. The engine's warm call path stays allocation-free even while faults
//      fire around it (measured via the heap probe when the embedding
//      binary installs the counting operator new).
//
// The same seed always produces the same episode: `waran_chaos --seed S`
// replays any CI failure bit-for-bit.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "chaos/fault_plan.h"

namespace waran::chaos {

struct EpisodeOptions {
  uint64_t seed = 1;
  uint32_t rounds = 6;           ///< E2 report rounds per episode
  uint32_t slots_per_round = 15; ///< MAC slots between indications
  PlanConfig plan;
  bool warm_path_probe = true;   ///< run the zero-alloc warm-call probe
  /// Cells in the gNB (cells > 1 runs the episode against a threaded
  /// rt::GnbDeployment with one FaultPlan per cell, scoped to the fault
  /// kinds that are cell-local: scheduler output/call faults, slot
  /// overruns, and per-link E2 faults).
  uint32_t cells = 1;
  /// Run the episode on rt::Clock virtual time: the campaign executes as
  /// fast as the CPU allows (no wall-clock pacing or clock syscalls) and
  /// timing-dependent faults stay deterministic — deadline overruns land
  /// via the fuel backstop, slot overruns via injected padding.
  bool virtual_time = false;
  /// Multicell only: forwarded to DeploymentConfig.tier_up_threshold, so
  /// scheduler plugins cross the tier-1 → tier-2 boundary *during* the
  /// fault campaign. Every invariant (anomaly exactness, quarantine,
  /// containment) must hold identically — tiering is observationally
  /// invisible. 0 = tier-1 throughout.
  uint32_t tier_up_threshold = 0;
};

struct EpisodeReport {
  uint64_t seed = 0;
  bool passed = false;
  std::vector<std::string> violations;

  uint64_t slots = 0;
  uint64_t injections = 0;
  uint64_t anomalies = 0;
  uint64_t contained_errors = 0;  ///< non-fatal Status errors the loop absorbed
  uint64_t warm_heap_allocs = 0;  ///< heap allocations during the warm probe
  /// Multicell episodes run the obs SLO engine with one window per round;
  /// chaos faults are expected to breach objectives, and the audit checks
  /// the breach accounting is exact (journal entries == breached verdicts).
  uint64_t slo_breach_windows = 0;  ///< evaluation windows flagged unhealthy
  uint64_t slo_breaches = 0;        ///< breached SLO verdicts across windows
  /// Flight-recorder bundle captured at the first unhealthy window (empty
  /// when the episode never breached). `waran_chaos --flight-dir` persists
  /// these; the bundle's embedded replay command reproduces it bit-for-bit
  /// under virtual time.
  std::string flight_bundle;
  std::array<uint64_t, kFaultKindCount> injected_by_kind{};
  std::vector<FaultPlan::Injection> injection_log;
};

/// Runs one seeded chaos episode against a fresh scenario and checks every
/// invariant. Resets the global anomaly journal and metric values.
EpisodeReport run_episode(const EpisodeOptions& options);

struct CampaignReport {
  uint32_t episodes = 0;
  uint32_t failures = 0;
  uint64_t injections = 0;
  uint64_t anomalies = 0;
  std::array<uint64_t, kFaultKindCount> injected_by_kind{};
  std::vector<EpisodeReport> failed;  ///< reports of failing episodes only
};

/// Runs `episodes` consecutive episodes with seeds base_seed, base_seed+1,
/// ... (so any failure replays via run_episode with that exact seed).
CampaignReport run_campaign(uint64_t base_seed, uint32_t episodes,
                            const EpisodeOptions& base = {});

/// One-line human summary of an episode (seed, injections, verdict).
std::string summarize(const EpisodeReport& report);

}  // namespace waran::chaos
