#include "ran/mac.h"

#include <algorithm>
#include <cassert>

#include "common/log.h"
#include "obs/anomaly.h"
#include "obs/trace.h"
#include "ran/phy_tables.h"

namespace waran::ran {

GnbMac::GnbMac(MacConfig config) : config_(config), error_rng_(config.error_seed) {
  auto& reg = obs::MetricsRegistry::global();
  m_slots_ = &reg.counter("waran_mac_slots_total");
  m_slot_overruns_ = &reg.counter("waran_mac_slot_overrun_total");
  m_slot_wall_ns_ = &reg.histogram("waran_mac_slot_wall_ns");
  const std::string cell = std::to_string(config_.cell);
  m_cell_slots_ = &reg.counter("waran_cell_slots_total", {{"cell", cell}});
  m_cell_slot_overruns_ =
      &reg.counter("waran_cell_slot_overrun_total", {{"cell", cell}});
  m_cell_slot_wall_ns_ = &reg.histogram("waran_cell_slot_wall_ns", {{"cell", cell}});
}

void GnbMac::add_slice(const SliceConfig& config,
                       std::unique_ptr<IntraSliceScheduler> scheduler) {
  assert(!slices_.contains(config.slice_id));
  SliceState state;
  state.config = config;
  state.scheduler = std::move(scheduler);
  auto& reg = obs::MetricsRegistry::global();
  std::string id = std::to_string(config.slice_id);
  obs::Labels labels = {{"cell", std::to_string(config_.cell)}, {"slice", id}};
  state.m_prb_granted = &reg.counter("waran_mac_prb_granted_total", labels);
  state.m_sched_faults = &reg.counter("waran_mac_sched_faults_total", labels);
  state.m_sanitized = &reg.counter("waran_mac_sanitized_allocs_total", labels);
  state.m_slots_scheduled = &reg.counter("waran_mac_slots_scheduled_total", labels);
  slices_.emplace(config.slice_id, std::move(state));
}

Status GnbMac::set_intra_scheduler(uint32_t slice_id,
                                   std::unique_ptr<IntraSliceScheduler> scheduler) {
  auto it = slices_.find(slice_id);
  if (it == slices_.end()) return Error::not_found("no such slice");
  it->second.scheduler = std::move(scheduler);
  return {};
}

void GnbMac::set_inter_scheduler(std::unique_ptr<InterSliceScheduler> scheduler) {
  inter_ = std::move(scheduler);
}

void GnbMac::set_mcs_table(McsTable table) {
  mcs_table_ = table;
  for (auto& [rnti, ue] : ues_) ue->channel().set_mcs_table(table);
}

uint32_t GnbMac::add_ue(uint32_t slice_id, Channel channel, TrafficSource traffic) {
  assert(slices_.contains(slice_id));
  channel.set_mcs_table(mcs_table_);
  uint32_t rnti = next_rnti_++;
  ues_.emplace(rnti, std::make_unique<UeContext>(rnti, slice_id, std::move(channel),
                                                 std::move(traffic),
                                                 config_.pf_time_constant_slots));
  return rnti;
}

Status GnbMac::remove_ue(uint32_t rnti) {
  if (ues_.erase(rnti) == 0) return Error::not_found("no such UE");
  return {};
}

codec::SchedRequest GnbMac::build_request(const SliceState& slice, uint32_t quota) const {
  codec::SchedRequest req;
  req.slot = static_cast<uint32_t>(slot_);
  req.prb_quota = quota;
  double slots_per_s = 1e6 / config_.slot_us;
  for (const auto& [rnti, ue] : ues_) {
    if (ue->slice_id() != slice.config.slice_id) continue;
    if (ue->buffer_bytes() == 0) continue;
    codec::UeInfo info;
    info.rnti = rnti;
    info.cqi = ue->channel().cqi();
    info.mcs = ue->channel().mcs();
    info.buffer_bytes = ue->buffer_bytes();
    info.tbs_per_prb = transport_block_bits(info.mcs, 1, mcs_table_);
    info.avg_tput_bps = ue->avg_tput_bps();
    info.achievable_bps = transport_block_bits(info.mcs, quota, mcs_table_) * slots_per_s;
    req.ues.push_back(info);
  }
  return req;
}

codec::SchedResponse GnbMac::fallback_round_robin(const codec::SchedRequest& req) {
  codec::SchedResponse resp;
  if (req.ues.empty() || req.prb_quota == 0) return resp;
  uint32_t n = static_cast<uint32_t>(req.ues.size());
  uint32_t share = req.prb_quota / n;
  uint32_t extra = req.prb_quota % n;
  // Rotate the starting UE by slot so leftovers distribute evenly.
  uint32_t start = req.slot % n;
  for (uint32_t i = 0; i < n; ++i) {
    const codec::UeInfo& ue = req.ues[(start + i) % n];
    uint32_t prbs = share + (i < extra ? 1 : 0);
    if (prbs > 0) resp.allocs.push_back({ue.rnti, prbs});
  }
  return resp;
}

void GnbMac::apply_response(SliceState& slice, const codec::SchedRequest& req,
                            const codec::SchedResponse& resp,
                            std::map<uint32_t, SlotDelivery>& delivered) {
  uint32_t remaining = req.prb_quota;
  uint64_t sanitized_here = 0;
  for (const codec::SchedAlloc& alloc : resp.allocs) {
    if (remaining == 0) break;
    if (alloc.prbs == 0) continue;
    auto it = ues_.find(alloc.rnti);
    if (it == ues_.end() || it->second->slice_id() != slice.config.slice_id ||
        (it->second->buffer_bytes() == 0 && !it->second->harq_pending())) {
      // Plugin referenced a UE it does not own / that asked for nothing:
      // sanitize by dropping the grant (§6A).
      ++sanitized_here;
      continue;
    }
    uint32_t prbs = alloc.prbs;
    if (prbs > remaining) {
      // Over-allocation: clamp rather than fault.
      ++sanitized_here;
      prbs = remaining;
    }
    remaining -= prbs;
    UeContext& ue = *it->second;

    if (config_.channel_errors && ue.harq_pending()) {
      // The grant retransmits the pending TB. Chase combining: every
      // retransmission lowers the residual error multiplicatively.
      double p_fail = ue.channel().bler();
      for (uint32_t a = 0; a < ue.harq_attempts(); ++a) p_fail *= ue.channel().bler();
      if (error_rng_.uniform() < p_fail) {
        ue.harq_retry();
        ++slice.stats.harq_retx;
        if (ue.harq_attempts() > config_.max_harq_attempts) {
          ue.harq_finish();  // give up; upper layers would recover
          ++slice.stats.tb_drops;
        }
      } else {
        delivered[alloc.rnti].harq_bits += ue.harq_finish();
      }
      continue;
    }

    uint32_t tbs = transport_block_bits(ue.channel().mcs(), prbs, mcs_table_);
    uint32_t deliverable = std::min<uint64_t>(tbs, static_cast<uint64_t>(ue.buffer_bytes()) * 8);
    if (config_.channel_errors && error_rng_.uniform() < ue.channel().bler()) {
      // The TB leaves the RLC queue either way (it was transmitted); with
      // HARQ it parks in the retransmission buffer, without it it is lost.
      ue.harq_start(deliverable);
      if (config_.enable_harq) {
        ++slice.stats.harq_retx;
      } else {
        ue.harq_finish();
        ++slice.stats.tb_drops;
      }
    } else {
      delivered[alloc.rnti].fresh_bits += deliverable;
    }
  }
  slice.stats.sanitized_allocs += sanitized_here;
  slice.m_sanitized->add(sanitized_here);
  if (sanitized_here > 0) {
    // One journal entry per sanitized response (not per grant): the journal
    // answers "which slice misbehaved in which slot", the counter above
    // carries the magnitude.
    obs::AnomalyJournal::global().record(
        obs::AnomalyKind::kSanitized, config_.domain,
        "slice " + std::to_string(slice.config.slice_id),
        std::to_string(sanitized_here) + " grant(s) dropped or clamped");
  }
  slice.m_prb_granted->add(req.prb_quota - remaining);
}

Status GnbMac::run_slot() {
  if (inter_ == nullptr) return Error::state("no inter-slice scheduler configured");
  // Slot alignment for every span/anomaly recorded below this frame, and
  // the outermost span of the slot trace hierarchy.
  obs::set_current_slot(slot_);
  obs::ObsSpan slot_span(obs::TraceCat::kMac, "slot",
                         static_cast<uint32_t>(slot_));
  const uint64_t slot_t0 = obs::now_ns();

  // Phase 1: arrivals + channel.
  for (auto& [rnti, ue] : ues_) ue->begin_slot(config_.slot_us);

  // Phase 2: inter-slice quotas.
  std::vector<SliceDemand> demands;
  std::vector<SliceState*> order;
  demands.reserve(slices_.size());
  double now = now_s();
  for (auto& [id, slice] : slices_) {
    SliceDemand d;
    d.config = &slice.config;
    double tbs_sum = 0;
    for (const auto& [rnti, ue] : ues_) {
      if (ue->slice_id() != id) continue;
      d.backlog_bytes += ue->buffer_bytes();
      d.current_rate_bps += ue->rate_bps(now);
      if (ue->buffer_bytes() > 0) {
        ++d.active_ues;
        tbs_sum += transport_block_bits(ue->channel().mcs(), 1, mcs_table_);
      }
    }
    if (d.active_ues > 0) d.est_bits_per_prb = tbs_sum / d.active_ues;
    demands.push_back(d);
    order.push_back(&slice);
  }
  std::vector<uint32_t> quotas;
  {
    obs::ObsSpan inter_span(obs::TraceCat::kMac, "inter_slice");
    quotas = inter_->allocate(config_.n_prbs, demands);
  }
  if (quotas.size() != order.size()) {
    return Error::internal("inter-slice scheduler returned wrong quota count");
  }

  // Phases 3+4 per slice.
  std::map<uint32_t, SlotDelivery> delivered;
  for (size_t i = 0; i < order.size(); ++i) {
    SliceState& slice = *order[i];
    slice.stats.last_quota = quotas[i];
    if (quotas[i] == 0 || demands[i].active_ues == 0) continue;
    codec::SchedRequest req = build_request(slice, quotas[i]);
    if (req.ues.empty()) continue;
    ++slice.stats.slots_scheduled;
    slice.m_slots_scheduled->add();

    obs::ObsSpan slice_span(
        obs::TraceCat::kSlice,
        slice.config.name.empty() ? std::string_view("slice") : slice.config.name,
        slice.config.slice_id);
    codec::SchedResponse resp;
    auto result = slice.scheduler->schedule(req);
    if (result.ok()) {
      resp = std::move(*result);
    } else {
      // Contained fault: host-side default scheduler takes this slot (§6A).
      ++slice.stats.scheduler_faults;
      slice.m_sched_faults->add();
      slice.stats.last_error = result.error().message;
      WARAN_LOG(kDebug, "mac",
                "slice " << slice.config.slice_id
                         << " scheduler fault: " << result.error().message);
      resp = fallback_round_robin(req);
    }
    apply_response(slice, req, resp, delivered);
  }

  // Deliver (every UE ticks its EWMA, scheduled or not).
  double slots_per_s = 1e6 / config_.slot_us;
  double deliver_time = now_s();
  for (auto& [rnti, ue] : ues_) {
    auto it = delivered.find(rnti);
    if (it == delivered.end()) {
      ue->complete_slot(0, 0, deliver_time, slots_per_s);
    } else {
      ue->complete_slot(it->second.fresh_bits, it->second.harq_bits, deliver_time,
                        slots_per_s);
    }
  }

  // Slot-deadline accounting: in a real-time deployment the slot budget is
  // config_.slot_us of wall time; an overrun is the anomaly the paper's
  // fuel/deadline machinery exists to prevent.
  uint64_t slot_wall_ns = obs::now_ns() - slot_t0;
  if (slot_padding_) slot_wall_ns += slot_padding_();
  m_slots_->add();
  m_slot_wall_ns_->add(slot_wall_ns);
  m_cell_slots_->add();
  m_cell_slot_wall_ns_->add(slot_wall_ns);
  if (slot_wall_ns > static_cast<uint64_t>(config_.slot_us) * 1000) {
    m_slot_overruns_->add();
    m_cell_slot_overruns_->add();
    obs::AnomalyJournal::global().record(
        obs::AnomalyKind::kSlotOverrun, config_.domain, "slot",
        "slot processing took " + std::to_string(slot_wall_ns) + " ns (budget " +
            std::to_string(static_cast<uint64_t>(config_.slot_us) * 1000) + " ns)");
  }

  ++slot_;
  return {};
}

Status GnbMac::run_slots(uint32_t n) {
  for (uint32_t i = 0; i < n; ++i) {
    WARAN_CHECK_OK(run_slot());
  }
  return {};
}

const UeContext* GnbMac::ue(uint32_t rnti) const {
  auto it = ues_.find(rnti);
  return it == ues_.end() ? nullptr : it->second.get();
}

UeContext* GnbMac::ue(uint32_t rnti) {
  auto it = ues_.find(rnti);
  return it == ues_.end() ? nullptr : it->second.get();
}

std::vector<uint32_t> GnbMac::ue_rntis() const {
  std::vector<uint32_t> rntis;
  rntis.reserve(ues_.size());
  for (const auto& [rnti, _] : ues_) rntis.push_back(rnti);
  return rntis;
}

double GnbMac::slice_rate_bps(uint32_t slice_id) const {
  double sum = 0;
  double now = now_s();
  for (const auto& [rnti, ue] : ues_) {
    if (ue->slice_id() == slice_id) sum += ue->rate_bps(now);
  }
  return sum;
}

const SliceStats* GnbMac::slice_stats(uint32_t slice_id) const {
  auto it = slices_.find(slice_id);
  return it == slices_.end() ? nullptr : &it->second.stats;
}

const SliceConfig* GnbMac::slice_config(uint32_t slice_id) const {
  auto it = slices_.find(slice_id);
  return it == slices_.end() ? nullptr : &it->second.config;
}

std::vector<uint32_t> GnbMac::slice_ids() const {
  std::vector<uint32_t> ids;
  ids.reserve(slices_.size());
  for (const auto& [id, _] : slices_) ids.push_back(id);
  return ids;
}

IntraSliceScheduler* GnbMac::intra_scheduler(uint32_t slice_id) {
  auto it = slices_.find(slice_id);
  return it == slices_.end() ? nullptr : it->second.scheduler.get();
}

}  // namespace waran::ran
