// Downlink traffic generators feeding each UE's RLC buffer. The paper
// generates DL load with iperf3 on every UE; FullBuffer reproduces a
// saturating iperf3 flow, Cbr a rate-limited one, and OnOff a bursty IoT
// pattern (the MVNO-2 "IoT" slice in Fig. 3).
#pragma once

#include <cstdint>

#include "common/rng.h"

namespace waran::ran {

class TrafficSource {
 public:
  enum class Kind { kFullBuffer, kCbr, kOnOff };

  /// Saturating source: the buffer never runs dry.
  static TrafficSource full_buffer();

  /// Constant bit rate `bps`, delivered in per-slot chunks.
  static TrafficSource cbr(double bps);

  /// Bursty source alternating exponential on/off periods (means in
  /// slots); while on, it produces `bps`.
  static TrafficSource on_off(double bps, double mean_on_slots,
                              double mean_off_slots, uint64_t seed);

  /// Bytes arriving during one slot of `slot_us` microseconds.
  uint32_t arrivals_bytes(uint32_t slot_us);

  Kind kind() const { return kind_; }

 private:
  TrafficSource() : rng_(0) {}

  Kind kind_ = Kind::kFullBuffer;
  double bps_ = 0.0;
  double carry_bytes_ = 0.0;  // fractional-byte accumulator for CBR
  // On/off state machine.
  bool on_ = true;
  double mean_on_ = 1.0;
  double mean_off_ = 1.0;
  double remaining_ = 0.0;
  Xoshiro256 rng_;
};

}  // namespace waran::ran
