// Per-UE MAC context: identity, slice membership, channel, traffic source,
// RLC buffer, and throughput accounting (instantaneous windowed rate for
// the evaluation plots, EWMA long-term rate for proportional-fair).
#pragma once

#include <cstdint>

#include "common/stats.h"
#include "ran/channel.h"
#include "ran/traffic.h"

namespace waran::ran {

class UeContext {
 public:
  UeContext(uint32_t rnti, uint32_t slice_id, Channel channel, TrafficSource traffic,
            double pf_time_constant_slots = 100.0)
      : rnti_(rnti),
        slice_id_(slice_id),
        channel_(std::move(channel)),
        traffic_(std::move(traffic)),
        rate_meter_(1.0),
        pf_tc_(pf_time_constant_slots) {}

  uint32_t rnti() const { return rnti_; }
  uint32_t slice_id() const { return slice_id_; }
  Channel& channel() { return channel_; }
  const Channel& channel() const { return channel_; }

  uint32_t buffer_bytes() const { return buffer_bytes_; }
  double avg_tput_bps() const { return avg_tput_bps_; }
  uint64_t delivered_bits() const { return delivered_bits_; }

  /// Windowed (1 s) throughput, the quantity Fig. 5a/5b plot.
  double rate_bps(double now_s) const { return rate_meter_.rate_bps(now_s); }

  /// Slot phase 1: traffic arrivals + channel evolution.
  void begin_slot(uint32_t slot_us) {
    uint32_t arriving = traffic_.arrivals_bytes(slot_us);
    // Cap the buffer like a real RLC queue (tail drop).
    uint64_t b = static_cast<uint64_t>(buffer_bytes_) + arriving;
    buffer_bytes_ = b > kMaxBufferBytes ? kMaxBufferBytes : static_cast<uint32_t>(b);
    channel_.step();
  }

  /// Slot phase 3: `bits` were delivered to this UE this slot (0 if it was
  /// not scheduled). Updates buffer, EWMA and the rate meter.
  void deliver(uint32_t bits, double now_s, double slots_per_s) {
    complete_slot(bits, 0, now_s, slots_per_s);
  }

  /// Slot completion with split accounting: `fresh_bits` drain the RLC
  /// buffer (first transmissions), `harq_bits` do not (their bytes moved to
  /// the HARQ buffer at first transmission). One EWMA update per slot.
  void complete_slot(uint32_t fresh_bits, uint32_t harq_bits, double now_s,
                     double slots_per_s) {
    uint32_t bytes = fresh_bits / 8;
    buffer_bytes_ = bytes >= buffer_bytes_ ? 0 : buffer_bytes_ - bytes;
    uint32_t total = fresh_bits + harq_bits;
    delivered_bits_ += total;
    rate_meter_.add(now_s, total);
    double inst_bps = total * slots_per_s;
    avg_tput_bps_ += (inst_bps - avg_tput_bps_) / pf_tc_;
  }

  // --- HARQ (one process per UE, stop-and-wait) ---------------------------

  bool harq_pending() const { return harq_bits_ > 0; }
  uint32_t harq_bits() const { return harq_bits_; }
  uint32_t harq_attempts() const { return harq_attempts_; }

  /// Moves `bits` out of the RLC buffer into the HARQ process (first
  /// transmission failed).
  void harq_start(uint32_t bits) {
    uint32_t bytes = bits / 8;
    buffer_bytes_ = bytes >= buffer_bytes_ ? 0 : buffer_bytes_ - bytes;
    harq_bits_ = bits;
    harq_attempts_ = 1;
  }
  void harq_retry() { ++harq_attempts_; }
  uint32_t harq_finish() {
    uint32_t bits = harq_bits_;
    harq_bits_ = 0;
    harq_attempts_ = 0;
    return bits;
  }

  void set_pf_time_constant(double slots) { pf_tc_ = slots; }

 private:
  static constexpr uint32_t kMaxBufferBytes = 8 << 20;

  uint32_t rnti_;
  uint32_t slice_id_;
  Channel channel_;
  TrafficSource traffic_;
  uint32_t buffer_bytes_ = 0;
  double avg_tput_bps_ = 0.0;
  uint64_t delivered_bits_ = 0;
  RateMeter rate_meter_;
  double pf_tc_;
  uint32_t harq_bits_ = 0;
  uint32_t harq_attempts_ = 0;
};

}  // namespace waran::ran
