// The gNB MAC downlink slot loop with two-level slice scheduling — the
// srsRAN-equivalent substrate the paper retrofits (§5A). Each slot:
//
//   1. traffic arrivals + channel evolution per UE,
//   2. inter-slice scheduler divides the carrier's PRBs among slices,
//   3. each slice's intra-slice scheduler (native or Wasm plugin) orders
//      its UEs and sizes their grants,
//   4. the resource allocator applies the grants, clamping to the quota and
//      sanitizing invalid plugin output (§6A), and delivers transport
//      blocks into the UEs' throughput accounting.
//
// Scheduler faults never abort the slot: the MAC falls back to a host-side
// round-robin for that slice and counts the event.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "obs/metrics.h"
#include "ran/phy_tables.h"
#include "ran/scheduler_iface.h"
#include "ran/ue.h"

namespace waran::ran {

struct MacConfig {
  uint32_t n_prbs = 52;      ///< 10 MHz @ 15 kHz SCS, the paper's testbed
  uint32_t slot_us = 1000;   ///< 1 ms slots (numerology 0)
  double pf_time_constant_slots = 100.0;

  /// Transport-block errors drawn from the channel's BLER. Off by default
  /// (the paper's experiments assume the link-adaptation operating point).
  bool channel_errors = false;
  /// With channel_errors: stop-and-wait HARQ with chase combining; without
  /// it a failed TB is simply lost.
  bool enable_harq = true;
  uint32_t max_harq_attempts = 4;
  uint64_t error_seed = 0x5eed;

  /// Cell identity in a multi-cell gNB deployment (rt::GnbDeployment).
  /// Stamped as a "cell" label on the per-slice metric series so cells
  /// sharing one MetricsRegistry stay distinguishable; the unlabeled slot
  /// aggregates (waran_mac_slots_total etc.) are shared across cells by
  /// design.
  uint32_t cell = 0;
  /// Anomaly-journal domain for this MAC's records. Single-cell embedders
  /// keep the default; the deployment uses "mac<cell>" so per-domain
  /// journal sequences stay single-writer (and thus deterministic) when
  /// cells run on separate worker threads.
  std::string domain = "mac";
};

/// Per-slice counters the evaluation reads.
struct SliceStats {
  uint64_t slots_scheduled = 0;   ///< slots with a nonzero quota and demand
  uint64_t scheduler_faults = 0;  ///< plugin errors answered with fallback
  uint64_t sanitized_allocs = 0;  ///< invalid grant entries dropped/clamped
  uint64_t harq_retx = 0;         ///< transport blocks that needed retransmission
  uint64_t tb_drops = 0;          ///< TBs lost (HARQ exhausted / HARQ disabled)
  uint32_t last_quota = 0;
  std::string last_error;
};

class GnbMac {
 public:
  explicit GnbMac(MacConfig config);

  // --- Topology ------------------------------------------------------------

  /// Registers a slice with its intra-slice scheduler. slice_id must be new.
  void add_slice(const SliceConfig& config,
                 std::unique_ptr<IntraSliceScheduler> scheduler);

  /// Hot-swaps the intra-slice scheduler (the MAC-level face of the WA-RAN
  /// plugin swap; with a Wasm scheduler the plugin manager swap is used
  /// instead and this is not needed).
  Status set_intra_scheduler(uint32_t slice_id,
                             std::unique_ptr<IntraSliceScheduler> scheduler);

  void set_inter_scheduler(std::unique_ptr<InterSliceScheduler> scheduler);

  /// Switches link adaptation between the 64QAM and 256QAM CQI/MCS tables
  /// on every UE (the RIC's set_cqi_table control action made real).
  void set_mcs_table(McsTable table);
  McsTable mcs_table() const { return mcs_table_; }

  /// Adds a UE to a slice; returns its RNTI.
  uint32_t add_ue(uint32_t slice_id, Channel channel, TrafficSource traffic);

  /// Removes a UE (detach).
  Status remove_ue(uint32_t rnti);

  // --- Execution -----------------------------------------------------------

  /// Runs one slot. Never fails from plugin faults (those are contained);
  /// fails only on host misconfiguration.
  Status run_slot();
  Status run_slots(uint32_t n);

  // --- Introspection -------------------------------------------------------

  uint64_t slot() const { return slot_; }
  double now_s() const { return static_cast<double>(slot_) * config_.slot_us * 1e-6; }
  const MacConfig& config() const { return config_; }

  const UeContext* ue(uint32_t rnti) const;
  UeContext* ue(uint32_t rnti);
  std::vector<uint32_t> ue_rntis() const;

  /// Slice throughput over the trailing second (sum of member UE rates).
  double slice_rate_bps(uint32_t slice_id) const;
  const SliceStats* slice_stats(uint32_t slice_id) const;
  const SliceConfig* slice_config(uint32_t slice_id) const;
  std::vector<uint32_t> slice_ids() const;

  IntraSliceScheduler* intra_scheduler(uint32_t slice_id);

  /// Fault injection (waran::chaos): extra nanoseconds charged to the slot
  /// wall-clock before the overrun check, standing in for a host-side stall
  /// (page fault, preemption). The callback runs once per slot; return 0
  /// for no padding. Clears with nullptr.
  void set_slot_time_padding(std::function<uint64_t()> fn) {
    slot_padding_ = std::move(fn);
  }

 private:
  struct SliceState {
    SliceConfig config;
    std::unique_ptr<IntraSliceScheduler> scheduler;
    SliceStats stats;
    // Registry handles, bound at add_slice (label: slice id).
    obs::Counter* m_prb_granted = nullptr;
    obs::Counter* m_sched_faults = nullptr;
    obs::Counter* m_sanitized = nullptr;
    obs::Counter* m_slots_scheduled = nullptr;
  };

  codec::SchedRequest build_request(const SliceState& slice, uint32_t quota) const;
  /// Host-side round-robin used when a slice's scheduler faults (§6A).
  static codec::SchedResponse fallback_round_robin(const codec::SchedRequest& req);
  struct SlotDelivery {
    uint32_t fresh_bits = 0;  // first transmissions (drain the RLC buffer)
    uint32_t harq_bits = 0;   // HARQ recoveries (buffer already drained)
  };
  void apply_response(SliceState& slice, const codec::SchedRequest& req,
                      const codec::SchedResponse& resp,
                      std::map<uint32_t, SlotDelivery>& delivered);

  MacConfig config_;
  uint64_t slot_ = 0;
  // Registry handles for slot-level accounting (bound in the constructor;
  // cells share the unlabeled aggregates and additionally feed per-cell
  // `waran_cell_*{cell=}` families, which the fleet telemetry plane
  // (obs/fleet.h) reads for its cell -> gNB -> deployment rollup).
  obs::Counter* m_slots_ = nullptr;
  obs::Counter* m_slot_overruns_ = nullptr;
  obs::Histogram* m_slot_wall_ns_ = nullptr;
  obs::Counter* m_cell_slots_ = nullptr;
  obs::Counter* m_cell_slot_overruns_ = nullptr;
  obs::Histogram* m_cell_slot_wall_ns_ = nullptr;
  uint32_t next_rnti_ = 0x4601;  // srsRAN's first C-RNTI
  std::map<uint32_t, SliceState> slices_;
  std::map<uint32_t, std::unique_ptr<UeContext>> ues_;
  std::unique_ptr<InterSliceScheduler> inter_;
  McsTable mcs_table_ = McsTable::kQam64;
  Xoshiro256 error_rng_{0x5eed};
  std::function<uint64_t()> slot_padding_;
};

}  // namespace waran::ran
