#include "ran/channel.h"

#include <algorithm>
#include <cmath>

namespace waran::ran {

Channel Channel::fading(FadingParams params, uint64_t seed) {
  Channel c;
  c.pinned_ = false;
  c.params_ = params;
  c.rng_ = Xoshiro256(seed);
  c.snr_db_ = params.mean_snr_db;
  c.cqi_ = cqi_from_snr_db(c.snr_db_);
  c.mcs_ = mcs_from_cqi(c.cqi_);
  return c;
}

Channel Channel::pinned_mcs(uint32_t mcs) {
  Channel c;
  c.pinned_ = true;
  c.mcs_ = mcs > kMaxMcs ? kMaxMcs : mcs;
  c.cqi_ = cqi_from_mcs(c.mcs_);
  c.snr_db_ = 0.0;
  return c;
}

void Channel::step() {
  if (pinned_) return;
  // AR(1): x' = mean + rho (x - mean) + sqrt(1 - rho^2) sigma n
  double rho = params_.correlation;
  double innovation = std::sqrt(1.0 - rho * rho) * params_.sigma_db * rng_.normal();
  snr_db_ = params_.mean_snr_db + rho * (snr_db_ - params_.mean_snr_db) + innovation;
  cqi_ = cqi_from_snr_db(snr_db_);
  mcs_ = mcs_from_cqi(cqi_, table_);
}

void Channel::set_mcs_table(McsTable table) {
  table_ = table;
  if (pinned_) {
    mcs_ = std::min(mcs_, max_mcs(table));
    cqi_ = cqi_from_mcs(mcs_, table);
  } else {
    mcs_ = mcs_from_cqi(cqi_, table);
  }
}

double Channel::bler() const {
  if (fixed_bler_ >= 0.0) return fixed_bler_;
  if (pinned_) return 0.0;
  // SNR threshold at which link adaptation would pick this MCS: invert the
  // cqi_from_snr_db ramp (CQI 1 at -6 dB, 2 dB per step).
  double thr_db = -6.0 + 2.0 * (cqi_from_mcs(mcs_, table_) - 1.0);
  double margin = snr_db_ - thr_db;
  return 1.0 / (1.0 + std::exp(2.0 * (margin + 2.0)));
}

}  // namespace waran::ran
