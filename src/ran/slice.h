// Network-slice (MVNO) configuration. Each slice is an MVNO with a target
// cumulative downlink rate negotiated with the MNO (paper §5B: "We
// implemented the MVNOs as network slices with target rates and scheduling
// metrics").
#pragma once

#include <cstdint>
#include <string>

namespace waran::ran {

struct SliceConfig {
  uint32_t slice_id = 0;
  std::string name;
  /// Target cumulative DL rate for the slice (bit/s). The target-rate
  /// inter-slice scheduler provisions PRBs to meet it.
  double target_rate_bps = 0.0;
  /// Relative weight for the weighted-share inter-slice scheduler.
  double weight = 1.0;
};

}  // namespace waran::ran
