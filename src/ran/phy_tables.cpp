#include "ran/phy_tables.h"

#include <algorithm>
#include <cmath>

namespace waran::ran {
namespace {

// 38.214 Table 5.2.2.1-2 (CQI table 1, up to 64QAM): efficiency in
// bits/RE for CQI 1..15; CQI 0 = out of range.
constexpr double kCqiEff64[16] = {
    0.0,     0.1523, 0.2344, 0.3770, 0.6016, 0.8770, 1.1758, 1.4766,
    1.9141,  2.4063, 2.7305, 3.3223, 3.9023, 4.5234, 5.1152, 5.5547};

// 38.214 Table 5.2.2.1-4 (CQI table 2, up to 256QAM).
constexpr double kCqiEff256[16] = {
    0.0,    0.1523, 0.3770, 0.8770, 1.4766, 1.9141, 2.4063, 2.7305,
    3.3223, 3.9023, 4.5234, 5.1152, 5.5547, 6.2266, 6.9141, 7.4063};

// 38.214 Table 5.1.3.1-1 (MCS table 1): {modulation order Qm, code rate
// R x 1024} for MCS 0..28.
struct McsRow {
  uint32_t qm;
  double rate_x1024;
};
constexpr McsRow kMcs64[29] = {
    {2, 120},  {2, 157},  {2, 193},  {2, 251},  {2, 308},  {2, 379},
    {2, 449},  {2, 526},  {2, 602},  {2, 679},  {4, 340},  {4, 378},
    {4, 434},  {4, 490},  {4, 553},  {4, 616},  {4, 658},  {6, 438},
    {6, 466},  {6, 517},  {6, 567},  {6, 616},  {6, 666},  {6, 719},
    {6, 772},  {6, 822},  {6, 873},  {6, 910},  {6, 948}};

// 38.214 Table 5.1.3.1-2 (MCS table 2, 256QAM): MCS 0..27.
constexpr McsRow kMcs256[28] = {
    {2, 120},  {2, 193},  {2, 308},  {2, 449},  {2, 602},  {4, 378},
    {4, 434},  {4, 490},  {4, 553},  {4, 616},  {4, 658},  {6, 466},
    {6, 517},  {6, 567},  {6, 616},  {6, 666},  {6, 719},  {6, 772},
    {6, 822},  {6, 873},  {8, 682.5},{8, 711},  {8, 754},  {8, 797},
    {8, 841},  {8, 885},  {8, 916.5},{8, 948}};

const McsRow& mcs_row(uint32_t mcs, McsTable table) {
  if (table == McsTable::kQam256) return kMcs256[std::min(mcs, max_mcs(table))];
  return kMcs64[std::min(mcs, max_mcs(table))];
}

}  // namespace

uint32_t max_mcs(McsTable table) { return table == McsTable::kQam256 ? 27 : 28; }

double cqi_spectral_efficiency(uint32_t cqi, McsTable table) {
  uint32_t c = std::min(cqi, kMaxCqi);
  return table == McsTable::kQam256 ? kCqiEff256[c] : kCqiEff64[c];
}

double mcs_spectral_efficiency(uint32_t mcs, McsTable table) {
  const McsRow& row = mcs_row(mcs, table);
  return row.qm * row.rate_x1024 / 1024.0;
}

uint32_t mcs_modulation_order(uint32_t mcs, McsTable table) {
  return mcs_row(mcs, table).qm;
}

uint32_t mcs_from_cqi(uint32_t cqi, McsTable table) {
  double target = cqi_spectral_efficiency(cqi, table);
  if (target <= 0.0) return 0;
  // Most efficient MCS not exceeding the CQI's efficiency. The MCS tables
  // are not strictly monotone at modulation switches, so select by
  // efficiency, not index. Very low CQI falls back to MCS 0.
  uint32_t best = 0;
  double best_se = 0.0;
  for (uint32_t m = 0; m <= max_mcs(table); ++m) {
    double se = mcs_spectral_efficiency(m, table);
    if (se <= target + 1e-9 && se > best_se) {
      best = m;
      best_se = se;
    }
  }
  return best;
}

uint32_t cqi_from_mcs(uint32_t mcs, McsTable table) {
  double need = mcs_spectral_efficiency(mcs, table);
  for (uint32_t c = 1; c <= kMaxCqi; ++c) {
    if (cqi_spectral_efficiency(c, table) >= need - 1e-9) return c;
  }
  return kMaxCqi;
}

uint32_t transport_block_bits(uint32_t mcs, uint32_t n_prb, McsTable table) {
  if (n_prb == 0) return 0;
  return static_cast<uint32_t>(
      std::floor(mcs_spectral_efficiency(mcs, table) * kDataResPerPrb * n_prb));
}

uint32_t cqi_from_snr_db(double snr_db) {
  // Linear ramp: CQI 1 at -6 dB, CQI 15 at 22 dB (2 dB per CQI step).
  if (snr_db < -6.0) return 0;
  double cqi = 1.0 + (snr_db + 6.0) / 2.0;
  return std::min<uint32_t>(kMaxCqi, static_cast<uint32_t>(cqi));
}

}  // namespace waran::ran
