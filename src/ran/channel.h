// Per-UE downlink channel model. Two modes:
//   - Fading: first-order Gauss–Markov SNR process around a mean (block
//     fading), quantized to CQI via the PHY tables. This replaces the
//     paper's over-the-air channel between the gNB SDR and the UEs.
//   - Pinned: fixed MCS, as the paper does in Fig. 5b ("3 UEs ... with
//     different MCSs", 20/24/28).
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "ran/phy_tables.h"

namespace waran::ran {

class Channel {
 public:
  struct FadingParams {
    double mean_snr_db = 18.0;
    double sigma_db = 3.0;       ///< stationary std-dev of the SNR process
    double correlation = 0.98;   ///< per-slot AR(1) coefficient
  };

  /// Fading channel with the given seed (deterministic).
  static Channel fading(FadingParams params, uint64_t seed);

  /// Channel pinned to a fixed MCS (never varies).
  static Channel pinned_mcs(uint32_t mcs);

  /// Advances one slot; updates cqi()/mcs().
  void step();

  /// Switches the CQI/MCS table used for link adaptation (RIC-controlled
  /// via set_cqi_table). Pinned channels keep their pinned MCS.
  void set_mcs_table(McsTable table);
  McsTable mcs_table() const { return table_; }

  uint32_t cqi() const { return cqi_; }
  uint32_t mcs() const { return mcs_; }
  double snr_db() const { return snr_db_; }
  bool is_pinned() const { return pinned_; }

  /// Block error probability of a transport block sent at the current MCS
  /// under the current SNR (logistic around the MCS's switching threshold;
  /// ~2% at the link-adaptation operating point, 50% two dB below it).
  /// Pinned channels report 0 unless a fixed BLER was set.
  double bler() const;
  /// Forces a fixed BLER (useful with pinned-MCS channels in tests).
  void set_fixed_bler(double bler) { fixed_bler_ = bler; }

 private:
  Channel() : rng_(0) {}

  bool pinned_ = false;
  FadingParams params_{};
  Xoshiro256 rng_;
  double snr_db_ = 0.0;
  uint32_t cqi_ = 0;
  uint32_t mcs_ = 0;
  McsTable table_ = McsTable::kQam64;
  double fixed_bler_ = -1.0;  // <0: derive from SNR
};

}  // namespace waran::ran
