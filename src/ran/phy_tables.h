// PHY-layer lookup tables, shaped after 3GPP TS 38.214: CQI -> spectral
// efficiency (Table 5.2.2.1-2, 64QAM), MCS -> modulation/code-rate
// (Table 5.1.3.1-1), and a simplified transport-block-size model
//   TBS(mcs, n_prb) = floor(se(mcs) * kDataResPerPrb * n_prb) bits/slot,
// which at MCS 28 over 52 PRBs (10 MHz, 15 kHz SCS — the paper's testbed
// configuration) yields ~45 Mb/s, matching srsRAN's reported DL rates.
#pragma once

#include <cstdint>

namespace waran::ran {

inline constexpr uint32_t kMaxCqi = 15;
inline constexpr uint32_t kMaxMcs = 28;

/// Usable resource elements per PRB per slot after DMRS/PDCCH overhead
/// (12 subcarriers x 14 symbols = 168 REs, ~94% for data).
inline constexpr uint32_t kDataResPerPrb = 158;

/// Which 38.214 CQI/MCS table pair link adaptation uses. kQam256 is the
/// high-end table (MCS 0..27, up to ~7.4 bits/RE) that the RIC can switch a
/// cell to through the set_cqi_table control action (paper §4B names
/// "changing the configuration of the CQI table" as a host function).
enum class McsTable : uint8_t { kQam64 = 0, kQam256 = 1 };

/// Highest valid MCS index in `table` (28 for QAM64, 27 for QAM256).
uint32_t max_mcs(McsTable table);

/// Spectral efficiency (bits per resource element) for a CQI index, 0 for
/// CQI 0 (out of range). CQI is clamped to [0, 15].
double cqi_spectral_efficiency(uint32_t cqi, McsTable table = McsTable::kQam64);

/// Spectral efficiency for an MCS index; MCS clamped to the table maximum.
double mcs_spectral_efficiency(uint32_t mcs, McsTable table = McsTable::kQam64);

/// Modulation order (bits/symbol: 2, 4, 6 or 8) for an MCS index.
uint32_t mcs_modulation_order(uint32_t mcs, McsTable table = McsTable::kQam64);

/// Highest MCS whose spectral efficiency does not exceed the CQI's
/// (the link adaptation the gNB applies to CQI reports). CQI 0 -> MCS 0.
uint32_t mcs_from_cqi(uint32_t cqi, McsTable table = McsTable::kQam64);

/// Lowest CQI able to carry the given MCS (inverse mapping, for tests and
/// for pinning MCS in the Fig. 5b experiment).
uint32_t cqi_from_mcs(uint32_t mcs, McsTable table = McsTable::kQam64);

/// Transport block size in BITS for one slot over `n_prb` PRBs at `mcs`.
uint32_t transport_block_bits(uint32_t mcs, uint32_t n_prb,
                              McsTable table = McsTable::kQam64);

/// SNR (dB) -> CQI mapping used by the channel model. Piecewise-linear
/// thresholds: CQI 1 at ~-6 dB up to CQI 15 at ~22 dB.
uint32_t cqi_from_snr_db(double snr_db);

}  // namespace waran::ran
