#include "ran/traffic.h"

#include <cmath>

namespace waran::ran {

TrafficSource TrafficSource::full_buffer() {
  TrafficSource t;
  t.kind_ = Kind::kFullBuffer;
  return t;
}

TrafficSource TrafficSource::cbr(double bps) {
  TrafficSource t;
  t.kind_ = Kind::kCbr;
  t.bps_ = bps;
  return t;
}

TrafficSource TrafficSource::on_off(double bps, double mean_on_slots,
                                    double mean_off_slots, uint64_t seed) {
  TrafficSource t;
  t.kind_ = Kind::kOnOff;
  t.bps_ = bps;
  t.mean_on_ = mean_on_slots;
  t.mean_off_ = mean_off_slots;
  t.rng_ = Xoshiro256(seed);
  t.on_ = true;
  t.remaining_ = mean_on_slots;
  return t;
}

uint32_t TrafficSource::arrivals_bytes(uint32_t slot_us) {
  switch (kind_) {
    case Kind::kFullBuffer:
      // Enough to keep any conceivable TBS busy.
      return 1 << 20;
    case Kind::kCbr: {
      carry_bytes_ += bps_ * slot_us / 8e6;
      uint32_t whole = static_cast<uint32_t>(carry_bytes_);
      carry_bytes_ -= whole;
      return whole;
    }
    case Kind::kOnOff: {
      remaining_ -= 1.0;
      if (remaining_ <= 0.0) {
        on_ = !on_;
        double mean = on_ ? mean_on_ : mean_off_;
        // Exponential holding time.
        double u = rng_.uniform();
        if (u < 1e-12) u = 1e-12;
        remaining_ = -mean * std::log(u);
      }
      if (!on_) return 0;
      carry_bytes_ += bps_ * slot_us / 8e6;
      uint32_t whole = static_cast<uint32_t>(carry_bytes_);
      carry_bytes_ -= whole;
      return whole;
    }
  }
  return 0;
}

}  // namespace waran::ran
