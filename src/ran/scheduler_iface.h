// Scheduler interfaces the MAC calls into. Implementations live in
// src/sched: native baselines (RR/PF/MT) and the Wasm-plugin bridge —
// swapping between them is exactly the WA-RAN experiment.
#pragma once

#include <cstdint>
#include <vector>

#include "codec/messages.h"
#include "common/result.h"
#include "ran/slice.h"

namespace waran::ran {

/// Intra-slice scheduler: distributes a slice's PRB quota across its UEs.
/// The returned allocations are in priority order; the MAC clamps them to
/// the quota. Called once per slice per slot — the 1 ms deadline applies.
class IntraSliceScheduler {
 public:
  virtual ~IntraSliceScheduler() = default;

  virtual Result<codec::SchedResponse> schedule(const codec::SchedRequest& req) = 0;

  /// Human-readable identity for logs/plots (e.g. "pf", "wasm:pf").
  virtual const char* name() const = 0;
};

/// Inter-slice scheduler: divides the carrier's PRBs among slices.
struct SliceDemand {
  const SliceConfig* config = nullptr;
  uint32_t backlog_bytes = 0;    ///< summed UE buffers in the slice
  double current_rate_bps = 0;   ///< slice throughput over the last second
  uint32_t active_ues = 0;
  /// Mean bits one PRB carries per slot across the slice's active UEs
  /// (0 when idle) — lets target-rate scheduling convert bit/s to PRBs.
  double est_bits_per_prb = 0;
};

class InterSliceScheduler {
 public:
  virtual ~InterSliceScheduler() = default;

  /// Returns PRB quotas, one per entry of `demands`, summing to <= n_prbs.
  virtual std::vector<uint32_t> allocate(uint32_t n_prbs,
                                         const std::vector<SliceDemand>& demands) = 0;

  virtual const char* name() const = 0;
};

}  // namespace waran::ran
