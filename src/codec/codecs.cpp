// Implementations of the four Codec flavours. Field numbering is part of
// each format's schema and documented inline; TLV and PbLite skip unknown
// fields, giving the forward-compatibility the paper's interop story needs
// (a newer plugin can emit fields an older host ignores).
#include "codec/codec.h"

#include <cinttypes>

#include "codec/json.h"
#include "codec/wire.h"
#include "common/bytes.h"

namespace waran::codec {
namespace {

// ---------------------------------------------------------------- Wire ----

class WireCodec final : public Codec {
 public:
  const char* name() const override { return "wire"; }
  std::vector<uint8_t> encode_request(const SchedRequest& req) const override {
    return wire::encode_request(req);
  }
  Result<SchedRequest> decode_request(std::span<const uint8_t> bytes) const override {
    return wire::decode_request(bytes);
  }
  std::vector<uint8_t> encode_response(const SchedResponse& resp) const override {
    return wire::encode_response(resp);
  }
  Result<SchedResponse> decode_response(std::span<const uint8_t> bytes) const override {
    return wire::decode_response(bytes);
  }
};

// ----------------------------------------------------------------- TLV ----
// ASN.1-flavoured tag-length-value. Tags are single bytes; lengths ULEB128.
// Request:  1:slot(u32le) 2:prb_quota(u32le) 3:ue(nested)
//   UE:     1:rnti 2:cqi 3:mcs 4:buffer(u32le) 5:avg(f64le) 6:ach(f64le)
// Response: 1:alloc(nested)  Alloc: 1:rnti 2:prbs (u32le)

void tlv_put_u32(ByteWriter& w, uint8_t tag, uint32_t v) {
  w.u8(tag);
  w.uleb32(4);
  w.u32le(v);
}

void tlv_put_f64(ByteWriter& w, uint8_t tag, double v) {
  w.u8(tag);
  w.uleb32(8);
  w.f64le(v);
}

void tlv_put_nested(ByteWriter& w, uint8_t tag, const ByteWriter& inner) {
  w.u8(tag);
  w.uleb32(static_cast<uint32_t>(inner.size()));
  w.bytes(inner.data());
}

struct TlvField {
  uint8_t tag;
  std::span<const uint8_t> value;
};

Result<TlvField> tlv_next(ByteReader& r) {
  WARAN_TRY(tag, r.u8());
  WARAN_TRY(len, r.uleb32());
  WARAN_TRY(value, r.bytes(len));
  return TlvField{tag, value};
}

Result<uint32_t> tlv_as_u32(const TlvField& f) {
  if (f.value.size() != 4) return Error::decode("tlv: expected 4-byte value");
  ByteReader r(f.value);
  return r.u32le();
}

Result<double> tlv_as_f64(const TlvField& f) {
  if (f.value.size() != 8) return Error::decode("tlv: expected 8-byte value");
  ByteReader r(f.value);
  return r.f64le();
}

class TlvCodec final : public Codec {
 public:
  const char* name() const override { return "tlv"; }

  std::vector<uint8_t> encode_request(const SchedRequest& req) const override {
    ByteWriter w;
    tlv_put_u32(w, 1, req.slot);
    tlv_put_u32(w, 2, req.prb_quota);
    for (const UeInfo& ue : req.ues) {
      ByteWriter inner;
      tlv_put_u32(inner, 1, ue.rnti);
      tlv_put_u32(inner, 2, ue.cqi);
      tlv_put_u32(inner, 3, ue.mcs);
      tlv_put_u32(inner, 4, ue.buffer_bytes);
      tlv_put_u32(inner, 7, ue.tbs_per_prb);
      tlv_put_f64(inner, 5, ue.avg_tput_bps);
      tlv_put_f64(inner, 6, ue.achievable_bps);
      tlv_put_nested(w, 3, inner);
    }
    return w.take();
  }

  Result<SchedRequest> decode_request(std::span<const uint8_t> bytes) const override {
    SchedRequest req;
    ByteReader r(bytes);
    while (!r.at_end()) {
      WARAN_TRY(f, tlv_next(r));
      switch (f.tag) {
        case 1: {
          WARAN_TRY(v, tlv_as_u32(f));
          req.slot = v;
          break;
        }
        case 2: {
          WARAN_TRY(v, tlv_as_u32(f));
          req.prb_quota = v;
          break;
        }
        case 3: {
          WARAN_TRY(ue, decode_ue(f.value));
          req.ues.push_back(ue);
          break;
        }
        default:
          break;  // unknown field: skip (extensibility)
      }
    }
    return req;
  }

  std::vector<uint8_t> encode_response(const SchedResponse& resp) const override {
    ByteWriter w;
    for (const SchedAlloc& a : resp.allocs) {
      ByteWriter inner;
      tlv_put_u32(inner, 1, a.rnti);
      tlv_put_u32(inner, 2, a.prbs);
      tlv_put_nested(w, 1, inner);
    }
    return w.take();
  }

  Result<SchedResponse> decode_response(std::span<const uint8_t> bytes) const override {
    SchedResponse resp;
    ByteReader r(bytes);
    while (!r.at_end()) {
      WARAN_TRY(f, tlv_next(r));
      if (f.tag == 1) {
        SchedAlloc a;
        ByteReader ir(f.value);
        while (!ir.at_end()) {
          WARAN_TRY(g, tlv_next(ir));
          if (g.tag == 1) {
            WARAN_TRY(v, tlv_as_u32(g));
            a.rnti = v;
          } else if (g.tag == 2) {
            WARAN_TRY(v, tlv_as_u32(g));
            a.prbs = v;
          }
        }
        resp.allocs.push_back(a);
      }
    }
    return resp;
  }

 private:
  static Result<UeInfo> decode_ue(std::span<const uint8_t> bytes) {
    UeInfo ue;
    ByteReader r(bytes);
    while (!r.at_end()) {
      WARAN_TRY(f, tlv_next(r));
      switch (f.tag) {
        case 1: { WARAN_TRY(v, tlv_as_u32(f)); ue.rnti = v; break; }
        case 2: { WARAN_TRY(v, tlv_as_u32(f)); ue.cqi = v; break; }
        case 3: { WARAN_TRY(v, tlv_as_u32(f)); ue.mcs = v; break; }
        case 4: { WARAN_TRY(v, tlv_as_u32(f)); ue.buffer_bytes = v; break; }
        case 5: { WARAN_TRY(v, tlv_as_f64(f)); ue.avg_tput_bps = v; break; }
        case 6: { WARAN_TRY(v, tlv_as_f64(f)); ue.achievable_bps = v; break; }
        case 7: { WARAN_TRY(v, tlv_as_u32(f)); ue.tbs_per_prb = v; break; }
        default: break;
      }
    }
    return ue;
  }
};

// ---------------------------------------------------------------- JSON ----

class JsonCodec final : public Codec {
 public:
  const char* name() const override { return "json"; }

  std::vector<uint8_t> encode_request(const SchedRequest& req) const override {
    Json ues = Json::array();
    for (const UeInfo& ue : req.ues) {
      Json o = Json::object();
      o.set("rnti", ue.rnti)
          .set("cqi", ue.cqi)
          .set("mcs", ue.mcs)
          .set("buffer", ue.buffer_bytes)
          .set("tbs_prb", ue.tbs_per_prb)
          .set("avg_tput", ue.avg_tput_bps)
          .set("achievable", ue.achievable_bps);
      ues.push_back(std::move(o));
    }
    Json root = Json::object();
    root.set("slot", req.slot).set("quota", req.prb_quota).set("ues", std::move(ues));
    std::string s = root.dump();
    return {s.begin(), s.end()};
  }

  Result<SchedRequest> decode_request(std::span<const uint8_t> bytes) const override {
    auto root = Json::parse(
        std::string_view(reinterpret_cast<const char*>(bytes.data()), bytes.size()));
    if (!root.ok()) return root.error();
    if (!root->is_object()) return Error::decode("json request: not an object");
    SchedRequest req;
    req.slot = static_cast<uint32_t>((*root)["slot"].as_number());
    req.prb_quota = static_cast<uint32_t>((*root)["quota"].as_number());
    const Json& ues = (*root)["ues"];
    if (!ues.is_array()) return Error::decode("json request: missing ues array");
    for (const Json& u : ues.as_array()) {
      if (!u.is_object()) return Error::decode("json request: ue not an object");
      UeInfo ue;
      ue.rnti = static_cast<uint32_t>(u["rnti"].as_number());
      ue.cqi = static_cast<uint32_t>(u["cqi"].as_number());
      ue.mcs = static_cast<uint32_t>(u["mcs"].as_number());
      ue.buffer_bytes = static_cast<uint32_t>(u["buffer"].as_number());
      ue.tbs_per_prb = static_cast<uint32_t>(u["tbs_prb"].as_number());
      ue.avg_tput_bps = u["avg_tput"].as_number();
      ue.achievable_bps = u["achievable"].as_number();
      req.ues.push_back(ue);
    }
    return req;
  }

  std::vector<uint8_t> encode_response(const SchedResponse& resp) const override {
    Json allocs = Json::array();
    for (const SchedAlloc& a : resp.allocs) {
      Json o = Json::object();
      o.set("rnti", a.rnti).set("prbs", a.prbs);
      allocs.push_back(std::move(o));
    }
    Json root = Json::object();
    root.set("allocs", std::move(allocs));
    std::string s = root.dump();
    return {s.begin(), s.end()};
  }

  Result<SchedResponse> decode_response(std::span<const uint8_t> bytes) const override {
    auto root = Json::parse(
        std::string_view(reinterpret_cast<const char*>(bytes.data()), bytes.size()));
    if (!root.ok()) return root.error();
    SchedResponse resp;
    const Json& allocs = (*root)["allocs"];
    if (!allocs.is_array()) return Error::decode("json response: missing allocs");
    for (const Json& a : allocs.as_array()) {
      resp.allocs.push_back({static_cast<uint32_t>(a["rnti"].as_number()),
                             static_cast<uint32_t>(a["prbs"].as_number())});
    }
    return resp;
  }
};

// -------------------------------------------------------------- PbLite ----
// Protobuf wire format subset: key = (field_no << 3) | wire_type with
// wire_type 0 = varint, 1 = fixed64, 2 = length-delimited.
// Request:  1 slot(varint) 2 quota(varint) 3 ue(msg)
//   UE:     1 rnti 2 cqi 3 mcs 4 buffer (varint) 5 avg 6 ach (fixed64)
// Response: 1 alloc(msg)  Alloc: 1 rnti 2 prbs (varint)

void pb_varint(ByteWriter& w, uint32_t field, uint64_t v) {
  w.uleb((field << 3) | 0);
  w.uleb(v);
}

void pb_fixed64(ByteWriter& w, uint32_t field, double v) {
  w.uleb((field << 3) | 1);
  w.f64le(v);
}

void pb_msg(ByteWriter& w, uint32_t field, const ByteWriter& inner) {
  w.uleb((field << 3) | 2);
  w.uleb32(static_cast<uint32_t>(inner.size()));
  w.bytes(inner.data());
}

struct PbField {
  uint32_t number;
  uint32_t wire_type;
  uint64_t varint = 0;
  double f64 = 0;
  std::span<const uint8_t> bytes;
};

Result<PbField> pb_next(ByteReader& r) {
  WARAN_TRY(key, r.uleb32());
  PbField f;
  f.number = key >> 3;
  f.wire_type = key & 7;
  switch (f.wire_type) {
    case 0: {
      WARAN_TRY(v, r.uleb(64));
      f.varint = v;
      break;
    }
    case 1: {
      WARAN_TRY(v, r.f64le());
      f.f64 = v;
      break;
    }
    case 2: {
      WARAN_TRY(len, r.uleb32());
      WARAN_TRY(b, r.bytes(len));
      f.bytes = b;
      break;
    }
    default:
      return Error::decode("pb: unsupported wire type " + std::to_string(f.wire_type));
  }
  return f;
}

class PbLiteCodec final : public Codec {
 public:
  const char* name() const override { return "pb-lite"; }

  std::vector<uint8_t> encode_request(const SchedRequest& req) const override {
    ByteWriter w;
    pb_varint(w, 1, req.slot);
    pb_varint(w, 2, req.prb_quota);
    for (const UeInfo& ue : req.ues) {
      ByteWriter inner;
      pb_varint(inner, 1, ue.rnti);
      pb_varint(inner, 2, ue.cqi);
      pb_varint(inner, 3, ue.mcs);
      pb_varint(inner, 4, ue.buffer_bytes);
      pb_varint(inner, 7, ue.tbs_per_prb);
      pb_fixed64(inner, 5, ue.avg_tput_bps);
      pb_fixed64(inner, 6, ue.achievable_bps);
      pb_msg(w, 3, inner);
    }
    return w.take();
  }

  Result<SchedRequest> decode_request(std::span<const uint8_t> bytes) const override {
    SchedRequest req;
    ByteReader r(bytes);
    while (!r.at_end()) {
      WARAN_TRY(f, pb_next(r));
      if (f.number == 1 && f.wire_type == 0) {
        req.slot = static_cast<uint32_t>(f.varint);
      } else if (f.number == 2 && f.wire_type == 0) {
        req.prb_quota = static_cast<uint32_t>(f.varint);
      } else if (f.number == 3 && f.wire_type == 2) {
        WARAN_TRY(ue, decode_ue(f.bytes));
        req.ues.push_back(ue);
      }
    }
    return req;
  }

  std::vector<uint8_t> encode_response(const SchedResponse& resp) const override {
    ByteWriter w;
    for (const SchedAlloc& a : resp.allocs) {
      ByteWriter inner;
      pb_varint(inner, 1, a.rnti);
      pb_varint(inner, 2, a.prbs);
      pb_msg(w, 1, inner);
    }
    return w.take();
  }

  Result<SchedResponse> decode_response(std::span<const uint8_t> bytes) const override {
    SchedResponse resp;
    ByteReader r(bytes);
    while (!r.at_end()) {
      WARAN_TRY(f, pb_next(r));
      if (f.number == 1 && f.wire_type == 2) {
        SchedAlloc a;
        ByteReader ir(f.bytes);
        while (!ir.at_end()) {
          WARAN_TRY(g, pb_next(ir));
          if (g.number == 1 && g.wire_type == 0) a.rnti = static_cast<uint32_t>(g.varint);
          if (g.number == 2 && g.wire_type == 0) a.prbs = static_cast<uint32_t>(g.varint);
        }
        resp.allocs.push_back(a);
      }
    }
    return resp;
  }

 private:
  static Result<UeInfo> decode_ue(std::span<const uint8_t> bytes) {
    UeInfo ue;
    ByteReader r(bytes);
    while (!r.at_end()) {
      WARAN_TRY(f, pb_next(r));
      switch (f.number) {
        case 1: ue.rnti = static_cast<uint32_t>(f.varint); break;
        case 2: ue.cqi = static_cast<uint32_t>(f.varint); break;
        case 3: ue.mcs = static_cast<uint32_t>(f.varint); break;
        case 4: ue.buffer_bytes = static_cast<uint32_t>(f.varint); break;
        case 5: ue.avg_tput_bps = f.f64; break;
        case 6: ue.achievable_bps = f.f64; break;
        case 7: ue.tbs_per_prb = static_cast<uint32_t>(f.varint); break;
        default: break;
      }
    }
    return ue;
  }
};

}  // namespace

std::unique_ptr<Codec> make_codec(CodecKind kind) {
  switch (kind) {
    case CodecKind::kWire: return std::make_unique<WireCodec>();
    case CodecKind::kTlv: return std::make_unique<TlvCodec>();
    case CodecKind::kJson: return std::make_unique<JsonCodec>();
    case CodecKind::kPbLite: return std::make_unique<PbLiteCodec>();
  }
  return nullptr;
}

const char* to_string(CodecKind kind) {
  switch (kind) {
    case CodecKind::kWire: return "wire";
    case CodecKind::kTlv: return "tlv";
    case CodecKind::kJson: return "json";
    case CodecKind::kPbLite: return "pb-lite";
  }
  return "?";
}

}  // namespace waran::codec
