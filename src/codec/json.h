// Minimal JSON library (parse + serialize) used by JsonCodec and by the
// RIC communication plugins that choose JSON as their payload encoding.
// Supports the full JSON grammar except surrogate-pair escapes; numbers are
// doubles (adequate for the RAN message schema).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace waran::codec {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;

  Json() : type_(Type::kNull) {}
  Json(std::nullptr_t) : type_(Type::kNull) {}  // NOLINT
  Json(bool b) : type_(Type::kBool), bool_(b) {}  // NOLINT
  Json(double n) : type_(Type::kNumber), num_(n) {}  // NOLINT
  Json(int n) : type_(Type::kNumber), num_(n) {}  // NOLINT
  Json(uint32_t n) : type_(Type::kNumber), num_(n) {}  // NOLINT
  Json(int64_t n) : type_(Type::kNumber), num_(static_cast<double>(n)) {}  // NOLINT
  Json(const char* s) : type_(Type::kString), str_(s) {}  // NOLINT
  Json(std::string s) : type_(Type::kString), str_(std::move(s)) {}  // NOLINT
  Json(Array a) : type_(Type::kArray), arr_(std::move(a)) {}  // NOLINT
  Json(Object o) : type_(Type::kObject), obj_(std::move(o)) {}  // NOLINT

  static Json array() { return Json(Array{}); }
  static Json object() { return Json(Object{}); }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool() const { return bool_; }
  double as_number() const { return num_; }
  const std::string& as_string() const { return str_; }
  const Array& as_array() const { return arr_; }
  Array& as_array() { return arr_; }
  const Object& as_object() const { return obj_; }
  Object& as_object() { return obj_; }

  /// Object field access; returns null Json when absent or not an object.
  const Json& operator[](const std::string& key) const;
  /// Object field insertion (value must be an object).
  Json& set(const std::string& key, Json v);
  /// Array append (value must be an array).
  void push_back(Json v) { arr_.push_back(std::move(v)); }

  size_t size() const {
    if (is_array()) return arr_.size();
    if (is_object()) return obj_.size();
    return 0;
  }

  bool operator==(const Json& other) const;

  /// Compact serialization.
  std::string dump() const;

  static Result<Json> parse(std::string_view text);

 private:
  Type type_;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;
  Array arr_;
  Object obj_;
};

}  // namespace waran::codec
