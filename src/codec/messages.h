// Message schema crossing the gNB <-> plugin boundary (paper §4A):
// the inter-slice scheduler hands the plugin the slice's PRB quota and the
// per-UE state it needs to decide an intra-slice allocation; the plugin
// returns ordered per-UE PRB grants.
#pragma once

#include <cstdint>
#include <vector>

namespace waran::codec {

/// Per-UE state snapshot, as enumerated in the paper: "channel quality,
/// buffer status, long-term throughput, and UE identifiers".
struct UeInfo {
  uint32_t rnti = 0;            ///< UE identifier (C-RNTI)
  uint32_t cqi = 0;             ///< channel quality indicator, 0..15
  uint32_t mcs = 0;             ///< MCS derived from CQI, 0..28
  uint32_t buffer_bytes = 0;    ///< RLC downlink buffer occupancy
  uint32_t tbs_per_prb = 0;     ///< bits one PRB carries this slot at `mcs`
  double avg_tput_bps = 0.0;    ///< long-term (EWMA) throughput
  double achievable_bps = 0.0;  ///< instantaneous rate if given the full quota

  bool operator==(const UeInfo&) const = default;
};

/// Request: one intra-slice scheduling decision for one slot.
struct SchedRequest {
  uint32_t slot = 0;       ///< slot counter (1 ms at 15 kHz SCS)
  uint32_t prb_quota = 0;  ///< PRBs granted to this slice by the inter-slice stage
  std::vector<UeInfo> ues;

  bool operator==(const SchedRequest&) const = default;
};

/// One grant. Order in the response vector is the allocation priority order.
struct SchedAlloc {
  uint32_t rnti = 0;
  uint32_t prbs = 0;

  bool operator==(const SchedAlloc&) const = default;
};

struct SchedResponse {
  std::vector<SchedAlloc> allocs;

  bool operator==(const SchedResponse&) const = default;
};

}  // namespace waran::codec
