// Flat wire format: the layout plugins read directly from linear memory
// with plain i32/f64 loads. Offsets are part of the WA-RAN plugin ABI and
// must match the plugin sources in src/sched/plugins.cpp and the wcc
// standard prologue.
//
// SchedRequest layout (little endian):
//   0  u32 slot
//   4  u32 prb_quota
//   8  u32 n_ues
//   12 UE records, kUeRecordSize bytes each:
//        +0  u32 rnti
//        +4  u32 cqi
//        +8  u32 mcs
//        +12 u32 buffer_bytes
//        +16 u32 tbs_per_prb
//        +20 u32 (pad, keeps the f64 fields 8-aligned)
//        +24 f64 avg_tput_bps
//        +32 f64 achievable_bps
//
// SchedResponse layout:
//   0  u32 n_allocs
//   4  records, kAllocRecordSize bytes each: { u32 rnti, u32 prbs }
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "codec/messages.h"
#include "common/result.h"

namespace waran::codec::wire {

inline constexpr uint32_t kReqHeaderSize = 12;
inline constexpr uint32_t kUeRecordSize = 40;
inline constexpr uint32_t kRespHeaderSize = 4;
inline constexpr uint32_t kAllocRecordSize = 8;

// Field offsets within a UE record.
inline constexpr uint32_t kUeRnti = 0;
inline constexpr uint32_t kUeCqi = 4;
inline constexpr uint32_t kUeMcs = 8;
inline constexpr uint32_t kUeBufferBytes = 12;
inline constexpr uint32_t kUeTbsPerPrb = 16;
inline constexpr uint32_t kUeAvgTput = 24;
inline constexpr uint32_t kUeAchievable = 32;

std::vector<uint8_t> encode_request(const SchedRequest& req);
Result<SchedRequest> decode_request(std::span<const uint8_t> bytes);

std::vector<uint8_t> encode_response(const SchedResponse& resp);
Result<SchedResponse> decode_response(std::span<const uint8_t> bytes);

/// Upper bound of an encoded response for `n_ues` UEs — used to size the
/// plugin output window.
inline constexpr uint32_t response_size(uint32_t n_allocs) {
  return kRespHeaderSize + n_allocs * kAllocRecordSize;
}

}  // namespace waran::codec::wire
