// Pluggable serialization for the plugin boundary. The paper's point (§4B)
// is that WA-RAN lets operators pick "data serialization formats" freely —
// ASN.1, JSON, protobuf — because the codec runs inside/beside the plugin
// rather than being baked into a standardized interface. We provide four:
//
//   WireCodec   — flat little-endian records, the zero-copy layout plugins
//                 read directly out of linear memory (the default).
//   TlvCodec    — tag-length-value, ASN.1-flavoured.
//   JsonCodec   — textual JSON (via the in-repo minimal JSON library).
//   PbLiteCodec — protobuf-style varint field encoding.
//
// bench/abl_serialization compares their costs on this exact schema.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "codec/messages.h"
#include "common/result.h"

namespace waran::codec {

class Codec {
 public:
  virtual ~Codec() = default;

  virtual const char* name() const = 0;

  virtual std::vector<uint8_t> encode_request(const SchedRequest& req) const = 0;
  virtual Result<SchedRequest> decode_request(std::span<const uint8_t> bytes) const = 0;

  virtual std::vector<uint8_t> encode_response(const SchedResponse& resp) const = 0;
  virtual Result<SchedResponse> decode_response(std::span<const uint8_t> bytes) const = 0;
};

enum class CodecKind { kWire, kTlv, kJson, kPbLite };

/// Factory. The returned codec is stateless and thread-compatible.
std::unique_ptr<Codec> make_codec(CodecKind kind);

const char* to_string(CodecKind kind);

}  // namespace waran::codec
