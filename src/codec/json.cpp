#include "codec/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace waran::codec {

namespace {
const Json& null_json() {
  static const Json kNull;
  return kNull;
}
}  // namespace

const Json& Json::operator[](const std::string& key) const {
  if (!is_object()) return null_json();
  auto it = obj_.find(key);
  return it == obj_.end() ? null_json() : it->second;
}

Json& Json::set(const std::string& key, Json v) {
  obj_[key] = std::move(v);
  return *this;
}

bool Json::operator==(const Json& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull: return true;
    case Type::kBool: return bool_ == other.bool_;
    case Type::kNumber: return num_ == other.num_;
    case Type::kString: return str_ == other.str_;
    case Type::kArray: return arr_ == other.arr_;
    case Type::kObject: return obj_ == other.obj_;
  }
  return false;
}

namespace {

void dump_string(const std::string& s, std::string& out) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void dump_number(double d, std::string& out) {
  if (std::isnan(d) || std::isinf(d)) {
    out += "null";  // JSON has no NaN/Inf
    return;
  }
  // Integers print without a fraction; everything else with enough digits
  // to round-trip.
  if (d == std::floor(d) && std::fabs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", d);
    out += buf;
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    out += buf;
  }
}

void dump_value(const Json& v, std::string& out) {
  switch (v.type()) {
    case Json::Type::kNull:
      out += "null";
      break;
    case Json::Type::kBool:
      out += v.as_bool() ? "true" : "false";
      break;
    case Json::Type::kNumber:
      dump_number(v.as_number(), out);
      break;
    case Json::Type::kString:
      dump_string(v.as_string(), out);
      break;
    case Json::Type::kArray: {
      out += '[';
      bool first = true;
      for (const Json& e : v.as_array()) {
        if (!first) out += ',';
        first = false;
        dump_value(e, out);
      }
      out += ']';
      break;
    }
    case Json::Type::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [k, e] : v.as_object()) {
        if (!first) out += ',';
        first = false;
        dump_string(k, out);
        out += ':';
        dump_value(e, out);
      }
      out += '}';
      break;
    }
  }
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Json> run() {
    auto v = value();
    if (!v.ok()) return v;
    skip_ws();
    if (pos_ != text_.size()) return err("trailing characters");
    return v;
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
  int depth_ = 0;
  static constexpr int kMaxDepth = 128;

  Error err(const std::string& msg) const {
    return Error::decode("json at offset " + std::to_string(pos_) + ": " + msg);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_word(std::string_view w) {
    if (text_.substr(pos_, w.size()) == w) {
      pos_ += w.size();
      return true;
    }
    return false;
  }

  Result<Json> value() {
    skip_ws();
    if (pos_ >= text_.size()) return err("unexpected end of input");
    if (++depth_ > kMaxDepth) return err("nesting too deep");
    struct DepthGuard {
      int& d;
      ~DepthGuard() { --d; }
    } guard{depth_};

    char c = text_[pos_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') {
      auto s = string();
      if (!s.ok()) return s.error();
      return Json(std::move(*s));
    }
    if (consume_word("true")) return Json(true);
    if (consume_word("false")) return Json(false);
    if (consume_word("null")) return Json(nullptr);
    if (c == '-' || (c >= '0' && c <= '9')) return number();
    return err(std::string("unexpected character '") + c + "'");
  }

  Result<Json> number() {
    size_t start = pos_;
    if (consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    double d = 0;
    auto [ptr, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, d);
    if (ec != std::errc() || ptr != text_.data() + pos_) return err("bad number");
    return Json(d);
  }

  Result<std::string> string() {
    if (!consume('"')) return err("expected string");
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) return err("truncated escape");
        char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return err("truncated \\u escape");
            unsigned v = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              v <<= 4;
              if (h >= '0' && h <= '9') {
                v |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                v |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                v |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return err("bad hex digit in \\u escape");
              }
            }
            // Encode as UTF-8 (BMP only; surrogate pairs unsupported).
            if (v < 0x80) {
              out += static_cast<char>(v);
            } else if (v < 0x800) {
              out += static_cast<char>(0xc0 | (v >> 6));
              out += static_cast<char>(0x80 | (v & 0x3f));
            } else {
              out += static_cast<char>(0xe0 | (v >> 12));
              out += static_cast<char>(0x80 | ((v >> 6) & 0x3f));
              out += static_cast<char>(0x80 | (v & 0x3f));
            }
            break;
          }
          default:
            return err("bad escape");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return err("raw control character in string");
      } else {
        out += c;
      }
    }
    return err("unterminated string");
  }

  Result<Json> array() {
    consume('[');
    Json::Array arr;
    skip_ws();
    if (consume(']')) return Json(std::move(arr));
    while (true) {
      auto v = value();
      if (!v.ok()) return v;
      arr.push_back(std::move(*v));
      skip_ws();
      if (consume(']')) return Json(std::move(arr));
      if (!consume(',')) return err("expected ',' or ']'");
    }
  }

  Result<Json> object() {
    consume('{');
    Json::Object obj;
    skip_ws();
    if (consume('}')) return Json(std::move(obj));
    while (true) {
      skip_ws();
      auto k = string();
      if (!k.ok()) return k.error();
      skip_ws();
      if (!consume(':')) return err("expected ':'");
      auto v = value();
      if (!v.ok()) return v;
      obj[std::move(*k)] = std::move(*v);
      skip_ws();
      if (consume('}')) return Json(std::move(obj));
      if (!consume(',')) return err("expected ',' or '}'");
    }
  }
};

}  // namespace

std::string Json::dump() const {
  std::string out;
  dump_value(*this, out);
  return out;
}

Result<Json> Json::parse(std::string_view text) {
  Parser p(text);
  return p.run();
}

}  // namespace waran::codec
