#include "codec/wire.h"

#include "common/bytes.h"

namespace waran::codec::wire {

std::vector<uint8_t> encode_request(const SchedRequest& req) {
  ByteWriter w;
  w.u32le(req.slot);
  w.u32le(req.prb_quota);
  w.u32le(static_cast<uint32_t>(req.ues.size()));
  for (const UeInfo& ue : req.ues) {
    w.u32le(ue.rnti);
    w.u32le(ue.cqi);
    w.u32le(ue.mcs);
    w.u32le(ue.buffer_bytes);
    w.u32le(ue.tbs_per_prb);
    w.u32le(0);  // padding: keep f64 fields 8-aligned in plugin memory
    w.f64le(ue.avg_tput_bps);
    w.f64le(ue.achievable_bps);
  }
  return w.take();
}

Result<SchedRequest> decode_request(std::span<const uint8_t> bytes) {
  ByteReader r(bytes);
  SchedRequest req;
  WARAN_TRY(slot, r.u32le());
  WARAN_TRY(quota, r.u32le());
  WARAN_TRY(n, r.u32le());
  req.slot = slot;
  req.prb_quota = quota;
  if (static_cast<uint64_t>(n) * kUeRecordSize > r.remaining()) {
    return Error::decode("wire request: UE count exceeds payload");
  }
  req.ues.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    UeInfo ue;
    WARAN_TRY(rnti, r.u32le());
    WARAN_TRY(cqi, r.u32le());
    WARAN_TRY(mcs, r.u32le());
    WARAN_TRY(buf, r.u32le());
    WARAN_TRY(tbs, r.u32le());
    WARAN_CHECK_OK(r.skip(4));  // padding
    WARAN_TRY(avg, r.f64le());
    WARAN_TRY(ach, r.f64le());
    ue.rnti = rnti;
    ue.cqi = cqi;
    ue.mcs = mcs;
    ue.buffer_bytes = buf;
    ue.tbs_per_prb = tbs;
    ue.avg_tput_bps = avg;
    ue.achievable_bps = ach;
    req.ues.push_back(ue);
  }
  if (!r.at_end()) return Error::decode("wire request: trailing bytes");
  return req;
}

std::vector<uint8_t> encode_response(const SchedResponse& resp) {
  ByteWriter w;
  w.u32le(static_cast<uint32_t>(resp.allocs.size()));
  for (const SchedAlloc& a : resp.allocs) {
    w.u32le(a.rnti);
    w.u32le(a.prbs);
  }
  return w.take();
}

Result<SchedResponse> decode_response(std::span<const uint8_t> bytes) {
  ByteReader r(bytes);
  SchedResponse resp;
  WARAN_TRY(n, r.u32le());
  if (static_cast<uint64_t>(n) * kAllocRecordSize > r.remaining()) {
    return Error::decode("wire response: alloc count exceeds payload");
  }
  resp.allocs.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    WARAN_TRY(rnti, r.u32le());
    WARAN_TRY(prbs, r.u32le());
    resp.allocs.push_back({rnti, prbs});
  }
  // Trailing bytes are tolerated: the plugin output window may be larger
  // than the payload it wrote.
  return resp;
}

}  // namespace waran::codec::wire
