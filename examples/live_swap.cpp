// Live scheduler swap (the paper's §5C flexibility experiment as a story):
// an MVNO changes its scheduling policy three times while its UEs stream —
// the gNB never stops, no UE reattaches, and a botched upload is rejected
// without touching the running scheduler.
//
// Run: ./build/examples/live_swap
#include <cstdio>
#include <memory>

#include "plugin/manager.h"
#include "ran/mac.h"
#include "sched/native.h"
#include "sched/plugins.h"
#include "sched/wasm_sched.h"

using namespace waran;

int main() {
  ran::MacConfig cfg;
  cfg.pf_time_constant_slots = 2000;
  ran::GnbMac mac(cfg);
  mac.set_inter_scheduler(std::make_unique<sched::TargetRateInterScheduler>(1000.0));

  plugin::PluginManager mgr;
  auto mt = sched::plugins::scheduler("mt");
  if (!mt.ok() || !mgr.install("mvno", *mt).ok()) return 1;

  ran::SliceConfig slice;
  slice.slice_id = 1;
  slice.target_rate_bps = 22e6;
  mac.add_slice(slice, std::make_unique<sched::WasmIntraScheduler>(mgr, "mvno"));

  const uint32_t mcs[] = {20, 24, 28};
  uint32_t rnti[3];
  for (int i = 0; i < 3; ++i) {
    rnti[i] = mac.add_ue(1, ran::Channel::pinned_mcs(mcs[i]),
                         ran::TrafficSource::full_buffer());
  }

  auto report = [&](const char* label) {
    std::printf("%-34s", label);
    for (int i = 0; i < 3; ++i) {
      std::printf("  MCS%u: %5.2f Mb/s", mcs[i], mac.ue(rnti[i])->rate_bps(mac.now_s()) / 1e6);
    }
    std::printf("\n");
  };

  std::printf("== Phase 1: Maximum Throughput (the paper's starvation case) ==\n");
  if (!mac.run_slots(8000).ok()) return 1;
  report("MT after 8 s");

  std::printf("\n== A corrupt plugin upload is rejected before going live ==\n");
  std::vector<uint8_t> garbage = {0xde, 0xad, 0xbe, 0xef};
  auto bad_swap = mgr.swap("mvno", garbage);
  std::printf("swap(corrupt bytes) -> %s\n",
              bad_swap.ok() ? "UNEXPECTED OK" : bad_swap.error().message.c_str());
  if (!mac.run_slots(1000).ok()) return 1;
  report("old scheduler still serving");

  std::printf("\n== Phase 2: swap to Proportional Fair, mid-stream ==\n");
  auto pf = sched::plugins::scheduler("pf");
  if (!pf.ok() || !mgr.swap("mvno", *pf).ok()) return 1;
  if (!mac.run_slots(2000).ok()) return 1;
  report("PF after 2 s (starved UE revived)");
  if (!mac.run_slots(8000).ok()) return 1;
  report("PF after 10 s");

  std::printf("\n== Phase 3: swap to Round Robin ==\n");
  auto rr = sched::plugins::scheduler("rr");
  if (!rr.ok() || !mgr.swap("mvno", *rr).ok()) return 1;
  if (!mac.run_slots(8000).ok()) return 1;
  report("RR after 8 s (equal PRB shares)");

  const plugin::SlotHealth* h = mgr.health("mvno");
  std::printf("\nslot 'mvno': %llu calls, %llu successful swaps — gNB uptime 100%%,\n"
              "no UE detached, scheduler faults answered by host fallback: %llu\n",
              static_cast<unsigned long long>(h->calls),
              static_cast<unsigned long long>(h->swaps),
              static_cast<unsigned long long>(mac.slice_stats(1)->scheduler_faults));
  return 0;
}
