// Vendor interoperability adapter (the paper's introduction example): two
// vendors implement "the same" CQI reporting interface with different bit
// widths. Instead of either vendor changing closed-source firmware, the
// System Integrator ships a Wasm shim that converts between them — and can
// hot-swap a corrected shim when the conversion rule changes.
//
// Run: ./build/examples/interop_adapter
#include <cstdio>
#include <cstring>

#include "plugin/manager.h"
#include "ric/plugin_sources.h"
#include "wcc/compiler.h"

using namespace waran;

namespace {

// "Vendor A" equipment emits packed reports: u32 n, then n x 3 bytes
// { u16 rnti, u8 cqi }. (Closed source: we can only observe its output.)
std::vector<uint8_t> vendor_a_report() {
  std::vector<uint8_t> out = {3, 0, 0, 0};
  struct {
    uint16_t rnti;
    uint8_t cqi;
  } ues[] = {{0x4601, 255}, {0x4602, 128}, {0x4603, 7}};
  for (auto& ue : ues) {
    out.push_back(ue.rnti & 0xff);
    out.push_back(ue.rnti >> 8);
    out.push_back(ue.cqi);
  }
  return out;
}

// "Vendor B" RIC parses u32 n, then n x 8 bytes { u32 rnti, u32 cqi12 }.
void vendor_b_parse(const std::vector<uint8_t>& bytes) {
  uint32_t n;
  std::memcpy(&n, bytes.data(), 4);
  std::printf("  vendor-B RIC accepted %u report(s):\n", n);
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t rnti, cqi;
    std::memcpy(&rnti, bytes.data() + 4 + i * 8, 4);
    std::memcpy(&cqi, bytes.data() + 8 + i * 8, 4);
    std::printf("    rnti 0x%04x  cqi12 %4u\n", rnti, cqi);
  }
}

}  // namespace

int main() {
  std::printf("== Vendor A (8-bit CQI) -> SI shim plugin -> Vendor B (12-bit) ==\n");
  plugin::PluginManager mgr;
  auto shim = ric::plugin_sources::vendor_widen();
  if (!shim.ok() || !mgr.install("shim", *shim).ok()) {
    std::printf("failed to load shim\n");
    return 1;
  }

  std::vector<uint8_t> a = vendor_a_report();
  std::printf("vendor-A emitted %zu bytes (3-byte packed records)\n", a.size());
  auto b = mgr.call("shim", "widen", a);
  if (!b.ok()) {
    std::printf("shim error: %s\n", b.error().message.c_str());
    return 1;
  }
  vendor_b_parse(*b);

  std::printf("\n== Spec clarification: vendor B wants saturation, not shift ==\n");
  // The SI ships shim v2 without touching either vendor's code: values at
  // the 8-bit ceiling map to the 12-bit ceiling (4095), others scale.
  const char* kShimV2 = R"(
    export fn widen() -> i32 {
      var nb: i32 = input_len();
      input_read(0, 0, nb);
      if (nb < 4) { return 1; }
      var n: i32 = load32(0);
      if (4 + n * 3 > nb) { return 1; }
      var out: i32 = 200000;
      store32(out, n);
      var i: i32 = 0;
      while (i < n) {
        var src: i32 = 4 + i * 3;
        var cqi: i32 = load8u(src + 2);
        var wide: i32 = (cqi * 4095) / 255;   // scale with saturation at top
        store32(out + 4 + i * 8, load16u(src));
        store32(out + 8 + i * 8, wide);
        i = i + 1;
      }
      output_write(out, 4 + n * 8);
      return 0;
    }
  )";
  auto v2 = wcc::compile(kShimV2);
  if (!v2.ok() || !mgr.swap("shim", *v2).ok()) {
    std::printf("failed to hot-swap shim v2\n");
    return 1;
  }
  auto b2 = mgr.call("shim", "widen", a);
  if (!b2.ok()) return 1;
  vendor_b_parse(*b2);

  std::printf("\n== Malformed vendor traffic cannot cross the shim ==\n");
  std::vector<uint8_t> truncated = {100, 0, 0, 0, 1, 2};  // claims 100 records
  auto rejected = mgr.call("shim", "widen", truncated);
  std::printf("truncated report -> %s\n",
              rejected.ok() ? "UNEXPECTED OK" : "rejected inside the sandbox");
  std::printf("\nneither vendor recompiled anything; the SI owned the whole fix.\n");
  return 0;
}
