// Quickstart: the WA-RAN plugin pipeline in one page.
//
//   1. Write a plugin in W (the bundled plugin language).
//   2. Compile it to WebAssembly with wcc.
//   3. Load it into the sandbox with resource limits.
//   4. Call it through the input/output ABI.
//   5. Watch a buggy update get contained, then hot-swap a fix.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <cstdio>
#include <cstring>

#include "plugin/manager.h"
#include "wcc/compiler.h"

using namespace waran;

int main() {
  // 1-2. A toy "scheduler": reads N bytes, returns their sum. Compiled from
  // W source to wasm bytes in-process — no external toolchain.
  const char* kPluginSource = R"(
    export fn run() -> i32 {
      var n: i32 = input_len();
      input_read(0, 0, n);
      var sum: i32 = 0;
      var i: i32 = 0;
      while (i < n) {
        sum = sum + load8u(i);
        i = i + 1;
      }
      store32(4096, sum);
      output_write(4096, 4);
      return 0;
    }
  )";
  auto module_bytes = wcc::compile(kPluginSource);
  if (!module_bytes.ok()) {
    std::printf("compile error: %s\n", module_bytes.error().message.c_str());
    return 1;
  }
  std::printf("compiled plugin: %zu bytes of wasm\n", module_bytes->size());

  // 3. Load under a fuel budget (the 5G slot deadline in miniature).
  plugin::PluginLimits limits;
  limits.fuel_per_call = 100'000;
  plugin::PluginManager manager(limits);
  if (auto st = manager.install("demo", *module_bytes); !st.ok()) {
    std::printf("install error: %s\n", st.error().message.c_str());
    return 1;
  }

  // 4. Call through the ABI.
  std::vector<uint8_t> input = {10, 20, 30, 40};
  auto output = manager.call("demo", "run", input);
  if (!output.ok()) {
    std::printf("call error: %s\n", output.error().message.c_str());
    return 1;
  }
  int32_t sum;
  std::memcpy(&sum, output->data(), 4);
  std::printf("plugin computed sum(10,20,30,40) = %d\n", sum);

  // 5a. A "vendor update" ships a bug: out-of-bounds access. The sandbox
  // catches it; the host keeps running.
  auto buggy = wcc::compile("export fn run() -> i32 { return load32(-8); }");
  if (auto st = manager.swap("demo", *buggy); !st.ok()) {
    std::printf("swap error: %s\n", st.error().message.c_str());
    return 1;
  }
  auto crash = manager.call("demo", "run", input);
  std::printf("buggy update contained: %s\n",
              crash.ok() ? "UNEXPECTED SUCCESS" : crash.error().message.c_str());

  // 5b. Hot-swap the fix — no restart, state machine keeps going.
  if (auto st = manager.swap("demo", *module_bytes); !st.ok()) {
    std::printf("swap error: %s\n", st.error().message.c_str());
    return 1;
  }
  auto healed = manager.call("demo", "run", input);
  std::memcpy(&sum, healed->data(), 4);
  std::printf("after hot-swap, plugin works again: sum = %d\n", sum);
  std::printf("slot health: %llu calls, %llu faults, %llu swaps\n",
              static_cast<unsigned long long>(manager.health("demo")->calls),
              static_cast<unsigned long long>(manager.health("demo")->faults),
              static_cast<unsigned long long>(manager.health("demo")->swaps));
  return 0;
}
