// Write-your-own-policy walkthrough: the workflow the paper's MVNO story
// enables. An operator invents a "latency-tier" scheduler — premium UEs
// (identified by an RNTI range) are always drained first, best-effort UEs
// split the remainder round-robin — writes it in W, ships it as a plugin,
// and A/B-tests it against plain RR on the same traffic, live.
//
// No gNB code was modified to add this policy; that is the WA-RAN pitch.
//
// Run: ./build/examples/custom_policy
#include <cstdio>
#include <memory>

#include "plugin/manager.h"
#include "ran/mac.h"
#include "sched/native.h"
#include "sched/wasm_sched.h"
#include "wcc/compiler.h"

using namespace waran;

namespace {

// The operator's novel policy, authored in W against the documented wire
// layout (doc/wcc.md). Premium = RNTI < 0x4700.
constexpr char kLatencyTierSource[] = R"(
fn prbs_to_drain(buffer: i32, tbs: i32) -> i32 {
  return i32((i64(buffer) * i64(8) + i64(tbs) - i64(1)) / i64(tbs));
}

export fn schedule() -> i32 {
  var nb: i32 = input_len();
  input_read(0, 0, nb);
  var slot: i32 = load32(0);
  var quota: i32 = load32(4);
  var n: i32 = load32(8);
  var out: i32 = 200000;
  var count: i32 = 0;
  var remaining: i32 = quota;

  // Pass 1: drain premium UEs (RNTI < 0x4700) completely, first.
  var i: i32 = 0;
  while (i < n && remaining > 0) {
    var rec: i32 = 12 + i * 40;
    if (load32(rec) < 18176 && load32(rec + 12) > 0 && load32(rec + 16) > 0) {
      var grant: i32 = prbs_to_drain(load32(rec + 12), load32(rec + 16));
      if (grant > remaining) { grant = remaining; }
      store32(out + 4 + count * 8, load32(rec));
      store32(out + 4 + count * 8 + 4, grant);
      count = count + 1;
      remaining = remaining - grant;
    }
    i = i + 1;
  }

  // Pass 2: best-effort UEs share what is left, round-robin style.
  var n_be: i32 = 0;
  i = 0;
  while (i < n) {
    var rec2: i32 = 12 + i * 40;
    if (load32(rec2) >= 18176 && load32(rec2 + 12) > 0) { n_be = n_be + 1; }
    i = i + 1;
  }
  if (n_be > 0 && remaining > 0) {
    var share: i32 = remaining / n_be;
    var extra: i32 = remaining % n_be;
    var k: i32 = 0;
    i = 0;
    while (i < n) {
      var rec3: i32 = 12 + i * 40;
      if (load32(rec3) >= 18176 && load32(rec3 + 12) > 0) {
        var prbs: i32 = share;
        if ((k + slot) % n_be < extra) { prbs = prbs + 1; }
        if (prbs > 0) {
          store32(out + 4 + count * 8, load32(rec3));
          store32(out + 4 + count * 8 + 4, prbs);
          count = count + 1;
        }
        k = k + 1;
      }
      i = i + 1;
    }
  }
  store32(out, count);
  output_write(out, 4 + count * 8);
  return 0;
}
)";

struct CellRun {
  double premium_rate;
  double best_effort_rate;
};

CellRun run_policy(std::unique_ptr<ran::IntraSliceScheduler> sched) {
  ran::GnbMac mac(ran::MacConfig{});
  mac.set_inter_scheduler(std::make_unique<sched::WeightedShareInterScheduler>());
  ran::SliceConfig cfg;
  cfg.slice_id = 1;
  mac.add_slice(cfg, std::move(sched));
  // RNTIs are assigned from 0x4601: the first two UEs land in the premium
  // range, the next three are best-effort (>= 0x4700 after re-numbering is
  // not automatic, so attach filler UEs to push RNTIs up).
  uint32_t premium1 = mac.add_ue(1, ran::Channel::pinned_mcs(22),
                                 ran::TrafficSource::cbr(3e6));
  uint32_t premium2 = mac.add_ue(1, ran::Channel::pinned_mcs(18),
                                 ran::TrafficSource::cbr(3e6));
  // Best-effort heavy hitters: force their RNTIs past 0x4700.
  std::vector<uint32_t> be;
  while (true) {
    uint32_t rnti = mac.add_ue(1, ran::Channel::pinned_mcs(24),
                               ran::TrafficSource::full_buffer());
    if (rnti >= 0x4700) {
      be.push_back(rnti);
      if (be.size() == 2) break;
    } else {
      (void)mac.remove_ue(rnti);
    }
  }
  if (!mac.run_slots(5000).ok()) return {0, 0};
  double now = mac.now_s();
  CellRun result;
  result.premium_rate =
      (mac.ue(premium1)->rate_bps(now) + mac.ue(premium2)->rate_bps(now)) / 1e6;
  result.best_effort_rate =
      (mac.ue(be[0])->rate_bps(now) + mac.ue(be[1])->rate_bps(now)) / 1e6;
  return result;
}

}  // namespace

int main() {
  std::printf("== An operator invents a 'latency-tier' policy in W ==\n");
  auto bytes = wcc::compile(kLatencyTierSource);
  if (!bytes.ok()) {
    std::printf("compile error: %s\n", bytes.error().message.c_str());
    return 1;
  }
  std::printf("compiled to %zu bytes of wasm; deploying as a plugin...\n\n",
              bytes->size());

  plugin::PluginManager mgr;
  if (!mgr.install("latency-tier", *bytes).ok()) return 1;

  std::printf("%-22s %22s %22s\n", "policy", "premium CBR [Mb/s]",
              "best-effort [Mb/s]");
  CellRun baseline = run_policy(std::make_unique<sched::RrScheduler>());
  std::printf("%-22s %22.2f %22.2f\n", "rr (baseline)", baseline.premium_rate,
              baseline.best_effort_rate);
  CellRun custom = run_policy(
      std::make_unique<sched::WasmIntraScheduler>(mgr, "latency-tier"));
  std::printf("%-22s %22.2f %22.2f\n", "latency-tier (wasm)", custom.premium_rate,
              custom.best_effort_rate);

  std::printf("\nRR gives each UE an equal PRB share, wasting the slices the\n"
              "need-limited premium UEs cannot use; the custom policy drains\n"
              "premiums first (same 6 Mb/s guarantee) and hands every leftover\n"
              "PRB to best-effort traffic (+%.0f%% cell utilization).\n",
              100.0 * (custom.best_effort_rate - baseline.best_effort_rate) /
                  (baseline.premium_rate + baseline.best_effort_rate));
  bool premium_protected = custom.premium_rate >= baseline.premium_rate - 0.2 &&
                           custom.premium_rate > 5.5;
  std::printf("premium tier protected: %s\n", premium_protected ? "yes" : "NO");
  return premium_protected ? 0 : 1;
}
