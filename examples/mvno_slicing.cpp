// MVNO slicing example (the paper's §4A use case, end to end):
// an MNO's gNB hosts three MVNOs, each bringing its *own* intra-slice
// scheduler as a Wasm plugin, with targets enforced by the MNO's
// inter-slice scheduler. Shows onboarding, per-slice policy diversity, and
// off-boarding an MVNO at runtime.
//
// Run: ./build/examples/mvno_slicing
#include <cstdio>
#include <memory>

#include "plugin/manager.h"
#include "ran/mac.h"
#include "sched/native.h"
#include "sched/plugins.h"
#include "sched/wasm_sched.h"

using namespace waran;

namespace {

void print_rates(const ran::GnbMac& mac, const char* when) {
  std::printf("%-28s", when);
  for (uint32_t id : mac.slice_ids()) {
    std::printf("  slice %u: %6.2f Mb/s", id, mac.slice_rate_bps(id) / 1e6);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  ran::GnbMac mac(ran::MacConfig{});  // 52 PRB / 10 MHz, 1 ms slots
  mac.set_inter_scheduler(std::make_unique<sched::TargetRateInterScheduler>(1000.0));

  plugin::PluginManager mgr;

  struct Mvno {
    uint32_t slice_id;
    const char* name;
    const char* policy;  // which plugin the MVNO ships
    double target_bps;
    int ues;
  };
  const Mvno mvnos[] = {
      {1, "iot-co", "rr", 4e6, 4},      // IoT operator: fairness
      {2, "stream-co", "mt", 14e6, 3},  // video MVNO: peak throughput
      {3, "fair-co", "pf", 10e6, 3},    // consumer MVNO: proportional fair
  };

  std::printf("== Onboarding three MVNOs with their own Wasm schedulers ==\n");
  for (const Mvno& m : mvnos) {
    auto bytes = sched::plugins::scheduler(m.policy);
    if (!bytes.ok() || !mgr.install(m.name, *bytes).ok()) {
      std::printf("failed to onboard %s\n", m.name);
      return 1;
    }
    ran::SliceConfig slice;
    slice.slice_id = m.slice_id;
    slice.name = m.name;
    slice.target_rate_bps = m.target_bps;
    mac.add_slice(slice, std::make_unique<sched::WasmIntraScheduler>(mgr, m.name));
    for (int u = 0; u < m.ues; ++u) {
      ran::Channel::FadingParams fading;
      fading.mean_snr_db = 14.0 + 2.5 * u;
      mac.add_ue(m.slice_id, ran::Channel::fading(fading, m.slice_id * 100 + u),
                 ran::TrafficSource::full_buffer());
    }
    std::printf("  %-10s policy=%s target=%.0f Mb/s ues=%d\n", m.name, m.policy,
                m.target_bps / 1e6, m.ues);
  }

  if (auto st = mac.run_slots(10000); !st.ok()) {
    std::printf("MAC error: %s\n", st.error().message.c_str());
    return 1;
  }
  print_rates(mac, "after 10 s");

  // Snapshot fair-co's delivery before topology changes.
  uint64_t fairco_before = 0;
  for (uint32_t rnti : mac.ue_rntis()) {
    if (mac.ue(rnti)->slice_id() == 3) fairco_before += mac.ue(rnti)->delivered_bits();
  }

  std::printf("\n== Off-boarding iot-co (slice removed, plugin unloaded) ==\n");
  for (uint32_t rnti : mac.ue_rntis()) {
    if (mac.ue(rnti)->slice_id() == 1) {
      if (auto st = mac.remove_ue(rnti); !st.ok()) return 1;
    }
  }
  if (auto st = mgr.remove("iot-co"); !st.ok()) {
    std::printf("off-board error: %s\n", st.error().message.c_str());
    return 1;
  }
  if (auto st = mac.run_slots(5000); !st.ok()) return 1;
  print_rates(mac, "5 s after off-boarding");

  uint64_t fairco_after = 0;
  for (uint32_t rnti : mac.ue_rntis()) {
    if (mac.ue(rnti)->slice_id() == 3) fairco_after += mac.ue(rnti)->delivered_bits();
  }
  std::printf("\nfair-co kept flowing throughout (%llu -> %llu bits delivered)\n",
              static_cast<unsigned long long>(fairco_before),
              static_cast<unsigned long long>(fairco_after));

  for (const Mvno& m : mvnos) {
    if (const plugin::SlotHealth* h = mgr.health(m.name)) {
      std::printf("%-10s plugin: %llu scheduling calls, %llu faults\n", m.name,
                  static_cast<unsigned long long>(h->calls),
                  static_cast<unsigned long long>(h->faults));
    }
  }
  return 0;
}
