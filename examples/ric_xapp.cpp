// Near-RT RIC example (the paper's §4B design, Fig. 4): a gNB and a RIC
// from "different vendors" interoperate because the wire protocol lives in
// communication plugins on both sides; xApps run sandboxed in the RIC.
//
//   - the SLA xApp drives a starved slice to its 12 Mb/s target,
//   - the traffic-steering xApp moves a cell-edge UE to a second gNB,
//   - a malicious flood of corrupt frames is absorbed by the comm plugin.
//
// Run: ./build/examples/ric_xapp
#include <cstdio>
#include <memory>

#include "ric/gnb_agent.h"
#include "ric/near_rt_ric.h"
#include "ric/plugin_sources.h"
#include "ric/quota_inter.h"
#include "sched/native.h"

using namespace waran;

namespace {

struct Cell {
  std::unique_ptr<ran::GnbMac> mac;
  ric::QuotaTableInterScheduler* quotas = nullptr;
  std::unique_ptr<ric::GnbAgent> agent;
};

Cell make_cell(uint32_t cell_id, ric::Duplex& link, ric::Duplex::Side side) {
  Cell cell;
  cell.mac = std::make_unique<ran::GnbMac>(ran::MacConfig{});
  auto quotas = std::make_unique<ric::QuotaTableInterScheduler>();
  cell.quotas = quotas.get();
  cell.mac->set_inter_scheduler(std::move(quotas));
  ran::SliceConfig slice;
  slice.slice_id = 1;
  slice.target_rate_bps = 12e6;
  cell.mac->add_slice(slice, std::make_unique<sched::RrScheduler>());
  cell.agent = std::make_unique<ric::GnbAgent>(cell_id, *cell.mac, cell.quotas,
                                               link, side);
  return cell;
}

}  // namespace

int main() {
  // Cell 0 talks to the RIC; cell 1 is the handover target.
  ric::Duplex link;
  Cell cell0 = make_cell(0, link, ric::Duplex::Side::kA);
  ric::NearRtRic ric(link, ric::Duplex::Side::kB);

  ran::GnbMac target_mac(ran::MacConfig{});
  target_mac.set_inter_scheduler(std::make_unique<sched::WeightedShareInterScheduler>());
  ran::SliceConfig tslice;
  tslice.slice_id = 1;
  target_mac.add_slice(tslice, std::make_unique<sched::RrScheduler>());

  auto comm = ric::plugin_sources::comm_framing();
  auto ctl = ric::plugin_sources::control_dispatch();
  auto sla = ric::plugin_sources::sla_xapp();
  auto steer = ric::plugin_sources::steer_xapp();
  if (!comm.ok() || !ctl.ok() || !sla.ok() || !steer.ok()) return 1;
  if (!cell0.agent->load_comm_plugin(*comm).ok()) return 1;
  if (!cell0.agent->load_control_plugin(*ctl).ok()) return 1;
  if (!ric.load_comm_plugin(*comm).ok()) return 1;
  if (!ric.add_xapp("sla", *sla).ok()) return 1;
  if (!ric.add_xapp("steer", *steer).ok()) return 1;

  // Handover: the simulator's "X2": move the UE between MAC instances.
  cell0.agent->set_handover_handler([&](uint32_t rnti, uint32_t target_cell) {
    std::printf("  [HO] RIC ordered handover of rnti 0x%x to cell %u\n", rnti,
                target_cell);
    (void)cell0.mac->remove_ue(rnti);
    target_mac.add_ue(1, ran::Channel::pinned_mcs(26), ran::TrafficSource::full_buffer());
  });

  // Two UEs: one healthy, one drifting toward the neighbor cell.
  uint32_t healthy = cell0.mac->add_ue(1, ran::Channel::pinned_mcs(26),
                                       ran::TrafficSource::full_buffer());
  uint32_t edge = cell0.mac->add_ue(1, ran::Channel::pinned_mcs(12),
                                    ran::TrafficSource::full_buffer());
  cell0.agent->set_ue_radio(healthy, {-75, -110, 1});
  cell0.agent->set_ue_radio(edge, {-101, -88, 1});  // neighbor is 13 dB better

  cell0.quotas->set_quota(1, 3);  // start the slice starved
  std::printf("== Closed loop: SLA xApp raises quota; steering xApp hands over ==\n");
  for (int round = 1; round <= 40; ++round) {
    if (!cell0.mac->run_slots(100).ok()) return 1;
    if (!cell0.agent->send_indication().ok()) return 1;
    if (!ric.poll().ok()) return 1;
    if (!cell0.agent->poll().ok()) return 1;
    if (round % 10 == 0) {
      std::printf("round %2d: slice rate %.2f Mb/s (target 12), "
                  "quota updates so far: %llu\n",
                  round, cell0.mac->slice_rate_bps(1) / 1e6,
                  static_cast<unsigned long long>(cell0.agent->stats().quota_updates));
    }
  }
  std::printf("handovers executed: %llu (edge UE now lives in cell 1: %zu UEs)\n",
              static_cast<unsigned long long>(cell0.agent->stats().handovers),
              target_mac.ue_rntis().size());

  std::printf("\n== Adversary floods the RIC with corrupted frames ==\n");
  link.add_fault_stage([](std::vector<uint8_t>& frame, ric::Duplex::Side) {
    if (frame.size() > 14) frame[14] ^= 0x5a;  // corrupt every frame
    return ric::Duplex::Fault{ric::Duplex::FaultAction::kCorrupt};
  });
  for (int i = 0; i < 20; ++i) {
    if (!cell0.mac->run_slots(10).ok()) return 1;
    if (!cell0.agent->send_indication().ok()) return 1;
    if (!ric.poll().ok()) return 1;
  }
  link.clear_fault_stages();
  std::printf("frames rejected inside the RIC's comm-plugin sandbox: %llu "
              "(host parser untouched)\n",
              static_cast<unsigned long long>(ric.stats().frames_rejected));
  std::printf("RIC still healthy: %llu indications processed, %llu xApp faults\n",
              static_cast<unsigned long long>(ric.stats().indications_processed),
              static_cast<unsigned long long>(ric.stats().xapp_faults));
  return 0;
}
