// waranc — the WA-RAN plugin toolchain CLI (paper §6D: a Wasm toolchain
// tailored to 5G RAN development).
//
//   waranc build  plugin.w [-o plugin.wasm] [--no-opt]   compile W -> wasm
//   waranc check  plugin.wasm                            decode + validate
//                                                        (the MNO's pre-deployment
//                                                        static analysis, §3A)
//   waranc dump   plugin.wasm [--tiers]                  disassemble
//                                                        (--tiers: tier-1 vs
//                                                        tier-2 micro-op
//                                                        streams side by side)
//   waranc asm    plugin.wat [-o plugin.wasm]            assemble WAT text
//   waranc run    plugin.wasm EXPORT [--input-hex BYTES] [--fuel N]
//                                                        execute through the
//                                                        plugin ABI, print the
//                                                        output as hex
//   waranc analyze plugin.wasm [--fuel N] [--depth N]    static verification +
//                                                        per-function worst-case
//                                                        bounds + the admission
//                                                        verdict a PluginManager
//                                                        would reach
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "analysis/analysis.h"
#include "plugin/plugin.h"
#include "wasm/disasm.h"
#include "wasmbuilder/wat.h"
#include "wasm/wasm.h"
#include "wcc/compiler.h"

namespace {

using namespace waran;

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  waranc build plugin.w [-o out.wasm] [--no-opt]\n"
               "  waranc check plugin.wasm\n"
               "  waranc dump plugin.wasm [--tiers]\n"
               "  waranc asm plugin.wat [-o out.wasm]\n"
               "  waranc run plugin.wasm EXPORT [--input-hex BYTES] [--fuel N]\n"
               "  waranc analyze plugin.wasm [--fuel N] [--depth N]\n");
  return 2;
}

std::optional<std::vector<uint8_t>> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

bool write_file(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(out);
}

std::optional<std::vector<uint8_t>> parse_hex(const std::string& hex) {
  if (hex.size() % 2 != 0) return std::nullopt;
  std::vector<uint8_t> out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    auto nibble = [](char c) -> int {
      if (c >= '0' && c <= '9') return c - '0';
      if (c >= 'a' && c <= 'f') return c - 'a' + 10;
      if (c >= 'A' && c <= 'F') return c - 'A' + 10;
      return -1;
    };
    int hi = nibble(hex[i]), lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    out.push_back(static_cast<uint8_t>((hi << 4) | lo));
  }
  return out;
}

int cmd_build(int argc, char** argv) {
  std::string input, output;
  wcc::CompileOptions options;
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "-o" && i + 1 < argc) {
      output = argv[++i];
    } else if (arg == "--no-opt") {
      options.optimize = false;
    } else if (!arg.empty() && arg[0] != '-') {
      input = arg;
    } else {
      return usage();
    }
  }
  if (input.empty()) return usage();
  if (output.empty()) {
    output = input;
    size_t dot = output.rfind('.');
    if (dot != std::string::npos) output.resize(dot);
    output += ".wasm";
  }
  auto source = read_file(input);
  if (!source) {
    std::fprintf(stderr, "waranc: cannot read %s\n", input.c_str());
    return 1;
  }
  auto bytes = wcc::compile(
      std::string_view(reinterpret_cast<const char*>(source->data()), source->size()),
      options);
  if (!bytes.ok()) {
    std::fprintf(stderr, "%s\n", bytes.error().message.c_str());
    return 1;
  }
  if (!write_file(output, *bytes)) {
    std::fprintf(stderr, "waranc: cannot write %s\n", output.c_str());
    return 1;
  }
  std::printf("%s: %zu bytes\n", output.c_str(), bytes->size());
  return 0;
}

Result<wasm::Module> load_module(const std::string& path) {
  auto bytes = read_file(path);
  if (!bytes) return Error::not_found("cannot read " + path);
  WARAN_TRY(module, wasm::decode_module(*bytes));
  WARAN_CHECK_OK(wasm::validate_module(module));
  return std::move(module);
}

int cmd_check(const std::string& path) {
  auto module = load_module(path);
  if (!module.ok()) {
    std::printf("REJECTED: %s\n", module.error().message.c_str());
    return 1;
  }
  std::printf("OK: %u function(s), %zu export(s), memory %s\n",
              module->num_funcs(), module->exports.size(),
              module->has_memory() ? "present" : "absent");
  for (const wasm::Export& e : module->exports) {
    if (e.kind == wasm::ImportKind::kFunc) {
      std::printf("  export %s: %s\n", e.name.c_str(),
                  to_string(module->func_type(e.index)).c_str());
    }
  }
  for (const wasm::Import& imp : module->imports) {
    std::printf("  import %s.%s\n", imp.module.c_str(), imp.name.c_str());
  }
  return 0;
}

// Two listings printed as columns: tier-1 left, tier-2 right. The charge
// annotations line up, making merged segments and collapsed chains obvious.
void print_side_by_side(const std::string& left, const std::string& right) {
  auto split = [](const std::string& s) {
    std::vector<std::string> lines;
    size_t start = 0;
    while (start < s.size()) {
      size_t end = s.find('\n', start);
      if (end == std::string::npos) end = s.size();
      lines.push_back(s.substr(start, end - start));
      start = end + 1;
    }
    return lines;
  };
  const std::vector<std::string> l = split(left);
  const std::vector<std::string> r = split(right);
  size_t width = 0;
  for (const std::string& line : l) width = std::max(width, line.size());
  width += 2;
  for (size_t i = 0; i < std::max(l.size(), r.size()); ++i) {
    const std::string& lv = i < l.size() ? l[i] : std::string();
    const std::string& rv = i < r.size() ? r[i] : std::string();
    std::printf("%-*s | %s\n", static_cast<int>(width), lv.c_str(), rv.c_str());
  }
}

int cmd_dump(int argc, char** argv) {
  std::string path;
  bool tiers = false;
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--tiers") {
      tiers = true;
    } else if (path.empty()) {
      path = std::move(arg);
    } else {
      return usage();
    }
  }
  if (path.empty()) return usage();
  auto module = load_module(path);
  if (!module.ok()) {
    std::fprintf(stderr, "waranc: %s\n", module.error().message.c_str());
    return 1;
  }
  if (!tiers) {
    std::fputs(wasm::disassemble(*module).c_str(), stdout);
    return 0;
  }
  for (size_t i = 0; i < module->codes.size(); ++i) {
    const uint32_t di = static_cast<uint32_t>(i);
    print_side_by_side(wasm::disassemble_translated(*module, di),
                       wasm::disassemble_specialized(*module, di));
    std::printf("\n");
  }
  return 0;
}

int cmd_asm(int argc, char** argv) {
  std::string input, output;
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "-o" && i + 1 < argc) {
      output = argv[++i];
    } else if (!arg.empty() && arg[0] != '-') {
      input = arg;
    } else {
      return usage();
    }
  }
  if (input.empty()) return usage();
  if (output.empty()) {
    output = input;
    size_t dot = output.rfind('.');
    if (dot != std::string::npos) output.resize(dot);
    output += ".wasm";
  }
  auto text = read_file(input);
  if (!text) {
    std::fprintf(stderr, "waranc: cannot read %s\n", input.c_str());
    return 1;
  }
  auto bytes = wasmbuilder::assemble_wat(
      std::string_view(reinterpret_cast<const char*>(text->data()), text->size()));
  if (!bytes.ok()) {
    std::fprintf(stderr, "%s\n", bytes.error().message.c_str());
    return 1;
  }
  // The SI gate: everything assembled must validate before shipping.
  auto module = wasm::decode_module(*bytes);
  if (!module.ok()) {
    std::fprintf(stderr, "waranc: assembled module malformed: %s\n",
                 module.error().message.c_str());
    return 1;
  }
  if (auto st = wasm::validate_module(*module); !st.ok()) {
    std::fprintf(stderr, "waranc: assembled module invalid: %s\n",
                 st.error().message.c_str());
    return 1;
  }
  if (!write_file(output, *bytes)) {
    std::fprintf(stderr, "waranc: cannot write %s\n", output.c_str());
    return 1;
  }
  std::printf("%s: %zu bytes\n", output.c_str(), bytes->size());
  return 0;
}

int cmd_run(int argc, char** argv) {
  if (argc < 2) return usage();
  std::string path = argv[0];
  std::string entry = argv[1];
  std::vector<uint8_t> input;
  plugin::PluginLimits limits;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--input-hex" && i + 1 < argc) {
      auto parsed = parse_hex(argv[++i]);
      if (!parsed) {
        std::fprintf(stderr, "waranc: bad hex input\n");
        return 1;
      }
      input = std::move(*parsed);
    } else if (arg == "--fuel" && i + 1 < argc) {
      limits.fuel_per_call = std::strtoull(argv[++i], nullptr, 10);
    } else {
      return usage();
    }
  }
  auto bytes = read_file(path);
  if (!bytes) {
    std::fprintf(stderr, "waranc: cannot read %s\n", path.c_str());
    return 1;
  }
  auto plugin = plugin::Plugin::load(*bytes, {}, limits);
  if (!plugin.ok()) {
    std::fprintf(stderr, "waranc: %s\n", plugin.error().message.c_str());
    return 1;
  }
  auto out = (*plugin)->call(entry, input);
  for (const std::string& line : (*plugin)->log_lines()) {
    std::fprintf(stderr, "[plugin] %s\n", line.c_str());
  }
  if (!out.ok()) {
    std::fprintf(stderr, "waranc: call failed: %s\n", out.error().message.c_str());
    return 1;
  }
  for (uint8_t b : *out) std::printf("%02x", b);
  std::printf("\n");
  return 0;
}

std::string bound_str(uint64_t v) {
  return v == analysis::kUnbounded ? "unbounded" : std::to_string(v);
}

// The MNO's admission-time view of a plugin (§3A pre-deployment checks):
// verify the translated streams, print each function's static worst-case
// bounds, then the admission verdict the PluginManager would reach against
// the given slot budget. Exit 0 = admitted.
int cmd_analyze(int argc, char** argv) {
  std::string path;
  analysis::AdmissionLimits budget;
  budget.fuel_per_call = plugin::PluginLimits{}.fuel_per_call;
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--fuel" && i + 1 < argc) {
      budget.fuel_per_call = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--depth" && i + 1 < argc) {
      budget.max_call_depth =
          static_cast<uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (!arg.empty() && arg[0] != '-') {
      path = std::move(arg);
    } else {
      return usage();
    }
  }
  if (path.empty()) return usage();
  // Route our own translation through the verifier too: a translator bug
  // shows up as a firewall error here, not as bogus bounds.
  analysis::install_stream_firewall();
  auto module = load_module(path);
  if (!module.ok()) {
    std::printf("REJECTED: %s\n", module.error().message.c_str());
    return 1;
  }
  auto tm = wasm::translate(*module);
  if (!tm.ok()) {
    std::printf("REJECTED: %s\n", tm.error().message.c_str());
    return 1;
  }
  auto ana = analysis::analyze(*module, **tm);
  if (!ana.ok()) {
    std::printf("REJECTED: %s\n", ana.error().message.c_str());
    return 1;
  }
  std::printf("verified: %zu function stream(s) well-formed\n",
              (*tm)->funcs.size());
  for (size_t i = 0; i < ana->funcs.size(); ++i) {
    const analysis::FuncBounds& b = ana->funcs[i];
    const uint32_t func_index =
        static_cast<uint32_t>(i) + module->num_imported_funcs;
    std::string name;
    for (const wasm::Export& e : module->exports) {
      if (e.kind == wasm::ImportKind::kFunc && e.index == func_index) {
        name = " (" + e.name + ")";
        break;
      }
    }
    std::printf("func %u%s: stack %u, frames [%s, %s], fuel [%s, %s], %s\n",
                func_index, name.c_str(), b.max_operand_depth,
                bound_str(b.min_frames).c_str(), bound_str(b.max_frames).c_str(),
                bound_str(b.min_fuel).c_str(), bound_str(b.worst_fuel).c_str(),
                b.may_loop ? "may loop" : "loop-free");
  }
  analysis::AdmissionReport report = analysis::admit(*module, **tm, budget);
  std::fputs(report.summary().c_str(), stdout);
  return report.admitted ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  std::string cmd = argv[1];
  if (cmd == "build") return cmd_build(argc - 2, argv + 2);
  if (cmd == "check") return cmd_check(argv[2]);
  if (cmd == "dump") return cmd_dump(argc - 2, argv + 2);
  if (cmd == "asm") return cmd_asm(argc - 2, argv + 2);
  if (cmd == "run") return cmd_run(argc - 2, argv + 2);
  if (cmd == "analyze") return cmd_analyze(argc - 2, argv + 2);
  return usage();
}
