// waran_chaos — seeded chaos-campaign runner for the WA-RAN closed loop.
//
//   waran_chaos                        # default campaign (25 episodes)
//   waran_chaos --episodes 200         # CI-sized campaign
//   waran_chaos --seed 1042            # replay ONE episode bit-for-bit
//   waran_chaos --seed 500 --episodes 50 --verbose
//
// A campaign runs episodes with seeds S, S+1, ..., so any failing episode
// it reports replays exactly via `waran_chaos --seed <s>`. Exit status is
// the number of failing episodes (0 = all invariants held). This binary
// installs the counting operator new, so the per-episode warm-path probe
// measures real heap traffic.
//
//   waran_chaos --episodes 200 --virtual-time   # faster-than-real-time CI run
//   waran_chaos --cells 4 --virtual-time        # threaded multi-cell episodes
//
// --virtual-time runs every episode on the rt::Clock virtual clock and
// reports the wall-clock speedup (simulated seconds per real second).
// --cells N > 1 runs each episode against a threaded N-cell deployment.
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "chaos/harness.h"
#include "common/log.h"
#include "rt/clock.h"
#include "tests/heap_probe_guard.h"

namespace {

using namespace waran;

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--seed S] [--episodes N] [--rounds R]\n"
               "          [--slots-per-round K] [--cells C] [--virtual-time]\n"
               "          [--no-probe] [--flight-dir DIR] [--verbose]\n"
               "\n"
               "  --seed S             base seed (default 1); with\n"
               "                       --episodes 1 this replays one episode\n"
               "  --episodes N         consecutive episodes, seeds S..S+N-1\n"
               "                       (default 1 when --seed is given, 25\n"
               "                       otherwise)\n"
               "  --rounds R           E2 report rounds per episode\n"
               "  --slots-per-round K  MAC slots between indications\n"
               "  --cells C            cells per gNB; C > 1 runs each episode\n"
               "                       on a threaded multi-cell deployment\n"
               "  --virtual-time       run on the rt virtual clock (no wall\n"
               "                       pacing) and report the speedup\n"
               "  --no-probe           skip the zero-alloc warm-path probe\n"
               "  --flight-dir DIR     write flight-recorder bundles from\n"
               "                       breaching or failing multicell episodes\n"
               "                       to DIR/flight_<seed>.json\n"
               "  --verbose            print the injection log per episode\n",
               argv0);
}

// Persists a breaching/failing episode's flight bundle; returns the path
// (empty on write failure). The directory must already exist — CI creates
// it, and failing silently here would hide the artifact we need most.
std::string write_flight_bundle(const std::string& dir,
                                const chaos::EpisodeReport& r) {
  std::string path = dir + "/flight_" + std::to_string(r.seed) + ".json";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "flight-dir: cannot write %s\n", path.c_str());
    return {};
  }
  std::fwrite(r.flight_bundle.data(), 1, r.flight_bundle.size(), f);
  std::fclose(f);
  return path;
}

void print_episode(const chaos::EpisodeReport& r, bool with_log) {
  std::printf("%s\n", chaos::summarize(r).c_str());
  if (!with_log) return;
  for (const auto& inj : r.injection_log) {
    std::printf("  #%-4" PRIu64 " %-17s %s\n", inj.seq,
                chaos::to_string(inj.kind), inj.site.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t seed = 1;
  bool seed_given = false;
  bool verbose = false;
  uint32_t episodes = 0;
  std::string flight_dir;
  chaos::EpisodeOptions base;

  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--seed") == 0) {
      seed = std::strtoull(next("--seed"), nullptr, 0);
      seed_given = true;
    } else if (std::strcmp(argv[i], "--episodes") == 0) {
      episodes = static_cast<uint32_t>(std::strtoul(next("--episodes"), nullptr, 0));
    } else if (std::strcmp(argv[i], "--rounds") == 0) {
      base.rounds = static_cast<uint32_t>(std::strtoul(next("--rounds"), nullptr, 0));
    } else if (std::strcmp(argv[i], "--slots-per-round") == 0) {
      base.slots_per_round =
          static_cast<uint32_t>(std::strtoul(next("--slots-per-round"), nullptr, 0));
    } else if (std::strcmp(argv[i], "--cells") == 0) {
      base.cells = static_cast<uint32_t>(std::strtoul(next("--cells"), nullptr, 0));
      if (base.cells == 0) base.cells = 1;
    } else if (std::strcmp(argv[i], "--virtual-time") == 0) {
      base.virtual_time = true;
    } else if (std::strcmp(argv[i], "--no-probe") == 0) {
      base.warm_path_probe = false;
    } else if (std::strcmp(argv[i], "--flight-dir") == 0) {
      flight_dir = next("--flight-dir");
    } else if (std::strcmp(argv[i], "--verbose") == 0 ||
               std::strcmp(argv[i], "-v") == 0) {
      verbose = true;
    } else if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      usage(argv[0]);
      return 2;
    }
  }
  if (episodes == 0) episodes = seed_given ? 1 : 25;
  // Quarantine storms are injected on purpose; keep their [WARN] lines out
  // of campaign output unless the user asked for the blow-by-blow.
  if (!verbose) set_log_level("plugin", LogLevel::kError);

  uint32_t failures = 0;
  uint64_t injections = 0;
  uint64_t anomalies = 0;
  uint64_t total_slots = 0;
  uint64_t slo_breach_windows = 0;
  uint64_t by_kind[chaos::kFaultKindCount] = {};
  // real_ns() reads wall time regardless of clock mode, so the speedup
  // report works while the episodes themselves run on virtual time.
  const uint64_t wall_t0 = waran::rt::Clock::global().real_ns();
  for (uint32_t i = 0; i < episodes; ++i) {
    chaos::EpisodeOptions opts = base;
    opts.seed = seed + i;
    const chaos::EpisodeReport r = chaos::run_episode(opts);
    injections += r.injections;
    anomalies += r.anomalies;
    total_slots += r.slots;
    for (size_t k = 0; k < chaos::kFaultKindCount; ++k) {
      by_kind[k] += r.injected_by_kind[k];
    }
    // A failing episode always dumps its full injection log — that plus the
    // seed is everything needed to replay and debug it.
    if (!r.passed) {
      ++failures;
      print_episode(r, /*with_log=*/true);
      std::printf("  replay: %s --seed %" PRIu64 "\n", argv[0], r.seed);
    } else if (verbose || episodes == 1) {
      print_episode(r, verbose);
    }
    slo_breach_windows += r.slo_breach_windows;
    if (!flight_dir.empty() && !r.flight_bundle.empty() &&
        (!r.passed || r.slo_breaches > 0)) {
      std::string path = write_flight_bundle(flight_dir, r);
      if (!path.empty() && (verbose || !r.passed)) {
        std::printf("  flight bundle: %s\n", path.c_str());
      }
    }
  }

  const uint64_t wall_ns = waran::rt::Clock::global().real_ns() - wall_t0;

  std::printf("campaign: %u episode%s, seeds %" PRIu64 "..%" PRIu64 "\n",
              episodes, episodes == 1 ? "" : "s", seed, seed + episodes - 1);
  std::printf("  injections: %" PRIu64 "   anomalies: %" PRIu64
              "   failures: %u\n",
              injections, anomalies, failures);
  if (base.cells > 1) {
    std::printf("  slo breach windows: %" PRIu64 "\n", slo_breach_windows);
  }
  if (base.virtual_time) {
    // Episodes run at 1 simulated second per MAC slot (slot_us = 1'000'000).
    // total_slots counts every cell's slots; elapsed simulated time is the
    // per-cell slot count, since cells advance in lockstep.
    const double simulated_s =
        static_cast<double>(total_slots) / static_cast<double>(base.cells);
    const double wall_s = static_cast<double>(wall_ns) / 1e9;
    std::printf("  virtual time: %.0f simulated s in %.2f wall s (%.0fx speedup)\n",
                simulated_s, wall_s, wall_s > 0 ? simulated_s / wall_s : 0.0);
  }
  for (size_t k = 0; k < chaos::kFaultKindCount; ++k) {
    if (by_kind[k] == 0) continue;
    std::printf("  %-17s %" PRIu64 "\n",
                chaos::to_string(static_cast<chaos::FaultKind>(k)), by_kind[k]);
  }
  if (failures == 0) std::printf("OK: all invariants held\n");
  return static_cast<int>(failures);
}
