// waran_obs — runs an instrumented scenario and exports the observability
// surfaces: a Chrome trace_event JSON (chrome://tracing / Perfetto), a
// Prometheus text snapshot, a JSON metrics snapshot, and the trap/anomaly
// journal. This is the CLI face of waran::obs and the CI smoke check for
// the whole telemetry pipeline.
//
// Usage:
//   waran_obs --scenario smoke|mvno [--slots N] [--trace FILE]
//             [--prom FILE] [--json FILE] [--check] [--quiet]
//   waran_obs --cells N [--seed S] [--slots N] [--trace FILE] [--prom FILE]
//             [--json FILE] [--flight FILE] [--check] [--quiet]
//
// Scenarios (both are the paper's §4A MVNO-slicing use case wired to a
// near-RT RIC; they differ only in scale):
//   smoke — 3 MVNO slices + RIC closed loop + injected faults, 300 slots.
//           Fast enough for CI; still exercises every instrumented layer.
//   mvno  — same topology, 2000 slots (default) for meaningful p50/p99.
//
// --cells N switches to the fleet telemetry plane: a threaded N-cell
// rt::GnbDeployment on virtual time with the SLO engine on. Exports become
// the merged cross-cell Chrome trace (per-cell process tracks + ring drop
// accounting in the metadata), the hierarchical fleet rollup JSON
// (cell -> gNB -> fleet, plus the latest HealthReport and the RIC's
// reconstructed view), and the labeled Prometheus snapshot. --flight writes
// a flight-recorder bundle (always; reason records whether an SLO window
// breached) for CI artifact upload.
//
// --check self-validates the exports (non-empty well-formed Prometheus
// text with the expected metric families, parseable Chrome trace with
// nested spans, parseable JSON snapshot) and exits non-zero on violation.
// In fleet mode it additionally runs the deployment twice and fails unless
// the merged traces are byte-identical and the HealthReports equal, and
// asserts the RIC's wire-reconstructed fleet view matches the deployment's
// ground truth exactly.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "codec/json.h"
#include "obs/anomaly.h"
#include "obs/fleet.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "plugin/manager.h"
#include "ran/mac.h"
#include "ric/gnb_agent.h"
#include "ric/near_rt_ric.h"
#include "ric/plugin_sources.h"
#include "ric/quota_inter.h"
#include "rt/deployment.h"
#include "sched/plugins.h"
#include "sched/wasm_sched.h"

using namespace waran;

namespace {

struct Options {
  std::string scenario = "smoke";
  uint32_t slots = 0;   // 0 = scenario default
  uint32_t cells = 0;   // > 0 switches to the fleet deployment mode
  uint64_t seed = 7;    // fleet mode only (flight bundles replay from it)
  std::string trace_path;
  std::string prom_path;
  std::string json_path;
  std::string flight_path;  // fleet mode: flight-recorder bundle output
  bool check = false;
  bool quiet = false;
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --scenario smoke|mvno [--slots N] [--trace FILE]\n"
               "          [--prom FILE] [--json FILE] [--check] [--quiet]\n"
               "       %s --cells N [--seed S] [--slots N] [--trace FILE]\n"
               "          [--prom FILE] [--json FILE] [--flight FILE]\n"
               "          [--check] [--quiet]\n",
               argv0, argv0);
  return 2;
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  out << content;
  return out.good();
}

// ---------------------------------------------------------------------------
// Fleet mode (--cells N): the telemetry plane over a multi-cell deployment.
// ---------------------------------------------------------------------------

/// Everything one deployment run exports, captured so --check can run the
/// whole thing twice and compare byte-for-byte.
struct FleetRun {
  bool ok = false;
  std::string merged_trace;  ///< cross-cell Chrome trace (obs/fleet.h)
  std::string health_json;   ///< latest HealthReport
  std::string fleet_json;    ///< rollup + health + RIC-reconstructed view
  std::string prom;
  std::string flight;        ///< flight-recorder bundle
  uint64_t fleet_slots = 0;
  uint64_t breach_windows = 0;
  uint64_t telemetry_updates = 0;
  bool ric_matches = false;  ///< RIC fleet view == shipped ground truth
};

FleetRun run_fleet_once(const Options& opt, bool print) {
  FleetRun out;
  const uint32_t total_slots = opt.slots != 0 ? opt.slots : 600;

  // Fleet runs accumulate into the same global registry/journal as any
  // other scenario; reset so repeated runs are comparable byte-for-byte.
  obs::MetricsRegistry::global().reset_values();
  obs::AnomalyJournal::global().clear();

  rt::DeploymentConfig dc;
  dc.cells = opt.cells;
  dc.seed = opt.seed;
  dc.threaded = true;
  dc.virtual_time = true;  // determinism: same seed => same exports
  dc.report_period_slots = 20;
  dc.trace_capacity = 1 << 12;
  dc.slo_window_slots = std::min(100u, total_slots);
  rt::GnbDeployment dep(dc);
  if (!dep.status().ok()) {
    std::fprintf(stderr, "deployment failed: %s\n",
                 dep.status().error().message.c_str());
    return out;
  }
  obs::FlightContext fctx = dep.flight_context();
  fctx.scenario = "fleet";
  dep.set_flight_context(fctx);

  if (auto st = dep.run_slots(total_slots); !st.ok()) {
    std::fprintf(stderr, "run_slots failed: %s\n", st.error().message.c_str());
    return out;
  }

  // The RIC-reconstruction invariant: the fleet view rebuilt purely from
  // telemetry blocks that crossed the E2 wire must equal the exact
  // summaries the cells last shipped.
  out.ric_matches = dep.ric().fleet_view() == dep.shipped_view();
  out.telemetry_updates = dep.ric().stats().telemetry_updates;
  out.breach_windows = dep.slo_breach_windows();

  // Workers are parked between run_slots calls, so the coordinator may
  // collect every cell for the final ground-truth rollup.
  for (uint32_t i = 0; i < opt.cells; ++i) (void)dep.fleet().collect_cell(i);
  out.fleet_slots = dep.fleet().fleet_rollup().slots;

  out.merged_trace = dep.export_merged_trace();
  out.health_json = dep.last_health().to_json();
  out.fleet_json = "{\"fleet\":" + dep.fleet().to_json() +
                   ",\"health\":" + out.health_json +
                   ",\"ric_view\":" + dep.ric().fleet_view().to_json() + "}";
  out.prom = obs::MetricsRegistry::global().to_prometheus();
  out.flight = dep.capture_flight_bundle(
      out.breach_windows > 0 ? "slo_breach" : "export");

  if (print) {
    std::printf("fleet: %u cells x %u slots (seed %llu, virtual time)\n",
                opt.cells, total_slots,
                static_cast<unsigned long long>(opt.seed));
    for (uint32_t i = 0; i < opt.cells; ++i) {
      const obs::TraceRing* ring = dep.trace_ring(i);
      const obs::CellTelemetry& t = dep.fleet().cell_total(i);
      std::printf(
          "  cell %u: %llu slots, %llu PRBs granted, %llu plugin calls, "
          "trace %llu recorded / %llu dropped\n",
          i, static_cast<unsigned long long>(t.slots),
          static_cast<unsigned long long>(t.prb_granted),
          static_cast<unsigned long long>(t.plugin_calls),
          static_cast<unsigned long long>(ring != nullptr ? ring->writes() : 0),
          static_cast<unsigned long long>(ring != nullptr ? ring->dropped() : 0));
    }
    const obs::CellTelemetry fleet = dep.fleet().fleet_rollup();
    std::printf("  fleet rollup: %llu slots, %llu PRBs granted, %u cells merged\n",
                static_cast<unsigned long long>(fleet.slots),
                static_cast<unsigned long long>(fleet.prb_granted),
                fleet.cells_merged);
    const obs::HealthReport& health = dep.last_health();
    std::printf("  slo: %zu objectives, %llu breached, %llu unhealthy windows"
                " (last window %s)\n",
                health.verdicts.size(),
                static_cast<unsigned long long>(health.breaches),
                static_cast<unsigned long long>(out.breach_windows),
                health.healthy ? "healthy" : "UNHEALTHY");
    std::printf("  ric: %llu indications, %llu telemetry updates, "
                "reconstruction %s\n",
                static_cast<unsigned long long>(
                    dep.ric().stats().indications_processed),
                static_cast<unsigned long long>(out.telemetry_updates),
                out.ric_matches ? "== ground truth" : "MISMATCH");
  }
  out.ok = true;
  return out;
}

int run_fleet(const Options& opt) {
  FleetRun first = run_fleet_once(opt, !opt.quiet);
  if (!first.ok) return 1;

  if (!opt.trace_path.empty() && !write_file(opt.trace_path, first.merged_trace))
    return 1;
  if (!opt.prom_path.empty() && !write_file(opt.prom_path, first.prom)) return 1;
  if (!opt.json_path.empty() && !write_file(opt.json_path, first.fleet_json))
    return 1;
  if (!opt.flight_path.empty() && !write_file(opt.flight_path, first.flight))
    return 1;

  if (!opt.check) return 0;

  int failures = 0;
  auto fail = [&failures](const std::string& what) {
    std::fprintf(stderr, "check FAILED: %s\n", what.c_str());
    ++failures;
  };

  // Merged trace: parseable, events on every cell's track plus the ric
  // track, and per-ring drop accounting that adds up.
  auto trace_parsed = codec::Json::parse(first.merged_trace);
  if (!trace_parsed.ok()) {
    fail("merged trace does not parse as JSON");
  } else {
    const codec::Json& events = (*trace_parsed)["traceEvents"];
    if (!events.is_array() || events.size() == 0) {
      fail("merged trace has no events");
    } else {
      std::vector<bool> saw_pid(opt.cells + 2, false);
      for (const codec::Json& e : events.as_array()) {
        const codec::Json& pid = e["pid"];
        if (!pid.is_number()) continue;
        auto p = static_cast<size_t>(pid.as_number());
        if (p < saw_pid.size()) saw_pid[p] = true;
      }
      for (uint32_t i = 1; i <= opt.cells; ++i) {
        if (!saw_pid[i]) fail("merged trace has no events for cell track pid " +
                              std::to_string(i));
      }
      if (!saw_pid[opt.cells + 1]) fail("merged trace has no ric-track events");
    }
    const codec::Json& rings = (*trace_parsed)["metadata"]["rings"];
    if (!rings.is_array() || rings.size() != opt.cells + 1) {
      fail("merged trace metadata must list one ring per cell plus the ric ring");
    } else {
      for (const codec::Json& r : rings.as_array()) {
        if (!r["recorded"].is_number() || !r["retained"].is_number() ||
            !r["dropped"].is_number() ||
            r["recorded"].as_number() !=
                r["retained"].as_number() + r["dropped"].as_number()) {
          fail("merged trace ring drop accounting does not balance");
        }
      }
    }
  }

  // Hierarchical rollup: the fleet-level slot count is exactly cells x
  // slots (each cell's counter increments once per run slot).
  const uint32_t total_slots = opt.slots != 0 ? opt.slots : 600;
  if (first.fleet_slots !=
      static_cast<uint64_t>(opt.cells) * static_cast<uint64_t>(total_slots)) {
    fail("fleet rollup slots != cells * slots");
  }
  auto json_parsed = codec::Json::parse(first.fleet_json);
  if (!json_parsed.ok()) fail("fleet JSON does not parse");

  // RIC reconstruction invariant.
  if (first.telemetry_updates == 0) fail("RIC received no telemetry blocks");
  if (!first.ric_matches) fail("RIC fleet view != shipped ground truth");

  // Prometheus: well-formed sample lines and the fleet-plane families.
  if (first.prom.empty()) fail("Prometheus output is empty");
  for (const char* family :
       {"waran_cell_slots_total", "waran_cell_slot_wall_ns",
        "waran_mac_prb_granted_total", "waran_plugin_calls_total",
        "waran_anomaly_total"}) {
    if (first.prom.find(family) == std::string::npos) {
      fail(std::string("Prometheus output missing family ") + family);
    }
  }

  // Flight bundle: parseable, self-describing, and carrying the replay
  // command that reproduces this exact run.
  auto flight_parsed = codec::Json::parse(first.flight);
  if (!flight_parsed.ok()) {
    fail("flight bundle does not parse as JSON");
  } else {
    if (!(*flight_parsed)["waran_flight_bundle"].is_number()) {
      fail("flight bundle missing schema marker");
    }
    if ((*flight_parsed)["replay"].as_string().find("--cells") ==
        std::string::npos) {
      fail("flight bundle replay command missing --cells");
    }
  }

  // Determinism: the entire export surface must be byte-identical on a
  // second run with the same seed.
  FleetRun second = run_fleet_once(opt, /*print=*/false);
  if (!second.ok) {
    fail("second deterministic run failed");
  } else {
    if (second.merged_trace != first.merged_trace) {
      fail("merged trace is not byte-identical across runs");
    }
    if (second.health_json != first.health_json) {
      fail("HealthReport is not identical across runs");
    }
    if (second.fleet_json != first.fleet_json) {
      fail("fleet rollup JSON is not identical across runs");
    }
    if (second.flight != first.flight) {
      fail("flight bundle is not byte-identical across runs");
    }
  }

  if (failures != 0) return 1;
  if (!opt.quiet) std::printf("check OK: fleet exports well-formed and deterministic\n");
  return 0;
}

/// The MVNO-slicing scenario, instrumented end to end: three MVNOs bring
/// their own Wasm intra-slice schedulers, a fourth "rogue" MVNO ships a
/// faulty plugin (out-of-bounds access) that the sandbox contains and the
/// manager quarantines; the gNB closes an E2-lite loop with a near-RT RIC
/// running the SLA xApp, and a burst of corrupted frames exercises the
/// comm-plugin rejection path. Returns 0 on success.
int run_scenario(const Options& opt) {
  const bool smoke = opt.scenario == "smoke";
  const uint32_t total_slots = opt.slots != 0 ? opt.slots : (smoke ? 300u : 2000u);

  obs::TraceRing::instance().enable(1 << 16);
  obs::MetricsRegistry::global().reset_values();
  obs::AnomalyJournal::global().clear();

  ran::GnbMac mac(ran::MacConfig{});
  auto quotas_owned = std::make_unique<ric::QuotaTableInterScheduler>();
  ric::QuotaTableInterScheduler* quotas = quotas_owned.get();
  mac.set_inter_scheduler(std::move(quotas_owned));

  plugin::PluginManager mgr;
  mgr.set_domain("mac");

  struct Mvno {
    uint32_t slice_id;
    const char* name;
    const char* policy;
    double target_bps;
    int ues;
  };
  const Mvno mvnos[] = {
      {1, "iot-co", "rr", 4e6, 2},
      {2, "stream-co", "mt", 14e6, 2},
      {3, "fair-co", "pf", 10e6, 2},
  };
  for (const Mvno& m : mvnos) {
    auto bytes = sched::plugins::scheduler(m.policy);
    if (!bytes.ok() || !mgr.install(m.name, *bytes).ok()) {
      std::fprintf(stderr, "failed to onboard %s\n", m.name);
      return 1;
    }
    ran::SliceConfig slice;
    slice.slice_id = m.slice_id;
    slice.name = m.name;
    slice.target_rate_bps = m.target_bps;
    mac.add_slice(slice, std::make_unique<sched::WasmIntraScheduler>(mgr, m.name));
    quotas->set_quota(m.slice_id, 12);
    for (int u = 0; u < m.ues; ++u) {
      ran::Channel::FadingParams fading;
      fading.mean_snr_db = 14.0 + 2.5 * u;
      mac.add_ue(m.slice_id, ran::Channel::fading(fading, m.slice_id * 100 + u),
                 ran::TrafficSource::full_buffer());
    }
  }

  // The rogue MVNO: its scheduler reads out of bounds every call. The trap
  // is contained, counted, journaled, and the slot ends up quarantined.
  auto rogue = sched::plugins::faulty("oob");
  if (!rogue.ok() || !mgr.install("rogue-co", *rogue).ok()) {
    std::fprintf(stderr, "failed to install rogue plugin\n");
    return 1;
  }
  {
    ran::SliceConfig slice;
    slice.slice_id = 4;
    slice.name = "rogue-co";
    slice.target_rate_bps = 1e6;
    mac.add_slice(slice, std::make_unique<sched::WasmIntraScheduler>(mgr, "rogue-co"));
    quotas->set_quota(4, 4);
    mac.add_ue(4, ran::Channel::pinned_mcs(12), ran::TrafficSource::full_buffer());
  }

  // E2 loop: gNB agent on side A, RIC with the SLA xApp on side B.
  ric::Duplex link;
  ric::GnbAgent agent(0, mac, quotas, link, ric::Duplex::Side::kA);
  ric::NearRtRic ric(link, ric::Duplex::Side::kB);
  auto comm = ric::plugin_sources::comm_framing();
  auto ctl = ric::plugin_sources::control_dispatch();
  auto sla = ric::plugin_sources::sla_xapp();
  if (!comm.ok() || !ctl.ok() || !sla.ok()) return 1;
  if (!agent.load_comm_plugin(*comm).ok()) return 1;
  if (!agent.load_control_plugin(*ctl).ok()) return 1;
  if (!ric.load_comm_plugin(*comm).ok()) return 1;
  if (!ric.add_xapp("sla", *sla).ok()) return 1;

  const uint32_t report_period = 100;
  for (uint32_t done = 0; done < total_slots; done += report_period) {
    uint32_t n = std::min(report_period, total_slots - done);
    if (auto st = mac.run_slots(n); !st.ok()) {
      std::fprintf(stderr, "MAC error: %s\n", st.error().message.c_str());
      return 1;
    }
    if (!agent.send_indication().ok()) return 1;
    if (!ric.poll().ok()) return 1;
    if (!agent.poll().ok()) return 1;
  }

  // Adversarial burst: corrupt every frame in flight; the RIC's comm
  // plugin rejects them inside the sandbox (anomaly kind frame_rejected).
  link.add_fault_stage([](std::vector<uint8_t>& frame, ric::Duplex::Side) {
    if (frame.size() > 14) frame[14] ^= 0x5a;
    return ric::Duplex::Fault{ric::Duplex::FaultAction::kCorrupt};
  });
  for (int i = 0; i < 5; ++i) {
    if (!agent.send_indication().ok()) return 1;
    if (!ric.poll().ok()) return 1;
  }
  link.clear_fault_stages();

  obs::TraceRing::instance().disable();

  // ---- Exports ----
  const std::string chrome = obs::TraceRing::instance().export_chrome_trace();
  const std::string prom = obs::MetricsRegistry::global().to_prometheus();
  const std::string json = obs::MetricsRegistry::global().to_json();
  if (!opt.trace_path.empty() && !write_file(opt.trace_path, chrome)) return 1;
  if (!opt.prom_path.empty() && !write_file(opt.prom_path, prom)) return 1;
  if (!opt.json_path.empty() && !write_file(opt.json_path, json)) return 1;

  if (!opt.quiet) {
    std::printf("scenario %s: %u slots, %zu trace events (%llu recorded, %llu "
                "dropped to wrap)\n",
                opt.scenario.c_str(), total_slots,
                obs::TraceRing::instance().snapshot().size(),
                static_cast<unsigned long long>(obs::TraceRing::instance().writes()),
                static_cast<unsigned long long>(obs::TraceRing::instance().dropped()));
    std::printf("\n%-10s %8s %8s %10s %10s %8s %8s\n", "plugin", "calls", "faults",
                "p50_ns", "p99_ns", "fuel/call", "state");
    for (const Mvno& m : mvnos) {
      const plugin::SlotHealth* h = mgr.health(m.name);
      const CallCostAcc* c = mgr.cost(m.name);
      if (h == nullptr || c == nullptr) continue;
      std::printf("%-10s %8llu %8llu %10.0f %10.0f %8.0f %8s\n", m.name,
                  static_cast<unsigned long long>(h->calls),
                  static_cast<unsigned long long>(h->faults),
                  c->wall_ns().quantile(0.50), c->wall_ns().quantile(0.99),
                  h->calls ? static_cast<double>(c->total_fuel()) /
                                 static_cast<double>(h->calls)
                           : 0.0,
                  h->quarantined ? "QUAR" : "ok");
    }
    if (const plugin::SlotHealth* h = mgr.health("rogue-co")) {
      std::printf("%-10s %8llu %8llu %10s %10s %8s %8s\n", "rogue-co",
                  static_cast<unsigned long long>(h->calls),
                  static_cast<unsigned long long>(h->faults), "-", "-", "-",
                  h->quarantined ? "QUAR" : "ok");
    }
    std::printf("\nper-slice rates: ");
    for (uint32_t id : mac.slice_ids()) {
      std::printf(" slice %u: %.2f Mb/s", id, mac.slice_rate_bps(id) / 1e6);
    }
    std::printf("\nRIC: %llu indications, %llu frames rejected, %llu xApp faults\n",
                static_cast<unsigned long long>(ric.stats().indications_processed),
                static_cast<unsigned long long>(ric.stats().frames_rejected),
                static_cast<unsigned long long>(ric.stats().xapp_faults));

    auto anomalies = obs::AnomalyJournal::global().snapshot();
    std::printf("\nanomaly journal (%zu records, newest last):\n", anomalies.size());
    size_t start = anomalies.size() > 8 ? anomalies.size() - 8 : 0;
    for (size_t i = start; i < anomalies.size(); ++i) {
      const obs::AnomalyRecord& a = anomalies[i];
      std::printf("  [%llu] slot %llu %s/%s %s: %s\n",
                  static_cast<unsigned long long>(a.seq),
                  static_cast<unsigned long long>(a.slot), a.domain.c_str(),
                  a.source.c_str(), obs::to_string(a.kind), a.detail.c_str());
    }
  }

  // ---- Self-validation (--check), the CI gate ----
  if (opt.check) {
    int failures = 0;
    auto fail = [&failures](const char* what) {
      std::fprintf(stderr, "check FAILED: %s\n", what);
      ++failures;
    };

    if (prom.empty()) fail("Prometheus output is empty");
    bool saw_type = false;
    for (size_t pos = 0; pos < prom.size();) {
      size_t end = prom.find('\n', pos);
      if (end == std::string::npos) {
        fail("Prometheus output missing trailing newline");
        break;
      }
      std::string line = prom.substr(pos, end - pos);
      pos = end + 1;
      if (line.empty()) continue;
      if (line.rfind("# TYPE ", 0) == 0) {
        saw_type = true;
        continue;
      }
      if (line[0] == '#') continue;
      // Every sample line is `name[{labels}] value`.
      size_t sp = line.rfind(' ');
      if (sp == std::string::npos || sp == 0 || sp + 1 >= line.size()) {
        fail(("malformed Prometheus line: " + line).c_str());
        continue;
      }
      const std::string value = line.substr(sp + 1);
      char* endp = nullptr;
      std::strtod(value.c_str(), &endp);
      if (endp == value.c_str() || *endp != '\0') {
        fail(("non-numeric Prometheus value: " + line).c_str());
      }
    }
    if (!saw_type) fail("Prometheus output has no # TYPE lines");
    for (const char* family :
         {"waran_plugin_calls_total", "waran_plugin_traps_total",
          "waran_plugin_fuel_used_total", "waran_plugin_wall_ns",
          "waran_mac_prb_granted_total", "waran_mac_slots_total",
          "waran_e2_encoded_messages_total", "waran_anomaly_total"}) {
      if (prom.find(family) == std::string::npos) {
        fail((std::string("Prometheus output missing family ") + family).c_str());
      }
    }

    auto trace_parsed = codec::Json::parse(chrome);
    if (!trace_parsed.ok()) {
      fail("Chrome trace does not parse as JSON");
    } else {
      const codec::Json& events = (*trace_parsed)["traceEvents"];
      if (!events.is_array() || events.size() == 0) {
        fail("Chrome trace has no events");
      } else {
        // The acceptance shape: slot spans must contain nested wasm spans.
        bool saw_slot = false, saw_wasm = false, saw_host = false;
        for (const codec::Json& e : events.as_array()) {
          const std::string& cat = e["cat"].as_string();
          if (cat == "mac") saw_slot = true;
          if (cat == "wasm") saw_wasm = true;
          if (cat == "host") saw_host = true;
        }
        if (!saw_slot) fail("Chrome trace has no MAC slot spans");
        if (!saw_wasm) fail("Chrome trace has no Wasm call spans");
        if (!saw_host) fail("Chrome trace has no host-call spans");
      }
    }

    auto json_parsed = codec::Json::parse(json);
    if (!json_parsed.ok()) fail("JSON snapshot does not parse");

    if (obs::AnomalyJournal::global().total() == 0) {
      fail("anomaly journal is empty despite injected faults");
    }

    if (failures != 0) return 1;
    if (!opt.quiet) std::printf("\ncheck OK: all exports well-formed\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--scenario") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      opt.scenario = v;
    } else if (arg == "--slots") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      opt.slots = static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--trace") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      opt.trace_path = v;
    } else if (arg == "--prom") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      opt.prom_path = v;
    } else if (arg == "--json") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      opt.json_path = v;
    } else if (arg == "--cells") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      opt.cells = static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      opt.seed = std::strtoull(v, nullptr, 0);
    } else if (arg == "--flight") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      opt.flight_path = v;
    } else if (arg == "--check") {
      opt.check = true;
    } else if (arg == "--quiet") {
      opt.quiet = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (opt.cells > 0) return run_fleet(opt);
  if (opt.scenario != "smoke" && opt.scenario != "mvno") return usage(argv[0]);
  return run_scenario(opt);
}
