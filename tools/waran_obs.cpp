// waran_obs — runs an instrumented scenario and exports the observability
// surfaces: a Chrome trace_event JSON (chrome://tracing / Perfetto), a
// Prometheus text snapshot, a JSON metrics snapshot, and the trap/anomaly
// journal. This is the CLI face of waran::obs and the CI smoke check for
// the whole telemetry pipeline.
//
// Usage:
//   waran_obs --scenario smoke|mvno [--slots N] [--trace FILE]
//             [--prom FILE] [--json FILE] [--check] [--quiet]
//
// Scenarios (both are the paper's §4A MVNO-slicing use case wired to a
// near-RT RIC; they differ only in scale):
//   smoke — 3 MVNO slices + RIC closed loop + injected faults, 300 slots.
//           Fast enough for CI; still exercises every instrumented layer.
//   mvno  — same topology, 2000 slots (default) for meaningful p50/p99.
//
// --check self-validates the exports (non-empty well-formed Prometheus
// text with the expected metric families, parseable Chrome trace with
// nested spans, parseable JSON snapshot) and exits non-zero on violation.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "codec/json.h"
#include "obs/anomaly.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "plugin/manager.h"
#include "ran/mac.h"
#include "ric/gnb_agent.h"
#include "ric/near_rt_ric.h"
#include "ric/plugin_sources.h"
#include "ric/quota_inter.h"
#include "sched/plugins.h"
#include "sched/wasm_sched.h"

using namespace waran;

namespace {

struct Options {
  std::string scenario = "smoke";
  uint32_t slots = 0;  // 0 = scenario default
  std::string trace_path;
  std::string prom_path;
  std::string json_path;
  bool check = false;
  bool quiet = false;
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --scenario smoke|mvno [--slots N] [--trace FILE]\n"
               "          [--prom FILE] [--json FILE] [--check] [--quiet]\n",
               argv0);
  return 2;
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  out << content;
  return out.good();
}

/// The MVNO-slicing scenario, instrumented end to end: three MVNOs bring
/// their own Wasm intra-slice schedulers, a fourth "rogue" MVNO ships a
/// faulty plugin (out-of-bounds access) that the sandbox contains and the
/// manager quarantines; the gNB closes an E2-lite loop with a near-RT RIC
/// running the SLA xApp, and a burst of corrupted frames exercises the
/// comm-plugin rejection path. Returns 0 on success.
int run_scenario(const Options& opt) {
  const bool smoke = opt.scenario == "smoke";
  const uint32_t total_slots = opt.slots != 0 ? opt.slots : (smoke ? 300u : 2000u);

  obs::TraceRing::instance().enable(1 << 16);
  obs::MetricsRegistry::global().reset_values();
  obs::AnomalyJournal::global().clear();

  ran::GnbMac mac(ran::MacConfig{});
  auto quotas_owned = std::make_unique<ric::QuotaTableInterScheduler>();
  ric::QuotaTableInterScheduler* quotas = quotas_owned.get();
  mac.set_inter_scheduler(std::move(quotas_owned));

  plugin::PluginManager mgr;
  mgr.set_domain("mac");

  struct Mvno {
    uint32_t slice_id;
    const char* name;
    const char* policy;
    double target_bps;
    int ues;
  };
  const Mvno mvnos[] = {
      {1, "iot-co", "rr", 4e6, 2},
      {2, "stream-co", "mt", 14e6, 2},
      {3, "fair-co", "pf", 10e6, 2},
  };
  for (const Mvno& m : mvnos) {
    auto bytes = sched::plugins::scheduler(m.policy);
    if (!bytes.ok() || !mgr.install(m.name, *bytes).ok()) {
      std::fprintf(stderr, "failed to onboard %s\n", m.name);
      return 1;
    }
    ran::SliceConfig slice;
    slice.slice_id = m.slice_id;
    slice.name = m.name;
    slice.target_rate_bps = m.target_bps;
    mac.add_slice(slice, std::make_unique<sched::WasmIntraScheduler>(mgr, m.name));
    quotas->set_quota(m.slice_id, 12);
    for (int u = 0; u < m.ues; ++u) {
      ran::Channel::FadingParams fading;
      fading.mean_snr_db = 14.0 + 2.5 * u;
      mac.add_ue(m.slice_id, ran::Channel::fading(fading, m.slice_id * 100 + u),
                 ran::TrafficSource::full_buffer());
    }
  }

  // The rogue MVNO: its scheduler reads out of bounds every call. The trap
  // is contained, counted, journaled, and the slot ends up quarantined.
  auto rogue = sched::plugins::faulty("oob");
  if (!rogue.ok() || !mgr.install("rogue-co", *rogue).ok()) {
    std::fprintf(stderr, "failed to install rogue plugin\n");
    return 1;
  }
  {
    ran::SliceConfig slice;
    slice.slice_id = 4;
    slice.name = "rogue-co";
    slice.target_rate_bps = 1e6;
    mac.add_slice(slice, std::make_unique<sched::WasmIntraScheduler>(mgr, "rogue-co"));
    quotas->set_quota(4, 4);
    mac.add_ue(4, ran::Channel::pinned_mcs(12), ran::TrafficSource::full_buffer());
  }

  // E2 loop: gNB agent on side A, RIC with the SLA xApp on side B.
  ric::Duplex link;
  ric::GnbAgent agent(0, mac, quotas, link, ric::Duplex::Side::kA);
  ric::NearRtRic ric(link, ric::Duplex::Side::kB);
  auto comm = ric::plugin_sources::comm_framing();
  auto ctl = ric::plugin_sources::control_dispatch();
  auto sla = ric::plugin_sources::sla_xapp();
  if (!comm.ok() || !ctl.ok() || !sla.ok()) return 1;
  if (!agent.load_comm_plugin(*comm).ok()) return 1;
  if (!agent.load_control_plugin(*ctl).ok()) return 1;
  if (!ric.load_comm_plugin(*comm).ok()) return 1;
  if (!ric.add_xapp("sla", *sla).ok()) return 1;

  const uint32_t report_period = 100;
  for (uint32_t done = 0; done < total_slots; done += report_period) {
    uint32_t n = std::min(report_period, total_slots - done);
    if (auto st = mac.run_slots(n); !st.ok()) {
      std::fprintf(stderr, "MAC error: %s\n", st.error().message.c_str());
      return 1;
    }
    if (!agent.send_indication().ok()) return 1;
    if (!ric.poll().ok()) return 1;
    if (!agent.poll().ok()) return 1;
  }

  // Adversarial burst: corrupt every frame in flight; the RIC's comm
  // plugin rejects them inside the sandbox (anomaly kind frame_rejected).
  link.add_fault_stage([](std::vector<uint8_t>& frame, ric::Duplex::Side) {
    if (frame.size() > 14) frame[14] ^= 0x5a;
    return ric::Duplex::Fault{ric::Duplex::FaultAction::kCorrupt};
  });
  for (int i = 0; i < 5; ++i) {
    if (!agent.send_indication().ok()) return 1;
    if (!ric.poll().ok()) return 1;
  }
  link.clear_fault_stages();

  obs::TraceRing::instance().disable();

  // ---- Exports ----
  const std::string chrome = obs::TraceRing::instance().export_chrome_trace();
  const std::string prom = obs::MetricsRegistry::global().to_prometheus();
  const std::string json = obs::MetricsRegistry::global().to_json();
  if (!opt.trace_path.empty() && !write_file(opt.trace_path, chrome)) return 1;
  if (!opt.prom_path.empty() && !write_file(opt.prom_path, prom)) return 1;
  if (!opt.json_path.empty() && !write_file(opt.json_path, json)) return 1;

  if (!opt.quiet) {
    std::printf("scenario %s: %u slots, %zu trace events (%llu recorded, %llu "
                "dropped to wrap)\n",
                opt.scenario.c_str(), total_slots,
                obs::TraceRing::instance().snapshot().size(),
                static_cast<unsigned long long>(obs::TraceRing::instance().writes()),
                static_cast<unsigned long long>(obs::TraceRing::instance().dropped()));
    std::printf("\n%-10s %8s %8s %10s %10s %8s %8s\n", "plugin", "calls", "faults",
                "p50_ns", "p99_ns", "fuel/call", "state");
    for (const Mvno& m : mvnos) {
      const plugin::SlotHealth* h = mgr.health(m.name);
      const CallCostAcc* c = mgr.cost(m.name);
      if (h == nullptr || c == nullptr) continue;
      std::printf("%-10s %8llu %8llu %10.0f %10.0f %8.0f %8s\n", m.name,
                  static_cast<unsigned long long>(h->calls),
                  static_cast<unsigned long long>(h->faults),
                  c->wall_ns().quantile(0.50), c->wall_ns().quantile(0.99),
                  h->calls ? static_cast<double>(c->total_fuel()) /
                                 static_cast<double>(h->calls)
                           : 0.0,
                  h->quarantined ? "QUAR" : "ok");
    }
    if (const plugin::SlotHealth* h = mgr.health("rogue-co")) {
      std::printf("%-10s %8llu %8llu %10s %10s %8s %8s\n", "rogue-co",
                  static_cast<unsigned long long>(h->calls),
                  static_cast<unsigned long long>(h->faults), "-", "-", "-",
                  h->quarantined ? "QUAR" : "ok");
    }
    std::printf("\nper-slice rates: ");
    for (uint32_t id : mac.slice_ids()) {
      std::printf(" slice %u: %.2f Mb/s", id, mac.slice_rate_bps(id) / 1e6);
    }
    std::printf("\nRIC: %llu indications, %llu frames rejected, %llu xApp faults\n",
                static_cast<unsigned long long>(ric.stats().indications_processed),
                static_cast<unsigned long long>(ric.stats().frames_rejected),
                static_cast<unsigned long long>(ric.stats().xapp_faults));

    auto anomalies = obs::AnomalyJournal::global().snapshot();
    std::printf("\nanomaly journal (%zu records, newest last):\n", anomalies.size());
    size_t start = anomalies.size() > 8 ? anomalies.size() - 8 : 0;
    for (size_t i = start; i < anomalies.size(); ++i) {
      const obs::AnomalyRecord& a = anomalies[i];
      std::printf("  [%llu] slot %llu %s/%s %s: %s\n",
                  static_cast<unsigned long long>(a.seq),
                  static_cast<unsigned long long>(a.slot), a.domain.c_str(),
                  a.source.c_str(), obs::to_string(a.kind), a.detail.c_str());
    }
  }

  // ---- Self-validation (--check), the CI gate ----
  if (opt.check) {
    int failures = 0;
    auto fail = [&failures](const char* what) {
      std::fprintf(stderr, "check FAILED: %s\n", what);
      ++failures;
    };

    if (prom.empty()) fail("Prometheus output is empty");
    bool saw_type = false;
    for (size_t pos = 0; pos < prom.size();) {
      size_t end = prom.find('\n', pos);
      if (end == std::string::npos) {
        fail("Prometheus output missing trailing newline");
        break;
      }
      std::string line = prom.substr(pos, end - pos);
      pos = end + 1;
      if (line.empty()) continue;
      if (line.rfind("# TYPE ", 0) == 0) {
        saw_type = true;
        continue;
      }
      if (line[0] == '#') continue;
      // Every sample line is `name[{labels}] value`.
      size_t sp = line.rfind(' ');
      if (sp == std::string::npos || sp == 0 || sp + 1 >= line.size()) {
        fail(("malformed Prometheus line: " + line).c_str());
        continue;
      }
      const std::string value = line.substr(sp + 1);
      char* endp = nullptr;
      std::strtod(value.c_str(), &endp);
      if (endp == value.c_str() || *endp != '\0') {
        fail(("non-numeric Prometheus value: " + line).c_str());
      }
    }
    if (!saw_type) fail("Prometheus output has no # TYPE lines");
    for (const char* family :
         {"waran_plugin_calls_total", "waran_plugin_traps_total",
          "waran_plugin_fuel_used_total", "waran_plugin_wall_ns",
          "waran_mac_prb_granted_total", "waran_mac_slots_total",
          "waran_e2_encoded_messages_total", "waran_anomaly_total"}) {
      if (prom.find(family) == std::string::npos) {
        fail((std::string("Prometheus output missing family ") + family).c_str());
      }
    }

    auto trace_parsed = codec::Json::parse(chrome);
    if (!trace_parsed.ok()) {
      fail("Chrome trace does not parse as JSON");
    } else {
      const codec::Json& events = (*trace_parsed)["traceEvents"];
      if (!events.is_array() || events.size() == 0) {
        fail("Chrome trace has no events");
      } else {
        // The acceptance shape: slot spans must contain nested wasm spans.
        bool saw_slot = false, saw_wasm = false, saw_host = false;
        for (const codec::Json& e : events.as_array()) {
          const std::string& cat = e["cat"].as_string();
          if (cat == "mac") saw_slot = true;
          if (cat == "wasm") saw_wasm = true;
          if (cat == "host") saw_host = true;
        }
        if (!saw_slot) fail("Chrome trace has no MAC slot spans");
        if (!saw_wasm) fail("Chrome trace has no Wasm call spans");
        if (!saw_host) fail("Chrome trace has no host-call spans");
      }
    }

    auto json_parsed = codec::Json::parse(json);
    if (!json_parsed.ok()) fail("JSON snapshot does not parse");

    if (obs::AnomalyJournal::global().total() == 0) {
      fail("anomaly journal is empty despite injected faults");
    }

    if (failures != 0) return 1;
    if (!opt.quiet) std::printf("\ncheck OK: all exports well-formed\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--scenario") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      opt.scenario = v;
    } else if (arg == "--slots") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      opt.slots = static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--trace") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      opt.trace_path = v;
    } else if (arg == "--prom") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      opt.prom_path = v;
    } else if (arg == "--json") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      opt.json_path = v;
    } else if (arg == "--check") {
      opt.check = true;
    } else if (arg == "--quiet") {
      opt.quiet = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (opt.scenario != "smoke" && opt.scenario != "mvno") return usage(argv[0]);
  return run_scenario(opt);
}
