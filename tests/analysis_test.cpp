// waran::analysis unit + integration tests: hand-built malformed micro-op
// streams for each verifier invariant, abstract-interpretation bounds over
// known-shape programs, admission accept/reject for the real scheduler
// plugins against PluginLimits, and an admission-rejection episode through
// the deployment layer (exactly one anomaly, zero calls).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/analysis.h"
#include "obs/anomaly.h"
#include "plugin/manager.h"
#include "rt/deployment.h"
#include "sched/plugins.h"
#include "wasm/wasm.h"
#include "wasmbuilder/builder.h"
#include "wcc/compiler.h"

namespace waran {
namespace {

using wasm::FuncType;
using wasm::TranslatedFunc;
using wasm::UInstr;
using wasm::UOp;
using wasm::ValType;
using wasmbuilder::ModuleBuilder;

UInstr ui(UOp op, uint16_t a = 0, uint32_t b = 0, uint32_t x = 0, uint32_t y = 0) {
  UInstr u;
  u.op = op;
  u.a = a;
  u.b = b;
  u.imm.pair.x = x;
  u.imm.pair.y = y;
  return u;
}

/// Context module the hand-built streams resolve indices against: one
/// defined function () -> i32 (index 0), a memory, no imports.
wasm::Module ctx_module() {
  ModuleBuilder mb;
  mb.add_memory(1, 1);
  auto& f = mb.add_func(FuncType{{}, {ValType::kI32}}, "f");
  f.i32_const(0).end();
  auto m = wasm::decode_module(mb.build());
  EXPECT_TRUE(m.ok());
  EXPECT_TRUE(wasm::validate_module(*m).ok());
  return std::move(*m);
}

TranslatedFunc make_tf(std::vector<UInstr> ops, uint32_t max_stack = 4,
                       uint8_t result_arity = 1, uint32_t num_locals = 1) {
  TranslatedFunc tf;
  tf.ops = std::move(ops);
  tf.max_stack = max_stack;
  tf.num_params = 0;
  tf.num_locals = num_locals;
  tf.result_arity = result_arity;
  return tf;
}

void expect_invariant(const wasm::Module& m, const TranslatedFunc& tf,
                      const char* invariant) {
  Status st = analysis::verify_func(m, tf);
  ASSERT_FALSE(st.ok()) << "stream unexpectedly passed; wanted " << invariant;
  EXPECT_NE(st.error().message.find(invariant), std::string::npos)
      << "wanted '" << invariant << "', got: " << st.error().message;
}

TEST(StreamVerifier, RejectsEachInvariantViolation) {
  const wasm::Module m = ctx_module();
  const UInstr kSeg1 = ui(UOp::kSeg, 0, 1);
  const UInstr kConst = ui(UOp::kConst);
  const UInstr kRet = ui(UOp::kReturn);

  // entry-charge: first op carries no segment charge.
  expect_invariant(m, make_tf({kConst, kRet}), "entry-charge");
  // zero-charge: a kSeg charging nothing runs its whole run unmetered.
  expect_invariant(m, make_tf({ui(UOp::kSeg, 0, 0), kConst, kRet}), "zero-charge");
  // zero-charge on a taken edge.
  expect_invariant(
      m, make_tf({kSeg1, kConst, ui(UOp::kJumpZ, 0, 4, 0, 0), kSeg1, kRet}),
      "zero-charge");
  // fall-off-end: the last op falls through past the stream.
  expect_invariant(m, make_tf({kSeg1, kConst}), "fall-off-end");
  // uncharged-resume: a conditional branch whose untaken run has no charge.
  expect_invariant(
      m, make_tf({kSeg1, kConst, ui(UOp::kJumpZ, 0, 4, 0, 1), kConst, kRet}),
      "uncharged-resume");
  // uncharged-resume after a call (the resume segment is missing).
  expect_invariant(m, make_tf({kSeg1, ui(UOp::kCallWasm, 0, 0), kConst, kRet}),
                   "uncharged-resume");
  // double-charge: taken edge lands on a charge-carrying op (op 0).
  expect_invariant(
      m, make_tf({kSeg1, kConst, ui(UOp::kJumpZ, 0, 0, 0, 1), kSeg1, kRet}),
      "double-charge");
  // target-range: branch outside the stream.
  expect_invariant(
      m, make_tf({kSeg1, kConst, ui(UOp::kJumpZ, 0, 99, 0, 1), kSeg1, kRet}),
      "target-range");
  // target-range: kBr cannot carry kRetTarget (its handler never checks).
  expect_invariant(
      m, make_tf({kSeg1, kConst, ui(UOp::kBr, 0, wasm::kRetTarget, 0, 1)}),
      "target-range");
  // target-range: br_table slice outside br_entries.
  expect_invariant(
      m, make_tf({kSeg1, kConst, ui(UOp::kBrTable, 0, 0, 0, 0)}, 4, 0),
      "target-range");
  // stack-underflow: pop from an empty operand stack.
  expect_invariant(m, make_tf({kSeg1, ui(UOp::kDrop), kRet}), "stack-underflow");
  // stack-overflow: height exceeds the reserved max_stack region.
  expect_invariant(m, make_tf({kSeg1, kConst, kConst, kRet}, /*max_stack=*/1),
                   "stack-overflow");
  // return-arity: frame pop with fewer values than the signature returns.
  expect_invariant(m, make_tf({kSeg1, kRet}), "return-arity");
  // height-merge: the same join reached at two different operand heights.
  expect_invariant(m,
                   make_tf({kSeg1, kConst, ui(UOp::kJumpZ, 0, 4, 0, 1),
                            ui(UOp::kSegLocalGet, 0, 0, 0, 1), kRet},
                           4, /*result_arity=*/0),
                   "height-merge");
  // unwind: branch unwinds to a height above the current operand height.
  expect_invariant(
      m, make_tf({kSeg1, kConst, ui(UOp::kBr, 0, 1, /*height=*/2, 1)}, 4, 0),
      "unwind");
  // index-range: local out of range.
  expect_invariant(m, make_tf({kSeg1, ui(UOp::kLocalGet, 0, 7), kRet}),
                   "index-range");
  // index-range: callee is not a defined function.
  expect_invariant(m, make_tf({kSeg1, ui(UOp::kCallWasm, 0, 5), kSeg1, kRet}),
                   "index-range");
  // bad-opcode: op value outside the dispatch table.
  expect_invariant(
      m, make_tf({kSeg1, ui(static_cast<UOp>(60000)), kRet}), "bad-opcode");
}

TEST(StreamVerifier, AcceptsRealTranslations) {
  for (const char* kind : {"rr", "pf", "mt"}) {
    auto bytes = sched::plugins::scheduler(kind);
    ASSERT_TRUE(bytes.ok()) << kind;
    auto m = wasm::decode_module(*bytes);
    ASSERT_TRUE(m.ok());
    ASSERT_TRUE(wasm::validate_module(*m).ok());
    ASSERT_TRUE(wasm::translate_module(*m).ok());
    EXPECT_TRUE(analysis::verify_module(*m, *m->translated).ok()) << kind;
  }
}

// --- Abstract interpreter bounds -------------------------------------------

wasm::Module compile_and_translate(const char* src) {
  auto bytes = wcc::compile(src);
  EXPECT_TRUE(bytes.ok()) << (bytes.ok() ? "" : bytes.error().message);
  auto m = wasm::decode_module(*bytes);
  EXPECT_TRUE(m.ok());
  EXPECT_TRUE(wasm::validate_module(*m).ok());
  EXPECT_TRUE(wasm::translate_module(*m).ok());
  return std::move(*m);
}

const analysis::FuncBounds& bounds_of(const wasm::Module& m,
                                      const analysis::ModuleAnalysis& ana,
                                      const std::string& name) {
  for (const wasm::Export& e : m.exports) {
    if (e.kind == wasm::ImportKind::kFunc && e.name == name) {
      return ana.funcs[e.index - m.num_imported_funcs];
    }
  }
  ADD_FAILURE() << "no export " << name;
  static analysis::FuncBounds none;
  return none;
}

TEST(Bounds, StraightLineFunctionIsFullyBounded) {
  wasm::Module m = compile_and_translate("export fn f() -> i32 { return 7; }");
  auto ana = analysis::analyze(m, *m.translated);
  ASSERT_TRUE(ana.ok()) << ana.error().message;
  const analysis::FuncBounds& b = bounds_of(m, *ana, "f");
  EXPECT_FALSE(b.may_loop);
  EXPECT_TRUE(b.completes());
  EXPECT_EQ(b.min_fuel, b.worst_fuel);  // single path
  EXPECT_EQ(b.min_frames, 1u);
  EXPECT_EQ(b.max_frames, 1u);
  EXPECT_GE(b.max_operand_depth, 1u);
}

TEST(Bounds, LoopMakesWorstCaseUnboundedButMinFinite) {
  wasm::Module m = compile_and_translate(R"(
    export fn work(n: i32) -> i32 {
      var acc: i32 = 0;
      var i: i32 = 0;
      while (i < n) { acc = acc + i; i = i + 1; }
      return acc;
    })");
  auto ana = analysis::analyze(m, *m.translated);
  ASSERT_TRUE(ana.ok()) << ana.error().message;
  const analysis::FuncBounds& b = bounds_of(m, *ana, "work");
  EXPECT_TRUE(b.may_loop);
  EXPECT_EQ(b.worst_fuel, analysis::kUnbounded);
  EXPECT_TRUE(b.completes());  // n <= 0 falls straight through
  EXPECT_LT(b.min_fuel, 100u);
  EXPECT_EQ(b.min_frames, 1u);
  EXPECT_EQ(b.max_frames, 1u);
}

TEST(Bounds, CallChainCountsFramesInterprocedurally) {
  wasm::Module m = compile_and_translate(R"(
    fn leaf(x: i32) -> i32 { return x + 1; }
    export fn f() -> i32 { return leaf(41); })");
  auto ana = analysis::analyze(m, *m.translated);
  ASSERT_TRUE(ana.ok()) << ana.error().message;
  const analysis::FuncBounds& b = bounds_of(m, *ana, "f");
  EXPECT_FALSE(b.may_loop);
  EXPECT_EQ(b.min_frames, 2u);
  EXPECT_EQ(b.max_frames, 2u);
  EXPECT_TRUE(b.completes());
  EXPECT_NE(b.worst_fuel, analysis::kUnbounded);
  EXPECT_GE(b.worst_fuel, b.min_fuel);
}

TEST(Bounds, RecursionNeverCompletes) {
  // f() { return f(); } — no completing path, unbounded frames.
  ModuleBuilder mb;
  auto& f = mb.add_func(FuncType{{}, {ValType::kI32}}, "boom");
  f.call(0).end();
  auto m = wasm::decode_module(mb.build());
  ASSERT_TRUE(m.ok());
  ASSERT_TRUE(wasm::validate_module(*m).ok());
  ASSERT_TRUE(wasm::translate_module(*m).ok());
  auto ana = analysis::analyze(*m, *m->translated);
  ASSERT_TRUE(ana.ok()) << ana.error().message;
  const analysis::FuncBounds& b = bounds_of(*m, *ana, "boom");
  EXPECT_FALSE(b.completes());
  EXPECT_EQ(b.min_fuel, analysis::kUnbounded);
  EXPECT_EQ(b.max_frames, analysis::kUnbounded);

  analysis::AdmissionReport report =
      analysis::admit(*m, *m->translated, analysis::AdmissionLimits{});
  EXPECT_TRUE(report.verified);
  EXPECT_FALSE(report.admitted);
  EXPECT_NE(report.reject_reason().find("no statically completing path"),
            std::string::npos)
      << report.reject_reason();
}

TEST(Bounds, AdmissionRejectsOnMinimumFrameNeed) {
  wasm::Module m = compile_and_translate(R"(
    fn leaf(x: i32) -> i32 { return x + 1; }
    export fn f() -> i32 { return leaf(41); })");
  analysis::AdmissionLimits limits;
  limits.max_call_depth = 1;  // f needs 2 frames on every path
  analysis::AdmissionReport report = analysis::admit(m, *m.translated, limits);
  EXPECT_TRUE(report.verified);
  EXPECT_FALSE(report.admitted);
  EXPECT_NE(report.reject_reason().find("call depth"), std::string::npos)
      << report.reject_reason();
  // The same module fits a deeper budget.
  limits.max_call_depth = 2;
  EXPECT_TRUE(analysis::admit(m, *m.translated, limits).admitted);
}

// --- PluginManager admission ------------------------------------------------

TEST(Admission, AcceptsExampleSchedulersUnderDefaultBudget) {
  plugin::PluginManager mgr;
  mgr.set_domain("adm-accept");
  mgr.set_admission(analysis::AdmissionMode::kEnforce);
  for (const char* kind : {"rr", "pf", "mt"}) {
    auto bytes = sched::plugins::scheduler(kind);
    ASSERT_TRUE(bytes.ok()) << kind;
    ASSERT_TRUE(mgr.install(kind, *bytes).ok()) << kind;
    const analysis::AdmissionReport* report = mgr.admission_report(kind);
    ASSERT_NE(report, nullptr) << kind;
    EXPECT_TRUE(report->verified);
    EXPECT_TRUE(report->admitted);
    bool found_schedule = false;
    for (const analysis::ExportReport& e : report->exports) {
      if (e.name != "schedule") continue;
      found_schedule = true;
      EXPECT_TRUE(e.violations.empty());
      EXPECT_GE(e.bounds.min_fuel, 1u);
      EXPECT_LE(e.bounds.min_fuel, plugin::PluginLimits{}.fuel_per_call);
      EXPECT_GE(e.bounds.min_frames, 1u);
    }
    EXPECT_TRUE(found_schedule) << kind;
  }
}

TEST(Admission, RejectsOverBudgetPluginBeforeFirstCall) {
  plugin::PluginLimits limits;
  limits.fuel_per_call = 10;  // below every scheduler's static minimum
  limits.admission = analysis::AdmissionMode::kEnforce;
  plugin::PluginManager mgr(limits);
  mgr.set_domain("adm-reject");

  auto bytes = sched::plugins::scheduler("rr");
  ASSERT_TRUE(bytes.ok());
  Status st = mgr.install("mvno", *bytes);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, Error::Code::kLimitExceeded);
  EXPECT_FALSE(mgr.has("mvno"));  // never owned a slot, so zero calls ever

  const analysis::AdmissionReport* report = mgr.last_admission_report();
  ASSERT_NE(report, nullptr);
  EXPECT_TRUE(report->verified);
  EXPECT_FALSE(report->admitted);
  EXPECT_NE(report->reject_reason().find("fuel"), std::string::npos)
      << report->reject_reason();

  // Exactly one anomaly in this manager's domain, and it is the rejection.
  auto records = obs::AnomalyJournal::global().snapshot("adm-reject");
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].kind, obs::AnomalyKind::kAdmissionReject);
  EXPECT_EQ(records[0].source, "mvno");

  // The slot cannot be called — the plugin never ran.
  auto call = mgr.call("mvno", "schedule", {});
  ASSERT_FALSE(call.ok());
  EXPECT_EQ(call.error().code, Error::Code::kNotFound);
}

TEST(Admission, WarnModeKeepsReportButInstalls) {
  plugin::PluginLimits limits;
  limits.fuel_per_call = 10;
  limits.admission = analysis::AdmissionMode::kWarn;
  plugin::PluginManager mgr(limits);
  mgr.set_domain("adm-warn");

  auto bytes = sched::plugins::scheduler("rr");
  ASSERT_TRUE(bytes.ok());
  ASSERT_TRUE(mgr.install("mvno", *bytes).ok());
  EXPECT_TRUE(mgr.has("mvno"));
  const analysis::AdmissionReport* report = mgr.admission_report("mvno");
  ASSERT_NE(report, nullptr);
  EXPECT_TRUE(report->verified);
  EXPECT_FALSE(report->admitted);  // would have been rejected under enforce
  EXPECT_TRUE(obs::AnomalyJournal::global().snapshot("adm-warn").empty());
}

TEST(Admission, SwapIsAdmissionCheckedToo) {
  plugin::PluginManager mgr;
  mgr.set_domain("adm-swap");
  mgr.set_admission(analysis::AdmissionMode::kEnforce);
  auto bytes = sched::plugins::scheduler("rr");
  ASSERT_TRUE(bytes.ok());
  ASSERT_TRUE(mgr.install("mvno", *bytes).ok());

  // A replacement that cannot complete must be refused; the old plugin
  // keeps the slot (the hot-swap guarantee extends to admission).
  ModuleBuilder mb;
  mb.add_memory(1, 1);
  auto& f = mb.add_func(FuncType{{}, {ValType::kI32}}, "schedule");
  f.call(0).end();
  Status st = mgr.swap("mvno", mb.build());
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, Error::Code::kLimitExceeded);
  EXPECT_TRUE(mgr.has("mvno"));
  const analysis::AdmissionReport* report = mgr.admission_report("mvno");
  ASSERT_NE(report, nullptr);
  EXPECT_TRUE(report->admitted);  // the slot still holds the admitted plugin
}

// --- Deployment-level episode ----------------------------------------------

TEST(AdmissionEpisode, RejectedSchedulerFailsDeploymentWithOneAnomaly) {
  const size_t before =
      obs::AnomalyJournal::global().snapshot("mac0").size();

  rt::DeploymentConfig cfg;
  cfg.cells = 1;
  cfg.threaded = false;
  cfg.virtual_time = true;
  cfg.admission = analysis::AdmissionMode::kEnforce;
  cfg.sched_fuel_per_call = 10;  // below every scheduler's static minimum
  rt::GnbDeployment dep(cfg);

  // Construction aborts at the first slice: the rejected plugin never runs.
  EXPECT_FALSE(dep.status().ok());
  EXPECT_EQ(dep.status().error().code, Error::Code::kLimitExceeded);

  auto records = obs::AnomalyJournal::global().snapshot("mac0");
  ASSERT_EQ(records.size(), before + 1);  // exactly one new anomaly
  EXPECT_EQ(records.back().kind, obs::AnomalyKind::kAdmissionReject);

  // The same deployment with an adequate budget constructs cleanly.
  cfg.sched_fuel_per_call = 0;  // PluginLimits default
  rt::GnbDeployment ok_dep(cfg);
  EXPECT_TRUE(ok_dep.status().ok()) << ok_dep.status().error().message;
}

}  // namespace
}  // namespace waran
