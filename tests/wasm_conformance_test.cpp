// Numeric conformance sweep: every i32/i64 binary/unary operator and every
// conversion is executed in the engine across edge-case operand grids and
// compared against reference semantics computed in C++ (which match the
// wasm spec for these cases by construction: wraparound via unsigned
// arithmetic, masked shifts, IEEE-754 for floats).
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <memory>
#include <vector>

#include "tests/wasm_test_util.h"

namespace waran {
namespace {

using namespace wasmtest;

// One module with an exported wrapper per operator under test.
class NumericConformance : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ModuleBuilder mb;
    auto bin = [&](const char* name, ValType t, Op op) {
      auto& f = mb.add_func(FuncType{{t, t}, {t}}, name);
      f.local_get(0).local_get(1).op(op).end();
    };
    auto cmp = [&](const char* name, ValType t, Op op) {
      auto& f = mb.add_func(FuncType{{t, t}, {ValType::kI32}}, name);
      f.local_get(0).local_get(1).op(op).end();
    };
    auto un = [&](const char* name, ValType in, ValType out, Op op) {
      auto& f = mb.add_func(FuncType{{in}, {out}}, name);
      f.local_get(0).op(op).end();
    };

    bin("i32add", ValType::kI32, Op::kI32Add);
    bin("i32sub", ValType::kI32, Op::kI32Sub);
    bin("i32mul", ValType::kI32, Op::kI32Mul);
    bin("i32and", ValType::kI32, Op::kI32And);
    bin("i32or", ValType::kI32, Op::kI32Or);
    bin("i32xor", ValType::kI32, Op::kI32Xor);
    bin("i32shl", ValType::kI32, Op::kI32Shl);
    bin("i32shrs", ValType::kI32, Op::kI32ShrS);
    bin("i32shru", ValType::kI32, Op::kI32ShrU);
    bin("i32rotl", ValType::kI32, Op::kI32Rotl);
    bin("i32rotr", ValType::kI32, Op::kI32Rotr);
    cmp("i32lts", ValType::kI32, Op::kI32LtS);
    cmp("i32ltu", ValType::kI32, Op::kI32LtU);
    cmp("i32ges", ValType::kI32, Op::kI32GeS);
    cmp("i32geu", ValType::kI32, Op::kI32GeU);

    bin("i64add", ValType::kI64, Op::kI64Add);
    bin("i64sub", ValType::kI64, Op::kI64Sub);
    bin("i64mul", ValType::kI64, Op::kI64Mul);
    bin("i64shl", ValType::kI64, Op::kI64Shl);
    bin("i64shrs", ValType::kI64, Op::kI64ShrS);
    bin("i64shru", ValType::kI64, Op::kI64ShrU);
    bin("i64rotl", ValType::kI64, Op::kI64Rotl);
    cmp("i64lts", ValType::kI64, Op::kI64LtS);
    cmp("i64ltu", ValType::kI64, Op::kI64LtU);

    bin("f64add", ValType::kF64, Op::kF64Add);
    bin("f64sub", ValType::kF64, Op::kF64Sub);
    bin("f64mul", ValType::kF64, Op::kF64Mul);
    bin("f64div", ValType::kF64, Op::kF64Div);
    bin("f64min", ValType::kF64, Op::kF64Min);
    bin("f64max", ValType::kF64, Op::kF64Max);
    bin("f64copysign", ValType::kF64, Op::kF64Copysign);
    cmp("f64eq", ValType::kF64, Op::kF64Eq);
    cmp("f64lt", ValType::kF64, Op::kF64Lt);

    un("i32clz", ValType::kI32, ValType::kI32, Op::kI32Clz);
    un("i32ctz", ValType::kI32, ValType::kI32, Op::kI32Ctz);
    un("i32popcnt", ValType::kI32, ValType::kI32, Op::kI32Popcnt);
    un("i64clz", ValType::kI64, ValType::kI64, Op::kI64Clz);
    un("i64ctz", ValType::kI64, ValType::kI64, Op::kI64Ctz);
    un("i64popcnt", ValType::kI64, ValType::kI64, Op::kI64Popcnt);
    un("wrap", ValType::kI64, ValType::kI32, Op::kI32WrapI64);
    un("extends", ValType::kI32, ValType::kI64, Op::kI64ExtendI32S);
    un("extendu", ValType::kI32, ValType::kI64, Op::kI64ExtendI32U);
    un("ext8", ValType::kI32, ValType::kI32, Op::kI32Extend8S);
    un("ext16", ValType::kI32, ValType::kI32, Op::kI32Extend16S);
    un("f64sqrt", ValType::kF64, ValType::kF64, Op::kF64Sqrt);
    un("f64ceil", ValType::kF64, ValType::kF64, Op::kF64Ceil);
    un("f64floor", ValType::kF64, ValType::kF64, Op::kF64Floor);
    un("f64trunc", ValType::kF64, ValType::kF64, Op::kF64Trunc);
    un("f64nearest", ValType::kF64, ValType::kF64, Op::kF64Nearest);
    un("convs", ValType::kI64, ValType::kF64, Op::kF64ConvertI64S);
    un("convu", ValType::kI64, ValType::kF64, Op::kF64ConvertI64U);
    un("demote", ValType::kF64, ValType::kF32, Op::kF32DemoteF64);
    un("promote", ValType::kF32, ValType::kF64, Op::kF64PromoteF32);

    instance_ = instantiate(mb).release();
    ASSERT_NE(instance_, nullptr);
  }

  static void TearDownTestSuite() {
    delete instance_;
    instance_ = nullptr;
  }

  static wasm::Instance* instance_;

  static const std::vector<int32_t>& i32_grid() {
    static const std::vector<int32_t> kGrid = {
        0, 1, -1, 2, -2, 31, 32, 33, 255, -256, 0x7fffffff,
        static_cast<int32_t>(0x80000000), static_cast<int32_t>(0xaaaaaaaa), 12345, -98765};
    return kGrid;
  }
  static const std::vector<int64_t>& i64_grid() {
    static const std::vector<int64_t> kGrid = {
        0, 1, -1, 63, 64, 65, (1LL << 32), -(1LL << 32),
        std::numeric_limits<int64_t>::max(), std::numeric_limits<int64_t>::min(),
        0x123456789abcdef0LL};
    return kGrid;
  }
  static const std::vector<double>& f64_grid() {
    static const std::vector<double> kGrid = {
        0.0, -0.0, 1.0, -1.5, 1e300, -1e300, 1e-300,
        std::numeric_limits<double>::infinity(),
        -std::numeric_limits<double>::infinity(),
        std::numeric_limits<double>::quiet_NaN(), 3.141592653589793};
    return kGrid;
  }
};

wasm::Instance* NumericConformance::instance_ = nullptr;

TEST_F(NumericConformance, I32BinaryOps) {
  for (int32_t a : i32_grid()) {
    for (int32_t b : i32_grid()) {
      auto args = std::vector<TypedValue>{TypedValue::i32(a), TypedValue::i32(b)};
      uint32_t ua = static_cast<uint32_t>(a), ub = static_cast<uint32_t>(b);
      EXPECT_EQ(call_i32(*instance_, "i32add", args), static_cast<int32_t>(ua + ub));
      EXPECT_EQ(call_i32(*instance_, "i32sub", args), static_cast<int32_t>(ua - ub));
      EXPECT_EQ(call_i32(*instance_, "i32mul", args), static_cast<int32_t>(ua * ub));
      EXPECT_EQ(call_i32(*instance_, "i32and", args), a & b);
      EXPECT_EQ(call_i32(*instance_, "i32or", args), a | b);
      EXPECT_EQ(call_i32(*instance_, "i32xor", args), a ^ b);
      EXPECT_EQ(call_i32(*instance_, "i32shl", args),
                static_cast<int32_t>(ua << (ub & 31)));
      EXPECT_EQ(call_i32(*instance_, "i32shrs", args), a >> (ub & 31));
      EXPECT_EQ(call_i32(*instance_, "i32shru", args),
                static_cast<int32_t>(ua >> (ub & 31)));
      EXPECT_EQ(call_i32(*instance_, "i32rotl", args),
                static_cast<int32_t>(std::rotl(ua, static_cast<int>(ub & 31))));
      EXPECT_EQ(call_i32(*instance_, "i32rotr", args),
                static_cast<int32_t>(std::rotr(ua, static_cast<int>(ub & 31))));
      EXPECT_EQ(call_i32(*instance_, "i32lts", args), a < b ? 1 : 0);
      EXPECT_EQ(call_i32(*instance_, "i32ltu", args), ua < ub ? 1 : 0);
      EXPECT_EQ(call_i32(*instance_, "i32ges", args), a >= b ? 1 : 0);
      EXPECT_EQ(call_i32(*instance_, "i32geu", args), ua >= ub ? 1 : 0);
    }
  }
}

TEST_F(NumericConformance, I64BinaryOps) {
  for (int64_t a : i64_grid()) {
    for (int64_t b : i64_grid()) {
      auto args = std::vector<TypedValue>{TypedValue::i64(a), TypedValue::i64(b)};
      uint64_t ua = static_cast<uint64_t>(a), ub = static_cast<uint64_t>(b);
      EXPECT_EQ(call_i64(*instance_, "i64add", args), static_cast<int64_t>(ua + ub));
      EXPECT_EQ(call_i64(*instance_, "i64sub", args), static_cast<int64_t>(ua - ub));
      EXPECT_EQ(call_i64(*instance_, "i64mul", args), static_cast<int64_t>(ua * ub));
      EXPECT_EQ(call_i64(*instance_, "i64shl", args),
                static_cast<int64_t>(ua << (ub & 63)));
      EXPECT_EQ(call_i64(*instance_, "i64shrs", args), a >> (ub & 63));
      EXPECT_EQ(call_i64(*instance_, "i64shru", args),
                static_cast<int64_t>(ua >> (ub & 63)));
      EXPECT_EQ(call_i64(*instance_, "i64rotl", args),
                static_cast<int64_t>(std::rotl(ua, static_cast<int>(ub & 63))));
      EXPECT_EQ(call_i32(*instance_, "i64lts", args), a < b ? 1 : 0);
      EXPECT_EQ(call_i32(*instance_, "i64ltu", args), ua < ub ? 1 : 0);
    }
  }
}

TEST_F(NumericConformance, F64BinaryOps) {
  for (double a : f64_grid()) {
    for (double b : f64_grid()) {
      auto args = std::vector<TypedValue>{TypedValue::f64(a), TypedValue::f64(b)};
      auto expect_f64 = [&](const char* fn, double want) {
        double got = call_f64(*instance_, fn, args);
        if (std::isnan(want)) {
          EXPECT_TRUE(std::isnan(got)) << fn << "(" << a << "," << b << ")";
        } else {
          EXPECT_EQ(got, want) << fn << "(" << a << "," << b << ")";
          EXPECT_EQ(std::signbit(got), std::signbit(want)) << fn;
        }
      };
      expect_f64("f64add", a + b);
      expect_f64("f64sub", a - b);
      expect_f64("f64mul", a * b);
      expect_f64("f64div", a / b);
      expect_f64("f64copysign", std::copysign(a, b));
      // Wasm min/max semantics (NaN-propagating, -0 < +0).
      double want_min, want_max;
      if (std::isnan(a) || std::isnan(b)) {
        want_min = want_max = std::numeric_limits<double>::quiet_NaN();
      } else if (a == b) {
        want_min = std::signbit(a) ? a : b;
        want_max = std::signbit(a) ? b : a;
      } else {
        want_min = a < b ? a : b;
        want_max = a > b ? a : b;
      }
      expect_f64("f64min", want_min);
      expect_f64("f64max", want_max);
      EXPECT_EQ(call_i32(*instance_, "f64eq", args), a == b ? 1 : 0);
      EXPECT_EQ(call_i32(*instance_, "f64lt", args), a < b ? 1 : 0);
    }
  }
}

TEST_F(NumericConformance, BitCountOps) {
  for (int32_t a : i32_grid()) {
    uint32_t ua = static_cast<uint32_t>(a);
    auto args = std::vector<TypedValue>{TypedValue::i32(a)};
    EXPECT_EQ(call_i32(*instance_, "i32clz", args),
              ua == 0 ? 32 : std::countl_zero(ua));
    EXPECT_EQ(call_i32(*instance_, "i32ctz", args),
              ua == 0 ? 32 : std::countr_zero(ua));
    EXPECT_EQ(call_i32(*instance_, "i32popcnt", args), std::popcount(ua));
  }
  for (int64_t a : i64_grid()) {
    uint64_t ua = static_cast<uint64_t>(a);
    auto args = std::vector<TypedValue>{TypedValue::i64(a)};
    EXPECT_EQ(call_i64(*instance_, "i64clz", args),
              ua == 0 ? 64 : std::countl_zero(ua));
    EXPECT_EQ(call_i64(*instance_, "i64ctz", args),
              ua == 0 ? 64 : std::countr_zero(ua));
    EXPECT_EQ(call_i64(*instance_, "i64popcnt", args), std::popcount(ua));
  }
}

TEST_F(NumericConformance, WidthConversions) {
  for (int64_t a : i64_grid()) {
    auto args64 = std::vector<TypedValue>{TypedValue::i64(a)};
    EXPECT_EQ(call_i32(*instance_, "wrap", args64),
              static_cast<int32_t>(static_cast<uint64_t>(a)));
    EXPECT_EQ(call_f64(*instance_, "convs", args64), static_cast<double>(a));
    EXPECT_EQ(call_f64(*instance_, "convu", args64),
              static_cast<double>(static_cast<uint64_t>(a)));
  }
  for (int32_t a : i32_grid()) {
    auto args32 = std::vector<TypedValue>{TypedValue::i32(a)};
    EXPECT_EQ(call_i64(*instance_, "extends", args32), static_cast<int64_t>(a));
    EXPECT_EQ(call_i64(*instance_, "extendu", args32),
              static_cast<int64_t>(static_cast<uint32_t>(a)));
    EXPECT_EQ(call_i32(*instance_, "ext8", args32),
              static_cast<int8_t>(static_cast<uint32_t>(a)));
    EXPECT_EQ(call_i32(*instance_, "ext16", args32),
              static_cast<int16_t>(static_cast<uint32_t>(a)));
  }
}

TEST_F(NumericConformance, F64UnaryOps) {
  for (double a : f64_grid()) {
    auto args = std::vector<TypedValue>{TypedValue::f64(a)};
    auto expect_f64 = [&](const char* fn, double want) {
      double got = call_f64(*instance_, fn, args);
      if (std::isnan(want)) {
        EXPECT_TRUE(std::isnan(got)) << fn << "(" << a << ")";
      } else {
        EXPECT_EQ(got, want) << fn << "(" << a << ")";
      }
    };
    expect_f64("f64sqrt", std::sqrt(a));
    expect_f64("f64ceil", std::ceil(a));
    expect_f64("f64floor", std::floor(a));
    expect_f64("f64trunc", std::trunc(a));
    expect_f64("f64nearest", std::nearbyint(a));
    float demoted = call_f32(*instance_, "demote", args);
    if (std::isnan(a)) {
      EXPECT_TRUE(std::isnan(demoted));
    } else {
      EXPECT_EQ(demoted, static_cast<float>(a));
    }
  }
}

TEST_F(NumericConformance, PromoteIsExact) {
  for (float f : {0.0f, -0.0f, 1.5f, 3.4e38f, -1e-30f}) {
    auto args = std::vector<TypedValue>{TypedValue::f32(f)};
    EXPECT_EQ(call_f64(*instance_, "promote", args), static_cast<double>(f));
  }
}

// Division/remainder trap matrix on a dedicated instance (traps are per
// call; keeping them out of the shared instance keeps the sweep readable).
class DivisionConformance : public ::testing::TestWithParam<std::pair<int32_t, int32_t>> {};

TEST_P(DivisionConformance, SignedDivRemMatchWasmSemantics) {
  ModuleBuilder mb;
  auto& d = mb.add_func(FuncType{{ValType::kI32, ValType::kI32}, {ValType::kI32}}, "div");
  d.local_get(0).local_get(1).op(Op::kI32DivS).end();
  auto& r = mb.add_func(FuncType{{ValType::kI32, ValType::kI32}, {ValType::kI32}}, "rem");
  r.local_get(0).local_get(1).op(Op::kI32RemS).end();
  auto inst = instantiate(mb);
  ASSERT_NE(inst, nullptr);

  auto [a, b] = GetParam();
  auto args = std::vector<TypedValue>{TypedValue::i32(a), TypedValue::i32(b)};
  bool traps_div = b == 0 || (a == std::numeric_limits<int32_t>::min() && b == -1);
  bool traps_rem = b == 0;
  if (traps_div) {
    EXPECT_EQ(call_expect_trap(*inst, "div", args).code, Error::Code::kTrap);
  } else {
    EXPECT_EQ(call_i32(*inst, "div", args), a / b);
  }
  if (traps_rem) {
    EXPECT_EQ(call_expect_trap(*inst, "rem", args).code, Error::Code::kTrap);
  } else if (a == std::numeric_limits<int32_t>::min() && b == -1) {
    EXPECT_EQ(call_i32(*inst, "rem", args), 0);
  } else {
    EXPECT_EQ(call_i32(*inst, "rem", args), a % b);
  }
}

INSTANTIATE_TEST_SUITE_P(
    EdgeCases, DivisionConformance,
    ::testing::Values(std::pair{7, 2}, std::pair{-7, 2}, std::pair{7, -2},
                      std::pair{-7, -2}, std::pair{0, 5}, std::pair{5, 0},
                      std::pair{std::numeric_limits<int32_t>::min(), -1},
                      std::pair{std::numeric_limits<int32_t>::min(), 1},
                      std::pair{std::numeric_limits<int32_t>::max(), -1}));

}  // namespace
}  // namespace waran

// Appended: f32 operator sweep (the engine stores f32 in the low half of
// the untagged cell; these catch any upper-half contamination).
namespace waran {
namespace {
using namespace wasmtest;

class F32Conformance : public ::testing::Test {
 protected:
  static std::unique_ptr<wasm::Instance>& inst() {
    static std::unique_ptr<wasm::Instance> instance = [] {
      ModuleBuilder mb;
      auto bin = [&](const char* name, Op op) {
        auto& f = mb.add_func(FuncType{{ValType::kF32, ValType::kF32}, {ValType::kF32}}, name);
        f.local_get(0).local_get(1).op(op).end();
      };
      auto un = [&](const char* name, Op op) {
        auto& f = mb.add_func(FuncType{{ValType::kF32}, {ValType::kF32}}, name);
        f.local_get(0).op(op).end();
      };
      bin("add", Op::kF32Add);
      bin("sub", Op::kF32Sub);
      bin("mul", Op::kF32Mul);
      bin("div", Op::kF32Div);
      bin("min", Op::kF32Min);
      bin("max", Op::kF32Max);
      bin("copysign", Op::kF32Copysign);
      un("abs", Op::kF32Abs);
      un("neg", Op::kF32Neg);
      un("sqrt", Op::kF32Sqrt);
      un("ceil", Op::kF32Ceil);
      un("floor", Op::kF32Floor);
      un("trunc", Op::kF32Trunc);
      un("nearest", Op::kF32Nearest);
      auto& cv = mb.add_func(FuncType{{ValType::kI32}, {ValType::kF32}}, "convu");
      cv.local_get(0).op(Op::kF32ConvertI32U).end();
      return instantiate(mb);
    }();
    return instance;
  }

  static const std::vector<float>& grid() {
    static const std::vector<float> kGrid = {
        0.0f, -0.0f, 1.0f, -2.5f, 3.4e38f, -3.4e38f, 1e-38f,
        std::numeric_limits<float>::infinity(),
        -std::numeric_limits<float>::infinity(),
        std::numeric_limits<float>::quiet_NaN(), 0.3333333f};
    return kGrid;
  }
};

TEST_F(F32Conformance, BinaryOps) {
  ASSERT_NE(inst(), nullptr);
  for (float a : grid()) {
    for (float b : grid()) {
      auto args = std::vector<TypedValue>{TypedValue::f32(a), TypedValue::f32(b)};
      auto expect = [&](const char* fn, float want) {
        float got = call_f32(*inst(), fn, args);
        if (std::isnan(want)) {
          EXPECT_TRUE(std::isnan(got)) << fn << "(" << a << "," << b << ")";
        } else {
          EXPECT_EQ(got, want) << fn << "(" << a << "," << b << ")";
          EXPECT_EQ(std::signbit(got), std::signbit(want)) << fn;
        }
      };
      expect("add", a + b);
      expect("sub", a - b);
      expect("mul", a * b);
      expect("div", a / b);
      expect("copysign", std::copysign(a, b));
      float want_min, want_max;
      if (std::isnan(a) || std::isnan(b)) {
        want_min = want_max = std::numeric_limits<float>::quiet_NaN();
      } else if (a == b) {
        want_min = std::signbit(a) ? a : b;
        want_max = std::signbit(a) ? b : a;
      } else {
        want_min = a < b ? a : b;
        want_max = a > b ? a : b;
      }
      expect("min", want_min);
      expect("max", want_max);
    }
  }
}

TEST_F(F32Conformance, UnaryOps) {
  ASSERT_NE(inst(), nullptr);
  for (float a : grid()) {
    auto args = std::vector<TypedValue>{TypedValue::f32(a)};
    auto expect = [&](const char* fn, float want) {
      float got = call_f32(*inst(), fn, args);
      if (std::isnan(want)) {
        EXPECT_TRUE(std::isnan(got)) << fn << "(" << a << ")";
      } else {
        EXPECT_EQ(got, want) << fn << "(" << a << ")";
      }
    };
    expect("abs", std::fabs(a));
    expect("neg", -a);
    expect("sqrt", std::sqrt(a));
    expect("ceil", std::ceil(a));
    expect("floor", std::floor(a));
    expect("trunc", std::trunc(a));
    expect("nearest", std::nearbyintf(a));
  }
}

TEST_F(F32Conformance, UnsignedConvertRoundsToNearestFloat) {
  ASSERT_NE(inst(), nullptr);
  for (uint32_t v : {0u, 1u, 0x80000000u, 0xffffffffu, 16777217u}) {
    auto args = std::vector<TypedValue>{TypedValue::i32(static_cast<int32_t>(v))};
    EXPECT_EQ(call_f32(*inst(), "convu", args), static_cast<float>(v)) << v;
  }
}

}  // namespace
}  // namespace waran
