// waran::chaos — fault-plan unit tests plus the invariant-checked chaos
// campaign. The campaign runs 200 consecutive seeded episodes of the full
// gNB<->RIC loop with every fault site armed; any failure prints the seed
// so `waran_chaos --seed <s>` replays it bit-for-bit. This TU installs the
// counting operator new (tests/heap_probe_guard.h), so each episode's
// warm-path probe asserts the zero-allocation guarantee against real heap
// traffic, not a stubbed counter.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "chaos/fault_plan.h"
#include "chaos/harness.h"
#include "common/log.h"
#include "tests/heap_probe_guard.h"

namespace waran::chaos {
namespace {

// Storm-induced quarantines are the point of this suite; without this the
// campaign prints hundreds of expected [WARN] lines.
class QuietExpectedWarnings : public ::testing::Environment {
 public:
  void SetUp() override { set_log_level("plugin", LogLevel::kError); }
  void TearDown() override { clear_log_level_overrides(); }
};
const auto* const kQuiet =
    ::testing::AddGlobalTestEnvironment(new QuietExpectedWarnings);

// --- FaultPlan unit tests ---------------------------------------------------

TEST(FaultPlan, SameSeedSameDraws) {
  FaultPlan a(0x5eed);
  FaultPlan b(0x5eed);
  for (int i = 0; i < 512; ++i) {
    auto fa = a.draw_call("mac", "iot-co", true);
    auto fb = b.draw_call("mac", "iot-co", true);
    ASSERT_EQ(fa.has_value(), fb.has_value()) << "draw " << i;
    if (fa) {
      EXPECT_EQ(fa->kind, fb->kind);
      EXPECT_EQ(fa->storm_member, fb->storm_member);
    }
    EXPECT_EQ(a.draw_sched(), b.draw_sched());
    EXPECT_EQ(a.draw_slot_overrun(i), b.draw_slot_overrun(i));
    auto la = a.draw_link();
    auto lb = b.draw_link();
    ASSERT_EQ(la.has_value(), lb.has_value());
    if (la) {
      EXPECT_EQ(la->kind, lb->kind);
      EXPECT_EQ(la->entropy, lb->entropy);
    }
  }
  EXPECT_EQ(a.total(), b.total());
  for (size_t k = 0; k < kFaultKindCount; ++k) {
    EXPECT_EQ(a.count(static_cast<FaultKind>(k)), b.count(static_cast<FaultKind>(k)));
  }
}

TEST(FaultPlan, SitesDrawFromIndependentStreams) {
  // Interleaving draws at other sites must not shift the call-site stream:
  // that is what makes adding a new injection point a non-event for replay.
  FaultPlan pure(7);
  FaultPlan mixed(7);
  for (int i = 0; i < 256; ++i) {
    // Burn randomness at every other site in the mixed plan only.
    mixed.draw_sched();
    mixed.draw_link();
    mixed.draw_slot_overrun(i);
    mixed.draw_load_failure("iot-co");
    mixed.draw_grow_denial();
    auto fp = pure.draw_call("mac", "s", true);
    auto fm = mixed.draw_call("mac", "s", true);
    ASSERT_EQ(fp.has_value(), fm.has_value()) << "draw " << i;
    if (fp) {
      EXPECT_EQ(fp->kind, fm->kind);
    }
  }
}

TEST(FaultPlan, StormRunsToQuarantineThenCoolsDown) {
  // Force the escalation path: every crossing faults and every fault is a
  // storm. The storm must deliver exactly three consecutive traps, note one
  // quarantine, and leave the crossing after it clean.
  PlanConfig cfg;
  cfg.call_fault_per_1024 = 1024;
  cfg.storm_per_1024 = 1024;
  FaultPlan plan(1, cfg);

  auto f1 = plan.draw_call("mac", "s", true);
  ASSERT_TRUE(f1.has_value());
  EXPECT_EQ(f1->kind, FaultKind::kForceTrap);
  EXPECT_TRUE(f1->storm_member);
  EXPECT_TRUE(plan.storm_active("mac", "s"));

  auto f2 = plan.draw_call("mac", "s", true);
  auto f3 = plan.draw_call("mac", "s", true);
  ASSERT_TRUE(f2.has_value());
  ASSERT_TRUE(f3.has_value());
  EXPECT_TRUE(f2->storm_member);
  EXPECT_TRUE(f3->storm_member);
  EXPECT_FALSE(plan.storm_active("mac", "s"));
  EXPECT_EQ(plan.count(FaultKind::kForceTrap), 3u);
  EXPECT_EQ(plan.count(FaultKind::kQuarantineStorm), 1u);

  // Cooldown: the crossing after the quarantine is guaranteed clean even
  // though the fire rate is 100%.
  EXPECT_FALSE(plan.draw_call("mac", "s", true).has_value());
}

TEST(FaultPlan, NonStormFaultsNeverStackConsecutively) {
  // With storms disabled, the cooldown guarantees at most one injected
  // fault per two crossings — so plain faults can never accumulate into
  // the manager's 3-consecutive quarantine threshold by accident.
  PlanConfig cfg;
  cfg.call_fault_per_1024 = 1024;
  cfg.storm_per_1024 = 0;
  FaultPlan plan(2, cfg);
  int consecutive = 0;
  for (int i = 0; i < 200; ++i) {
    if (plan.draw_call("mac", "s", true)) {
      ++consecutive;
      ASSERT_LT(consecutive, 3) << "three consecutive non-storm faults";
    } else {
      consecutive = 0;
    }
  }
  EXPECT_EQ(plan.count(FaultKind::kQuarantineStorm), 0u);
}

TEST(FaultPlan, DeadlineOnlyWhereAllowed) {
  PlanConfig cfg;
  cfg.call_fault_per_1024 = 1024;
  cfg.storm_per_1024 = 0;
  FaultPlan plan(3, cfg);
  for (int i = 0; i < 300; ++i) {
    auto f = plan.draw_call("ric", "xapp:sla", /*allow_deadline=*/false);
    if (f) {
      EXPECT_NE(f->kind, FaultKind::kDeadlineOverrun);
    }
  }
}

TEST(FaultPlan, InactivePlanNeverInjects) {
  PlanConfig cfg;
  cfg.call_fault_per_1024 = 1024;
  cfg.sched_fault_per_1024 = 1024;
  cfg.slot_overrun_per_1024 = 1024;
  cfg.link_fault_per_1024 = 1024;
  cfg.load_failure_per_1024 = 1024;
  cfg.grow_denial_per_1024 = 1024;
  FaultPlan plan(4, cfg);
  plan.set_active(false);
  for (int i = 0; i < 64; ++i) {
    EXPECT_FALSE(plan.draw_call("mac", "s", true).has_value());
    EXPECT_FALSE(plan.draw_sched().has_value());
    EXPECT_FALSE(plan.draw_slot_overrun(i));
    EXPECT_FALSE(plan.draw_link().has_value());
    EXPECT_FALSE(plan.draw_load_failure("s"));
    EXPECT_FALSE(plan.draw_grow_denial());
  }
  EXPECT_EQ(plan.total(), 0u);
}

// --- Episode determinism ----------------------------------------------------

TEST(ChaosEpisode, SameSeedReplaysBitForBit) {
  EpisodeOptions opts;
  opts.seed = 42;
  EpisodeReport a = run_episode(opts);
  EpisodeReport b = run_episode(opts);
  EXPECT_TRUE(a.passed) << summarize(a);
  EXPECT_EQ(a.slots, b.slots);
  EXPECT_EQ(a.injections, b.injections);
  EXPECT_EQ(a.anomalies, b.anomalies);
  EXPECT_EQ(a.contained_errors, b.contained_errors);
  EXPECT_EQ(a.injected_by_kind, b.injected_by_kind);
  ASSERT_EQ(a.injection_log.size(), b.injection_log.size());
  for (size_t i = 0; i < a.injection_log.size(); ++i) {
    EXPECT_EQ(a.injection_log[i].kind, b.injection_log[i].kind) << "entry " << i;
    EXPECT_EQ(a.injection_log[i].site, b.injection_log[i].site) << "entry " << i;
  }
}

TEST(ChaosEpisode, DifferentSeedsDiverge) {
  EpisodeOptions opts;
  opts.seed = 100;
  opts.rounds = 3;
  opts.warm_path_probe = false;
  EpisodeReport a = run_episode(opts);
  opts.seed = 101;
  EpisodeReport b = run_episode(opts);
  EXPECT_TRUE(a.passed) << summarize(a);
  EXPECT_TRUE(b.passed) << summarize(b);
  // Both injected something, and not the identical schedule.
  EXPECT_GT(a.injections, 0u);
  EXPECT_GT(b.injections, 0u);
  bool same = a.injection_log.size() == b.injection_log.size();
  if (same) {
    for (size_t i = 0; i < a.injection_log.size(); ++i) {
      same = same && a.injection_log[i].kind == b.injection_log[i].kind &&
             a.injection_log[i].site == b.injection_log[i].site;
    }
  }
  EXPECT_FALSE(same) << "seeds 100 and 101 produced identical schedules";
}

TEST(ChaosEpisode, VirtualTimeReplaysBitForBit) {
  // Same episode on the rt virtual clock: the timing-dependent fault paths
  // (deadline overruns via the fuel backstop, slot overruns via injected
  // padding) must stay fully deterministic with no wall clock involved.
  EpisodeOptions opts;
  opts.seed = 77;
  opts.virtual_time = true;
  EpisodeReport a = run_episode(opts);
  EpisodeReport b = run_episode(opts);
  EXPECT_TRUE(a.passed) << summarize(a);
  EXPECT_GT(a.injections, 0u);
  EXPECT_EQ(a.slots, b.slots);
  EXPECT_EQ(a.injections, b.injections);
  EXPECT_EQ(a.anomalies, b.anomalies);
  EXPECT_EQ(a.contained_errors, b.contained_errors);
  EXPECT_EQ(a.injected_by_kind, b.injected_by_kind);
  ASSERT_EQ(a.injection_log.size(), b.injection_log.size());
  for (size_t i = 0; i < a.injection_log.size(); ++i) {
    EXPECT_EQ(a.injection_log[i].kind, b.injection_log[i].kind) << "entry " << i;
    EXPECT_EQ(a.injection_log[i].site, b.injection_log[i].site) << "entry " << i;
  }
}

TEST(ChaosEpisode, MultiCellEpisodeHoldsInvariants) {
  // Four cells on four worker threads against the shared RIC, one fault
  // plan per cell: the full invariant suite (journal attribution, link
  // conservation, PRB caps, cross-layer accounting) must hold per cell.
  EpisodeOptions opts;
  opts.seed = 9;
  opts.cells = 4;
  opts.virtual_time = true;
  EpisodeReport r = run_episode(opts);
  EXPECT_TRUE(r.passed) << summarize(r);
  for (const auto& v : r.violations) ADD_FAILURE() << v;
  EXPECT_GT(r.injections, 0u);
  EXPECT_GT(r.anomalies, 0u);
  EXPECT_EQ(r.slots % 4, 0u);  // every cell ran the same slot count

  // And it replays bit-for-bit despite the worker threads.
  EpisodeReport r2 = run_episode(opts);
  EXPECT_EQ(r.injections, r2.injections);
  EXPECT_EQ(r.anomalies, r2.anomalies);
  EXPECT_EQ(r.injected_by_kind, r2.injected_by_kind);
}

TEST(ChaosEpisode, TieringIsInvisibleToTheInvariantSuite) {
  // Same multicell episode, tier-1 vs tier-2: schedulers cross the tier
  // boundary mid-campaign (threshold 8 ≪ calls per episode), while faults
  // inject traps, starvation and quarantine around them. Specialization
  // must be observationally invisible — every invariant holds and the
  // fault/anomaly accounting is identical to the untiered run, because the
  // specialized streams execute the same semantics for the same fuel.
  EpisodeOptions opts;
  opts.seed = 9;
  opts.cells = 4;
  opts.virtual_time = true;
  EpisodeReport base = run_episode(opts);
  ASSERT_TRUE(base.passed) << summarize(base);

  opts.tier_up_threshold = 8;
  EpisodeReport tiered = run_episode(opts);
  EXPECT_TRUE(tiered.passed) << summarize(tiered);
  for (const auto& v : tiered.violations) ADD_FAILURE() << v;
  EXPECT_EQ(base.injections, tiered.injections);
  EXPECT_EQ(base.anomalies, tiered.anomalies);
  EXPECT_EQ(base.contained_errors, tiered.contained_errors);
  EXPECT_EQ(base.injected_by_kind, tiered.injected_by_kind);

  // And the tiered run itself replays bit-for-bit: call-count-driven
  // tier-up is deterministic under virtual time.
  EpisodeReport tiered2 = run_episode(opts);
  EXPECT_EQ(tiered.injections, tiered2.injections);
  EXPECT_EQ(tiered.anomalies, tiered2.anomalies);
  EXPECT_EQ(tiered.injected_by_kind, tiered2.injected_by_kind);
}

// --- The campaign -----------------------------------------------------------

TEST(ChaosCampaign, TwoHundredConsecutiveSeededEpisodesHoldAllInvariants) {
  constexpr uint64_t kBaseSeed = 1000;
  constexpr uint32_t kEpisodes = 200;
  CampaignReport camp = run_campaign(kBaseSeed, kEpisodes);
  EXPECT_EQ(camp.episodes, kEpisodes);
  for (const EpisodeReport& r : camp.failed) {
    ADD_FAILURE() << summarize(r) << "\n  replay: waran_chaos --seed " << r.seed;
  }
  EXPECT_EQ(camp.failures, 0u);
  EXPECT_GT(camp.injections, 0u);
  EXPECT_GT(camp.anomalies, 0u);

  // The campaign must actually exercise every fault kind — a fault site
  // that silently stopped firing would hollow out the suite.
  for (size_t k = 0; k < kFaultKindCount; ++k) {
    EXPECT_GT(camp.injected_by_kind[k], 0u)
        << "fault kind never fired across " << kEpisodes
        << " episodes: " << to_string(static_cast<FaultKind>(k));
  }
}

}  // namespace
}  // namespace waran::chaos
