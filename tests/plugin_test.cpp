// Plugin framework tests: the Extism-like ABI, fuel policy, fault
// containment, hot swap and quarantine — the mechanics behind the paper's
// §5C (flexibility) and §5D (memory safety) results.
#include <gtest/gtest.h>

#include "plugin/manager.h"
#include "plugin/plugin.h"
#include "wcc/compiler.h"

namespace waran::plugin {
namespace {

std::vector<uint8_t> compile(const char* src) {
  auto bytes = wcc::compile(src);
  EXPECT_TRUE(bytes.ok()) << (bytes.ok() ? "" : bytes.error().message);
  return bytes.ok() ? *bytes : std::vector<uint8_t>{};
}

const char* kEchoSrc = R"(
  export fn run() -> i32 {
    var n: i32 = input_len();
    input_read(0, 0, n);
    output_write(0, n);
    return 0;
  }
)";

const char* kSumSrc = R"(
  // Sums input bytes, writes the 32-bit sum.
  export fn run() -> i32 {
    var n: i32 = input_len();
    input_read(0, 0, n);
    var sum: i32 = 0;
    var i: i32 = 0;
    while (i < n) {
      sum = sum + load8u(i);
      i = i + 1;
    }
    store32(1024, sum);
    output_write(1024, 4);
    return 0;
  }
)";

TEST(Plugin, EchoRoundTrip) {
  auto p = Plugin::load(compile(kEchoSrc));
  ASSERT_TRUE(p.ok()) << p.error().message;
  std::vector<uint8_t> input = {9, 8, 7};
  auto out = (*p)->call("run", input);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, input);
  EXPECT_EQ((*p)->stats().calls, 1u);
  EXPECT_EQ((*p)->stats().traps, 0u);
}

TEST(Plugin, SumComputes) {
  auto p = Plugin::load(compile(kSumSrc));
  ASSERT_TRUE(p.ok());
  std::vector<uint8_t> input = {10, 20, 30, 40};
  auto out = (*p)->call("run", input);
  ASSERT_TRUE(out.ok()) << out.error().message;
  ASSERT_EQ(out->size(), 4u);
  uint32_t sum;
  memcpy(&sum, out->data(), 4);
  EXPECT_EQ(sum, 100u);
}

TEST(Plugin, EmptyInputYieldsEmptyEcho) {
  auto p = Plugin::load(compile(kEchoSrc));
  ASSERT_TRUE(p.ok());
  auto out = (*p)->call("run", {});
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->empty());
}

TEST(Plugin, NonzeroStatusIsError) {
  auto p = Plugin::load(compile("export fn run() -> i32 { return 7; }"));
  ASSERT_TRUE(p.ok());
  auto out = (*p)->call("run", {});
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.error().code, Error::Code::kState);
  EXPECT_NE(out.error().message.find("7"), std::string::npos);
}

TEST(Plugin, WrongEntrypointTypeRejected) {
  auto p = Plugin::load(compile("export fn run(x: i32) -> i32 { return x; }"));
  ASSERT_TRUE(p.ok());
  auto out = (*p)->call("run", {});
  EXPECT_FALSE(out.ok());
}

TEST(Plugin, OutputTooLargeIsTrapped) {
  PluginLimits limits;
  limits.max_output_bytes = 16;
  auto p = Plugin::load(compile(R"(
    export fn run() -> i32 { output_write(0, 1000); return 0; }
  )"),
                        {}, limits);
  ASSERT_TRUE(p.ok());
  auto out = (*p)->call("run", {});
  ASSERT_FALSE(out.ok());
  EXPECT_NE(out.error().message.find("output exceeds"), std::string::npos);
}

TEST(Plugin, OutputFromOutOfBoundsMemoryTraps) {
  auto p = Plugin::load(compile(R"(
    export fn run() -> i32 { output_write(99999999, 8); return 0; }
  )"));
  ASSERT_TRUE(p.ok());
  auto out = (*p)->call("run", {});
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.error().code, Error::Code::kTrap);
}

TEST(Plugin, FuelExhaustionIsContained) {
  PluginLimits limits;
  limits.fuel_per_call = 1000;
  auto p = Plugin::load(compile(R"(
    export fn run() -> i32 { while (1) {} return 0; }
  )"),
                        {}, limits);
  ASSERT_TRUE(p.ok());
  auto out = (*p)->call("run", {});
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.error().code, Error::Code::kFuelExhausted);
  EXPECT_EQ((*p)->stats().fuel_exhaustions, 1u);
}

TEST(Plugin, TrapDoesNotPoisonNextCall) {
  // §5D: the host catches the exception and continues running.
  auto p = Plugin::load(compile(R"(
    export fn crash() -> i32 { return load32(123456789); }
    export fn run() -> i32 { output_write(0, 0); return 0; }
  )"));
  ASSERT_TRUE(p.ok());
  for (int i = 0; i < 5; ++i) {
    auto bad = (*p)->call("crash", {});
    EXPECT_FALSE(bad.ok());
    auto good = (*p)->call("run", {});
    EXPECT_TRUE(good.ok());
  }
  EXPECT_EQ((*p)->stats().traps, 5u);
}

TEST(Plugin, InputTooLargeRejectedBeforeExecution) {
  PluginLimits limits;
  limits.max_input_bytes = 8;
  auto p = Plugin::load(compile(kEchoSrc), {}, limits);
  ASSERT_TRUE(p.ok());
  std::vector<uint8_t> big(100, 1);
  auto out = (*p)->call("run", big);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.error().code, Error::Code::kLimitExceeded);
  EXPECT_EQ((*p)->stats().calls, 0u);  // never dispatched
}

TEST(Plugin, LogLinesCaptured) {
  // 'hi' at address 0 via stores, then log(0, 2).
  auto p = Plugin::load(compile(R"(
    export fn run() -> i32 {
      store8(0, 104);
      store8(1, 105);
      log(0, 2);
      output_write(0, 0);
      return 0;
    }
  )"));
  ASSERT_TRUE(p.ok());
  auto out = (*p)->call("run", {});
  ASSERT_TRUE(out.ok());
  ASSERT_EQ((*p)->log_lines().size(), 1u);
  EXPECT_EQ((*p)->log_lines()[0], "hi");
}

TEST(Plugin, AbortHostFunctionTraps) {
  auto p = Plugin::load(compile("export fn run() -> i32 { abort(3); return 0; }"));
  ASSERT_TRUE(p.ok());
  auto out = (*p)->call("run", {});
  ASSERT_FALSE(out.ok());
  EXPECT_NE(out.error().message.find("code 3"), std::string::npos);
}

TEST(Plugin, MalformedModuleRejectedAtLoad) {
  std::vector<uint8_t> garbage = {0, 1, 2, 3};
  auto p = Plugin::load(garbage);
  ASSERT_FALSE(p.ok());
  EXPECT_EQ(p.error().code, Error::Code::kDecode);
}

// --- PluginManager: slots, swap, quarantine. ---

TEST(Manager, InstallAndCall) {
  PluginManager mgr;
  ASSERT_TRUE(mgr.install("mvno1", compile(kEchoSrc)).ok());
  EXPECT_TRUE(mgr.has("mvno1"));
  std::vector<uint8_t> input = {5};
  auto out = mgr.call("mvno1", "run", input);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, input);
}

TEST(Manager, DuplicateInstallRejected) {
  PluginManager mgr;
  ASSERT_TRUE(mgr.install("s", compile(kEchoSrc)).ok());
  EXPECT_FALSE(mgr.install("s", compile(kEchoSrc)).ok());
}

TEST(Manager, SwapChangesBehaviourAtomically) {
  PluginManager mgr;
  ASSERT_TRUE(mgr.install("s", compile(kEchoSrc)).ok());
  // Swap echo -> sum.
  ASSERT_TRUE(mgr.swap("s", compile(kSumSrc)).ok());
  std::vector<uint8_t> input = {1, 2, 3};
  auto out = mgr.call("s", "run", input);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 4u);  // sum output, not echo
  EXPECT_EQ(mgr.health("s")->swaps, 1u);
}

TEST(Manager, FailedSwapKeepsOldPlugin) {
  PluginManager mgr;
  ASSERT_TRUE(mgr.install("s", compile(kEchoSrc)).ok());
  std::vector<uint8_t> garbage = {9, 9, 9};
  EXPECT_FALSE(mgr.swap("s", garbage).ok());
  // Old plugin still works.
  std::vector<uint8_t> input = {42};
  auto out = mgr.call("s", "run", input);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, input);
}

TEST(Manager, QuarantineAfterConsecutiveFaults) {
  PluginLimits limits;
  limits.quarantine_after_faults = 3;
  PluginManager mgr(limits);
  ASSERT_TRUE(mgr.install("bad", compile(R"(
    export fn run() -> i32 { trap(); return 0; }
  )")).ok());
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(mgr.call("bad", "run", {}).ok());
  }
  EXPECT_TRUE(mgr.health("bad")->quarantined);
  // Further calls rejected without dispatch.
  auto r = mgr.call("bad", "run", {});
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("quarantined"), std::string::npos);
}

TEST(Manager, SuccessResetsConsecutiveFaultCount) {
  PluginLimits limits;
  limits.quarantine_after_faults = 3;
  PluginManager mgr(limits);
  // Trap when input is empty, succeed otherwise.
  ASSERT_TRUE(mgr.install("flaky", compile(R"(
    export fn run() -> i32 {
      if (input_len() == 0) { trap(); }
      output_write(0, 0);
      return 0;
    }
  )")).ok());
  std::vector<uint8_t> ok_input = {1};
  for (int round = 0; round < 4; ++round) {
    EXPECT_FALSE(mgr.call("flaky", "run", {}).ok());
    EXPECT_FALSE(mgr.call("flaky", "run", {}).ok());
    EXPECT_TRUE(mgr.call("flaky", "run", ok_input).ok());
  }
  EXPECT_FALSE(mgr.health("flaky")->quarantined);
}

TEST(Manager, SwapLiftsQuarantine) {
  PluginLimits limits;
  limits.quarantine_after_faults = 1;
  PluginManager mgr(limits);
  ASSERT_TRUE(mgr.install("s", compile(
      "export fn run() -> i32 { trap(); return 0; }")).ok());
  EXPECT_FALSE(mgr.call("s", "run", {}).ok());
  EXPECT_TRUE(mgr.health("s")->quarantined);
  ASSERT_TRUE(mgr.swap("s", compile(kEchoSrc)).ok());
  EXPECT_FALSE(mgr.health("s")->quarantined);
  EXPECT_TRUE(mgr.call("s", "run", {}).ok());
}

TEST(Manager, DeclinesDoNotQuarantine) {
  // A plugin that deliberately rejects its input (nonzero status) must not
  // be quarantined — rejecting bad frames is its job.
  PluginLimits limits;
  limits.quarantine_after_faults = 2;
  PluginManager mgr(limits);
  ASSERT_TRUE(mgr.install("validator", compile(R"(
    export fn run() -> i32 { return 1; }
  )")).ok());
  for (int i = 0; i < 10; ++i) {
    auto r = mgr.call("validator", "run", {});
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, Error::Code::kState);
  }
  EXPECT_FALSE(mgr.health("validator")->quarantined);
  EXPECT_EQ(mgr.health("validator")->declines, 10u);
  EXPECT_EQ(mgr.health("validator")->faults, 0u);
}

TEST(Manager, RemoveSlot) {
  PluginManager mgr;
  ASSERT_TRUE(mgr.install("s", compile(kEchoSrc)).ok());
  ASSERT_TRUE(mgr.remove("s").ok());
  EXPECT_FALSE(mgr.has("s"));
  EXPECT_FALSE(mgr.call("s", "run", {}).ok());
  EXPECT_FALSE(mgr.remove("s").ok());
}

TEST(Manager, MemoryIsolationBetweenSlots) {
  // Two instances of the same module must not share linear memory.
  const char* src = R"(
    export fn run() -> i32 {
      var n: i32 = input_len();
      if (n > 0) {
        input_read(0, 0, 1);    // poke first input byte into memory[0]
      }
      output_write(0, 1);       // expose memory[0]
      return 0;
    }
  )";
  PluginManager mgr;
  ASSERT_TRUE(mgr.install("a", compile(src)).ok());
  ASSERT_TRUE(mgr.install("b", compile(src)).ok());
  std::vector<uint8_t> poke = {0xaa};
  ASSERT_TRUE(mgr.call("a", "run", poke).ok());
  auto b_out = mgr.call("b", "run", {});
  ASSERT_TRUE(b_out.ok());
  EXPECT_EQ((*b_out)[0], 0);  // b's memory untouched by a's write
}

}  // namespace
}  // namespace waran::plugin
