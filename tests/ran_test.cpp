// RAN substrate tests: PHY tables, channel model, traffic generators, UE
// accounting and the MAC slot loop's structural invariants.
#include <gtest/gtest.h>

#include <cmath>

#include "ran/channel.h"
#include "ran/mac.h"
#include "ran/phy_tables.h"
#include "ran/traffic.h"
#include "ran/ue.h"
#include "sched/native.h"

namespace waran::ran {
namespace {

TEST(PhyTables, SpectralEfficiencyMonotone) {
  for (uint32_t c = 1; c <= kMaxCqi; ++c) {
    EXPECT_GT(cqi_spectral_efficiency(c), cqi_spectral_efficiency(c - 1)) << c;
  }
  // The 38.214 MCS table dips slightly at modulation switches (MCS 16->17);
  // allow those dips but require overall growth.
  for (uint32_t m = 1; m <= kMaxMcs; ++m) {
    EXPECT_GT(mcs_spectral_efficiency(m), mcs_spectral_efficiency(m - 1) * 0.95) << m;
  }
  EXPECT_GT(mcs_spectral_efficiency(kMaxMcs), mcs_spectral_efficiency(0) * 20);
}

TEST(PhyTables, McsFromCqiNeverExceedsCqiEfficiency) {
  for (uint32_t c = 2; c <= kMaxCqi; ++c) {
    uint32_t m = mcs_from_cqi(c);
    EXPECT_LE(mcs_spectral_efficiency(m), cqi_spectral_efficiency(c) + 1e-9) << c;
  }
  // CQI 1 is below even MCS 0; link adaptation falls back to MCS 0.
  EXPECT_EQ(mcs_from_cqi(1), 0u);
  // Best CQI maps to (near-)top MCS.
  EXPECT_GE(mcs_from_cqi(kMaxCqi), 27u);
}

TEST(PhyTables, CqiMcsInversesAreConsistent) {
  for (uint32_t m = 0; m <= kMaxMcs; ++m) {
    uint32_t c = cqi_from_mcs(m);
    EXPECT_GE(cqi_spectral_efficiency(c), mcs_spectral_efficiency(m) - 1e-9) << m;
  }
}

TEST(PhyTables, PeakRateMatchesPaperTestbed) {
  // 52 PRBs (10 MHz @ 15 kHz), MCS 28, 1000 slots/s: srsRAN reports
  // ~45 Mb/s DL on this configuration; the model must land in that bracket.
  double peak_bps = transport_block_bits(kMaxMcs, 52) * 1000.0;
  EXPECT_GT(peak_bps, 40e6);
  EXPECT_LT(peak_bps, 50e6);
}

TEST(PhyTables, TbsLinearInPrbs) {
  EXPECT_EQ(transport_block_bits(20, 0), 0u);
  uint32_t one = transport_block_bits(20, 1);
  EXPECT_NEAR(transport_block_bits(20, 10), 10 * one, 10);
}

TEST(PhyTables, SnrToCqiRampAndClamp) {
  EXPECT_EQ(cqi_from_snr_db(-10.0), 0u);
  EXPECT_EQ(cqi_from_snr_db(-6.0), 1u);
  EXPECT_EQ(cqi_from_snr_db(50.0), kMaxCqi);
  for (double snr = -6.0; snr < 25.0; snr += 0.5) {
    EXPECT_LE(cqi_from_snr_db(snr), cqi_from_snr_db(snr + 0.5));
  }
}

TEST(Channel, PinnedNeverMoves) {
  Channel c = Channel::pinned_mcs(24);
  for (int i = 0; i < 100; ++i) {
    c.step();
    EXPECT_EQ(c.mcs(), 24u);
  }
}

TEST(Channel, PinnedClampsMcs) {
  EXPECT_EQ(Channel::pinned_mcs(99).mcs(), kMaxMcs);
}

TEST(Channel, FadingStaysNearMeanAndIsDeterministic) {
  Channel::FadingParams params;
  params.mean_snr_db = 15.0;
  params.sigma_db = 3.0;
  Channel a = Channel::fading(params, 42);
  Channel b = Channel::fading(params, 42);
  double sum = 0;
  for (int i = 0; i < 5000; ++i) {
    a.step();
    b.step();
    EXPECT_EQ(a.cqi(), b.cqi());
    sum += a.snr_db();
  }
  EXPECT_NEAR(sum / 5000, 15.0, 1.0);
}

TEST(Channel, FadingCqiVaries) {
  Channel c = Channel::fading({.mean_snr_db = 10, .sigma_db = 4}, 7);
  std::set<uint32_t> seen;
  for (int i = 0; i < 2000; ++i) {
    c.step();
    seen.insert(c.cqi());
  }
  EXPECT_GE(seen.size(), 3u);  // the channel actually fades
}

TEST(Traffic, CbrDeliversConfiguredRate) {
  TrafficSource t = TrafficSource::cbr(8e6);  // 8 Mb/s = 1000 B/ms
  uint64_t total = 0;
  for (int i = 0; i < 1000; ++i) total += t.arrivals_bytes(1000);
  EXPECT_NEAR(static_cast<double>(total), 1e6, 2000.0);
}

TEST(Traffic, FullBufferNeverRunsDry) {
  TrafficSource t = TrafficSource::full_buffer();
  EXPECT_GT(t.arrivals_bytes(1000), 100000u);
}

TEST(Traffic, OnOffAveragesBelowPeak) {
  TrafficSource t = TrafficSource::on_off(8e6, 100, 100, 3);
  uint64_t total = 0;
  for (int i = 0; i < 20000; ++i) total += t.arrivals_bytes(1000);
  double avg_bps = total * 8.0 / 20.0;  // over 20 s
  EXPECT_LT(avg_bps, 7e6);   // clearly below the on-rate
  EXPECT_GT(avg_bps, 1e6);   // but not silent
}

TEST(Ue, BufferCapsAtRlcLimit) {
  UeContext ue(1, 0, Channel::pinned_mcs(10), TrafficSource::full_buffer());
  for (int i = 0; i < 100; ++i) ue.begin_slot(1000);
  EXPECT_LE(ue.buffer_bytes(), 8u << 20);
}

TEST(Ue, DeliverDrainsBufferAndUpdatesEwma) {
  UeContext ue(1, 0, Channel::pinned_mcs(10), TrafficSource::cbr(1e6), 10.0);
  ue.begin_slot(1000);
  uint32_t before = ue.buffer_bytes();
  ASSERT_GT(before, 0u);
  ue.deliver(before * 8, 0.001, 1000.0);
  EXPECT_EQ(ue.buffer_bytes(), 0u);
  EXPECT_GT(ue.avg_tput_bps(), 0.0);
  double after_one = ue.avg_tput_bps();
  ue.deliver(0, 0.002, 1000.0);  // idle slot decays the EWMA
  EXPECT_LT(ue.avg_tput_bps(), after_one);
}

TEST(Mac, RunSlotWithoutInterSchedulerFails) {
  GnbMac mac(MacConfig{});
  auto st = mac.run_slot();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, Error::Code::kState);
}

TEST(Mac, RemoveUeDetaches) {
  GnbMac mac(MacConfig{});
  SliceConfig cfg;
  cfg.slice_id = 1;
  // A trivial inline scheduler is not needed for topology checks.
  class Null final : public IntraSliceScheduler {
   public:
    Result<codec::SchedResponse> schedule(const codec::SchedRequest&) override {
      return codec::SchedResponse{};
    }
    const char* name() const override { return "null"; }
  };
  mac.add_slice(cfg, std::make_unique<Null>());
  uint32_t rnti = mac.add_ue(1, Channel::pinned_mcs(5), TrafficSource::full_buffer());
  EXPECT_NE(mac.ue(rnti), nullptr);
  ASSERT_TRUE(mac.remove_ue(rnti).ok());
  EXPECT_EQ(mac.ue(rnti), nullptr);
  EXPECT_FALSE(mac.remove_ue(rnti).ok());
}

TEST(Mac, RntisAreUniqueAndStable) {
  GnbMac mac(MacConfig{});
  SliceConfig cfg;
  cfg.slice_id = 1;
  class Null final : public IntraSliceScheduler {
   public:
    Result<codec::SchedResponse> schedule(const codec::SchedRequest&) override {
      return codec::SchedResponse{};
    }
    const char* name() const override { return "null"; }
  };
  mac.add_slice(cfg, std::make_unique<Null>());
  std::set<uint32_t> rntis;
  for (int i = 0; i < 16; ++i) {
    rntis.insert(mac.add_ue(1, Channel::pinned_mcs(5), TrafficSource::full_buffer()));
  }
  EXPECT_EQ(rntis.size(), 16u);
  EXPECT_EQ(*rntis.begin(), 0x4601u);  // srsRAN's first C-RNTI
}

}  // namespace
}  // namespace waran::ran

// Appended: 256QAM CQI/MCS table (the set_cqi_table control action's
// substance) and alternative numerologies.
namespace waran::ran {
namespace {

TEST(PhyTables256, Qam256TablesMonotoneAndHigherPeak) {
  for (uint32_t c = 1; c <= kMaxCqi; ++c) {
    EXPECT_GT(cqi_spectral_efficiency(c, McsTable::kQam256),
              cqi_spectral_efficiency(c - 1, McsTable::kQam256));
  }
  EXPECT_EQ(max_mcs(McsTable::kQam256), 27u);
  EXPECT_EQ(mcs_modulation_order(27, McsTable::kQam256), 8u);
  // Peak spectral efficiency ~7.4 vs ~5.55.
  EXPECT_GT(mcs_spectral_efficiency(27, McsTable::kQam256),
            mcs_spectral_efficiency(28, McsTable::kQam64) * 1.25);
  // Peak DL rate on the paper's carrier jumps from ~45 to ~60 Mb/s.
  double peak256 = transport_block_bits(27, 52, McsTable::kQam256) * 1000.0;
  EXPECT_GT(peak256, 55e6);
  EXPECT_LT(peak256, 65e6);
}

TEST(PhyTables256, McsFromCqiRespectsTable) {
  for (uint32_t c = 2; c <= kMaxCqi; ++c) {
    uint32_t m = mcs_from_cqi(c, McsTable::kQam256);
    EXPECT_LE(mcs_spectral_efficiency(m, McsTable::kQam256),
              cqi_spectral_efficiency(c, McsTable::kQam256) + 1e-9)
        << c;
  }
  EXPECT_GE(mcs_from_cqi(kMaxCqi, McsTable::kQam256), 26u);
}

TEST(Channel256, TableSwitchRemapsFadingChannel) {
  Channel c = Channel::fading({.mean_snr_db = 22.0, .sigma_db = 0.5}, 11);
  for (int i = 0; i < 10; ++i) c.step();
  uint32_t mcs64 = c.mcs();
  c.set_mcs_table(McsTable::kQam256);
  for (int i = 0; i < 10; ++i) c.step();
  // Same SNR, richer table: link adaptation can exceed the 64QAM ceiling.
  EXPECT_GT(mcs_spectral_efficiency(c.mcs(), McsTable::kQam256),
            mcs_spectral_efficiency(mcs64, McsTable::kQam64) * 1.1);
}

TEST(Channel256, PinnedChannelClampsToTableMax) {
  Channel c = Channel::pinned_mcs(28);
  c.set_mcs_table(McsTable::kQam256);
  EXPECT_EQ(c.mcs(), 27u);  // table 2 tops out at MCS 27
}

TEST(Mac256, TableSwitchRaisesGoodSnrThroughput) {
  class Rr final : public IntraSliceScheduler {
   public:
    Result<codec::SchedResponse> schedule(const codec::SchedRequest& req) override {
      codec::SchedResponse resp;
      for (const auto& ue : req.ues) resp.allocs.push_back({ue.rnti, req.prb_quota});
      return resp;
    }
    const char* name() const override { return "all"; }
  };
  GnbMac mac(MacConfig{});
  // A trivially-serving inter-slice scheduler.
  class AllInter final : public InterSliceScheduler {
   public:
    std::vector<uint32_t> allocate(uint32_t n_prbs,
                                   const std::vector<SliceDemand>& d) override {
      return std::vector<uint32_t>(d.size(), n_prbs);
    }
    const char* name() const override { return "all"; }
  };
  mac.set_inter_scheduler(std::make_unique<AllInter>());
  SliceConfig cfg;
  cfg.slice_id = 1;
  mac.add_slice(cfg, std::make_unique<Rr>());
  uint32_t rnti = mac.add_ue(1, Channel::fading({.mean_snr_db = 24.0, .sigma_db = 0.5}, 5),
                             TrafficSource::full_buffer());
  ASSERT_TRUE(mac.run_slots(3000).ok());
  double rate64 = mac.ue(rnti)->rate_bps(mac.now_s());

  mac.set_mcs_table(McsTable::kQam256);  // the RIC flips the cell to table 2
  ASSERT_TRUE(mac.run_slots(3000).ok());
  double rate256 = mac.ue(rnti)->rate_bps(mac.now_s());
  EXPECT_GT(rate256, rate64 * 1.15);
}

TEST(MacNumerology, ThirtyKhzScsHalvesSlotAndKeepsRates) {
  // Numerology 1: 500 us slots. Same offered CBR load must still be served.
  MacConfig cfg;
  cfg.slot_us = 500;
  GnbMac mac(cfg);
  mac.set_inter_scheduler(std::make_unique<sched::WeightedShareInterScheduler>());
  SliceConfig slice;
  slice.slice_id = 1;
  mac.add_slice(slice, std::make_unique<sched::RrScheduler>());
  uint32_t rnti = mac.add_ue(1, Channel::pinned_mcs(20), TrafficSource::cbr(4e6));
  ASSERT_TRUE(mac.run_slots(6000).ok());  // 3 s of air time
  EXPECT_NEAR(mac.now_s(), 3.0, 1e-9);
  EXPECT_NEAR(mac.ue(rnti)->rate_bps(mac.now_s()), 4e6, 0.4e6);
}

}  // namespace
}  // namespace waran::ran

// Appended: BLER + HARQ (production-realism extension; off by default so
// every paper experiment is unaffected).
namespace waran::ran {
namespace {

TEST(Bler, LogisticAroundAdaptationPoint) {
  // At the link-adaptation operating point (SNR comfortably above the MCS
  // threshold) BLER is small; far below it, it approaches 1.
  Channel good = Channel::fading({.mean_snr_db = 20.0, .sigma_db = 0.1}, 1);
  for (int i = 0; i < 10; ++i) good.step();
  EXPECT_LT(good.bler(), 0.1);
  EXPECT_GT(good.bler(), 0.0);

  Channel pinned = Channel::pinned_mcs(20);
  EXPECT_DOUBLE_EQ(pinned.bler(), 0.0);  // pinned: ideal unless forced
  pinned.set_fixed_bler(0.25);
  EXPECT_DOUBLE_EQ(pinned.bler(), 0.25);
}

namespace harq_helpers {

struct RunResult {
  double rate_bps;
  SliceStats stats;
};

RunResult run_with(bool channel_errors, bool harq, double fixed_bler) {
  MacConfig cfg;
  cfg.channel_errors = channel_errors;
  cfg.enable_harq = harq;
  GnbMac mac(cfg);
  mac.set_inter_scheduler(std::make_unique<sched::WeightedShareInterScheduler>());
  SliceConfig slice;
  slice.slice_id = 1;
  mac.add_slice(slice, std::make_unique<sched::RrScheduler>());
  Channel ch = Channel::pinned_mcs(20);
  ch.set_fixed_bler(fixed_bler);
  uint32_t rnti = mac.add_ue(1, ch, TrafficSource::full_buffer());
  EXPECT_TRUE(mac.run_slots(4000).ok());
  return {mac.ue(rnti)->rate_bps(mac.now_s()), *mac.slice_stats(1)};
}

}  // namespace harq_helpers

TEST(Harq, ErrorsReduceGoodputHarqRecoversMostOfIt) {
  using harq_helpers::run_with;
  double clean = run_with(false, true, 0.5).rate_bps;
  auto no_harq = run_with(true, false, 0.5);
  auto with_harq = run_with(true, true, 0.5);

  // Without HARQ, half the TBs are lost outright.
  EXPECT_LT(no_harq.rate_bps, clean * 0.58);
  EXPECT_GT(no_harq.stats.tb_drops, 1700u);  // ~50% of 4000 slots

  // HARQ recovers most of it: each retransmission costs a slot, but chase
  // combining makes the second attempt succeed ~75% of the time.
  // Theoretical goodput ratio here: (1/1.64) / 0.5 ~ 1.22.
  EXPECT_GT(with_harq.rate_bps, no_harq.rate_bps * 1.12);
  EXPECT_GT(with_harq.stats.harq_retx, 0u);
  EXPECT_LT(with_harq.stats.tb_drops, with_harq.stats.harq_retx / 5);
  // But retransmissions still cost capacity vs a clean channel.
  EXPECT_LT(with_harq.rate_bps, clean);
}

TEST(Harq, DeterministicForSeed) {
  using harq_helpers::run_with;
  auto a = run_with(true, true, 0.2);
  auto b = run_with(true, true, 0.2);
  EXPECT_DOUBLE_EQ(a.rate_bps, b.rate_bps);
  EXPECT_EQ(a.stats.harq_retx, b.stats.harq_retx);
}

TEST(Harq, PerfectChannelNeverRetransmits) {
  using harq_helpers::run_with;
  auto r = run_with(true, true, 0.0);
  EXPECT_EQ(r.stats.harq_retx, 0u);
  EXPECT_EQ(r.stats.tb_drops, 0u);
}

TEST(Harq, HopelessChannelDropsAfterMaxAttempts) {
  using harq_helpers::run_with;
  auto r = run_with(true, true, 1.0);  // every transmission fails
  EXPECT_NEAR(r.rate_bps, 0.0, 1.0);
  EXPECT_GT(r.stats.tb_drops, 0u);
  // Attempt accounting: drops happen only after max_harq_attempts retx.
  EXPECT_GE(r.stats.harq_retx, r.stats.tb_drops * 4);
}

}  // namespace
}  // namespace waran::ran
