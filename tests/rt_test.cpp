// Tests for waran::rt — the virtual/steady clock, the cell executor, and
// the multi-cell gNB deployment's determinism contract: under virtual time
// the same config + seed must produce bit-identical metrics digests and
// trace hashes whether the cells run inline on one thread or sharded across
// worker threads, and across repeated threaded runs (the latter is also the
// CI TSan workload for the runtime layer).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/anomaly.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rt/clock.h"
#include "rt/deployment.h"
#include "rt/executor.h"
#include "tests/wasm_test_util.h"

namespace waran {
namespace {

using wasmtest::instantiate;
using wasmtest::FuncType;
using wasmtest::FunctionBuilder;
using wasmtest::ModuleBuilder;
using wasmtest::Op;
using wasmtest::ValType;

// ---------------------------------------------------------------------------
// rt::Clock

TEST(Clock, RealModeIsMonotonic) {
  rt::Clock& clock = rt::Clock::global();
  ASSERT_FALSE(clock.is_virtual());
  const uint64_t a = clock.now_ns();
  const uint64_t b = clock.now_ns();
  EXPECT_LE(a, b);
  EXPECT_LE(a, clock.real_ns());
}

TEST(Clock, VirtualModeOnlyMovesWhenAdvanced) {
  rt::Clock& clock = rt::Clock::global();
  rt::VirtualClockGuard guard(1000);
  ASSERT_TRUE(clock.is_virtual());
  EXPECT_EQ(clock.now_ns(), 1000u);
  EXPECT_EQ(clock.now_ns(), 1000u);  // frozen until advanced
  clock.advance_ns(500);
  EXPECT_EQ(clock.now_ns(), 1500u);
  EXPECT_EQ(rt::now_ns(), 1500u);  // the free-function shorthand agrees
}

TEST(Clock, RealNsKeepsTickingInVirtualMode) {
  rt::VirtualClockGuard guard(0);
  rt::Clock& clock = rt::Clock::global();
  const uint64_t w0 = clock.real_ns();
  // Burn a little real time without touching the virtual clock.
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_GT(clock.real_ns(), w0);
  EXPECT_EQ(clock.now_ns(), 0u);
}

TEST(Clock, GuardRestoresRealModeAndSupportsNesting) {
  rt::Clock& clock = rt::Clock::global();
  ASSERT_FALSE(clock.is_virtual());
  {
    rt::VirtualClockGuard outer(100);
    EXPECT_TRUE(clock.is_virtual());
    {
      // The inner guard re-bases the virtual origin but must NOT drop back
      // to real mode on exit — the outer scope still owns virtual time.
      rt::VirtualClockGuard inner(42);
      EXPECT_TRUE(clock.is_virtual());
      EXPECT_EQ(clock.now_ns(), 42u);
    }
    EXPECT_TRUE(clock.is_virtual());
  }
  EXPECT_FALSE(clock.is_virtual());
}

// ---------------------------------------------------------------------------
// rt::CellExecutor

TEST(CellExecutor, InlineModeRunsOnCallerThread) {
  rt::CellExecutor exec("inline");
  EXPECT_FALSE(exec.threaded());
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id ran_on;
  exec.post([&] { ran_on = std::this_thread::get_id(); });
  EXPECT_EQ(ran_on, caller);  // ran synchronously, before post returned
  EXPECT_EQ(exec.tasks_run(), 1u);
  exec.wait_idle();  // trivially satisfied, must not deadlock
}

TEST(CellExecutor, ThreadedModeRunsTasksInFifoOrderOffThread) {
  rt::CellExecutor exec("worker");
  exec.start();
  EXPECT_TRUE(exec.threaded());

  const std::thread::id caller = std::this_thread::get_id();
  std::vector<int> order;
  std::thread::id ran_on;
  for (int i = 0; i < 100; ++i) {
    exec.post([&, i] {
      order.push_back(i);
      ran_on = std::this_thread::get_id();
    });
  }
  exec.wait_idle();  // barrier: all 100 finished, writes visible here
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[i], i);
  EXPECT_NE(ran_on, caller);
  EXPECT_EQ(exec.tasks_run(), 100u);

  exec.stop();
  EXPECT_FALSE(exec.threaded());
  // After stop() posts run inline again.
  bool inline_ran = false;
  exec.post([&] { inline_ran = true; });
  EXPECT_TRUE(inline_ran);
}

TEST(CellExecutor, WaitIdleIsAHappensBeforeBarrier) {
  rt::CellExecutor exec("barrier");
  exec.start();
  uint64_t counter = 0;  // plain (non-atomic): the barrier must order it
  for (int step = 0; step < 50; ++step) {
    exec.post([&] { ++counter; });
    exec.wait_idle();
    ASSERT_EQ(counter, static_cast<uint64_t>(step) + 1);
  }
  exec.stop();
}

// ---------------------------------------------------------------------------
// Virtual time vs the engine deadline

TEST(VirtualTime, FrozenClockNeverFiresEngineDeadline) {
  // A bounded busy loop that takes far longer than 1ns of real time. On the
  // frozen virtual clock the deadline poll reads a constant `now`, so the
  // call completes; wall_ns measures 0 because no virtual time elapsed.
  ModuleBuilder mb;
  FunctionBuilder& f = mb.add_func(FuncType{{}, {ValType::kI32}}, "spin");
  uint32_t i = f.add_local(ValType::kI32);
  f.block()
      .loop()
      .local_get(i)
      .i32_const(200'000)
      .op(Op::kI32GeS)
      .br_if(1)
      .local_get(i)
      .i32_const(1)
      .op(Op::kI32Add)
      .local_set(i)
      .br(0)
      .end()
      .end()
      .local_get(i)
      .end();
  auto inst = instantiate(mb);
  ASSERT_NE(inst, nullptr);

  wasm::CallOptions opts;
  opts.fuel = 0;  // unmetered: only the deadline could stop it
  opts.deadline = std::chrono::nanoseconds(1);

  {
    rt::VirtualClockGuard guard(0);
    wasm::CallStats stats;
    auto r = inst->call("spin", {}, opts, &stats);
    ASSERT_TRUE(r.ok()) << r.error().message;
    EXPECT_EQ(stats.wall_ns, 0u);  // no virtual time passed during the call
  }

  // Same call on the real clock blows the 1ns budget at the first poll.
  auto r = inst->call("spin", {}, opts, nullptr);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Error::Code::kFuelExhausted) << r.error().message;
}

// ---------------------------------------------------------------------------
// rt::GnbDeployment determinism

// The deployment digests global singleton state (metrics registry, anomaly
// journal), so comparable runs must each start from a clean sheet.
void reset_global_obs() {
  obs::MetricsRegistry::global().reset_values();
  obs::AnomalyJournal::global().clear();
  obs::set_current_slot(0);
}

struct RunResult {
  std::string digest;
  uint64_t trace_hash = 0;
};

RunResult run_deployment(uint32_t cells, bool threaded, uint32_t slots) {
  reset_global_obs();
  rt::DeploymentConfig cfg;
  cfg.cells = cells;
  cfg.seed = 7;
  cfg.threaded = threaded;
  cfg.virtual_time = true;
  cfg.report_period_slots = 5;
  cfg.trace_capacity = 256;
  rt::GnbDeployment dep(cfg);
  EXPECT_TRUE(dep.status().ok())
      << (dep.status().ok() ? "" : dep.status().error().message);
  if (!dep.status().ok()) return {};
  auto st = dep.run_slots(slots);
  EXPECT_TRUE(st.ok()) << (st.ok() ? "" : st.error().message);
  EXPECT_EQ(dep.slots_run(), slots);
  return {dep.digest(), dep.trace_hash()};
}

TEST(GnbDeployment, InlineAndThreadedRunsProduceIdenticalDigests) {
  const RunResult inline_run = run_deployment(/*cells=*/2, /*threaded=*/false,
                                              /*slots=*/20);
  const RunResult threaded_run = run_deployment(/*cells=*/2, /*threaded=*/true,
                                                /*slots=*/20);
  ASSERT_FALSE(inline_run.digest.empty());
  EXPECT_EQ(inline_run.digest, threaded_run.digest);
  EXPECT_EQ(inline_run.trace_hash, threaded_run.trace_hash);
  EXPECT_NE(inline_run.trace_hash, 0u);
}

TEST(GnbDeployment, RepeatedFourCellThreadedRunsAreBitIdentical) {
  // Four cells on four worker threads, twice: the barrier-stepped virtual
  // clock must make the runs indistinguishable. This is also the runtime
  // layer's TSan workload in CI.
  const RunResult a = run_deployment(/*cells=*/4, /*threaded=*/true,
                                     /*slots=*/25);
  const RunResult b = run_deployment(/*cells=*/4, /*threaded=*/true,
                                     /*slots=*/25);
  ASSERT_FALSE(a.digest.empty());
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.trace_hash, b.trace_hash);
}

TEST(GnbDeployment, PerCellTraceRingsAreDistinctAndPopulated) {
  reset_global_obs();
  rt::DeploymentConfig cfg;
  cfg.cells = 3;
  cfg.seed = 11;
  cfg.threaded = true;
  cfg.virtual_time = true;
  cfg.trace_capacity = 128;
  rt::GnbDeployment dep(cfg);
  ASSERT_TRUE(dep.status().ok());
  ASSERT_TRUE(dep.run_slots(10).ok());
  for (uint32_t c = 0; c < 3; ++c) {
    obs::TraceRing* ring = dep.trace_ring(c);
    ASSERT_NE(ring, nullptr) << "cell " << c;
    EXPECT_GT(ring->writes(), 0u) << "cell " << c;
    for (uint32_t d = 0; d < c; ++d) {
      EXPECT_NE(ring, dep.trace_ring(d));  // one ring per shard
    }
  }
}

TEST(GnbDeployment, UnsyncedModeRunsAllCells) {
  reset_global_obs();
  rt::DeploymentConfig cfg;
  cfg.cells = 2;
  cfg.seed = 3;
  cfg.threaded = true;
  cfg.virtual_time = true;
  cfg.report_period_slots = 4;
  rt::GnbDeployment dep(cfg);
  ASSERT_TRUE(dep.status().ok());
  ASSERT_TRUE(dep.run_slots_unsynced(12).ok());
  EXPECT_EQ(dep.slots_run(), 12u);
  const uint64_t slots =
      static_cast<uint64_t>(obs::MetricsRegistry::global()
                                .counter("waran_mac_slots_total", {})
                                .value());
  EXPECT_EQ(slots, 24u);  // 12 slots on each of 2 cells
}

}  // namespace
}  // namespace waran
