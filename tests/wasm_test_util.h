// Shared helpers for the wasm engine tests: build -> decode -> validate ->
// instantiate -> call, with assertion-friendly wrappers.
#pragma once

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "wasm/wasm.h"
#include "wasmbuilder/builder.h"

namespace waran::wasmtest {

using wasm::FuncType;
using wasm::Op;
using wasm::TypedValue;
using wasm::ValType;
using wasmbuilder::BlockT;
using wasmbuilder::FunctionBuilder;
using wasmbuilder::ModuleBuilder;

/// Decodes + validates + instantiates; fails the test on any error.
inline std::unique_ptr<wasm::Instance> instantiate(
    const ModuleBuilder& mb, const wasm::Linker& linker = {},
    const wasm::InstanceOptions& options = {}) {
  auto bytes = mb.build();
  auto module = wasm::decode_module(bytes);
  EXPECT_TRUE(module.ok()) << (module.ok() ? "" : module.error().message);
  if (!module.ok()) return nullptr;
  auto st = wasm::validate_module(*module);
  EXPECT_TRUE(st.ok()) << (st.ok() ? "" : st.error().message);
  if (!st.ok()) return nullptr;
  auto inst = wasm::Instance::instantiate(
      std::make_shared<wasm::Module>(std::move(*module)), linker, options);
  EXPECT_TRUE(inst.ok()) << (inst.ok() ? "" : inst.error().message);
  if (!inst.ok()) return nullptr;
  return std::move(*inst);
}

/// Calls an exported i32-returning function, asserting success.
inline int32_t call_i32(wasm::Instance& inst, const char* name,
                        std::vector<TypedValue> args = {}) {
  auto r = inst.call(name, args);
  EXPECT_TRUE(r.ok()) << (r.ok() ? "" : r.error().message);
  if (!r.ok() || !r->has_value()) return INT32_MIN;
  return (*r)->value.as_i32();
}

inline int64_t call_i64(wasm::Instance& inst, const char* name,
                        std::vector<TypedValue> args = {}) {
  auto r = inst.call(name, args);
  EXPECT_TRUE(r.ok()) << (r.ok() ? "" : r.error().message);
  if (!r.ok() || !r->has_value()) return INT64_MIN;
  return (*r)->value.as_i64();
}

inline double call_f64(wasm::Instance& inst, const char* name,
                       std::vector<TypedValue> args = {}) {
  auto r = inst.call(name, args);
  EXPECT_TRUE(r.ok()) << (r.ok() ? "" : r.error().message);
  if (!r.ok() || !r->has_value()) return -1e308;
  return (*r)->value.as_f64();
}

inline float call_f32(wasm::Instance& inst, const char* name,
                      std::vector<TypedValue> args = {}) {
  auto r = inst.call(name, args);
  EXPECT_TRUE(r.ok()) << (r.ok() ? "" : r.error().message);
  if (!r.ok() || !r->has_value()) return -1e38f;
  return (*r)->value.as_f32();
}

/// Calls expecting a trap; returns the error (or fails the test).
inline Error call_expect_trap(wasm::Instance& inst, const char* name,
                              std::vector<TypedValue> args = {}) {
  auto r = inst.call(name, args);
  EXPECT_FALSE(r.ok()) << "expected a trap, call succeeded";
  if (r.ok()) return Error::internal("no trap");
  return r.error();
}

}  // namespace waran::wasmtest
