// Shared helpers for the wasm engine tests: build -> decode -> validate ->
// instantiate -> call, with assertion-friendly wrappers.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "wasm/wasm.h"
#include "wasmbuilder/builder.h"

namespace waran::wasmtest {

using wasm::FuncType;
using wasm::Op;
using wasm::TypedValue;
using wasm::ValType;
using wasmbuilder::BlockT;
using wasmbuilder::FunctionBuilder;
using wasmbuilder::ModuleBuilder;

/// Decodes + validates + instantiates; fails the test on any error.
inline std::unique_ptr<wasm::Instance> instantiate(
    const ModuleBuilder& mb, const wasm::Linker& linker = {},
    const wasm::InstanceOptions& options = {}) {
  auto bytes = mb.build();
  auto module = wasm::decode_module(bytes);
  EXPECT_TRUE(module.ok()) << (module.ok() ? "" : module.error().message);
  if (!module.ok()) return nullptr;
  auto st = wasm::validate_module(*module);
  EXPECT_TRUE(st.ok()) << (st.ok() ? "" : st.error().message);
  if (!st.ok()) return nullptr;
  auto inst = wasm::Instance::instantiate(
      std::make_shared<wasm::Module>(std::move(*module)), linker, options);
  EXPECT_TRUE(inst.ok()) << (inst.ok() ? "" : inst.error().message);
  if (!inst.ok()) return nullptr;
  return std::move(*inst);
}

/// Calls an exported i32-returning function, asserting success.
inline int32_t call_i32(wasm::Instance& inst, const char* name,
                        std::vector<TypedValue> args = {}) {
  auto r = inst.call(name, args);
  EXPECT_TRUE(r.ok()) << (r.ok() ? "" : r.error().message);
  if (!r.ok() || !r->has_value()) return INT32_MIN;
  return (*r)->value.as_i32();
}

inline int64_t call_i64(wasm::Instance& inst, const char* name,
                        std::vector<TypedValue> args = {}) {
  auto r = inst.call(name, args);
  EXPECT_TRUE(r.ok()) << (r.ok() ? "" : r.error().message);
  if (!r.ok() || !r->has_value()) return INT64_MIN;
  return (*r)->value.as_i64();
}

inline double call_f64(wasm::Instance& inst, const char* name,
                       std::vector<TypedValue> args = {}) {
  auto r = inst.call(name, args);
  EXPECT_TRUE(r.ok()) << (r.ok() ? "" : r.error().message);
  if (!r.ok() || !r->has_value()) return -1e308;
  return (*r)->value.as_f64();
}

inline float call_f32(wasm::Instance& inst, const char* name,
                      std::vector<TypedValue> args = {}) {
  auto r = inst.call(name, args);
  EXPECT_TRUE(r.ok()) << (r.ok() ? "" : r.error().message);
  if (!r.ok() || !r->has_value()) return -1e38f;
  return (*r)->value.as_f32();
}

/// Calls expecting a trap; returns the error (or fails the test).
inline Error call_expect_trap(wasm::Instance& inst, const char* name,
                              std::vector<TypedValue> args = {}) {
  auto r = inst.call(name, args);
  EXPECT_FALSE(r.ok()) << "expected a trap, call succeeded";
  if (r.ok()) return Error::internal("no trap");
  return r.error();
}

// --- Shared module shapes ----------------------------------------------------
// Small canonical modules several suites exercise (execution core, stress,
// differential): kept here so every suite drives the same bytecode.

/// down(n) = n == 0 ? 0 : down(n - 1); recursion depth n + 1 frames.
inline ModuleBuilder recursive_module() {
  ModuleBuilder mb;
  FunctionBuilder& f = mb.add_func(FuncType{{ValType::kI32}, {ValType::kI32}}, "down");
  f.local_get(0)
      .op(Op::kI32Eqz)
      .if_(BlockT::i32())
      .i32_const(0)
      .else_()
      .local_get(0)
      .i32_const(1)
      .op(Op::kI32Sub)
      .call(f.index())
      .end()
      .end();
  return mb;
}

/// Re-entrancy shape: outer(x) = reenter(x) + 1, where the host's `reenter`
/// import calls back into the exported leaf(x) = x * 2.
inline ModuleBuilder reentrant_module() {
  ModuleBuilder mb;
  uint32_t imp =
      mb.import_func("env", "reenter", FuncType{{ValType::kI32}, {ValType::kI32}});
  FunctionBuilder& leaf = mb.add_func(FuncType{{ValType::kI32}, {ValType::kI32}}, "leaf");
  leaf.local_get(0).i32_const(2).op(Op::kI32Mul).end();
  FunctionBuilder& outer =
      mb.add_func(FuncType{{ValType::kI32}, {ValType::kI32}}, "outer");
  outer.local_get(0).call(imp).i32_const(1).op(Op::kI32Add).end();
  return mb;
}

/// Host linker for reentrant_module: env.reenter re-enters the instance
/// through the named export.
inline wasm::Linker reenter_linker(const char* target) {
  wasm::Linker linker;
  linker.register_func(
      "env", "reenter",
      wasm::HostFunc{FuncType{{ValType::kI32}, {ValType::kI32}},
                     [target](wasm::HostContext& ctx, std::span<const wasm::Value> args)
                         -> Result<std::optional<wasm::Value>> {
                       TypedValue arg{ValType::kI32, args[0]};
                       auto r = ctx.instance.call(target,
                                                  std::span<const TypedValue>(&arg, 1));
                       if (!r.ok()) return r.error();
                       return std::optional<wasm::Value>((*r)->value);
                     }});
  return linker;
}

/// sum of odd numbers <= n via loop + br_if + if: a branchy body whose
/// retired-instruction count is input-dependent (fuel-accounting tests).
inline ModuleBuilder branchy_module() {
  ModuleBuilder mb;
  FunctionBuilder& f = mb.add_func(FuncType{{ValType::kI32}, {ValType::kI32}}, "sum");
  uint32_t s = f.add_local(ValType::kI32);
  f.block()
      .loop()
      .local_get(0)
      .op(Op::kI32Eqz)
      .br_if(1)
      .local_get(0)
      .i32_const(1)
      .op(Op::kI32And)
      .if_()
      .local_get(s)
      .local_get(0)
      .op(Op::kI32Add)
      .local_set(s)
      .end()
      .local_get(0)
      .i32_const(1)
      .op(Op::kI32Sub)
      .local_set(0)
      .br(0)
      .end()
      .end()
      .local_get(s)
      .end();
  return mb;
}

}  // namespace waran::wasmtest
