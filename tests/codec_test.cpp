// Codec tests: every format must round-trip the scheduler schema exactly,
// reject malformed payloads, and (TLV/PbLite) skip unknown fields.
#include <gtest/gtest.h>

#include "codec/codec.h"
#include "codec/json.h"
#include "codec/wire.h"

namespace waran::codec {
namespace {

SchedRequest sample_request() {
  SchedRequest req;
  req.slot = 1234;
  req.prb_quota = 27;
  req.ues.push_back({0x4601, 12, 22, 15000, 700, 1.5e6, 12.5e6});
  req.ues.push_back({0x4602, 7, 12, 300, 280, 0.0, 4.2e6});
  req.ues.push_back({0x4603, 15, 28, 1 << 20, 877, 2.25e7, 4.5e7});
  return req;
}

SchedResponse sample_response() {
  SchedResponse resp;
  resp.allocs.push_back({0x4603, 20});
  resp.allocs.push_back({0x4601, 7});
  return resp;
}

class CodecRoundTrip : public ::testing::TestWithParam<CodecKind> {};

TEST_P(CodecRoundTrip, Request) {
  auto codec = make_codec(GetParam());
  ASSERT_NE(codec, nullptr);
  SchedRequest req = sample_request();
  auto bytes = codec->encode_request(req);
  ASSERT_FALSE(bytes.empty());
  auto decoded = codec->decode_request(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.error().message;
  EXPECT_EQ(*decoded, req);
}

TEST_P(CodecRoundTrip, Response) {
  auto codec = make_codec(GetParam());
  SchedResponse resp = sample_response();
  auto bytes = codec->encode_response(resp);
  auto decoded = codec->decode_response(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.error().message;
  EXPECT_EQ(*decoded, resp);
}

TEST_P(CodecRoundTrip, EmptyRequest) {
  auto codec = make_codec(GetParam());
  SchedRequest req;
  req.slot = 0;
  req.prb_quota = 0;
  auto decoded = codec->decode_request(codec->encode_request(req));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, req);
}

TEST_P(CodecRoundTrip, ManyUes) {
  auto codec = make_codec(GetParam());
  SchedRequest req;
  req.slot = 9;
  req.prb_quota = 52;
  for (uint32_t i = 0; i < 64; ++i) {
    req.ues.push_back({0x4600 + i, i % 16, i % 29, i * 100, i * 7, i * 1e4, i * 1e5});
  }
  auto decoded = codec->decode_request(codec->encode_request(req));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, req);
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, CodecRoundTrip,
                         ::testing::Values(CodecKind::kWire, CodecKind::kTlv,
                                           CodecKind::kJson, CodecKind::kPbLite),
                         [](const auto& info) {
                           std::string n = to_string(info.param);
                           for (auto& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

TEST(WireCodec, TruncatedPayloadFails) {
  auto codec = make_codec(CodecKind::kWire);
  auto bytes = codec->encode_request(sample_request());
  bytes.resize(bytes.size() - 5);
  EXPECT_FALSE(codec->decode_request(bytes).ok());
}

TEST(WireCodec, CountOverrunFailsEarly) {
  // Claimed UE count larger than the payload must fail before allocating.
  std::vector<uint8_t> bytes = {0, 0, 0, 0, 10, 0, 0, 0, 0xff, 0xff, 0xff, 0x7f};
  auto codec = make_codec(CodecKind::kWire);
  EXPECT_FALSE(codec->decode_request(bytes).ok());
}

TEST(TlvCodec, SkipsUnknownFields) {
  auto codec = make_codec(CodecKind::kTlv);
  auto bytes = codec->encode_request(sample_request());
  // Append an unknown tag 99 with 3 bytes of payload.
  bytes.push_back(99);
  bytes.push_back(3);
  bytes.insert(bytes.end(), {1, 2, 3});
  auto decoded = codec->decode_request(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.error().message;
  EXPECT_EQ(*decoded, sample_request());
}

TEST(PbLiteCodec, SkipsUnknownFields) {
  auto codec = make_codec(CodecKind::kPbLite);
  auto bytes = codec->encode_request(sample_request());
  // Unknown field 15, varint wire type.
  bytes.push_back((15 << 3) | 0);
  bytes.push_back(42);
  auto decoded = codec->decode_request(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.error().message;
  EXPECT_EQ(*decoded, sample_request());
}

TEST(JsonCodec, RejectsGarbage) {
  auto codec = make_codec(CodecKind::kJson);
  std::vector<uint8_t> garbage = {'n', 'o', 'p', 'e'};
  EXPECT_FALSE(codec->decode_request(garbage).ok());
}

// --- JSON library. ---

TEST(Json, ParsePrimitives) {
  EXPECT_TRUE(Json::parse("null")->is_null());
  EXPECT_EQ(Json::parse("true")->as_bool(), true);
  EXPECT_EQ(Json::parse("false")->as_bool(), false);
  EXPECT_DOUBLE_EQ(Json::parse("3.25")->as_number(), 3.25);
  EXPECT_DOUBLE_EQ(Json::parse("-17")->as_number(), -17.0);
  EXPECT_DOUBLE_EQ(Json::parse("1e3")->as_number(), 1000.0);
  EXPECT_EQ(Json::parse("\"hi\"")->as_string(), "hi");
}

TEST(Json, ParseNested) {
  auto v = Json::parse(R"({"a": [1, 2, {"b": "c"}], "d": null})");
  ASSERT_TRUE(v.ok()) << v.error().message;
  EXPECT_EQ((*v)["a"].size(), 3u);
  EXPECT_EQ((*v)["a"].as_array()[2]["b"].as_string(), "c");
  EXPECT_TRUE((*v)["d"].is_null());
  EXPECT_TRUE((*v)["missing"].is_null());
}

TEST(Json, EscapesRoundTrip) {
  Json s(std::string("line\n\"quoted\"\ttab"));
  auto parsed = Json::parse(s.dump());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->as_string(), "line\n\"quoted\"\ttab");
}

TEST(Json, UnicodeEscape) {
  auto v = Json::parse("\"\\u00e9\"");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->as_string(), "\xc3\xa9");  // é in UTF-8
}

TEST(Json, RejectsMalformed) {
  EXPECT_FALSE(Json::parse("{").ok());
  EXPECT_FALSE(Json::parse("[1,]").ok());
  EXPECT_FALSE(Json::parse("{\"a\":}").ok());
  EXPECT_FALSE(Json::parse("\"unterminated").ok());
  EXPECT_FALSE(Json::parse("1 2").ok());
  EXPECT_FALSE(Json::parse("").ok());
}

TEST(Json, RejectsDeepNesting) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_FALSE(Json::parse(deep).ok());
}

TEST(Json, DumpRoundTripsStructure) {
  Json root = Json::object();
  root.set("n", 42).set("x", 1.5).set("flag", true);
  Json arr = Json::array();
  arr.push_back("a");
  arr.push_back(Json());
  root.set("list", std::move(arr));
  auto back = Json::parse(root.dump());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, root);
}

}  // namespace
}  // namespace waran::codec

// Appended: decoder robustness — every codec must reject or tolerate
// arbitrary bytes without crashing (deterministic fuzz).
#include "common/rng.h"

namespace waran::codec {
namespace {

class CodecFuzz : public ::testing::TestWithParam<CodecKind> {};

TEST_P(CodecFuzz, RandomBytesNeverCrash) {
  auto codec = make_codec(GetParam());
  Xoshiro256 rng(0xC0DEC + static_cast<int>(GetParam()));
  for (int round = 0; round < 2000; ++round) {
    std::vector<uint8_t> blob(rng.below(300));
    for (auto& b : blob) b = static_cast<uint8_t>(rng.next());
    auto req = codec->decode_request(blob);
    auto resp = codec->decode_response(blob);
    (void)req;
    (void)resp;  // accept or reject; just no crash/UB
  }
}

TEST_P(CodecFuzz, MutatedValidPayloadsNeverCrash) {
  auto codec = make_codec(GetParam());
  auto bytes = codec->encode_request(sample_request());
  Xoshiro256 rng(0xF122);
  for (int round = 0; round < 2000; ++round) {
    std::vector<uint8_t> mutated = bytes;
    mutated[rng.below(mutated.size())] = static_cast<uint8_t>(rng.next());
    if (rng.below(4) == 0) mutated.resize(rng.below(mutated.size()) + 1);
    auto req = codec->decode_request(mutated);
    (void)req;
  }
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, CodecFuzz,
                         ::testing::Values(CodecKind::kWire, CodecKind::kTlv,
                                           CodecKind::kJson, CodecKind::kPbLite));

}  // namespace
}  // namespace waran::codec
