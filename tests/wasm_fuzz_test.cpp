// Decoder/validator robustness: a deployment gate must never crash on
// hostile bytes (paper §3A — the MNO statically analyses third-party
// plugins before loading). Deterministic fuzzing:
//   - pure-random byte blobs (valid header or not),
//   - bit/byte mutations of real plugin modules,
//   - truncations of real modules at every prefix length.
// Pass criterion: decode+validate returns (accept or reject) without
// crashing, and anything accepted must then instantiate or fail cleanly.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "plugin/plugin.h"
#include "sched/plugins.h"
#include "wasm/wasm.h"

namespace waran {
namespace {

Status decode_validate(std::span<const uint8_t> bytes) {
  auto module = wasm::decode_module(bytes);
  if (!module.ok()) return module.error();
  WARAN_CHECK_OK(wasm::validate_module(*module));
  // If it validated, it must also instantiate cleanly or fail cleanly.
  wasm::Linker linker;
  auto inst = wasm::Instance::instantiate(
      std::make_shared<wasm::Module>(std::move(*module)), linker);
  if (!inst.ok()) return inst.error();
  return {};
}

TEST(Fuzz, RandomBlobsNeverCrash) {
  Xoshiro256 rng(0xF00D);
  for (int round = 0; round < 2000; ++round) {
    size_t len = rng.below(256);
    std::vector<uint8_t> blob(len);
    for (auto& b : blob) b = static_cast<uint8_t>(rng.next());
    auto st = decode_validate(blob);
    (void)st;  // accept or reject — just don't crash
  }
}

TEST(Fuzz, RandomBlobsWithValidHeader) {
  Xoshiro256 rng(0xBEEF);
  for (int round = 0; round < 2000; ++round) {
    std::vector<uint8_t> blob = {0x00, 0x61, 0x73, 0x6d, 1, 0, 0, 0};
    size_t len = rng.below(200);
    for (size_t i = 0; i < len; ++i) blob.push_back(static_cast<uint8_t>(rng.next()));
    auto st = decode_validate(blob);
    (void)st;
  }
}

class MutationFuzz : public ::testing::TestWithParam<const char*> {};

TEST_P(MutationFuzz, MutatedRealModulesNeverCrash) {
  auto seed_module = sched::plugins::scheduler(GetParam());
  ASSERT_TRUE(seed_module.ok());
  Xoshiro256 rng(42);
  int accepted = 0;
  for (int round = 0; round < 3000; ++round) {
    std::vector<uint8_t> mutated = *seed_module;
    // 1-4 random byte mutations.
    uint64_t n_mutations = 1 + rng.below(4);
    for (uint64_t m = 0; m < n_mutations; ++m) {
      size_t pos = rng.below(mutated.size());
      switch (rng.below(3)) {
        case 0: mutated[pos] = static_cast<uint8_t>(rng.next()); break;
        case 1: mutated[pos] ^= static_cast<uint8_t>(1u << rng.below(8)); break;
        case 2: mutated[pos] = 0xff; break;
      }
    }
    if (decode_validate(mutated).ok()) ++accepted;
  }
  // Some mutations (e.g. inside data payloads) legitimately survive, but
  // the vast majority must be rejected.
  EXPECT_LT(accepted, 1500);
}

TEST_P(MutationFuzz, EveryTruncationHandledCleanly) {
  auto seed_module = sched::plugins::scheduler(GetParam());
  ASSERT_TRUE(seed_module.ok());
  auto full = wasm::decode_module(*seed_module);
  ASSERT_TRUE(full.ok());
  const uint32_t full_funcs = full->num_funcs();

  int accepted_prefixes = 0;
  for (size_t len = 0; len < seed_module->size(); ++len) {
    std::span<const uint8_t> prefix(seed_module->data(), len);
    // A prefix cut exactly at a section boundary is a legitimate (smaller)
    // module — e.g. the bare 8-byte header is the empty module. Anything
    // accepted must describe strictly less than the original; mid-section
    // cuts must be rejected. Either way: no crash.
    auto module = wasm::decode_module(prefix);
    if (!module.ok()) continue;
    ++accepted_prefixes;
    EXPECT_LT(module->num_funcs() + module->exports.size(),
              full_funcs + full->exports.size())
        << "truncation to " << len << " bytes kept everything?!";
  }
  // Almost every cut lands mid-section.
  EXPECT_LT(accepted_prefixes, 10);
  // The full module decodes and validates (imports resolve only under a
  // real host linker, so instantiation is out of scope here).
  auto module = wasm::decode_module(*seed_module);
  ASSERT_TRUE(module.ok());
  EXPECT_TRUE(wasm::validate_module(*module).ok());
}

INSTANTIATE_TEST_SUITE_P(SchedulerSeeds, MutationFuzz,
                         ::testing::Values("rr", "pf", "mt"));

TEST(Fuzz, ValidatedMutantsAreSafeToRun) {
  // The stronger property: if a mutant passes validation, *running* it must
  // still be memory-safe (trap or terminate, never corrupt the host).
  auto seed_module = sched::plugins::scheduler("rr");
  ASSERT_TRUE(seed_module.ok());
  Xoshiro256 rng(7777);
  std::vector<uint8_t> input(52, 1);
  int executed = 0;
  for (int round = 0; round < 3000 && executed < 50; ++round) {
    std::vector<uint8_t> mutated = *seed_module;
    mutated[rng.below(mutated.size())] = static_cast<uint8_t>(rng.next());
    plugin::PluginLimits limits;
    limits.fuel_per_call = 200'000;
    auto p = plugin::Plugin::load(mutated, {}, limits);
    if (!p.ok()) continue;
    ++executed;
    auto out = (*p)->call("schedule", input);
    (void)out;  // any Result is fine; reaching here without UB is the test
  }
  EXPECT_GT(executed, 0);
}

}  // namespace
}  // namespace waran
