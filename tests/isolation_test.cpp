// Slice-isolation tests for the paper's §3A security claim: a malicious or
// broken MVNO plugin must not be able to affect *another* MVNO's service —
// not by crashing (contained), not by spinning (fuel), not by forging
// grants for the victim's UEs (sanitization), and not by touching its
// memory (separate linear memories, proven in plugin_test).
#include <gtest/gtest.h>

#include <memory>

#include "plugin/governor.h"
#include "plugin/manager.h"
#include "ran/mac.h"
#include "sched/native.h"
#include "sched/plugins.h"
#include "sched/wasm_sched.h"
#include "wcc/compiler.h"

namespace waran {
namespace {

struct TwoSliceRun {
  double victim_rate_mbps;
  ran::SliceStats victim_stats;
  ran::SliceStats attacker_stats;
};

// Victim slice 1 always runs the benign wasm RR plugin; slice 2 runs
// `attacker_bytes` (or the same benign plugin for the baseline).
TwoSliceRun run_two_slices(const std::vector<uint8_t>& attacker_bytes) {
  ran::GnbMac mac(ran::MacConfig{});
  mac.set_inter_scheduler(std::make_unique<sched::WeightedShareInterScheduler>());
  plugin::PluginManager mgr;

  auto benign = sched::plugins::scheduler("rr");
  EXPECT_TRUE(benign.ok());
  EXPECT_TRUE(mgr.install("victim", *benign).ok());
  EXPECT_TRUE(mgr.install("attacker", attacker_bytes).ok());

  ran::SliceConfig v;
  v.slice_id = 1;
  mac.add_slice(v, std::make_unique<sched::WasmIntraScheduler>(mgr, "victim"));
  ran::SliceConfig a;
  a.slice_id = 2;
  mac.add_slice(a, std::make_unique<sched::WasmIntraScheduler>(mgr, "attacker"));

  uint32_t victim_ue = mac.add_ue(1, ran::Channel::pinned_mcs(24),
                                  ran::TrafficSource::full_buffer());
  mac.add_ue(2, ran::Channel::pinned_mcs(24), ran::TrafficSource::full_buffer());

  EXPECT_TRUE(mac.run_slots(3000).ok());
  return {mac.ue(victim_ue)->rate_bps(mac.now_s()) / 1e6, *mac.slice_stats(1),
          *mac.slice_stats(2)};
}

class SliceIsolation : public ::testing::TestWithParam<const char*> {};

TEST_P(SliceIsolation, AttackerPluginCannotDegradeVictimSlice) {
  auto benign = sched::plugins::scheduler("rr");
  ASSERT_TRUE(benign.ok());
  TwoSliceRun baseline = run_two_slices(*benign);

  auto attacker = sched::plugins::faulty(GetParam());
  ASSERT_TRUE(attacker.ok());
  TwoSliceRun attacked = run_two_slices(*attacker);

  // The victim's throughput is identical (deterministic simulation: exact).
  EXPECT_DOUBLE_EQ(attacked.victim_rate_mbps, baseline.victim_rate_mbps)
      << GetParam();
  EXPECT_EQ(attacked.victim_stats.scheduler_faults, 0u);
  EXPECT_EQ(attacked.victim_stats.sanitized_allocs, 0u);
}

INSTANTIATE_TEST_SUITE_P(FaultKinds, SliceIsolation,
                         ::testing::Values("oob", "null", "loop", "doublefree",
                                           "shortoutput", "leak"));

TEST(SliceIsolation, GrantForgeryAgainstVictimUesIsSanitized) {
  // An attacker plugin that knows the victim's RNTIs and tries to schedule
  // (i.e. burn quota on) them from its own slice: every forged grant must
  // be dropped, and the victim must be unaffected.
  const char* kForger = R"(
    export fn schedule() -> i32 {
      var out: i32 = 200000;
      store32(out, 2);
      store32(out + 4, 17921);    // 0x4601: the victim's first UE
      store32(out + 8, 52);
      store32(out + 12, 17921);
      store32(out + 16, 52);
      output_write(out, 20);
      return 0;
    }
  )";
  auto forger = wcc::compile(kForger);
  ASSERT_TRUE(forger.ok()) << forger.error().message;

  auto benign = sched::plugins::scheduler("rr");
  ASSERT_TRUE(benign.ok());
  TwoSliceRun baseline = run_two_slices(*benign);
  TwoSliceRun attacked = run_two_slices(*forger);

  EXPECT_DOUBLE_EQ(attacked.victim_rate_mbps, baseline.victim_rate_mbps);
  // Every forged grant was dropped by the resource allocator (§6A
  // sanitization); the attacker only sabotaged its own slice.
  EXPECT_GT(attacked.attacker_stats.sanitized_allocs, 5000u);
  EXPECT_EQ(attacked.victim_stats.sanitized_allocs, 0u);
}

TEST(SliceIsolation, FuelBurnerCannotStealComputeFromGovernedPeers) {
  // Under the FuelGovernor, a spinning plugin saturates its own allocation
  // but the governor's floor keeps the victim runnable.
  plugin::PluginLimits limits;
  limits.fuel_per_call = 500'000;
  limits.quarantine_after_faults = 1u << 30;  // never quarantine in this test
  plugin::PluginManager mgr(limits);
  auto spinner = sched::plugins::faulty("loop");
  auto benign = sched::plugins::scheduler("rr");
  ASSERT_TRUE(spinner.ok() && benign.ok());
  ASSERT_TRUE(mgr.install("spinner", *spinner).ok());
  ASSERT_TRUE(mgr.install("victim", *benign).ok());

  plugin::FuelGovernor gov({.budget_per_slot = 1'000'000, .floor = 50'000, .alpha = 0.3});
  ASSERT_TRUE(gov.register_slot("spinner").ok());
  ASSERT_TRUE(gov.register_slot("victim").ok());

  std::vector<uint8_t> input(52, 0);  // minimal valid request: zero UEs
  input[4] = 10;
  for (int tick = 0; tick < 30; ++tick) {
    auto spun = mgr.call("spinner", "schedule", input);
    EXPECT_FALSE(spun.ok());  // always burns its whole allocation
    gov.record_usage("spinner", mgr.plugin("spinner")->last_call_instructions());
    auto ok = mgr.call("victim", "schedule", input);
    EXPECT_TRUE(ok.ok()) << tick;  // victim always completes
    gov.record_usage("victim", mgr.plugin("victim")->last_call_instructions());
    gov.apply(mgr);
  }
  // The spinner soaked up the spare budget, but never below the floor.
  EXPECT_GE(gov.allocation("victim"), 50'000u);
  EXPECT_GT(gov.allocation("spinner"), gov.allocation("victim"));
}

}  // namespace
}  // namespace waran
