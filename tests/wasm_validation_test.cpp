// Negative-path tests for the decoder and validator: malformed binaries,
// type errors, and resource-limit violations must all be rejected before
// any plugin code runs — this is the "static analysis before deployment"
// step the paper gives MNOs (§3A).
#include <gtest/gtest.h>

#include <vector>

#include "tests/wasm_test_util.h"

namespace waran {
namespace {

using namespace wasmtest;

Status decode_and_validate(const ModuleBuilder& mb) {
  auto bytes = mb.build();
  auto module = wasm::decode_module(bytes);
  if (!module.ok()) return module.error();
  return wasm::validate_module(*module);
}

Status decode_bytes(std::vector<uint8_t> bytes) {
  auto module = wasm::decode_module(bytes);
  if (!module.ok()) return module.error();
  return wasm::validate_module(*module);
}

TEST(Decode, RejectsBadMagic) {
  auto st = decode_bytes({0x00, 0x61, 0x73, 0x00, 1, 0, 0, 0});
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, Error::Code::kDecode);
}

TEST(Decode, RejectsBadVersion) {
  auto st = decode_bytes({0x00, 0x61, 0x73, 0x6d, 2, 0, 0, 0});
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, Error::Code::kDecode);
}

TEST(Decode, RejectsTruncatedHeader) {
  auto st = decode_bytes({0x00, 0x61});
  ASSERT_FALSE(st.ok());
}

TEST(Decode, EmptyModuleIsValid) {
  auto st = decode_bytes({0x00, 0x61, 0x73, 0x6d, 1, 0, 0, 0});
  EXPECT_TRUE(st.ok());
}

TEST(Decode, RejectsOutOfOrderSections) {
  // Memory section (5) followed by type section (1).
  std::vector<uint8_t> bytes = {0x00, 0x61, 0x73, 0x6d, 1, 0, 0, 0,
                                5, 3, 1, 0, 1,      // memory: 1 page
                                1, 1, 0};           // type section, empty
  auto st = decode_bytes(bytes);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.error().message.find("out-of-order"), std::string::npos);
}

TEST(Decode, RejectsTrailingSectionGarbage) {
  // Type section declares size 2 but contains an empty vector (1 byte used).
  std::vector<uint8_t> bytes = {0x00, 0x61, 0x73, 0x6d, 1, 0, 0, 0,
                                1, 2, 0, 0};
  auto st = decode_bytes(bytes);
  ASSERT_FALSE(st.ok());
}

TEST(Decode, SkipsCustomSections) {
  std::vector<uint8_t> bytes = {0x00, 0x61, 0x73, 0x6d, 1, 0, 0, 0,
                                0, 5, 4, 'n', 'a', 'm', 'e'};
  auto st = decode_bytes(bytes);
  EXPECT_TRUE(st.ok());
}

TEST(Decode, FunctionCodeCountMismatch) {
  // Function section declares 1 function, no code section.
  std::vector<uint8_t> bytes = {0x00, 0x61, 0x73, 0x6d, 1, 0, 0, 0,
                                1, 4, 1, 0x60, 0, 0,   // type: () -> ()
                                3, 2, 1, 0};           // function: [type 0]
  auto st = decode_bytes(bytes);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.error().message.find("count mismatch"), std::string::npos);
}

TEST(Validate, TypeMismatchI32PlusF64) {
  ModuleBuilder mb;
  auto& f = mb.add_func(FuncType{{}, {ValType::kI32}}, "f");
  f.i32_const(1).f64_const(2.0).op(Op::kI32Add).end();
  auto st = decode_and_validate(mb);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, Error::Code::kValidation);
}

TEST(Validate, StackUnderflow) {
  ModuleBuilder mb;
  auto& f = mb.add_func(FuncType{{}, {ValType::kI32}}, "f");
  f.op(Op::kI32Add).end();
  auto st = decode_and_validate(mb);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.error().message.find("underflow"), std::string::npos);
}

TEST(Validate, MissingResultValue) {
  ModuleBuilder mb;
  auto& f = mb.add_func(FuncType{{}, {ValType::kI32}}, "f");
  f.end();  // returns nothing
  auto st = decode_and_validate(mb);
  ASSERT_FALSE(st.ok());
}

TEST(Validate, ExtraValuesAtEnd) {
  ModuleBuilder mb;
  auto& f = mb.add_func(FuncType{{}, {ValType::kI32}}, "f");
  f.i32_const(1).i32_const(2).end();
  auto st = decode_and_validate(mb);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.error().message.find("values left"), std::string::npos);
}

TEST(Validate, LocalIndexOutOfRange) {
  ModuleBuilder mb;
  auto& f = mb.add_func(FuncType{{ValType::kI32}, {ValType::kI32}}, "f");
  f.local_get(5).end();
  auto st = decode_and_validate(mb);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.error().message.find("local index"), std::string::npos);
}

TEST(Validate, GlobalSetOfImmutable) {
  ModuleBuilder mb;
  uint32_t g = mb.add_global(ValType::kI32, false, wasm::Value::from_i32(1));
  auto& f = mb.add_func(FuncType{{}, {}}, "f");
  f.i32_const(2).global_set(g).end();
  auto st = decode_and_validate(mb);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.error().message.find("immutable"), std::string::npos);
}

TEST(Validate, BranchDepthOutOfRange) {
  ModuleBuilder mb;
  auto& f = mb.add_func(FuncType{{}, {}}, "f");
  f.block().br(5).end().end();
  auto st = decode_and_validate(mb);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.error().message.find("depth"), std::string::npos);
}

TEST(Validate, MemoryOpWithoutMemory) {
  ModuleBuilder mb;
  auto& f = mb.add_func(FuncType{{}, {ValType::kI32}}, "f");
  f.i32_const(0).load(Op::kI32Load, 0, 2).end();
  auto st = decode_and_validate(mb);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.error().message.find("memory"), std::string::npos);
}

TEST(Validate, OverAlignedAccessRejected) {
  ModuleBuilder mb;
  mb.add_memory(1, 1);
  auto& f = mb.add_func(FuncType{{}, {ValType::kI32}}, "f");
  f.i32_const(0).load(Op::kI32Load, 0, 3).end();  // align 8 > natural 4
  auto st = decode_and_validate(mb);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.error().message.find("alignment"), std::string::npos);
}

TEST(Validate, CallIndexOutOfRange) {
  ModuleBuilder mb;
  auto& f = mb.add_func(FuncType{{}, {}}, "f");
  f.call(9).end();
  auto st = decode_and_validate(mb);
  ASSERT_FALSE(st.ok());
}

TEST(Validate, CallIndirectWithoutTable) {
  ModuleBuilder mb;
  FuncType sig{{}, {}};
  uint32_t t = mb.add_type(sig);
  auto& f = mb.add_func(FuncType{{}, {}}, "f");
  f.i32_const(0).call_indirect(t).end();
  auto st = decode_and_validate(mb);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.error().message.find("table"), std::string::npos);
}

TEST(Validate, IfWithResultRequiresElse) {
  ModuleBuilder mb;
  auto& f = mb.add_func(FuncType{{ValType::kI32}, {ValType::kI32}}, "f");
  f.local_get(0).if_(BlockT::i32());
  f.i32_const(1);
  f.end().end();
  auto st = decode_and_validate(mb);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.error().message.find("else"), std::string::npos);
}

TEST(Validate, IfBranchResultMismatch) {
  ModuleBuilder mb;
  auto& f = mb.add_func(FuncType{{ValType::kI32}, {ValType::kI32}}, "f");
  f.local_get(0).if_(BlockT::i32());
  f.i32_const(1);
  f.else_();
  f.f64_const(1.0);
  f.end().end();
  auto st = decode_and_validate(mb);
  ASSERT_FALSE(st.ok());
}

TEST(Validate, SelectOperandTypesMustMatch) {
  ModuleBuilder mb;
  auto& f = mb.add_func(FuncType{{}, {ValType::kI32}}, "f");
  f.i32_const(1).f32_const(1.0f).i32_const(0).op(Op::kSelect).end();
  auto st = decode_and_validate(mb);
  ASSERT_FALSE(st.ok());
}

TEST(Validate, UnreachableMakesStackPolymorphic) {
  // After `unreachable`, anything type-checks (per spec).
  ModuleBuilder mb;
  auto& f = mb.add_func(FuncType{{}, {ValType::kI32}}, "f");
  f.op(Op::kUnreachable).op(Op::kI32Add).end();
  auto st = decode_and_validate(mb);
  EXPECT_TRUE(st.ok()) << (st.ok() ? "" : st.error().message);
}

TEST(Validate, CodeAfterBrIsUnreachableButValid) {
  ModuleBuilder mb;
  auto& f = mb.add_func(FuncType{{}, {ValType::kI32}}, "f");
  f.block(BlockT::i32()).i32_const(1).br(0).i32_const(2).op(Op::kI32Add).end().end();
  auto st = decode_and_validate(mb);
  EXPECT_TRUE(st.ok()) << (st.ok() ? "" : st.error().message);
}

TEST(Validate, DuplicateExportNamesRejected) {
  ModuleBuilder mb;
  auto& f = mb.add_func(FuncType{{}, {}}, "same");
  f.end();
  auto& g = mb.add_func(FuncType{{}, {}}, "same");
  g.end();
  auto st = decode_and_validate(mb);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.error().message.find("duplicate export"), std::string::npos);
}

TEST(Validate, StartFunctionMustBeNullary) {
  ModuleBuilder mb;
  auto& f = mb.add_func(FuncType{{ValType::kI32}, {}});
  f.end();
  mb.set_start(f.index());
  auto st = decode_and_validate(mb);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.error().message.find("start"), std::string::npos);
}

TEST(Validate, GlobalInitTypeMismatch) {
  ModuleBuilder mb;
  // Builder emits the init with the declared type, so construct raw bytes:
  // global section with an f64 global initialised by i32.const.
  std::vector<uint8_t> bytes = {0x00, 0x61, 0x73, 0x6d, 1, 0, 0, 0,
                                6, 6, 1, 0x7c, 0x00, 0x41, 0x05, 0x0b};
  auto st = decode_bytes(bytes);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.error().message.find("init type"), std::string::npos);
}

TEST(Limits, TooManyLocalsRejected) {
  ModuleBuilder mb;
  auto& f = mb.add_func(FuncType{{}, {}}, "f");
  for (int i = 0; i < 5000; ++i) f.add_local(ValType::kI32);
  f.end();
  auto st = decode_and_validate(mb);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, Error::Code::kLimitExceeded);
}

TEST(Limits, MemoryOverEmbedderCapRejected) {
  ModuleBuilder mb;
  mb.add_memory(5000);  // > kMaxMemoryPages (4096)
  auto st = decode_and_validate(mb);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, Error::Code::kLimitExceeded);
}

TEST(Limits, ElementSegmentOutOfBoundsFailsInstantiation) {
  ModuleBuilder mb;
  FuncType sig{{}, {}};
  auto& f = mb.add_func(sig);
  f.end();
  mb.add_table(1, 1);
  mb.add_elem(5, {f.index()});  // offset beyond table size
  auto bytes = mb.build();
  auto module = wasm::decode_module(bytes);
  ASSERT_TRUE(module.ok());
  ASSERT_TRUE(wasm::validate_module(*module).ok());
  wasm::Linker linker;
  auto inst = wasm::Instance::instantiate(
      std::make_shared<wasm::Module>(std::move(*module)), linker);
  ASSERT_FALSE(inst.ok());
  EXPECT_EQ(inst.error().code, Error::Code::kTrap);
}

TEST(Limits, DataSegmentOutOfBoundsFailsInstantiation) {
  ModuleBuilder mb;
  mb.add_memory(1, 1);
  std::vector<uint8_t> big(10, 0xff);
  mb.add_data(65530, big);  // crosses the 64 KiB boundary
  auto bytes = mb.build();
  auto module = wasm::decode_module(bytes);
  ASSERT_TRUE(module.ok());
  ASSERT_TRUE(wasm::validate_module(*module).ok());
  wasm::Linker linker;
  auto inst = wasm::Instance::instantiate(
      std::make_shared<wasm::Module>(std::move(*module)), linker);
  ASSERT_FALSE(inst.ok());
}

// Round-trip: every wasmbuilder module must decode back to an equivalent
// structure (spot checks on counts and types).
TEST(RoundTrip, BuilderOutputDecodes) {
  ModuleBuilder mb;
  mb.import_func("env", "h", FuncType{{ValType::kI32}, {}});
  mb.add_memory(2, 4, "memory");
  mb.add_global(ValType::kF64, true, wasm::Value::from_f64(1.5));
  auto& f = mb.add_func(FuncType{{ValType::kI32}, {ValType::kI32}}, "run");
  f.local_get(0).end();
  auto bytes = mb.build();
  auto module = wasm::decode_module(bytes);
  ASSERT_TRUE(module.ok()) << module.error().message;
  EXPECT_EQ(module->num_imported_funcs, 1u);
  EXPECT_EQ(module->func_type_indices.size(), 1u);
  ASSERT_TRUE(module->memory.has_value());
  EXPECT_EQ(module->memory->min, 2u);
  EXPECT_EQ(*module->memory->max, 4u);
  EXPECT_EQ(module->globals.size(), 1u);
  EXPECT_EQ(module->exports.size(), 2u);
  EXPECT_TRUE(wasm::validate_module(*module).ok());
}

}  // namespace
}  // namespace waran
