// Optimizer tests: semantic equivalence between optimized and unoptimized
// builds across a source corpus (property-style), exact folding results
// with wasm wraparound/saturation semantics, preservation of trapping
// behaviour, and measured instruction savings.
#include <gtest/gtest.h>

#include <limits>
#include <memory>

#include "wasm/wasm.h"
#include "wcc/compiler.h"
#include "wcc/optimizer.h"
#include "wcc/parser.h"

namespace waran::wcc {
namespace {

using wasm::TypedValue;

std::unique_ptr<wasm::Instance> instantiate(const char* src, bool optimize) {
  CompileOptions options;
  options.optimize = optimize;
  auto bytes = compile(src, options);
  EXPECT_TRUE(bytes.ok()) << (bytes.ok() ? "" : bytes.error().message);
  if (!bytes.ok()) return nullptr;
  auto module = wasm::decode_module(*bytes);
  EXPECT_TRUE(module.ok());
  EXPECT_TRUE(wasm::validate_module(*module).ok());
  auto inst = wasm::Instance::instantiate(
      std::make_shared<wasm::Module>(std::move(*module)), {});
  EXPECT_TRUE(inst.ok());
  return inst.ok() ? std::move(*inst) : nullptr;
}

int32_t run_i32(wasm::Instance& inst, std::vector<TypedValue> args = {}) {
  auto r = inst.call("f", args);
  EXPECT_TRUE(r.ok()) << (r.ok() ? "" : r.error().message);
  return r.ok() && r->has_value() ? (*r)->value.as_i32() : INT32_MIN;
}

/// Both builds must produce the same result; the optimized one must retire
/// no more instructions. Returns the instruction savings ratio.
double assert_equivalent(const char* src, std::vector<TypedValue> args = {}) {
  auto plain = instantiate(src, false);
  auto opt = instantiate(src, true);
  EXPECT_TRUE(plain && opt);
  if (!plain || !opt) return 0;
  EXPECT_EQ(run_i32(*plain, args), run_i32(*opt, args)) << src;
  EXPECT_LE(opt->instructions_retired(), plain->instructions_retired()) << src;
  return static_cast<double>(plain->instructions_retired()) /
         static_cast<double>(std::max<uint64_t>(1, opt->instructions_retired()));
}

TEST(WccOpt, ConstantExpressionCollapses) {
  double ratio = assert_equivalent(
      "export fn f() -> i32 { return (2 + 3 * 4 - 5) / 3 % 4; }");
  EXPECT_GT(ratio, 2.0);  // whole expression folded to one const
}

TEST(WccOpt, I32AdditionWrapsLikeWasm) {
  auto opt = instantiate(
      "export fn f() -> i32 { return 2147483647 + 1; }", true);
  ASSERT_NE(opt, nullptr);
  EXPECT_EQ(run_i32(*opt), std::numeric_limits<int32_t>::min());
}

TEST(WccOpt, I64FoldingThroughCasts) {
  assert_equivalent(
      "export fn f() -> i32 { return i32(i64(1000000) * i64(1000000) % i64(97)); }");
}

TEST(WccOpt, FloatFoldingAndSaturatingCast) {
  assert_equivalent("export fn f() -> i32 { return i32(1.5e10 * 2.0); }");
  auto opt = instantiate("export fn f() -> i32 { return i32(1.5e10 * 2.0); }", true);
  ASSERT_NE(opt, nullptr);
  EXPECT_EQ(run_i32(*opt), std::numeric_limits<int32_t>::max());  // saturated
}

TEST(WccOpt, DivisionByZeroIsNotFoldedAway) {
  // The fold must preserve the trap.
  auto opt = instantiate("export fn f() -> i32 { return 1 / 0; }", true);
  ASSERT_NE(opt, nullptr);
  auto r = opt->call("f", std::vector<TypedValue>{});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Error::Code::kTrap);
}

TEST(WccOpt, IntMinDivMinusOneNotFolded) {
  auto opt = instantiate(
      "export fn f() -> i32 { return (0 - 2147483647 - 1) / (0 - 1); }", true);
  ASSERT_NE(opt, nullptr);
  auto r = opt->call("f", std::vector<TypedValue>{});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Error::Code::kTrap);
}

TEST(WccOpt, AlgebraicIdentities) {
  double ratio = assert_equivalent(R"(
    export fn f(x: i32) -> i32 {
      var a: i32 = x + 0;
      var b: i32 = a - 0;
      var c: i32 = b * 1;
      var d: i32 = c / 1;
      return d;
    }
  )", {TypedValue::i32(41)});
  EXPECT_GT(ratio, 1.2);
}

TEST(WccOpt, MulZeroFoldsOnlyPureOperands) {
  // Pure operand: folds to 0.
  assert_equivalent("export fn f(x: i32) -> i32 { return x * 0; }",
                    {TypedValue::i32(123)});
  // Impure operand (a call): must NOT be deleted — the side effect has to
  // happen. memory_grow observable via memory_size.
  const char* src = R"(
    export fn f() -> i32 {
      var dead: i32 = memory_grow(1) * 0;
      return memory_size() + dead;
    }
  )";
  auto plain = instantiate(src, false);
  auto opt = instantiate(src, true);
  ASSERT_TRUE(plain && opt);
  EXPECT_EQ(run_i32(*plain), run_i32(*opt));  // both grew memory once
}

TEST(WccOpt, DeadIfBranchRemoved) {
  double ratio = assert_equivalent(R"(
    export fn f() -> i32 {
      if (0) { trap(); }
      if (1) { return 7; } else { trap(); }
    }
  )");
  EXPECT_GT(ratio, 1.0);
}

TEST(WccOpt, DeadWhileRemoved) {
  auto unopt_prog = parse("export fn f() -> i32 { while (0) { trap(); } return 3; }");
  ASSERT_TRUE(unopt_prog.ok());
  OptStats stats = optimize(*unopt_prog);
  EXPECT_EQ(stats.dead_loops_removed, 1u);
  assert_equivalent("export fn f() -> i32 { while (0) { trap(); } return 3; }");
}

TEST(WccOpt, NestedFoldingCascades) {
  // if (3 > 2 && !(4 == 5)) -> if (1) -> branch splice.
  auto prog = parse(R"(
    export fn f() -> i32 {
      if (3 > 2 && !(4 == 5)) { return 1; }
      return 0;
    }
  )");
  ASSERT_TRUE(prog.ok());
  OptStats stats = optimize(*prog);
  EXPECT_GE(stats.folded_consts, 3u);
  EXPECT_EQ(stats.dead_branches_removed, 1u);
}

TEST(WccOpt, SchedulerPluginsUnchangedSemantics) {
  // The shipped scheduler sources must behave identically when optimized
  // (they are compiled with optimize=true by default elsewhere).
  const char* src = R"(
    fn prbs_to_drain(buffer: i32, tbs: i32) -> i32 {
      return i32((i64(buffer) * i64(8) + i64(tbs) - i64(1)) / i64(tbs));
    }
    export fn f(buffer: i32, tbs: i32) -> i32 {
      return prbs_to_drain(buffer, tbs);
    }
  )";
  auto plain = instantiate(src, false);
  auto opt = instantiate(src, true);
  ASSERT_TRUE(plain && opt);
  for (int32_t buffer : {1, 100, 65536, 1 << 20}) {
    for (int32_t tbs : {18, 516, 877}) {
      std::vector<TypedValue> args = {TypedValue::i32(buffer), TypedValue::i32(tbs)};
      EXPECT_EQ(run_i32(*plain, args), run_i32(*opt, args))
          << buffer << "/" << tbs;
    }
  }
}

TEST(WccOpt, TypeErrorsStillDiagnosedWithOptimizerOn) {
  CompileOptions options;
  options.optimize = true;
  // The identity fold could hide the i64/i32 mismatch if typechecking ran
  // after optimization; it must not.
  auto r = compile("export fn f(x: i64) -> i32 { return x * 0; }", options);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("mismatch"), std::string::npos);
}

TEST(WccOpt, StatsReporting) {
  auto prog = parse(R"(
    export fn f() -> i32 {
      var a: i32 = 2 + 3;
      var b: i32 = a + 0;
      if (0) { trap(); }
      while (0) { trap(); }
      return a + b;
    }
  )");
  ASSERT_TRUE(prog.ok());
  OptStats stats = optimize(*prog);
  EXPECT_GE(stats.folded_consts, 1u);
  EXPECT_GE(stats.algebraic_simplifications, 1u);
  EXPECT_EQ(stats.dead_branches_removed, 1u);
  EXPECT_EQ(stats.dead_loops_removed, 1u);
  EXPECT_EQ(stats.total(), stats.folded_consts + stats.algebraic_simplifications +
                               stats.dead_branches_removed + stats.dead_loops_removed);
}

}  // namespace
}  // namespace waran::wcc
